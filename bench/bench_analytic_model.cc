// Eqs. 10-14: the paper's analytic acceleration model against the
// simulator's measurements.
//
//   Eq. 10  AC_ghe  = t_cpu / t_gpu for a batch of HE ops
//   Eq. 11  CompressionRatio = n / ceil(n / floor(k/(r+ceil(log2 p))))
//   Eq. 12  PSU <= 1
//   Eq. 13  AC_bc = CompressionRatio
//   Eq. 14  AC = AC_ghe * AC_bc
//
// The bench sweeps batch size and key size, prints the analytic prediction
// next to the measured ratio, and checks Eq. 14's composition against an
// end-to-end Homo LR run.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/codec/batch_compressor.h"
#include "src/codec/quantizer.h"
#include "src/core/cost_model.h"
#include "src/ghe/ghe_engine.h"

namespace {

using flb::codec::BatchCompressor;
using flb::codec::Quantizer;
using flb::codec::QuantizerConfig;

double GpuEncryptSeconds(int key_bits, int64_t count) {
  auto device = std::make_shared<flb::gpusim::Device>(
      flb::gpusim::DeviceSpec::Rtx3090(), nullptr);
  flb::ghe::GheEngine ghe(device);
  ghe.ModelPaillierEncrypt(key_bits, count).value();
  return device->stats().kernel_seconds + device->stats().transfer_seconds;
}

}  // namespace

int main() {
  using namespace flb::bench;
  flb::core::CpuCostModel cpu;

  PrintHeader("Eq. 10 — GPU-HE acceleration ratio (encrypt batches)");
  std::printf("%5s %10s %14s %14s %10s\n", "key", "batch", "t_cpu (s)",
              "t_gpu (s)", "AC_ghe");
  for (int key : kKeySizes) {
    for (int64_t batch : {256LL, 4096LL, 65536LL}) {
      const uint64_t ops_per_encrypt =
          (flb::ghe::EstimateModPowMontMuls(key) + 3) *
          flb::ghe::MontMulLimbOps(static_cast<size_t>(key) * 2 / 32);
      const double t_cpu = cpu.SecondsFor(batch, ops_per_encrypt);
      const double t_gpu = GpuEncryptSeconds(key, batch);
      std::printf("%5d %10lld %14.4f %14.6f %9.0fx\n", key,
                  static_cast<long long>(batch), t_cpu, t_gpu, t_cpu / t_gpu);
    }
  }

  PrintHeader("Eqs. 11-13 — compression ratio and plaintext-space utilization");
  std::printf("%5s %4s %4s %8s %12s %12s %8s\n", "key", "r", "p", "slots",
              "ratio(4k)", "bound k/(r+b)", "PSU");
  for (int key : kKeySizes) {
    for (int participants : {2, 4, 64}) {
      QuantizerConfig qcfg;
      qcfg.r_bits = 30;
      qcfg.participants = participants;
      auto quantizer = Quantizer::Create(qcfg).value();
      auto bc = BatchCompressor::Create(quantizer, key).value();
      const size_t n = 4096;
      std::printf("%5d %4d %4d %8d %11.1fx %11.1fx %7.1f%%\n", key,
                  qcfg.r_bits, participants, bc.slots_per_plaintext(),
                  bc.CompressionRatio(n), bc.TheoreticalCompressionRatio(),
                  100.0 * bc.PlaintextSpaceUtilization(n));
    }
  }

  PrintHeader("Eq. 14 — composition: AC = AC_ghe * AC_bc vs end-to-end");
  for (int key : kKeySizes) {
    auto fate = MustRun(WorkloadFor(FlModelKind::kHomoLr,
                                    flb::fl::DatasetKind::kRcv1,
                                    EngineKind::kFate, key));
    auto no_bc = MustRun(WorkloadFor(FlModelKind::kHomoLr,
                                     flb::fl::DatasetKind::kRcv1,
                                     EngineKind::kFlBoosterNoBc, key));
    auto no_ghe = MustRun(WorkloadFor(FlModelKind::kHomoLr,
                                      flb::fl::DatasetKind::kRcv1,
                                      EngineKind::kFlBoosterNoGhe, key));
    auto full = MustRun(WorkloadFor(FlModelKind::kHomoLr,
                                    flb::fl::DatasetKind::kRcv1,
                                    EngineKind::kFlBooster, key));
    const double ac_ghe = fate.total_seconds / no_bc.total_seconds;
    const double ac_bc = fate.total_seconds / no_ghe.total_seconds;
    const double ac_measured = fate.total_seconds / full.total_seconds;
    std::printf(
        "key %4d: AC_ghe=%6.1fx  AC_bc=%6.1fx  product=%8.1fx  "
        "measured end-to-end=%8.1fx\n",
        key, ac_ghe, ac_bc, ac_ghe * ac_bc, ac_measured);
  }
  std::printf(
      "\n(The product over-predicts when a third component — model compute, "
      "per-message latency — becomes the residual bottleneck; the paper's "
      "Eq. 14 has the same caveat.)\n");
  return 0;
}
