// §II reproduction: FLBooster's encoding-quantization vs a BatchCrypt-style
// fixed-headroom encoding under growing participant counts.
//
// Sweeps p and measures the decoded-aggregate error of each scheme on (a) a
// benign zero-centered workload and (b) a same-sign workload (a consistent
// bias gradient). Shape target: BatchCrypt matches FLBooster while p <=
// 2^headroom, then fails catastrophically on (b); FLBooster stays at
// quantization-noise level throughout because its headroom tracks
// ceil(log2 p).

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/codec/batch_compressor.h"
#include "src/codec/batchcrypt_codec.h"
#include "src/codec/quantizer.h"
#include "src/common/rng.h"

namespace {

using flb::Rng;
using flb::mpint::BigInt;

// Aggregates p parties' packed vectors by integer addition and returns the
// max abs decode error vs the true sums.
template <typename PackFn, typename UnpackFn>
double MaxError(int p, bool same_sign, PackFn pack, UnpackFn unpack) {
  Rng rng(500 + p);
  const size_t count = 64;
  std::vector<double> sums(count, 0.0);
  std::vector<BigInt> agg;
  for (int party = 0; party < p; ++party) {
    std::vector<double> vals(count);
    for (size_t i = 0; i < count; ++i) {
      vals[i] = same_sign ? 0.5 + 0.4 * rng.NextDouble()
                          : (rng.NextDouble() - 0.5) * 0.5;
    }
    for (size_t i = 0; i < count; ++i) sums[i] += vals[i];
    std::vector<BigInt> packed = pack(vals);
    if (agg.empty()) {
      agg = std::move(packed);
    } else {
      for (size_t i = 0; i < agg.size(); ++i) {
        agg[i] = BigInt::Add(agg[i], packed[i]);
      }
    }
  }
  std::vector<double> decoded = unpack(agg, count, p);
  double worst = 0;
  for (size_t i = 0; i < count; ++i) {
    worst = std::max(worst, std::fabs(decoded[i] - sums[i]));
  }
  return worst;
}

}  // namespace

int main() {
  std::printf(
      "==== §II claim — fixed headroom (BatchCrypt-style) vs ceil(log2 p) "
      "(FLBooster) ====\n");
  std::printf("%4s %18s %18s %18s %18s\n", "p", "BCrypt benign",
              "BCrypt same-sign", "FLB benign", "FLB same-sign");
  for (int p : {2, 4, 8, 16, 32}) {
    flb::codec::BatchCryptConfig bcfg;
    bcfg.value_bits = 14;
    bcfg.headroom_bits = 2;
    auto bcrypt = flb::codec::BatchCryptCodec::Create(bcfg).value();

    flb::codec::QuantizerConfig qcfg;
    qcfg.r_bits = 14;
    qcfg.participants = p;
    auto quantizer = flb::codec::Quantizer::Create(qcfg).value();
    auto flb_bc =
        flb::codec::BatchCompressor::Create(quantizer, 1024).value();

    auto bcrypt_pack = [&](const std::vector<double>& v) {
      return bcrypt.Pack(v).value();
    };
    auto bcrypt_unpack = [&](const std::vector<BigInt>& a, size_t c, int k) {
      return bcrypt.Unpack(a, c, k).value();
    };
    auto flb_pack = [&](const std::vector<double>& v) {
      return flb_bc.Pack(v).value();
    };
    auto flb_unpack = [&](const std::vector<BigInt>& a, size_t c, int k) {
      return flb_bc.Unpack(a, c, k).value();
    };

    std::printf("%4d %18.6f %18.6f %18.6f %18.6f%s\n", p,
                MaxError(p, false, bcrypt_pack, bcrypt_unpack),
                MaxError(p, true, bcrypt_pack, bcrypt_unpack),
                MaxError(p, false, flb_pack, flb_unpack),
                MaxError(p, true, flb_pack, flb_unpack),
                bcrypt.GuaranteesNoOverflow(p) ? "" : "   <- BCrypt unsafe");
  }
  std::printf(
      "\nShape: both schemes sit at quantization noise until p exceeds the "
      "fixed headroom (4); then the BatchCrypt-style same-sign error "
      "explodes while FLBooster stays at noise level (paper §II).\n");
  return 0;
}
