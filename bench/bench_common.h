// Shared workload definitions and table formatting for the experiment
// regenerators (one binary per paper table/figure; see DESIGN.md §3).
//
// Shapes are container-scale versions of the paper's corpora (Table II);
// the *ratios* between engines, models, datasets, and key sizes are the
// reproduction target, not the absolute seconds (DESIGN.md §1).

#ifndef FLB_BENCH_BENCH_COMMON_H_
#define FLB_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/common/env.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/core/platform.h"
#include "src/obs/host_profiler.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_server.h"
#include "src/obs/run_status.h"
#include "src/obs/trace.h"

namespace flb::bench {

using core::EngineKind;
using core::FlModelKind;
using core::PlatformConfig;
using fl::DatasetKind;

// FLB_SMOKE=1 shrinks every workload grid to a CI-sized pass: one tiny key
// size, miniature datasets. The drivers still exercise every code path;
// only the numbers stop being meaningful.
inline bool SmokeMode() {
  static const bool smoke = common::Env::Flag("FLB_SMOKE");
  return smoke;
}

inline const std::vector<FlModelKind> kAllModels = {
    FlModelKind::kHomoLr, FlModelKind::kHeteroLr, FlModelKind::kHeteroSbt,
    FlModelKind::kHeteroNn};
inline const std::vector<DatasetKind> kAllDatasets = {
    DatasetKind::kRcv1, DatasetKind::kAvazu, DatasetKind::kSynthetic};
inline const std::vector<int> kKeySizes =
    SmokeMode() ? std::vector<int>{256} : std::vector<int>{1024, 2048, 4096};

// A platform config for (model, dataset) at container scale: modeled HE,
// one epoch, the paper's batch size where the shape allows it.
inline PlatformConfig WorkloadFor(FlModelKind model, DatasetKind dataset,
                                  EngineKind engine, int key_bits) {
  PlatformConfig cfg;
  cfg.engine = engine;
  cfg.model = model;
  cfg.key_bits = key_bits;
  cfg.modeled = true;
  cfg.num_parties = 4;
  cfg.train.max_epochs = 1;
  cfg.train.batch_size = 1024;
  cfg.dataset = fl::DefaultScaleSpec(dataset);
  switch (model) {
    case FlModelKind::kHomoLr:
    case FlModelKind::kHomoNn:
    case FlModelKind::kHeteroLr:
      break;  // default shapes
    case FlModelKind::kHeteroSbt:
      // Tree building is node x feature x instance heavy; keep the shape
      // modest so the full grid completes. Histogram bucket sums are small
      // (|g| <= 1, <= rows contributions), so narrow fixed-point slots give
      // the BC cipher compression its full ratio.
      cfg.dataset.rows = std::min<size_t>(cfg.dataset.rows, 1024);
      cfg.dataset.cols = std::min<size_t>(cfg.dataset.cols, 256);
      cfg.dataset.nnz_per_row =
          std::min<size_t>(cfg.dataset.nnz_per_row, cfg.dataset.cols);
      cfg.sbt.max_depth = 4;
      cfg.sbt.num_bins = 32;
      cfg.train.learning_rate = 0.3;
      cfg.frac_bits = 20;
      cfg.fp_compress_slot_bits = 32;
      break;
    case FlModelKind::kHeteroNn:
      cfg.dataset.rows = std::min<size_t>(cfg.dataset.rows, 512);
      cfg.dataset.cols = std::min<size_t>(cfg.dataset.cols, 256);
      cfg.dataset.nnz_per_row =
          std::min<size_t>(cfg.dataset.nnz_per_row, cfg.dataset.cols);
      cfg.train.batch_size = 256;
      cfg.nn.bottom_dim = 8;
      cfg.nn.interactive_dim = 8;
      break;
  }
  if (SmokeMode()) {
    cfg.dataset.rows = std::min<size_t>(cfg.dataset.rows, 128);
    cfg.dataset.cols = std::min<size_t>(cfg.dataset.cols, 32);
    cfg.dataset.nnz_per_row =
        std::min<size_t>(cfg.dataset.nnz_per_row, cfg.dataset.cols);
    cfg.train.batch_size = std::min(cfg.train.batch_size, 64);
    cfg.sbt.max_depth = std::min(cfg.sbt.max_depth, 3);
  }
  return cfg;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

// Machine-readable bench results: one {bench, section, metric, value, unit}
// record per printed number that matters. Serialized as
// {"bench": "...", "results": [...]} to the FLB_BENCH_JSON path at exit.
class BenchJson {
 public:
  static BenchJson& Global() {
    static BenchJson instance;
    return instance;
  }

  void set_bench(std::string name) { bench_ = std::move(name); }
  const std::string& bench() const { return bench_; }
  void set_section(std::string section) { section_ = std::move(section); }
  void set_host_threads(int n) { host_threads_ = n; }
  void set_wall_ms(double ms) { wall_ms_ = ms; }

  void Record(const std::string& metric, double value,
              const std::string& unit) {
    rows_.push_back({section_, metric, unit, value});
  }
  void Record(const std::string& section, const std::string& metric,
              double value, const std::string& unit) {
    rows_.push_back({section, metric, unit, value});
  }

  size_t num_records() const { return rows_.size(); }

  std::string ToJson() const {
    std::string out = "{\"bench\":" + obs::JsonQuote(bench_);
    out += ",\"host_threads\":" + std::to_string(host_threads_);
    out += ",\"wall_ms\":" + obs::JsonNumber(wall_ms_);
    out += ",\"results\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n{\"bench\":" + obs::JsonQuote(bench_);
      out += ",\"section\":" + obs::JsonQuote(rows_[i].section);
      out += ",\"metric\":" + obs::JsonQuote(rows_[i].metric);
      out += ",\"value\":" + obs::JsonNumber(rows_[i].value);
      out += ",\"unit\":" + obs::JsonQuote(rows_[i].unit) + "}";
    }
    out += "\n]}";
    return out;
  }

  Status WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("BenchJson: cannot open " + path);
    }
    const std::string json = ToJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size()) {
      return Status::IoError("BenchJson: short write to " + path);
    }
    return Status::OK();
  }

 private:
  struct Row {
    std::string section;
    std::string metric;
    std::string unit;
    double value = 0.0;
  };
  std::string bench_ = "bench";
  std::string section_;
  int host_threads_ = 0;
  double wall_ms_ = 0.0;
  std::vector<Row> rows_;
};

// Starts a new bench section: prints the header, scopes subsequent
// BenchJson::Record calls, and resets the unified metrics plane (registry
// counters AND every registered source — DeviceStats, NetworkStats, HE op
// counts) so per-section numbers are never cumulative.
inline void BeginSection(const std::string& title) {
  PrintHeader(title);
  BenchJson::Global().set_section(title);
  obs::RunStatus::Global().SetSection(title);
  obs::MetricsRegistry::Global().ResetAll();
}

// At-exit export of the observability artifacts, gated on the environment:
//   FLB_TRACE_OUT   — Chrome trace-event JSON of the (last) run's timeline
//   FLB_METRICS_OUT — unified metrics snapshot
//   FLB_BENCH_JSON  — this bench's {bench, section, metric, value, unit} rows
// The constructor touches every singleton it will read so they are
// constructed first and therefore destroyed after this exporter runs.
class ObsExporter {
 public:
  ObsExporter() {
    obs::TraceRecorder::Global();
    obs::MetricsRegistry::Global();
    BenchJson::Global();
    const std::string bench_name = common::Env::Str("FLB_BENCH_NAME", "bench");
    BenchJson::Global().set_bench(bench_name);
    BenchJson::Global().set_host_threads(
        common::ThreadPool::Global().num_threads());
    // Live inspection: start the scrape server / wall profiler as early as
    // env configuration allows, and name the bench in /status.
    obs::ObsServer::EnsureGlobalFromEnv();
    obs::HostProfiler::EnableFromEnv();
    obs::RunStatus::Global().SetBench(bench_name);
  }

  ~ObsExporter() {
    BenchJson::Global().set_wall_ms(timer_.ElapsedSeconds() * 1e3);
    // Trace-cap losses become a bench row so summary.json surfaces them
    // alongside the numbers they may have truncated.
    BenchJson::Global().Record(
        "obs", "flb.obs.trace.dropped_events",
        static_cast<double>(obs::TraceRecorder::Global().dropped_events()),
        "count");
    Export();
    // FLB_OBS_LINGER: hold the process (phase "linger") so a scraper can
    // take final /metrics + /trace snapshots after all sections ran.
    obs::ObsServer::LingerFromEnv();
  }

  static void Export() {
    // Trace + metrics export lives in obs (atexit-registered for every
    // binary, idempotent); only the bench rows are bench-specific.
    obs::ExportEnvConfigured();
    const std::string path = common::Env::Str("FLB_BENCH_JSON");
    if (!path.empty()) {
      const Status s = BenchJson::Global().WriteJson(path);
      if (!s.ok()) {
        std::fprintf(stderr, "bench json export failed: %s\n",
                     s.ToString().c_str());
      } else {
        std::fprintf(stderr, "[obs] wrote bench results to %s\n",
                     path.c_str());
      }
    }
  }

 private:
  WallTimer timer_;  // whole-bench wall clock, exported as wall_ms
};

inline ObsExporter obs_exporter_at_exit;

inline core::RunReport MustRun(const PlatformConfig& cfg) {
  auto report = core::Platform::Run(cfg);
  if (!report.ok()) {
    std::fprintf(stderr, "platform run failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return std::move(report).value();
}

inline std::string Short(FlModelKind model) {
  switch (model) {
    case FlModelKind::kHomoLr:
      return "Homo LR";
    case FlModelKind::kHeteroLr:
      return "Hetero LR";
    case FlModelKind::kHeteroSbt:
      return "Hetero SBT";
    case FlModelKind::kHeteroNn:
      return "Hetero NN";
    case FlModelKind::kHomoNn:
      return "Homo NN";
  }
  return "?";
}

}  // namespace flb::bench

#endif  // FLB_BENCH_BENCH_COMMON_H_
