// Shared workload definitions and table formatting for the experiment
// regenerators (one binary per paper table/figure; see DESIGN.md §3).
//
// Shapes are container-scale versions of the paper's corpora (Table II);
// the *ratios* between engines, models, datasets, and key sizes are the
// reproduction target, not the absolute seconds (DESIGN.md §1).

#ifndef FLB_BENCH_BENCH_COMMON_H_
#define FLB_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/platform.h"

namespace flb::bench {

using core::EngineKind;
using core::FlModelKind;
using core::PlatformConfig;
using fl::DatasetKind;

// FLB_SMOKE=1 shrinks every workload grid to a CI-sized pass: one tiny key
// size, miniature datasets. The drivers still exercise every code path;
// only the numbers stop being meaningful.
inline bool SmokeMode() {
  static const bool smoke = std::getenv("FLB_SMOKE") != nullptr;
  return smoke;
}

inline const std::vector<FlModelKind> kAllModels = {
    FlModelKind::kHomoLr, FlModelKind::kHeteroLr, FlModelKind::kHeteroSbt,
    FlModelKind::kHeteroNn};
inline const std::vector<DatasetKind> kAllDatasets = {
    DatasetKind::kRcv1, DatasetKind::kAvazu, DatasetKind::kSynthetic};
inline const std::vector<int> kKeySizes =
    SmokeMode() ? std::vector<int>{256} : std::vector<int>{1024, 2048, 4096};

// A platform config for (model, dataset) at container scale: modeled HE,
// one epoch, the paper's batch size where the shape allows it.
inline PlatformConfig WorkloadFor(FlModelKind model, DatasetKind dataset,
                                  EngineKind engine, int key_bits) {
  PlatformConfig cfg;
  cfg.engine = engine;
  cfg.model = model;
  cfg.key_bits = key_bits;
  cfg.modeled = true;
  cfg.num_parties = 4;
  cfg.train.max_epochs = 1;
  cfg.train.batch_size = 1024;
  cfg.dataset = fl::DefaultScaleSpec(dataset);
  switch (model) {
    case FlModelKind::kHomoLr:
    case FlModelKind::kHeteroLr:
      break;  // default shapes
    case FlModelKind::kHeteroSbt:
      // Tree building is node x feature x instance heavy; keep the shape
      // modest so the full grid completes. Histogram bucket sums are small
      // (|g| <= 1, <= rows contributions), so narrow fixed-point slots give
      // the BC cipher compression its full ratio.
      cfg.dataset.rows = std::min<size_t>(cfg.dataset.rows, 1024);
      cfg.dataset.cols = std::min<size_t>(cfg.dataset.cols, 256);
      cfg.dataset.nnz_per_row =
          std::min<size_t>(cfg.dataset.nnz_per_row, cfg.dataset.cols);
      cfg.sbt.max_depth = 4;
      cfg.sbt.num_bins = 32;
      cfg.train.learning_rate = 0.3;
      cfg.frac_bits = 20;
      cfg.fp_compress_slot_bits = 32;
      break;
    case FlModelKind::kHeteroNn:
      cfg.dataset.rows = std::min<size_t>(cfg.dataset.rows, 512);
      cfg.dataset.cols = std::min<size_t>(cfg.dataset.cols, 256);
      cfg.dataset.nnz_per_row =
          std::min<size_t>(cfg.dataset.nnz_per_row, cfg.dataset.cols);
      cfg.train.batch_size = 256;
      cfg.nn.bottom_dim = 8;
      cfg.nn.interactive_dim = 8;
      break;
  }
  if (SmokeMode()) {
    cfg.dataset.rows = std::min<size_t>(cfg.dataset.rows, 128);
    cfg.dataset.cols = std::min<size_t>(cfg.dataset.cols, 32);
    cfg.dataset.nnz_per_row =
        std::min<size_t>(cfg.dataset.nnz_per_row, cfg.dataset.cols);
    cfg.train.batch_size = std::min(cfg.train.batch_size, 64);
    cfg.sbt.max_depth = std::min(cfg.sbt.max_depth, 3);
  }
  return cfg;
}

inline core::RunReport MustRun(const PlatformConfig& cfg) {
  auto report = core::Platform::Run(cfg);
  if (!report.ok()) {
    std::fprintf(stderr, "platform run failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return std::move(report).value();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline std::string Short(FlModelKind model) {
  switch (model) {
    case FlModelKind::kHomoLr:
      return "Homo LR";
    case FlModelKind::kHeteroLr:
      return "Hetero LR";
    case FlModelKind::kHeteroSbt:
      return "Hetero SBT";
    case FlModelKind::kHeteroNn:
      return "Hetero NN";
  }
  return "?";
}

}  // namespace flb::bench

#endif  // FLB_BENCH_BENCH_COMMON_H_
