// Extension bench: Damgård–Jurik degrees as a batch-compression multiplier.
//
// The paper's BC module packs floor(k/(r+b)) values per Paillier plaintext
// and ships a 2k-bit ciphertext. With degree-s Damgård–Jurik the plaintext
// space is s*k bits for a (s+1)*k-bit ciphertext, so the slots per
// ciphertext scale ~s times while the per-slot wire cost falls toward one
// slot-width. The bench measures real encrypt/decrypt round trips per
// degree and reports effective bytes-per-gradient on the wire.

#include <cstdio>

#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/crypto/damgard_jurik.h"

int main() {
  using namespace flb;
  using mpint::BigInt;

  Rng rng(42);
  const int key_bits = 512;
  auto keys = crypto::PaillierKeyGen(key_bits, rng).value();
  const int slot_bits = 32;  // the paper's r + b

  std::printf(
      "==== Damgård–Jurik degree sweep (key %d bits, %d-bit slots) ====\n",
      key_bits, slot_bits);
  std::printf("%3s %12s %14s %12s %14s %14s %14s\n", "s", "slots/ct",
              "ct bits", "expansion", "bytes/grad", "enc ms", "dec ms");
  for (int s : {1, 2, 3, 4, 6, 8}) {
    auto ctx = crypto::DamgardJurikContext::Create(keys, s).value();
    const int plain_bits = ctx.plaintext_modulus().BitLength();
    const int cipher_bits = ctx.ciphertext_modulus().BitLength();
    const int slots = (plain_bits - 1) / slot_bits;
    const double expansion = static_cast<double>(cipher_bits) / plain_bits;
    const double bytes_per_grad = cipher_bits / 8.0 / slots;

    // Real round trip to verify + time.
    const BigInt m = BigInt::RandomBelow(rng, ctx.plaintext_modulus());
    WallTimer enc_timer;
    const BigInt c = ctx.Encrypt(m, rng).value();
    const double enc_ms = enc_timer.ElapsedSeconds() * 1e3;
    WallTimer dec_timer;
    const BigInt back = ctx.Decrypt(c).value();
    const double dec_ms = dec_timer.ElapsedSeconds() * 1e3;
    if (back != m) {
      std::fprintf(stderr, "round-trip failure at s=%d\n", s);
      return 1;
    }
    std::printf("%3d %12d %14d %11.2fx %14.1f %14.2f %14.2f\n", s, slots,
                cipher_bits, expansion, bytes_per_grad, enc_ms, dec_ms);
  }
  std::printf(
      "\nShape: slots scale ~linearly with s while expansion falls from 2x "
      "toward (s+1)/s — wire cost per gradient drops accordingly (at higher "
      "per-op compute). A natural FLBooster extension beyond the paper.\n");
  return 0;
}
