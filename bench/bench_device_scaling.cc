// Extension bench (future-work direction the paper gestures at with edge
// deployments, e.g. C2RM): how FLBooster's gains scale down from a
// datacenter GPU (RTX 3090) to an edge-class device, and what the analytic
// model (Eq. 10) predicts for each.

#include <cstdio>
#include <memory>

#include "src/core/cost_model.h"
#include "src/ghe/ghe_engine.h"
#include "src/gpusim/device.h"

namespace {

double EncryptSeconds(const flb::gpusim::DeviceSpec& spec, int key_bits,
                      int64_t batch) {
  auto device = std::make_shared<flb::gpusim::Device>(spec, nullptr);
  flb::ghe::GheEngine engine(device);
  engine.ModelPaillierEncrypt(key_bits, batch).value();
  return device->stats().kernel_seconds + device->stats().transfer_seconds;
}

}  // namespace

int main() {
  using namespace flb;
  core::CpuCostModel cpu;
  const auto rtx = gpusim::DeviceSpec::Rtx3090();
  const auto edge = gpusim::DeviceSpec::JetsonClass();

  std::printf("==== Device scaling — GPU-HE speedup vs CPU (Eq. 10) ====\n");
  std::printf("%5s %9s %14s %14s %14s %9s %9s\n", "key", "batch", "t_cpu (s)",
              "RTX3090 (s)", "edge GPU (s)", "AC_3090", "AC_edge");
  for (int key : {1024, 2048, 4096}) {
    for (int64_t batch : {1024LL, 16384LL}) {
      const uint64_t ops =
          (ghe::EstimateModPowMontMuls(key) + 3) *
          ghe::MontMulLimbOps(static_cast<size_t>(key) * 2 / 32);
      const double t_cpu = cpu.SecondsFor(batch, ops);
      const double t_rtx = EncryptSeconds(rtx, key, batch);
      const double t_edge = EncryptSeconds(edge, key, batch);
      std::printf("%5d %9lld %14.3f %14.5f %14.5f %8.0fx %8.0fx\n", key,
                  static_cast<long long>(batch), t_cpu, t_rtx, t_edge,
                  t_cpu / t_rtx, t_cpu / t_edge);
    }
  }
  std::printf(
      "\nShape: the edge device keeps a substantial (but ~%0.0fx smaller) "
      "GPU-HE advantage — FLBooster's design is not datacenter-only.\n",
      (rtx.num_sms * rtx.cuda_cores_per_sm * rtx.core_clock_hz) /
          (edge.num_sms * edge.cuda_cores_per_sm * edge.core_clock_hz));
  return 0;
}
