// Figure 1: the motivation plot — running time of one FATE epoch for the
// four standard FL models at 1024-bit keys, decomposed into HE operations,
// communication, and everything else.
//
// The paper's claim this regenerates: HE takes > 50% and communication
// > 40% of a FATE epoch, for every model.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace flb::bench;
  PrintHeader("Fig. 1 — FATE epoch time breakdown at 1024-bit keys");
  std::printf("%-12s %-10s %12s %8s %8s %8s\n", "Model", "Dataset",
              "epoch (s)", "HE %", "comm %", "other %");
  for (auto model : kAllModels) {
    for (auto dataset : kAllDatasets) {
      auto cfg = WorkloadFor(model, dataset, EngineKind::kFate, 1024);
      auto report = MustRun(cfg);
      const double total = report.total_seconds;
      std::printf("%-12s %-10s %12.2f %7.1f%% %7.1f%% %7.1f%%\n",
                  Short(model).c_str(),
                  flb::fl::DatasetName(dataset).c_str(), total,
                  100.0 * report.he_seconds / total,
                  100.0 * report.comm_seconds / total,
                  100.0 * report.other_seconds / total);
    }
  }
  std::printf(
      "\nPaper's claim: HE > 50%% and communication > 40%% of every FATE "
      "epoch.\n");
  return 0;
}
