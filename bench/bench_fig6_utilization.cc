// Figure 6: SM utilization in HE operations — HAFLO vs FLBooster across the
// four models and three key sizes.
//
// Utilization is measured on saturated HE-operation batches (the "in HE
// operations" sense of the figure) with each model's characteristic op mix:
// LR models are encrypt/decrypt-bound, SBT is homomorphic-add-bound, NN is
// scalar-multiplication-bound.
//
// Shape targets: FLBooster's resource manager (block-size table + branch
// combining + fine thread split) achieves higher utilization than HAFLO at
// every point, and utilization degrades as the key size grows (per-thread
// register demand rises, occupancy falls).

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/ghe/ghe_engine.h"

namespace {

using flb::bench::EngineKind;
using flb::bench::FlModelKind;

// Work-weighted mean SM utilization for one engine configuration running a
// model's HE-op mix at a saturated batch size.
double MeasureUtilization(EngineKind engine, FlModelKind model, int key_bits) {
  const auto traits = flb::core::TraitsFor(engine);
  auto device = std::make_shared<flb::gpusim::Device>(
      flb::gpusim::DeviceSpec::Rtx3090(), nullptr, traits.branch_combining);
  flb::ghe::GheConfig cfg;
  cfg.words_per_thread = traits.words_per_thread;
  flb::ghe::GheEngine ghe(device, cfg);

  const int64_t batch = 1 << 17;
  switch (model) {
    case FlModelKind::kHomoLr:
    case FlModelKind::kHomoNn:
      ghe.ModelPaillierEncrypt(key_bits, batch).value();
      ghe.ModelPaillierAdd(key_bits, batch).value();
      ghe.ModelPaillierDecrypt(key_bits, batch).value();
      break;
    case FlModelKind::kHeteroLr:
      ghe.ModelPaillierEncrypt(key_bits, batch).value();
      ghe.ModelPaillierAddPlain(key_bits, batch).value();
      ghe.ModelPaillierDecrypt(key_bits, batch / 4).value();
      break;
    case FlModelKind::kHeteroSbt:
      ghe.ModelPaillierEncrypt(key_bits, batch / 8).value();
      ghe.ModelPaillierAdd(key_bits, batch * 4).value();
      ghe.ModelPaillierDecrypt(key_bits, batch / 8).value();
      break;
    case FlModelKind::kHeteroNn:
      ghe.ModelPaillierScalarMul(key_bits, batch, 34).value();
      ghe.ModelPaillierAdd(key_bits, batch).value();
      ghe.ModelPaillierDecrypt(key_bits, batch / 8).value();
      break;
  }
  return device->stats().MeanSmUtilization();
}

}  // namespace

int main() {
  using namespace flb::bench;
  PrintHeader("Fig. 6 — SM utilization in HE operations (%)");
  std::printf("%-12s %5s %10s %12s\n", "Model", "key", "HAFLO", "FLBooster");
  for (auto model : kAllModels) {
    for (int key : kKeySizes) {
      const double haflo = MeasureUtilization(EngineKind::kHaflo, model, key);
      const double booster =
          MeasureUtilization(EngineKind::kFlBooster, model, key);
      std::printf("%-12s %5d %9.1f%% %11.1f%%\n", Short(model).c_str(), key,
                  100.0 * haflo, 100.0 * booster);
    }
  }
  std::printf(
      "\nShape: FLBooster > HAFLO at every point; utilization decreases "
      "with key size (paper Fig. 6).\n");
  return 0;
}
