// Figure 7: the batch-compression ratio of FLBooster vs key size, per model.
//
// Measured as the ratio of communication bytes without BC (the "w/o BC"
// ablation) to bytes with BC, over identical training workloads. Shape
// targets: two orders of magnitude possible at 4096 bits; the ratio grows
// with the key size (more slots fit in a larger plaintext); roughly
// dataset-independent.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace flb::bench;
  PrintHeader("Fig. 7 — batch-compression ratio vs key size");
  std::printf("%-12s %5s %16s %16s %14s\n", "Model", "key", "bytes w/o BC",
              "bytes w/ BC", "ratio");
  for (auto model : kAllModels) {
    for (int key : kKeySizes) {
      const auto dataset = flb::fl::DatasetKind::kRcv1;
      const auto with_bc =
          MustRun(WorkloadFor(model, dataset, EngineKind::kFlBooster, key));
      const auto without_bc = MustRun(
          WorkloadFor(model, dataset, EngineKind::kFlBoosterNoBc, key));
      const double ratio = static_cast<double>(without_bc.comm_bytes) /
                           static_cast<double>(with_bc.comm_bytes);
      std::printf("%-12s %5d %16llu %16llu %13.1fx\n", Short(model).c_str(),
                  key,
                  static_cast<unsigned long long>(without_bc.comm_bytes),
                  static_cast<unsigned long long>(with_bc.comm_bytes), ratio);
    }
  }
  std::printf(
      "\nShape: ratio grows with key size, reaching two orders of magnitude "
      "(paper Fig. 7).\n");
  return 0;
}
