// Figure 8: convergence — training loss against elapsed (simulated) time on
// the Synthetic dataset at 1024-bit keys, for all four models under FATE,
// HAFLO, and FLBooster.
//
// Shape targets: every engine walks the SAME loss trajectory per epoch
// (acceleration does not change learning), but FLBooster reaches each loss
// level tens-to-hundreds of times sooner than FATE and an order of
// magnitude sooner than HAFLO.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace flb::bench;
  PrintHeader("Fig. 8 — convergence on Synthetic @ 1024-bit keys");
  for (auto model : kAllModels) {
    std::printf("\n-- %s: loss vs cumulative simulated seconds --\n",
                Short(model).c_str());
    std::printf("%-10s", "Method");
    const int epochs = 5;
    for (int e = 0; e < epochs; ++e) std::printf("   epoch%-2d        ", e);
    std::printf("\n");
    const EngineKind engines[] = {EngineKind::kFate, EngineKind::kHaflo,
                                  EngineKind::kFlBooster};
    double time_to_final[3] = {0, 0, 0};
    for (int ei = 0; ei < 3; ++ei) {
      auto cfg =
          WorkloadFor(model, flb::fl::DatasetKind::kSynthetic, engines[ei], 1024);
      cfg.train.max_epochs = epochs;
      cfg.train.tolerance = 0;  // run all epochs for a full curve
      auto report = MustRun(cfg);
      std::printf("%-10s", flb::core::EngineName(engines[ei]).c_str());
      for (const auto& epoch : report.train.epochs) {
        std::printf("  %7.4f@%-8.1f", epoch.loss, epoch.sim_seconds_cum);
      }
      std::printf("\n");
      time_to_final[ei] = report.total_seconds;
    }
    std::printf(
        "   time to final loss: FATE/FLBooster = %.1fx, HAFLO/FLBooster = "
        "%.1fx\n",
        time_to_final[0] / time_to_final[2],
        time_to_final[1] / time_to_final[2]);
  }
  std::printf(
      "\nShape: identical per-epoch losses, FLBooster fastest by 1-2 orders "
      "of magnitude (paper Fig. 8: 28.7x-144.3x vs FATE, 14.3x-75.2x vs "
      "HAFLO).\n");
  return 0;
}
