// Microbenchmarks for the modular-arithmetic substrate (paper Algorithms
// 1 & 2 and the §IV-A3 design choices):
//   * basic Montgomery (Alg. 1) vs word-scanning CIOS vs the thread-
//     decomposed parallel CIOS (Alg. 2) at each key size;
//   * sliding-window width sweep for modular exponentiation.

#include <benchmark/benchmark.h>

#include "bench/gbench_json.h"
#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/ghe/parallel_montgomery.h"

namespace {

using flb::Rng;
using flb::crypto::MontgomeryContext;
using flb::mpint::BigInt;

BigInt OddModulus(int bits, Rng& rng) {
  BigInt n = BigInt::Random(rng, bits);
  auto w = n.ToFixedWords(bits / 32);
  w[0] |= 1u;
  w.back() |= 0x80000000u;
  return BigInt::FromWords(std::move(w));
}

void BM_MontMulBasic(benchmark::State& state) {
  Rng rng(1);
  const int bits = static_cast<int>(state.range(0));
  auto ctx = MontgomeryContext::Create(OddModulus(bits, rng)).value();
  BigInt a = BigInt::RandomBelow(rng, ctx.modulus());
  BigInt b = BigInt::RandomBelow(rng, ctx.modulus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.MontMulBasic(a, b));
  }
}
BENCHMARK(BM_MontMulBasic)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontMulCios(benchmark::State& state) {
  Rng rng(1);
  const int bits = static_cast<int>(state.range(0));
  auto ctx = MontgomeryContext::Create(OddModulus(bits, rng)).value();
  BigInt a = BigInt::RandomBelow(rng, ctx.modulus());
  BigInt b = BigInt::RandomBelow(rng, ctx.modulus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.MontMul(a, b));
  }
}
BENCHMARK(BM_MontMulCios)->Arg(1024)->Arg(2048)->Arg(4096);

// The same CIOS workload with the fixed-width kernel dispatch disabled —
// the generic heap-backed radix-2^32 loop. Paired with BM_MontMulCios by
// scripts/check_bench_regression.sh for the machine-independent speedup
// ratio gate.
void BM_MontMulCiosGeneric(benchmark::State& state) {
  Rng rng(1);
  const int bits = static_cast<int>(state.range(0));
  auto ctx = MontgomeryContext::Create(OddModulus(bits, rng),
                                       /*use_fixed_kernels=*/false).value();
  BigInt a = BigInt::RandomBelow(rng, ctx.modulus());
  BigInt b = BigInt::RandomBelow(rng, ctx.modulus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.MontMul(a, b));
  }
}
BENCHMARK(BM_MontMulCiosGeneric)->Arg(1024)->Arg(2048)->Arg(4096);

// Host-side execution of the Algorithm 2 decomposition. Thread count is the
// second argument; on real hardware the threads run concurrently — here the
// interest is the limb-op and communication accounting.
void BM_MontMulParallelCios(benchmark::State& state) {
  Rng rng(1);
  const int bits = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto ctx = MontgomeryContext::Create(OddModulus(bits, rng)).value();
  const size_t s = ctx.num_limbs();
  const auto aw = BigInt::RandomBelow(rng, ctx.modulus()).ToFixedWords(s);
  const auto bw = BigInt::RandomBelow(rng, ctx.modulus()).ToFixedWords(s);
  std::vector<uint32_t> out(s);
  uint64_t comms = 0;
  for (auto _ : state) {
    auto stats = flb::ghe::ParallelMontMul(aw.data(), bw.data(),
                                           ctx.modulus().words().data(),
                                           ctx.n0_inv(), s, threads,
                                           out.data())
                     .value();
    comms += stats.inter_thread_comms;
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["inter_thread_comms"] =
      benchmark::Counter(static_cast<double>(comms),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MontMulParallelCios)
    ->Args({1024, 1})
    ->Args({1024, 8})
    ->Args({1024, 32})
    ->Args({2048, 16})
    ->Args({4096, 32});

void BM_ModPowWindowSweep(benchmark::State& state) {
  Rng rng(2);
  const int window = static_cast<int>(state.range(0));
  auto ctx = MontgomeryContext::Create(OddModulus(1024, rng)).value();
  BigInt base = BigInt::RandomBelow(rng, ctx.modulus());
  BigInt exp = BigInt::Random(rng, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ModPow(base, exp, window));
  }
  ctx.ResetCounters();
  ctx.ModPow(base, exp, window);
  state.counters["mont_muls"] =
      static_cast<double>(ctx.mont_mul_count());
}
BENCHMARK(BM_ModPowWindowSweep)->DenseRange(1, 7);

void BM_ModPowAuto(benchmark::State& state) {
  Rng rng(3);
  const int bits = static_cast<int>(state.range(0));
  auto ctx = MontgomeryContext::Create(OddModulus(bits, rng)).value();
  BigInt base = BigInt::RandomBelow(rng, ctx.modulus());
  BigInt exp = BigInt::Random(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ModPow(base, exp));
  }
}
BENCHMARK(BM_ModPowAuto)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_ModPowAutoGeneric(benchmark::State& state) {
  Rng rng(3);
  const int bits = static_cast<int>(state.range(0));
  auto ctx = MontgomeryContext::Create(OddModulus(bits, rng),
                                       /*use_fixed_kernels=*/false).value();
  BigInt base = BigInt::RandomBelow(rng, ctx.modulus());
  BigInt exp = BigInt::Random(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ModPow(base, exp));
  }
}
BENCHMARK(BM_ModPowAutoGeneric)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

}  // namespace

FLB_GBENCH_MAIN();
