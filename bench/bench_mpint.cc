// Microbenchmarks for the multi-precision integer substrate: the basic
// vector ops behind Table I and the Karatsuba-threshold design choice
// called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include "bench/gbench_json.h"
#include "src/common/rng.h"
#include "src/mpint/bigint.h"

namespace {

using flb::Rng;
using flb::mpint::BigInt;

void BM_Add(benchmark::State& state) {
  Rng rng(1);
  BigInt a = BigInt::Random(rng, state.range(0));
  BigInt b = BigInt::Random(rng, state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(BigInt::Add(a, b));
}
BENCHMARK(BM_Add)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Mul(benchmark::State& state) {
  Rng rng(2);
  BigInt a = BigInt::Random(rng, state.range(0));
  BigInt b = BigInt::Random(rng, state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(BigInt::Mul(a, b));
}
// Crosses the Karatsuba threshold (40 limbs = 1280 bits): the growth rate
// visibly drops past it.
BENCHMARK(BM_Mul)->Arg(512)->Arg(1024)->Arg(1280)->Arg(2048)->Arg(4096)
    ->Arg(8192)->Arg(16384);

void BM_DivMod(benchmark::State& state) {
  Rng rng(3);
  BigInt a = BigInt::Random(rng, 2 * state.range(0));
  BigInt b = BigInt::Random(rng, state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(BigInt::DivMod(a, b).value());
}
BENCHMARK(BM_DivMod)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_ModInverse(benchmark::State& state) {
  Rng rng(4);
  BigInt n = BigInt::Random(rng, state.range(0));
  if (n.IsEven()) n = BigInt::Add(n, BigInt(1));
  BigInt a = BigInt::RandomBelow(rng, n);
  while (!BigInt::Gcd(a, n).IsOne()) a = BigInt::RandomBelow(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModInverse(a, n).value());
  }
}
BENCHMARK(BM_ModInverse)->Arg(512)->Arg(1024)->Arg(2048);

void BM_HexRoundTrip(benchmark::State& state) {
  Rng rng(5);
  BigInt a = BigInt::Random(rng, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::FromHex(a.ToHex()).value());
  }
}
BENCHMARK(BM_HexRoundTrip)->Arg(1024)->Arg(4096);

}  // namespace

FLB_GBENCH_MAIN();
