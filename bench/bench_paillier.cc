// Microbenchmarks for the Paillier implementation and its ablations
// (DESIGN.md §3): g = n+1 fast path vs random g, CRT vs plain decryption,
// fixed-width kernels vs the generic limb path, and the raw op costs that
// the cost model (Eq. 10) prices.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "bench/gbench_json.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/crypto/paillier.h"

namespace {

using flb::Rng;
using flb::common::ThreadPool;
using flb::crypto::PaillierContext;
using flb::crypto::PaillierKeyGen;
using flb::crypto::PaillierOptions;
using flb::mpint::BigInt;

// Key material is expensive; cache one key pair per (bits, options) cell.
const PaillierContext& CachedContext(int bits, bool g_n_plus_1, bool crt) {
  static std::map<std::tuple<int, bool, bool>, PaillierContext> cache;
  auto key = std::make_tuple(bits, g_n_plus_1, crt);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Rng rng(1000 + bits + 2 * g_n_plus_1 + crt);
    PaillierOptions opts;
    opts.use_g_n_plus_1 = g_n_plus_1;
    opts.use_crt_decryption = crt;
    auto keys = PaillierKeyGen(bits, rng, opts).value();
    it = cache.emplace(key, PaillierContext::Create(keys, opts).value()).first;
  }
  return it->second;
}

void BM_Encrypt(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool fast_g = state.range(1) != 0;
  const auto& ctx = CachedContext(bits, fast_g, true);
  Rng rng(7);
  BigInt m = BigInt::RandomBelow(rng, ctx.pub().n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Encrypt(m, rng).value());
  }
  state.SetLabel(fast_g ? "g=n+1" : "random g");
}
BENCHMARK(BM_Encrypt)
    ->Args({1024, 1})
    ->Args({1024, 0})
    ->Args({2048, 1})
    ->Args({2048, 0});

void BM_Decrypt(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool crt = state.range(1) != 0;
  const auto& ctx = CachedContext(bits, true, crt);
  Rng rng(8);
  BigInt c = ctx.Encrypt(BigInt(123456789), rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Decrypt(c).value());
  }
  state.SetLabel(crt ? "CRT" : "plain");
}
BENCHMARK(BM_Decrypt)
    ->Args({1024, 1})
    ->Args({1024, 0})
    ->Args({2048, 1})
    ->Args({2048, 0});

void BM_HomomorphicAdd(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto& ctx = CachedContext(bits, true, true);
  Rng rng(9);
  BigInt c1 = ctx.Encrypt(BigInt(1), rng).value();
  BigInt c2 = ctx.Encrypt(BigInt(2), rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Add(c1, c2).value());
  }
}
BENCHMARK(BM_HomomorphicAdd)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_ScalarMulSmallVsNegative(benchmark::State& state) {
  // The ciphertext-inverse path keeps negative fixed-point scalars as cheap
  // as positive ones (without it the exponent would be |n| bits).
  const auto& ctx = CachedContext(1024, true, true);
  Rng rng(10);
  BigInt c = ctx.Encrypt(BigInt(777), rng).value();
  const bool negative = state.range(0) != 0;
  const BigInt k = negative
                       ? BigInt::Sub(ctx.pub().n, BigInt(1 << 20))  // -2^20
                       : BigInt(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ScalarMul(c, k).value());
  }
  state.SetLabel(negative ? "negative scalar" : "positive scalar");
}
BENCHMARK(BM_ScalarMulSmallVsNegative)->Arg(0)->Arg(1);

// Shared pools per thread count so the batch benchmarks don't pay thread
// spawn/teardown inside the timed region.
ThreadPool& CachedPool(int threads) {
  static std::map<int, std::unique_ptr<ThreadPool>> pools;
  auto it = pools.find(threads);
  if (it == pools.end()) {
    it = pools.emplace(threads, std::make_unique<ThreadPool>(threads)).first;
  }
  return *it->second;
}

const PaillierContext& CachedBatchContext(int bits, bool secure,
                                          bool fixed_width = true) {
  static std::map<std::tuple<int, bool, bool>, PaillierContext> cache;
  auto key = std::make_tuple(bits, secure, fixed_width);
  auto it = cache.find(key);
  if (it == cache.end()) {
    // The seed ignores fixed_width, so the fixed and generic contexts hold
    // the same key material — the timing difference is the kernel alone.
    Rng rng(2000 + bits + secure);
    PaillierOptions opts;
    opts.secure_obfuscation = secure;
    opts.use_fixed_width_kernels = fixed_width;
    auto keys = PaillierKeyGen(bits, rng, opts).value();
    it = cache.emplace(key, PaillierContext::Create(keys, opts).value()).first;
  }
  return it->second;
}

// Host execution engine: EncryptBatch wall-clock over {key bits, obfuscation
// path, pool threads}. secure=0 is the seeded obfuscation pool (precompute
// cache); secure=1 a fresh powm per element. Outputs are bit-identical at
// any thread count, so only time/iter differs across the threads axis.
void BM_EncryptBatch(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool secure = state.range(1) != 0;
  const int threads = static_cast<int>(state.range(2));
  const auto& ctx = CachedBatchContext(bits, secure);
  auto& pool = CachedPool(threads);
  constexpr size_t kBatch = 64;
  std::vector<BigInt> ms;
  for (size_t i = 0; i < kBatch; ++i) ms.push_back(BigInt(i * 13 + 1));
  Rng rng(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.EncryptBatch(ms, rng, &pool).value());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel((secure ? "secure powm" : "obf. pool") + std::string(", ") +
                 std::to_string(threads) + " thread(s)");
}
BENCHMARK(BM_EncryptBatch)
    ->Args({1024, 1, 1})
    ->Args({1024, 0, 1})
    ->Args({1024, 0, 4})
    ->Args({2048, 0, 1})
    ->Args({2048, 0, 4})
    ->Unit(benchmark::kMillisecond);

void BM_DecryptBatch(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto& ctx = CachedBatchContext(bits, false);
  auto& pool = CachedPool(threads);
  constexpr size_t kBatch = 64;
  std::vector<BigInt> ms;
  for (size_t i = 0; i < kBatch; ++i) ms.push_back(BigInt(i * 7 + 3));
  Rng rng(22);
  const auto cs = ctx.EncryptBatch(ms, rng, &pool).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.DecryptBatch(cs, &pool).value());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel(std::to_string(threads) + " thread(s)");
}
BENCHMARK(BM_DecryptBatch)
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({2048, 1})
    ->Args({2048, 4})
    ->Unit(benchmark::kMillisecond);

// Generic-path twins of the batch benchmarks: same keys, same workload,
// fixed-width kernels disabled. scripts/check_bench_regression.sh asserts a
// minimum fixed/generic speedup ratio from these pairs — a machine-
// independent gate alongside the absolute baseline comparison.
void BM_EncryptBatchGeneric(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto& ctx = CachedBatchContext(bits, false, /*fixed_width=*/false);
  auto& pool = CachedPool(1);
  constexpr size_t kBatch = 64;
  std::vector<BigInt> ms;
  for (size_t i = 0; i < kBatch; ++i) ms.push_back(BigInt(i * 13 + 1));
  Rng rng(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.EncryptBatch(ms, rng, &pool).value());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("generic limb path, 1 thread(s)");
}
BENCHMARK(BM_EncryptBatchGeneric)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_DecryptBatchGeneric(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto& ctx = CachedBatchContext(bits, false, /*fixed_width=*/false);
  auto& pool = CachedPool(1);
  constexpr size_t kBatch = 64;
  std::vector<BigInt> ms;
  for (size_t i = 0; i < kBatch; ++i) ms.push_back(BigInt(i * 7 + 3));
  Rng rng(22);
  const auto cs = ctx.EncryptBatch(ms, rng, &pool).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.DecryptBatch(cs, &pool).value());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("generic limb path, 1 thread(s)");
}
BENCHMARK(BM_DecryptBatchGeneric)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_KeyGen(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  uint64_t seed = 42;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(PaillierKeyGen(bits, rng).value());
  }
}
BENCHMARK(BM_KeyGen)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

FLB_GBENCH_MAIN();
