// §V / Fig. 4 ablation: what the pipelined staging buys over serial
// staging, across chunk counts and key sizes.
//
// Shape targets: overlap always helps; the benefit saturates once the
// bottleneck stage (the kernel for CPU-light chains, the PCIe copies for
// huge ciphertext batches) dominates; too many chunks re-introduce
// per-chunk fixed costs.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/core/pipeline.h"
#include "src/core/platform.h"
#include "src/gpusim/device.h"

namespace {

std::string Pct(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p * 100.0);
  return std::string(buf) + "%";
}

// Chaos sweep: Homo-LR epoch time and final accuracy as packet loss and a
// straggler are dialed in. Faulty cells route through the reliable channel
// (ack/retransmit with backoff); a straggler past the 2x deadline gate is
// excluded from the round and the FedAvg denominator renormalized.
void RobustnessSweepSection() {
  using namespace flb;
  bench::BeginSection("robustness sweep");
  std::printf(
      "Homo-LR under fault plans: drop rate x straggler factor. Loss costs\n"
      "retransmissions (time), the straggler costs participation\n"
      "(accuracy pressure); the clean cell is the baseline.\n");
  std::printf("%7s %10s %12s %10s %13s %10s\n", "drop", "straggler",
              "epoch (s)", "accuracy", "retransmits", "dropouts");
  auto& json = bench::BenchJson::Global();
  for (double drop : {0.0, 0.005, 0.02}) {
    for (int straggler : {1, 4}) {
      core::PlatformConfig cfg;
      cfg.engine = core::EngineKind::kFlBooster;
      cfg.model = core::FlModelKind::kHomoLr;
      cfg.dataset =
          fl::DatasetSpec{fl::DatasetKind::kSynthetic, 1024, 32, 32, 11};
      cfg.num_parties = 4;
      cfg.key_bits = 1024;
      cfg.modeled = true;
      cfg.train.max_epochs = 3;
      cfg.train.batch_size = 64;
      cfg.train.tolerance = 1e-9;
      cfg.train.straggler_deadline_factor = 2.0;
      if (bench::SmokeMode()) {
        cfg.dataset.rows = 128;
        cfg.dataset.cols = 16;
        cfg.dataset.nnz_per_row = 16;
        cfg.train.max_epochs = 2;
      }
      if (drop > 0.0 || straggler > 1) {
        char plan[96];
        std::snprintf(plan, sizeof(plan),
                      "seed=11;drop=%g;straggler=party1:%d", drop, straggler);
        cfg.fault_plan = plan;
      }
      const auto report = bench::MustRun(cfg);
      const double epoch_s = report.SecondsPerEpoch();
      const auto dropouts = report.robustness.TotalDropouts();
      std::printf("%7s %9dx %12.5f %10.4f %13llu %10llu\n",
                  Pct(drop).c_str(), straggler, epoch_s,
                  report.train.final_accuracy,
                  static_cast<unsigned long long>(
                      report.channel_stats.retransmits),
                  static_cast<unsigned long long>(dropouts));
      const std::string cell =
          ",drop=" + Pct(drop) + ",straggler=" + std::to_string(straggler);
      json.Record("epoch_seconds" + cell, epoch_s, "s");
      json.Record("final_accuracy" + cell, report.train.final_accuracy, "");
      json.Record("retransmits" + cell,
                  static_cast<double>(report.channel_stats.retransmits), "");
      json.Record("dropouts" + cell, static_cast<double>(dropouts), "");
    }
  }
  std::printf(
      "\nShape: loss adds retransmission time roughly linearly; the 4x\n"
      "straggler trips the deadline gate and drops out, so accuracy shifts\n"
      "slightly (its shard leaves the average) while epoch time stays near\n"
      "the clean cell.\n");
}

// A small multi-stream batch through the real device timeline, forced onto
// the chunked path so the exported trace (FLB_TRACE_OUT) shows H2D copies
// overlapping kernels across streams — the visual counterpart of Fig. 4.
void TraceDemoSection() {
  using namespace flb;
  bench::BeginSection("trace_demo");
  std::printf(
      "Multi-stream chunked hom-add on the device timeline; run with\n"
      "FLB_TRACE_OUT=pipeline.trace.json and load the file in Perfetto to\n"
      "see the copy/compute overlap.\n");
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), nullptr);
  ghe::GheConfig cfg;
  cfg.streams = 4;
  cfg.adaptive_chunking = false;  // always chunk: the overlap must be visible
  ghe::GheEngine engine(device, cfg);
  engine.ModelPaillierAdd(1024, 1 << 16).value();
  const auto& batch = engine.last_batch();
  std::printf(
      "chunks=%d streams=%d makespan=%.6fs kernel_busy=%.6fs "
      "transfer_busy=%.6fs overlap_saved=%.6fs\n",
      batch.chunks, batch.streams, batch.makespan_seconds,
      batch.kernel_busy_seconds, batch.transfer_busy_seconds,
      batch.overlap_saved_seconds);
  auto& json = flb::bench::BenchJson::Global();
  json.Record("trace_demo_makespan", batch.makespan_seconds, "s");
  json.Record("trace_demo_overlap_saved", batch.overlap_saved_seconds, "s");
}

}  // namespace

int main() {
  using namespace flb;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), nullptr);
  ghe::GheEngine engine(device);
  auto& json = bench::BenchJson::Global();

  std::printf("==== Fig. 4 pipeline — overlapped vs serial staging ====\n");
  bench::BeginSection("encrypt (kernel-bound)");
  std::printf("-- batched encryption (kernel-bound: overlap buys little) --\n");
  std::printf("%5s %9s %7s %12s %12s %9s %14s\n", "key", "batch", "chunks",
              "serial (s)", "overlap (s)", "speedup", "bottleneck");
  for (int key : {1024, 4096}) {
    for (int chunks : {1, 4, 16}) {
      const int64_t batch = 1 << 16;
      auto r = core::PipelinedModel::Encrypt(engine, key, batch, chunks)
                   .value();
      auto bottleneck =
          core::PipelineSchedule::Bottleneck(r.stages_per_chunk).value();
      std::printf("%5d %9lld %7d %12.4f %12.4f %8.2fx %14s\n", key,
                  static_cast<long long>(batch), chunks, r.serial_seconds,
                  r.overlapped_seconds, r.speedup, bottleneck.name.c_str());
      json.Record("encrypt_speedup,key=" + std::to_string(key) +
                      ",chunks=" + std::to_string(chunks),
                  r.speedup, "x");
    }
  }
  bench::BeginSection("hom-add (transfer-bound)");
  std::printf(
      "-- batched homomorphic addition (transfer-bound: chunked overlap "
      "hides the copies) --\n");
  std::printf("%5s %9s %7s %12s %12s %9s %14s\n", "key", "batch", "chunks",
              "serial (s)", "overlap (s)", "speedup", "bottleneck");
  for (int key : {1024, 4096}) {
    for (int chunks : {1, 2, 4, 8, 16, 64}) {
      const int64_t batch = 1 << 18;
      auto r =
          core::PipelinedModel::HomAdd(engine, key, batch, chunks).value();
      auto bottleneck =
          core::PipelineSchedule::Bottleneck(r.stages_per_chunk).value();
      std::printf("%5d %9lld %7d %12.4f %12.4f %8.2fx %14s\n", key,
                  static_cast<long long>(batch), chunks, r.serial_seconds,
                  r.overlapped_seconds, r.speedup, bottleneck.name.c_str());
      json.Record("hom_add_speedup,key=" + std::to_string(key) +
                      ",chunks=" + std::to_string(chunks),
                  r.speedup, "x");
    }
  }
  bench::BeginSection("device stream timeline");
  std::printf(
      "-- device stream timeline (multi-stream async execution) --\n");
  std::printf("%5s %9s %7s %13s %13s %8s\n", "key", "batch", "streams",
              "dev-serial(s)", "dev-async(s)", "used");
  for (int key : {1024, 4096}) {
    for (int chunks : {2, 4, 8}) {
      const int64_t batch = 1 << 18;
      auto r =
          core::PipelinedModel::HomAdd(engine, key, batch, chunks).value();
      std::printf("%5d %9lld %7d %13.4f %13.4f %8d\n", key,
                  static_cast<long long>(batch), chunks,
                  r.device_serial_seconds, r.device_async_seconds,
                  r.streams_used);
      json.Record("device_async_seconds,key=" + std::to_string(key) +
                      ",chunks=" + std::to_string(chunks),
                  r.device_async_seconds, "s");
    }
  }
  std::printf(
      "\nShape: encryption pipelines ~1x (kernel dominates); additions "
      "approach the sum/bottleneck bound as chunks grow (paper §V). The "
      "device timeline confirms the closed-form model: the async makespan "
      "beats the serialized launch wherever the engine chooses to chunk.\n");
  TraceDemoSection();
  RobustnessSweepSection();
  return 0;
}
