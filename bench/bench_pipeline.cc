// §V / Fig. 4 ablation: what the pipelined staging buys over serial
// staging, across chunk counts and key sizes.
//
// Shape targets: overlap always helps; the benefit saturates once the
// bottleneck stage (the kernel for CPU-light chains, the PCIe copies for
// huge ciphertext batches) dominates; too many chunks re-introduce
// per-chunk fixed costs.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/core/pipeline.h"
#include "src/gpusim/device.h"

namespace {

// A small multi-stream batch through the real device timeline, forced onto
// the chunked path so the exported trace (FLB_TRACE_OUT) shows H2D copies
// overlapping kernels across streams — the visual counterpart of Fig. 4.
void TraceDemoSection() {
  using namespace flb;
  bench::BeginSection("trace_demo");
  std::printf(
      "Multi-stream chunked hom-add on the device timeline; run with\n"
      "FLB_TRACE_OUT=pipeline.trace.json and load the file in Perfetto to\n"
      "see the copy/compute overlap.\n");
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), nullptr);
  ghe::GheConfig cfg;
  cfg.streams = 4;
  cfg.adaptive_chunking = false;  // always chunk: the overlap must be visible
  ghe::GheEngine engine(device, cfg);
  engine.ModelPaillierAdd(1024, 1 << 16).value();
  const auto& batch = engine.last_batch();
  std::printf(
      "chunks=%d streams=%d makespan=%.6fs kernel_busy=%.6fs "
      "transfer_busy=%.6fs overlap_saved=%.6fs\n",
      batch.chunks, batch.streams, batch.makespan_seconds,
      batch.kernel_busy_seconds, batch.transfer_busy_seconds,
      batch.overlap_saved_seconds);
  auto& json = flb::bench::BenchJson::Global();
  json.Record("trace_demo_makespan", batch.makespan_seconds, "s");
  json.Record("trace_demo_overlap_saved", batch.overlap_saved_seconds, "s");
}

}  // namespace

int main() {
  using namespace flb;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), nullptr);
  ghe::GheEngine engine(device);
  auto& json = bench::BenchJson::Global();

  std::printf("==== Fig. 4 pipeline — overlapped vs serial staging ====\n");
  bench::BeginSection("encrypt (kernel-bound)");
  std::printf("-- batched encryption (kernel-bound: overlap buys little) --\n");
  std::printf("%5s %9s %7s %12s %12s %9s %14s\n", "key", "batch", "chunks",
              "serial (s)", "overlap (s)", "speedup", "bottleneck");
  for (int key : {1024, 4096}) {
    for (int chunks : {1, 4, 16}) {
      const int64_t batch = 1 << 16;
      auto r = core::PipelinedModel::Encrypt(engine, key, batch, chunks)
                   .value();
      auto bottleneck =
          core::PipelineSchedule::Bottleneck(r.stages_per_chunk).value();
      std::printf("%5d %9lld %7d %12.4f %12.4f %8.2fx %14s\n", key,
                  static_cast<long long>(batch), chunks, r.serial_seconds,
                  r.overlapped_seconds, r.speedup, bottleneck.name.c_str());
      json.Record("encrypt_speedup,key=" + std::to_string(key) +
                      ",chunks=" + std::to_string(chunks),
                  r.speedup, "x");
    }
  }
  bench::BeginSection("hom-add (transfer-bound)");
  std::printf(
      "-- batched homomorphic addition (transfer-bound: chunked overlap "
      "hides the copies) --\n");
  std::printf("%5s %9s %7s %12s %12s %9s %14s\n", "key", "batch", "chunks",
              "serial (s)", "overlap (s)", "speedup", "bottleneck");
  for (int key : {1024, 4096}) {
    for (int chunks : {1, 2, 4, 8, 16, 64}) {
      const int64_t batch = 1 << 18;
      auto r =
          core::PipelinedModel::HomAdd(engine, key, batch, chunks).value();
      auto bottleneck =
          core::PipelineSchedule::Bottleneck(r.stages_per_chunk).value();
      std::printf("%5d %9lld %7d %12.4f %12.4f %8.2fx %14s\n", key,
                  static_cast<long long>(batch), chunks, r.serial_seconds,
                  r.overlapped_seconds, r.speedup, bottleneck.name.c_str());
      json.Record("hom_add_speedup,key=" + std::to_string(key) +
                      ",chunks=" + std::to_string(chunks),
                  r.speedup, "x");
    }
  }
  bench::BeginSection("device stream timeline");
  std::printf(
      "-- device stream timeline (multi-stream async execution) --\n");
  std::printf("%5s %9s %7s %13s %13s %8s\n", "key", "batch", "streams",
              "dev-serial(s)", "dev-async(s)", "used");
  for (int key : {1024, 4096}) {
    for (int chunks : {2, 4, 8}) {
      const int64_t batch = 1 << 18;
      auto r =
          core::PipelinedModel::HomAdd(engine, key, batch, chunks).value();
      std::printf("%5d %9lld %7d %13.4f %13.4f %8d\n", key,
                  static_cast<long long>(batch), chunks,
                  r.device_serial_seconds, r.device_async_seconds,
                  r.streams_used);
      json.Record("device_async_seconds,key=" + std::to_string(key) +
                      ",chunks=" + std::to_string(chunks),
                  r.device_async_seconds, "s");
    }
  }
  std::printf(
      "\nShape: encryption pipelines ~1x (kernel dominates); additions "
      "approach the sum/bottleneck bound as chunks grow (paper §V). The "
      "device timeline confirms the closed-form model: the async makespan "
      "beats the serialized launch wherever the engine chooses to chunk.\n");
  TraceDemoSection();
  return 0;
}
