// §V / Fig. 4 ablation: what the pipelined staging buys over serial
// staging, across chunk counts and key sizes.
//
// Shape targets: overlap always helps; the benefit saturates once the
// bottleneck stage (the kernel for CPU-light chains, the PCIe copies for
// huge ciphertext batches) dominates; too many chunks re-introduce
// per-chunk fixed costs.

#include <cstdio>
#include <memory>

#include "src/core/pipeline.h"
#include "src/gpusim/device.h"

int main() {
  using namespace flb;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), nullptr);
  ghe::GheEngine engine(device);

  std::printf("==== Fig. 4 pipeline — overlapped vs serial staging ====\n");
  std::printf("\n-- batched encryption (kernel-bound: overlap buys little) --\n");
  std::printf("%5s %9s %7s %12s %12s %9s %14s\n", "key", "batch", "chunks",
              "serial (s)", "overlap (s)", "speedup", "bottleneck");
  for (int key : {1024, 4096}) {
    for (int chunks : {1, 4, 16}) {
      const int64_t batch = 1 << 16;
      auto r = core::PipelinedModel::Encrypt(engine, key, batch, chunks)
                   .value();
      auto bottleneck =
          core::PipelineSchedule::Bottleneck(r.stages_per_chunk).value();
      std::printf("%5d %9lld %7d %12.4f %12.4f %8.2fx %14s\n", key,
                  static_cast<long long>(batch), chunks, r.serial_seconds,
                  r.overlapped_seconds, r.speedup, bottleneck.name.c_str());
    }
  }
  std::printf(
      "\n-- batched homomorphic addition (transfer-bound: chunked overlap "
      "hides the copies) --\n");
  std::printf("%5s %9s %7s %12s %12s %9s %14s\n", "key", "batch", "chunks",
              "serial (s)", "overlap (s)", "speedup", "bottleneck");
  for (int key : {1024, 4096}) {
    for (int chunks : {1, 2, 4, 8, 16, 64}) {
      const int64_t batch = 1 << 18;
      auto r =
          core::PipelinedModel::HomAdd(engine, key, batch, chunks).value();
      auto bottleneck =
          core::PipelineSchedule::Bottleneck(r.stages_per_chunk).value();
      std::printf("%5d %9lld %7d %12.4f %12.4f %8.2fx %14s\n", key,
                  static_cast<long long>(batch), chunks, r.serial_seconds,
                  r.overlapped_seconds, r.speedup, bottleneck.name.c_str());
    }
  }
  std::printf(
      "\n-- device stream timeline (multi-stream async execution) --\n");
  std::printf("%5s %9s %7s %13s %13s %8s\n", "key", "batch", "streams",
              "dev-serial(s)", "dev-async(s)", "used");
  for (int key : {1024, 4096}) {
    for (int chunks : {2, 4, 8}) {
      const int64_t batch = 1 << 18;
      auto r =
          core::PipelinedModel::HomAdd(engine, key, batch, chunks).value();
      std::printf("%5d %9lld %7d %13.4f %13.4f %8d\n", key,
                  static_cast<long long>(batch), chunks,
                  r.device_serial_seconds, r.device_async_seconds,
                  r.streams_used);
    }
  }
  std::printf(
      "\nShape: encryption pipelines ~1x (kernel dominates); additions "
      "approach the sum/bottleneck bound as chunks grow (paper §V). The "
      "device timeline confirms the closed-form model: the async makespan "
      "beats the serialized launch wherever the engine chooses to chunk.\n");
  return 0;
}
