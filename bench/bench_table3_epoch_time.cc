// Table III: average running time per epoch (seconds) for FATE, HAFLO and
// FLBooster across 3 datasets x 4 models x {1024, 2048, 4096}-bit keys.
//
// Reproduction targets (shape, per the paper's §VI-C):
//   * FLBooster beats HAFLO beats FATE everywhere;
//   * FLBooster/HAFLO speedup lands in the tens-to-hundred band
//     (paper: 14.3x - 138x);
//   * the speedup grows with key size;
//   * Avazu (widest feature space) shows the largest gains.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace flb::bench;
  PrintHeader("Table III — average epoch time in seconds");
  std::printf("%-12s %-10s %5s %12s %12s %12s %9s %9s\n", "Model", "Dataset",
              "key", "FATE", "HAFLO", "FLBooster", "vsFATE", "vsHAFLO");
  double min_speedup = 1e300, max_speedup = 0;
  for (auto model : kAllModels) {
    for (auto dataset : kAllDatasets) {
      for (int key : kKeySizes) {
        const double fate =
            MustRun(WorkloadFor(model, dataset, EngineKind::kFate, key))
                .total_seconds;
        const double haflo =
            MustRun(WorkloadFor(model, dataset, EngineKind::kHaflo, key))
                .total_seconds;
        const double booster =
            MustRun(WorkloadFor(model, dataset, EngineKind::kFlBooster, key))
                .total_seconds;
        const double vs_fate = fate / booster;
        const double vs_haflo = haflo / booster;
        min_speedup = std::min(min_speedup, vs_haflo);
        max_speedup = std::max(max_speedup, vs_haflo);
        std::printf("%-12s %-10s %5d %12.2f %12.2f %12.3f %8.1fx %8.1fx\n",
                    Short(model).c_str(),
                    flb::fl::DatasetName(dataset).c_str(), key, fate, haflo,
                    booster, vs_fate, vs_haflo);
      }
    }
  }
  std::printf(
      "\nFLBooster speedup over HAFLO: %.1fx - %.1fx (paper: 14.3x - "
      "138x)\n",
      min_speedup, max_speedup);
  return 0;
}
