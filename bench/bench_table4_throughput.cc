// Table IV: throughput in HE operations (instances per second) — how many
// gradient values per second flow through encryption/aggregation/decryption
// under each engine.
//
// Shape targets: FATE in the hundreds, HAFLO orders of magnitude above it,
// FLBooster above HAFLO (packing multiplies value throughput); throughput
// falls roughly with the cube of the key size.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace flb::bench;
  PrintHeader("Table IV — HE-op throughput (values per second)");
  std::printf("%-12s %-10s %5s %12s %12s %12s\n", "Model", "Dataset", "key",
              "FATE", "HAFLO", "FLBooster");
  for (auto model : kAllModels) {
    for (auto dataset : kAllDatasets) {
      for (int key : kKeySizes) {
        double tp[3];
        const EngineKind engines[] = {EngineKind::kFate, EngineKind::kHaflo,
                                      EngineKind::kFlBooster};
        for (int e = 0; e < 3; ++e) {
          tp[e] = MustRun(WorkloadFor(model, dataset, engines[e], key))
                      .he_throughput;
        }
        std::printf("%-12s %-10s %5d %12.0f %12.0f %12.0f\n",
                    Short(model).c_str(),
                    flb::fl::DatasetName(dataset).c_str(), key, tp[0], tp[1],
                    tp[2]);
      }
    }
  }
  std::printf(
      "\nShape: FLBooster > HAFLO >> FATE; throughput decays steeply with "
      "key size (paper Table IV).\n");
  return 0;
}
