// Table IV: throughput in HE operations (instances per second) — how many
// gradient values per second flow through encryption/aggregation/decryption
// under each engine.
//
// Shape targets: FATE in the hundreds, HAFLO orders of magnitude above it,
// FLBooster above HAFLO (packing multiplies value throughput); throughput
// falls roughly with the cube of the key size.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/core/tuner.h"
#include "src/crypto/paillier.h"
#include "src/ghe/ghe_engine.h"

namespace {

// Multi-stream async GHE: model the same hom-add batch through a 1-stream
// (fully serialized) and a 4-stream (chunked, copy/compute overlapped)
// engine and compare the charged batch time. The host arithmetic is shared
// by both paths, so outputs are verified identical on real small-key
// ciphertexts first.
void PrintStreamOverlapSection() {
  using flb::Rng;
  using flb::mpint::BigInt;

  // Bit-exactness: the chunked schedule never touches the math.
  Rng rng(7);
  auto keys = flb::crypto::PaillierKeyGen(256, rng).value();
  auto ctx = flb::crypto::PaillierContext::Create(keys).value();
  std::vector<BigInt> ms;
  for (uint64_t i = 1; i <= 64; ++i) ms.push_back(BigInt(i * 17));
  flb::ghe::GheConfig four;
  four.streams = 4;
  four.adaptive_chunking = false;
  auto mk_device = [] {
    return std::make_shared<flb::gpusim::Device>(
        flb::gpusim::DeviceSpec::Rtx3090(), nullptr);
  };
  flb::ghe::GheEngine serial_engine(mk_device());
  flb::ghe::GheEngine chunked_engine(mk_device(), four);
  Rng r1(13), r4(13);
  auto cs1 = serial_engine.PaillierEncrypt(ctx, ms, r1).value();
  auto cs4 = chunked_engine.PaillierEncrypt(ctx, ms, r4).value();
  auto sum1 = serial_engine.PaillierAdd(ctx, cs1, cs1).value();
  auto sum4 = chunked_engine.PaillierAdd(ctx, cs4, cs4).value();
  bool identical = cs1.size() == cs4.size();
  for (size_t i = 0; identical && i < cs1.size(); ++i) {
    identical = cs1[i] == cs4[i] && sum1[i] == sum4[i];
  }

  flb::bench::BeginSection("stream_overlap");
  std::printf(
      "Multi-stream async GHE — modeled hom-add batch throughput "
      "(values/s)\n");
  std::printf("%5s %9s %12s %12s %8s\n", "key", "batch", "streams=1",
              "streams=4", "speedup");
  const int64_t batch = 1 << 16;
  for (int key : flb::bench::kKeySizes) {
    flb::SimClock c1, c4;
    auto d1 = std::make_shared<flb::gpusim::Device>(
        flb::gpusim::DeviceSpec::Rtx3090(), &c1);
    auto d4 = std::make_shared<flb::gpusim::Device>(
        flb::gpusim::DeviceSpec::Rtx3090(), &c4);
    flb::ghe::GheConfig cfg;
    cfg.streams = 1;
    flb::ghe::GheEngine one(d1, cfg);
    cfg.streams = 4;
    flb::ghe::GheEngine overlap(d4, cfg);
    one.ModelPaillierAdd(key, batch).value();
    overlap.ModelPaillierAdd(key, batch).value();
    const double t1 = c1.HeSeconds();
    const double t4 = c4.HeSeconds();
    std::printf("%5d %9lld %12.0f %12.0f %7.2fx\n", key,
                static_cast<long long>(batch), batch / t1, batch / t4,
                t1 / t4);
    const std::string suffix = "key=" + std::to_string(key);
    auto& json = flb::bench::BenchJson::Global();
    json.Record("hom_add_throughput_streams1," + suffix, batch / t1,
                "values/s");
    json.Record("hom_add_throughput_streams4," + suffix, batch / t4,
                "values/s");
    json.Record("stream_overlap_speedup," + suffix, t1 / t4, "x");
  }
  std::printf("Ciphertext outputs identical across paths: %s\n",
              identical ? "yes" : "NO — MISMATCH");
}

// Host execution engine: wall-clock cost of the real Paillier batch
// helpers. Two levers, measured separately:
//   - precompute caches: the seeded obfuscation pool (one MontMul per r^n
//     after the bases are built) vs secure_obfuscation (a fresh |n|-bit
//     powm per element) — compared at ONE thread so the ratio isolates the
//     cache, not parallelism;
//   - the work-stealing pool: the same batch at 1 thread vs all threads.
// Outputs are bit-identical across both thread counts (checked here).
void PrintHostWallclockSection() {
  using flb::Rng;
  using flb::WallTimer;
  using flb::common::ThreadPool;
  using flb::mpint::BigInt;

  flb::bench::BeginSection("host_wallclock");
  const int key = flb::bench::SmokeMode() ? 256 : 1024;
  const size_t batch = flb::bench::SmokeMode() ? 64 : 256;
  const int reps = flb::bench::SmokeMode() ? 1 : 3;

  Rng kg(77);
  auto keys = flb::crypto::PaillierKeyGen(key, kg).value();
  flb::crypto::PaillierOptions secure_opts;
  secure_opts.secure_obfuscation = true;
  auto secure_ctx =
      flb::crypto::PaillierContext::Create(keys, secure_opts).value();
  auto pool_ctx = flb::crypto::PaillierContext::Create(keys).value();

  std::vector<BigInt> ms;
  ms.reserve(batch);
  for (size_t i = 0; i < batch; ++i) ms.push_back(BigInt(i * 31 + 1));

  ThreadPool one(1);
  ThreadPool& many = ThreadPool::Global();

  auto time_encrypt = [&](const flb::crypto::PaillierContext& ctx,
                          ThreadPool* pool,
                          std::vector<BigInt>* out) {
    double best = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(11);  // same seed every run: outputs must be identical
      WallTimer t;
      *out = ctx.EncryptBatch(ms, rng, pool).value();
      const double s = t.ElapsedSeconds();
      if (rep == 0 || s < best) best = s;
    }
    return best * 1e3;
  };
  auto time_decrypt = [&](const std::vector<BigInt>& cs, ThreadPool* pool,
                          std::vector<BigInt>* out) {
    double best = 0;
    for (int rep = 0; rep < reps; ++rep) {
      WallTimer t;
      *out = pool_ctx.DecryptBatch(cs, pool).value();
      const double s = t.ElapsedSeconds();
      if (rep == 0 || s < best) best = s;
    }
    return best * 1e3;
  };

  std::vector<BigInt> enc_secure, enc_pool_1t, enc_pool_nt;
  const double secure_1t = time_encrypt(secure_ctx, &one, &enc_secure);
  const double pool_1t = time_encrypt(pool_ctx, &one, &enc_pool_1t);
  const double pool_nt = time_encrypt(pool_ctx, &many, &enc_pool_nt);
  std::vector<BigInt> dec_1t, dec_nt;
  const double dec_ms_1t = time_decrypt(enc_pool_1t, &one, &dec_1t);
  const double dec_ms_nt = time_decrypt(enc_pool_1t, &many, &dec_nt);

  bool identical = enc_pool_1t == enc_pool_nt && dec_1t == dec_nt;
  for (size_t i = 0; identical && i < batch; ++i) {
    identical = pool_ctx.Decrypt(enc_pool_1t[i]).value() == ms[i] &&
                pool_ctx.Decrypt(enc_secure[i]).value() == ms[i];
  }

  const int threads = many.num_threads();
  std::printf("Real Paillier batch wall-clock, key=%d batch=%zu\n", key,
              batch);
  std::printf("%-34s %10s\n", "path", "wall ms");
  std::printf("%-34s %10.2f\n", "encrypt secure powm, 1 thread", secure_1t);
  std::printf("%-34s %10.2f\n", "encrypt obf. pool,   1 thread", pool_1t);
  std::printf("%-34s %10.2f  (threads=%d)\n", "encrypt obf. pool,   N threads",
              pool_nt, threads);
  std::printf("%-34s %10.2f\n", "decrypt CRT,         1 thread", dec_ms_1t);
  std::printf("%-34s %10.2f  (threads=%d)\n", "decrypt CRT,         N threads",
              dec_ms_nt, threads);
  std::printf("precompute-cache speedup (1 thread): %.2fx\n",
              secure_1t / pool_1t);
  std::printf("thread speedup (encrypt): %.2fx  (decrypt): %.2fx\n",
              pool_1t / pool_nt, dec_ms_1t / dec_ms_nt);
  std::printf("Outputs identical across thread counts: %s\n",
              identical ? "yes" : "NO — MISMATCH");

  const std::string suffix = "key=" + std::to_string(key);
  auto& json = flb::bench::BenchJson::Global();
  json.Record("encrypt_secure_wall_ms,threads=1," + suffix, secure_1t, "ms");
  json.Record("encrypt_pool_wall_ms,threads=1," + suffix, pool_1t, "ms");
  json.Record("encrypt_pool_wall_ms,threads=" + std::to_string(threads) +
                  "," + suffix,
              pool_nt, "ms");
  json.Record("decrypt_wall_ms,threads=1," + suffix, dec_ms_1t, "ms");
  json.Record("decrypt_wall_ms,threads=" + std::to_string(threads) + "," +
                  suffix,
              dec_ms_nt, "ms");
  json.Record("precompute_cache_speedup," + suffix, secure_1t / pool_1t, "x");
  json.Record("encrypt_thread_speedup," + suffix, pool_1t / pool_nt, "x");
  json.Record("decrypt_thread_speedup," + suffix, dec_ms_1t / dec_ms_nt, "x");
  json.Record("outputs_identical," + suffix, identical ? 1 : 0, "bool");
}

// Auto-tuner: tuned vs default knobs, and the tuned config's distance from
// the oracle-best point (exhaustive sweep of the same knob space). The key
// size stays 2048 even under FLB_SMOKE — the speedup gate in
// bench/baselines/autotune_smoke.json targets exactly this shape, and the
// runs are modeled so the big key costs nothing real. Runs LAST so the
// final metrics snapshot retains the flb.tuner.* series for
// validate_obs_json.sh.
void PrintAutotuneSection() {
  using flb::bench::EngineKind;
  using flb::bench::FlModelKind;
  using flb::core::PlatformConfig;
  using flb::core::RunReport;
  using flb::tune::AutoTuner;
  using flb::tune::KnobConfig;
  using flb::tune::KnobSpace;
  using flb::tune::TuneOutcome;

  flb::bench::BeginSection("autotune");
  std::printf(
      "Auto-tuned vs default knobs (modeled epoch seconds, key=2048)\n");
  std::printf("%-16s %10s %10s %10s %8s %8s\n", "engine", "default",
              "tuned", "oracle", "speedup", "%oracle");

  struct Case {
    EngineKind engine;
    const char* label;
  };
  // The w/o-BC ablation engine is the headline gate: its default leaves
  // batch compression off, which the tuner's use_bc axis can reclaim.
  const Case cases[] = {
      {EngineKind::kFlBooster, "flbooster"},
      {EngineKind::kFlBoosterNoBc, "flbooster_nobc"},
      {EngineKind::kFate, "fate"},
  };

  auto& json = flb::bench::BenchJson::Global();
  for (const Case& c : cases) {
    PlatformConfig cfg = flb::bench::WorkloadFor(
        FlModelKind::kHomoLr, flb::fl::DatasetKind::kSynthetic, c.engine,
        2048);
    const std::string suffix =
        "engine=" + std::string(c.label) + ",model=Homo LR,key=2048";

    const RunReport def = flb::bench::MustRun(cfg);

    auto tuned_outcome = AutoTuner::Tune(cfg);
    if (!tuned_outcome.ok()) {
      std::fprintf(stderr, "autotune failed: %s\n",
                   tuned_outcome.status().ToString().c_str());
      std::abort();
    }
    const TuneOutcome outcome = std::move(tuned_outcome).value();
    const RunReport tuned =
        flb::bench::MustRun(AutoTuner::Apply(cfg, outcome.chosen));

    // Oracle: exhaustive sweep of the same knob space the tuner searched
    // (plus the untouched default), at full fidelity.
    double oracle = def.SecondsPerEpoch();
    for (const KnobConfig& knobs : KnobSpace::For(cfg).Enumerate()) {
      const RunReport r = flb::bench::MustRun(AutoTuner::Apply(cfg, knobs));
      oracle = std::min(oracle, r.SecondsPerEpoch());
    }

    const double def_s = def.SecondsPerEpoch();
    const double tuned_s = tuned.SecondsPerEpoch();
    const double speedup = tuned_s > 0 ? def_s / tuned_s : 0.0;
    const double pct_oracle = tuned_s > 0 ? 100.0 * oracle / tuned_s : 0.0;
    std::printf("%-16s %10.3f %10.3f %10.3f %7.2fx %7.1f%%\n", c.label,
                def_s, tuned_s, oracle, speedup, pct_oracle);
    std::printf(
        "  %s: cache_hit=%d warmup_runs=%d warmup_s=%.3f\n  chosen: %s\n",
        c.label, outcome.cache_hit ? 1 : 0, outcome.warmup_runs,
        outcome.warmup_seconds, outcome.chosen.ToString().c_str());

    json.Record("autotune_epoch_seconds_default," + suffix, def_s, "s");
    json.Record("autotune_epoch_seconds_tuned," + suffix, tuned_s, "s");
    json.Record("autotune_epoch_seconds_oracle," + suffix, oracle, "s");
    json.Record("autotune_speedup," + suffix, speedup, "x");
    json.Record("autotune_pct_of_oracle," + suffix, pct_oracle, "%");
    json.Record("autotune_cache_hit," + suffix, outcome.cache_hit ? 1 : 0,
                "bool");
    json.Record("autotune_warmup_runs," + suffix, outcome.warmup_runs,
                "count");
    json.Record("autotune_warmup_seconds," + suffix, outcome.warmup_seconds,
                "s");
    json.Record("autotune_chosen_streams," + suffix,
                outcome.chosen.gpu_streams, "count");
    json.Record("autotune_chosen_chunks," + suffix,
                outcome.chosen.ghe_chunks_per_stream, "count");
    json.Record("autotune_chosen_batch," + suffix, outcome.chosen.batch_size,
                "rows");
    json.Record("autotune_chosen_bc," + suffix, outcome.chosen.use_bc,
                "enum");
  }
  std::printf(
      "Shape: tuned <= default everywhere; >= 1.3x on the w/o-BC 2048-bit "
      "workload; tuned within 10%% of the oracle sweep.\n");
}

}  // namespace

int main() {
  using namespace flb::bench;
  BeginSection("Table IV — HE-op throughput (values per second)");
  std::printf("%-12s %-10s %5s %12s %12s %12s\n", "Model", "Dataset", "key",
              "FATE", "HAFLO", "FLBooster");
  for (auto model : kAllModels) {
    for (auto dataset : kAllDatasets) {
      for (int key : kKeySizes) {
        double tp[3];
        const EngineKind engines[] = {EngineKind::kFate, EngineKind::kHaflo,
                                      EngineKind::kFlBooster};
        const char* engine_names[] = {"fate", "haflo", "flbooster"};
        for (int e = 0; e < 3; ++e) {
          tp[e] = MustRun(WorkloadFor(model, dataset, engines[e], key))
                      .he_throughput;
          BenchJson::Global().Record(
              "he_throughput,engine=" + std::string(engine_names[e]) +
                  ",model=" + Short(model) +
                  ",dataset=" + flb::fl::DatasetName(dataset) +
                  ",key=" + std::to_string(key),
              tp[e], "values/s");
        }
        std::printf("%-12s %-10s %5d %12.0f %12.0f %12.0f\n",
                    Short(model).c_str(),
                    flb::fl::DatasetName(dataset).c_str(), key, tp[0], tp[1],
                    tp[2]);
      }
    }
  }
  std::printf(
      "\nShape: FLBooster > HAFLO >> FATE; throughput decays steeply with "
      "key size (paper Table IV).\n");
  PrintStreamOverlapSection();
  PrintHostWallclockSection();
  PrintAutotuneSection();
  return 0;
}
