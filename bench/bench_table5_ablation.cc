// Table V: ablation study — full FLBooster vs "w/o GHE" (CPU HE, batch
// compression kept) vs "w/o BC" (GPU HE, no compression).
//
// Shape targets (paper §VI-E): removing either module degrades every cell;
// at every key size "w/o BC" is far worse than "w/o GHE" (communication is
// the bigger bottleneck once HE is accelerated); the gap to the full system
// widens with the key size.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace flb::bench;
  PrintHeader("Table V — module ablation, epoch seconds");
  std::printf("%-12s %-10s %5s %12s %12s %12s\n", "Model", "Dataset", "key",
              "FLBooster", "w/o GHE", "w/o BC");
  for (auto model : kAllModels) {
    for (auto dataset : kAllDatasets) {
      for (int key : kKeySizes) {
        const double full =
            MustRun(WorkloadFor(model, dataset, EngineKind::kFlBooster, key))
                .total_seconds;
        const double no_ghe =
            MustRun(
                WorkloadFor(model, dataset, EngineKind::kFlBoosterNoGhe, key))
                .total_seconds;
        const double no_bc =
            MustRun(
                WorkloadFor(model, dataset, EngineKind::kFlBoosterNoBc, key))
                .total_seconds;
        std::printf("%-12s %-10s %5d %12.3f %12.2f %12.2f\n",
                    Short(model).c_str(),
                    flb::fl::DatasetName(dataset).c_str(), key, full, no_ghe,
                    no_bc);
      }
    }
  }
  std::printf(
      "\nShape: FLBooster < w/o GHE < w/o BC in every row (paper Table "
      "V).\n");
  return 0;
}
