// Table VI: component running-time shares (Others / HE operations /
// Communication) for Homo LR at 1024-bit keys under FATE, HAFLO, and
// FLBooster.
//
// Shape targets (paper §VI-F): FATE splits ~52/48 between HE and comm with
// <1% other; HAFLO's HE share collapses below 1% while comm approaches 99%;
// FLBooster rebalances — comm still the largest share but "others" becomes
// visible (tens of percent) because both bottlenecks shrank.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace flb::bench;
  PrintHeader("Table VI — component shares, Homo LR @ 1024-bit keys");
  std::printf("%-10s %-10s %9s %9s %9s %14s\n", "Dataset", "Method", "Others",
              "HE ops", "Comm", "epoch (s)");
  for (auto dataset : kAllDatasets) {
    const EngineKind engines[] = {EngineKind::kFate, EngineKind::kHaflo,
                                  EngineKind::kFlBooster};
    for (EngineKind engine : engines) {
      auto report =
          MustRun(WorkloadFor(FlModelKind::kHomoLr, dataset, engine, 1024));
      const double total = report.total_seconds;
      std::printf("%-10s %-10s %8.1f%% %8.1f%% %8.1f%% %14.3f\n",
                  flb::fl::DatasetName(dataset).c_str(),
                  flb::core::EngineName(engine).c_str(),
                  100.0 * report.other_seconds / total,
                  100.0 * report.he_seconds / total,
                  100.0 * report.comm_seconds / total, total);
    }
  }
  std::printf(
      "\nShape: FATE ~half HE/half comm; HAFLO ~all comm; FLBooster "
      "rebalanced with visible 'others' (paper Table VI).\n");
  return 0;
}
