// Table VII: convergence bias at 1024-bit keys — the relative difference
// between the loss reached by FLBooster (quantized, packed) and the loss of
// the same protocol with near-lossless encoding (FATE's float-precision
// encoding stands in as the r=52 / 48-fractional-bit configuration).
//
//   Bias = |L_lossless - L_FLBooster| / L_lossless        (paper Eq. 15)
//
// Shape targets: well under 5% everywhere; LR models under ~0.5%; SBT/NN
// somewhat larger (more sensitive to quantization).

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace flb::bench;
  PrintHeader("Table VII — convergence bias at 1024-bit keys (Eq. 15)");
  std::printf("%-12s %-10s %14s %14s %9s\n", "Model", "Dataset",
              "lossless loss", "FLBooster", "bias");
  double worst = 0;
  for (auto model : kAllModels) {
    for (auto dataset : kAllDatasets) {
      auto base_cfg = WorkloadFor(model, dataset, EngineKind::kFlBooster, 1024);
      base_cfg.train.max_epochs = 4;
      base_cfg.train.tolerance = 0;

      // FLBooster's production encoding: r + b = 32, 20-24 fractional bits.
      auto quantized = MustRun(base_cfg);

      // Near-lossless reference: the widest encodings the slots allow.
      auto lossless_cfg = base_cfg;
      lossless_cfg.r_bits = 52;
      lossless_cfg.frac_bits = 48;
      lossless_cfg.fp_compress_slot_bits = 0;
      auto lossless = MustRun(lossless_cfg);

      const double bias =
          std::fabs(lossless.train.final_loss - quantized.train.final_loss) /
          lossless.train.final_loss;
      worst = std::max(worst, bias);
      std::printf("%-12s %-10s %14.6f %14.6f %8.3f%%\n", Short(model).c_str(),
                  flb::fl::DatasetName(dataset).c_str(),
                  lossless.train.final_loss, quantized.train.final_loss,
                  100.0 * bias);
    }
  }
  std::printf(
      "\nWorst-case bias %.3f%% — paper Table VII reports 0.2%%-3.3%%, all "
      "'much less than 5%%'.\n",
      100.0 * worst);
  return 0;
}
