// google-benchmark -> BenchJson bridge.
//
// The table/figure regenerators (bench_table*, bench_fig*) export their
// numbers through bench_common.h's BenchJson ({bench, section, metric,
// value, unit} rows, written to FLB_BENCH_JSON at exit, validated by
// scripts/validate_obs_json.sh). The microbenchmarks (bench_paillier,
// bench_montgomery) are google-benchmark binaries, whose own JSON speaks a
// different schema — so the CI perf-regression job could not consume them.
//
// FLB_GBENCH_MAIN() replaces BENCHMARK_MAIN(): console output is unchanged
// (the reporter *is* a ConsoleReporter), and every completed per-iteration
// run is mirrored into BenchJson as
//   section = "gbench", metric = <full benchmark name>, value = real
//   nanoseconds per iteration, unit = "ns/iter".
// Aggregate rows (mean/median/stddev) and errored runs are skipped: the
// regression gate compares raw per-run timings, and an error must fail the
// job through the process exit code, not poison the baseline.
//
// bench_common.h's at-exit ObsExporter does the actual FLB_BENCH_JSON
// write, so microbenchmarks and regenerators produce byte-compatible
// artifacts from the same code path.

#ifndef FLB_BENCH_GBENCH_JSON_H_
#define FLB_BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_common.h"

namespace flb::bench {

class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // Real wall time per iteration, normalized to nanoseconds regardless
      // of the benchmark's display unit (iterations == 0 cannot happen for
      // a completed RT_Iteration run, but guard the division anyway).
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double ns_per_iter = run.real_accumulated_time / iters * 1e9;
      BenchJson::Global().Record("gbench", run.benchmark_name(), ns_per_iter,
                                 "ns/iter");
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace flb::bench

// Drop-in replacement for BENCHMARK_MAIN() that routes results through the
// mirror reporter. Returns non-zero when no benchmark matched the filter,
// so a typo'd --benchmark_filter fails CI instead of green-lighting an
// empty run.
#define FLB_GBENCH_MAIN()                                                 \
  int main(int argc, char** argv) {                                       \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::flb::bench::JsonMirrorReporter reporter;                            \
    const size_t ran = ::benchmark::RunSpecifiedBenchmarks(&reporter);    \
    ::benchmark::Shutdown();                                              \
    return ran == 0 ? 2 : 0;                                              \
  }                                                                       \
  static_assert(true, "require a trailing semicolon")

#endif  // FLB_BENCH_GBENCH_JSON_H_
