file(REMOVE_RECURSE
  "CMakeFiles/bench_analytic_model.dir/bench_analytic_model.cc.o"
  "CMakeFiles/bench_analytic_model.dir/bench_analytic_model.cc.o.d"
  "bench_analytic_model"
  "bench_analytic_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analytic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
