# Empty compiler generated dependencies file for bench_analytic_model.
# This may be replaced when dependencies are built.
