file(REMOVE_RECURSE
  "CMakeFiles/bench_batchcrypt_overflow.dir/bench_batchcrypt_overflow.cc.o"
  "CMakeFiles/bench_batchcrypt_overflow.dir/bench_batchcrypt_overflow.cc.o.d"
  "bench_batchcrypt_overflow"
  "bench_batchcrypt_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batchcrypt_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
