# Empty compiler generated dependencies file for bench_batchcrypt_overflow.
# This may be replaced when dependencies are built.
