file(REMOVE_RECURSE
  "CMakeFiles/bench_damgard_jurik.dir/bench_damgard_jurik.cc.o"
  "CMakeFiles/bench_damgard_jurik.dir/bench_damgard_jurik.cc.o.d"
  "bench_damgard_jurik"
  "bench_damgard_jurik.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_damgard_jurik.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
