# Empty dependencies file for bench_damgard_jurik.
# This may be replaced when dependencies are built.
