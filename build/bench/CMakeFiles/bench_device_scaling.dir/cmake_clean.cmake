file(REMOVE_RECURSE
  "CMakeFiles/bench_device_scaling.dir/bench_device_scaling.cc.o"
  "CMakeFiles/bench_device_scaling.dir/bench_device_scaling.cc.o.d"
  "bench_device_scaling"
  "bench_device_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
