# Empty compiler generated dependencies file for bench_device_scaling.
# This may be replaced when dependencies are built.
