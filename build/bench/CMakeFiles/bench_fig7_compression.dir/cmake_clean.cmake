file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_compression.dir/bench_fig7_compression.cc.o"
  "CMakeFiles/bench_fig7_compression.dir/bench_fig7_compression.cc.o.d"
  "bench_fig7_compression"
  "bench_fig7_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
