# Empty dependencies file for bench_fig7_compression.
# This may be replaced when dependencies are built.
