file(REMOVE_RECURSE
  "CMakeFiles/bench_montgomery.dir/bench_montgomery.cc.o"
  "CMakeFiles/bench_montgomery.dir/bench_montgomery.cc.o.d"
  "bench_montgomery"
  "bench_montgomery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_montgomery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
