# Empty compiler generated dependencies file for bench_montgomery.
# This may be replaced when dependencies are built.
