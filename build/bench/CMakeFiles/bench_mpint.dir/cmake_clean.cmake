file(REMOVE_RECURSE
  "CMakeFiles/bench_mpint.dir/bench_mpint.cc.o"
  "CMakeFiles/bench_mpint.dir/bench_mpint.cc.o.d"
  "bench_mpint"
  "bench_mpint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
