# Empty compiler generated dependencies file for bench_mpint.
# This may be replaced when dependencies are built.
