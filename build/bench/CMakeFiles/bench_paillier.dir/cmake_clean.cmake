file(REMOVE_RECURSE
  "CMakeFiles/bench_paillier.dir/bench_paillier.cc.o"
  "CMakeFiles/bench_paillier.dir/bench_paillier.cc.o.d"
  "bench_paillier"
  "bench_paillier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
