# Empty compiler generated dependencies file for bench_paillier.
# This may be replaced when dependencies are built.
