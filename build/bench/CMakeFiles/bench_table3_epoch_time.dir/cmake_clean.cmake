file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_epoch_time.dir/bench_table3_epoch_time.cc.o"
  "CMakeFiles/bench_table3_epoch_time.dir/bench_table3_epoch_time.cc.o.d"
  "bench_table3_epoch_time"
  "bench_table3_epoch_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_epoch_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
