# Empty compiler generated dependencies file for bench_table3_epoch_time.
# This may be replaced when dependencies are built.
