file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_throughput.dir/bench_table4_throughput.cc.o"
  "CMakeFiles/bench_table4_throughput.dir/bench_table4_throughput.cc.o.d"
  "bench_table4_throughput"
  "bench_table4_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
