file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_components.dir/bench_table6_components.cc.o"
  "CMakeFiles/bench_table6_components.dir/bench_table6_components.cc.o.d"
  "bench_table6_components"
  "bench_table6_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
