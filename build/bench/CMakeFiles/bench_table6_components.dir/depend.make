# Empty dependencies file for bench_table6_components.
# This may be replaced when dependencies are built.
