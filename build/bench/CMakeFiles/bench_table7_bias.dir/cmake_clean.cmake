file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_bias.dir/bench_table7_bias.cc.o"
  "CMakeFiles/bench_table7_bias.dir/bench_table7_bias.cc.o.d"
  "bench_table7_bias"
  "bench_table7_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
