file(REMOVE_RECURSE
  "CMakeFiles/example_api_tour.dir/api_tour.cpp.o"
  "CMakeFiles/example_api_tour.dir/api_tour.cpp.o.d"
  "example_api_tour"
  "example_api_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_api_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
