# Empty dependencies file for example_api_tour.
# This may be replaced when dependencies are built.
