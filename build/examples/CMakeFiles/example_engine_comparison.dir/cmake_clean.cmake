file(REMOVE_RECURSE
  "CMakeFiles/example_engine_comparison.dir/engine_comparison.cpp.o"
  "CMakeFiles/example_engine_comparison.dir/engine_comparison.cpp.o.d"
  "example_engine_comparison"
  "example_engine_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_engine_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
