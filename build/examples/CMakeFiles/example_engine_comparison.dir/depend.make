# Empty dependencies file for example_engine_comparison.
# This may be replaced when dependencies are built.
