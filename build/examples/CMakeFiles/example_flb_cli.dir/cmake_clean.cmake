file(REMOVE_RECURSE
  "CMakeFiles/example_flb_cli.dir/flb_cli.cpp.o"
  "CMakeFiles/example_flb_cli.dir/flb_cli.cpp.o.d"
  "example_flb_cli"
  "example_flb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
