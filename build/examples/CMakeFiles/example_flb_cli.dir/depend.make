# Empty dependencies file for example_flb_cli.
# This may be replaced when dependencies are built.
