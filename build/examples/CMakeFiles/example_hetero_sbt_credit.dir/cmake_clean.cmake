file(REMOVE_RECURSE
  "CMakeFiles/example_hetero_sbt_credit.dir/hetero_sbt_credit.cpp.o"
  "CMakeFiles/example_hetero_sbt_credit.dir/hetero_sbt_credit.cpp.o.d"
  "example_hetero_sbt_credit"
  "example_hetero_sbt_credit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hetero_sbt_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
