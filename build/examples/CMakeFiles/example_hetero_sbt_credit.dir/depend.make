# Empty dependencies file for example_hetero_sbt_credit.
# This may be replaced when dependencies are built.
