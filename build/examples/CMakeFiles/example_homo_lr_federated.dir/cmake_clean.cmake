file(REMOVE_RECURSE
  "CMakeFiles/example_homo_lr_federated.dir/homo_lr_federated.cpp.o"
  "CMakeFiles/example_homo_lr_federated.dir/homo_lr_federated.cpp.o.d"
  "example_homo_lr_federated"
  "example_homo_lr_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_homo_lr_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
