# Empty compiler generated dependencies file for example_homo_lr_federated.
# This may be replaced when dependencies are built.
