file(REMOVE_RECURSE
  "CMakeFiles/example_nn_split_training.dir/nn_split_training.cpp.o"
  "CMakeFiles/example_nn_split_training.dir/nn_split_training.cpp.o.d"
  "example_nn_split_training"
  "example_nn_split_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nn_split_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
