# Empty compiler generated dependencies file for example_nn_split_training.
# This may be replaced when dependencies are built.
