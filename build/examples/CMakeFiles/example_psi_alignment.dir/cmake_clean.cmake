file(REMOVE_RECURSE
  "CMakeFiles/example_psi_alignment.dir/psi_alignment.cpp.o"
  "CMakeFiles/example_psi_alignment.dir/psi_alignment.cpp.o.d"
  "example_psi_alignment"
  "example_psi_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_psi_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
