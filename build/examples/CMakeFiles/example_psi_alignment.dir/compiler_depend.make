# Empty compiler generated dependencies file for example_psi_alignment.
# This may be replaced when dependencies are built.
