
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/batch_compressor.cc" "src/CMakeFiles/flb.dir/codec/batch_compressor.cc.o" "gcc" "src/CMakeFiles/flb.dir/codec/batch_compressor.cc.o.d"
  "/root/repo/src/codec/batchcrypt_codec.cc" "src/CMakeFiles/flb.dir/codec/batchcrypt_codec.cc.o" "gcc" "src/CMakeFiles/flb.dir/codec/batchcrypt_codec.cc.o.d"
  "/root/repo/src/codec/fixed_point.cc" "src/CMakeFiles/flb.dir/codec/fixed_point.cc.o" "gcc" "src/CMakeFiles/flb.dir/codec/fixed_point.cc.o.d"
  "/root/repo/src/codec/quantizer.cc" "src/CMakeFiles/flb.dir/codec/quantizer.cc.o" "gcc" "src/CMakeFiles/flb.dir/codec/quantizer.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/flb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/flb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/sim_clock.cc" "src/CMakeFiles/flb.dir/common/sim_clock.cc.o" "gcc" "src/CMakeFiles/flb.dir/common/sim_clock.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/flb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/flb.dir/common/status.cc.o.d"
  "/root/repo/src/core/he_service.cc" "src/CMakeFiles/flb.dir/core/he_service.cc.o" "gcc" "src/CMakeFiles/flb.dir/core/he_service.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/flb.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/flb.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/platform.cc" "src/CMakeFiles/flb.dir/core/platform.cc.o" "gcc" "src/CMakeFiles/flb.dir/core/platform.cc.o.d"
  "/root/repo/src/core/transport.cc" "src/CMakeFiles/flb.dir/core/transport.cc.o" "gcc" "src/CMakeFiles/flb.dir/core/transport.cc.o.d"
  "/root/repo/src/crypto/damgard_jurik.cc" "src/CMakeFiles/flb.dir/crypto/damgard_jurik.cc.o" "gcc" "src/CMakeFiles/flb.dir/crypto/damgard_jurik.cc.o.d"
  "/root/repo/src/crypto/montgomery.cc" "src/CMakeFiles/flb.dir/crypto/montgomery.cc.o" "gcc" "src/CMakeFiles/flb.dir/crypto/montgomery.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/CMakeFiles/flb.dir/crypto/paillier.cc.o" "gcc" "src/CMakeFiles/flb.dir/crypto/paillier.cc.o.d"
  "/root/repo/src/crypto/prime.cc" "src/CMakeFiles/flb.dir/crypto/prime.cc.o" "gcc" "src/CMakeFiles/flb.dir/crypto/prime.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/CMakeFiles/flb.dir/crypto/rsa.cc.o" "gcc" "src/CMakeFiles/flb.dir/crypto/rsa.cc.o.d"
  "/root/repo/src/fl/dataset.cc" "src/CMakeFiles/flb.dir/fl/dataset.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/dataset.cc.o.d"
  "/root/repo/src/fl/hetero_lr.cc" "src/CMakeFiles/flb.dir/fl/hetero_lr.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/hetero_lr.cc.o.d"
  "/root/repo/src/fl/hetero_nn.cc" "src/CMakeFiles/flb.dir/fl/hetero_nn.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/hetero_nn.cc.o.d"
  "/root/repo/src/fl/hetero_sbt.cc" "src/CMakeFiles/flb.dir/fl/hetero_sbt.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/hetero_sbt.cc.o.d"
  "/root/repo/src/fl/homo_lr.cc" "src/CMakeFiles/flb.dir/fl/homo_lr.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/homo_lr.cc.o.d"
  "/root/repo/src/fl/homo_nn.cc" "src/CMakeFiles/flb.dir/fl/homo_nn.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/homo_nn.cc.o.d"
  "/root/repo/src/fl/metrics.cc" "src/CMakeFiles/flb.dir/fl/metrics.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/metrics.cc.o.d"
  "/root/repo/src/fl/model_io.cc" "src/CMakeFiles/flb.dir/fl/model_io.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/model_io.cc.o.d"
  "/root/repo/src/fl/optimizer.cc" "src/CMakeFiles/flb.dir/fl/optimizer.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/optimizer.cc.o.d"
  "/root/repo/src/fl/partition.cc" "src/CMakeFiles/flb.dir/fl/partition.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/partition.cc.o.d"
  "/root/repo/src/fl/psi.cc" "src/CMakeFiles/flb.dir/fl/psi.cc.o" "gcc" "src/CMakeFiles/flb.dir/fl/psi.cc.o.d"
  "/root/repo/src/ghe/ghe_engine.cc" "src/CMakeFiles/flb.dir/ghe/ghe_engine.cc.o" "gcc" "src/CMakeFiles/flb.dir/ghe/ghe_engine.cc.o.d"
  "/root/repo/src/ghe/parallel_arith.cc" "src/CMakeFiles/flb.dir/ghe/parallel_arith.cc.o" "gcc" "src/CMakeFiles/flb.dir/ghe/parallel_arith.cc.o.d"
  "/root/repo/src/ghe/parallel_montgomery.cc" "src/CMakeFiles/flb.dir/ghe/parallel_montgomery.cc.o" "gcc" "src/CMakeFiles/flb.dir/ghe/parallel_montgomery.cc.o.d"
  "/root/repo/src/gpusim/device.cc" "src/CMakeFiles/flb.dir/gpusim/device.cc.o" "gcc" "src/CMakeFiles/flb.dir/gpusim/device.cc.o.d"
  "/root/repo/src/gpusim/device_spec.cc" "src/CMakeFiles/flb.dir/gpusim/device_spec.cc.o" "gcc" "src/CMakeFiles/flb.dir/gpusim/device_spec.cc.o.d"
  "/root/repo/src/gpusim/resource_manager.cc" "src/CMakeFiles/flb.dir/gpusim/resource_manager.cc.o" "gcc" "src/CMakeFiles/flb.dir/gpusim/resource_manager.cc.o.d"
  "/root/repo/src/mpint/bigint.cc" "src/CMakeFiles/flb.dir/mpint/bigint.cc.o" "gcc" "src/CMakeFiles/flb.dir/mpint/bigint.cc.o.d"
  "/root/repo/src/mpint/bigint_io.cc" "src/CMakeFiles/flb.dir/mpint/bigint_io.cc.o" "gcc" "src/CMakeFiles/flb.dir/mpint/bigint_io.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/flb.dir/net/network.cc.o" "gcc" "src/CMakeFiles/flb.dir/net/network.cc.o.d"
  "/root/repo/src/net/serializer.cc" "src/CMakeFiles/flb.dir/net/serializer.cc.o" "gcc" "src/CMakeFiles/flb.dir/net/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
