file(REMOVE_RECURSE
  "libflb.a"
)
