# Empty dependencies file for flb.
# This may be replaced when dependencies are built.
