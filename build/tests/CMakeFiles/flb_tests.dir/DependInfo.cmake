
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/batchcrypt_test.cc" "tests/CMakeFiles/flb_tests.dir/batchcrypt_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/batchcrypt_test.cc.o.d"
  "/root/repo/tests/bigint_differential_test.cc" "tests/CMakeFiles/flb_tests.dir/bigint_differential_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/bigint_differential_test.cc.o.d"
  "/root/repo/tests/bigint_test.cc" "tests/CMakeFiles/flb_tests.dir/bigint_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/bigint_test.cc.o.d"
  "/root/repo/tests/codec_test.cc" "tests/CMakeFiles/flb_tests.dir/codec_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/codec_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/flb_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/flb_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/damgard_jurik_test.cc" "tests/CMakeFiles/flb_tests.dir/damgard_jurik_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/damgard_jurik_test.cc.o.d"
  "/root/repo/tests/fixed_point_test.cc" "tests/CMakeFiles/flb_tests.dir/fixed_point_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/fixed_point_test.cc.o.d"
  "/root/repo/tests/fl_data_test.cc" "tests/CMakeFiles/flb_tests.dir/fl_data_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/fl_data_test.cc.o.d"
  "/root/repo/tests/ghe_test.cc" "tests/CMakeFiles/flb_tests.dir/ghe_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/ghe_test.cc.o.d"
  "/root/repo/tests/gpusim_test.cc" "tests/CMakeFiles/flb_tests.dir/gpusim_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/gpusim_test.cc.o.d"
  "/root/repo/tests/he_service_test.cc" "tests/CMakeFiles/flb_tests.dir/he_service_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/he_service_test.cc.o.d"
  "/root/repo/tests/homo_nn_test.cc" "tests/CMakeFiles/flb_tests.dir/homo_nn_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/homo_nn_test.cc.o.d"
  "/root/repo/tests/model_io_test.cc" "tests/CMakeFiles/flb_tests.dir/model_io_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/model_io_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/flb_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/parallel_arith_test.cc" "tests/CMakeFiles/flb_tests.dir/parallel_arith_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/parallel_arith_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/flb_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/psi_test.cc" "tests/CMakeFiles/flb_tests.dir/psi_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/psi_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/flb_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/trainers_test.cc" "tests/CMakeFiles/flb_tests.dir/trainers_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/trainers_test.cc.o.d"
  "/root/repo/tests/transport_test.cc" "tests/CMakeFiles/flb_tests.dir/transport_test.cc.o" "gcc" "tests/CMakeFiles/flb_tests.dir/transport_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
