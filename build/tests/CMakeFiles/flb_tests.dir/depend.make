# Empty dependencies file for flb_tests.
# This may be replaced when dependencies are built.
