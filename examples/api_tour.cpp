// API tour: the Table I surface — vectorized multi-precision arithmetic,
// modular kernels, and the Paillier / RSA primitives on the simulated GPU.
//
//   $ ./example_api_tour

#include <cstdio>
#include <memory>

#include "src/common/rng.h"
#include "src/crypto/paillier.h"
#include "src/crypto/rsa.h"
#include "src/ghe/ghe_engine.h"

int main() {
  using namespace flb;
  using mpint::BigInt;

  Rng rng(2023);
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), nullptr);
  ghe::GheEngine ghe(device);

  // ---- fundamental vector arithmetic: add/sub/mul/div/mod ------------------
  std::vector<BigInt> a, b;
  for (int i = 1; i <= 4; ++i) {
    a.push_back(BigInt::Random(rng, 256));
    b.push_back(BigInt::Random(rng, 128));
  }
  auto sum = ghe.Add(a, b).value();
  auto diff = ghe.Sub(sum, b).value();  // == a again
  auto prod = ghe.Mul(a, b).value();
  auto quot = ghe.Div(prod, b).value();  // == a again
  std::printf("add/sub/mul/div round-trip: %s\n",
              (diff[0] == a[0] && quot[3] == a[3]) ? "OK" : "BROKEN");

  const BigInt n = BigInt::FromDecimal("1000000007").value();
  auto rem = ghe.Mod(prod, n).value();
  std::printf("mod:      %s mod 1000000007 = %s\n", prod[0].ToDecimal().c_str(),
              rem[0].ToDecimal().c_str());

  // ---- modular kernels: mod_inv / mod_mul / mod_pow -------------------------
  std::vector<BigInt> xs{BigInt(3), BigInt(10), BigInt(65537)};
  auto invs = ghe.ModInv(xs, n).value();
  std::printf("mod_inv:  3^-1 mod p = %s (3 * inv mod p = %s)\n",
              invs[0].ToDecimal().c_str(),
              BigInt::ModMul(BigInt(3), invs[0], n)->ToDecimal().c_str());
  std::vector<BigInt> exps{BigInt(65536), BigInt(2), BigInt(3)};
  auto powered = ghe.ModPow(xs, exps, n).value();
  std::printf("mod_pow:  10^2 mod p = %s\n", powered[1].ToDecimal().c_str());

  // ---- Paillier: key_gen / encrypt / decrypt / add ---------------------------
  auto pkeys = crypto::PaillierKeyGen(512, rng).value();
  auto paillier = crypto::PaillierContext::Create(pkeys).value();
  std::vector<BigInt> ms{BigInt(100), BigInt(200), BigInt(300)};
  auto cs = ghe.PaillierEncrypt(paillier, ms, rng).value();
  auto doubled = ghe.PaillierAdd(paillier, cs, cs).value();
  auto dec = ghe.PaillierDecrypt(paillier, doubled).value();
  std::printf("Paillier: D(E(100)+E(100)) = %s, D(E(300)+E(300)) = %s\n",
              dec[0].ToDecimal().c_str(), dec[2].ToDecimal().c_str());

  // ---- RSA: key_gen / encrypt / decrypt / mul --------------------------------
  auto rkeys = crypto::RsaKeyGen(512, rng).value();
  auto rsa = crypto::RsaContext::Create(rkeys).value();
  std::vector<BigInt> rms{BigInt(6), BigInt(7)};
  auto rcs = ghe.RsaEncrypt(rsa, rms).value();
  auto rprod = ghe.RsaMul(rsa, {rcs[0]}, {rcs[1]}).value();
  auto rdec = ghe.RsaDecrypt(rsa, rprod).value();
  std::printf("RSA:      D(E(6) * E(7)) = %s\n", rdec[0].ToDecimal().c_str());

  std::printf("\nDevice: %llu kernels, %.3f ms simulated, mean SM util %.1f%%\n",
              static_cast<unsigned long long>(device->stats().kernels_launched),
              1e3 * device->stats().kernel_seconds,
              100.0 * device->stats().MeanSmUtilization());
  return 0;
}
