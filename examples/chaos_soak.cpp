// chaos_soak: one fault-injected training run, reported as a single JSON
// line for scripts/chaos_soak.sh to assert on.
//
//   $ ./example_chaos_soak --model=hetero_lr --seed=5
//         --plan='seed=7;drop=0.1;crash=host1@0.2-0.8'
//
// The contract under test is the resilience layer's: every run must end
// within the simulated run deadline either converged/complete ("ok") or
// with a typed error ("unavailable" / "deadline_exceeded") — anything else
// (a hang is caught by the caller's `timeout`; an untyped error here) is a
// bug. The JSON line carries a fingerprint over the training trajectory so
// the soak script can assert same-seed bit-identity across reruns, plus
// the resilience counters and the number of flb.resilience.* metrics the
// run emitted.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/platform.h"
#include "src/obs/metrics.h"

namespace {

using flb::core::FlModelKind;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

// FNV-1a over the raw bits of the doubles that define the run outcome:
// identical trajectories hash identically, any drift shows.
uint64_t Mix(uint64_t h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    h ^= (bits >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "homo_lr";
  std::string plan;
  std::string seed = "1";
  std::string epochs = "2";
  std::string deadline = "600";
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "model", &model) ||
        ParseFlag(argv[i], "plan", &plan) ||
        ParseFlag(argv[i], "seed", &seed) ||
        ParseFlag(argv[i], "epochs", &epochs) ||
        ParseFlag(argv[i], "deadline", &deadline)) {
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }

  flb::core::PlatformConfig cfg;
  cfg.engine = flb::core::EngineKind::kFlBooster;
  if (model == "homo_lr") {
    cfg.model = FlModelKind::kHomoLr;
  } else if (model == "homo_nn") {
    cfg.model = FlModelKind::kHomoNn;
  } else if (model == "hetero_lr") {
    cfg.model = FlModelKind::kHeteroLr;
  } else if (model == "hetero_sbt") {
    cfg.model = FlModelKind::kHeteroSbt;
  } else if (model == "hetero_nn") {
    cfg.model = FlModelKind::kHeteroNn;
  } else {
    std::fprintf(stderr, "unknown model: %s\n", model.c_str());
    return 2;
  }
  cfg.dataset = flb::fl::DatasetSpec{flb::fl::DatasetKind::kSynthetic, 192,
                                     12, 12, 5};
  cfg.num_parties = 3;
  cfg.key_bits = 256;
  cfg.r_bits = 14;
  cfg.modeled = true;
  cfg.train.max_epochs = std::atoi(epochs.c_str());
  cfg.train.batch_size = 32;
  cfg.train.tolerance = 1e-9;
  cfg.train.straggler_deadline_factor = 2.0;
  cfg.seed = static_cast<uint64_t>(std::atoll(seed.c_str()));
  cfg.fault_plan = plan;
  cfg.run_deadline_sec = std::atof(deadline.c_str());
  // Short per-message budgets: a dead peer should cost retries, not the
  // whole deadline.
  cfg.reliable.deadline_sec = 0.05;
  cfg.reliable.max_attempts = 3;

  const auto report = flb::core::Platform::Run(cfg);

  const char* outcome;
  uint64_t fingerprint = 1469598103934665603ULL;
  size_t epochs_done = 0;
  double total_seconds = 0;
  flb::fl::RobustnessCounters counters;
  flb::net::BreakerStats breaker;
  uint64_t retransmits = 0;
  if (report.ok()) {
    outcome = "ok";
    epochs_done = report->train.epochs.size();
    total_seconds = report->total_seconds;
    counters = report->robustness;
    breaker = report->breaker_stats;
    retransmits = report->channel_stats.retransmits;
    for (const auto& e : report->train.epochs) {
      fingerprint = Mix(fingerprint, e.loss);
      fingerprint = Mix(fingerprint, e.sim_seconds_cum);
    }
    fingerprint = Mix(fingerprint, report->train.final_loss);
    fingerprint = Mix(fingerprint, report->train.final_accuracy);
    fingerprint = Mix(fingerprint, report->total_seconds);
  } else if (report.status().IsDeadlineExceeded()) {
    outcome = "deadline_exceeded";
  } else if (report.status().IsUnavailable()) {
    outcome = "unavailable";
  } else {
    // Untyped failure: the resilience contract is broken.
    std::fprintf(stderr, "untyped failure: %s\n",
                 report.status().ToString().c_str());
    outcome = "error";
  }

  size_t resilience_metrics = 0;
  for (const auto& m : flb::obs::MetricsRegistry::Global().Collect()) {
    if (m.name.rfind("flb.resilience.", 0) == 0) ++resilience_metrics;
  }

  std::printf(
      "{\"model\":\"%s\",\"seed\":%s,\"outcome\":\"%s\","
      "\"epochs\":%zu,\"total_seconds\":%.17g,"
      "\"fingerprint\":\"%016" PRIx64 "\","
      "\"transport_dropouts\":%" PRIu64 ",\"partial_rounds\":%" PRIu64
      ",\"skipped_rounds\":%" PRIu64 ",\"resumes\":%" PRIu64
      ",\"quarantines\":%" PRIu64 ",\"readmits\":%" PRIu64
      ",\"deadline_exceeded\":%" PRIu64 ",\"breaker_trips\":%" PRIu64
      ",\"breaker_fast_fails\":%" PRIu64 ",\"retransmits\":%" PRIu64
      ",\"resilience_metrics\":%zu}\n",
      model.c_str(), seed.c_str(), outcome, epochs_done, total_seconds,
      fingerprint, counters.transport_dropouts, counters.partial_rounds,
      counters.skipped_rounds, counters.resumes, counters.quarantines,
      counters.readmits, counters.deadline_exceeded, breaker.trips,
      breaker.fast_fails, retransmits, resilience_metrics);
  return std::strcmp(outcome, "error") == 0 ? 1 : 0;
}
