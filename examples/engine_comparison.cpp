// Engine comparison: the same Hetero LR workload under FATE, HAFLO, and
// FLBooster (plus the two ablations) — a one-command rendition of the
// paper's headline experiment.
//
//   $ ./example_engine_comparison

#include <cstdio>

#include "src/core/platform.h"

int main() {
  using namespace flb;

  core::PlatformConfig cfg;
  cfg.model = core::FlModelKind::kHeteroLr;
  cfg.dataset = fl::DatasetSpec{fl::DatasetKind::kRcv1, 2048, 512, 40, 7};
  cfg.num_parties = 3;
  cfg.key_bits = 1024;
  cfg.modeled = true;  // plaintext-shadow HE: full-size keys, instant demo
  cfg.train.max_epochs = 2;
  cfg.train.batch_size = 512;

  std::printf("Hetero LR, RCV1-like 2048x512, 3 parties, 1024-bit keys\n\n");
  std::printf("%-10s %12s %10s %10s %10s %12s %10s\n", "Engine", "epoch (s)",
              "HE %", "comm %", "loss", "wire MB", "SM util");

  const core::EngineKind engines[] = {
      core::EngineKind::kFate, core::EngineKind::kHaflo,
      core::EngineKind::kFlBooster, core::EngineKind::kFlBoosterNoGhe,
      core::EngineKind::kFlBoosterNoBc};
  double fate_time = 0;
  for (auto engine : engines) {
    cfg.engine = engine;
    auto report = core::Platform::Run(cfg).value();
    const double per_epoch = report.SecondsPerEpoch();
    if (engine == core::EngineKind::kFate) fate_time = per_epoch;
    std::printf("%-10s %12.2f %9.1f%% %9.1f%% %10.4f %12.2f %9.1f%%\n",
                core::EngineName(engine).c_str(), per_epoch,
                100.0 * report.he_seconds / report.total_seconds,
                100.0 * report.comm_seconds / report.total_seconds,
                report.train.final_loss, report.comm_bytes / 1048576.0,
                100.0 * report.sm_utilization);
    if (engine == core::EngineKind::kFlBooster) {
      std::printf("%-10s -> %.0fx faster than FATE, same loss\n", "",
                  fate_time / per_epoch);
    }
  }
  std::printf(
      "\nAll five engines run the identical protocol and reach the identical "
      "loss;\nonly where HE executes and whether ciphertexts are "
      "batch-compressed differ.\n");
  return 0;
}
