// flb_cli: run any (engine x model x dataset x key size) combination from
// the command line and print the measurement report — the "user-friendly
// API" surface for scripting custom experiments.
//
//   $ ./example_flb_cli --model=hetero_sbt --engine=flbooster \
//         --dataset=avazu --key-bits=2048 --epochs=2 --parties=4
//
// All flags optional; defaults shown by --help.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/platform.h"

namespace {

using flb::core::EngineKind;
using flb::core::FlModelKind;

struct Args {
  std::string engine = "flbooster";
  std::string model = "homo_lr";
  std::string dataset = "synthetic";
  int key_bits = 1024;
  int epochs = 1;
  int parties = 4;
  int batch = 1024;
  size_t rows = 0;  // 0 = dataset default
  size_t cols = 0;
  bool real = false;  // real crypto instead of modeled
  bool help = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

bool ParseFlag(const char* arg, const char* name, int* out) {
  std::string s;
  if (!ParseFlag(arg, name, &s)) return false;
  *out = std::atoi(s.c_str());
  return true;
}

bool ParseFlag(const char* arg, const char* name, size_t* out) {
  std::string s;
  if (!ParseFlag(arg, name, &s)) return false;
  *out = static_cast<size_t>(std::atoll(s.c_str()));
  return true;
}

void PrintHelp(const Args& d) {
  std::printf(
      "flb_cli — run one FLBooster experiment\n\n"
      "  --engine=fate|haflo|flbooster|no_ghe|no_bc   (default %s)\n"
      "  --model=homo_lr|hetero_lr|hetero_sbt|hetero_nn (default %s)\n"
      "  --dataset=rcv1|avazu|synthetic               (default %s)\n"
      "  --key-bits=N        Paillier |n|             (default %d)\n"
      "  --epochs=N                                   (default %d)\n"
      "  --parties=N                                  (default %d)\n"
      "  --batch=N                                    (default %d)\n"
      "  --rows=N --cols=N   dataset shape override\n"
      "  --real              real Paillier instead of modeled time\n",
      d.engine.c_str(), d.model.c_str(), d.dataset.c_str(), d.key_bits,
      d.epochs, d.parties, d.batch);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string ignored;
    if (std::strcmp(argv[i], "--help") == 0) {
      args.help = true;
    } else if (std::strcmp(argv[i], "--real") == 0) {
      args.real = true;
    } else if (!ParseFlag(argv[i], "engine", &args.engine) &&
               !ParseFlag(argv[i], "model", &args.model) &&
               !ParseFlag(argv[i], "dataset", &args.dataset) &&
               !ParseFlag(argv[i], "key-bits", &args.key_bits) &&
               !ParseFlag(argv[i], "epochs", &args.epochs) &&
               !ParseFlag(argv[i], "parties", &args.parties) &&
               !ParseFlag(argv[i], "batch", &args.batch) &&
               !ParseFlag(argv[i], "rows", &args.rows) &&
               !ParseFlag(argv[i], "cols", &args.cols)) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (args.help) {
    PrintHelp(Args{});
    return 0;
  }

  flb::core::PlatformConfig cfg;
  if (args.engine == "fate") cfg.engine = EngineKind::kFate;
  else if (args.engine == "haflo") cfg.engine = EngineKind::kHaflo;
  else if (args.engine == "flbooster") cfg.engine = EngineKind::kFlBooster;
  else if (args.engine == "no_ghe") cfg.engine = EngineKind::kFlBoosterNoGhe;
  else if (args.engine == "no_bc") cfg.engine = EngineKind::kFlBoosterNoBc;
  else { std::fprintf(stderr, "bad --engine\n"); return 2; }

  if (args.model == "homo_lr") cfg.model = FlModelKind::kHomoLr;
  else if (args.model == "hetero_lr") cfg.model = FlModelKind::kHeteroLr;
  else if (args.model == "hetero_sbt") cfg.model = FlModelKind::kHeteroSbt;
  else if (args.model == "hetero_nn") cfg.model = FlModelKind::kHeteroNn;
  else { std::fprintf(stderr, "bad --model\n"); return 2; }

  flb::fl::DatasetKind kind;
  if (args.dataset == "rcv1") kind = flb::fl::DatasetKind::kRcv1;
  else if (args.dataset == "avazu") kind = flb::fl::DatasetKind::kAvazu;
  else if (args.dataset == "synthetic") kind = flb::fl::DatasetKind::kSynthetic;
  else { std::fprintf(stderr, "bad --dataset\n"); return 2; }

  cfg.dataset = flb::fl::DefaultScaleSpec(kind);
  if (args.rows > 0) cfg.dataset.rows = args.rows;
  if (args.cols > 0) {
    cfg.dataset.cols = args.cols;
    cfg.dataset.nnz_per_row =
        std::min(cfg.dataset.nnz_per_row, cfg.dataset.cols);
  }
  cfg.key_bits = args.key_bits;
  cfg.num_parties = args.parties;
  cfg.modeled = !args.real;
  cfg.train.max_epochs = args.epochs;
  cfg.train.batch_size = args.batch;

  auto report = flb::core::Platform::Run(cfg);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s | %s | %s | %d-bit keys | %d parties | %s crypto\n",
              flb::core::EngineName(cfg.engine).c_str(),
              flb::core::ModelName(cfg.model).c_str(),
              flb::fl::DatasetName(kind).c_str(), cfg.key_bits,
              cfg.num_parties, cfg.modeled ? "modeled" : "real");
  std::printf("dataset: %zu x %zu\n", cfg.dataset.rows, cfg.dataset.cols);
  std::printf("\n%6s %12s %12s\n", "epoch", "loss", "accuracy");
  for (const auto& e : report->train.epochs) {
    std::printf("%6d %12.5f %11.1f%%\n", e.epoch, e.loss, 100 * e.accuracy);
  }
  std::printf(
      "\ntotals: %.3f s simulated (HE %.1f%%, comm %.1f%%, other %.1f%%)\n",
      report->total_seconds, 100 * report->he_seconds / report->total_seconds,
      100 * report->comm_seconds / report->total_seconds,
      100 * report->other_seconds / report->total_seconds);
  std::printf(
      "HE ops: %llu enc / %llu add / %llu smul / %llu dec  |  %.2f MB on "
      "wire in %llu messages  |  pack ratio %.1fx\n",
      static_cast<unsigned long long>(report->he_ops.encrypts),
      static_cast<unsigned long long>(report->he_ops.hom_adds),
      static_cast<unsigned long long>(report->he_ops.scalar_muls),
      static_cast<unsigned long long>(report->he_ops.decrypts),
      report->comm_bytes / 1048576.0,
      static_cast<unsigned long long>(report->comm_messages),
      report->pack_ratio);
  if (report->sm_utilization > 0) {
    std::printf("GPU: mean SM utilization %.1f%%\n",
                100 * report->sm_utilization);
  }
  return 0;
}
