// Vertical SecureBoost between a bank and an e-commerce platform.
//
// The classic cross-silo scenario (paper §I, finance): a bank holds credit
// labels and financial features; a partner holds behavioural features for
// the SAME customers. SecureBoost grows gradient-boosted trees where the
// partner aggregates encrypted gradient histograms and never learns labels,
// while the bank never sees the partner's raw features. Runs real Paillier.
//
//   $ ./example_hetero_sbt_credit

#include <cstdio>
#include <memory>

#include "src/core/he_service.h"
#include "src/fl/hetero_sbt.h"
#include "src/fl/partition.h"

int main() {
  using namespace flb;

  // Shared customers: sparse behavioural + financial features.
  fl::DatasetSpec spec;
  spec.kind = fl::DatasetKind::kRcv1;  // sparse, heavy-tailed features
  spec.rows = 300;
  spec.cols = 40;
  spec.nnz_per_row = 12;
  fl::Dataset customers = fl::GenerateDataset(spec).value();
  auto partition = fl::VerticalSplit(customers, 2).value();
  std::printf(
      "Customers: %zu, bank features: %zu (+labels), partner features: %zu\n",
      customers.rows(), partition.shards[0].x.cols(),
      partition.shards[1].x.cols());

  SimClock clock;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  net::Network network(net::LinkSpec::GigabitEthernet(), &clock);
  core::HeServiceOptions he_opts;
  he_opts.engine = core::EngineKind::kFlBooster;
  he_opts.key_bits = 256;
  he_opts.frac_bits = 16;
  he_opts.fp_compress_slot_bits = 40;
  he_opts.participants = 2;
  auto he = core::HeService::Create(he_opts, &clock, device).value();

  fl::TrainConfig cfg;
  cfg.max_epochs = 5;  // five boosting rounds = five trees
  cfg.learning_rate = 0.5;
  fl::SbtParams params;
  params.max_depth = 3;
  params.num_bins = 8;

  fl::FlSession session{he.get(), &network, &clock};
  fl::HeteroSbtTrainer trainer(partition, session, cfg, params);
  auto result = trainer.Train().value();

  std::printf("\n%6s %10s %10s %12s\n", "tree", "logloss", "accuracy",
              "sim secs");
  for (const auto& round : result.epochs) {
    std::printf("%6d %10.4f %9.1f%% %12.2f\n", round.epoch, round.loss,
                100.0 * round.accuracy, round.sim_seconds_cum);
  }

  // Who contributed splits?
  int bank_splits = 0, partner_splits = 0;
  for (const auto& tree : trainer.trees()) {
    for (const auto& node : tree.nodes) {
      if (node.is_leaf) continue;
      (node.split_party == 0 ? bank_splits : partner_splits) += 1;
    }
  }
  std::printf(
      "\nSplits: %d on bank features, %d on partner features — the partner's "
      "data mattered\nwithout its features or the bank's labels ever being "
      "shared.\n",
      bank_splits, partner_splits);
  std::printf("Histogram ciphertexts were shift-and-add compressed before "
              "every transfer (BC module).\n");
  return 0;
}
