// Horizontal federated logistic regression over four hospitals.
//
// The scenario from the paper's introduction: independent sites hold
// disjoint patient populations with the same schema and want one model
// without pooling records. Each epoch the sites exchange only encrypted,
// batch-compressed gradients. The example trains with real Paillier and
// compares against a centralized (non-private) baseline.
//
//   $ ./example_homo_lr_federated

#include <cstdio>
#include <memory>

#include "src/core/he_service.h"
#include "src/fl/homo_lr.h"
#include "src/fl/partition.h"

int main() {
  using namespace flb;
  constexpr int kHospitals = 4;

  // A synthetic patient cohort (dense tabular features).
  fl::DatasetSpec spec;
  spec.kind = fl::DatasetKind::kSynthetic;
  spec.rows = 400;
  spec.cols = 24;
  spec.nnz_per_row = 24;
  fl::Dataset cohort = fl::GenerateDataset(spec).value();
  auto shards = fl::HorizontalSplit(cohort, kHospitals).value();
  std::printf("Cohort: %zu patients x %zu features, split across %d sites\n",
              cohort.rows(), cohort.cols(), kHospitals);

  // FLBooster stack with REAL Paillier (small key for demo speed).
  SimClock clock;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  net::Network network(net::LinkSpec::GigabitEthernet(), &clock);
  core::HeServiceOptions he_opts;
  he_opts.engine = core::EngineKind::kFlBooster;
  he_opts.key_bits = 256;
  he_opts.r_bits = 14;
  he_opts.participants = kHospitals;
  auto he = core::HeService::Create(he_opts, &clock, device).value();

  fl::TrainConfig cfg;
  cfg.max_epochs = 6;
  cfg.batch_size = 50;
  cfg.learning_rate = 0.1;
  fl::FlSession session{he.get(), &network, &clock};
  fl::HomoLrTrainer trainer(shards, session, cfg);
  auto result = trainer.Train().value();

  std::printf("\n%6s %10s %10s %14s %12s\n", "epoch", "loss", "accuracy",
              "sim secs (cum)", "MB on wire");
  uint64_t bytes = 0;
  for (const auto& epoch : result.epochs) {
    bytes += epoch.comm_bytes;
    std::printf("%6d %10.4f %9.1f%% %14.2f %12.2f\n", epoch.epoch, epoch.loss,
                100.0 * epoch.accuracy, epoch.sim_seconds_cum,
                bytes / 1048576.0);
  }

  std::printf(
      "\nHE ops: %llu encrypts / %llu adds / %llu decrypts "
      "(%llu gradient values through %d-slot packing)\n",
      static_cast<unsigned long long>(he->op_counts().encrypts),
      static_cast<unsigned long long>(he->op_counts().hom_adds),
      static_cast<unsigned long long>(he->op_counts().decrypts),
      static_cast<unsigned long long>(he->op_counts().values_encrypted),
      he->pack_slots());
  std::printf("No raw patient record ever left its hospital.\n");
  return 0;
}
