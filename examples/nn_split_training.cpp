// Split neural network across two organizations (Hetero NN).
//
// An advertiser (guest: clicks + its own user features) and a publisher
// (host: page/context features) train a shared click model. Each keeps a
// private bottom network; the interactive layer couples them through
// encrypted weights (GELU-net style): the publisher computes on E(W) with
// its plaintext activations, so neither raw activations nor interactive
// weights cross the trust boundary in the clear.
//
//   $ ./example_nn_split_training

#include <cstdio>
#include <memory>

#include "src/core/he_service.h"
#include "src/fl/hetero_nn.h"
#include "src/fl/partition.h"

int main() {
  using namespace flb;

  fl::DatasetSpec spec;
  spec.kind = fl::DatasetKind::kAvazu;  // one-hot CTR features
  spec.rows = 240;
  spec.cols = 64;
  spec.nnz_per_row = 8;
  fl::Dataset impressions = fl::GenerateDataset(spec).value();
  auto partition = fl::VerticalSplit(impressions, 2).value();
  std::printf(
      "Impressions: %zu; advertiser features: %zu (+labels), publisher "
      "features: %zu\n",
      impressions.rows(), partition.shards[0].x.cols(),
      partition.shards[1].x.cols());

  SimClock clock;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  net::Network network(net::LinkSpec::GigabitEthernet(), &clock);
  core::HeServiceOptions he_opts;
  he_opts.engine = core::EngineKind::kFlBooster;
  he_opts.key_bits = 256;
  he_opts.r_bits = 14;
  he_opts.frac_bits = 16;
  he_opts.fp_compress_slot_bits = 40;
  he_opts.participants = 2;
  auto he = core::HeService::Create(he_opts, &clock, device).value();

  fl::TrainConfig cfg;
  cfg.max_epochs = 8;
  cfg.batch_size = 60;
  cfg.learning_rate = 1.0;
  fl::NnParams params;
  params.bottom_dim = 6;
  params.interactive_dim = 6;

  fl::FlSession session{he.get(), &network, &clock};
  fl::HeteroNnTrainer trainer(partition, session, cfg, params);
  auto result = trainer.Train().value();

  std::printf("\n%6s %10s %10s %12s %10s\n", "epoch", "logloss", "accuracy",
              "sim secs", "HE secs");
  for (const auto& epoch : result.epochs) {
    std::printf("%6d %10.4f %9.1f%% %12.2f %10.2f\n", epoch.epoch, epoch.loss,
                100.0 * epoch.accuracy, epoch.sim_seconds_cum,
                epoch.he_seconds);
  }
  std::printf(
      "\nHE ops: %llu encrypts, %llu scalar muls (encrypted interactive "
      "layer), %llu decrypts.\n",
      static_cast<unsigned long long>(he->op_counts().encrypts),
      static_cast<unsigned long long>(he->op_counts().scalar_muls),
      static_cast<unsigned long long>(he->op_counts().decrypts));
  return 0;
}
