// Sample alignment with RSA-blind PSI, then vertical training — the full
// heterogeneous onboarding flow: two organizations discover which customers
// they share (without revealing the rest), align their tables on the
// intersection, and train a Hetero LR model over it.
//
//   $ ./example_psi_alignment

#include <algorithm>
#include <cstdio>
#include <memory>

#include "src/core/he_service.h"
#include "src/fl/hetero_lr.h"
#include "src/fl/partition.h"
#include "src/fl/psi.h"

int main() {
  using namespace flb;

  // Overlapping but distinct customer universes.
  std::vector<uint64_t> guest_ids, host_ids;
  for (uint64_t i = 0; i < 300; ++i) guest_ids.push_back(2 * i);      // evens
  for (uint64_t i = 0; i < 300; ++i) host_ids.push_back(3 * i);       // triples
  std::printf("Guest has %zu customers, host has %zu\n", guest_ids.size(),
              host_ids.size());

  SimClock clock;
  net::Network network(net::LinkSpec::GigabitEthernet(), &clock);

  // ---- phase 1: private set intersection -----------------------------------
  fl::PsiOptions psi_opts;
  psi_opts.rsa_key_bits = 512;
  fl::PsiStats stats;
  auto shared = fl::RsaPsiIntersect(guest_ids, host_ids, psi_opts, &network,
                                    &clock, &stats)
                    .value();
  std::printf(
      "PSI: %zu shared customers found (%llu blind signatures, %.1f KB on "
      "the wire, %.2f s simulated)\n",
      shared.size(), static_cast<unsigned long long>(stats.blind_signatures),
      stats.comm_bytes / 1024.0, clock.Now());

  // ---- phase 2: align + vertically train on the intersection ----------------
  fl::DatasetSpec spec;
  spec.kind = fl::DatasetKind::kSynthetic;
  spec.rows = shared.size();
  spec.cols = 16;
  spec.nnz_per_row = 16;
  fl::Dataset aligned = fl::GenerateDataset(spec).value();
  auto partition = fl::VerticalSplit(aligned, 2).value();

  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);
  core::HeServiceOptions he_opts;
  he_opts.engine = core::EngineKind::kFlBooster;
  he_opts.key_bits = 256;
  he_opts.r_bits = 14;
  he_opts.participants = 2;
  auto he = core::HeService::Create(he_opts, &clock, device).value();

  fl::TrainConfig cfg;
  cfg.max_epochs = 4;
  cfg.batch_size = 50;
  fl::FlSession session{he.get(), &network, &clock};
  fl::HeteroLrTrainer trainer(partition, session, cfg);
  auto result = trainer.Train().value();

  std::printf("\nTraining on the %zu aligned customers:\n", shared.size());
  for (const auto& epoch : result.epochs) {
    std::printf("  epoch %d: loss %.4f, accuracy %.1f%%\n", epoch.epoch,
                epoch.loss, 100.0 * epoch.accuracy);
  }
  std::printf(
      "\nNeither side learned the other's non-shared customers; training "
      "touched only the intersection.\n");
  return 0;
}
