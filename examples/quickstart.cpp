// Quickstart: generate Paillier keys, encrypt gradients with batch
// compression on the simulated GPU, aggregate homomorphically, decrypt —
// the core FLBooster loop in ~60 lines.
//
//   $ ./example_quickstart

#include <cstdio>
#include <memory>

#include "src/core/he_service.h"

int main() {
  using namespace flb;

  // A simulated RTX 3090 and a simulated clock that tracks where time goes.
  SimClock clock;
  auto device = std::make_shared<gpusim::Device>(
      gpusim::DeviceSpec::Rtx3090(), &clock);

  // FLBooster engine: GPU-HE + batch compression. 512-bit keys keep the
  // example instant; production uses 1024+.
  core::HeServiceOptions options;
  options.engine = core::EngineKind::kFlBooster;
  options.key_bits = 512;
  options.r_bits = 30;      // quantization bits (paper default: r + b = 32)
  options.participants = 2; // overflow headroom for 2 clients
  auto he = core::HeService::Create(options, &clock, device).value();

  std::printf("Engine: %s, key: %d bits, %d gradients per ciphertext\n",
              core::EngineName(he->engine()).c_str(), options.key_bits,
              he->pack_slots());

  // Two clients' local gradients.
  std::vector<double> alice = {0.12, -0.07, 0.33, -0.21, 0.05};
  std::vector<double> bob = {-0.02, 0.14, -0.08, 0.19, -0.11};

  // Each client quantizes, packs, and encrypts its gradient vector.
  core::EncVec enc_alice = he->EncryptValues(alice).value();
  core::EncVec enc_bob = he->EncryptValues(bob).value();
  std::printf("Encrypted %zu values into %zu ciphertext(s) each\n",
              alice.size(), enc_alice.num_ciphertexts());

  // The server adds ciphertexts without seeing any plaintext.
  core::EncVec aggregate = he->AddCipher(enc_alice, enc_bob).value();

  // Clients decrypt the aggregate.
  std::vector<double> sum = he->DecryptValues(aggregate).value();
  std::printf("\n%8s %8s %10s %10s\n", "alice", "bob", "decrypted", "exact");
  for (size_t i = 0; i < sum.size(); ++i) {
    std::printf("%8.3f %8.3f %10.5f %10.5f\n", alice[i], bob[i], sum[i],
                alice[i] + bob[i]);
  }

  std::printf("\nSimulated time: %.3f ms (GPU kernels %.3f ms, PCIe %.3f ms)\n",
              1e3 * clock.Now(), 1e3 * clock.Elapsed(CostKind::kGpuKernel),
              1e3 * clock.Elapsed(CostKind::kPcieTransfer));
  return 0;
}
