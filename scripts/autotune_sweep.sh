#!/usr/bin/env bash
# Auto-tuner sweep: runs the bench_table4_throughput "autotune" section
# (tuned vs default knobs plus an exhaustive oracle sweep of the same knob
# space, all in simulated time) and reports, per 2048-bit workload:
#   - epoch seconds with default knobs, tuned knobs, and the oracle best
#   - the tuned/default speedup and the % of oracle-best the tuner reached
#   - the knob vector the tuner chose (streams/chunks/batch/bc)
# then gates the run against bench/baselines/autotune_smoke.json.
#
#   ./scripts/autotune_sweep.sh [--smoke] [build-dir]
#
# Results land in results/BENCH_autotune_sweep.json (BenchJson schema, so
# run_all_experiments.sh-style tooling can fold them into summary.json) and
# results/tuner_cache.flbtune (the disk TuningCache — a second sweep skips
# every warm-up run).
set -euo pipefail

SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
  SMOKE=1
  shift
fi
BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RESULTS="$REPO_ROOT/results"
BENCH="$REPO_ROOT/$BUILD_DIR/bench/bench_table4_throughput"
OUT="$RESULTS/BENCH_autotune_sweep.json"

command -v jq >/dev/null || { echo "jq not found" >&2; exit 2; }
[ -x "$BENCH" ] || {
  echo "bench binary not found: $BENCH (build the bench_table4_throughput" \
       "target first)" >&2
  exit 2
}
mkdir -p "$RESULTS"

env_args=(
  FLB_BENCH_NAME=table4_throughput
  FLB_BENCH_JSON="$OUT"
  FLB_TUNER_CACHE="$RESULTS/tuner_cache.flbtune"
)
[ "$SMOKE" = 1 ] && env_args+=(FLB_SMOKE=1)

echo "== autotune sweep (smoke=$SMOKE) =="
env "${env_args[@]}" "$BENCH" > "$RESULTS/autotune_sweep.txt"

# One row per workload: pivot the autotune_* metrics by their label suffix.
lookup() {  # lookup <metric-prefix> <suffix>
  jq -r --arg m "$1,$2" \
    '[.results[] | select(.metric == $m) | .value] | first // empty' "$OUT"
}

printf '\n%-40s %10s %10s %10s %8s %8s\n' "workload" "default_s" "tuned_s" \
  "oracle_s" "speedup" "%oracle"
found=0
while IFS= read -r suffix; do
  found=1
  def="$(lookup autotune_epoch_seconds_default "$suffix")"
  tuned="$(lookup autotune_epoch_seconds_tuned "$suffix")"
  oracle="$(lookup autotune_epoch_seconds_oracle "$suffix")"
  speedup="$(lookup autotune_speedup "$suffix")"
  pct="$(lookup autotune_pct_of_oracle "$suffix")"
  printf '%-40s %10.4f %10.4f %10.4f %7.2fx %7.1f%%\n' "$suffix" "$def" \
    "$tuned" "$oracle" "$speedup" "$pct"
  printf '  tuned knobs: streams=%.0f chunks=%.0f batch=%.0f bc=%.0f  (default: engine traits)\n' \
    "$(lookup autotune_chosen_streams "$suffix")" \
    "$(lookup autotune_chosen_chunks "$suffix")" \
    "$(lookup autotune_chosen_batch "$suffix")" \
    "$(lookup autotune_chosen_bc "$suffix")"
done < <(jq -r '[.results[]
                 | select(.metric | startswith("autotune_epoch_seconds_tuned,"))
                 | .metric | sub("^autotune_epoch_seconds_tuned,"; "")]
                | unique | .[]' "$OUT")

if [ "$found" = 0 ]; then
  echo "ERROR: no autotune_* records in $OUT — did the autotune section run?" >&2
  exit 1
fi

echo
"$REPO_ROOT/scripts/check_bench_regression.sh" "$OUT" \
  "$REPO_ROOT/bench/baselines/autotune_smoke.json"
