#!/usr/bin/env bash
# Chaos soak: drive every trainer through a matrix of fault plans (loss,
# straggler, crash window, partition window) and assert the resilience
# layer's contract on each run:
#   - the run terminates (timeout-guarded — a hang fails the soak),
#   - the outcome is converged/complete or a typed error (never "error"),
#   - the run emitted flb.resilience.* metrics,
#   - a same-seed rerun is bit-identical (same fingerprint line).
# Usage: ./scripts/chaos_soak.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$REPO_ROOT/$BUILD_DIR/examples/example_chaos_soak"
RESULTS="$REPO_ROOT/results"
OUT="$RESULTS/chaos_soak.jsonl"
# Wall-clock budget per run. The simulated run deadline bounds simulated
# time; this bounds real time in case the harness itself wedges.
SOAK_TIMEOUT="${FLB_SOAK_TIMEOUT:-120}"

command -v jq >/dev/null || { echo "jq not found" >&2; exit 2; }
[ -x "$BIN" ] || { echo "missing $BIN (build example_chaos_soak)" >&2; exit 2; }
mkdir -p "$RESULTS"
: > "$OUT"

fail=0
runs=0

# one_run <model> <plan-name> <plan>: two same-seed runs; asserts outcome,
# resilience metrics, and bit-identity between the two lines.
one_run() {
  local model="$1" plan_name="$2" plan="$3"
  local line_a line_b
  for attempt in a b; do
    local line rc=0
    line=$(timeout "$SOAK_TIMEOUT" \
        "$BIN" --model="$model" --plan="$plan" --seed=11 --epochs=2) || rc=$?
    if [ "$rc" != 0 ]; then
      if [ "$rc" = 124 ]; then
        echo "FAIL $model/$plan_name: hung past ${SOAK_TIMEOUT}s wall" >&2
      else
        echo "FAIL $model/$plan_name: exit $rc" >&2
      fi
      fail=1
      return
    fi
    if [ "$attempt" = a ]; then line_a="$line"; else line_b="$line"; fi
  done
  echo "$line_a" >> "$OUT"
  runs=$((runs + 1))

  if ! echo "$line_a" | jq -e \
      '.outcome | IN("ok", "unavailable", "deadline_exceeded")' >/dev/null
  then
    echo "FAIL $model/$plan_name: untyped outcome: $line_a" >&2
    fail=1
  fi
  if ! echo "$line_a" | jq -e '.resilience_metrics > 0' >/dev/null; then
    echo "FAIL $model/$plan_name: no flb.resilience.* metrics: $line_a" >&2
    fail=1
  fi
  # Completed runs must have completed every epoch they report converged
  # for; typed-error runs report how far they got.
  if ! echo "$line_a" | jq -e \
      '(.outcome != "ok") or (.epochs == 2)' >/dev/null; then
    echo "FAIL $model/$plan_name: ok outcome with missing epochs: $line_a" >&2
    fail=1
  fi
  if [ "$line_a" != "$line_b" ]; then
    echo "FAIL $model/$plan_name: same-seed rerun differs:" >&2
    echo "  a: $line_a" >&2
    echo "  b: $line_b" >&2
    fail=1
  else
    echo "ok  $model/$plan_name ($(echo "$line_a" | jq -r '.outcome'))"
  fi
}

for model in homo_lr homo_nn hetero_lr hetero_sbt hetero_nn; do
  # The faulted party and its partition peer use each topology's naming.
  case "$model" in
    homo_*)   party="party1"; peer="server" ;;
    hetero_*) party="host1";  peer="guest" ;;
  esac
  one_run "$model" drop      "seed=9;drop=0.15"
  one_run "$model" straggler "seed=9;straggler=${party}:6"
  one_run "$model" crash     "seed=9;crash=${party}@0.05-0.2"
  one_run "$model" partition "seed=9;partition=${party}|${peer}@0.05-0.15"
done

echo "soak: $runs runs recorded in $OUT"
exit "$fail"
