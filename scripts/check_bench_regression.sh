#!/usr/bin/env bash
# Gates a microbenchmark run against a checked-in baseline.
#
#   ./scripts/check_bench_regression.sh <measured.json> <baseline.json>
#   ./scripts/check_bench_regression.sh <measured.json> <baseline.json> --update
#
# <measured.json> is a BenchJson artifact (FLB_BENCH_JSON output of a
# bench binary using bench/gbench_json.h); <baseline.json> holds:
#   bench     — (optional) the bench name the baseline gates; when present,
#               the measured run's "bench" field must match, so a baseline
#               pointed at the wrong artifact fails instead of passing
#               vacuously
#   tolerance — allowed slowdown factor vs the baselined ns/iter
#               (FLB_BENCH_TOLERANCE overrides; absolute timings are
#               machine-dependent, so keep this generous)
#   entries   — [{metric, ns_per_iter}]: each measured metric must satisfy
#               measured <= ns_per_iter * tolerance
#   ratios    — [{slow, fast, min_ratio}]: measured(slow)/measured(fast)
#               must be >= min_ratio. Both sides come from the SAME run on
#               the SAME machine, so this gate is machine-independent —
#               it is the primary check (e.g. fixed-width kernels must
#               keep their >= 2x speedup over the generic limb path).
#
# --update rewrites the baseline's ns_per_iter values from the measured
# run (see README: refresh on a quiet machine, commit the diff).
set -euo pipefail

usage() { echo "usage: $0 <measured.json> <baseline.json> [--update]" >&2; }

[ $# -ge 2 ] || { usage; exit 2; }
measured="$1"
baseline="$2"
mode="${3:-check}"
command -v jq >/dev/null || { echo "jq not found" >&2; exit 2; }
[ -f "$measured" ] || { echo "measured file not found: $measured" >&2; exit 2; }
[ -f "$baseline" ] || { echo "baseline file not found: $baseline" >&2; exit 2; }

# Parse both files up front so a malformed artifact is a loud exit 2, not a
# silently empty loop downstream (jq failures inside process substitutions
# do not trip `set -e`).
jq -e type "$measured" >/dev/null \
  || { echo "measured file is not valid JSON: $measured" >&2; exit 2; }
jq -e type "$baseline" >/dev/null \
  || { echo "baseline file is not valid JSON: $baseline" >&2; exit 2; }

if [ "$mode" = "--update" ]; then
  tmp="$(mktemp)"
  jq --slurpfile m "$measured" '
      ($m[0].results | map({key: .metric, value: .value}) | from_entries)
        as $vals
      | .entries |= map(
          if $vals[.metric] != null
          then .ns_per_iter = $vals[.metric]
          else . end)
    ' "$baseline" > "$tmp"
  mv "$tmp" "$baseline"
  echo "updated $baseline from $measured"
  exit 0
fi

# A baseline naming a bench that the fresh run did not produce must fail
# clearly — comparing paillier numbers against a montgomery artifact (or an
# empty one) used to pass vacuously.
want_bench="$(jq -r '.bench // empty' "$baseline")"
if [ -n "$want_bench" ]; then
  got_bench="$(jq -r '.bench // empty' "$measured")"
  if [ "$got_bench" != "$want_bench" ]; then
    echo "FAIL baseline gates bench \"$want_bench\" but measured run is" \
         "\"${got_bench:-<unnamed>}\" ($measured)" >&2
    exit 1
  fi
fi

tolerance="${FLB_BENCH_TOLERANCE:-$(jq -r '.tolerance // 1.5' "$baseline")}"
fail=0
checks=0

# measured value for a metric name, or empty when the run did not produce it
lookup() {
  jq -r --arg m "$1" \
    '[.results[] | select(.metric == $m) | .value] | first // empty' \
    "$measured"
}

while IFS=$'\t' read -r metric base; do
  checks=$((checks + 1))
  value="$(lookup "$metric")"
  if [ -z "$value" ]; then
    echo "FAIL $metric: missing from $measured" >&2
    fail=1
    continue
  fi
  if jq -ne --argjson v "$value" --argjson b "$base" --argjson t "$tolerance" \
      '$v <= $b * $t' >/dev/null; then
    printf 'ok   %s: %.0f ns/iter (baseline %.0f, tolerance %sx)\n' \
      "$metric" "$value" "$base" "$tolerance"
  else
    printf 'FAIL %s: %.0f ns/iter exceeds baseline %.0f * %sx\n' \
      "$metric" "$value" "$base" "$tolerance" >&2
    fail=1
  fi
done < <(jq -r '(.entries // [])[]
                | [.metric, (.ns_per_iter | tostring)] | @tsv' "$baseline")

while IFS=$'\t' read -r slow fast min_ratio; do
  checks=$((checks + 1))
  slow_v="$(lookup "$slow")"
  fast_v="$(lookup "$fast")"
  if [ -z "$slow_v" ] || [ -z "$fast_v" ]; then
    echo "FAIL ratio $slow / $fast: metric missing from $measured" >&2
    fail=1
    continue
  fi
  ratio="$(jq -n --argjson s "$slow_v" --argjson f "$fast_v" '$s / $f')"
  if jq -ne --argjson r "$ratio" --argjson m "$min_ratio" '$r >= $m' \
      >/dev/null; then
    printf 'ok   %s / %s = %.2fx (min %sx)\n' "$slow" "$fast" "$ratio" \
      "$min_ratio"
  else
    printf 'FAIL %s / %s = %.2fx below required %sx\n' "$slow" "$fast" \
      "$ratio" "$min_ratio" >&2
    fail=1
  fi
done < <(jq -r '(.ratios // [])[]
                | [.slow, .fast, (.min_ratio | tostring)] | @tsv' "$baseline")

# A baseline that contributed no checks at all (no entries, no ratios, or
# every name filtered away upstream) is a misconfiguration, not a pass.
if [ "$checks" -eq 0 ]; then
  echo "FAIL $baseline contributed zero checks (entries and ratios both" \
       "empty) — nothing was gated" >&2
  fail=1
fi

exit "$fail"
