#!/usr/bin/env bash
# Validates a Prometheus text-exposition snapshot (as served by the
# ObsServer /metrics endpoint) without needing promtool:
#   * every non-comment line matches the sample grammar
#     name{label="value",...} <number>
#   * metric names and label names are legal ([a-zA-Z_:][a-zA-Z0-9_:]*,
#     labels without ':')
#   * every sample's base name has a preceding "# TYPE <name> <kind>" line
#   * every histogram has a "+Inf" bucket plus _sum and _count, the +Inf
#     bucket count equals _count, and each bucket series is cumulative
#     (counts never decrease as `le` grows)
# Usage: ./scripts/check_prometheus.sh <metrics.txt> [more.txt ...]
set -euo pipefail

[ "$#" -ge 1 ] || { echo "usage: $0 <metrics.txt> [...]" >&2; exit 2; }

fail=0
for f in "$@"; do
  if [ ! -s "$f" ]; then
    echo "FAIL empty or missing: $f" >&2
    fail=1
    continue
  fi
  if ! awk '
    function base_name(n) {
      sub(/_(bucket|sum|count)$/, "", n)
      return n
    }
    function err(msg) {
      printf "FAIL %s:%d: %s: %s\n", FILENAME, FNR, msg, $0 > "/dev/stderr"
      bad = 1
    }
    /^#/ {
      if ($1 == "#" && $2 == "TYPE") {
        if ($3 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) err("bad TYPE name")
        if ($4 !~ /^(counter|gauge|histogram|summary|untyped)$/)
          err("bad TYPE kind")
        typed[$3] = $4
      }
      next
    }
    /^[[:space:]]*$/ { next }
    {
      # Sample line: name[{labels}] value
      if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/)) { err("bad metric name"); next }
      name = substr($0, 1, RLENGTH)
      rest = substr($0, RLENGTH + 1)
      le = ""
      labels = ""
      if (substr(rest, 1, 1) == "{") {
        close_idx = index(rest, "}")
        if (close_idx == 0) { err("unterminated label set"); next }
        labels = substr(rest, 2, close_idx - 2)
        rest = substr(rest, close_idx + 1)
        # Validate each label: name="value" with only escaped specials.
        nlab = split(labels, parts, /",/)
        for (i = 1; i <= nlab; i++) {
          p = parts[i]
          if (i < nlab) p = p "\""
          if (p !~ /^[a-zA-Z_][a-zA-Z0-9_]*="([^"\\]|\\\\|\\"|\\n)*"$/)
            err("bad label pair: " p)
          if (p ~ /^le="/) { le = substr(p, 5, length(p) - 5) }
        }
      }
      if (rest !~ /^ (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$/)
        err("bad sample value:" rest)
      value = substr(rest, 2)
      bn = base_name(name)
      if (!(name in typed) && !(bn in typed)) err("no # TYPE for " name)
      seen_samples++
      # Histogram bookkeeping.
      if (typed[bn] == "histogram") {
        if (name == bn "_count") hist_count[bn] = value
        else if (name == bn "_sum") hist_sum[bn] = 1
        else if (name == bn "_bucket") {
          # Series identity excludes the le label: cumulative monotonicity
          # holds across le values of one labelled series.
          lbl = labels
          sub(/(^|,)le="([^"\\]|\\\\|\\"|\\n)*"/, "", lbl)
          series = bn "|" lbl
          if (le == "") err("histogram bucket without le")
          if (le == "+Inf") hist_inf[bn "|" lbl] = value
          if (series in last_bucket && value + 0 < last_bucket[series] + 0)
            err("non-cumulative bucket series " series)
          last_bucket[series] = value
          hist_has_bucket[bn] = 1
        }
      }
      next
    }
    END {
      if (seen_samples == 0) { print "FAIL no samples" > "/dev/stderr"; bad = 1 }
      for (bn in typed) {
        if (typed[bn] != "histogram") continue
        if (!(bn in hist_has_bucket)) { err_end(bn, "no _bucket series") }
        if (!(bn in hist_sum)) { err_end(bn, "no _sum") }
        if (!(bn in hist_count)) { err_end(bn, "no _count") }
        inf_found = 0
        for (k in hist_inf) {
          if (index(k, bn "|") == 1) inf_found = 1
        }
        if (!inf_found) err_end(bn, "no +Inf bucket")
      }
      exit bad
    }
    function err_end(bn, msg) {
      printf "FAIL %s: histogram %s: %s\n", FILENAME, bn, msg > "/dev/stderr"
      bad = 1
    }
  ' "$f"; then
    fail=1
  else
    echo "ok  $f ($(grep -cv '^#' "$f" || true) samples)"
  fi
done
exit "$fail"
