#!/usr/bin/env bash
# Structural validation of flb_analyze's SARIF 2.1.0 output: the document
# must parse as JSON and carry every field GitHub code scanning requires
# (version/$schema, tool.driver with the full rule table, and for each
# result a known ruleId, message text, artifact location with a 1-based
# start line, and the stable flbAnalyzeKey/v1 fingerprint). CI runs this
# before uploading; it needs only python3, no jq or network schema fetch.
#
# Usage: ./scripts/check_sarif.sh results/flb_analyze.sarif
set -euo pipefail

if [ $# -ne 1 ]; then
  echo "usage: $0 SARIF_FILE" >&2
  exit 2
fi

python3 - "$1" <<'PYEOF'
import json
import sys

path = sys.argv[1]

def die(msg):
    sys.exit(f"check_sarif: {path}: {msg}")

try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    die(f"cannot parse: {e}")

if doc.get("version") != "2.1.0":
    die("version must be '2.1.0'")
if "sarif-2.1.0" not in doc.get("$schema", ""):
    die("$schema must reference the sarif-2.1.0 schema")

runs = doc.get("runs")
if not isinstance(runs, list) or len(runs) != 1:
    die("runs must be an array with exactly one run")
run = runs[0]

driver = run.get("tool", {}).get("driver", {})
if driver.get("name") != "flb_analyze":
    die("tool.driver.name must be 'flb_analyze'")
rules = driver.get("rules", [])
ids = [r.get("id") for r in rules]
if ids != ["FLB007", "FLB008", "FLB009"]:
    die(f"rule table must be FLB007..FLB009 in order, got {ids}")
for r in rules:
    if not r.get("shortDescription", {}).get("text"):
        die(f"rule {r.get('id')} missing shortDescription.text")

results = run.get("results")
if not isinstance(results, list):
    die("results must be an array")
for i, res in enumerate(results):
    where = f"results[{i}]"
    if res.get("ruleId") not in ids:
        die(f"{where}: unknown ruleId {res.get('ruleId')!r}")
    if res.get("level") not in ("error", "warning", "note"):
        die(f"{where}: invalid level {res.get('level')!r}")
    if not res.get("message", {}).get("text"):
        die(f"{where}: missing message.text")
    locs = res.get("locations")
    if not isinstance(locs, list) or not locs:
        die(f"{where}: missing locations")
    phys = locs[0].get("physicalLocation", {})
    if not phys.get("artifactLocation", {}).get("uri"):
        die(f"{where}: missing artifactLocation.uri")
    if not isinstance(phys.get("region", {}).get("startLine"), int) or \
            phys["region"]["startLine"] < 1:
        die(f"{where}: region.startLine must be a positive integer")
    if not res.get("partialFingerprints", {}).get("flbAnalyzeKey/v1"):
        die(f"{where}: missing partialFingerprints['flbAnalyzeKey/v1']")

print(f"check_sarif: {path}: ok "
      f"({len(results)} result(s), {len(rules)} rules)")
PYEOF
