#!/usr/bin/env bash
# Opt-in developer hook installer. Writes a pre-commit hook that runs
# flb_lint + flb_analyze + clang-format over the STAGED C++ files only —
# the same checks the CI lint job runs over the whole tree, scoped down so
# a commit stays fast. Nothing in the build or CI depends on this; it is
# purely a local early-warning net.
#
# Usage:
#   ./scripts/install_hooks.sh              # install / refresh
#   ./scripts/install_hooks.sh --uninstall  # remove (only our hook)
#
# The hook respects FLB_HOOK_BUILD_DIR (default: build) for prebuilt tool
# binaries and builds them on first use if missing. Bypass a single commit
# with `git commit --no-verify`.
set -euo pipefail
cd "$(dirname "$0")/.."

MARKER="# flb-pre-commit-hook v1"
HOOK="$(git rev-parse --git-path hooks)/pre-commit"

if [ "${1:-}" = "--uninstall" ]; then
  if [ -f "$HOOK" ] && grep -qF "$MARKER" "$HOOK"; then
    rm "$HOOK"
    echo "install_hooks: removed $HOOK"
  else
    echo "install_hooks: no flb hook installed at $HOOK, nothing to do"
  fi
  exit 0
fi

if [ -f "$HOOK" ] && ! grep -qF "$MARKER" "$HOOK"; then
  echo "install_hooks: $HOOK exists and is not ours; refusing to overwrite" >&2
  exit 1
fi

mkdir -p "$(dirname "$HOOK")"
cat > "$HOOK" <<EOF
#!/usr/bin/env bash
$MARKER  (installed by scripts/install_hooks.sh; edit there, not here)
# Lints the staged versions of changed C++ files: flb_lint (FLB001-005),
# flb_analyze (FLB007-009, with the checked-in layering exceptions and
# baseline), and clang-format when available. Skip once: --no-verify.
set -euo pipefail
repo="\$(git rev-parse --show-toplevel)"
build="\${FLB_HOOK_BUILD_DIR:-\$repo/build}"

mapfile -t staged < <(git diff --cached --name-only --diff-filter=ACMR -- \\
  '*.h' '*.cc' '*.cpp' | grep -E '^(src|tools|bench)/' || true)
if [ "\${#staged[@]}" -eq 0 ]; then
  exit 0
fi

lint="\$build/tools/flb_lint/flb_lint"
analyze="\$build/tools/flb_analyze/flb_analyze"
if [ ! -x "\$lint" ] || [ ! -x "\$analyze" ]; then
  echo "pre-commit: building flb_lint + flb_analyze (first run)..."
  cmake -S "\$repo" -B "\$build" >/dev/null
  cmake --build "\$build" -j --target flb_lint flb_analyze >/dev/null
fi

# Check the staged blobs, not the working tree: a partially staged file is
# checked as it will be committed.
tmp="\$(mktemp -d)"
trap 'rm -rf "\$tmp"' EXIT
git checkout-index --prefix="\$tmp/" -- "\${staged[@]}"
cd "\$tmp"

"\$lint" "\${staged[@]}"
"\$analyze" \\
  --exceptions "\$repo/tools/flb_analyze/layering_exceptions.txt" \\
  --baseline "\$repo/tools/flb_analyze/analyze_baseline.txt" \\
  "\${staged[@]}"

if command -v clang-format >/dev/null 2>&1; then
  clang-format --dry-run -Werror "\${staged[@]}"
fi
EOF
chmod +x "$HOOK"
echo "install_hooks: installed $HOOK"
echo "install_hooks: bypass once with 'git commit --no-verify';" \
     "remove with './scripts/install_hooks.sh --uninstall'"
