#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extension benches into
# results/, then runs the test suite. Usage:
#   ./scripts/run_all_experiments.sh [--smoke] [--chaos[=plan]] [build-dir]
#
# --smoke: CI-sized pass — FLB_SMOKE=1 shrinks the workload grids to a
# single tiny key size (256-bit) and one epoch over miniature datasets, and
# the microbenchmarks run one timing batch each. Exercises every driver
# end-to-end in minutes instead of hours; the numbers are meaningless.
#
# --chaos[=plan]: run the table/figure drivers under a fault plan
# (FLB_FAULT_PLAN; grammar in src/net/fault.h). Without a plan argument a
# canned mix of loss, duplication, reordering, corruption, a straggler, a
# crash window, and a partition window is used. The plan applies ONLY to
# the bench drivers — ctest always runs fault-free.
set -euo pipefail

DEFAULT_CHAOS_PLAN='seed=7;drop=0.02;dup=0.005;reorder=0.01;corrupt=0.002;straggler=party1:4;crash=party2@0.4-0.9;partition=party0|server@0.2-0.3'

SMOKE=0
CHAOS_PLAN=""
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke)
      SMOKE=1
      shift
      ;;
    --chaos)
      CHAOS_PLAN="$DEFAULT_CHAOS_PLAN"
      shift
      ;;
    --chaos=*)
      CHAOS_PLAN="${1#--chaos=}"
      shift
      ;;
    --*)
      echo "unknown flag: $1 (usage: $0 [--smoke] [--chaos[=plan]] [build-dir])" >&2
      exit 2
      ;;
    *)
      break
      ;;
  esac
done

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RESULTS="$REPO_ROOT/results"
mkdir -p "$RESULTS"

# Per-driver wall-clock budget. A wedged driver (deadlocked pool, runaway
# workload) would otherwise hang the whole sweep — and CI — silently.
BENCH_TIMEOUT="${FLB_BENCH_TIMEOUT:-1200}"

# run_driver <name> <cmd...>: run one bench under `timeout`, teeing its
# output to results/<name>.txt. Fails the sweep with an explicit message on
# timeout (exit 124) or any other nonzero exit.
run_driver() {
  local name="$1"
  shift
  local rc=0
  set +e
  timeout --foreground "$BENCH_TIMEOUT" "$@" | tee "$RESULTS/$name.txt" | tail -3
  rc="${PIPESTATUS[0]}"
  set -e
  if [ "$rc" = 124 ]; then
    echo "ERROR: $name exceeded FLB_BENCH_TIMEOUT=${BENCH_TIMEOUT}s and was killed" >&2
    exit 124
  elif [ "$rc" != 0 ]; then
    echo "ERROR: $name failed with exit code $rc" >&2
    exit "$rc"
  fi
}

if [ ! -d "$REPO_ROOT/$BUILD_DIR" ]; then
  cmake -S "$REPO_ROOT" -B "$REPO_ROOT/$BUILD_DIR" -G Ninja
fi
cmake --build "$REPO_ROOT/$BUILD_DIR"

GBENCH_ARGS=()
if [ "$SMOKE" = 1 ]; then
  export FLB_SMOKE=1
  GBENCH_ARGS=(--benchmark_min_time=0 --benchmark_filter='.*(256|512|1024)')
fi

if [ -n "$CHAOS_PLAN" ]; then
  echo "== chaos mode: bench drivers run under FLB_FAULT_PLAN =="
  echo "   $CHAOS_PLAN"
fi

echo "== tests =="
ctest --test-dir "$REPO_ROOT/$BUILD_DIR" | tee "$RESULTS/tests.txt" | tail -3

# Static-analysis counts ride the same BenchJson -> summary.json pipeline
# as the benches: both tools drop BENCH_*.json artifacts into results/,
# which the fold below picks up as flb.lint.* / flb.analyze.* rows.
echo "== static analysis =="
"$REPO_ROOT/$BUILD_DIR"/tools/flb_lint/flb_lint \
  --root "$REPO_ROOT/src" \
  --json "$RESULTS/BENCH_flb_lint.json"
"$REPO_ROOT/$BUILD_DIR"/tools/flb_analyze/flb_analyze \
  --root "$REPO_ROOT/src" \
  --exceptions "$REPO_ROOT/tools/flb_analyze/layering_exceptions.txt" \
  --baseline "$REPO_ROOT/tools/flb_analyze/analyze_baseline.txt" \
  --cache "$REPO_ROOT/$BUILD_DIR/flb_analyze.cache" \
  --json "$RESULTS/BENCH_flb_analyze.json"

for bench in "$REPO_ROOT/$BUILD_DIR"/bench/bench_*; do
  name="$(basename "$bench")"
  echo "== $name =="
  case "$name" in
    # google-benchmark microbenches take runtime flags; the table/figure
    # drivers read FLB_SMOKE from the environment instead. Their results
    # are mirrored into the same BenchJson schema (bench/gbench_json.h),
    # so they leave BENCH_*.json artifacts like the regenerators do.
    bench_montgomery | bench_mpint | bench_paillier)
      run_driver "$name" env \
        FLB_BENCH_NAME="$name" \
        FLB_BENCH_JSON="$RESULTS/BENCH_$name.json" \
        "$bench" "${GBENCH_ARGS[@]}"
      ;;
    *)
      # Table/figure drivers export the observability artifacts: bench
      # result records, a unified metrics snapshot, and the (last run's)
      # simulated-time trace.
      # An empty FLB_FAULT_PLAN is ignored by the platform, so chaos mode
      # is a pure pass-through here.
      run_driver "$name" env \
        FLB_FAULT_PLAN="$CHAOS_PLAN" \
        FLB_BENCH_NAME="$name" \
        FLB_BENCH_JSON="$RESULTS/BENCH_$name.json" \
        FLB_METRICS_OUT="$RESULTS/$name.metrics.json" \
        FLB_TRACE_OUT="$RESULTS/$name.trace.json" \
        "$bench"
      ;;
  esac
done

# Fold every driver's metrics snapshot and bench records into one
# results/summary.json keyed by driver name.
python3 - "$RESULTS" <<'PYEOF'
import json, pathlib, sys

results = pathlib.Path(sys.argv[1])
summary = {"benches": {}}
for path in sorted(results.glob("BENCH_*.json")):
    name = path.stem[len("BENCH_"):]
    with open(path) as f:
        data = json.load(f)
    entry = summary["benches"].setdefault(name, {})
    entry["results"] = data.get("results", [])
    if "host_threads" in data:
        entry["host_threads"] = data["host_threads"]
    if "wall_ms" in data:
        entry["wall_ms"] = data["wall_ms"]
for path in sorted(results.glob("*.metrics.json")):
    name = path.name[: -len(".metrics.json")]
    with open(path) as f:
        data = json.load(f)
    summary["benches"].setdefault(name, {})["metrics"] = data.get("metrics", [])
n_results = sum(len(b.get("results", [])) for b in summary["benches"].values())
n_metrics = sum(len(b.get("metrics", [])) for b in summary["benches"].values())
summary["totals"] = {
    "benches": len(summary["benches"]),
    "results": n_results,
    "metrics": n_metrics,
}
out = results / "summary.json"
with open(out, "w") as f:
    json.dump(summary, f, indent=1)
print(f"wrote {out}: {len(summary['benches'])} benches, "
      f"{n_results} result rows, {n_metrics} metrics")
PYEOF

echo
echo "All outputs in $RESULTS/."
