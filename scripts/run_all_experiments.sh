#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extension benches into
# results/, then runs the test suite. Usage:
#   ./scripts/run_all_experiments.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RESULTS="$REPO_ROOT/results"
mkdir -p "$RESULTS"

if [ ! -d "$REPO_ROOT/$BUILD_DIR" ]; then
  cmake -S "$REPO_ROOT" -B "$REPO_ROOT/$BUILD_DIR" -G Ninja
fi
cmake --build "$REPO_ROOT/$BUILD_DIR"

echo "== tests =="
ctest --test-dir "$REPO_ROOT/$BUILD_DIR" | tee "$RESULTS/tests.txt" | tail -3

for bench in "$REPO_ROOT/$BUILD_DIR"/bench/bench_*; do
  name="$(basename "$bench")"
  echo "== $name =="
  "$bench" | tee "$RESULTS/$name.txt" | tail -3
done

echo
echo "All outputs in $RESULTS/."
