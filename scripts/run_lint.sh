#!/usr/bin/env bash
# Runs the full static-analysis pass; the CI lint job runs exactly this
# script, so a clean local run means a green CI lint job.
#
#   1. flb_lint (domain invariants FLB001-FLB005) over src/, emitting a
#      BenchJson summary to results/BENCH_flb_lint.json
#   2. flb_analyze (interprocedural FLB007-FLB009: lock-order deadlocks,
#      determinism taint, layering) over src/ with the checked-in
#      exceptions + baseline files; emits results/BENCH_flb_analyze.json
#      and results/flb_analyze.sarif (uploaded to code scanning in CI)
#   3. clang thread-safety build of the flb library (-Werror=thread-safety)
#   4. clang-tidy over src/ and tools/ via compile_commands.json
#   5. clang-format --dry-run over tools/ and the whole src/ tree
#
# Steps 3-5 need clang/clang-tidy/clang-format; when absent they are
# skipped with a notice (the container toolchain is gcc-only) unless
# --require-clang is given, in which case a missing tool is a hard failure.
#
# Usage: ./scripts/run_lint.sh [--require-clang] [build-dir]
set -euo pipefail

REQUIRE_CLANG=0
BUILD_DIR="build"
while [ $# -gt 0 ]; do
  case "$1" in
    --require-clang)
      REQUIRE_CLANG=1
      shift
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done

cd "$(dirname "$0")/.."
fail=0

have() { command -v "$1" >/dev/null 2>&1; }

missing() {
  if [ "$REQUIRE_CLANG" = 1 ]; then
    echo "lint: $1 not found (required by --require-clang)" >&2
    fail=1
  else
    echo "lint: $1 not found, skipping $2"
  fi
}

# ---- 1. flb_lint ----------------------------------------------------------
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target flb_lint >/dev/null
mkdir -p results
if ! "$BUILD_DIR"/tools/flb_lint/flb_lint --root src \
    --json results/BENCH_flb_lint.json; then
  echo "lint: flb_lint found violations" >&2
  fail=1
fi

# ---- 2. flb_analyze -------------------------------------------------------
cmake --build "$BUILD_DIR" -j --target flb_analyze >/dev/null
if ! "$BUILD_DIR"/tools/flb_analyze/flb_analyze --root src \
    --exceptions tools/flb_analyze/layering_exceptions.txt \
    --baseline tools/flb_analyze/analyze_baseline.txt \
    --cache "$BUILD_DIR"/flb_analyze.cache \
    --json results/BENCH_flb_analyze.json \
    --sarif results/flb_analyze.sarif; then
  echo "lint: flb_analyze found new (non-baselined) findings" >&2
  fail=1
fi

# ---- 3. clang thread-safety build ----------------------------------------
if have clang++; then
  cmake -B "$BUILD_DIR-tsa" -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" >/dev/null
  if ! cmake --build "$BUILD_DIR-tsa" -j --target flb >/dev/null; then
    echo "lint: thread-safety build failed" >&2
    fail=1
  fi
else
  missing clang++ "thread-safety analysis build"
fi

# ---- 4. clang-tidy --------------------------------------------------------
if have clang-tidy; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Headers are covered through HeaderFilterRegex in .clang-tidy.
  mapfile -t tidy_sources < <(git ls-files 'src/**/*.cc' 'tools/**/*.cc')
  if ! clang-tidy -p "$BUILD_DIR" --quiet "${tidy_sources[@]}"; then
    echo "lint: clang-tidy found issues" >&2
    fail=1
  fi
else
  missing clang-tidy "clang-tidy checks"
fi

# ---- 5. clang-format ------------------------------------------------------
if have clang-format; then
  mapfile -t fmt_sources < <(git ls-files 'tools/**/*.cc' 'tools/**/*.h' \
    'src/**/*.cc' 'src/**/*.h')
  if ! clang-format --dry-run -Werror "${fmt_sources[@]}"; then
    echo "lint: clang-format differences in tools/ or src/" >&2
    fail=1
  fi
else
  missing clang-format "format check"
fi

if [ "$fail" = 0 ]; then
  echo "lint: all checks passed"
fi
exit "$fail"
