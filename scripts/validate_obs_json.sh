#!/usr/bin/env bash
# Schema-checks the observability artifacts a run leaves behind:
#   *.trace.json    — Chrome trace-event JSON (traceEvents with ph/pid/tid/ts)
#   *.metrics.json  — MetricsRegistry snapshots (metrics with name/type/value)
#   *.status.json   — ObsServer /status snapshots (phase/run/epoch/he/
#                     resilience/server)
#   BENCH_*.json    — bench result records (bench/section/metric/value/unit)
# Usage: ./scripts/validate_obs_json.sh [results-dir]
set -euo pipefail

DIR="${1:-results}"
command -v jq >/dev/null || { echo "jq not found" >&2; exit 2; }

fail=0
checked=0

for f in "$DIR"/*.trace.json; do
  [ -e "$f" ] || continue
  checked=$((checked + 1))
  if ! jq -e '
      (.traceEvents | type == "array") and
      (.traceEvents | length > 0) and
      ([.traceEvents[] | select(.ph != "M")] | length > 0) and
      ([.traceEvents[]
        | select(.ph != "M")
        | select((.name | type != "string") or
                 (.pid | type != "number") or
                 (.tid | type != "number") or
                 (.ts | type != "number") or
                 (.ph | IN("X", "i", "C") | not))]
       | length == 0) and
      ([.traceEvents[] | select(.ph == "X")
        | select((.dur | type != "number") or .dur < 0)] | length == 0)
    ' "$f" >/dev/null; then
    echo "FAIL trace schema: $f" >&2
    fail=1
  else
    echo "ok  $f ($(jq '.traceEvents | length' "$f") events)"
  fi
done

for f in "$DIR"/*.metrics.json; do
  [ -e "$f" ] || continue
  checked=$((checked + 1))
  if ! jq -e '
      (.metrics | type == "array") and
      ([.metrics[]
        | select((.name | type != "string") or
                 (.labels | type != "string") or
                 (.value | type != "number") or
                 (.type | IN("counter", "gauge", "histogram") | not))]
       | length == 0) and
      ([.metrics[] | select(.type == "histogram")
        | select((.count | type != "number") or
                 (.buckets | type != "array"))] | length == 0)
    ' "$f" >/dev/null; then
    echo "FAIL metrics schema: $f" >&2
    fail=1
  else
    echo "ok  $f ($(jq '.metrics | length' "$f") metrics)"
  fi
done

for f in "$DIR"/*.status.json; do
  [ -e "$f" ] || continue
  checked=$((checked + 1))
  if ! jq -e '
      (.phase | IN("idle", "setup", "train", "done", "linger")) and
      (.bench | type == "string") and
      (.section | type == "string") and
      (.generation | type == "number") and
      (.run.engine | type == "string") and
      (.run.model | type == "string") and
      (.run.key_bits | type == "number") and
      (.run.parties | type == "number") and
      (.run.seed | type == "number") and
      (.epoch.epoch | type == "number") and
      (.epoch.max_epochs | type == "number") and
      (.epoch.loss | type == "number") and
      (.epoch.sim_seconds | type == "number") and
      (.he.encrypts | type == "number") and
      (.he.values_encrypted | type == "number") and
      (.totals.total_seconds | type == "number") and
      (.faults.injected | type == "number") and
      (.channel.retransmits | type == "number") and
      (.trace.dropped_events | type == "number") and
      (.resilience.quarantined | type == "number") and
      (.resilience.quarantines | type == "number") and
      (.resilience.readmits | type == "number") and
      (.resilience.deadline_exceeded | type == "number") and
      (.resilience.breaker_open | type == "number") and
      (.resilience.breaker_half_open | type == "number") and
      (.resilience.breaker_trips | type == "number") and
      (.resilience.breaker_fast_fails | type == "number") and
      (.tuner.enabled | type == "boolean") and
      (.tuner.cache_hit | type == "boolean") and
      (.tuner.candidates | type == "number") and
      (.tuner.warmup_runs | type == "number") and
      (.tuner.warmup_seconds | type == "number") and
      (.tuner.predicted_seconds | type == "number") and
      (.tuner.measured_seconds | type == "number") and
      (.tuner.fingerprint | type == "string") and
      (.tuner.chosen | type == "string") and
      (.server.requests.metrics | type == "number") and
      (.server.requests.status | type == "number") and
      (.server.requests.trace | type == "number") and
      (.server.requests.healthz | type == "number")
    ' "$f" >/dev/null; then
    echo "FAIL status schema: $f" >&2
    fail=1
  else
    echo "ok  $f (phase $(jq -r '.phase' "$f"), gen $(jq '.generation' "$f"))"
  fi
done

for f in "$DIR"/BENCH_*.json; do
  [ -e "$f" ] || continue
  checked=$((checked + 1))
  if ! jq -e '
      (.bench | type == "string") and
      (.results | type == "array") and
      ([.results[]
        | select((.bench | type != "string") or
                 (.section | type != "string") or
                 (.metric | type != "string") or
                 (.value | type != "number") or
                 (.unit | type != "string"))]
       | length == 0)
    ' "$f" >/dev/null; then
    echo "FAIL bench schema: $f" >&2
    fail=1
  else
    echo "ok  $f ($(jq '.results | length' "$f") rows)"
  fi
done

if [ "$checked" = 0 ]; then
  echo "no observability JSON found under $DIR" >&2
  exit 1
fi
exit "$fail"
