#include "src/codec/batch_compressor.h"

#include <cmath>

#include "src/common/check.h"

namespace flb::codec {

BatchCompressor::BatchCompressor(Quantizer quantizer, int key_bits, int slots)
    : quantizer_(std::move(quantizer)), key_bits_(key_bits), slots_(slots) {}

Result<BatchCompressor> BatchCompressor::Create(Quantizer quantizer,
                                                int key_bits) {
  if (key_bits < 64) {
    return Status::InvalidArgument("BatchCompressor: key_bits must be >= 64");
  }
  // Reserve the top bit so packed plaintexts are strictly below 2^(k-1) <= n
  // (n has its top bit set by key generation).
  const int usable_bits = key_bits - 1;
  const int slots = usable_bits / quantizer.slot_bits();
  if (slots < 1) {
    return Status::InvalidArgument(
        "BatchCompressor: slot width exceeds the plaintext space");
  }
  return BatchCompressor(std::move(quantizer), key_bits, slots);
}

Result<std::vector<BigInt>> BatchCompressor::PackSlots(
    const std::vector<uint64_t>& slots) const {
  const int slot_bits = quantizer_.slot_bits();
  const uint64_t slot_max = (uint64_t{1} << slot_bits) - 1;
  std::vector<BigInt> out;
  out.reserve(PlaintextsFor(slots.size()));

  const size_t words_per_plaintext =
      (static_cast<size_t>(slots_) * slot_bits + 31) / 32;
  std::vector<uint32_t> words(words_per_plaintext, 0);
  int filled = 0;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] > slot_max) {
      return Status::OutOfRange("PackSlots: slot value exceeds slot width");
    }
    // OR the slot into the word buffer at bit offset filled * slot_bits.
    const size_t bit = static_cast<size_t>(filled) * slot_bits;
    size_t word = bit / 32;
    const int shift = static_cast<int>(bit % 32);
    words[word] |= static_cast<uint32_t>(slots[i] << shift);
    uint64_t rest = shift == 0 ? slots[i] >> 32 : slots[i] >> (32 - shift);
    while (rest != 0) {
      ++word;
      FLB_DCHECK(word < words.size());
      words[word] |= static_cast<uint32_t>(rest);
      rest >>= 32;
    }
    if (++filled == slots_ || i + 1 == slots.size()) {
      out.push_back(BigInt::FromWords(words));
      std::fill(words.begin(), words.end(), 0);
      filled = 0;
    }
  }
  return out;
}

Result<std::vector<BigInt>> BatchCompressor::Pack(
    const std::vector<double>& values) const {
  FLB_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                       quantizer_.EncodeBatch(values));
  return PackSlots(slots);
}

Result<std::vector<uint64_t>> BatchCompressor::UnpackSlots(
    const std::vector<BigInt>& packed, size_t count) const {
  if (count > packed.size() * static_cast<size_t>(slots_)) {
    return Status::InvalidArgument(
        "UnpackSlots: fewer packed plaintexts than requested slots");
  }
  const int slot_bits = quantizer_.slot_bits();
  std::vector<uint64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const BigInt& z = packed[i / slots_];
    const size_t bit = (i % slots_) * static_cast<size_t>(slot_bits);
    // Assemble up to 62 bits starting at `bit` from 32-bit limbs.
    const size_t word = bit / 32;
    const int shift = static_cast<int>(bit % 32);
    uint64_t v = (static_cast<uint64_t>(z.word(word)) |
                  (static_cast<uint64_t>(z.word(word + 1)) << 32)) >>
                 shift;
    if (shift != 0) {
      v |= static_cast<uint64_t>(z.word(word + 2)) << (64 - shift);
    }
    v &= (uint64_t{1} << slot_bits) - 1;
    out.push_back(v);
  }
  return out;
}

Result<std::vector<double>> BatchCompressor::Unpack(
    const std::vector<BigInt>& packed, size_t count,
    int num_contributors) const {
  FLB_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                       UnpackSlots(packed, count));
  return quantizer_.DecodeAggregateBatch(slots, num_contributors);
}

double BatchCompressor::CompressionRatio(size_t count) const {
  if (count == 0) return 1.0;
  return static_cast<double>(count) /
         static_cast<double>(PlaintextsFor(count));  // Eq. 11
}

double BatchCompressor::PlaintextSpaceUtilization(size_t count) const {
  if (count == 0) return 0.0;
  return static_cast<double>(count) * quantizer_.slot_bits() /
         (static_cast<double>(key_bits_) *
          static_cast<double>(PlaintextsFor(count)));  // Eq. 12
}

double BatchCompressor::TheoreticalCompressionRatio() const {
  return static_cast<double>(key_bits_) / quantizer_.slot_bits();
}

}  // namespace flb::codec
