// Batch Compression (paper §IV-C).
//
// Packs n = floor(k / (r + b)) quantized gradients into one k-bit Paillier
// plaintext (Eq. 9):
//
//   Z = [0..0][q_0] [0..0][q_1] ... [0..0][q_{n-1}]
//        b     r     b     r          b     r
//
// One encryption then covers n gradients, shrinking both the ciphertext
// count on the wire and the number of HE operations by the same factor
// (Eqs. 11-13). Because Paillier addition is plain integer addition of the
// packed words and each slot reserves b = ceil(log2 p) headroom bits,
// slot-wise sums of up to p participants never carry into the next slot —
// so aggregation happens directly on packed ciphertexts.

#ifndef FLB_CODEC_BATCH_COMPRESSOR_H_
#define FLB_CODEC_BATCH_COMPRESSOR_H_

#include <cstdint>
#include <vector>

#include "src/codec/quantizer.h"
#include "src/common/result.h"
#include "src/mpint/bigint.h"

namespace flb::codec {

using mpint::BigInt;

class BatchCompressor {
 public:
  // key_bits is the Paillier |n|; packed plaintexts use at most key_bits-1
  // bits so they always stay below n. Requires at least one slot to fit.
  static Result<BatchCompressor> Create(Quantizer quantizer, int key_bits);

  const Quantizer& quantizer() const { return quantizer_; }
  int key_bits() const { return key_bits_; }
  // n: quantized values per packed plaintext.
  int slots_per_plaintext() const { return slots_; }

  // ---- packing ---------------------------------------------------------------
  // Quantizes and packs `values`; the last plaintext is partially filled
  // when values.size() % n != 0.
  Result<std::vector<BigInt>> Pack(const std::vector<double>& values) const;
  // Packs pre-quantized slot values (each < 2^(r+b)).
  Result<std::vector<BigInt>> PackSlots(
      const std::vector<uint64_t>& slots) const;

  // ---- unpacking -------------------------------------------------------------
  // Extracts `count` slots from packed plaintexts (raw slot values).
  Result<std::vector<uint64_t>> UnpackSlots(const std::vector<BigInt>& packed,
                                            size_t count) const;
  // Unpacks and decodes an aggregate of `num_contributors` participants.
  Result<std::vector<double>> Unpack(const std::vector<BigInt>& packed,
                                     size_t count, int num_contributors) const;

  // ---- analytics (Eqs. 11-13) -------------------------------------------------
  // Ciphertexts without packing / ciphertexts with packing, for a batch of
  // `count` values (Eq. 11).
  double CompressionRatio(size_t count) const;
  // Fraction of the plaintext space carrying payload bits (Eq. 12).
  double PlaintextSpaceUtilization(size_t count) const;
  // The paper's upper bound k / (r + b) on both quantities.
  double TheoreticalCompressionRatio() const;

  // Plaintexts needed for `count` values.
  size_t PlaintextsFor(size_t count) const {
    return (count + slots_ - 1) / slots_;
  }

 private:
  BatchCompressor(Quantizer quantizer, int key_bits, int slots);

  Quantizer quantizer_;
  int key_bits_;
  int slots_;
};

}  // namespace flb::codec

#endif  // FLB_CODEC_BATCH_COMPRESSOR_H_
