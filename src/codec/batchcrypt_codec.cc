#include "src/codec/batchcrypt_codec.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace flb::codec {

using mpint::BigInt;

BatchCryptCodec::BatchCryptCodec(const BatchCryptConfig& config, int slots)
    : config_(config),
      slots_(slots),
      q_max_((uint64_t{1} << (config.value_bits - 1)) - 1) {}

Result<BatchCryptCodec> BatchCryptCodec::Create(
    const BatchCryptConfig& config) {
  if (!(config.alpha > 0.0) || !std::isfinite(config.alpha)) {
    return Status::InvalidArgument("BatchCryptCodec: bad alpha");
  }
  if (config.value_bits < 3 || config.value_bits > 52) {
    return Status::InvalidArgument(
        "BatchCryptCodec: value_bits must be in [3, 52]");
  }
  if (config.headroom_bits < 0 || config.headroom_bits > 8) {
    return Status::InvalidArgument(
        "BatchCryptCodec: headroom_bits must be in [0, 8]");
  }
  const int slot = config.value_bits + config.headroom_bits;
  if (slot > 62) {
    return Status::InvalidArgument("BatchCryptCodec: slot exceeds 62 bits");
  }
  // The two's-complement accumulation needs a few guard bits at the top of
  // the plaintext so p representations sum below n.
  const int slots = (config.key_bits - 9) / slot;
  if (slots < 1) {
    return Status::InvalidArgument(
        "BatchCryptCodec: slot width exceeds the plaintext space");
  }
  return BatchCryptCodec(config, slots);
}

Result<std::vector<BigInt>> BatchCryptCodec::Pack(
    const std::vector<double>& values) const {
  const int sb = slot_bits();
  const int width = slots_ * sb;  // two's-complement word width W
  std::vector<BigInt> out;
  out.reserve((values.size() + slots_ - 1) / slots_);

  BigInt acc;
  int filled = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    double m = values[i];
    if (!std::isfinite(m)) {
      return Status::InvalidArgument("BatchCryptCodec::Pack: non-finite");
    }
    m = std::clamp(m, -config_.alpha, config_.alpha);
    const int64_t q = std::llround(m / config_.alpha *
                                   static_cast<double>(q_max_));
    // Signed digit at slot `filled`, two's complement over the full W bits:
    // negative digits subtract (borrowing across slots), so big-integer
    // addition of packed words adds the signed values exactly.
    const int shift = filled * sb;
    if (q >= 0) {
      acc = BigInt::Add(acc, BigInt::ShiftLeft(BigInt(q), shift));
    } else {
      const BigInt mag = BigInt::ShiftLeft(BigInt(-q), shift);
      // acc - mag mod 2^W.
      BigInt wrap = BigInt::PowerOfTwo(width);
      acc = BigInt::Sub(BigInt::Add(acc, wrap), mag);
    }
    acc = BigInt::TruncateBits(acc, width);
    if (++filled == slots_ || i + 1 == values.size()) {
      out.push_back(std::move(acc));
      acc = BigInt();
      filled = 0;
    }
  }
  return out;
}

Result<std::vector<double>> BatchCryptCodec::Unpack(
    const std::vector<BigInt>& packed, size_t count, int contributors) const {
  if (count > packed.size() * static_cast<size_t>(slots_)) {
    return Status::InvalidArgument("BatchCryptCodec::Unpack: too few packed");
  }
  if (contributors < 1) {
    return Status::InvalidArgument("BatchCryptCodec::Unpack: contributors");
  }
  const int sb = slot_bits();
  const int width = slots_ * sb;
  const uint64_t slot_mask = (uint64_t{1} << sb) - 1;
  const uint64_t half = uint64_t{1} << (sb - 1);

  std::vector<double> out;
  out.reserve(count);
  for (size_t block = 0; block < packed.size(); ++block) {
    // Signed-digit decomposition from the least significant slot upward:
    // subtract each recovered digit and shift. Exact while every true slot
    // sum fits in sb-1 magnitude bits; a slot overflow propagates garbage
    // upward with no error indication (the studied defect).
    BigInt n = BigInt::TruncateBits(packed[block], width);
    const size_t in_block =
        std::min<size_t>(slots_, count - block * slots_);
    for (size_t j = 0; j < in_block; ++j) {
      const uint64_t u = n.LowU64() & slot_mask;
      int64_t digit;
      if (u < half) {
        digit = static_cast<int64_t>(u);
        n = BigInt::Sub(n, BigInt(u));
      } else {
        digit = static_cast<int64_t>(u) - (int64_t{1} << sb);
        n = BigInt::Add(n, BigInt(static_cast<uint64_t>(-digit)));
      }
      n = BigInt::ShiftRight(n, sb);
      out.push_back(static_cast<double>(digit) /
                    static_cast<double>(q_max_) * config_.alpha);
    }
  }
  return out;
}

}  // namespace flb::codec
