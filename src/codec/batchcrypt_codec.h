// BatchCrypt-style batch encoding (Zhang et al., ATC'20 — the paper's
// [70], discussed in §II).
//
// BatchCrypt also packs quantized gradients into one plaintext, but
// reserves a small FIXED headroom (two bits' worth of same-sign
// accumulation) per slot regardless of how many participants aggregate,
// relying on zero-centered gradients mostly cancelling. The paper's
// critique (§II): it "suffers from the overflow problem in some cases
// [64]" — when contributions share a sign (correlated data, bias
// gradients), slot sums exceed the fixed allowance and carry into the
// neighbouring slot, silently corrupting decoded values.
//
// FLBooster's Quantizer instead reserves b = ceil(log2 p) bits for p
// participants (Eq. 8), making same-sign accumulation overflow-free by
// construction. This codec exists to reproduce that §II claim
// experimentally (see codec tests and bench_batchcrypt_overflow): identical
// offset-binary slot encoding, the only difference being the headroom
// policy.

#ifndef FLB_CODEC_BATCHCRYPT_CODEC_H_
#define FLB_CODEC_BATCHCRYPT_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/mpint/bigint.h"

namespace flb::codec {

struct BatchCryptConfig {
  double alpha = 1.0;     // gradient bound: inputs clamp to [-alpha, alpha]
  int value_bits = 14;    // quantization precision per slot
  int headroom_bits = 2;  // BatchCrypt's fixed allowance (not log2(p)!)
  int key_bits = 1024;
};

class BatchCryptCodec {
 public:
  static Result<BatchCryptCodec> Create(const BatchCryptConfig& config);

  int slot_bits() const { return config_.value_bits + config_.headroom_bits; }
  int slots_per_plaintext() const { return slots_; }
  const BatchCryptConfig& config() const { return config_; }

  // Quantizes (offset-binary, like Eq. 6-7) and packs values.
  Result<std::vector<mpint::BigInt>> Pack(
      const std::vector<double>& values) const;
  // Unpacks an aggregate of `contributors` packed plaintexts added
  // slot-wise. NOTE: unlike FLBooster's Quantizer, overflow beyond the
  // fixed headroom is undetectable — decoded values are then silently
  // wrong (the failure mode under study).
  Result<std::vector<double>> Unpack(const std::vector<mpint::BigInt>& packed,
                                     size_t count, int contributors) const;

  // True iff aggregating `contributors` worst-case (same-sign, full-scale)
  // values is guaranteed overflow-free. For BatchCrypt this caps at
  // 2^headroom_bits, independent of the actual participant count.
  bool GuaranteesNoOverflow(int contributors) const {
    return contributors <= (1 << config_.headroom_bits);
  }

 private:
  BatchCryptCodec(const BatchCryptConfig& config, int slots);

  BatchCryptConfig config_;
  int slots_;
  uint64_t q_max_;  // 2^value_bits - 1
};

}  // namespace flb::codec

#endif  // FLB_CODEC_BATCHCRYPT_CODEC_H_
