#include "src/codec/fixed_point.h"

#include <cmath>

namespace flb::codec {

FixedPointCodec::FixedPointCodec(BigInt n, int frac_bits)
    : n_(std::move(n)),
      half_n_(mpint::BigInt::ShiftRight(n_, 1)),
      frac_bits_(frac_bits),
      scale_(std::ldexp(1.0, frac_bits)) {}

Result<FixedPointCodec> FixedPointCodec::Create(const BigInt& modulus,
                                                int frac_bits) {
  if (frac_bits < 8 || frac_bits > 60) {
    return Status::InvalidArgument("FixedPointCodec: frac_bits not in [8,60]");
  }
  if (modulus.BitLength() < 3 * frac_bits) {
    // One multiplication doubles the scale; require room for at least one.
    return Status::InvalidArgument(
        "FixedPointCodec: modulus too small for the fractional precision");
  }
  return FixedPointCodec(modulus, frac_bits);
}

Result<BigInt> FixedPointCodec::Encode(double v) const {
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("FixedPointCodec::Encode: non-finite");
  }
  const double scaled = v * scale_;
  const double magnitude = std::fabs(scaled);
  // Scaled magnitudes must fit llround's range (and, far more restrictively
  // in practice, stay well under n/2). Clipped gradients never get near
  // this bound.
  if (magnitude >= std::ldexp(1.0, 62)) {
    return Status::OutOfRange("FixedPointCodec::Encode: |v|*2^f too large");
  }
  const uint64_t mag = static_cast<uint64_t>(std::llround(magnitude));
  BigInt x(mag);
  if (x >= half_n_) {
    return Status::OutOfRange("FixedPointCodec::Encode: value reaches n/2");
  }
  if (scaled < 0 && mag != 0) x = BigInt::Sub(n_, x);
  return x;
}

Result<double> FixedPointCodec::Decode(const BigInt& x, int scale_muls) const {
  if (x >= n_) {
    return Status::OutOfRange("FixedPointCodec::Decode: residue >= n");
  }
  const double total_scale = std::ldexp(1.0, frac_bits_ * (1 + scale_muls));
  if (x > half_n_) {
    // Negative: -(n - x) / scale.
    const BigInt mag = BigInt::Sub(n_, x);
    if (mag.BitLength() > 63) {
      return Status::OutOfRange("FixedPointCodec::Decode: magnitude overflow");
    }
    return -static_cast<double>(mag.LowU64()) / total_scale;
  }
  if (x.BitLength() > 63) {
    // Large positive magnitudes lose integer precision; approximate via the
    // top bits. Gradients never get here in practice.
    double v = 0.0;
    for (size_t i = x.WordCount(); i-- > 0;) {
      v = v * 4294967296.0 + x.word(i);
    }
    return v / total_scale;
  }
  return static_cast<double>(x.LowU64()) / total_scale;
}

Result<BigInt> FixedPointCodec::EncodeScalar(double w) const {
  return Encode(w);
}

}  // namespace flb::codec
