// Signed fixed-point encoding over Z_n for per-value homomorphic math.
//
// The packed Quantizer (quantizer.h) is the transport encoding: compact,
// unsigned, slot-aligned. Hetero protocols additionally need per-value
// ciphertexts they can scalar-multiply by signed weights (e.g. the
// SecureBoost histogram or the Hetero-NN interactive layer). For those legs
// FLBooster encodes
//
//   Enc(v)  = round(v * 2^f) mod n      (negatives wrap to n - |.|)
//
// and tracks the accumulated scale 2^(f * (1+muls)) explicitly. Unlike the
// (significand, plaintext-exponent) encoding the paper criticizes (§IV-B),
// the scale here is a *public protocol constant* (f is fixed), so nothing
// value-dependent leaks.
//
// Decoding interprets residues above n/2 as negative. Values must satisfy
// |v| * 2^f * ... << n/2, which the callers guarantee by construction
// (gradients are clipped, key sizes are >= 1024 bits in deployment).

#ifndef FLB_CODEC_FIXED_POINT_H_
#define FLB_CODEC_FIXED_POINT_H_

#include "src/common/result.h"
#include "src/mpint/bigint.h"

namespace flb::codec {

using mpint::BigInt;

class FixedPointCodec {
 public:
  // frac_bits f in [8, 60]; modulus n is the Paillier plaintext modulus.
  static Result<FixedPointCodec> Create(const BigInt& modulus, int frac_bits);

  int frac_bits() const { return frac_bits_; }
  const BigInt& modulus() const { return n_; }

  // v -> round(v * 2^f) mod n. Error if the scaled magnitude reaches n/2
  // (sign would become ambiguous).
  Result<BigInt> Encode(double v) const;
  // Inverse; `scale_muls` is how many fixed-point multiplications the value
  // has accumulated (each multiplies the scale by 2^f).
  Result<double> Decode(const BigInt& x, int scale_muls = 0) const;

  // Signed scalar as a Paillier exponent: w -> round(w * 2^f) mod n, so
  // ScalarMul(E(m), EncodeScalar(w)) == E(m * w_fixed mod n).
  Result<BigInt> EncodeScalar(double w) const;

  // Threshold n/2 used for sign interpretation.
  const BigInt& half_modulus() const { return half_n_; }

 private:
  FixedPointCodec(BigInt n, int frac_bits);

  BigInt n_;
  BigInt half_n_;
  int frac_bits_;
  double scale_;  // 2^f
};

}  // namespace flb::codec

#endif  // FLB_CODEC_FIXED_POINT_H_
