#include "src/codec/quantizer.h"

#include <cmath>

#include "src/common/check.h"

namespace flb::codec {

namespace {

int CeilLog2(int p) {
  FLB_CHECK(p >= 1);
  int bits = 0;
  int v = p - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;  // ceil(log2(p)), 0 for p == 1
}

}  // namespace

Result<Quantizer> Quantizer::Create(const QuantizerConfig& config) {
  if (!(config.alpha > 0.0) || !std::isfinite(config.alpha)) {
    return Status::InvalidArgument("Quantizer: alpha must be finite and > 0");
  }
  if (config.r_bits < 2 || config.r_bits > 52) {
    return Status::InvalidArgument("Quantizer: r_bits must be in [2, 52]");
  }
  if (config.participants < 1) {
    return Status::InvalidArgument("Quantizer: participants must be >= 1");
  }
  Quantizer q(config);
  if (q.slot_bits() > 62) {
    return Status::InvalidArgument(
        "Quantizer: slot width r + ceil(log2 p) must be <= 62 bits");
  }
  return q;
}

Quantizer::Quantizer(const QuantizerConfig& config)
    : config_(config),
      overflow_bits_(CeilLog2(config.participants)),
      q_max_((uint64_t{1} << config.r_bits) - 1) {}

double Quantizer::MaxAbsoluteError() const {
  return config_.alpha / static_cast<double>(q_max_);
}

Result<uint64_t> Quantizer::Encode(double m) const {
  if (!std::isfinite(m)) {
    return Status::InvalidArgument("Quantizer::Encode: non-finite input");
  }
  if (m < -config_.alpha || m > config_.alpha) {
    if (!config_.clamp) {
      return Status::OutOfRange("Quantizer::Encode: |m| exceeds alpha");
    }
    m = m < 0 ? -config_.alpha : config_.alpha;
  }
  const double e = m + config_.alpha;  // Eq. 6
  const double scaled =
      e / (2.0 * config_.alpha) * static_cast<double>(q_max_);  // Eq. 7
  uint64_t q = static_cast<uint64_t>(std::llround(scaled));
  if (q > q_max_) q = q_max_;  // guard the round-up at m == +alpha
  return q;
}

double Quantizer::Decode(uint64_t q) const {
  return static_cast<double>(q) / static_cast<double>(q_max_) * 2.0 *
             config_.alpha -
         config_.alpha;
}

Result<double> Quantizer::DecodeAggregate(uint64_t slot,
                                          int num_contributors) const {
  if (num_contributors < 1 || num_contributors > config_.participants) {
    return Status::OutOfRange(
        "DecodeAggregate: contributor count outside configured headroom");
  }
  if (slot > static_cast<uint64_t>(num_contributors) * q_max_) {
    return Status::ArithmeticError(
        "DecodeAggregate: slot value exceeds the contributor bound "
        "(overflow or corruption)");
  }
  return static_cast<double>(slot) / static_cast<double>(q_max_) * 2.0 *
             config_.alpha -
         num_contributors * config_.alpha;
}

Result<std::vector<uint64_t>> Quantizer::EncodeBatch(
    const std::vector<double>& ms) const {
  std::vector<uint64_t> out;
  out.reserve(ms.size());
  for (double m : ms) {
    FLB_ASSIGN_OR_RETURN(uint64_t q, Encode(m));
    out.push_back(q);
  }
  return out;
}

Result<std::vector<double>> Quantizer::DecodeAggregateBatch(
    const std::vector<uint64_t>& slots, int num_contributors) const {
  std::vector<double> out;
  out.reserve(slots.size());
  for (uint64_t slot : slots) {
    FLB_ASSIGN_OR_RETURN(double m, DecodeAggregate(slot, num_contributors));
    out.push_back(m);
  }
  return out;
}

}  // namespace flb::codec
