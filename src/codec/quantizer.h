// Encoding-Quantization (paper §IV-B).
//
// Paillier only encrypts unsigned integers, so signed float gradients are
// mapped to fixed-point before encryption:
//
//   e = m + alpha                      (Eq. 6: shift [-a, a] to [0, 2a])
//   q = round(e / (2a) * (2^r - 1))    (Eq. 7: amplify to r bits)
//   z = [b zero bits][q]               (Eq. 8: headroom for aggregation)
//
// with b = ceil(log2 p) for p participants, so p slot-wise additions can
// never overflow the b+r-bit slot. (Eq. 7 in the paper omits the 1/(2a)
// normalization because it assumes 2a <= 1; the normalized form here is
// equivalent under that assumption and also correct for larger bounds.)
//
// Crucially — and unlike the (significand, plaintext-exponent) encodings the
// paper criticizes — the whole value is encrypted; nothing about the
// gradient's scale leaks.
//
// Decoding an aggregate of k participants inverts the affine map:
//   m_sum = z * 2a / (2^r - 1) - k*a
// (each contributor added one +alpha shift, so k shifts are subtracted).

#ifndef FLB_CODEC_QUANTIZER_H_
#define FLB_CODEC_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace flb::codec {

struct QuantizerConfig {
  // Gradient bound: inputs must lie in [-alpha, alpha]. Typically < 1 after
  // gradient clipping (paper: "usually smaller than 1").
  double alpha = 1.0;
  // Quantization bits r. The paper uses r + b = 32 with 2 overflow bits.
  int r_bits = 30;
  // Number of participants p; determines b = ceil(log2 p) overflow bits.
  int participants = 4;
  // When true, out-of-bound inputs are clamped to [-alpha, alpha] (standard
  // gradient clipping); when false they are an error.
  bool clamp = true;
};

class Quantizer {
 public:
  // Validates the config: r in [2, 52] (the double mantissa bounds useful
  // precision and slots must fit in 64 bits), alpha > 0, participants >= 1.
  static Result<Quantizer> Create(const QuantizerConfig& config);

  int r_bits() const { return config_.r_bits; }
  // b = ceil(log2 p): headroom bits reserved above the value.
  int overflow_bits() const { return overflow_bits_; }
  // Slot width r + b in bits.
  int slot_bits() const { return config_.r_bits + overflow_bits_; }
  double alpha() const { return config_.alpha; }
  int participants() const { return config_.participants; }

  // Worst-case absolute error of one encode/decode round trip:
  // half a quantization step, 2a / (2^r - 1) / 2.
  double MaxAbsoluteError() const;

  // m in [-alpha, alpha] -> q in [0, 2^r - 1].
  Result<uint64_t> Encode(double m) const;
  // Inverse of Encode for a single (non-aggregated) value.
  double Decode(uint64_t q) const;
  // Decodes a slot that accumulated `num_contributors` encoded values,
  // returning their plaintext sum. num_contributors must be in
  // [1, participants] — beyond that the slot may have overflowed.
  Result<double> DecodeAggregate(uint64_t slot, int num_contributors) const;

  // Batched forms.
  Result<std::vector<uint64_t>> EncodeBatch(
      const std::vector<double>& ms) const;
  Result<std::vector<double>> DecodeAggregateBatch(
      const std::vector<uint64_t>& slots, int num_contributors) const;

 private:
  explicit Quantizer(const QuantizerConfig& config);

  QuantizerConfig config_;
  int overflow_bits_ = 0;
  uint64_t q_max_ = 0;  // 2^r - 1
};

}  // namespace flb::codec

#endif  // FLB_CODEC_QUANTIZER_H_
