// Clang thread-safety annotation macros (no-ops on other compilers).
//
// The platform's shared state — the host thread pool, the obs singletons,
// the simulated network and its reliability layer, the gpusim device/stream
// model — is locked with common::Mutex (see mutex.h) and annotated with
// these macros so `clang -Werror=thread-safety` proves at compile time that
// every guarded member is only touched with its mutex held. GCC and other
// compilers see empty macros; the annotations cost nothing at runtime.
//
// Conventions (enforced by tools/flb_lint rule FLB004):
//  * every mutex member must be referenced by at least one FLB_* annotation
//    in its file (typically FLB_GUARDED_BY on the state it protects);
//  * internal helpers that assume the lock is held are named *Locked and
//    annotated FLB_REQUIRES(mu_);
//  * accessors that intentionally bypass the analysis (sequential-only
//    inspection paths) carry FLB_NO_THREAD_SAFETY_ANALYSIS plus a comment
//    saying why that is safe.

#ifndef FLB_COMMON_ANNOTATIONS_H_
#define FLB_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#if defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FLB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#endif

#ifndef FLB_THREAD_ANNOTATION
#define FLB_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

// Type annotations: a lockable type and an RAII scope that holds one.
#define FLB_CAPABILITY(x) FLB_THREAD_ANNOTATION(capability(x))
#define FLB_SCOPED_CAPABILITY FLB_THREAD_ANNOTATION(scoped_lockable)

// Data annotations: which mutex protects a member.
#define FLB_GUARDED_BY(x) FLB_THREAD_ANNOTATION(guarded_by(x))
#define FLB_PT_GUARDED_BY(x) FLB_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotations: lock requirements and effects.
#define FLB_REQUIRES(...) \
  FLB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FLB_ACQUIRE(...) \
  FLB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FLB_RELEASE(...) \
  FLB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FLB_TRY_ACQUIRE(...) \
  FLB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FLB_EXCLUDES(...) FLB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Lock-ordering documentation (checked under -Wthread-safety-beta).
#define FLB_ACQUIRED_BEFORE(...) \
  FLB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FLB_ACQUIRED_AFTER(...) \
  FLB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Escape hatch for functions the analysis cannot model. Every use must
// carry a comment justifying why the unlocked access is safe.
#define FLB_NO_THREAD_SAFETY_ANALYSIS \
  FLB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // FLB_COMMON_ANNOTATIONS_H_
