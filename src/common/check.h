// Invariant-checking macros. FLB_CHECK is always on (cheap conditions only);
// FLB_DCHECK compiles out in NDEBUG builds. Failures print the condition and
// abort — these guard programming errors, not recoverable conditions (use
// Status for those).

#ifndef FLB_COMMON_CHECK_H_
#define FLB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace flb::internal {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "FLB_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace flb::internal

#define FLB_CHECK(cond, ...)                                    \
  do {                                                          \
    if (!(cond)) {                                              \
      ::flb::internal::CheckFailed(#cond, __FILE__, __LINE__,   \
                                   ::std::string{__VA_ARGS__}); \
    }                                                           \
  } while (false)

#ifdef NDEBUG
#define FLB_DCHECK(cond, ...) \
  do {                        \
  } while (false)
#else
#define FLB_DCHECK(cond, ...) FLB_CHECK(cond, ##__VA_ARGS__)
#endif

#endif  // FLB_COMMON_CHECK_H_
