// Deadline: a simulated-time budget threaded through the platform.
//
// Every blocking wait and retry loop in FLBooster is charged to the
// SimClock, so "how long is this run allowed to take" is a simulated-time
// question. A Deadline pins an absolute expiry on a SimClock; components
// that can stall (Network sends, ReliableChannel retry loops, HeService
// batch calls, trainer round loops) consult it and surface a typed
// kDeadlineExceeded instead of spinning when the budget is gone.
//
// A default-constructed Deadline is infinite and every check is a cheap
// no-op, so the healthy path (no deadline configured) keeps byte-for-byte
// the legacy accounting. Deadline is a value type over a non-owned clock:
// Platform::Run owns one per run and hands out const pointers.

#ifndef FLB_COMMON_DEADLINE_H_
#define FLB_COMMON_DEADLINE_H_

#include <limits>
#include <string>

#include "src/common/result.h"
#include "src/common/sim_clock.h"

namespace flb::common {

class Deadline {
 public:
  // Infinite: never expires, remaining() is +inf.
  Deadline() = default;

  // Expires `budget_sec` of simulated time after the clock's current
  // position. A null clock or non-positive budget yields an infinite
  // deadline (0 = "unbounded" in every config knob).
  static Deadline After(const SimClock* clock, double budget_sec) {
    Deadline d;
    if (clock != nullptr && budget_sec > 0) {
      d.clock_ = clock;
      d.expires_at_sec_ = clock->Now() + budget_sec;
    }
    return d;
  }

  bool infinite() const { return clock_ == nullptr; }

  // Absolute simulated-time expiry (+inf when infinite).
  double expires_at() const { return expires_at_sec_; }

  // Simulated seconds left; +inf when infinite, clamped at 0 once past.
  double remaining() const {
    if (infinite()) return std::numeric_limits<double>::infinity();
    const double left = expires_at_sec_ - clock_->Now();
    return left > 0 ? left : 0.0;
  }

  bool expired() const { return !infinite() && remaining() <= 0; }

  // OK while the budget lasts; typed kDeadlineExceeded once it is spent.
  // `what` names the checkpoint for the error message.
  Status Check(const char* what) const {
    if (!expired()) return Status::OK();
    return Status::DeadlineExceeded(std::string(what) +
                                    ": run deadline exceeded at sim t=" +
                                    std::to_string(clock_->Now()) + "s");
  }

 private:
  const SimClock* clock_ = nullptr;
  double expires_at_sec_ = std::numeric_limits<double>::infinity();
};

}  // namespace flb::common

#endif  // FLB_COMMON_DEADLINE_H_
