#include "src/common/env.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "src/common/annotations.h"
#include "src/common/mutex.h"

namespace flb::common {

namespace {

// One warning per (variable, value, problem) for the process lifetime:
// knobs are read on every run, and repeating the same warning for every
// Platform::Run would drown the bench output.
struct WarnState {
  Mutex mu;
  std::set<std::string> seen FLB_GUARDED_BY(mu);
  std::atomic<uint64_t> count{0};
};

WarnState& warn_state() {
  static WarnState* state = new WarnState();
  return *state;
}

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const char* Env::Raw(const char* name) { return std::getenv(name); }

std::string Env::Str(const char* name, const std::string& fallback) {
  const char* v = Raw(name);
  return v != nullptr ? std::string(v) : fallback;
}

bool Env::Flag(const char* name, bool fallback) {
  const char* v = Raw(name);
  if (v == nullptr) return fallback;
  const std::string lowered = AsciiLower(v);
  return !(lowered.empty() || lowered == "0" || lowered == "false" ||
           lowered == "off" || lowered == "no");
}

bool Env::ParseInt(const std::string& value, int* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (parsed < std::numeric_limits<int>::min() ||
      parsed > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool Env::ParseDouble(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

int Env::Int(const char* name, int fallback, int min, int max) {
  const char* v = Raw(name);
  if (v == nullptr) return fallback;
  int parsed = 0;
  if (!ParseInt(v, &parsed)) {
    WarnOnce(name, v, "is not an integer; using " + std::to_string(fallback));
    return fallback;
  }
  if (parsed < min) {
    WarnOnce(name, v, "is below " + std::to_string(min) + "; clamping");
    return min;
  }
  if (parsed > max) {
    WarnOnce(name, v, "is above " + std::to_string(max) + "; clamping");
    return max;
  }
  return parsed;
}

double Env::Double(const char* name, double fallback, double min, double max) {
  const char* v = Raw(name);
  if (v == nullptr) return fallback;
  double parsed = 0;
  if (!ParseDouble(v, &parsed)) {
    WarnOnce(name, v, "is not a number; using fallback");
    return fallback;
  }
  if (parsed < min) {
    WarnOnce(name, v, "is below the valid range; clamping");
    return min;
  }
  if (parsed > max) {
    WarnOnce(name, v, "is above the valid range; clamping");
    return max;
  }
  return parsed;
}

uint64_t Env::warnings() {
  return warn_state().count.load(std::memory_order_relaxed);
}

void Env::WarnOnce(const char* name, const std::string& value,
                   const std::string& what) {
  WarnState& state = warn_state();
  const std::string key = std::string(name) + "=" + value + "|" + what;
  {
    MutexLock lock(state.mu);
    if (!state.seen.insert(key).second) return;
  }
  state.count.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "[env] WARN: %s='%s' %s\n", name, value.c_str(),
               what.c_str());
}

}  // namespace flb::common
