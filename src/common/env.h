// Typed environment-variable access for every FLB_* knob.
//
// Before this helper, each knob parsed its own getenv: a bad value like
// FLB_HOST_THREADS=abc silently fell back (or worse, became 0) with no
// trace of the typo. Env centralizes the parsing discipline:
//
//  * Typed getters with a fallback: Str / Flag / Int / Double.
//  * Range validation: out-of-range numerics are clamped into [min, max].
//  * One warning line to stderr per (variable, value) for malformed or
//    out-of-range input, so a typo'd knob is visible instead of silent.
//
// Reading the environment is deterministic for a fixed environment, so
// these calls are fine on simulated paths (flb_lint FLB001/FLB002 are
// about wall clocks and ambient entropy, not configuration).

#ifndef FLB_COMMON_ENV_H_
#define FLB_COMMON_ENV_H_

#include <cstdint>
#include <limits>
#include <string>

namespace flb::common {

class Env {
 public:
  // Raw getenv: nullptr when unset. Prefer the typed getters below.
  static const char* Raw(const char* name);
  static bool Has(const char* name) { return Raw(name) != nullptr; }

  // String value, or `fallback` when unset. Empty values are returned
  // as-is (an explicitly empty FLB_FAULT_PLAN means "no plan").
  static std::string Str(const char* name, const std::string& fallback = "");

  // Boolean flag. Unset -> fallback; "0" / "false" / "off" / "no" / ""
  // (case-insensitive) -> false; any other value -> true. This matches the
  // historical "set means on" convention (FLB_SMOKE=1, FLB_TRACE=1) while
  // making FLB_X=0 mean off instead of on.
  static bool Flag(const char* name, bool fallback = false);

  // Integer with range validation. Unset -> fallback. Malformed -> warn
  // once, fallback. Out of [min, max] -> warn once, clamp.
  static int Int(const char* name, int fallback,
                 int min = std::numeric_limits<int>::min(),
                 int max = std::numeric_limits<int>::max());

  // Double with range validation; same rules as Int.
  static double Double(const char* name, double fallback,
                       double min = -std::numeric_limits<double>::infinity(),
                       double max = std::numeric_limits<double>::infinity());

  // Test hooks: parse a value the way Int/Double would, without touching
  // the environment. Returns false on malformed input.
  static bool ParseInt(const std::string& value, int* out);
  static bool ParseDouble(const std::string& value, double* out);

  // Number of warnings emitted so far (tests assert malformed values are
  // reported exactly once).
  static uint64_t warnings();

 private:
  static void WarnOnce(const char* name, const std::string& value,
                       const std::string& what);
};

}  // namespace flb::common

#endif  // FLB_COMMON_ENV_H_
