// Mutex / MutexLock: std::mutex with Clang thread-safety capability
// annotations (see annotations.h).
//
// libstdc++'s std::mutex is not annotated as a capability, so
// `-Wthread-safety` cannot reason about it; this wrapper re-exports the
// BasicLockable surface with the capability attributes attached, in the
// Abseil idiom. All mutex-holding classes in the platform use these types;
// tools/flb_lint rejects raw std::mutex members.
//
// Condition variables: use common::CondVar (std::condition_variable_any)
// with a MutexLock. The wait predicate must be checked in a plain while
// loop in the annotated function body — not a lambda — so the analysis sees
// the guarded reads under the held capability:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);

#ifndef FLB_COMMON_MUTEX_H_
#define FLB_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/annotations.h"

namespace flb::common {

// Wall-clock lock-contention accounting for the host profiler plane
// (src/obs/host_profiler). Disabled by default: the only cost on every
// Mutex::lock is a try_lock fast path plus one relaxed load on the
// *contended* path. When enabled, contended acquires time their wait on the
// wall clock and record it into lock-free atomics — nothing here ever
// touches the SimClock or charged accounting, and nothing here takes a
// lock, so the recorder is safe to run from inside any component's critical
// section (including MetricsRegistry's own).
struct MutexContention {
  // Log2-nanosecond wait buckets: bucket i counts waits with
  // floor(log2(ns)) == i, clamped into [0, kNumBuckets). Bucket i therefore
  // has upper bound 2^(i+1) ns; the last bucket absorbs the overflow
  // (waits >= ~33 ms).
  static constexpr int kNumBuckets = 25;

  static inline std::atomic<bool> enabled{false};
  static inline std::atomic<uint64_t> contended_acquires{0};
  static inline std::atomic<uint64_t> total_wait_ns{0};
  static inline std::atomic<uint64_t> buckets[kNumBuckets] = {};

  static void Record(uint64_t wait_ns) {
    contended_acquires.fetch_add(1, std::memory_order_relaxed);
    total_wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
    int b = 0;
    while (b + 1 < kNumBuckets && (wait_ns >> (b + 1)) != 0) ++b;
    buckets[b].fetch_add(1, std::memory_order_relaxed);
  }

  static void Reset() {
    contended_acquires.store(0, std::memory_order_relaxed);
    total_wait_ns.store(0, std::memory_order_relaxed);
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }
};

class FLB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLB_ACQUIRE() {
    if (mu_.try_lock()) return;
    if (!MutexContention::enabled.load(std::memory_order_relaxed)) {
      mu_.lock();
      return;
    }
    // Wall-clock profiling of the *wait*, never of simulated time; the
    // sample feeds only the observability plane (flb.host.lock_* metrics).
    // flb-lint: allow-next-line(FLB001) lock-contention wall profiling, observability-only
    const auto start = std::chrono::steady_clock::now();
    mu_.lock();
    // flb-lint: allow-next-line(FLB001) lock-contention wall profiling, observability-only
    const auto wait = std::chrono::steady_clock::now() - start;
    MutexContention::Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count()));
  }
  void unlock() FLB_RELEASE() { mu_.unlock(); }
  bool try_lock() FLB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // flb-lint: allow-next-line(FLB004) the capability wrapper's backing lock
  std::mutex mu_;
};

// RAII lock scope over a Mutex (the std::lock_guard of this codebase).
class FLB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FLB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for CondVar::wait, which unlocks and relocks
  // around the block. The capability is logically held across the wait
  // (the waiter re-checks its predicate under the lock), so these are
  // deliberately invisible to the analysis.
  void lock() FLB_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() FLB_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

// Condition variable usable with MutexLock (any BasicLockable).
using CondVar = std::condition_variable_any;

}  // namespace flb::common

#endif  // FLB_COMMON_MUTEX_H_
