// Mutex / MutexLock: std::mutex with Clang thread-safety capability
// annotations (see annotations.h).
//
// libstdc++'s std::mutex is not annotated as a capability, so
// `-Wthread-safety` cannot reason about it; this wrapper re-exports the
// BasicLockable surface with the capability attributes attached, in the
// Abseil idiom. All mutex-holding classes in the platform use these types;
// tools/flb_lint rejects raw std::mutex members.
//
// Condition variables: use common::CondVar (std::condition_variable_any)
// with a MutexLock. The wait predicate must be checked in a plain while
// loop in the annotated function body — not a lambda — so the analysis sees
// the guarded reads under the held capability:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);

#ifndef FLB_COMMON_MUTEX_H_
#define FLB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/annotations.h"

namespace flb::common {

class FLB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLB_ACQUIRE() { mu_.lock(); }
  void unlock() FLB_RELEASE() { mu_.unlock(); }
  bool try_lock() FLB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // flb-lint: allow-next-line(FLB004) the capability wrapper's backing lock
  std::mutex mu_;
};

// RAII lock scope over a Mutex (the std::lock_guard of this codebase).
class FLB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FLB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for CondVar::wait, which unlocks and relocks
  // around the block. The capability is logically held across the wait
  // (the waiter re-checks its predicate under the lock), so these are
  // deliberately invisible to the analysis.
  void lock() FLB_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() FLB_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

// Condition variable usable with MutexLock (any BasicLockable).
using CondVar = std::condition_variable_any;

}  // namespace flb::common

#endif  // FLB_COMMON_MUTEX_H_
