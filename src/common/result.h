// Result<T>: a value-or-Status holder, the Arrow idiom for fallible
// value-returning functions.
//
//   Result<PaillierKeyPair> KeyGen(int bits);
//   ...
//   FLB_ASSIGN_OR_RETURN(auto keys, KeyGen(2048));

#ifndef FLB_COMMON_RESULT_H_
#define FLB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/status.h"

namespace flb {

// [[nodiscard]]: dropping a Result silently drops both the value and the
// error; see the matching note on Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from a non-OK Status keeps call
  // sites terse: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FLB_CHECK(!status_.ok(), "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Accessing the value of a failed Result is a programming error.
  const T& value() const& {
    FLB_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T& value() & {
    FLB_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    FLB_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Token-pasting helpers for unique temporary names inside the macro.
#define FLB_CONCAT_IMPL(a, b) a##b
#define FLB_CONCAT(a, b) FLB_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
// move-assigns the value into `lhs` (which may be a declaration).
#define FLB_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto FLB_CONCAT(_flb_result_, __LINE__) = (rexpr);            \
  if (!FLB_CONCAT(_flb_result_, __LINE__).ok())                 \
    return FLB_CONCAT(_flb_result_, __LINE__).status();         \
  lhs = std::move(FLB_CONCAT(_flb_result_, __LINE__)).value()

}  // namespace flb

#endif  // FLB_COMMON_RESULT_H_
