#include "src/common/rng.h"

#include <cmath>

namespace flb {

namespace {

// splitmix64: expands a 64-bit seed into the 256-bit xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

std::vector<uint32_t> Rng::NextWords(size_t n) {
  std::vector<uint32_t> out(n);
  for (size_t i = 0; i + 1 < n; i += 2) {
    const uint64_t r = NextU64();
    out[i] = static_cast<uint32_t>(r);
    out[i + 1] = static_cast<uint32_t>(r >> 32);
  }
  if (n % 2 == 1) out[n - 1] = NextU32();
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::ForStream(uint64_t seed, uint64_t stream) {
  // Mix the pair through one splitmix step so that nearby stream indices
  // land far apart in seed space; the Rng constructor splitmixes again to
  // fill the 256-bit state.
  uint64_t x = seed ^ (stream + 1) * 0xD1342543DE82EF95ULL;
  return Rng(SplitMix64(x));
}

}  // namespace flb
