// Deterministic pseudo-random number generation.
//
// All randomness in FLBooster flows through Rng so that datasets, key
// generation in tests, and benchmark workloads are reproducible. The core
// generator is xoshiro256**, which is fast, has a 256-bit state, and passes
// BigCrush. Cryptographic key generation in production would use an OS
// CSPRNG; for this reproduction determinism is more valuable (see DESIGN.md)
// and the Paillier/RSA math is unaffected by the entropy source.

#ifndef FLB_COMMON_RNG_H_
#define FLB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform over [0, 2^64).
  uint64_t NextU64();
  // Uniform over [0, 2^32).
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }
  // Uniform over [0, bound) for bound > 0, rejection-sampled (unbiased).
  uint64_t NextBelow(uint64_t bound);
  // Uniform double in [0, 1).
  double NextDouble();
  // Standard normal via Box–Muller.
  double NextGaussian();
  // true with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // `n` uniform 32-bit words (used for multi-precision random integers).
  std::vector<uint32_t> NextWords(size_t n);

  // Derives an independent child generator (e.g. one per simulated GPU
  // thread, as the paper assigns one generator per thread in a warp).
  Rng Fork();

  // Independent generator for stream `stream` of a seed, stateless in the
  // parent: ForStream(seed, i) depends only on (seed, i). Parallel batch
  // bodies draw one seed from the caller's Rng and give element i the
  // ForStream(seed, i) generator, making the randomness — and therefore the
  // results — independent of work partitioning and steal order.
  static Rng ForStream(uint64_t seed, uint64_t stream);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace flb

#endif  // FLB_COMMON_RNG_H_
