#include "src/common/sim_clock.h"

#include "src/common/check.h"

namespace flb {

std::string CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kCpuHe:
      return "cpu_he";
    case CostKind::kGpuKernel:
      return "gpu_kernel";
    case CostKind::kPcieTransfer:
      return "pcie_transfer";
    case CostKind::kNetwork:
      return "network";
    case CostKind::kEncoding:
      return "encoding";
    case CostKind::kModelCompute:
      return "model_compute";
    case CostKind::kOther:
      return "other";
  }
  return "unknown";
}

void SimClock::Charge(CostKind kind, double seconds) {
  FLB_CHECK(seconds >= 0.0, "negative simulated-time charge");
  total_ += seconds;
  by_kind_[kind] += seconds;
}

double SimClock::Elapsed(CostKind kind) const {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0.0 : it->second;
}

double SimClock::HeSeconds() const {
  return Elapsed(CostKind::kCpuHe) + Elapsed(CostKind::kGpuKernel) +
         Elapsed(CostKind::kPcieTransfer);
}

double SimClock::OtherSeconds() const {
  return total_ - HeSeconds() - CommSeconds();
}

void SimClock::Reset() {
  total_ = 0.0;
  by_kind_.clear();
}

}  // namespace flb
