// SimClock: the simulated-time backbone of the reproduction.
//
// The paper's measurements (Tables III–VI, Figs. 1, 6, 8) are wall-clock
// times on a 4-server GPU testbed. This container has one CPU core and no
// GPU, so FLBooster accounts elapsed time on a simulated clock instead:
// every component (CPU HE op, GPU kernel, PCIe copy, network transfer,
// plain model math) charges its modeled duration to a labelled category.
// Benches then report per-category and total simulated seconds, which is
// exactly the decomposition the paper reports.
//
// The clock is purely additive — FLBooster's in-process "parties" execute
// sequentially, and phases that the real system would overlap are modeled
// by the pipeline in src/core (which charges max() of overlapped stages).

#ifndef FLB_COMMON_SIM_CLOCK_H_
#define FLB_COMMON_SIM_CLOCK_H_

#include <map>
#include <string>

namespace flb {

// Time-cost categories mirroring the paper's component breakdown (Table VI).
enum class CostKind : int {
  kCpuHe = 0,       // HE ops executed on the CPU (FATE path)
  kGpuKernel = 1,   // HE ops executed by simulated GPU kernels
  kPcieTransfer = 2,  // host<->device copies
  kNetwork = 3,     // client<->server communication
  kEncoding = 4,    // encoding/quantization/packing (BC module)
  kModelCompute = 5,  // plain ML math (gradients, tree building, ...)
  kOther = 6,
};

std::string CostKindName(CostKind kind);

class SimClock {
 public:
  // Advances the clock by `seconds` attributed to `kind`. Negative charges
  // are a programming error.
  void Charge(CostKind kind, double seconds);

  // Total simulated seconds since construction / last Reset.
  double Now() const { return total_; }
  // Simulated seconds attributed to one category.
  double Elapsed(CostKind kind) const;
  // "HE operations" in the paper's sense: CPU HE + GPU kernels + PCIe.
  double HeSeconds() const;
  // Communication seconds.
  double CommSeconds() const { return Elapsed(CostKind::kNetwork); }
  // Everything that is neither HE nor communication.
  double OtherSeconds() const;

  void Reset();

  // Per-category map (for reports).
  const std::map<CostKind, double>& breakdown() const { return by_kind_; }

 private:
  double total_ = 0.0;
  std::map<CostKind, double> by_kind_;
};

}  // namespace flb

#endif  // FLB_COMMON_SIM_CLOCK_H_
