#include "src/common/status.h"

namespace flb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kArithmeticError:
      return "ArithmeticError";
    case StatusCode::kCryptoError:
      return "CryptoError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace flb
