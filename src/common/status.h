// Status: error propagation without exceptions, in the RocksDB/Arrow idiom.
//
// Every fallible public API in FLBooster returns either a Status or a
// Result<T> (see result.h). Statuses carry a coarse machine-readable code
// plus a human-readable message. Construction of non-OK statuses is via the
// named factory functions (Status::InvalidArgument(...) etc.).

#ifndef FLB_COMMON_STATUS_H_
#define FLB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace flb {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kInternal = 7,
  kNotSupported = 8,
  kArithmeticError = 9,
  kCryptoError = 10,
  kIoError = 11,
  // Transport/reliability codes (gRPC-style): a deadline budget ran out, a
  // peer is (possibly transiently) unreachable, or data failed an integrity
  // check. Callers treat these as recoverable degradation, not protocol bugs.
  kDeadlineExceeded = 12,
  kUnavailable = 13,
  kDataLoss = 14,
};

// Returns a stable, human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

// [[nodiscard]] on the class makes every by-value return of Status warn
// when ignored (gcc/clang -Wunused-result, promoted to an error in CI);
// deliberate discards must carry a justified
// `// flb-lint: allow(FLB005) <reason>` plus a (void) cast.
class [[nodiscard]] Status {
 public:
  // Default-constructed status is OK.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ArithmeticError(std::string msg) {
    return Status(StatusCode::kArithmeticError, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsArithmeticError() const {
    return code_ == StatusCode::kArithmeticError;
  }
  bool IsCryptoError() const { return code_ == StatusCode::kCryptoError; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

// Propagates a non-OK status to the caller. Usage:
//   FLB_RETURN_IF_ERROR(DoThing());
#define FLB_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::flb::Status _flb_status = (expr);            \
    if (!_flb_status.ok()) return _flb_status;     \
  } while (false)

}  // namespace flb

#endif  // FLB_COMMON_STATUS_H_
