#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "src/common/env.h"

namespace flb::common {

namespace {

// True while this thread is executing inside a ParallelFor body; nested
// calls must run inline (the single job slot is occupied).
thread_local bool tls_inside_parallel_for = false;

// Timestamp source for ThreadPoolObserver events. Wall-clock by design:
// the observer plane profiles real host execution (the simulated clock has
// no opinion about worker scheduling), and nothing derived from these
// stamps ever feeds charged accounting.
uint64_t MonotonicNs() {
  // flb-lint: allow-next-line(FLB001) host profiler timestamps, observability-only
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // flb-lint: allow-next-line(FLB001) host profiler timestamps, observability-only
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int ThreadPool::ThreadsFromEnv(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  int parsed = 0;
  if (!Env::ParseInt(value, &parsed) || parsed <= 0) return fallback;
  return std::min(parsed, 512);
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads > 0
                       ? num_threads
                       : ThreadsFromEnv(Env::Raw("FLB_HOST_THREADS"),
                                        DefaultThreads())),
      shards_(static_cast<size_t>(num_threads_)) {}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool::StatsSnapshot ThreadPool::stats() const {
  StatsSnapshot s;
  s.parallel_fors = stat_fors_.load(std::memory_order_relaxed);
  s.tasks = stat_tasks_.load(std::memory_order_relaxed);
  s.steals = stat_steals_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::EnsureStartedLocked() {
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int p = 1; p < num_threads_; ++p) {
    workers_.emplace_back([this, p] { WorkerLoop(p); });
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  stat_fors_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ == 1 || n == 1 || tls_inside_parallel_for) {
    stat_tasks_.fetch_add(1, std::memory_order_relaxed);
    ThreadPoolObserver* const obs = observer();
    if (obs == nullptr) {
      fn(0, n);
      return;
    }
    ThreadPoolObserver::TaskEvent event;
    event.worker = 0;
    event.chunk_end = n;
    event.start_ns = MonotonicNs();
    fn(0, n);
    event.end_ns = MonotonicNs();
    obs->OnTask(event);
    return;
  }

  MutexLock call_lock(call_mu_);
  // Fixed chunking: ~4 chunks per participant bounds steal traffic while
  // leaving enough pieces to smooth uneven per-element cost. Chunk contents
  // depend only on n and the pool width; results depend on neither (every
  // element writes its own slot).
  const int64_t target_chunks =
      std::min<int64_t>(n, static_cast<int64_t>(num_threads_) * 4);
  const int64_t grain = (n + target_chunks - 1) / target_chunks;
  const int64_t num_chunks = (n + grain - 1) / grain;

  {
    MutexLock lock(mu_);
    EnsureStartedLocked();
    job_fn_ = &fn;
    job_n_ = n;
    job_grain_ = grain;
    for (int p = 0; p < num_threads_; ++p) {
      const int64_t begin = num_chunks * p / num_threads_;
      const int64_t end = num_chunks * (p + 1) / num_threads_;
      shards_[static_cast<size_t>(p)].next.store(begin,
                                                 std::memory_order_relaxed);
      shards_[static_cast<size_t>(p)].end = end;
    }
    ++epoch_;
    workers_active_ = static_cast<int>(workers_.size());
  }
  work_cv_.notify_all();

  tls_inside_parallel_for = true;
  RunParticipant(0);
  tls_inside_parallel_for = false;

  MutexLock lock(mu_);
  while (workers_active_ != 0) done_cv_.wait(lock);
  job_fn_ = nullptr;
}

void ThreadPool::ParallelForEach(int64_t n,
                                 const std::function<void(int64_t)>& fn) {
  ParallelFor(n, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::WorkerLoop(int participant) {
  uint64_t seen = 0;
  for (;;) {
    ThreadPoolObserver* obs = observer();
    const uint64_t idle_start = obs != nullptr ? MonotonicNs() : 0;
    {
      MutexLock lock(mu_);
      while (!stop_ && epoch_ == seen) work_cv_.wait(lock);
      if (stop_) return;
      seen = epoch_;
    }
    // Re-read: an observer installed while this worker slept still sees
    // subsequent windows; one installed mid-wait misses only this gap.
    obs = observer();
    if (obs != nullptr && idle_start != 0) {
      obs->OnIdle(participant, idle_start, MonotonicNs());
    }
    tls_inside_parallel_for = true;
    RunParticipant(participant);
    tls_inside_parallel_for = false;
    bool last = false;
    {
      MutexLock lock(mu_);
      last = --workers_active_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

void ThreadPool::RunParticipant(int participant) {
  const auto& fn = *job_fn_;
  const int64_t n = job_n_;
  const int64_t grain = job_grain_;
  ThreadPoolObserver* const obs = observer();
  // Unclaimed chunks across all shards — only sampled while an observer is
  // installed (num_threads relaxed loads per task). Approximate by nature:
  // other workers keep claiming while we sum.
  const auto queue_depth = [&]() {
    int64_t depth = 0;
    for (const Shard& shard : shards_) {
      const int64_t next = shard.next.load(std::memory_order_relaxed);
      if (next < shard.end) depth += shard.end - next;
    }
    return depth;
  };
  const auto run_chunk = [&](int64_t c, bool stolen) {
    const int64_t begin = c * grain;
    const int64_t end = std::min(n, begin + grain);
    if (obs == nullptr) {
      fn(begin, end);
    } else {
      ThreadPoolObserver::TaskEvent event;
      event.worker = participant;
      event.chunk_begin = begin;
      event.chunk_end = end;
      event.stolen = stolen;
      event.queue_depth = queue_depth();
      event.start_ns = MonotonicNs();
      fn(begin, end);
      event.end_ns = MonotonicNs();
      obs->OnTask(event);
    }
    stat_tasks_.fetch_add(1, std::memory_order_relaxed);
  };
  Shard& own = shards_[static_cast<size_t>(participant)];
  for (;;) {
    const int64_t c = own.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= own.end) break;
    run_chunk(c, /*stolen=*/false);
  }
  // Own shard drained: steal from the others, round-robin from the right.
  for (int off = 1; off < num_threads_; ++off) {
    Shard& victim =
        shards_[static_cast<size_t>((participant + off) % num_threads_)];
    for (;;) {
      const int64_t c = victim.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= victim.end) break;
      run_chunk(c, /*stolen=*/true);
      stat_steals_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status ParallelForEachStatus(ThreadPool& pool, size_t n,
                             const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  Mutex err_mu;
  size_t err_index = std::numeric_limits<size_t>::max();
  Status err;
  pool.ParallelFor(static_cast<int64_t>(n), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      Status s = fn(static_cast<size_t>(i));
      if (!s.ok()) {
        // A chunk stops at its own first error; the smallest erroring index
        // is always the first error of *its* chunk, so the min over chunk
        // errors is thread-count independent.
        MutexLock lock(err_mu);
        if (static_cast<size_t>(i) < err_index) {
          err_index = static_cast<size_t>(i);
          err = std::move(s);
        }
        return;
      }
    }
  });
  if (err_index != std::numeric_limits<size_t>::max()) return err;
  return Status::OK();
}

}  // namespace flb::common
