// Work-stealing host thread pool for element-parallel batch bodies.
//
// The simulated-time model is untouched by host parallelism: the pool only
// accelerates the *wall-clock* execution of host bodies (real Paillier/RSA
// arithmetic inside GHE batches and the CPU reference path). Determinism
// contract: ParallelFor partitions [0, n) into fixed chunks whose contents
// depend only on n, every element writes an output slot determined solely by
// its index, and any per-element randomness must be derived from the element
// index (see Rng::ForStream) — so results are bit-identical for any thread
// count and any steal order.
//
// The pool is lazily started: no threads are spawned until the first
// ParallelFor that can use them, and a 1-thread pool never spawns any.

#ifndef FLB_COMMON_THREAD_POOL_H_
#define FLB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/status.h"

namespace flb::common {

// Wall-clock observer for the host profiler plane: when installed (see
// ThreadPool::SetObserver), every pool gives it per-worker task / steal /
// idle windows stamped in monotonic nanoseconds. Callbacks run on the
// worker threads and must be lock-light and non-blocking; they observe
// execution, they never influence it — the deterministic chunk schedule and
// every result are bit-identical with or without an observer.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;

  struct TaskEvent {
    int worker = 0;           // participant index (0 = the calling thread)
    uint64_t start_ns = 0;    // monotonic, arbitrary process-wide base
    uint64_t end_ns = 0;
    int64_t chunk_begin = 0;  // element range [chunk_begin, chunk_end)
    int64_t chunk_end = 0;
    bool stolen = false;      // taken from another participant's shard
    int64_t queue_depth = 0;  // unclaimed chunks when this task started
  };
  virtual void OnTask(const TaskEvent& event) = 0;

  // One idle window per worker per job gap (the wait between ParallelFor
  // epochs on that worker's condition variable).
  virtual void OnIdle(int worker, uint64_t start_ns, uint64_t end_ns) = 0;
};

class ThreadPool {
 public:
  // num_threads <= 0 resolves FLB_HOST_THREADS, then hardware_concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool sized by FLB_HOST_THREADS (falling back to
  // hardware_concurrency). Engines take a ThreadPool* and default to this.
  static ThreadPool& Global();

  // Parses a FLB_HOST_THREADS-style value; non-numeric/non-positive values
  // fall back. Exposed for tests (the global pool reads the env only once).
  static int ThreadsFromEnv(const char* value, int fallback);
  static int DefaultThreads();

  int num_threads() const { return num_threads_; }

  // Cumulative counters (relaxed atomics; exact totals once the pool is
  // quiescent, which is whenever no ParallelFor is in flight).
  struct StatsSnapshot {
    uint64_t parallel_fors = 0;  // ParallelFor calls
    uint64_t tasks = 0;          // chunks executed
    uint64_t steals = 0;         // chunks taken from another worker's shard
  };
  StatsSnapshot stats() const;

  // Installs (or clears, with nullptr) the process-wide observer all pools
  // report to. The pointer must outlive every pool use; installation is
  // atomic, so it may happen while pools are running — workers pick it up
  // at their next task/idle boundary.
  static void SetObserver(ThreadPoolObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }
  static ThreadPoolObserver* observer() {
    return observer_.load(std::memory_order_acquire);
  }

  // Invokes fn(begin, end) over a disjoint cover of [0, n); blocks until all
  // elements ran. The calling thread participates. fn must not throw and
  // must write only to slots owned by its indices. Nested calls from inside
  // fn run inline on the calling worker.
  void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn)
      FLB_EXCLUDES(call_mu_, mu_);

  // Per-index convenience wrapper over ParallelFor.
  void ParallelForEach(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  // One participant's claim on its statically assigned chunk range.
  // fetch_add claims; visitors past `end` leave next harmlessly large.
  struct alignas(64) Shard {
    std::atomic<int64_t> next{0};
    int64_t end = 0;
  };

  void EnsureStartedLocked() FLB_REQUIRES(mu_);
  void WorkerLoop(int participant) FLB_EXCLUDES(mu_);
  // Reads the published job fields without mu_: the epoch handshake makes
  // the accesses race-free (the caller writes them under mu_ before
  // bumping epoch_; workers observe the bump under mu_ before reading),
  // which the static analysis cannot see.
  void RunParticipant(int participant) FLB_NO_THREAD_SAFETY_ANALYSIS;

  const int num_threads_;

  // Serializes top-level ParallelFor calls; nested/concurrent callers run
  // their work inline instead of deadlocking on the single job slot.
  Mutex call_mu_ FLB_ACQUIRED_BEFORE(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  // Grown only under mu_ (EnsureStartedLocked); joined in the destructor
  // after the stop_ hand-off, when no worker can still be spawned.
  std::vector<std::thread> workers_;
  bool started_ FLB_GUARDED_BY(mu_) = false;
  bool stop_ FLB_GUARDED_BY(mu_) = false;
  uint64_t epoch_ FLB_GUARDED_BY(mu_) = 0;
  int workers_active_ FLB_GUARDED_BY(mu_) = 0;

  // Current job (valid while a ParallelFor is in flight). Written under
  // mu_; read by RunParticipant under the epoch handshake above.
  const std::function<void(int64_t, int64_t)>* job_fn_ FLB_GUARDED_BY(mu_) =
      nullptr;
  int64_t job_n_ FLB_GUARDED_BY(mu_) = 0;
  int64_t job_grain_ FLB_GUARDED_BY(mu_) = 1;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> stat_fors_{0};
  std::atomic<uint64_t> stat_tasks_{0};
  std::atomic<uint64_t> stat_steals_{0};

  static inline std::atomic<ThreadPoolObserver*> observer_{nullptr};
};

// Runs fn(i) for every i in [0, n) on the pool. Each chunk stops at its own
// first error; across chunks the error with the smallest element index wins,
// so the returned status is identical at any thread count.
Status ParallelForEachStatus(ThreadPool& pool, size_t n,
                             const std::function<Status(size_t)>& fn);

}  // namespace flb::common

#endif  // FLB_COMMON_THREAD_POOL_H_
