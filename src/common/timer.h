// WallTimer: measured (real) elapsed time, used by micro-benchmarks and by
// the CPU-HE cost calibration in src/core/cost_model.

#ifndef FLB_COMMON_TIMER_H_
#define FLB_COMMON_TIMER_H_

#include <chrono>

namespace flb {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flb

#endif  // FLB_COMMON_TIMER_H_
