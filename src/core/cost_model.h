// CPU-side HE cost model (the beta_cpu term of the paper's Eq. 10).
//
// The GPU path's time comes from the device simulator; the CPU path charges
// analytic per-op costs derived from the same limb-operation counts, divided
// by a calibrated scalar limb-op rate. The default rate is chosen so the
// FATE baseline's HE throughput at 1024-bit keys lands where the paper
// measured it (~360 encryptions/second, Table IV); the growth across key
// sizes then follows from the arithmetic itself.

#ifndef FLB_CORE_COST_MODEL_H_
#define FLB_CORE_COST_MODEL_H_

#include <cstdint>

#include "src/common/sim_clock.h"

namespace flb::core {

struct CpuCostModel {
  // 32-bit multiply-accumulate limb operations per second for a tuned
  // single-threaded bignum implementation on the paper's Xeon E5-2650 v4.
  double limb_ops_per_sec = 3.9e9;
  // Per-HE-op dispatch overhead on the CPU path. FATE drives Paillier from
  // Python: every encrypt/add/decrypt crosses the interpreter and object
  // layer, which dominates cheap ops (homomorphic adds) and is why the
  // paper's FATE baseline is slow even on small ciphertext batches.
  double per_op_overhead_sec = 60e-6;

  double SecondsFor(uint64_t ops, uint64_t limb_ops_per_op) const {
    return static_cast<double>(ops) *
           (limb_ops_per_op / limb_ops_per_sec + per_op_overhead_sec);
  }

  // Charges `ops` CPU HE operations of `limb_ops_per_op` each (no-op when
  // clock is null).
  void Charge(SimClock* clock, uint64_t ops, uint64_t limb_ops_per_op) const {
    if (clock != nullptr && ops > 0) {
      clock->Charge(CostKind::kCpuHe, SecondsFor(ops, limb_ops_per_op));
    }
  }
};

}  // namespace flb::core

#endif  // FLB_CORE_COST_MODEL_H_
