// Engine configurations: the systems the paper compares.
//
//   FATE       — CPU homomorphic encryption, no compression (baseline).
//   HAFLO      — GPU HE, but with a coarse thread split, no resource-manager
//                branch combining, and no compression (the SOTA baseline).
//   FLBooster  — GPU HE with the resource manager + batch compression.
//   w/o GHE    — FLBooster ablation: batch compression but CPU HE.
//   w/o BC     — FLBooster ablation: GPU HE but no compression.
//
// Every FL model runs unchanged under each engine; only these traits differ
// (Table III / Table V's experimental axes).

#ifndef FLB_CORE_ENGINE_CONFIG_H_
#define FLB_CORE_ENGINE_CONFIG_H_

#include <string>

namespace flb::core {

enum class EngineKind : int {
  kFate = 0,
  kHaflo = 1,
  kFlBooster = 2,
  kFlBoosterNoGhe = 3,  // ablation: w/o GHE
  kFlBoosterNoBc = 4,   // ablation: w/o BC
};

struct EngineTraits {
  bool gpu_he = false;           // HE ops on the simulated GPU vs the CPU
  bool use_bc = false;           // batch compression on transmitted vectors
  bool branch_combining = true;  // resource-manager branch management
  int words_per_thread = 4;      // Algorithm 2 thread split granularity
  // Device streams for chunked copy/compute overlap on large HE batches
  // (§V Fig. 4). 1 = fully synchronous staging; FLBooster pipelines across
  // 4 streams, the HAFLO/FATE baselines stay serial.
  int gpu_streams = 1;
  // Host worker threads for element-parallel batch bodies (real Paillier/RSA
  // arithmetic). 0 = the process-global pool (FLB_HOST_THREADS, then
  // hardware_concurrency). Results are bit-identical at any thread count;
  // only wall-clock execution changes, never the simulated timeline.
  int host_threads = 0;
};

inline EngineTraits TraitsFor(EngineKind kind) {
  switch (kind) {
    case EngineKind::kFate:
      return {.gpu_he = false, .use_bc = false};
    case EngineKind::kHaflo:
      // HAFLO ports HE to the GPU but without FLBooster's resource manager:
      // unmanaged divergent branches and a coarse one-thread-per-big-chunk
      // decomposition.
      return {.gpu_he = true,
              .use_bc = false,
              .branch_combining = false,
              .words_per_thread = 16};
    case EngineKind::kFlBooster:
      return {.gpu_he = true, .use_bc = true, .gpu_streams = 4};
    case EngineKind::kFlBoosterNoGhe:
      return {.gpu_he = false, .use_bc = true};
    case EngineKind::kFlBoosterNoBc:
      return {.gpu_he = true, .use_bc = false, .gpu_streams = 4};
  }
  return {};
}

inline std::string EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kFate:
      return "FATE";
    case EngineKind::kHaflo:
      return "HAFLO";
    case EngineKind::kFlBooster:
      return "FLBooster";
    case EngineKind::kFlBoosterNoGhe:
      return "w/o GHE";
    case EngineKind::kFlBoosterNoBc:
      return "w/o BC";
  }
  return "unknown";
}

}  // namespace flb::core

#endif  // FLB_CORE_ENGINE_CONFIG_H_
