#include "src/core/he_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/ghe/parallel_montgomery.h"

namespace flb::core {

namespace {

using ghe::EstimateModPowMontMuls;
using ghe::MontMulLimbOps;

// CPU limb-work formulas — identical to the GPU engine's, so the two
// execution paths price the same arithmetic consistently (Eq. 10's
// beta_cpu vs beta_gpu act on the same op counts).
uint64_t EncryptLimbOps(int key_bits) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  return (EstimateModPowMontMuls(key_bits) + 3) * MontMulLimbOps(s2);
}
uint64_t DecryptLimbOps(int key_bits) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  return 2 * EstimateModPowMontMuls(key_bits / 2) * MontMulLimbOps(s2 / 2);
}
uint64_t AddLimbOps(int key_bits) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  return 3 * MontMulLimbOps(s2);
}
uint64_t AddPlainLimbOps(int key_bits) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  return 4 * MontMulLimbOps(s2);
}
uint64_t ScalarMulLimbOps(int key_bits, int exp_bits) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  return EstimateModPowMontMuls(exp_bits) * MontMulLimbOps(s2);
}

}  // namespace

HeService::HeService(const HeServiceOptions& options, SimClock* clock,
                     std::shared_ptr<gpusim::Device> device,
                     codec::Quantizer quantizer)
    : options_(options),
      traits_(TraitsFor(options.engine)),
      clock_(clock),
      device_(std::move(device)),
      quantizer_(std::move(quantizer)),
      rng_(options.seed) {}

Result<std::unique_ptr<HeService>> HeService::Create(
    const HeServiceOptions& options, SimClock* clock,
    std::shared_ptr<gpusim::Device> device) {
  if (options.key_bits < 64 || options.key_bits % 64 != 0) {
    return Status::InvalidArgument(
        "HeService: key_bits must be a positive multiple of 64");
  }
  const EngineTraits traits = TraitsFor(options.engine);
  if (traits.gpu_he && device == nullptr) {
    return Status::InvalidArgument(
        "HeService: engine '" + EngineName(options.engine) +
        "' runs HE on the GPU but no device was supplied");
  }

  codec::QuantizerConfig qcfg;
  qcfg.alpha = options.alpha;
  qcfg.r_bits = options.r_bits;
  qcfg.participants = options.participants;
  FLB_ASSIGN_OR_RETURN(codec::Quantizer quantizer,
                       codec::Quantizer::Create(qcfg));

  auto service = std::unique_ptr<HeService>(
      new HeService(options, clock, std::move(device), std::move(quantizer)));

  // Host execution pool: an explicit size makes the service own a private
  // pool; otherwise everyone shares the process-global one.
  const int host_threads =
      options.host_threads > 0 ? options.host_threads : traits.host_threads;
  if (host_threads > 0) {
    service->owned_pool_ = std::make_unique<common::ThreadPool>(host_threads);
    service->host_pool_ = service->owned_pool_.get();
  } else {
    service->host_pool_ = &common::ThreadPool::Global();
  }

  if (traits.gpu_he) {
    ghe::GheConfig gcfg;
    gcfg.words_per_thread = traits.words_per_thread;
    gcfg.streams =
        options.gpu_streams > 0 ? options.gpu_streams : traits.gpu_streams;
    gcfg.chunks_per_stream =
        options.ghe_chunks_per_stream > 0 ? options.ghe_chunks_per_stream : 1;
    gcfg.host_pool = service->host_pool_;
    service->ghe_ = std::make_unique<ghe::GheEngine>(service->device_, gcfg);
  }
  // Compression: the engine trait unless the option overrides it. The
  // effective flag lives in traits_ so every consumer (pack_slots,
  // CompressForTransmission, the encrypt paths) sees one value.
  const bool use_bc =
      options.use_bc < 0 ? traits.use_bc : options.use_bc != 0;
  service->traits_.use_bc = use_bc;
  if (use_bc) {
    FLB_ASSIGN_OR_RETURN(
        auto compressor,
        codec::BatchCompressor::Create(service->quantizer_, options.key_bits));
    service->compressor_.emplace(std::move(compressor));
  }

  if (options.modeled) {
    // Synthetic modulus: the modeled path never performs real crypto, it
    // only needs a key_bits-wide odd modulus for residue arithmetic.
    BigInt n = BigInt::Random(service->rng_, options.key_bits);
    auto w = n.ToFixedWords(options.key_bits / 32);
    w[0] |= 1u;
    w.back() |= 0x80000000u;
    service->n_ = BigInt::FromWords(std::move(w));
  } else {
    crypto::PaillierOptions popts;
    popts.use_fixed_width_kernels = options.use_fixed_width_kernels;
    FLB_ASSIGN_OR_RETURN(auto keys,
                         crypto::PaillierKeyGen(options.key_bits,
                                                service->rng_, popts));
    service->n_ = keys.pub.n;
    FLB_ASSIGN_OR_RETURN(auto ctx,
                         crypto::PaillierContext::Create(keys, popts));
    service->paillier_.emplace(std::move(ctx));
  }
  service->n_squared_ = BigInt::Mul(service->n_, service->n_);

  FLB_ASSIGN_OR_RETURN(
      auto fp, codec::FixedPointCodec::Create(service->n_, options.frac_bits));
  service->fp_codec_ = std::make_unique<codec::FixedPointCodec>(std::move(fp));
  return service;
}

int HeService::pack_slots() const {
  return traits_.use_bc ? compressor_->slots_per_plaintext() : 1;
}

size_t HeService::CiphertextWords() const {
  return static_cast<size_t>(options_.key_bits) * 2 / 32;
}

size_t HeService::WireBytes(const EncVec& c) const {
  // Fixed-width ciphertexts plus the transport header (layout/count/slot
  // metadata — see core::SendEncVec).
  return c.data.size() * CiphertextWords() * 4 + 48;
}

int HeService::fp_compress_slot_bits() const {
  if (options_.fp_compress_slot_bits > 0) {
    return options_.fp_compress_slot_bits;
  }
  return std::min(2 * options_.frac_bits + 14, 62);
}

Status HeService::CheckLayout(const EncVec& v, EncLayout expected,
                              const char* op) const {
  if (v.layout != expected) {
    return Status::InvalidArgument(std::string(op) +
                                   ": EncVec has the wrong layout");
  }
  if (v.modeled != options_.modeled) {
    return Status::InvalidArgument(
        std::string(op) + ": EncVec execution mode does not match service");
  }
  return Status::OK();
}

void HeService::ChargeBatch(const char* kind, int64_t count,
                            uint64_t limb_ops_per_elt, size_t bytes_in,
                            size_t bytes_out) {
  if (count <= 0) return;
  if (traits_.gpu_he) {
    // Model the batch through the engine: identical launch geometry to the
    // real path, and with streams > 1 the same chunked copy/compute overlap
    // (charges the clock through the device). The device traces the kernel
    // and PCIe spans; the outer span shows the whole batch on the HE track.
    obs::ScopedSpan span(
        clock_, obs::TraceRecorder::Global().RegisterTrack("he", "batches"),
        kind, "he");
    span.AddArg(obs::Arg("count", count));
    auto result = ghe_->ModelBatch(kind, count, CiphertextWords(),
                                   limb_ops_per_elt, bytes_in, bytes_out);
    FLB_CHECK(result.ok(), result.status().ToString());
  } else {
    ChargeCpu(kind, static_cast<uint64_t>(count), limb_ops_per_elt);
  }
}

void HeService::ChargeCpu(const char* kind, uint64_t count,
                          uint64_t limb_ops_per_elt) {
  // Charge + span in one step: the span's extent is exactly the simulated
  // CPU-HE time the cost model adds.
  ChargeSpan(clock_, CostKind::kCpuHe,
             options_.cpu_cost.SecondsFor(count, limb_ops_per_elt),
             obs::TraceRecorder::Global().RegisterTrack("he", "batches"), kind,
             "he", {obs::Arg("count", count)});
}

// ---------------------------------------------------------------------------
// Packed-sum path
// ---------------------------------------------------------------------------

Result<EncVec> HeService::EncryptValues(const std::vector<double>& values) {
  FLB_RETURN_IF_ERROR(CheckDeadline("HeService::EncryptValues"));
  if (values.empty()) {
    return Status::InvalidArgument("EncryptValues: empty input");
  }
  // Encoding/quantization/packing cost: a handful of float+integer ops per
  // value — "extremely small" per the paper, but accounted for honestly.
  ChargeSpan(clock_, CostKind::kEncoding, values.size() * 4e-9,
             obs::TraceRecorder::Global().RegisterTrack("he", "encode"),
             "he.encode", "encode",
             {obs::Arg("values", static_cast<uint64_t>(values.size()))});
  // Quantize (+ pack).
  std::vector<BigInt> plains;
  if (traits_.use_bc) {
    FLB_ASSIGN_OR_RETURN(plains, compressor_->Pack(values));
  } else {
    FLB_ASSIGN_OR_RETURN(auto slots, quantizer_.EncodeBatch(values));
    plains.reserve(slots.size());
    for (uint64_t s : slots) plains.emplace_back(s);
  }

  EncVec out;
  out.layout = EncLayout::kPackedSum;
  out.count = values.size();
  out.slots_per_cipher = pack_slots();
  out.contributors = 1;
  out.modeled = options_.modeled;

  const int64_t n_cipher = static_cast<int64_t>(plains.size());
  if (options_.modeled) {
    out.data = std::move(plains);
    ChargeBatch("he.encrypt", n_cipher, EncryptLimbOps(options_.key_bits),
                n_cipher * CiphertextWords() * 2,  // staged plaintexts
                n_cipher * CiphertextWords() * 4);
  } else if (traits_.gpu_he) {
    FLB_ASSIGN_OR_RETURN(out.data,
                         ghe_->PaillierEncrypt(*paillier_, plains, rng_));
  } else {
    FLB_ASSIGN_OR_RETURN(out.data,
                         paillier_->EncryptBatch(plains, rng_, host_pool_));
    ChargeCpu("he.encrypt", plains.size(), EncryptLimbOps(options_.key_bits));
  }
  op_cells_.encrypts.fetch_add(static_cast<uint64_t>(n_cipher), std::memory_order_relaxed);
  op_cells_.values_encrypted.fetch_add(values.size(), std::memory_order_relaxed);
  return out;
}

Result<EncVec> HeService::AddCipher(const EncVec& a, const EncVec& b) {
  FLB_RETURN_IF_ERROR(CheckLayout(a, EncLayout::kPackedSum, "AddCipher"));
  FLB_RETURN_IF_ERROR(CheckLayout(b, EncLayout::kPackedSum, "AddCipher"));
  if (a.count != b.count || a.data.size() != b.data.size() ||
      a.slots_per_cipher != b.slots_per_cipher) {
    return Status::InvalidArgument("AddCipher: mismatched vector layouts");
  }
  if (a.contributors + b.contributors > options_.participants) {
    return Status::OutOfRange(
        "AddCipher: contributor total would exceed the quantizer's overflow "
        "headroom");
  }
  EncVec out = a;
  out.contributors = a.contributors + b.contributors;
  const int64_t n_cipher = static_cast<int64_t>(a.data.size());
  if (options_.modeled) {
    for (size_t i = 0; i < a.data.size(); ++i) {
      out.data[i] = BigInt::Add(a.data[i], b.data[i]) % n_;
    }
    ChargeBatch("he.add", n_cipher, AddLimbOps(options_.key_bits),
                2 * n_cipher * CiphertextWords() * 4,
                n_cipher * CiphertextWords() * 4);
  } else if (traits_.gpu_he) {
    FLB_ASSIGN_OR_RETURN(out.data, ghe_->PaillierAdd(*paillier_, a.data,
                                                     b.data));
  } else {
    FLB_ASSIGN_OR_RETURN(out.data,
                         paillier_->AddBatch(a.data, b.data, host_pool_));
    ChargeCpu("he.add", a.data.size(), AddLimbOps(options_.key_bits));
  }
  op_cells_.hom_adds.fetch_add(a.data.size(), std::memory_order_relaxed);
  return out;
}

Result<EncVec> HeService::AddPlainValues(const EncVec& c,
                                         const std::vector<double>& values) {
  FLB_RETURN_IF_ERROR(CheckLayout(c, EncLayout::kPackedSum, "AddPlainValues"));
  if (values.size() != c.count) {
    return Status::InvalidArgument("AddPlainValues: value count mismatch");
  }
  if (c.contributors + 1 > options_.participants) {
    return Status::OutOfRange("AddPlainValues: overflow headroom exhausted");
  }
  std::vector<BigInt> plains;
  if (traits_.use_bc) {
    FLB_ASSIGN_OR_RETURN(plains, compressor_->Pack(values));
  } else {
    FLB_ASSIGN_OR_RETURN(auto slots, quantizer_.EncodeBatch(values));
    plains.reserve(slots.size());
    for (uint64_t s : slots) plains.emplace_back(s);
  }
  if (plains.size() != c.data.size()) {
    return Status::Internal("AddPlainValues: packing layout mismatch");
  }
  EncVec out = c;
  out.contributors = c.contributors + 1;
  const int64_t n_cipher = static_cast<int64_t>(plains.size());
  if (options_.modeled) {
    for (size_t i = 0; i < plains.size(); ++i) {
      out.data[i] = BigInt::Add(c.data[i], plains[i]) % n_;
    }
    ChargeBatch("he.add_plain", n_cipher, AddPlainLimbOps(options_.key_bits),
                n_cipher * CiphertextWords() * 6,
                n_cipher * CiphertextWords() * 4);
  } else if (traits_.gpu_he) {
    FLB_ASSIGN_OR_RETURN(out.data,
                         ghe_->PaillierAddPlain(*paillier_, c.data, plains));
  } else {
    FLB_ASSIGN_OR_RETURN(out.data,
                         paillier_->AddPlainBatch(c.data, plains, host_pool_));
    ChargeCpu("he.add_plain", plains.size(),
              AddPlainLimbOps(options_.key_bits));
  }
  op_cells_.hom_adds.fetch_add(plains.size(), std::memory_order_relaxed);
  return out;
}

Result<std::vector<double>> HeService::DecryptValues(const EncVec& c) {
  FLB_RETURN_IF_ERROR(CheckDeadline("HeService::DecryptValues"));
  FLB_RETURN_IF_ERROR(CheckLayout(c, EncLayout::kPackedSum, "DecryptValues"));
  std::vector<BigInt> plains;
  const int64_t n_cipher = static_cast<int64_t>(c.data.size());
  if (options_.modeled) {
    plains = c.data;
    ChargeBatch("he.decrypt", n_cipher, DecryptLimbOps(options_.key_bits),
                n_cipher * CiphertextWords() * 4,
                n_cipher * CiphertextWords() * 2);
  } else if (traits_.gpu_he) {
    FLB_ASSIGN_OR_RETURN(plains, ghe_->PaillierDecrypt(*paillier_, c.data));
  } else {
    FLB_ASSIGN_OR_RETURN(plains, paillier_->DecryptBatch(c.data, host_pool_));
    ChargeCpu("he.decrypt", c.data.size(), DecryptLimbOps(options_.key_bits));
  }
  op_cells_.decrypts.fetch_add(c.data.size(), std::memory_order_relaxed);
  op_cells_.values_decrypted.fetch_add(c.count, std::memory_order_relaxed);
  ChargeSpan(clock_, CostKind::kEncoding, c.count * 4e-9,
             obs::TraceRecorder::Global().RegisterTrack("he", "encode"),
             "he.decode", "encode",
             {obs::Arg("values", static_cast<uint64_t>(c.count))});
  if (traits_.use_bc) {
    return compressor_->Unpack(plains, c.count, c.contributors);
  }
  std::vector<double> out;
  out.reserve(plains.size());
  for (const BigInt& m : plains) {
    FLB_ASSIGN_OR_RETURN(uint64_t slot, m.ToU64());
    FLB_ASSIGN_OR_RETURN(double v,
                         quantizer_.DecodeAggregate(slot, c.contributors));
    out.push_back(v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fixed-point path
// ---------------------------------------------------------------------------

Result<EncVec> HeService::EncryptFixedPoint(const std::vector<double>& values) {
  FLB_RETURN_IF_ERROR(CheckDeadline("HeService::EncryptFixedPoint"));
  if (values.empty()) {
    return Status::InvalidArgument("EncryptFixedPoint: empty input");
  }
  std::vector<BigInt> plains;
  plains.reserve(values.size());
  for (double v : values) {
    FLB_ASSIGN_OR_RETURN(BigInt x, fp_codec_->Encode(v));
    plains.push_back(std::move(x));
  }
  EncVec out;
  out.layout = EncLayout::kFixedPoint;
  out.count = values.size();
  out.modeled = options_.modeled;
  const int64_t n_cipher = static_cast<int64_t>(plains.size());
  if (options_.modeled) {
    out.data = std::move(plains);
    ChargeBatch("he.fp_encrypt", n_cipher, EncryptLimbOps(options_.key_bits),
                n_cipher * CiphertextWords() * 2,
                n_cipher * CiphertextWords() * 4);
  } else if (traits_.gpu_he) {
    FLB_ASSIGN_OR_RETURN(out.data,
                         ghe_->PaillierEncrypt(*paillier_, plains, rng_));
  } else {
    FLB_ASSIGN_OR_RETURN(out.data,
                         paillier_->EncryptBatch(plains, rng_, host_pool_));
    ChargeCpu("he.fp_encrypt", plains.size(),
              EncryptLimbOps(options_.key_bits));
  }
  op_cells_.encrypts.fetch_add(static_cast<uint64_t>(n_cipher), std::memory_order_relaxed);
  op_cells_.values_encrypted.fetch_add(values.size(), std::memory_order_relaxed);
  return out;
}

Result<EncVec> HeService::AddFixedPoint(const EncVec& a, const EncVec& b) {
  FLB_RETURN_IF_ERROR(CheckLayout(a, EncLayout::kFixedPoint, "AddFixedPoint"));
  FLB_RETURN_IF_ERROR(CheckLayout(b, EncLayout::kFixedPoint, "AddFixedPoint"));
  if (a.count != b.count || a.scale_muls != b.scale_muls ||
      a.slots_per_cipher != 1 || b.slots_per_cipher != 1) {
    return Status::InvalidArgument(
        "AddFixedPoint: operands must be unpacked with matching scales");
  }
  EncVec out = a;
  const int64_t n_cipher = static_cast<int64_t>(a.data.size());
  if (options_.modeled) {
    for (size_t i = 0; i < a.data.size(); ++i) {
      out.data[i] = BigInt::Add(a.data[i], b.data[i]) % n_;
    }
    ChargeBatch("he.fp_add", n_cipher, AddLimbOps(options_.key_bits),
                2 * n_cipher * CiphertextWords() * 4,
                n_cipher * CiphertextWords() * 4);
  } else if (traits_.gpu_he) {
    FLB_ASSIGN_OR_RETURN(out.data, ghe_->PaillierAdd(*paillier_, a.data,
                                                     b.data));
  } else {
    FLB_ASSIGN_OR_RETURN(out.data,
                         paillier_->AddBatch(a.data, b.data, host_pool_));
    ChargeCpu("he.fp_add", a.data.size(), AddLimbOps(options_.key_bits));
  }
  op_cells_.hom_adds.fetch_add(a.data.size(), std::memory_order_relaxed);
  return out;
}

Result<EncVec> HeService::ScalarMulFixedPoint(
    const EncVec& c, const std::vector<double>& weights) {
  FLB_RETURN_IF_ERROR(
      CheckLayout(c, EncLayout::kFixedPoint, "ScalarMulFixedPoint"));
  if (weights.size() != c.count || c.slots_per_cipher != 1) {
    return Status::InvalidArgument(
        "ScalarMulFixedPoint: weight count mismatch or packed input");
  }
  std::vector<BigInt> ks;
  ks.reserve(weights.size());
  for (double w : weights) {
    FLB_ASSIGN_OR_RETURN(BigInt k, fp_codec_->EncodeScalar(w));
    ks.push_back(std::move(k));
  }
  EncVec out = c;
  out.scale_muls = c.scale_muls + 1;
  const int64_t n_cipher = static_cast<int64_t>(c.data.size());
  if (options_.modeled) {
    for (size_t i = 0; i < c.data.size(); ++i) {
      out.data[i] = BigInt::Mul(c.data[i], ks[i]) % n_;
    }
    ChargeBatch("he.fp_scalar_mul", n_cipher,
                ScalarMulLimbOps(options_.key_bits, EffectiveScalarBits()),
                2 * n_cipher * CiphertextWords() * 4,
                n_cipher * CiphertextWords() * 4);
  } else if (traits_.gpu_he) {
    FLB_ASSIGN_OR_RETURN(out.data,
                         ghe_->PaillierScalarMul(*paillier_, c.data, ks));
  } else {
    FLB_ASSIGN_OR_RETURN(out.data,
                         paillier_->ScalarMulBatch(c.data, ks, host_pool_));
    ChargeCpu("he.fp_scalar_mul", c.data.size(),
              ScalarMulLimbOps(options_.key_bits, EffectiveScalarBits()));
  }
  op_cells_.scalar_muls.fetch_add(c.data.size(), std::memory_order_relaxed);
  return out;
}

Result<EncVec> HeService::WeightedSums(
    const EncVec& c, const std::vector<std::vector<WeightedTerm>>& groups) {
  FLB_RETURN_IF_ERROR(CheckDeadline("HeService::WeightedSums"));
  FLB_RETURN_IF_ERROR(CheckLayout(c, EncLayout::kFixedPoint, "WeightedSums"));
  if (c.slots_per_cipher != 1) {
    return Status::InvalidArgument("WeightedSums: input must be unpacked");
  }
  // Flatten all terms into one scalar-mul batch.
  std::vector<BigInt> term_ciphers;
  std::vector<double> term_weights;
  for (const auto& group : groups) {
    for (const auto& term : group) {
      if (term.index >= c.data.size()) {
        return Status::OutOfRange("WeightedSums: term index out of range");
      }
      term_ciphers.push_back(c.data[term.index]);
      term_weights.push_back(term.weight);
    }
  }
  EncVec flat = c;
  flat.count = term_ciphers.size();
  flat.data = std::move(term_ciphers);
  FLB_ASSIGN_OR_RETURN(EncVec products, ScalarMulFixedPoint(flat, term_weights));

  // Fold products group-wise (charged as one add batch below).
  EncVec out;
  out.layout = EncLayout::kFixedPoint;
  out.count = groups.size();
  out.scale_muls = c.scale_muls + 1;
  out.modeled = options_.modeled;
  out.data.reserve(groups.size());
  size_t pos = 0;
  uint64_t adds = 0;
  for (const auto& group : groups) {
    if (group.empty()) {
      // Empty group: encrypted zero (modeled: residue 0).
      if (options_.modeled) {
        out.data.emplace_back();
      } else {
        FLB_ASSIGN_OR_RETURN(BigInt zero, paillier_->Encrypt(BigInt(), rng_));
        op_cells_.encrypts.fetch_add(1, std::memory_order_relaxed);
        out.data.push_back(std::move(zero));
      }
      continue;
    }
    BigInt acc = products.data[pos++];
    for (size_t t = 1; t < group.size(); ++t, ++pos) {
      if (options_.modeled) {
        acc = BigInt::Add(acc, products.data[pos]) % n_;
      } else {
        FLB_ASSIGN_OR_RETURN(acc, paillier_->Add(acc, products.data[pos]));
      }
      ++adds;
    }
    out.data.push_back(std::move(acc));
  }
  // ChargeBatch routes to the device model or the CPU cost model as the
  // engine dictates. (In real-GPU mode the fold arithmetic above ran on the
  // host context for simplicity; the charge prices it as the kernel the real
  // system would launch.)
  ChargeBatch("he.fp_fold", static_cast<int64_t>(adds),
              AddLimbOps(options_.key_bits), 2 * adds * CiphertextWords() * 4,
              adds * CiphertextWords() * 4);
  op_cells_.hom_adds.fetch_add(adds, std::memory_order_relaxed);
  return out;
}

Result<EncVec> HeService::SelectiveSums(
    const EncVec& c, const std::vector<std::vector<uint32_t>>& groups) {
  FLB_RETURN_IF_ERROR(CheckDeadline("HeService::SelectiveSums"));
  // Selective sums are pure additions (no scalar multiplications), so they
  // do not route through WeightedSums.
  FLB_RETURN_IF_ERROR(CheckLayout(c, EncLayout::kFixedPoint, "SelectiveSums"));
  if (c.slots_per_cipher != 1) {
    return Status::InvalidArgument("SelectiveSums: input must be unpacked");
  }
  EncVec out;
  out.layout = EncLayout::kFixedPoint;
  out.count = groups.size();
  out.scale_muls = c.scale_muls;
  out.modeled = options_.modeled;
  out.data.reserve(groups.size());
  uint64_t adds = 0;
  for (const auto& group : groups) {
    if (group.empty()) {
      if (options_.modeled) {
        out.data.emplace_back();
      } else {
        FLB_ASSIGN_OR_RETURN(BigInt zero, paillier_->Encrypt(BigInt(), rng_));
        op_cells_.encrypts.fetch_add(1, std::memory_order_relaxed);
        out.data.push_back(std::move(zero));
      }
      continue;
    }
    if (group[0] >= c.data.size()) {
      return Status::OutOfRange("SelectiveSums: index out of range");
    }
    BigInt acc = c.data[group[0]];
    for (size_t t = 1; t < group.size(); ++t) {
      if (group[t] >= c.data.size()) {
        return Status::OutOfRange("SelectiveSums: index out of range");
      }
      if (options_.modeled) {
        acc = BigInt::Add(acc, c.data[group[t]]) % n_;
      } else {
        FLB_ASSIGN_OR_RETURN(acc, paillier_->Add(acc, c.data[group[t]]));
      }
      ++adds;
    }
    out.data.push_back(std::move(acc));
  }
  ChargeBatch("he.selective_sum", static_cast<int64_t>(adds),
              AddLimbOps(options_.key_bits), 2 * adds * CiphertextWords() * 4,
              adds * CiphertextWords() * 4);
  op_cells_.hom_adds.fetch_add(adds, std::memory_order_relaxed);
  return out;
}

Result<std::vector<double>> HeService::DecryptFixedPoint(const EncVec& c) {
  FLB_RETURN_IF_ERROR(CheckDeadline("HeService::DecryptFixedPoint"));
  FLB_RETURN_IF_ERROR(
      CheckLayout(c, EncLayout::kFixedPoint, "DecryptFixedPoint"));
  std::vector<BigInt> plains;
  const int64_t n_cipher = static_cast<int64_t>(c.data.size());
  if (options_.modeled) {
    plains = c.data;
    ChargeBatch("he.fp_decrypt", n_cipher, DecryptLimbOps(options_.key_bits),
                n_cipher * CiphertextWords() * 4,
                n_cipher * CiphertextWords() * 2);
  } else if (traits_.gpu_he) {
    FLB_ASSIGN_OR_RETURN(plains, ghe_->PaillierDecrypt(*paillier_, c.data));
  } else {
    FLB_ASSIGN_OR_RETURN(plains, paillier_->DecryptBatch(c.data, host_pool_));
    ChargeCpu("he.fp_decrypt", c.data.size(),
              DecryptLimbOps(options_.key_bits));
  }
  op_cells_.decrypts.fetch_add(c.data.size(), std::memory_order_relaxed);
  op_cells_.values_decrypted.fetch_add(c.count, std::memory_order_relaxed);

  std::vector<double> out;
  out.reserve(c.count);
  if (c.fp_slot_bits == 0) {
    for (const BigInt& m : plains) {
      FLB_ASSIGN_OR_RETURN(double v, fp_codec_->Decode(m, c.scale_muls));
      out.push_back(v);
    }
    return out;
  }
  // Compressed layout: extract slots and remove the sign offset.
  const int sb = c.fp_slot_bits;
  const double scale =
      std::ldexp(1.0, options_.frac_bits * (1 + c.scale_muls));
  const int64_t offset = int64_t{1} << (sb - 1);
  for (size_t i = 0; i < c.count; ++i) {
    const BigInt& z = plains[i / c.slots_per_cipher];
    const int pos = static_cast<int>(i % c.slots_per_cipher);
    const BigInt slot =
        BigInt::TruncateBits(BigInt::ShiftRight(z, pos * sb), sb);
    FLB_ASSIGN_OR_RETURN(uint64_t raw, slot.ToU64());
    out.push_back((static_cast<int64_t>(raw) - offset) / scale);
  }
  return out;
}

Result<EncVec> HeService::CompressForTransmission(const EncVec& c) {
  FLB_RETURN_IF_ERROR(
      CheckLayout(c, EncLayout::kFixedPoint, "CompressForTransmission"));
  if (!traits_.use_bc || c.slots_per_cipher != 1 || c.count <= 1) {
    return c;  // compression disabled or nothing to gain
  }
  const int sb = fp_compress_slot_bits();
  const int slots = std::max(1, (options_.key_bits - 2) / sb);
  if (slots <= 1) return c;

  const BigInt offset = BigInt::PowerOfTwo(sb - 1);
  EncVec out;
  out.layout = EncLayout::kFixedPoint;
  out.count = c.count;
  out.scale_muls = c.scale_muls;
  out.slots_per_cipher = slots;
  out.fp_slot_bits = sb;
  out.modeled = options_.modeled;

  uint64_t adds = 0, addplains = 0, scalar_muls = 0;
  for (size_t base = 0; base < c.count; base += slots) {
    const size_t group = std::min<size_t>(slots, c.count - base);
    BigInt acc;
    bool acc_set = false;
    for (size_t j = 0; j < group; ++j) {
      // shifted = (value + offset) * 2^(j*sb), homomorphically.
      BigInt shifted;
      if (options_.modeled) {
        BigInt with_offset = BigInt::Add(c.data[base + j], offset) % n_;
        shifted = BigInt::ShiftLeft(with_offset, static_cast<int>(j) * sb) % n_;
      } else {
        FLB_ASSIGN_OR_RETURN(BigInt with_offset,
                             paillier_->AddPlain(c.data[base + j], offset));
        FLB_ASSIGN_OR_RETURN(
            shifted,
            paillier_->ScalarMul(with_offset,
                                 BigInt::PowerOfTwo(static_cast<int>(j) * sb)));
      }
      ++addplains;
      ++scalar_muls;
      if (!acc_set) {
        acc = std::move(shifted);
        acc_set = true;
      } else {
        if (options_.modeled) {
          acc = BigInt::Add(acc, shifted) % n_;
        } else {
          FLB_ASSIGN_OR_RETURN(acc, paillier_->Add(acc, shifted));
        }
        ++adds;
      }
    }
    out.data.push_back(std::move(acc));
  }
  // Charge the whole compression as one batch. Packing is Horner-style on
  // the device (acc = acc^(2^sb) * E(v_j + offset)), so each source
  // ciphertext costs sb squarings plus one multiply and one offset add —
  // NOT a full slots*sb-bit exponentiation. (The host reference
  // implementation above multiplies by 2^(j*sb) directly, which is
  // algebraically identical.)
  const size_t s2w = CiphertextWords();
  ChargeBatch("he.cipher_compress", static_cast<int64_t>(scalar_muls),
              (static_cast<uint64_t>(sb) + 6) * ghe::MontMulLimbOps(s2w),
              2 * scalar_muls * s2w * 4, out.data.size() * s2w * 4);
  op_cells_.hom_adds.fetch_add(adds + addplains, std::memory_order_relaxed);
  op_cells_.scalar_muls.fetch_add(scalar_muls, std::memory_order_relaxed);
  return out;
}

void HeService::CollectMetrics(std::vector<obs::MetricValue>& out) const {
  const std::string labels = "engine=" + EngineName(options_.engine);
  auto counter = [&](const char* name, uint64_t value) {
    obs::MetricValue m;
    m.name = name;
    m.labels = labels;
    m.type = obs::MetricType::kCounter;
    m.value = static_cast<double>(value);
    out.push_back(std::move(m));
  };
  counter("flb.he.encrypts", op_cells_.encrypts.load(std::memory_order_relaxed));
  counter("flb.he.decrypts", op_cells_.decrypts.load(std::memory_order_relaxed));
  counter("flb.he.hom_adds", op_cells_.hom_adds.load(std::memory_order_relaxed));
  counter("flb.he.scalar_muls", op_cells_.scalar_muls.load(std::memory_order_relaxed));
  counter("flb.he.values_encrypted", op_cells_.values_encrypted.load(std::memory_order_relaxed));
  counter("flb.he.values_decrypted", op_cells_.values_decrypted.load(std::memory_order_relaxed));
  // Fixed-width kernel limb width the n^2 context dispatched to (0 = the
  // generic path — modeled mode, odd widths, or FLB_FIXED_KERNELS=0).
  obs::MetricValue m;
  m.name = "flb.he.fixed_kernel_width";
  m.labels = labels;
  m.type = obs::MetricType::kGauge;
  m.value = paillier_.has_value()
                ? static_cast<double>(
                      paillier_->eval().n2_ctx().fixed_kernel_width())
                : 0.0;
  out.push_back(std::move(m));
}

}  // namespace flb::core
