// HeService: the FLBooster platform's HE facade, binding together the key
// material, the execution engine (CPU vs simulated GPU), the
// Encoding-Quantization module, and Batch Compression.
//
// Two encrypted-vector layouts are supported:
//
//  * Packed-sum (Quantizer + BatchCompressor): the transport layout for
//    vectors that only ever get added slot-wise across parties — gradient
//    aggregation (Homo LR), forward-score aggregation. Under BC, n values
//    share one ciphertext; otherwise one value per ciphertext.
//
//  * Fixed-point (FixedPointCodec): per-value ciphertexts hetero protocols
//    scalar-multiply and selectively sum (SecureBoost histograms, Hetero LR
//    gradient legs, the Hetero NN interactive layer). Under BC, *computed*
//    fixed-point ciphertext vectors are compressed before transmission by
//    cipher-space packing (SecureBoost+-style shift-and-add: each ciphertext
//    is scalar-multiplied by 2^(slot offset) and offset-shifted to make the
//    value non-negative, then all are homomorphically summed into one
//    ciphertext) — so BC applies even to ciphertexts the sender cannot
//    re-encrypt.
//
// Execution modes:
//  * Real (default): genuine Paillier over the configured key size; results
//    are cryptographically exact. Tests, examples, and small benches.
//  * Modeled: the arithmetic runs on the *encoded plaintexts* (the
//    quantize/pack/fixed-point math is still real, so model convergence is
//    identical), while time, op counts, and bytes are charged exactly as the
//    real engine would. Epoch-scale benches use this (DESIGN.md §1).

#ifndef FLB_CORE_HE_SERVICE_H_
#define FLB_CORE_HE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/codec/batch_compressor.h"
#include "src/codec/fixed_point.h"
#include "src/codec/quantizer.h"
#include "src/common/deadline.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/thread_pool.h"
#include "src/core/cost_model.h"
#include "src/core/engine_config.h"
#include "src/crypto/paillier.h"
#include "src/ghe/ghe_engine.h"
#include "src/mpint/bigint.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::core {

using mpint::BigInt;

enum class EncLayout : int {
  kPackedSum = 0,   // quantized slots, additive aggregation only
  kFixedPoint = 1,  // signed fixed-point residues, per-value homomorphic math
};

// An encrypted (or, in modeled mode, plaintext-shadowed) vector.
struct EncVec {
  EncLayout layout = EncLayout::kPackedSum;
  size_t count = 0;           // logical double values represented
  int slots_per_cipher = 1;   // >1 means packed/compressed
  int contributors = 1;       // packed-sum: additive contributions per slot
  int scale_muls = 0;         // fixed-point: accumulated scale multiplications
  int fp_slot_bits = 0;       // fixed-point compressed: slot width (0 = not)
  bool modeled = false;       // data holds encoded plaintexts, not ciphertexts
  std::vector<BigInt> data;

  size_t num_ciphertexts() const { return data.size(); }
};

struct HeServiceOptions {
  EngineKind engine = EngineKind::kFlBooster;
  int key_bits = 1024;
  // Encoding-Quantization parameters (paper defaults: r + b = 32).
  int r_bits = 30;
  int participants = 4;
  double alpha = 1.0;
  // Fixed-point fractional bits for per-value legs.
  int frac_bits = 24;
  // Cipher-space compression slot width (0 = derive: 2*frac_bits + 16).
  int fp_compress_slot_bits = 0;
  // Plaintext-shadow execution (see header comment).
  bool modeled = false;
  uint64_t seed = 20230401;
  CpuCostModel cpu_cost;
  // Device streams for the GPU engine's chunked copy/compute overlap.
  // 0 = take the engine default (EngineTraits::gpu_streams).
  int gpu_streams = 0;
  // Chunks per stream for the chunked schedule (GheConfig::
  // chunks_per_stream). 0 = engine default (1).
  int ghe_chunks_per_stream = 0;
  // Batch-compression override: -1 = engine trait (EngineTraits::use_bc),
  // 0 = force off, 1 = force on. A knob because compression trades HE
  // packing work against transmitted bytes — which side wins depends on
  // the workload's compute/network balance.
  int use_bc = -1;
  // Host worker threads for element-parallel HE bodies. > 0 makes the
  // service own a private pool of that size; 0 defers to the engine trait,
  // and when that is also 0, to the process-global pool (FLB_HOST_THREADS).
  // Bit-identical results at any value — only wall-clock time changes.
  int host_threads = 0;
  // Dispatch the fixed-width Montgomery kernels for this key's contexts
  // (src/mpint/fixed_kernels.h). Results are bit-identical either way;
  // false keeps the generic radix-2^32 limb path (the differential oracle).
  bool use_fixed_width_kernels = true;
};

struct HeOpCounts {
  uint64_t encrypts = 0;
  uint64_t decrypts = 0;
  uint64_t hom_adds = 0;
  uint64_t scalar_muls = 0;
  // Logical double values that passed through Encrypt/Decrypt (the paper's
  // "instances" for Table IV throughput).
  uint64_t values_encrypted = 0;
  uint64_t values_decrypted = 0;
};

class HeService : public obs::MetricsSource {
 public:
  // Generates fresh keys (real mode) or a synthetic modulus (modeled mode).
  // `clock` may be null; `device` is required when the engine runs on GPU.
  static Result<std::unique_ptr<HeService>> Create(
      const HeServiceOptions& options, SimClock* clock,
      std::shared_ptr<gpusim::Device> device);

  // Optional run-wide deadline: when set and expired, the batch entry
  // points below return typed kDeadlineExceeded before doing any work, so
  // a budget-bounded run never starts another multi-second HE batch with
  // the budget already spent. Inert when unset (the default).
  void set_run_deadline(const common::Deadline* deadline) {
    run_deadline_ = deadline;
  }

  const HeServiceOptions& options() const { return options_; }
  EngineKind engine() const { return options_.engine; }
  const EngineTraits& traits() const { return traits_; }
  bool modeled() const { return options_.modeled; }
  const codec::Quantizer& quantizer() const { return quantizer_; }
  const codec::FixedPointCodec& fixed_point() const { return *fp_codec_; }
  // Slots per ciphertext on the packed-sum path (1 when BC is off).
  int pack_slots() const;
  // Serialized ciphertext width in 32-bit words.
  size_t CiphertextWords() const;
  // The modulus n (plaintext space).
  const BigInt& modulus() const { return n_; }

  // ---- Packed-sum path -------------------------------------------------------
  Result<EncVec> EncryptValues(const std::vector<double>& values);
  Result<EncVec> AddCipher(const EncVec& a, const EncVec& b);
  // Slot-wise addition of the caller's own plaintext values (one
  // "contribution"): used when a party folds its share into a received
  // ciphertext without encrypting separately.
  Result<EncVec> AddPlainValues(const EncVec& c,
                                const std::vector<double>& values);
  // Decrypts and decodes; `c.contributors` slot contributions are assumed.
  Result<std::vector<double>> DecryptValues(const EncVec& c);

  // ---- Fixed-point path ------------------------------------------------------
  Result<EncVec> EncryptFixedPoint(const std::vector<double>& values);
  Result<EncVec> AddFixedPoint(const EncVec& a, const EncVec& b);
  // Elementwise E(v_i) * w_i for signed double weights.
  Result<EncVec> ScalarMulFixedPoint(const EncVec& c,
                                     const std::vector<double>& weights);
  // out_j = sum over (index, weight) terms of E(v_index) * weight — the
  // encrypted-gradient / encrypted-histogram primitive. All outputs must
  // draw from the same EncVec.
  struct WeightedTerm {
    uint32_t index;
    double weight;
  };
  Result<EncVec> WeightedSums(
      const EncVec& c, const std::vector<std::vector<WeightedTerm>>& groups);
  // Pure selective sums (SecureBoost buckets): weights implicitly 1.
  Result<EncVec> SelectiveSums(
      const EncVec& c, const std::vector<std::vector<uint32_t>>& groups);
  Result<std::vector<double>> DecryptFixedPoint(const EncVec& c);

  // ---- Batch compression, cipher-space (BC module, part 2) -------------------
  // Packs an unpacked fixed-point EncVec into ~count/slots ciphertexts by
  // homomorphic shift-and-add. Values must satisfy
  // |v| * 2^(f*(1+scale_muls)) < 2^(slot_bits-1). No-op (returns a copy)
  // when BC is disabled for this engine.
  Result<EncVec> CompressForTransmission(const EncVec& c);

  // Wire size of an EncVec in bytes (what Network::Send will carry).
  size_t WireBytes(const EncVec& c) const;

  // Snapshot of the live counters. The trainer thread does all the
  // counting; the metrics scrape thread (obs::ObsServer) reads
  // concurrently, so the cells are relaxed atomics — each counter is
  // exact, cross-counter consistency only at batch boundaries.
  HeOpCounts op_counts() const {
    HeOpCounts counts;
    counts.encrypts = op_cells_.encrypts.load(std::memory_order_relaxed);
    counts.decrypts = op_cells_.decrypts.load(std::memory_order_relaxed);
    counts.hom_adds = op_cells_.hom_adds.load(std::memory_order_relaxed);
    counts.scalar_muls =
        op_cells_.scalar_muls.load(std::memory_order_relaxed);
    counts.values_encrypted =
        op_cells_.values_encrypted.load(std::memory_order_relaxed);
    counts.values_decrypted =
        op_cells_.values_decrypted.load(std::memory_order_relaxed);
    return counts;
  }
  void ResetOpCounts() {
    op_cells_.encrypts.store(0, std::memory_order_relaxed);
    op_cells_.decrypts.store(0, std::memory_order_relaxed);
    op_cells_.hom_adds.store(0, std::memory_order_relaxed);
    op_cells_.scalar_muls.store(0, std::memory_order_relaxed);
    op_cells_.values_encrypted.store(0, std::memory_order_relaxed);
    op_cells_.values_decrypted.store(0, std::memory_order_relaxed);
  }

  // obs::MetricsSource: HeOpCounts exposed through the unified registry.
  void CollectMetrics(std::vector<obs::MetricValue>& out) const override;
  void ResetMetrics() override { ResetOpCounts(); }

  // The GPU engine backing this service, or null for CPU engines. Exposed
  // for stream retargeting and batch-scheduling telemetry.
  ghe::GheEngine* ghe_engine() { return ghe_.get(); }
  const ghe::GheEngine* ghe_engine() const { return ghe_.get(); }

  // The host pool HE batch bodies run on (private or process-global).
  common::ThreadPool& host_pool() const { return *host_pool_; }

 private:
  HeService(const HeServiceOptions& options, SimClock* clock,
            std::shared_ptr<gpusim::Device> device, codec::Quantizer quantizer);

  // Charges CPU or GPU time for a batch of ops described by total limb work.
  void ChargeBatch(const char* kind, int64_t count, uint64_t limb_ops_per_elt,
                   size_t bytes_in, size_t bytes_out);
  // CPU-path charge with a matching trace span (real CPU engines).
  void ChargeCpu(const char* kind, uint64_t count, uint64_t limb_ops_per_elt);
  Status CheckLayout(const EncVec& v, EncLayout expected,
                     const char* op) const;
  Status CheckDeadline(const char* op) const {
    return run_deadline_ == nullptr ? Status::OK() : run_deadline_->Check(op);
  }
  int fp_compress_slot_bits() const;
  // Exponent width of a fixed-point scalar multiplication. Weights are
  // O(1) after clipping, so |round(w * 2^f)| has ~frac_bits+10 bits;
  // negative scalars cost the same via the ciphertext-inverse path (see
  // crypto::PaillierContext::ScalarMul).
  int EffectiveScalarBits() const { return options_.frac_bits + 10; }

  HeServiceOptions options_;
  EngineTraits traits_;
  SimClock* clock_;
  const common::Deadline* run_deadline_ = nullptr;
  std::shared_ptr<gpusim::Device> device_;
  // Private pool when options_.host_threads > 0; otherwise host_pool_ points
  // at the process-global pool. Declared before ghe_ so the engine (which
  // borrows the pool) is destroyed first.
  std::unique_ptr<common::ThreadPool> owned_pool_;
  common::ThreadPool* host_pool_ = nullptr;
  std::unique_ptr<ghe::GheEngine> ghe_;

  codec::Quantizer quantizer_;
  std::optional<codec::BatchCompressor> compressor_;
  std::unique_ptr<codec::FixedPointCodec> fp_codec_;

  // Real mode only.
  std::optional<crypto::PaillierContext> paillier_;
  BigInt n_;
  BigInt n_squared_;
  Rng rng_;

  // Live op counters (see op_counts() for the threading contract).
  struct OpCells {
    std::atomic<uint64_t> encrypts{0};
    std::atomic<uint64_t> decrypts{0};
    std::atomic<uint64_t> hom_adds{0};
    std::atomic<uint64_t> scalar_muls{0};
    std::atomic<uint64_t> values_encrypted{0};
    std::atomic<uint64_t> values_decrypted{0};
  };
  OpCells op_cells_;

  // Registers the op counts with the global MetricsRegistry for the
  // service's lifetime (declared last: registration after the counts exist).
  obs::ScopedMetricsSource metrics_registration_{this};
};

}  // namespace flb::core

#endif  // FLB_CORE_HE_SERVICE_H_
