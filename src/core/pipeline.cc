#include "src/core/pipeline.h"

#include <algorithm>

#include "src/gpusim/device.h"

namespace flb::core {

namespace {

Status ValidateStages(const std::vector<PipelineStage>& stages, int chunks) {
  if (stages.empty()) {
    return Status::InvalidArgument("pipeline: no stages");
  }
  if (chunks < 1) {
    return Status::InvalidArgument("pipeline: chunks must be >= 1");
  }
  for (const auto& stage : stages) {
    if (stage.seconds < 0) {
      return Status::InvalidArgument("pipeline: negative stage time '" +
                                     stage.name + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<double> PipelineSchedule::OverlappedSeconds(
    const std::vector<PipelineStage>& stages, int chunks) {
  FLB_RETURN_IF_ERROR(ValidateStages(stages, chunks));
  double fill = 0.0, bottleneck = 0.0;
  for (const auto& stage : stages) {
    fill += stage.seconds;
    bottleneck = std::max(bottleneck, stage.seconds);
  }
  return fill + (chunks - 1) * bottleneck;
}

Result<double> PipelineSchedule::SerialSeconds(
    const std::vector<PipelineStage>& stages, int chunks) {
  FLB_RETURN_IF_ERROR(ValidateStages(stages, chunks));
  double per_chunk = 0.0;
  for (const auto& stage : stages) per_chunk += stage.seconds;
  return per_chunk * chunks;
}

Result<PipelineStage> PipelineSchedule::Bottleneck(
    const std::vector<PipelineStage>& stages) {
  FLB_RETURN_IF_ERROR(ValidateStages(stages, 1));
  const PipelineStage* worst = &stages[0];
  for (const auto& stage : stages) {
    if (stage.seconds > worst->seconds) worst = &stage;
  }
  return *worst;
}

namespace {

// Builds the Fig. 4 stage chain for one chunk of a batched op.
Result<PipelinedModelResult> BuildChain(ghe::GheEngine& engine, int key_bits,
                                        int64_t count, int chunks,
                                        bool encrypt) {
  if (count < 1) {
    return Status::InvalidArgument("PipelinedModel: empty batch");
  }
  chunks = std::max(1, std::min<int>(chunks, static_cast<int>(count)));
  const int64_t chunk = (count + chunks - 1) / chunks;
  const gpusim::DeviceSpec& spec = engine.device().spec();
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;

  PipelinedModelResult result;
  result.chunks = chunks;
  const double host_rate = 2.0e9;  // host-side limb/copy ops per second
  // Encryption stages half-width plaintexts in; addition moves two
  // full-width ciphertexts in and one out.
  const size_t in_bytes = encrypt ? chunk * (s2 / 2) * 4 : chunk * s2 * 8;
  const size_t out_bytes = chunk * s2 * 4;

  // Kernel time for one chunk via the device model (stats only; the reset
  // keeps this modeling pass out of the engine's cumulative telemetry).
  // Streams are pinned to 1 so the chunk prices as a single launch, then
  // restored for the device-timeline measurement below.
  const int prev_streams = engine.config().streams;
  engine.device().ResetStats();
  engine.set_streams(1);
  gpusim::LaunchResult launch;
  if (encrypt) {
    FLB_ASSIGN_OR_RETURN(launch, engine.ModelPaillierEncrypt(key_bits, chunk));
  } else {
    FLB_ASSIGN_OR_RETURN(launch, engine.ModelPaillierAdd(key_bits, chunk));
  }

  // Device-timeline measurement: the whole batch through the engine's real
  // execution path, serial vs chunked across streams.
  if (encrypt) {
    FLB_RETURN_IF_ERROR(
        engine.ModelPaillierEncrypt(key_bits, count).status());
  } else {
    FLB_RETURN_IF_ERROR(engine.ModelPaillierAdd(key_bits, count).status());
  }
  result.device_serial_seconds = engine.last_batch().makespan_seconds;
  engine.set_streams(chunks);
  if (encrypt) {
    FLB_RETURN_IF_ERROR(
        engine.ModelPaillierEncrypt(key_bits, count).status());
  } else {
    FLB_RETURN_IF_ERROR(engine.ModelPaillierAdd(key_bits, count).status());
  }
  result.device_async_seconds = engine.last_batch().makespan_seconds;
  result.streams_used =
      engine.last_batch().async ? engine.last_batch().streams : 1;
  engine.set_streams(prev_streams);
  engine.device().ResetStats();

  result.stages_per_chunk = {
      {"convert", chunk * 8.0 / host_rate},
      {"encode+pack", encrypt ? chunk * (s2 / 2.0) / host_rate : 0.0},
      {"h2d", spec.pcie_latency_sec +
                  in_bytes / spec.pcie_bandwidth_bytes_per_sec},
      {"kernel", launch.sim_seconds},
      {"d2h", spec.pcie_latency_sec +
                  out_bytes / spec.pcie_bandwidth_bytes_per_sec},
      {"unconvert", chunk * 8.0 / host_rate},
  };
  FLB_ASSIGN_OR_RETURN(result.serial_seconds,
                       PipelineSchedule::SerialSeconds(
                           result.stages_per_chunk, chunks));
  FLB_ASSIGN_OR_RETURN(result.overlapped_seconds,
                       PipelineSchedule::OverlappedSeconds(
                           result.stages_per_chunk, chunks));
  result.speedup = result.serial_seconds / result.overlapped_seconds;
  return result;
}

}  // namespace

Result<PipelinedModelResult> PipelinedModel::Encrypt(ghe::GheEngine& engine,
                                                     int key_bits,
                                                     int64_t count,
                                                     int chunks) {
  return BuildChain(engine, key_bits, count, chunks, /*encrypt=*/true);
}

Result<PipelinedModelResult> PipelinedModel::HomAdd(ghe::GheEngine& engine,
                                                    int key_bits,
                                                    int64_t count,
                                                    int chunks) {
  return BuildChain(engine, key_bits, count, chunks, /*encrypt=*/false);
}

}  // namespace flb::core
