// Pipelined data processing (paper §V, Fig. 4).
//
// FLBooster moves every HE batch through a fixed stage chain:
//
//   (1) data conversion        (host)   — FL-framework objects -> raw arrays
//   (2) processing/compression (host)   — encode, quantize, pad, pack
//   (3) H2D copy               (PCIe)
//   (4) kernel                 (device) — the HE computation
//   (5) D2H copy               (PCIe)
//   (6) unpack/decode          (host)
//   (7) data conversion back   (host)
//
// Large batches are cut into chunks so stage i of chunk c overlaps stage
// i-1 of chunk c+1 (host preprocessing, the two PCIe directions, and the
// kernel run on different engines). Total latency follows the classic
// pipeline formula:
//
//   T = sum(stage times of one chunk) + (chunks - 1) * max(stage time)
//
// PipelineSchedule is the pure math (unit-testable); PipelinedModel applies
// it to the HE op shapes so benches can quantify what §V's pipelining buys
// over serial staging.

#ifndef FLB_CORE_PIPELINE_H_
#define FLB_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/ghe/ghe_engine.h"

namespace flb::core {

struct PipelineStage {
  std::string name;
  double seconds = 0.0;  // duration for ONE chunk
};

class PipelineSchedule {
 public:
  // Total time when the stages of consecutive chunks overlap.
  // chunks >= 1; stage list must be non-empty.
  static Result<double> OverlappedSeconds(
      const std::vector<PipelineStage>& stages, int chunks);
  // Total time with no overlap (every chunk runs every stage serially).
  static Result<double> SerialSeconds(const std::vector<PipelineStage>& stages,
                                      int chunks);
  // The stage that bounds steady-state throughput.
  static Result<PipelineStage> Bottleneck(
      const std::vector<PipelineStage>& stages);
};

// The Fig. 4 stage chain for one Paillier batch operation, built from the
// same cost formulas the engine charges.
struct PipelinedModelResult {
  std::vector<PipelineStage> stages_per_chunk;
  double serial_seconds = 0.0;
  double overlapped_seconds = 0.0;
  double speedup = 1.0;
  int chunks = 1;
  // The same batch executed on the device's stream timeline (the engine's
  // actual async path) rather than the closed-form stage formula: one
  // launch at 1 stream vs chunked across `streams_used` streams. The
  // closed-form numbers above also overlap the host stages; these two only
  // overlap H2D/kernel/D2H, so device_async_seconds >= overlapped_seconds.
  double device_serial_seconds = 0.0;
  double device_async_seconds = 0.0;
  int streams_used = 1;
};

class PipelinedModel {
 public:
  // Models a batched encryption of `count` plaintexts at `key_bits`,
  // chunked `chunks` ways, on the given engine configuration. Encryption is
  // kernel-bound, so overlap buys little — included for honesty.
  static Result<PipelinedModelResult> Encrypt(ghe::GheEngine& engine,
                                              int key_bits, int64_t count,
                                              int chunks);
  // Models a batched homomorphic addition — cheap kernels moving full-width
  // ciphertexts, so the PCIe stages dominate and pipelining overlaps the
  // two copy directions with compute (where Fig. 4's chunking pays off).
  static Result<PipelinedModelResult> HomAdd(ghe::GheEngine& engine,
                                             int key_bits, int64_t count,
                                             int chunks);
};

}  // namespace flb::core

#endif  // FLB_CORE_PIPELINE_H_
