#include "src/core/platform.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "src/common/env.h"
#include "src/core/tuner.h"
#include "src/fl/hetero_lr.h"
#include "src/fl/homo_lr.h"
#include "src/fl/partition.h"
#include "src/obs/host_profiler.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_server.h"
#include "src/obs/run_status.h"
#include "src/obs/trace.h"

namespace flb::core {

std::string ModelName(FlModelKind kind) {
  switch (kind) {
    case FlModelKind::kHomoLr:
      return "Homo LR";
    case FlModelKind::kHeteroLr:
      return "Hetero LR";
    case FlModelKind::kHeteroSbt:
      return "Hetero SBT";
    case FlModelKind::kHeteroNn:
      return "Hetero NN";
    case FlModelKind::kHomoNn:
      return "Homo NN";
  }
  return "unknown";
}

Result<RunReport> Platform::Run(const PlatformConfig& config) {
  // Live inspection plane: env-gated HTTP server (or forced by obs_port)
  // plus the wall profiler. Both are pure observers — same-seed runs are
  // bit-identical with them on or off.
  obs::ObsServer::EnsureGlobalFromEnv(config.obs_port);
  obs::HostProfiler::EnableFromEnv();

  // One coherent timeline per run: grid drivers call Run many times, each
  // with a fresh SimClock starting at 0, so stale events from earlier runs
  // would overlap the new ones. The exported trace is the last run's.
  auto& recorder = obs::TraceRecorder::Global();
  if (recorder.enabled()) recorder.Clear();

  if (config.auto_tune || common::Env::Flag("FLB_AUTO_TUNE")) {
    FLB_ASSIGN_OR_RETURN(const PlatformConfig tuned,
                         tune::AutoTuner::TunedConfig(config));
    return RunImpl(tuned, /*probe=*/false);
  }
  return RunImpl(config, /*probe=*/false);
}

Result<RunReport> Platform::RunForTuning(const PlatformConfig& config) {
  return RunImpl(config, /*probe=*/true);
}

Result<RunReport> Platform::RunImpl(const PlatformConfig& config,
                                    const bool probe) {
  if (config.num_parties < 1) {
    return Status::InvalidArgument("Platform: num_parties must be >= 1");
  }
  const EngineTraits traits = TraitsFor(config.engine);
  auto& recorder = obs::TraceRecorder::Global();

  auto clock = std::make_unique<SimClock>();
  std::shared_ptr<gpusim::Device> device;
  if (traits.gpu_he) {
    device = std::make_shared<gpusim::Device>(gpusim::DeviceSpec::Rtx3090(),
                                              clock.get(),
                                              traits.branch_combining);
  }
  net::Network network(config.link, clock.get());

  // Chaos mode: an explicit plan in the config wins; else the
  // FLB_FAULT_PLAN environment variable (read fresh on every run so test
  // fixtures can set/unset it). An active plan attaches the fault injector
  // and reroutes all traffic through a reliable channel.
  std::string fault_spec = config.fault_plan;
  if (fault_spec.empty() && !probe) {
    fault_spec = common::Env::Str("FLB_FAULT_PLAN");
  }
  // The run-wide deadline. Lives on this frame; every component holds a
  // plain pointer and treats the default-constructed (infinite) case as
  // free — clean runs keep bit-identical accounting.
  const common::Deadline run_deadline =
      common::Deadline::After(clock.get(), config.run_deadline_sec);
  if (!run_deadline.infinite()) network.set_deadline(&run_deadline);

  std::unique_ptr<net::FaultInjector> injector;
  std::unique_ptr<net::ReliableChannel> reliable;
  std::unique_ptr<net::CircuitBreaker> breaker;
  if (!fault_spec.empty()) {
    FLB_ASSIGN_OR_RETURN(net::FaultPlan plan,
                         net::FaultPlan::Parse(fault_spec));
    injector = std::make_unique<net::FaultInjector>(std::move(plan),
                                                    clock.get());
    // Retry options: config base, overridable via FLB_NET_RETRY.
    FLB_ASSIGN_OR_RETURN(net::ReliableOptions reliable_opts,
                         net::ReliableOptions::FromEnv(config.reliable));
    // Same mixing as the breaker: RTO jitter is a pure function of
    // (run seed, link, message, attempt).
    reliable_opts.jitter_seed ^= config.seed;
    reliable = std::make_unique<net::ReliableChannel>(&network,
                                                      reliable_opts);
    net::BreakerOptions breaker_opts = config.breaker;
    // Mix the run seed into the breaker's jitter stream so same-seed runs
    // reproduce the same open windows (config.breaker.seed still offsets
    // the stream when a caller wants a different one).
    breaker_opts.seed ^= config.seed;
    breaker = std::make_unique<net::CircuitBreaker>(breaker_opts,
                                                    clock.get());
    reliable->set_breaker(breaker.get());
    if (!run_deadline.infinite()) reliable->set_run_deadline(&run_deadline);
    network.set_fault_injector(injector.get());
    network.set_reliable_channel(reliable.get());
  }

  const int parties =
      config.model == FlModelKind::kHeteroNn ? 2 : config.num_parties;

  const obs::Track run_track = recorder.RegisterTrack("platform", "run");
  const double setup_start = clock->Now();

  if (!probe) {
    obs::RunInfo run_info;
    run_info.engine = EngineName(config.engine);
    run_info.model = ModelName(config.model);
    run_info.key_bits = config.key_bits;
    run_info.parties = parties;
    run_info.seed = config.seed;
    obs::RunStatus::Global().BeginRun(run_info);
  }

  HeServiceOptions he_opts;
  he_opts.engine = config.engine;
  he_opts.key_bits = config.key_bits;
  he_opts.r_bits = config.r_bits;
  he_opts.participants = parties;
  he_opts.alpha = config.alpha;
  he_opts.frac_bits = config.frac_bits;
  he_opts.fp_compress_slot_bits = config.fp_compress_slot_bits;
  he_opts.modeled = config.modeled;
  he_opts.seed = config.seed;
  he_opts.gpu_streams = config.gpu_streams;
  he_opts.ghe_chunks_per_stream = config.ghe_chunks_per_stream;
  he_opts.use_bc = config.use_bc;
  he_opts.host_threads = config.host_threads;
  he_opts.use_fixed_width_kernels = config.use_fixed_width_kernels;
  FLB_ASSIGN_OR_RETURN(auto he,
                       HeService::Create(he_opts, clock.get(), device));
  if (!run_deadline.infinite()) he->set_run_deadline(&run_deadline);

  FLB_ASSIGN_OR_RETURN(fl::Dataset dataset,
                       fl::GenerateDataset(config.dataset));

  fl::FlSession session;
  session.he = he.get();
  session.network = &network;
  session.clock = clock.get();
  session.faults = injector.get();
  if (!run_deadline.infinite()) session.deadline = &run_deadline;

  if (recorder.enabled()) {
    recorder.Span(run_track, "platform.setup", "platform", setup_start,
                  clock->Now(),
                  {obs::Arg("engine", EngineName(config.engine)),
                   obs::Arg("model", ModelName(config.model)),
                   obs::Arg("key_bits", config.key_bits),
                   obs::Arg("parties", parties)});
  }
  const double train_start = clock->Now();
  if (!probe) obs::RunStatus::Global().SetPhase("train");

  RunReport report;
  switch (config.model) {
    case FlModelKind::kHomoLr: {
      FLB_ASSIGN_OR_RETURN(auto shards,
                           fl::HorizontalSplit(dataset, parties));
      fl::HomoLrTrainer trainer(std::move(shards), session, config.train);
      FLB_ASSIGN_OR_RETURN(report.train, trainer.Train());
      break;
    }
    case FlModelKind::kHeteroLr: {
      FLB_ASSIGN_OR_RETURN(auto partition,
                           fl::VerticalSplit(dataset, parties));
      fl::HeteroLrTrainer trainer(std::move(partition), session,
                                  config.train);
      FLB_ASSIGN_OR_RETURN(report.train, trainer.Train());
      break;
    }
    case FlModelKind::kHeteroSbt: {
      FLB_ASSIGN_OR_RETURN(auto partition,
                           fl::VerticalSplit(dataset, parties));
      fl::HeteroSbtTrainer trainer(std::move(partition), session,
                                   config.train, config.sbt);
      FLB_ASSIGN_OR_RETURN(report.train, trainer.Train());
      break;
    }
    case FlModelKind::kHeteroNn: {
      FLB_ASSIGN_OR_RETURN(auto partition, fl::VerticalSplit(dataset, 2));
      fl::HeteroNnTrainer trainer(std::move(partition), session,
                                  config.train, config.nn);
      FLB_ASSIGN_OR_RETURN(report.train, trainer.Train());
      break;
    }
    case FlModelKind::kHomoNn: {
      FLB_ASSIGN_OR_RETURN(auto shards,
                           fl::HorizontalSplit(dataset, parties));
      fl::HomoNnTrainer trainer(std::move(shards), session, config.train,
                                config.homo_nn);
      FLB_ASSIGN_OR_RETURN(report.train, trainer.Train());
      break;
    }
  }

  if (recorder.enabled()) {
    recorder.Span(run_track, "platform.train", "platform", train_start,
                  clock->Now(), {obs::Arg("model", ModelName(config.model))});
  }

  report.total_seconds = clock->Now();
  report.he_seconds = clock->HeSeconds();
  report.comm_seconds = clock->CommSeconds();
  report.other_seconds = clock->OtherSeconds();
  report.comm_bytes = network.stats().bytes;
  report.comm_messages = network.stats().messages;
  report.he_ops = he->op_counts();
  const uint64_t he_values =
      report.he_ops.values_encrypted + report.he_ops.values_decrypted;
  report.he_throughput =
      report.he_seconds > 0 ? he_values / report.he_seconds : 0.0;
  if (device != nullptr) {
    report.sm_utilization = device->stats().MeanSmUtilization();
  }
  if (report.he_ops.encrypts > 0) {
    report.pack_ratio = static_cast<double>(report.he_ops.values_encrypted) /
                        report.he_ops.encrypts;
  }
  report.robustness = report.train.robustness;
  if (injector != nullptr) report.fault_stats = injector->stats();
  if (reliable != nullptr) report.channel_stats = reliable->stats();
  if (breaker != nullptr) report.breaker_stats = breaker->stats();

  if (probe) return report;

  {
    // Final /status snapshot, pushed by value on the run thread (the HE op
    // struct is only safe to read here; see run_status.h).
    obs::RunTotals totals;
    totals.total_seconds = report.total_seconds;
    totals.he_seconds = report.he_seconds;
    totals.comm_seconds = report.comm_seconds;
    totals.comm_bytes = report.comm_bytes;
    totals.comm_messages = report.comm_messages;
    obs::HeOpsStatus he_status;
    he_status.encrypts = report.he_ops.encrypts;
    he_status.decrypts = report.he_ops.decrypts;
    he_status.hom_adds = report.he_ops.hom_adds;
    he_status.scalar_muls = report.he_ops.scalar_muls;
    he_status.values_encrypted = report.he_ops.values_encrypted;
    he_status.values_decrypted = report.he_ops.values_decrypted;
    obs::RunStatus::Global().EndRun(totals, he_status);
  }

  // Per-run report gauges: the last completed run for each (engine, model,
  // key) cell of a grid driver stays visible in the metrics snapshot.
  auto& metrics = obs::MetricsRegistry::Global();
  const std::string run_labels =
      "engine=" + EngineName(config.engine) +
      ",key_bits=" + std::to_string(config.key_bits) +
      ",model=" + ModelName(config.model);
  metrics.Set("flb.platform.total_seconds", report.total_seconds, run_labels);
  metrics.Set("flb.platform.he_seconds", report.he_seconds, run_labels);
  metrics.Set("flb.platform.comm_seconds", report.comm_seconds, run_labels);
  metrics.Set("flb.platform.other_seconds", report.other_seconds, run_labels);
  metrics.Set("flb.platform.comm_bytes",
              static_cast<double>(report.comm_bytes), run_labels);
  metrics.Set("flb.platform.he_throughput", report.he_throughput, run_labels);
  metrics.Set("flb.platform.sm_utilization", report.sm_utilization,
              run_labels);
  metrics.Set("flb.platform.pack_ratio", report.pack_ratio, run_labels);
  if (injector != nullptr) {
    metrics.Set("flb.platform.fault_injected",
                static_cast<double>(report.fault_stats.TotalInjected()),
                run_labels);
    metrics.Set("flb.platform.retransmits",
                static_cast<double>(report.channel_stats.retransmits),
                run_labels);
    metrics.Set("flb.platform.timeouts",
                static_cast<double>(report.channel_stats.timeouts),
                run_labels);
    metrics.Set("flb.platform.dropouts",
                static_cast<double>(report.robustness.TotalDropouts()),
                run_labels);
    metrics.Set("flb.platform.resumes",
                static_cast<double>(report.robustness.resumes), run_labels);
    metrics.Set("flb.resilience.breaker.trip_total",
                static_cast<double>(report.breaker_stats.trips), run_labels);
    metrics.Set("flb.resilience.quarantine_total",
                static_cast<double>(report.robustness.quarantines),
                run_labels);
    metrics.Set("flb.resilience.deadline_exceeded_total",
                static_cast<double>(report.robustness.deadline_exceeded),
                run_labels);
  }
  return report;
}

}  // namespace flb::core
