// FLBoosterPlatform: the top-level entry point (paper Fig. 3).
//
// One call wires together a dataset, a partitioning, an FL model, an engine
// configuration (FATE / HAFLO / FLBooster / ablations), the simulated GPU,
// the simulated network, and the simulated clock — then trains and returns
// the full measurement record the paper's tables are built from.

#ifndef FLB_CORE_PLATFORM_H_
#define FLB_CORE_PLATFORM_H_

#include <string>

#include "src/common/deadline.h"
#include "src/common/result.h"
#include "src/core/engine_config.h"
#include "src/core/he_service.h"
#include "src/fl/dataset.h"
#include "src/fl/fl_types.h"
#include "src/fl/hetero_nn.h"
#include "src/fl/hetero_sbt.h"
#include "src/fl/homo_nn.h"
#include "src/net/circuit_breaker.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"

namespace flb::core {

enum class FlModelKind : int {
  kHomoLr = 0,
  kHeteroLr = 1,
  kHeteroSbt = 2,
  kHeteroNn = 3,
  // Extension beyond the paper's four evaluated models: FedAvg with
  // encrypted model deltas (FATE's Homo NN workload class).
  kHomoNn = 4,
};

std::string ModelName(FlModelKind kind);

struct PlatformConfig {
  EngineKind engine = EngineKind::kFlBooster;
  FlModelKind model = FlModelKind::kHomoLr;
  fl::DatasetSpec dataset;
  int num_parties = 4;  // Hetero NN always uses 2 (guest + host)
  int key_bits = 1024;
  int r_bits = 30;
  double alpha = 1.0;
  // Fixed-point encoding for per-value legs and the cipher-compression slot
  // width (0 = auto). SBT histograms use narrower slots (their bucket sums
  // are small), which raises the compression ratio.
  int frac_bits = 24;
  int fp_compress_slot_bits = 0;
  bool modeled = true;  // plaintext-shadow HE (epoch benches); false = real
  fl::TrainConfig train;
  fl::SbtParams sbt;
  fl::NnParams nn;
  fl::HomoNnParams homo_nn;
  net::LinkSpec link = net::LinkSpec::GigabitEthernet();
  uint64_t seed = 20230401;
  // Device streams for chunked HE batch overlap. 0 = engine default
  // (4 for the FLBooster engines, 1 for the baselines).
  int gpu_streams = 0;
  // Host worker threads for element-parallel HE batch bodies. 0 = the
  // process-global pool (FLB_HOST_THREADS, then hardware_concurrency).
  // Results are bit-identical for any value; only wall-clock changes.
  int host_threads = 0;
  // Fault plan spec (net/fault.h grammar). Empty = consult FLB_FAULT_PLAN;
  // both empty = healthy run with the legacy raw transport. A non-empty
  // plan attaches a FaultInjector and routes all traffic through a
  // ReliableChannel (framing + ack/retransmit).
  std::string fault_plan;
  net::ReliableOptions reliable;
  // Per-link circuit breaker over the reliable channel (active only under
  // a fault plan, like the channel itself).
  net::BreakerOptions breaker;
  // Run-wide simulated-seconds budget. 0 = unbounded. When set, a
  // common::Deadline is threaded through the network, the HE service, and
  // the trainers; expiry surfaces as typed kDeadlineExceeded instead of a
  // run that drags on past the budget.
  double run_deadline_sec = 0;
  // Live-inspection HTTP server (obs::ObsServer). 0 = start only when
  // FLB_OBS_PORT is set in the environment; > 0 forces that port. The
  // server starts once per process and never changes run results.
  int obs_port = 0;

  // ---- Performance knobs the auto-tuner searches (src/core/tuner.h) ------
  // Each is also directly settable for a hand-tuned run; the tuner only
  // overwrites them on its effective copy of the config.
  //
  // Chunks per stream for the GHE chunked batch schedule. 0 = engine
  // default (1 chunk per stream).
  int ghe_chunks_per_stream = 0;
  // Batch-compression override: -1 = engine trait, 0 = force off,
  // 1 = force on.
  int use_bc = -1;
  // Dispatch the fixed-width Montgomery kernels (bit-identical results
  // either way; real-crypto wall-clock only).
  bool use_fixed_width_kernels = true;

  // ---- Auto-tuning -------------------------------------------------------
  // When true — or when FLB_AUTO_TUNE is set truthy in the environment —
  // Platform::Run first resolves the knobs above through tune::AutoTuner:
  // analytic (Eq. 10) warm start, a few simulated warm-up probes,
  // deterministic successive halving, and a per-workload TuningCache so
  // repeated runs skip the search. Off by default: the untuned path is
  // byte-identical to a build without the tuner.
  bool auto_tune = false;
  // Disk path for the TuningCache ("" = FLB_TUNER_CACHE environment
  // variable; both empty = in-memory cache only, scoped to the process).
  std::string tuner_cache;
};

struct RunReport {
  fl::TrainResult train;
  // Whole-run decomposition (simulated seconds).
  double total_seconds = 0;
  double he_seconds = 0;
  double comm_seconds = 0;
  double other_seconds = 0;
  uint64_t comm_bytes = 0;
  uint64_t comm_messages = 0;
  HeOpCounts he_ops;
  // Values through HE per HE-second (Table IV's instances/second).
  double he_throughput = 0;
  // Work-weighted SM utilization (Fig. 6; 0 for CPU engines).
  double sm_utilization = 0;
  // Pre-encryption packing ratio actually achieved: values encrypted per
  // ciphertext produced (Fig. 7 input).
  double pack_ratio = 1.0;
  // Chaos-run accounting (all zero without a fault plan).
  fl::RobustnessCounters robustness;
  net::FaultStats fault_stats;
  net::ChannelStats channel_stats;
  net::BreakerStats breaker_stats;

  double SecondsPerEpoch() const {
    return train.epochs.empty() ? 0.0
                                : total_seconds / train.epochs.size();
  }
};

class Platform {
 public:
  // Builds the whole stack, trains, and reports. Deterministic for a fixed
  // config. With auto_tune (or FLB_AUTO_TUNE) set, resolves the performance
  // knobs through tune::AutoTuner first, then runs with the chosen config.
  static Result<RunReport> Run(const PlatformConfig& config);

  // Tuner probe entry point: one measurement run with the knobs exactly as
  // given. Skips every global side effect Run performs — trace reset,
  // RunStatus lifecycle, per-run gauges, FLB_FAULT_PLAN/FLB_AUTO_TUNE env
  // pickup — so warm-up probes never perturb the observable state of the
  // real run. Charged accounting is identical to Run with the same config.
  static Result<RunReport> RunForTuning(const PlatformConfig& config);

 private:
  static Result<RunReport> RunImpl(const PlatformConfig& config, bool probe);
};

}  // namespace flb::core

#endif  // FLB_CORE_PLATFORM_H_
