#include "src/core/transport.h"

#include "src/net/serializer.h"

namespace flb::core {

Status SendEncVec(net::Network* network, const HeService& he,
                  const std::string& from, const std::string& to,
                  const std::string& topic, const EncVec& vec) {
  net::Serializer s;
  s.PutU32(static_cast<uint32_t>(vec.layout));
  s.PutU64(vec.count);
  s.PutU32(static_cast<uint32_t>(vec.slots_per_cipher));
  s.PutU32(static_cast<uint32_t>(vec.contributors));
  s.PutU32(static_cast<uint32_t>(vec.scale_muls));
  s.PutU32(static_cast<uint32_t>(vec.fp_slot_bits));
  s.PutU32(vec.modeled ? 1 : 0);
  // Real ciphertexts ship fixed-width (their true footprint); modeled
  // shadows ship variable-width and are padded below, so both execution
  // modes put exactly WireBytes() on the wire.
  const uint32_t cipher_words =
      vec.modeled ? 0 : static_cast<uint32_t>(he.CiphertextWords());
  s.PutU32(cipher_words);
  s.PutU32(static_cast<uint32_t>(vec.data.size()));
  for (const auto& c : vec.data) {
    if (cipher_words > 0) {
      s.PutBigIntFixed(c, cipher_words);
    } else {
      s.PutBigInt(c);
    }
  }
  std::vector<uint8_t> payload = s.TakeBytes();
  const size_t wire = he.WireBytes(vec);
  if (payload.size() < wire) payload.resize(wire, 0);
  return network->Send(from, to, topic, std::move(payload),
                       /*objects=*/vec.data.size());
}

Result<EncVec> RecvEncVec(net::Network* network, const std::string& to,
                          const std::string& topic) {
  FLB_ASSIGN_OR_RETURN(net::Message msg, network->Receive(to, topic));
  net::Deserializer d(msg.payload);
  EncVec vec;
  FLB_ASSIGN_OR_RETURN(uint32_t layout, d.GetU32());
  if (layout > 1) {
    return Status::InvalidArgument("RecvEncVec: bad layout tag");
  }
  vec.layout = static_cast<EncLayout>(layout);
  FLB_ASSIGN_OR_RETURN(uint64_t count, d.GetU64());
  vec.count = count;
  FLB_ASSIGN_OR_RETURN(uint32_t slots, d.GetU32());
  vec.slots_per_cipher = static_cast<int>(slots);
  FLB_ASSIGN_OR_RETURN(uint32_t contributors, d.GetU32());
  vec.contributors = static_cast<int>(contributors);
  FLB_ASSIGN_OR_RETURN(uint32_t scale_muls, d.GetU32());
  vec.scale_muls = static_cast<int>(scale_muls);
  FLB_ASSIGN_OR_RETURN(uint32_t fp_slot_bits, d.GetU32());
  vec.fp_slot_bits = static_cast<int>(fp_slot_bits);
  FLB_ASSIGN_OR_RETURN(uint32_t modeled, d.GetU32());
  vec.modeled = modeled != 0;
  FLB_ASSIGN_OR_RETURN(uint32_t cipher_words, d.GetU32());
  FLB_ASSIGN_OR_RETURN(uint32_t n, d.GetU32());
  vec.data.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (cipher_words > 0) {
      FLB_ASSIGN_OR_RETURN(mpint::BigInt c, d.GetBigIntFixed(cipher_words));
      vec.data.push_back(std::move(c));
    } else {
      FLB_ASSIGN_OR_RETURN(mpint::BigInt c, d.GetBigInt());
      vec.data.push_back(std::move(c));
    }
  }
  return vec;
}

Status SendDoubles(net::Network* network, const std::string& from,
                   const std::string& to, const std::string& topic,
                   const std::vector<double>& values) {
  net::Serializer s;
  s.PutDoubleVector(values);
  return network->Send(from, to, topic, s.TakeBytes());
}

Result<std::vector<double>> RecvDoubles(net::Network* network,
                                        const std::string& to,
                                        const std::string& topic) {
  FLB_ASSIGN_OR_RETURN(net::Message msg, network->Receive(to, topic));
  net::Deserializer d(msg.payload);
  return d.GetDoubleVector();
}

}  // namespace flb::core
