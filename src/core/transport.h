// EncVec transport: ships encrypted vectors over the simulated network.
//
// Wire size is always the *real* ciphertext footprint (count x 2k-bit
// ciphertexts), even in modeled execution where the in-memory shadow values
// are small — so communication accounting is identical across execution
// modes (DESIGN.md §1).

#ifndef FLB_CORE_TRANSPORT_H_
#define FLB_CORE_TRANSPORT_H_

#include <string>
#include <vector>

#include "src/core/he_service.h"
#include "src/net/network.h"

namespace flb::core {

Status SendEncVec(net::Network* network, const HeService& he,
                  const std::string& from, const std::string& to,
                  const std::string& topic, const EncVec& vec);

Result<EncVec> RecvEncVec(net::Network* network, const std::string& to,
                          const std::string& topic);

// Plaintext payloads (post-decryption scalars/vectors).
Status SendDoubles(net::Network* network, const std::string& from,
                   const std::string& to, const std::string& topic,
                   const std::vector<double>& values);
Result<std::vector<double>> RecvDoubles(net::Network* network,
                                        const std::string& to,
                                        const std::string& topic);

}  // namespace flb::core

#endif  // FLB_CORE_TRANSPORT_H_
