#include "src/core/tuner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "src/codec/batch_compressor.h"
#include "src/codec/quantizer.h"
#include "src/common/env.h"
#include "src/common/rng.h"
#include "src/core/cost_model.h"
#include "src/core/engine_config.h"
#include "src/ghe/ghe_engine.h"
#include "src/gpusim/device.h"
#include "src/obs/metrics.h"
#include "src/obs/run_status.h"
#include "src/obs/trace.h"

namespace flb::tune {
namespace {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Hex64(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string RunLabels(const core::PlatformConfig& config) {
  return "engine=" + core::EngineName(config.engine) +
         ",key_bits=" + std::to_string(config.key_bits) +
         ",model=" + core::ModelName(config.model);
}

// Effective batch-compression state for a config before any knob override
// (explicit config override first, then the engine trait).
bool EffectiveBc(const core::PlatformConfig& config) {
  if (config.use_bc >= 0) return config.use_bc != 0;
  return core::TraitsFor(config.engine).use_bc;
}

// Slots per packed plaintext for this workload's quantizer, the factor BC
// changes ciphertext counts and wire bytes by (Eq. 11). 1 when packing
// cannot apply.
int SlotsFor(const core::PlatformConfig& config) {
  codec::QuantizerConfig qc;
  qc.alpha = config.alpha;
  qc.r_bits = config.r_bits;
  qc.participants =
      config.model == core::FlModelKind::kHeteroNn ? 2 : config.num_parties;
  auto quantizer = codec::Quantizer::Create(qc);
  if (!quantizer.ok()) return 1;
  auto compressor =
      codec::BatchCompressor::Create(quantizer.value(), config.key_bits);
  if (!compressor.ok()) return 1;
  return compressor.value().slots_per_plaintext();
}

// Disables the trace recorder and quiets /status for the lifetime of the
// search, so warm-up probes never leak into the observable state of the
// real run. Restores on scope exit.
class ProbeGuard {
 public:
  ProbeGuard() {
    auto& recorder = obs::TraceRecorder::Global();
    trace_was_enabled_ = recorder.enabled();
    recorder.set_enabled(false);
    obs::RunStatus::Global().set_quiet(true);
  }
  ~ProbeGuard() {
    obs::TraceRecorder::Global().set_enabled(trace_was_enabled_);
    obs::RunStatus::Global().set_quiet(false);
  }
  ProbeGuard(const ProbeGuard&) = delete;
  ProbeGuard& operator=(const ProbeGuard&) = delete;

 private:
  bool trace_was_enabled_ = false;
};

// One warm-up measurement: the workload with `knobs` applied, shrunk to
// `rows` and one epoch, run in plaintext-shadow mode through the probe
// entry point (no RunStatus/trace/env side effects). All timing is
// simulated seconds, so the measurement is bit-reproducible and invariant
// to host thread count.
Result<core::RunReport> RunProbe(const core::PlatformConfig& base,
                                 const KnobConfig& knobs, int64_t rows) {
  core::PlatformConfig probe = AutoTuner::Apply(base, knobs);
  probe.modeled = true;
  probe.auto_tune = false;
  probe.train.max_epochs = 1;
  probe.dataset.rows = static_cast<size_t>(rows);
  probe.fault_plan.clear();
  probe.run_deadline_sec = 0;
  probe.obs_port = 0;
  return core::Platform::RunForTuning(probe);
}

// Eq. 10-style affine decomposition of the probe counters: each count is
// modeled as (per-batch component) * num_batches + (fixed component),
// solved from two probes at different batch sizes. Per-value work lands in
// the fixed component (num_batches doesn't change it at fixed rows),
// per-round traffic and aggregate ops land in the per-batch component.
struct AffineCount {
  double per_batch = 0.0;
  double fixed = 0.0;

  double At(double num_batches) const {
    return std::max(0.0, per_batch * num_batches + fixed);
  }
};

AffineCount Solve(double v0, double v1, double nb0, double nb1) {
  AffineCount c;
  if (nb1 == nb0) {
    c.fixed = v0;
    return c;
  }
  c.per_batch = (v1 - v0) / (nb1 - nb0);
  c.fixed = v0 - c.per_batch * nb0;
  return c;
}

// The analytic workload model the candidate ranking is seeded from.
struct CountModel {
  AffineCount encrypts;
  AffineCount decrypts;
  AffineCount hom_adds;
  AffineCount scalar_muls;
  AffineCount messages;
  AffineCount bytes;
  double other_seconds = 0.0;  // probe time outside HE + comm
  bool baseline_bc = false;    // BC state the probes ran with
  int slots = 1;               // packing factor if BC were toggled
};

CountModel BuildCountModel(const core::PlatformConfig& config,
                           const core::RunReport& rep0,
                           const core::RunReport& rep1, int64_t rows, int b0,
                           int b1) {
  const double nb0 = std::ceil(static_cast<double>(rows) / b0);
  const double nb1 = std::ceil(static_cast<double>(rows) / b1);
  CountModel m;
  m.encrypts = Solve(static_cast<double>(rep0.he_ops.encrypts),
                     static_cast<double>(rep1.he_ops.encrypts), nb0, nb1);
  m.decrypts = Solve(static_cast<double>(rep0.he_ops.decrypts),
                     static_cast<double>(rep1.he_ops.decrypts), nb0, nb1);
  m.hom_adds = Solve(static_cast<double>(rep0.he_ops.hom_adds),
                     static_cast<double>(rep1.he_ops.hom_adds), nb0, nb1);
  m.scalar_muls = Solve(static_cast<double>(rep0.he_ops.scalar_muls),
                        static_cast<double>(rep1.he_ops.scalar_muls), nb0,
                        nb1);
  m.messages = Solve(static_cast<double>(rep0.comm_messages),
                     static_cast<double>(rep1.comm_messages), nb0, nb1);
  m.bytes = Solve(static_cast<double>(rep0.comm_bytes),
                  static_cast<double>(rep1.comm_bytes), nb0, nb1);
  m.other_seconds = rep0.other_seconds;
  m.baseline_bc = EffectiveBc(config);
  m.slots = SlotsFor(config);
  return m;
}

// Predicted epoch seconds for `knobs` at `rows` fidelity: HE time through
// the GHE launch model (GPU) or the CPU cost model, communication through
// the link model, plus the measured non-HE remainder. Only used to *rank*
// candidates — measurement corrects any model error before a knob wins.
double PredictSeconds(const core::PlatformConfig& config, const CountModel& m,
                      const KnobConfig& knobs, int64_t rows) {
  const core::EngineTraits traits = core::TraitsFor(config.engine);
  const int batch = knobs.batch_size > 0 ? knobs.batch_size
                                         : std::max(1, config.train.batch_size);
  const double nb = std::ceil(static_cast<double>(rows) / batch);

  double encrypts = m.encrypts.At(nb);
  double decrypts = m.decrypts.At(nb);
  double hom_adds = m.hom_adds.At(nb);
  const double scalar_muls = m.scalar_muls.At(nb);
  const double messages = m.messages.At(nb);
  double bytes = m.bytes.At(nb);

  // Toggling BC relative to the probes rescales ciphertext-count-shaped
  // quantities by the packing factor (Eq. 11).
  const bool candidate_bc =
      knobs.use_bc < 0 ? m.baseline_bc : knobs.use_bc != 0;
  if (candidate_bc != m.baseline_bc && m.slots > 1) {
    const double factor = candidate_bc ? 1.0 / m.slots
                                       : static_cast<double>(m.slots);
    encrypts *= factor;
    decrypts *= factor;
    hom_adds *= factor;
    bytes *= factor;
  }

  double he_seconds = 0.0;
  const int key_bits = config.key_bits;
  const int scalar_bits = config.frac_bits + 10;  // HeService's effective width
  if (traits.gpu_he) {
    // Price the candidate's launch geometry on a throwaway device: one
    // launch per op class at the per-batch size, scaled by batch count, so
    // the stream/chunk overlap the candidate would get is what is priced.
    auto device = std::make_shared<gpusim::Device>(
        gpusim::DeviceSpec::Rtx3090(), nullptr, traits.branch_combining);
    ghe::GheConfig gcfg;
    gcfg.words_per_thread = traits.words_per_thread;
    gcfg.streams =
        knobs.gpu_streams > 0 ? knobs.gpu_streams : traits.gpu_streams;
    gcfg.chunks_per_stream =
        knobs.ghe_chunks_per_stream > 0 ? knobs.ghe_chunks_per_stream : 1;
    ghe::GheEngine engine(device, gcfg);
    const auto launch_seconds = [&](double total,
                                    auto&& model_call) -> double {
      if (total < 0.5) return 0.0;
      const int64_t per_launch =
          std::max<int64_t>(1, std::llround(total / nb));
      auto launch = model_call(per_launch);
      if (!launch.ok()) return 0.0;
      return launch.value().sim_seconds * nb;
    };
    he_seconds += launch_seconds(encrypts, [&](int64_t n) {
      return engine.ModelPaillierEncrypt(key_bits, n);
    });
    he_seconds += launch_seconds(decrypts, [&](int64_t n) {
      return engine.ModelPaillierDecrypt(key_bits, n);
    });
    he_seconds += launch_seconds(hom_adds, [&](int64_t n) {
      return engine.ModelPaillierAdd(key_bits, n);
    });
    he_seconds += launch_seconds(scalar_muls, [&](int64_t n) {
      return engine.ModelPaillierScalarMul(key_bits, n, scalar_bits);
    });
  } else {
    const size_t s2 = static_cast<size_t>(2 * key_bits) / 32;  // n^2 limbs
    const core::CpuCostModel cost;
    he_seconds += cost.SecondsFor(
        static_cast<uint64_t>(encrypts),
        (ghe::EstimateModPowMontMuls(key_bits) + 3) * ghe::MontMulLimbOps(s2));
    he_seconds += cost.SecondsFor(static_cast<uint64_t>(decrypts),
                                  2 * ghe::EstimateModPowMontMuls(key_bits / 2) *
                                      ghe::MontMulLimbOps(s2 / 2));
    he_seconds += cost.SecondsFor(static_cast<uint64_t>(hom_adds),
                                  3 * ghe::MontMulLimbOps(s2));
    he_seconds += cost.SecondsFor(static_cast<uint64_t>(scalar_muls),
                                  ghe::EstimateModPowMontMuls(scalar_bits) *
                                      ghe::MontMulLimbOps(s2));
  }

  // Link model: per-message latency + bandwidth + per-serialized-object
  // protocol cost, with objects estimated from the ciphertext wire width.
  const double cipher_bytes = 2.0 * key_bits / 8.0;
  const double objects = cipher_bytes > 0 ? bytes / cipher_bytes : 0.0;
  const double comm_seconds =
      messages * config.link.latency_sec +
      bytes / config.link.bandwidth_bytes_per_sec +
      objects * config.link.per_object_overhead_sec;

  return he_seconds + comm_seconds + m.other_seconds;
}

// Publishes the outcome to every observability surface: flb.tuner.*
// metrics, the tuner trace track, and the /status tuner block. Called
// after the ProbeGuard has been released.
void PublishOutcome(const core::PlatformConfig& config,
                    const TuneOutcome& outcome) {
  auto& metrics = obs::MetricsRegistry::Global();
  const std::string labels = RunLabels(config);
  metrics.Count("flb.tuner.candidates", outcome.candidates, labels);
  metrics.Count("flb.tuner.warmup_runs", outcome.warmup_runs, labels);
  metrics.Count("flb.tuner.warmup_seconds", outcome.warmup_seconds, labels);
  metrics.Set("flb.tuner.chosen_streams", outcome.chosen.gpu_streams, labels);
  metrics.Set("flb.tuner.chosen_chunks",
              outcome.chosen.ghe_chunks_per_stream, labels);
  metrics.Set("flb.tuner.chosen_batch", outcome.chosen.batch_size, labels);
  metrics.Set("flb.tuner.chosen_bc", outcome.chosen.use_bc, labels);
  metrics.Set("flb.tuner.predicted_seconds", outcome.predicted_seconds,
              labels);
  metrics.Set("flb.tuner.measured_seconds", outcome.measured_seconds, labels);
  if (outcome.measured_seconds > 0) {
    metrics.Set("flb.tuner.prediction_error",
                std::fabs(outcome.predicted_seconds -
                          outcome.measured_seconds) /
                    outcome.measured_seconds,
                labels);
  }

  obs::TunerStatus status;
  status.enabled = true;
  status.cache_hit = outcome.cache_hit;
  status.candidates = static_cast<uint64_t>(outcome.candidates);
  status.warmup_runs = static_cast<uint64_t>(outcome.warmup_runs);
  status.warmup_seconds = outcome.warmup_seconds;
  status.predicted_seconds = outcome.predicted_seconds;
  status.measured_seconds = outcome.measured_seconds;
  status.fingerprint = outcome.fingerprint;
  status.chosen = outcome.chosen.ToString();
  obs::RunStatus::Global().UpdateTuner(status);

  auto& recorder = obs::TraceRecorder::Global();
  if (recorder.enabled()) {
    const obs::Track track = recorder.RegisterTrack("tuner", "search");
    recorder.Instant(
        track, outcome.cache_hit ? "tuner.cache_hit" : "tuner.search",
        "tuner", 0.0,
        {obs::Arg("fingerprint", outcome.fingerprint),
         obs::Arg("candidates", outcome.candidates),
         obs::Arg("warmup_runs", outcome.warmup_runs),
         obs::Arg("warmup_seconds", outcome.warmup_seconds)});
    recorder.Instant(track, "tuner.chosen", "tuner", 0.0,
                     {obs::Arg("knobs", outcome.chosen.ToString()),
                      obs::Arg("predicted_seconds", outcome.predicted_seconds),
                      obs::Arg("measured_seconds", outcome.measured_seconds)});
  }
}

}  // namespace

// ---- KnobConfig -------------------------------------------------------------

std::string KnobConfig::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "streams=%d chunks=%d threads=%d batch=%d bc=%d fixed=%d",
                gpu_streams, ghe_chunks_per_stream, host_threads, batch_size,
                use_bc, use_fixed_width_kernels ? 1 : 0);
  return buf;
}

std::optional<KnobConfig> KnobConfig::Parse(const std::string& line) {
  KnobConfig knobs;
  int fixed = 0;
  if (std::sscanf(line.c_str(),
                  "streams=%d chunks=%d threads=%d batch=%d bc=%d fixed=%d",
                  &knobs.gpu_streams, &knobs.ghe_chunks_per_stream,
                  &knobs.host_threads, &knobs.batch_size, &knobs.use_bc,
                  &fixed) != 6) {
    return std::nullopt;
  }
  if (knobs.gpu_streams < 0 || knobs.gpu_streams > 256 ||
      knobs.ghe_chunks_per_stream < 0 || knobs.ghe_chunks_per_stream > 256 ||
      knobs.host_threads < 0 || knobs.host_threads > 512 ||
      knobs.batch_size < 0 || knobs.batch_size > (1 << 26) ||
      knobs.use_bc < -1 || knobs.use_bc > 1 || fixed < 0 || fixed > 1) {
    return std::nullopt;
  }
  knobs.use_fixed_width_kernels = fixed != 0;
  return knobs;
}

// ---- KnobSpace --------------------------------------------------------------

KnobSpace KnobSpace::For(const core::PlatformConfig& config) {
  KnobSpace space;
  const core::EngineTraits traits = core::TraitsFor(config.engine);
  if (traits.gpu_he) {
    space.gpu_streams = {1, 2, 4, 8};
    space.chunks_per_stream = {1, 2, 4};
  } else {
    // CPU engines have no stream/chunk schedule to search.
    space.gpu_streams = {0};
    space.chunks_per_stream = {0};
  }
  // Host threads are deliberately pinned: results and simulated time are
  // bit-identical at any pool width (the repo's core invariant), so a
  // simulated-time search cannot distinguish values — and must not try, or
  // the chosen config would depend on measurement noise.
  space.host_threads = {0};
  // Fixed-width kernel dispatch is bit-identical and never slower in
  // simulated time; keep the config's setting rather than searching it.

  const int64_t rows = std::max<int64_t>(
      16, static_cast<int64_t>(config.dataset.rows));
  const int base_batch = std::max(1, config.train.batch_size);
  std::vector<int> batches;
  for (const int shift : {-2, -1, 0, 1, 2}) {
    int64_t candidate = shift < 0
                            ? static_cast<int64_t>(base_batch) >> -shift
                            : static_cast<int64_t>(base_batch) << shift;
    candidate = std::clamp<int64_t>(candidate, 16, rows);
    batches.push_back(static_cast<int>(candidate));
  }
  std::sort(batches.begin(), batches.end());
  batches.erase(std::unique(batches.begin(), batches.end()), batches.end());
  space.batch_sizes = batches;

  // -1 keeps the workload's effective BC state; the other value flips it.
  space.use_bc = {-1, EffectiveBc(config) ? 0 : 1};
  return space;
}

std::vector<KnobConfig> KnobSpace::Enumerate() const {
  std::vector<KnobConfig> out;
  for (const int bc : use_bc) {
    for (const int batch : batch_sizes) {
      for (const int threads : host_threads) {
        for (const int streams : gpu_streams) {
          for (const int chunks : chunks_per_stream) {
            KnobConfig knobs;
            knobs.gpu_streams = streams;
            knobs.ghe_chunks_per_stream = chunks;
            knobs.host_threads = threads;
            knobs.batch_size = batch;
            knobs.use_bc = bc;
            out.push_back(knobs);
          }
        }
      }
    }
  }
  return out;
}

// ---- TuningCache ------------------------------------------------------------

TuningCache& TuningCache::Global() {
  static TuningCache* cache = new TuningCache();  // leaked singleton
  return *cache;
}

std::optional<KnobConfig> TuningCache::Lookup(const std::string& path,
                                              const std::string& fingerprint) {
  common::MutexLock lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) return it->second;
  if (!path.empty() && loaded_paths_.insert(path).second) {
    LoadFileLocked(path);
    it = entries_.find(fingerprint);
    if (it != entries_.end()) return it->second;
  }
  return std::nullopt;
}

Status TuningCache::Store(const std::string& path,
                          const std::string& fingerprint,
                          const KnobConfig& knobs) {
  common::MutexLock lock(mu_);
  // Merge the file first so a rewrite never drops entries another process
  // (or an earlier run) put there.
  if (!path.empty() && loaded_paths_.insert(path).second) {
    LoadFileLocked(path);
  }
  entries_[fingerprint] = knobs;
  if (path.empty()) return Status::OK();
  return WriteFileLocked(path);
}

void TuningCache::Clear() {
  common::MutexLock lock(mu_);
  entries_.clear();
  loaded_paths_.clear();
}

void TuningCache::LoadFileLocked(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return;  // missing cache file = empty cache
  char line[256];
  bool header_ok = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    if (!header_ok) {
      if (s != "flbtune v1") break;  // wrong version: ignore the file
      header_ok = true;
      continue;
    }
    const size_t space = s.find(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::string fingerprint = s.substr(0, space);
    const std::optional<KnobConfig> knobs =
        KnobConfig::Parse(s.substr(space + 1));
    if (!knobs.has_value()) continue;  // corrupt line: skip, never trust
    // In-memory entries (from this process's searches) win over the file.
    entries_.emplace(fingerprint, *knobs);
  }
  std::fclose(f);
}

Status TuningCache::WriteFileLocked(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("TuningCache: cannot write " + path);
  }
  std::fprintf(f, "flbtune v1\n");
  for (const auto& [fingerprint, knobs] : entries_) {
    std::fprintf(f, "%s %s\n", fingerprint.c_str(),
                 knobs.ToString().c_str());
  }
  if (std::fclose(f) != 0) {
    return Status::IoError("TuningCache: write failed for " + path);
  }
  return Status::OK();
}

// ---- AutoTuner --------------------------------------------------------------

std::string AutoTuner::Fingerprint(const core::PlatformConfig& config) {
  std::ostringstream os;
  os << "v1|engine=" << static_cast<int>(config.engine)
     << "|model=" << static_cast<int>(config.model)
     << "|ds=" << static_cast<int>(config.dataset.kind) << ':'
     << config.dataset.rows << 'x' << config.dataset.cols << ':'
     << config.dataset.nnz_per_row << ':' << config.dataset.seed
     << "|parties=" << config.num_parties << "|key=" << config.key_bits
     << "|r=" << config.r_bits << "|alpha=" << config.alpha
     << "|frac=" << config.frac_bits
     << "|slot=" << config.fp_compress_slot_bits
     << "|modeled=" << config.modeled
     << "|epochs=" << config.train.max_epochs
     << "|batch=" << config.train.batch_size
     << "|lr=" << config.train.learning_rate << "|l2=" << config.train.l2
     << "|tol=" << config.train.tolerance
     << "|opt=" << static_cast<int>(config.train.optimizer)
     << "|sbt=" << config.sbt.max_depth << ':' << config.sbt.num_bins << ':'
     << config.sbt.reg_lambda << ':' << config.sbt.min_child_weight
     << "|nn=" << config.nn.bottom_dim << ':' << config.nn.interactive_dim
     << ':' << config.nn.init_seed << "|hnn=" << config.homo_nn.hidden_dim
     << ':' << config.homo_nn.local_steps << ':' << config.homo_nn.init_seed
     << "|link=" << config.link.bandwidth_bytes_per_sec << ':'
     << config.link.latency_sec << ':'
     << config.link.per_object_overhead_sec
     << "|fixed=" << config.use_fixed_width_kernels;
  // The run seed is deliberately excluded: runs differing only by seed
  // share a workload shape, so they share tuned knobs.
  return Hex64(Fnv1a64(os.str()));
}

core::PlatformConfig AutoTuner::Apply(const core::PlatformConfig& config,
                                      const KnobConfig& knobs) {
  core::PlatformConfig out = config;
  if (knobs.gpu_streams > 0) out.gpu_streams = knobs.gpu_streams;
  if (knobs.ghe_chunks_per_stream > 0) {
    out.ghe_chunks_per_stream = knobs.ghe_chunks_per_stream;
  }
  if (knobs.host_threads > 0) out.host_threads = knobs.host_threads;
  if (knobs.batch_size > 0) out.train.batch_size = knobs.batch_size;
  if (knobs.use_bc >= 0) out.use_bc = knobs.use_bc;
  out.use_fixed_width_kernels = knobs.use_fixed_width_kernels;
  return out;
}

Result<TuneOutcome> AutoTuner::Tune(const core::PlatformConfig& config) {
  TuneOutcome outcome;
  outcome.fingerprint = Fingerprint(config);
  const std::string cache_path = !config.tuner_cache.empty()
                                     ? config.tuner_cache
                                     : common::Env::Str("FLB_TUNER_CACHE");
  auto& metrics = obs::MetricsRegistry::Global();
  const std::string labels = RunLabels(config);

  if (const std::optional<KnobConfig> hit =
          TuningCache::Global().Lookup(cache_path, outcome.fingerprint)) {
    outcome.chosen = *hit;
    outcome.cache_hit = true;
    metrics.Count("flb.tuner.cache_hits", 1, labels);
    PublishOutcome(config, outcome);
    return outcome;
  }
  metrics.Count("flb.tuner.cache_misses", 1, labels);

  // Candidate set: the workload's knob space plus the config's own knobs
  // (so "leave everything alone" always competes).
  std::vector<KnobConfig> candidates = KnobSpace::For(config).Enumerate();
  KnobConfig defaults;
  defaults.use_fixed_width_kernels = config.use_fixed_width_kernels;
  for (auto& knobs : candidates) {
    knobs.use_fixed_width_kernels = config.use_fixed_width_kernels;
  }
  int default_index = -1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i] == defaults) {
      default_index = static_cast<int>(i);
      break;
    }
  }
  if (default_index < 0) {
    default_index = static_cast<int>(candidates.size());
    candidates.push_back(defaults);
  }
  outcome.candidates = static_cast<int>(candidates.size());

  const int64_t full_rows = std::max<int64_t>(
      16, static_cast<int64_t>(config.dataset.rows));
  const int64_t probe_rows = std::min<int64_t>(full_rows, 256);

  int winner = default_index;
  double winner_predicted = 0.0;
  double winner_measured = 0.0;
  {
    ProbeGuard guard;

    // Decomposition probes: the same shrunken workload at two batch sizes
    // splits every counter into per-batch and fixed components.
    const int b0 = static_cast<int>(std::clamp<int64_t>(
        config.train.batch_size, 16, probe_rows));
    int b1 = std::max(16, b0 / 2);
    if (b1 == b0) {
      b1 = static_cast<int>(std::min<int64_t>(probe_rows, 2LL * b0));
    }
    KnobConfig probe_knobs = defaults;
    probe_knobs.batch_size = b0;
    FLB_ASSIGN_OR_RETURN(const core::RunReport rep0,
                         RunProbe(config, probe_knobs, probe_rows));
    ++outcome.warmup_runs;
    outcome.warmup_seconds += rep0.total_seconds;
    core::RunReport rep1 = rep0;
    if (b1 != b0) {
      probe_knobs.batch_size = b1;
      FLB_ASSIGN_OR_RETURN(rep1, RunProbe(config, probe_knobs, probe_rows));
      ++outcome.warmup_runs;
      outcome.warmup_seconds += rep1.total_seconds;
    }
    const CountModel model =
        BuildCountModel(config, rep0, rep1, probe_rows, b0, b1);

    // Analytic ranking of the whole space (Eq. 10 warm start), priced at
    // the FULL workload size: the affine decomposition exists precisely to
    // extrapolate from tiny probes, and ranking at probe size would
    // misorder candidates whose batch size only pays off at scale.
    std::vector<std::pair<double, int>> ranked;
    ranked.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      ranked.emplace_back(
          PredictSeconds(config, model, candidates[i], full_rows),
          static_cast<int>(i));
    }
    std::stable_sort(ranked.begin(), ranked.end());

    // Cohort: the config's own knobs, one exploration pick (seeded,
    // stateless Rng stream — no ambient entropy), then the analytic top
    // ranks. Deterministic order, deduplicated.
    const size_t kCohort = 8;
    std::vector<int> cohort;
    const auto add_candidate = [&cohort](int index) {
      if (std::find(cohort.begin(), cohort.end(), index) == cohort.end()) {
        cohort.push_back(index);
      }
    };
    add_candidate(default_index);
    Rng explore = Rng::ForStream(config.seed ^ Fnv1a64(outcome.fingerprint),
                                 /*stream=*/0);
    add_candidate(static_cast<int>(explore.NextBelow(candidates.size())));
    for (const auto& [predicted, index] : ranked) {
      if (cohort.size() >= kCohort) break;
      add_candidate(index);
    }

    // Successive halving with a full-fidelity playoff. Each round measures
    // every survivor at the round's row count — raised per candidate so a
    // batch size larger than the round can actually be expressed instead of
    // being clamped into an indistinguishable tie — and scores it as
    // estimated full-workload epoch seconds (row-linear extrapolation).
    // The final round always runs at the real workload size and always
    // re-admits the config's own knobs, so the chosen config can never
    // measure worse than the defaults at full scale. Ties break on
    // candidate index, so the search is exactly reproducible.
    struct Scored {
      double seconds;
      int index;
      bool operator<(const Scored& other) const {
        return seconds != other.seconds ? seconds < other.seconds
                                        : index < other.index;
      }
    };
    const auto probe_fidelity = [&](int index, int64_t round_rows) {
      const int batch = candidates[static_cast<size_t>(index)].batch_size > 0
                            ? candidates[static_cast<size_t>(index)].batch_size
                            : std::max(1, config.train.batch_size);
      return std::min(full_rows,
                      std::max(round_rows, static_cast<int64_t>(batch)));
    };
    std::map<std::pair<int, int64_t>, double> probe_memo;
    const auto measure = [&](int index,
                             int64_t round_rows) -> Result<double> {
      const int64_t rows = probe_fidelity(index, round_rows);
      const auto memo = probe_memo.find({index, rows});
      if (memo != probe_memo.end()) return memo->second;
      FLB_ASSIGN_OR_RETURN(const core::RunReport rep,
                           RunProbe(config, candidates[index], rows));
      ++outcome.warmup_runs;
      outcome.warmup_seconds += rep.total_seconds;
      const double scaled = rep.total_seconds *
                            static_cast<double>(full_rows) /
                            static_cast<double>(rows);
      probe_memo.emplace(std::make_pair(index, rows), scaled);
      return scaled;
    };

    double winner_seconds = 0.0;
    std::vector<int> alive = cohort;
    int64_t fidelity = probe_rows;
    while (true) {
      const bool final_round = alive.size() <= 2;
      if (final_round) {
        if (std::find(alive.begin(), alive.end(), default_index) ==
            alive.end()) {
          alive.push_back(default_index);
        }
        fidelity = full_rows;
      }
      std::vector<Scored> scored;
      scored.reserve(alive.size());
      for (const int index : alive) {
        FLB_ASSIGN_OR_RETURN(const double seconds, measure(index, fidelity));
        scored.push_back({seconds, index});
      }
      std::sort(scored.begin(), scored.end());
      winner = scored.front().index;
      winner_seconds = scored.front().seconds;
      if (final_round) break;
      const size_t keep = std::max<size_t>(1, alive.size() / 2);
      alive.clear();
      for (size_t i = 0; i < keep; ++i) alive.push_back(scored[i].index);
      fidelity = std::min(full_rows, fidelity * 2);
    }

    for (const auto& [predicted, index] : ranked) {
      if (index == winner) {
        winner_predicted = predicted;
        break;
      }
    }
    winner_measured = winner_seconds;
  }  // ProbeGuard released: observability restored before publishing.

  outcome.chosen = candidates[static_cast<size_t>(winner)];
  outcome.predicted_seconds = winner_predicted;
  outcome.measured_seconds = winner_measured;

  const Status stored = TuningCache::Global().Store(
      cache_path, outcome.fingerprint, outcome.chosen);
  if (!stored.ok()) {
    std::fprintf(stderr, "[tuner] WARN: %s\n", stored.message().c_str());
  }
  PublishOutcome(config, outcome);
  return outcome;
}

Result<core::PlatformConfig> AutoTuner::TunedConfig(
    const core::PlatformConfig& config) {
  FLB_ASSIGN_OR_RETURN(const TuneOutcome outcome, Tune(config));
  core::PlatformConfig tuned = Apply(config, outcome.chosen);
  tuned.auto_tune = false;
  return tuned;
}

}  // namespace flb::tune
