// AutoTuner — closes the loop over FLBooster's performance knobs (ROADMAP
// open item 5).
//
// The platform exposes several knobs that each earlier PR validated in
// isolation: GHE stream count and chunk granularity (stream overlap), host
// thread count, HE mini-batch size, batch compression, fixed-width kernel
// dispatch. Their best joint setting depends on (key size, batch shape,
// device profile, link) — HAFLO and BouquetFL both observe that no static
// default is near-optimal across workloads. The tuner resolves them per
// workload:
//
//   1. Analytic warm start (Eq. 10 machinery): two tiny decomposition
//      probes split the workload's HE/communication counts into per-batch
//      and fixed components; every candidate in the KnobSpace is then
//      priced through the GHE launch model + the link model and ranked.
//   2. Online refinement: deterministic successive halving over the
//      top-ranked cohort (plus one exploration candidate drawn with
//      Rng::ForStream). Each round measures the survivors with real
//      warm-up runs (Platform::RunForTuning) at increasing fidelity in
//      *simulated* time and halves the cohort; the final round is a
//      playoff at the full workload size that always re-admits the
//      config's own knobs, so tuning never chooses a config that measures
//      worse than the defaults. No wall clock, no ambient entropy, so the
//      whole search is bit-reproducible (flb_lint FLB001/FLB002 clean)
//      and invariant to host thread count.
//   3. TuningCache: the chosen knobs are memoized per workload
//      fingerprint (FNV-1a over every run-shape field, seed excluded) in
//      memory and optionally on disk (PlatformConfig::tuner_cache /
//      FLB_TUNER_CACHE), so repeated runs skip the warm-up entirely.
//
// Determinism contract: a tuned run is bit-identical to an untuned run
// launched directly with the chosen knobs, and FLB_AUTO_TUNE unset leaves
// every code path byte-identical to a build without the tuner.

#ifndef FLB_CORE_TUNER_H_
#define FLB_CORE_TUNER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/core/platform.h"

namespace flb::tune {

// One point in the knob space. Zero / -1 fields mean "keep the engine or
// workload default", so the default-constructed KnobConfig is exactly
// today's untuned behavior.
struct KnobConfig {
  int gpu_streams = 0;           // device streams; 0 = engine default
  int ghe_chunks_per_stream = 0; // chunk granularity; 0 = default (1)
  int host_threads = 0;          // host pool width; 0 = inherit
  int batch_size = 0;            // HE mini-batch rows; 0 = workload default
  int use_bc = -1;               // batch compression; -1 = engine trait
  bool use_fixed_width_kernels = true;

  bool operator==(const KnobConfig& other) const {
    return gpu_streams == other.gpu_streams &&
           ghe_chunks_per_stream == other.ghe_chunks_per_stream &&
           host_threads == other.host_threads &&
           batch_size == other.batch_size && use_bc == other.use_bc &&
           use_fixed_width_kernels == other.use_fixed_width_kernels;
  }
  bool operator!=(const KnobConfig& other) const { return !(*this == other); }

  // Canonical single-line form, also the TuningCache wire format:
  // "streams=4 chunks=2 threads=0 batch=512 bc=1 fixed=1".
  std::string ToString() const;
  // Parses ToString output. nullopt on malformed input (a corrupt cache
  // line is skipped, never trusted).
  static std::optional<KnobConfig> Parse(const std::string& line);
};

// The candidate axes for one workload. Axes with a single value are
// effectively pinned (e.g. streams for CPU engines; host_threads, which
// cannot be searched by simulated time because results are wall-clock
// invariant by design).
struct KnobSpace {
  std::vector<int> gpu_streams;
  std::vector<int> chunks_per_stream;
  std::vector<int> host_threads;
  std::vector<int> batch_sizes;
  std::vector<int> use_bc;

  static KnobSpace For(const core::PlatformConfig& config);
  // Cross product, in deterministic axis order.
  std::vector<KnobConfig> Enumerate() const;
};

// What a Tune call did, for benches / tests / the /status tuner block.
struct TuneOutcome {
  KnobConfig chosen;
  std::string fingerprint;  // workload fingerprint, hex
  bool cache_hit = false;
  int candidates = 0;       // knob configs considered by the search
  int warmup_runs = 0;      // probe runs measured
  double warmup_seconds = 0.0;    // simulated seconds spent in probes
  double predicted_seconds = 0.0; // analytic full-scale estimate, chosen knobs
  double measured_seconds = 0.0;  // full-fidelity playoff epoch seconds
};

// Process-wide memo of chosen knobs per workload fingerprint, with an
// optional disk tier. The disk file is a versioned line format
// ("flbtune v1" header, then "<fingerprint> <KnobConfig::ToString>"),
// rewritten atomically-enough for a single-writer CI pipeline; corrupt
// lines are ignored.
class TuningCache {
 public:
  static TuningCache& Global();

  // In-memory first; on miss with a non-empty path, lazily loads that file
  // (once per path) and retries.
  std::optional<KnobConfig> Lookup(const std::string& path,
                                   const std::string& fingerprint);
  // Stores in memory and, with a non-empty path, rewrites the file with
  // every entry known for it.
  Status Store(const std::string& path, const std::string& fingerprint,
               const KnobConfig& knobs);
  // Drops all in-memory state (tests; disk files are left alone).
  void Clear();

 private:
  Status WriteFileLocked(const std::string& path)
      FLB_REQUIRES(mu_);
  void LoadFileLocked(const std::string& path)
      FLB_REQUIRES(mu_);

  common::Mutex mu_;
  // fingerprint -> knobs, all paths merged (fingerprints are
  // workload-unique, so one namespace suffices).
  std::map<std::string, KnobConfig> entries_ FLB_GUARDED_BY(mu_);
  std::set<std::string> loaded_paths_ FLB_GUARDED_BY(mu_);
};

class AutoTuner {
 public:
  // Resolves the knobs for `config` — cache hit or full search — and
  // returns the config with them applied (auto_tune cleared). This is what
  // Platform::Run calls when auto-tuning is on.
  static Result<core::PlatformConfig> TunedConfig(
      const core::PlatformConfig& config);

  // The full outcome, for benches and tests.
  static Result<TuneOutcome> Tune(const core::PlatformConfig& config);

  // `config` with `knobs` applied onto the knob fields (other fields
  // untouched).
  static core::PlatformConfig Apply(const core::PlatformConfig& config,
                                    const KnobConfig& knobs);

  // FNV-1a fingerprint (hex) over every field that shapes the run except
  // the seed — two runs differing only by seed share tuned knobs.
  static std::string Fingerprint(const core::PlatformConfig& config);
};

}  // namespace flb::tune

#endif  // FLB_CORE_TUNER_H_
