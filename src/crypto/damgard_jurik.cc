#include "src/crypto/damgard_jurik.h"

#include <utility>

#include "src/common/check.h"

namespace flb::crypto {

Result<DamgardJurikContext> DamgardJurikContext::Create(
    const PaillierKeyPair& keys, int s) {
  if (s < 1 || s > 8) {
    return Status::InvalidArgument("DamgardJurik: degree s must be in [1, 8]");
  }
  if (keys.pub.n.IsZero() || keys.priv.lambda.IsZero()) {
    return Status::InvalidArgument("DamgardJurik: incomplete key material");
  }
  DamgardJurikContext ctx;
  ctx.s_ = s;
  ctx.n_ = keys.pub.n;
  ctx.n_pow_.reserve(s + 1);
  BigInt power = keys.pub.n;
  for (int j = 0; j <= s; ++j) {
    ctx.n_pow_.push_back(power);
    power = BigInt::Mul(power, keys.pub.n);
  }
  // d ≡ 1 (mod n^s), d ≡ 0 (mod lambda):
  //   d = lambda * (lambda^{-1} mod n^s).
  const BigInt& ns = ctx.n_pow_[s - 1];
  FLB_ASSIGN_OR_RETURN(BigInt lambda_inv,
                       BigInt::ModInverse(keys.priv.lambda % ns, ns));
  ctx.d_ = BigInt::Mul(keys.priv.lambda, lambda_inv);
  FLB_ASSIGN_OR_RETURN(auto top, MontgomeryContext::Create(ctx.n_pow_[s]));
  ctx.top_ctx_ = std::make_shared<MontgomeryContext>(std::move(top));
  return ctx;
}

size_t DamgardJurikContext::CiphertextWords() const {
  return (static_cast<size_t>(ciphertext_modulus().BitLength()) + 31) / 32;
}

Result<BigInt> DamgardJurikContext::Encrypt(const BigInt& m, Rng& rng) const {
  if (m >= plaintext_modulus()) {
    return Status::OutOfRange("DamgardJurik: plaintext must be < n^s");
  }
  const BigInt& top = ciphertext_modulus();
  // (1+n)^m via the binomial expansion: only the first s+1 terms survive
  // mod n^(s+1): sum_{i=0..s} C(m, i) * n^i.
  BigInt gm(1);
  BigInt term(1);  // C(m, i) mod n^(s+1), iteratively
  for (int i = 1; i <= s_; ++i) {
    // term *= (m - (i-1)) / i  (division exact in Z_{n^(s+1)}: i ⊥ n)
    BigInt factor = m;
    const BigInt dec(static_cast<uint64_t>(i - 1));
    if (factor >= dec) {
      factor = BigInt::Sub(factor, dec);
    } else {
      factor = BigInt::Sub(BigInt::Add(factor, top), dec);
    }
    term = BigInt::Mul(term, factor) % top;
    FLB_ASSIGN_OR_RETURN(BigInt inv_i,
                         BigInt::ModInverse(BigInt(static_cast<uint64_t>(i)),
                                            top));
    term = BigInt::Mul(term, inv_i) % top;
    gm = BigInt::Add(gm, BigInt::Mul(term, n_pow_[i - 1])) % top;
  }
  // r^(n^s) mod n^(s+1).
  const BigInt r = DrawUnit(n_, rng);
  const BigInt rn = top_ctx_->ModPow(r, plaintext_modulus());
  return top_ctx_->ModMul(gm, rn);
}

Result<BigInt> DamgardJurikContext::LogBase1PlusN(const BigInt& a) const {
  // Damgård–Jurik's iterative extraction of x from a = (1+n)^x mod n^(s+1).
  BigInt i;  // x mod n^j, refined per round
  for (int j = 1; j <= s_; ++j) {
    const BigInt& nj = n_pow_[j - 1];       // n^j
    const BigInt& nj1 = n_pow_[j];          // n^(j+1)
    const BigInt a_mod = a % nj1;
    if (a_mod.IsZero()) {
      return Status::CryptoError("DamgardJurik: malformed decryption input");
    }
    // t1 = L(a mod n^(j+1)) = (a_mod - 1) / n.
    FLB_ASSIGN_OR_RETURN(BigInt t1,
                         BigInt::Div(BigInt::Sub(a_mod, BigInt(1)), n_));
    t1 = t1 % nj;
    BigInt t2 = i % nj;
    BigInt i_run = i % nj;
    BigInt k_factorial(1);
    for (int k = 2; k <= j; ++k) {
      // i_run -= 1 (mod n^j)
      if (i_run.IsZero()) {
        i_run = BigInt::Sub(nj, BigInt(1));
      } else {
        i_run = BigInt::Sub(i_run, BigInt(1));
      }
      t2 = BigInt::Mul(t2, i_run) % nj;
      k_factorial = BigInt::Mul(k_factorial, BigInt(static_cast<uint64_t>(k)));
      FLB_ASSIGN_OR_RETURN(BigInt inv_fact,
                           BigInt::ModInverse(k_factorial % nj, nj));
      const BigInt sub =
          BigInt::Mul(BigInt::Mul(t2, n_pow_[k - 2]) % nj, inv_fact) % nj;
      if (t1 >= sub) {
        t1 = BigInt::Sub(t1, sub);
      } else {
        t1 = BigInt::Sub(BigInt::Add(t1, nj), sub);
      }
    }
    i = t1;
  }
  return i;
}

Result<BigInt> DamgardJurikContext::Decrypt(const BigInt& c) const {
  if (c >= ciphertext_modulus()) {
    return Status::OutOfRange("DamgardJurik: ciphertext must be < n^(s+1)");
  }
  // c^d = (1+n)^m since d kills the randomizer (d ≡ 0 mod lambda) and fixes
  // the message (d ≡ 1 mod n^s).
  const BigInt a = top_ctx_->ModPow(c, d_);
  return LogBase1PlusN(a);
}

Result<BigInt> DamgardJurikContext::Add(const BigInt& c1,
                                        const BigInt& c2) const {
  if (c1 >= ciphertext_modulus() || c2 >= ciphertext_modulus()) {
    return Status::OutOfRange("DamgardJurik: ciphertext must be < n^(s+1)");
  }
  return top_ctx_->ModMul(c1, c2);
}

Result<BigInt> DamgardJurikContext::ScalarMul(const BigInt& c,
                                              const BigInt& k) const {
  if (c >= ciphertext_modulus()) {
    return Status::OutOfRange("DamgardJurik: ciphertext must be < n^(s+1)");
  }
  return top_ctx_->ModPow(c, k);
}

}  // namespace flb::crypto
