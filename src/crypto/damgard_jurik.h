// Damgård–Jurik generalized Paillier (the paper's cited [21]).
//
// For a degree s >= 1, plaintexts live in Z_{n^s} and ciphertexts in
// Z_{n^(s+1)}:
//
//   Enc(m) = (1+n)^m * r^(n^s) mod n^(s+1),   r uniform in Z*_n
//   Dec(c) = Log_{1+n}(c^d mod n^(s+1))
//
// where d is chosen by CRT with d ≡ 1 (mod n^s) and d ≡ 0 (mod lambda), so
// c^d = (1+n)^m exactly, and Log is the paper's iterative (1+n)-logarithm
// over Z_{n^s} (division by k! is exact because gcd(k!, n) = 1).
//
// s = 1 recovers Paillier. Why it matters to FLBooster: the plaintext
// space is s*k bits for a (s+1)*k-bit ciphertext, so batch compression
// packs s times more slots per ciphertext and the ciphertext expansion
// factor falls from 2x (Paillier) toward (s+1)/s — an extension the paper
// leaves on the table (see bench_damgard_jurik).

#ifndef FLB_CRYPTO_DAMGARD_JURIK_H_
#define FLB_CRYPTO_DAMGARD_JURIK_H_

#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/paillier.h"
#include "src/mpint/bigint.h"

namespace flb::crypto {

class DamgardJurikContext {
 public:
  // Builds a degree-s context from Paillier key material (same n = p*q).
  // s in [1, 8]; key_bits * (s+1) is the ciphertext width.
  static Result<DamgardJurikContext> Create(const PaillierKeyPair& keys,
                                            int s);

  int degree() const { return s_; }
  const BigInt& n() const { return n_; }
  // Plaintext modulus n^s.
  const BigInt& plaintext_modulus() const { return n_pow_[s_ - 1]; }
  // Ciphertext modulus n^(s+1).
  const BigInt& ciphertext_modulus() const { return n_pow_[s_]; }
  // Serialized ciphertext width in 32-bit words.
  size_t CiphertextWords() const;

  // m must be < n^s.
  Result<BigInt> Encrypt(const BigInt& m, Rng& rng) const;
  Result<BigInt> Decrypt(const BigInt& c) const;
  // E(m1) * E(m2) = E(m1 + m2 mod n^s).
  Result<BigInt> Add(const BigInt& c1, const BigInt& c2) const;
  // E(m)^k = E(k*m mod n^s).
  Result<BigInt> ScalarMul(const BigInt& c, const BigInt& k) const;

 private:
  DamgardJurikContext() = default;

  // Log_{1+n}(a) for a ≡ 1 (mod n), a < n^(s+1): returns x with
  // (1+n)^x ≡ a (mod n^(s+1)), x < n^s.
  Result<BigInt> LogBase1PlusN(const BigInt& a) const;

  int s_ = 1;
  BigInt n_;
  std::vector<BigInt> n_pow_;  // n^1 .. n^(s+1)
  BigInt d_;                   // CRT decryption exponent
  std::shared_ptr<const MontgomeryContext> top_ctx_;  // mod n^(s+1)
};

}  // namespace flb::crypto

#endif  // FLB_CRYPTO_DAMGARD_JURIK_H_
