#include "src/crypto/montgomery.h"

#include <algorithm>

#include "src/common/check.h"

namespace flb::crypto {

namespace {

// -n^{-1} mod 2^32 by Newton–Hensel lifting: for odd n, x_{k+1} = x_k*(2 -
// n*x_k) doubles the number of correct low bits each step.
uint32_t NegInverseMod2p32(uint32_t n0) {
  uint32_t x = n0;  // correct to 3 bits for odd n0 (n0*n0 ≡ 1 mod 8)
  for (int i = 0; i < 5; ++i) x *= 2 - n0 * x;
  return static_cast<uint32_t>(0u - x);
}

// Largest width the flat-scratch fast paths keep on the stack; contexts
// wider than this (e.g. high-degree Damgard–Jurik moduli) fall back to one
// heap scratch per call.
constexpr size_t kMaxStackLimbs = 256;

}  // namespace

int ChooseWindowBits(int exp_bits) {
  if (exp_bits <= 24) return 1;
  if (exp_bits <= 80) return 3;
  if (exp_bits <= 240) return 4;
  if (exp_bits <= 672) return 5;
  return 6;
}

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus,
                                                    bool use_fixed_kernels) {
  if (modulus < BigInt(3)) {
    return Status::InvalidArgument("Montgomery modulus must be >= 3");
  }
  if (modulus.IsEven()) {
    return Status::InvalidArgument("Montgomery modulus must be odd");
  }
  MontgomeryContext ctx;
  ctx.n_ = modulus;
  ctx.s_ = modulus.WordCount();
  ctx.n0_inv_ = NegInverseMod2p32(modulus.word(0));
  const BigInt r = BigInt::PowerOfTwo(static_cast<int>(ctx.s_) * mpint::kLimbBits);
  ctx.r_mod_n_ = r % modulus;
  ctx.r2_mod_n_ = BigInt::Mul(ctx.r_mod_n_, ctx.r_mod_n_) % modulus;
  ctx.r_words_ = ctx.r_mod_n_.ToFixedWords(ctx.s_);
  ctx.r2_words_ = ctx.r2_mod_n_.ToFixedWords(ctx.s_);
  ctx.one_words_ = BigInt(1).ToFixedWords(ctx.s_);
  if (use_fixed_kernels && mpint::fixed::KernelsEnabled()) {
    // One table lookup per key: every MontMul/ModPow on this context then
    // runs the compile-time-width kernel. Unsupported widths keep the
    // generic path (kernel_ stays null).
    ctx.kernel_ = mpint::fixed::FindKernel(ctx.s_);
    if (ctx.kernel_ != nullptr) {
      const uint64_t n64 = static_cast<uint64_t>(modulus.word(0)) |
                           (static_cast<uint64_t>(modulus.word(1)) << 32);
      ctx.n0_inv64_ = mpint::fixed::NegInverseMod2p64(n64);
    }
  }
  return ctx;
}

void MontgomeryContext::MontMulWordsGeneric(const uint32_t* a,
                                            const uint32_t* b,
                                            uint32_t* out) const {
  const size_t s = s_;
  const std::vector<uint32_t>& n = n_.words();
  // t has s+2 limbs; CIOS interleaves multiplication and reduction so the
  // working buffer never exceeds s+2 words (Koç–Acar–Kaliski).
  std::vector<uint32_t> t(s + 2, 0);
  for (size_t i = 0; i < s; ++i) {
    // Multiplication step: t += a * b[i].
    uint64_t carry = 0;
    const uint64_t bi = b[i];
    for (size_t j = 0; j < s; ++j) {
      const uint64_t cur = static_cast<uint64_t>(t[j]) + bi * a[j] + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = static_cast<uint64_t>(t[s]) + carry;
    t[s] = static_cast<uint32_t>(cur);
    t[s + 1] = static_cast<uint32_t>(cur >> 32);

    // Reduction step: m makes the low word of t vanish (mod 2^32).
    const uint32_t m = t[0] * n0_inv_;
    cur = static_cast<uint64_t>(t[0]) + static_cast<uint64_t>(m) * n[0];
    carry = cur >> 32;
    for (size_t j = 1; j < s; ++j) {
      cur = static_cast<uint64_t>(t[j]) + static_cast<uint64_t>(m) * n[j] +
            carry;
      t[j - 1] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = static_cast<uint64_t>(t[s]) + carry;
    t[s - 1] = static_cast<uint32_t>(cur);
    t[s] = t[s + 1] + static_cast<uint32_t>(cur >> 32);
  }

  // Final conditional subtraction: the loop guarantees t < 2n.
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = s; i-- > 0;) {
      const uint32_t ni = i < n.size() ? n[i] : 0;
      if (t[i] != ni) {
        ge = t[i] > ni;
        break;
      }
    }
  }
  if (ge) {
    int64_t borrow = 0;
    for (size_t i = 0; i < s; ++i) {
      const uint32_t ni = i < n.size() ? n[i] : 0;
      int64_t diff = static_cast<int64_t>(t[i]) - ni - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(mpint::kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[i] = static_cast<uint32_t>(diff);
    }
  } else {
    std::copy(t.begin(), t.begin() + s, out);
  }
}

void MontgomeryContext::MontMulWords(const uint32_t* a, const uint32_t* b,
                                     uint32_t* out) const {
  mont_mul_count_.fetch_add(1, std::memory_order_relaxed);
  if (kernel_ != nullptr) {
    kernel_->mont_mul(out, a, b, n_.words().data(), n0_inv64_);
  } else {
    MontMulWordsGeneric(a, b, out);
  }
}

void MontgomeryContext::MontSqrWords(const uint32_t* a, uint32_t* out) const {
  mont_mul_count_.fetch_add(1, std::memory_order_relaxed);
  if (kernel_ != nullptr) {
    kernel_->mont_sqr(out, a, n_.words().data(), n0_inv64_);
  } else {
    MontMulWordsGeneric(a, a, out);
  }
}

void MontgomeryContext::ModMulWords(const uint32_t* a, const uint32_t* b,
                                    uint32_t* out) const {
  // ToMont(a), ToMont(b), MontMul, FromMont — the exact op sequence (and
  // MontMul count) of ModMul, minus the per-step BigInt boxing.
  uint32_t stack[2 * kMaxStackLimbs];
  std::vector<uint32_t> heap;
  uint32_t* ta;
  if (s_ <= kMaxStackLimbs) {
    ta = stack;
  } else {
    heap.resize(2 * s_);
    ta = heap.data();
  }
  uint32_t* tb = ta + s_;
  MontMulWords(a, r2_words_.data(), ta);
  MontMulWords(b, r2_words_.data(), tb);
  MontMulWords(ta, tb, ta);
  MontMulWords(ta, one_words_.data(), out);
}

BigInt MontgomeryContext::MontMul(const BigInt& a, const BigInt& b) const {
  FLB_DCHECK(a < n_ && b < n_, "MontMul operands must be < n");
  const std::vector<uint32_t> aw = a.ToFixedWords(s_);
  const std::vector<uint32_t> bw = b.ToFixedWords(s_);
  std::vector<uint32_t> out(s_);
  MontMulWords(aw.data(), bw.data(), out.data());
  return BigInt::FromWords(std::move(out));
}

BigInt MontgomeryContext::MontMulBasic(const BigInt& a, const BigInt& b) const {
  // Algorithm 1: T = A*B; M = T*N' mod R; U = (T + M*N)/R; subtract N once
  // if needed. N' here is the full-width -n^{-1} mod R.
  const int r_bits = static_cast<int>(s_) * mpint::kLimbBits;
  const BigInt r = BigInt::PowerOfTwo(r_bits);
  auto n_inv = BigInt::ModInverse(n_, r);
  FLB_CHECK(n_inv.ok(), "modulus not invertible mod R");
  const BigInt n_prime = BigInt::Sub(r, n_inv.value());  // -n^{-1} mod R
  const BigInt t = BigInt::Mul(a, b);
  const BigInt m = BigInt::TruncateBits(BigInt::Mul(t, n_prime), r_bits);
  BigInt u = BigInt::ShiftRight(BigInt::Add(t, BigInt::Mul(m, n_)), r_bits);
  if (u >= n_) u = BigInt::Sub(u, n_);
  return u;
}

BigInt MontgomeryContext::ToMont(const BigInt& a) const {
  return MontMul(a, r2_mod_n_);
}

BigInt MontgomeryContext::FromMont(const BigInt& a) const {
  return MontMul(a, BigInt(1));
}

BigInt MontgomeryContext::ModMul(const BigInt& a, const BigInt& b) const {
  return FromMont(MontMul(ToMont(a), ToMont(b)));
}

BigInt MontgomeryContext::ModPowFixed(const BigInt& base, const BigInt& exp,
                                      int exp_bits, int w) const {
  const size_t s = s_;
  const uint32_t* nw = n_.words().data();
  const mpint::fixed::KernelOps* k = kernel_;
  // The whole exponentiation runs on flat buffers; the counter is bumped
  // once at the end so the hot loop carries no atomic traffic.
  uint64_t muls = 0;
  const auto mul = [&](uint32_t* z, const uint32_t* x, const uint32_t* y) {
    k->mont_mul(z, x, y, nw, n0_inv64_);
    ++muls;
  };
  const auto sqr = [&](uint32_t* z, const uint32_t* x) {
    k->mont_sqr(z, x, nw, n0_inv64_);
    ++muls;
  };

  std::vector<uint32_t> buf(2 * s);
  uint32_t* mb = buf.data();       // base in Montgomery form
  uint32_t* acc = buf.data() + s;  // accumulator
  const std::vector<uint32_t> bw = base.ToFixedWords(s);
  mul(mb, bw.data(), r2_words_.data());  // ToMont(base)

  if (w == 1) {
    // Plain left-to-right square-and-multiply.
    std::copy(mb, mb + s, acc);
    for (int i = exp_bits - 2; i >= 0; --i) {
      sqr(acc, acc);
      if (exp.GetBit(i)) mul(acc, acc, mb);
    }
  } else {
    // Sliding window: odd powers mb^1, mb^3, ..., mb^(2^w - 1) as rows of
    // one flat table.
    const size_t table_size = size_t{1} << (w - 1);
    std::vector<uint32_t> table(table_size * s);
    std::copy(mb, mb + s, table.data());
    std::vector<uint32_t> mb2(s);
    sqr(mb2.data(), mb);
    for (size_t i = 1; i < table_size; ++i) {
      mul(table.data() + i * s, table.data() + (i - 1) * s, mb2.data());
    }

    std::copy(r_words_.begin(), r_words_.end(), acc);  // Montgomery form of 1
    int i = exp_bits - 1;
    while (i >= 0) {
      if (!exp.GetBit(i)) {
        sqr(acc, acc);
        --i;
        continue;
      }
      // Widest window [i .. j] ending in a set bit, at most w bits.
      int j = std::max(i - w + 1, 0);
      while (!exp.GetBit(j)) ++j;
      uint32_t window_value = 0;
      for (int b = i; b >= j; --b) {
        window_value = (window_value << 1) | (exp.GetBit(b) ? 1u : 0u);
      }
      for (int b = i; b >= j; --b) sqr(acc, acc);
      mul(acc, acc, table.data() + (window_value >> 1) * s);
      i = j - 1;
    }
  }

  mul(acc, acc, one_words_.data());  // FromMont
  mont_mul_count_.fetch_add(muls, std::memory_order_relaxed);
  return BigInt::FromWords(std::vector<uint32_t>(acc, acc + s));
}

BigInt MontgomeryContext::ModPow(const BigInt& base, const BigInt& exp,
                                 int window_bits) const {
  if (exp.IsZero()) return BigInt(1) % n_;
  BigInt b = base >= n_ ? base % n_ : base;
  const int exp_bits = exp.BitLength();
  const int w =
      window_bits > 0 ? std::min(window_bits, 8) : ChooseWindowBits(exp_bits);

  if (kernel_ != nullptr) return ModPowFixed(b, exp, exp_bits, w);

  const BigInt mb = ToMont(b);
  if (w == 1) {
    // Plain left-to-right square-and-multiply.
    BigInt acc = mb;
    for (int i = exp_bits - 2; i >= 0; --i) {
      acc = MontMul(acc, acc);
      if (exp.GetBit(i)) acc = MontMul(acc, mb);
    }
    return FromMont(acc);
  }

  // Sliding window: precompute odd powers mb^1, mb^3, ..., mb^(2^w - 1).
  const size_t table_size = size_t{1} << (w - 1);
  std::vector<BigInt> odd_pow(table_size);
  odd_pow[0] = mb;
  const BigInt mb2 = MontMul(mb, mb);
  for (size_t i = 1; i < table_size; ++i) {
    odd_pow[i] = MontMul(odd_pow[i - 1], mb2);
  }

  BigInt acc = r_mod_n_;  // Montgomery form of 1
  int i = exp_bits - 1;
  while (i >= 0) {
    if (!exp.GetBit(i)) {
      acc = MontMul(acc, acc);
      --i;
      continue;
    }
    // Widest window [i .. j] ending in a set bit, at most w bits.
    int j = std::max(i - w + 1, 0);
    while (!exp.GetBit(j)) ++j;
    uint32_t window_value = 0;
    for (int k = i; k >= j; --k) {
      window_value = (window_value << 1) | (exp.GetBit(k) ? 1u : 0u);
    }
    for (int k = i; k >= j; --k) acc = MontMul(acc, acc);
    acc = MontMul(acc, odd_pow[window_value >> 1]);
    i = j - 1;
  }
  return FromMont(acc);
}

}  // namespace flb::crypto
