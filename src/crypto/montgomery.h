// Montgomery modular arithmetic.
//
// Implements the paper's Algorithm 1 (basic Montgomery multiplication) and
// the CIOS (Coarsely Integrated Operand Scanning) word-level form that
// Algorithm 2 parallelizes on the GPU. A MontgomeryContext is bound to one
// odd modulus n and precomputes:
//   * s       — the limb width of n (all operands are fixed to s limbs),
//   * n0'     — -n^{-1} mod 2^32 (the per-word Montgomery factor),
//   * R^2 mod n — for converting into the Montgomery domain.
//
// ModPow uses sliding-window exponentiation (paper §IV-A3: complexity drops
// from e to log_{2^b} e multiplications for window width b).
//
// The simulated-GPU kernel in src/ghe runs this exact CIOS recurrence with
// limbs distributed across device threads; tests assert bit-exact agreement.

#ifndef FLB_CRYPTO_MONTGOMERY_H_
#define FLB_CRYPTO_MONTGOMERY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/mpint/bigint.h"

namespace flb::crypto {

using mpint::BigInt;

class MontgomeryContext {
 public:
  // The modulus must be odd and >= 3 (Montgomery's method requires
  // gcd(n, R) = 1 with R a power of two).
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  // Copies carry over the counter value; the context itself is immutable
  // after Create, so copies are safe to share across host threads.
  MontgomeryContext(const MontgomeryContext& other) { *this = other; }
  MontgomeryContext(MontgomeryContext&& other) noexcept { *this = other; }
  MontgomeryContext& operator=(const MontgomeryContext& other) {
    if (this != &other) {
      n_ = other.n_;
      s_ = other.s_;
      n0_inv_ = other.n0_inv_;
      r_mod_n_ = other.r_mod_n_;
      r2_mod_n_ = other.r2_mod_n_;
      mont_mul_count_.store(other.mont_mul_count_.load(),
                            std::memory_order_relaxed);
    }
    return *this;
  }
  MontgomeryContext& operator=(MontgomeryContext&& other) noexcept {
    return *this = other;
  }

  const BigInt& modulus() const { return n_; }
  // Limb width s: every Montgomery-domain value is exactly s limbs.
  size_t num_limbs() const { return s_; }
  // -n^{-1} mod 2^32.
  uint32_t n0_inv() const { return n0_inv_; }

  // Montgomery-domain conversions. Inputs must be < n.
  BigInt ToMont(const BigInt& a) const;
  BigInt FromMont(const BigInt& a) const;
  // Montgomery form of 1 (R mod n) — the neutral element for MontMul chains
  // such as fixed-base exponentiation tables.
  const BigInt& MontOne() const { return r_mod_n_; }

  // Computes a*b*R^{-1} mod n for Montgomery-domain a, b (each < n).
  BigInt MontMul(const BigInt& a, const BigInt& b) const;

  // Fixed-width limb-vector form of MontMul — the exact CIOS loop that the
  // GPU kernel parallelizes. a, b are s-limb little-endian arrays; the
  // result is written to out (s limbs). Exposed so src/ghe and the tests
  // can drive it directly.
  void MontMulWords(const uint32_t* a, const uint32_t* b, uint32_t* out) const;

  // Algorithm 1 from the paper: the "basic" (non-word-scanning) Montgomery
  // product A*B*R^{-1} mod n computed with full-width BigInt ops. Kept as a
  // differential-testing oracle and for bench_montgomery.
  BigInt MontMulBasic(const BigInt& a, const BigInt& b) const;

  // (a * b) mod n for ordinary-domain values.
  BigInt ModMul(const BigInt& a, const BigInt& b) const;

  // a^e mod n by sliding-window exponentiation over MontMul.
  // `window_bits` in [1, 8]; 0 selects a width based on e's size.
  BigInt ModPow(const BigInt& base, const BigInt& exp,
                int window_bits = 0) const;

  // Number of MontMul invocations since construction (mutable counter used
  // by the cost model and the GPU simulator's instruction accounting).
  // Relaxed atomic: one context is shared by all host pool workers, and the
  // sum of per-thread increments is order-independent.
  uint64_t mont_mul_count() const {
    return mont_mul_count_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const {
    mont_mul_count_.store(0, std::memory_order_relaxed);
  }

 private:
  MontgomeryContext() = default;

  BigInt n_;
  size_t s_ = 0;
  uint32_t n0_inv_ = 0;
  BigInt r_mod_n_;   // R mod n    (Montgomery form of 1)
  BigInt r2_mod_n_;  // R^2 mod n
  mutable std::atomic<uint64_t> mont_mul_count_{0};
};

// Picks the sliding-window width the way HAC 14.85's table does: wider
// windows for longer exponents.
int ChooseWindowBits(int exp_bits);

}  // namespace flb::crypto

#endif  // FLB_CRYPTO_MONTGOMERY_H_
