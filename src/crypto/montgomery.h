// Montgomery modular arithmetic.
//
// Implements the paper's Algorithm 1 (basic Montgomery multiplication) and
// the CIOS (Coarsely Integrated Operand Scanning) word-level form that
// Algorithm 2 parallelizes on the GPU. A MontgomeryContext is bound to one
// odd modulus n and precomputes:
//   * s       — the limb width of n (all operands are fixed to s limbs),
//   * n0'     — -n^{-1} mod 2^32 (the per-word Montgomery factor),
//   * R^2 mod n — for converting into the Montgomery domain,
//   * a fixed-width kernel (src/mpint/fixed_kernels.h) when s is one of
//     the instantiated Paillier widths — the stack-allocated, compile-time-
//     width CIOS that makes MontMul/ModPow run without heap traffic. Odd
//     widths (and FLB_FIXED_KERNELS=0) keep the generic radix-2^32 path,
//     which doubles as the bit-exactness oracle.
//
// ModPow uses sliding-window exponentiation (paper §IV-A3: complexity drops
// from e to log_{2^b} e multiplications for window width b). With a fixed
// kernel the whole exponentiation loop runs on flat limb buffers; only the
// final result is boxed back into a BigInt.
//
// The simulated-GPU kernel in src/ghe runs this exact CIOS recurrence with
// limbs distributed across device threads; tests assert bit-exact agreement.

#ifndef FLB_CRYPTO_MONTGOMERY_H_
#define FLB_CRYPTO_MONTGOMERY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/mpint/bigint.h"
#include "src/mpint/fixed_kernels.h"

namespace flb::crypto {

using mpint::BigInt;

class MontgomeryContext {
 public:
  // The modulus must be odd and >= 3 (Montgomery's method requires
  // gcd(n, R) = 1 with R a power of two). `use_fixed_kernels` selects the
  // fixed-width kernel when the modulus width has one (pass false to force
  // the generic path, e.g. for differential benchmarks); FLB_FIXED_KERNELS=0
  // force-disables process-wide. Results are bit-identical either way.
  static Result<MontgomeryContext> Create(const BigInt& modulus,
                                          bool use_fixed_kernels = true);

  // Copies carry over the counter value; the context itself is immutable
  // after Create, so copies are safe to share across host threads.
  MontgomeryContext(const MontgomeryContext& other) { *this = other; }
  MontgomeryContext(MontgomeryContext&& other) noexcept { *this = other; }
  MontgomeryContext& operator=(const MontgomeryContext& other) {
    if (this != &other) {
      n_ = other.n_;
      s_ = other.s_;
      n0_inv_ = other.n0_inv_;
      n0_inv64_ = other.n0_inv64_;
      kernel_ = other.kernel_;
      r_mod_n_ = other.r_mod_n_;
      r2_mod_n_ = other.r2_mod_n_;
      r_words_ = other.r_words_;
      r2_words_ = other.r2_words_;
      one_words_ = other.one_words_;
      mont_mul_count_.store(other.mont_mul_count_.load(),
                            std::memory_order_relaxed);
    }
    return *this;
  }
  MontgomeryContext& operator=(MontgomeryContext&& other) noexcept {
    return *this = other;
  }

  const BigInt& modulus() const { return n_; }
  // Limb width s: every Montgomery-domain value is exactly s limbs.
  size_t num_limbs() const { return s_; }
  // -n^{-1} mod 2^32.
  uint32_t n0_inv() const { return n0_inv_; }
  // The fixed-width kernel width backing this context, or 0 when MontMul
  // and ModPow run on the generic radix-2^32 path.
  size_t fixed_kernel_width() const {
    return kernel_ != nullptr ? kernel_->limbs : 0;
  }

  // Montgomery-domain conversions. Inputs must be < n.
  BigInt ToMont(const BigInt& a) const;
  BigInt FromMont(const BigInt& a) const;
  // Montgomery form of 1 (R mod n) — the neutral element for MontMul chains
  // such as fixed-base exponentiation tables.
  const BigInt& MontOne() const { return r_mod_n_; }

  // Computes a*b*R^{-1} mod n for Montgomery-domain a, b (each < n).
  BigInt MontMul(const BigInt& a, const BigInt& b) const;

  // Fixed-width limb-vector form of MontMul. a, b are s-limb little-endian
  // arrays; the result is written to out (s limbs; out may alias a or b).
  // Dispatches to the fixed-width kernel when one is bound, else to the
  // generic CIOS. Exposed so src/ghe and the batch paths can drive it
  // directly on flat (structure-of-arrays) rows.
  void MontMulWords(const uint32_t* a, const uint32_t* b, uint32_t* out) const;
  // Montgomery squaring on flat limbs: out = a*a*R^{-1} mod n.
  void MontSqrWords(const uint32_t* a, uint32_t* out) const;
  // (a * b) mod n entirely on flat s-limb rows (ToMont/MontMul/FromMont
  // without BigInt boxing). out may alias a or b.
  void ModMulWords(const uint32_t* a, const uint32_t* b, uint32_t* out) const;

  // The generic radix-2^32 CIOS loop — the exact recurrence the GPU kernel
  // parallelizes and the bit-exactness oracle the fixed-width kernels are
  // fuzzed against. Does not bump the MontMul counter.
  void MontMulWordsGeneric(const uint32_t* a, const uint32_t* b,
                           uint32_t* out) const;

  // Algorithm 1 from the paper: the "basic" (non-word-scanning) Montgomery
  // product A*B*R^{-1} mod n computed with full-width BigInt ops. Kept as a
  // differential-testing oracle and for bench_montgomery.
  BigInt MontMulBasic(const BigInt& a, const BigInt& b) const;

  // (a * b) mod n for ordinary-domain values.
  BigInt ModMul(const BigInt& a, const BigInt& b) const;

  // a^e mod n by sliding-window exponentiation over MontMul.
  // `window_bits` in [1, 8]; 0 selects a width based on e's size.
  BigInt ModPow(const BigInt& base, const BigInt& exp,
                int window_bits = 0) const;

  // Number of MontMul invocations since construction (mutable counter used
  // by the cost model and the GPU simulator's instruction accounting).
  // Relaxed atomic: one context is shared by all host pool workers, and the
  // sum of per-thread increments is order-independent. The fixed-width
  // ModPow accumulates locally and adds once per call; totals match the
  // generic path MontMul-for-MontMul.
  uint64_t mont_mul_count() const {
    return mont_mul_count_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const {
    mont_mul_count_.store(0, std::memory_order_relaxed);
  }

 private:
  MontgomeryContext() = default;

  // Sliding-window ModPow on flat limb buffers via the fixed kernel;
  // bit-identical to (and MontMul-count-identical with) the generic loop.
  BigInt ModPowFixed(const BigInt& base, const BigInt& exp, int exp_bits,
                     int window_bits) const;

  BigInt n_;
  size_t s_ = 0;
  uint32_t n0_inv_ = 0;
  uint64_t n0_inv64_ = 0;
  const mpint::fixed::KernelOps* kernel_ = nullptr;  // null = generic path
  BigInt r_mod_n_;   // R mod n    (Montgomery form of 1)
  BigInt r2_mod_n_;  // R^2 mod n
  // Flat s-limb copies for the kernel paths (avoid re-boxing per call).
  std::vector<uint32_t> r_words_;    // R mod n
  std::vector<uint32_t> r2_words_;   // R^2 mod n
  std::vector<uint32_t> one_words_;  // 1
  mutable std::atomic<uint64_t> mont_mul_count_{0};
};

// Picks the sliding-window width the way HAC 14.85's table does: wider
// windows for longer exponents.
int ChooseWindowBits(int exp_bits);

}  // namespace flb::crypto

#endif  // FLB_CRYPTO_MONTGOMERY_H_
