#include "src/crypto/paillier.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/crypto/prime.h"
#include "src/mpint/limb_matrix.h"

namespace flb::crypto {

namespace {

// L(x) = (x - 1) / d, defined for x ≡ 1 (mod d).
Result<BigInt> LFunction(const BigInt& x, const BigInt& d) {
  if (x.IsZero()) {
    return Status::CryptoError("L function: x must be >= 1");
  }
  return BigInt::Div(BigInt::Sub(x, BigInt(1)), d);
}

}  // namespace

Result<PaillierKeyPair> PaillierKeyGen(int key_bits, Rng& rng,
                                       const PaillierOptions& options) {
  if (key_bits < 64 || key_bits % 2 != 0) {
    return Status::InvalidArgument(
        "Paillier key size must be even and >= 64 bits");
  }
  const int prime_bits = key_bits / 2;

  for (int attempt = 0; attempt < 64; ++attempt) {
    FLB_ASSIGN_OR_RETURN(BigInt p, GeneratePrime(prime_bits, rng));
    FLB_ASSIGN_OR_RETURN(BigInt q, GenerateDistinctPrime(prime_bits, p, rng));
    BigInt n = BigInt::Mul(p, q);
    if (n.BitLength() != key_bits) continue;  // product fell one bit short
    const BigInt p_minus_1 = BigInt::Sub(p, BigInt(1));
    const BigInt q_minus_1 = BigInt::Sub(q, BigInt(1));
    // gcd(n, phi) == 1 is guaranteed when p, q are distinct same-length
    // primes, but verify anyway (paper §III-B requires it).
    if (!BigInt::Gcd(n, BigInt::Mul(p_minus_1, q_minus_1)).IsOne()) continue;

    PaillierKeyPair keys;
    keys.pub.key_bits = key_bits;
    keys.pub.n = n;
    keys.pub.n_squared = BigInt::Mul(n, n);
    keys.pub.g_is_n_plus_1 = options.use_g_n_plus_1;
    keys.priv.p = std::move(p);
    keys.priv.q = std::move(q);
    keys.priv.lambda = BigInt::Lcm(p_minus_1, q_minus_1);

    FLB_ASSIGN_OR_RETURN(auto n2_ctx,
                         MontgomeryContext::Create(keys.pub.n_squared));
    if (options.use_g_n_plus_1) {
      keys.pub.g = BigInt::Add(n, BigInt(1));
    } else {
      // Random g in Z*_{n^2} with L(g^lambda) invertible mod n; retry g on
      // the rare failure.
      bool found = false;
      for (int g_attempt = 0; g_attempt < 32 && !found; ++g_attempt) {
        BigInt g = DrawUnit(keys.pub.n_squared, rng);
        const BigInt g_lambda = n2_ctx.ModPow(g, keys.priv.lambda);
        FLB_ASSIGN_OR_RETURN(BigInt l, LFunction(g_lambda, n));
        auto mu = BigInt::ModInverse(l, n);
        if (!mu.ok()) continue;
        keys.pub.g = std::move(g);
        keys.priv.mu = std::move(mu).value();
        found = true;
      }
      if (!found) continue;
    }
    if (options.use_g_n_plus_1) {
      // g = n+1: g^lambda = 1 + lambda*n (mod n^2), so L = lambda mod n and
      // mu = lambda^{-1} mod n.
      FLB_ASSIGN_OR_RETURN(BigInt lambda_mod_n,
                           BigInt::Mod(keys.priv.lambda, n));
      auto mu = BigInt::ModInverse(lambda_mod_n, n);
      if (!mu.ok()) continue;
      keys.priv.mu = std::move(mu).value();
    }
    return keys;
  }
  return Status::Internal("PaillierKeyGen: exceeded attempt budget");
}

Result<PaillierContext> PaillierContext::CreatePublic(
    PaillierPublicKey pub, const PaillierOptions& options) {
  if (pub.n.IsZero() || pub.n_squared != BigInt::Mul(pub.n, pub.n)) {
    return Status::InvalidArgument("inconsistent Paillier public key");
  }
  PaillierContext ctx;
  ctx.use_fixed_width_ = options.use_fixed_width_kernels;
  FLB_ASSIGN_OR_RETURN(ctx.eval_,
                       PaillierEval::Create(pub, /*priv=*/nullptr,
                                            /*crt=*/false,
                                            ctx.use_fixed_width_));
  ctx.secure_obfuscation_ = options.secure_obfuscation;
  ctx.pool_size_ = std::max(1, options.obfuscation_pool_size);
  ctx.pool_ = std::make_shared<ObfuscationPool>(
      ctx.eval_->n2_ctx_ptr(), pub.n, ctx.pool_size_, options.obfuscation_seed);
  ctx.pub_ = std::move(pub);
  return ctx;
}

Result<PaillierContext> PaillierContext::Create(
    PaillierKeyPair keys, const PaillierOptions& options) {
  FLB_ASSIGN_OR_RETURN(PaillierContext ctx, CreatePublic(keys.pub, options));
  ctx.use_crt_ = options.use_crt_decryption;
  FLB_ASSIGN_OR_RETURN(
      ctx.eval_,
      PaillierEval::Create(ctx.pub_, &keys.priv, ctx.use_crt_,
                           ctx.use_fixed_width_));
  ctx.priv_ = std::move(keys.priv);
  return ctx;
}

BigInt PaillierContext::GPowM(const BigInt& m) const {
  if (pub_.g_is_n_plus_1) {
    // (n+1)^m = 1 + m*n (mod n^2): one multiply instead of an exponentiation.
    return BigInt::Add(BigInt::Mul(m, pub_.n), BigInt(1)) % pub_.n_squared;
  }
  return eval_->FixedBaseGPow(m);
}

BigInt PaillierContext::ApplyObfuscatorMont(const BigInt& gm,
                                            const BigInt& obf_mont) const {
  // MontMul(gm, obf*R) = gm * obf mod n^2: the Montgomery factors cancel, so
  // applying a pool obfuscator costs a single MontMul.
  return eval_->n2_ctx().MontMul(gm, obf_mont);
}

Result<BigInt> PaillierContext::Encrypt(const BigInt& m, Rng& rng) const {
  if (m >= pub_.n) {
    return Status::OutOfRange("Paillier plaintext must be < n");
  }
  op_counts_.encrypts.fetch_add(1, std::memory_order_relaxed);
  const BigInt gm = GPowM(m);
  if (secure_obfuscation_) {
    const BigInt r = DrawUnit(pub_.n, rng);
    // r^n mod n^2 — the dominant cost of encryption.
    const BigInt rn = eval_->n2_ctx().ModPow(r, pub_.n);
    return eval_->n2_ctx().ModMul(gm, rn);
  }
  return eval_->n2_ctx().ModMul(gm, pool_->Next());
}

Result<BigInt> PaillierContext::DecryptPlain(const BigInt& c) const {
  const MontgomeryContext& n2 = eval_->n2_ctx();
  const MontgomeryContext& nc = eval_->n_ctx();
  const BigInt c_lambda = n2.ModPow(c, priv_->lambda);
  FLB_ASSIGN_OR_RETURN(BigInt l, LFunction(c_lambda, pub_.n));
  // mu is cached in Montgomery form, so L * mu costs 3 MontMuls, not 4.
  return nc.FromMont(nc.MontMul(nc.ToMont(l), eval_->mu_mont()));
}

Result<BigInt> PaillierContext::DecryptCrt(const BigInt& c) const {
  // Decrypt mod p and mod q independently, then CRT-combine. Exponents are
  // p-1 / q-1 (half-width), moduli are p^2 / q^2 (half-width), so the limb
  // work is ~1/4 of the plain path per leg.
  const BigInt& p = priv_->p;
  const BigInt& q = priv_->q;
  const MontgomeryContext& p2 = eval_->p2_ctx();
  const MontgomeryContext& q2 = eval_->q2_ctx();
  const BigInt cp = c % p2.modulus();
  const BigInt cq = c % q2.modulus();
  const BigInt xp = p2.ModPow(cp, eval_->p_minus_1());
  const BigInt xq = q2.ModPow(cq, eval_->q_minus_1());
  FLB_ASSIGN_OR_RETURN(BigInt lp, LFunction(xp, p));
  FLB_ASSIGN_OR_RETURN(BigInt lq, LFunction(xq, q));
  const BigInt mp = BigInt::Mul(lp, eval_->hp()) % p;
  const BigInt mq = BigInt::Mul(lq, eval_->hq()) % q;
  // m = mp + p * ((mq - mp) * p^{-1} mod q). The difference is only used
  // mod q, and mp can reach p - 1 > q + mq when p > q, so reduce mp mod q
  // before the guarded subtraction.
  const BigInt mp_mod_q = mp % q;
  BigInt diff;
  if (mq >= mp_mod_q) {
    diff = BigInt::Sub(mq, mp_mod_q);
  } else {
    diff = BigInt::Sub(BigInt::Add(mq, q), mp_mod_q);
  }
  const BigInt t = BigInt::Mul(diff, eval_->p_inv_mod_q()) % q;
  return BigInt::Add(mp, BigInt::Mul(p, t));
}

Result<BigInt> PaillierContext::Decrypt(const BigInt& c) const {
  if (!priv_.has_value()) {
    return Status::FailedPrecondition("Paillier context has no private key");
  }
  if (c >= pub_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext must be < n^2");
  }
  op_counts_.decrypts.fetch_add(1, std::memory_order_relaxed);
  return use_crt_ ? DecryptCrt(c) : DecryptPlain(c);
}

Result<BigInt> PaillierContext::Add(const BigInt& c1, const BigInt& c2) const {
  if (c1 >= pub_.n_squared || c2 >= pub_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext must be < n^2");
  }
  op_counts_.adds.fetch_add(1, std::memory_order_relaxed);
  return eval_->n2_ctx().ModMul(c1, c2);
}

Result<BigInt> PaillierContext::AddPlain(const BigInt& c,
                                         const BigInt& k) const {
  if (c >= pub_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext must be < n^2");
  }
  if (k >= pub_.n) {
    return Status::OutOfRange("Paillier plaintext must be < n");
  }
  op_counts_.adds.fetch_add(1, std::memory_order_relaxed);
  return eval_->n2_ctx().ModMul(c, GPowM(k));
}

Result<BigInt> PaillierContext::ScalarMul(const BigInt& c,
                                          const BigInt& k) const {
  if (c >= pub_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext must be < n^2");
  }
  op_counts_.scalar_muls.fetch_add(1, std::memory_order_relaxed);
  return ScalarMulUncounted(c, k);
}

BigInt PaillierContext::ScalarMulUncounted(const BigInt& c,
                                           const BigInt& k) const {
  // Fixed-point encodings represent a negative scalar -m as n - m, which
  // would force a full |n|-bit exponentiation. E(x)^(n-m) = E(-m*x) =
  // (E(x)^{-1})^m, and m is small, so invert the ciphertext and keep the
  // short exponent (the python-paillier optimization FATE relies on).
  if (k > eval_->half_n()) {
    const BigInt m = BigInt::Sub(pub_.n, k);
    if (m.BitLength() * 2 < k.BitLength()) {
      auto c_inv = BigInt::ModInverse(c, pub_.n_squared);
      if (c_inv.ok()) {
        return eval_->n2_ctx().ModPow(c_inv.value(), m);
      }
      // Non-invertible ciphertexts cannot occur for honest inputs; fall
      // through to the direct exponentiation.
    }
  }
  return eval_->n2_ctx().ModPow(c, k);
}

// ---- Batch helpers ----------------------------------------------------------
//
// Determinism contract: element i's output depends only on (inputs, i, one
// seed drawn from rng). Work distribution never feeds back into results, so
// any thread count — including the serial fallback — produces identical
// bytes. Op counters are bumped once per batch on success (a failed batch
// counts nothing), keeping counts independent of which elements ran before
// the error was discovered.
//
// Layout: batch bodies run over mpint::LimbMatrix — one contiguous
// structure-of-arrays limb buffer per operand — so each ThreadPool worker
// streams flat fixed-width rows through the Montgomery kernels instead of
// chasing per-element BigInt heap blocks. Inputs are packed once before the
// fan-out, outputs unpacked once after the join; element values are
// unchanged (the kernels produce the canonical representatives the BigInt
// path produces).

Result<std::vector<BigInt>> PaillierContext::EncryptBatch(
    const std::vector<BigInt>& ms, Rng& rng, common::ThreadPool* pool) const {
  common::ThreadPool& tp = pool != nullptr ? *pool : common::ThreadPool::Global();
  const uint64_t seed = rng.NextU64();
  const size_t count = ms.size();
  std::vector<BigInt> out(count);
  const MontgomeryContext& n2 = eval_->n2_ctx();

  if (secure_obfuscation_) {
    // Fresh r^n per element; randomness split per element so the partition
    // does not matter.
    FLB_RETURN_IF_ERROR(common::ParallelForEachStatus(
        tp, count, [&](size_t i) -> Status {
          if (ms[i] >= pub_.n) {
            return Status::OutOfRange("Paillier plaintext must be < n");
          }
          Rng er = Rng::ForStream(seed, static_cast<uint64_t>(i));
          const BigInt r = DrawUnit(pub_.n, er);
          const BigInt rn = n2.ModPow(r, pub_.n);
          out[i] = n2.ModMul(GPowM(ms[i]), rn);
          return Status::OK();
        }));
    op_counts_.encrypts.fetch_add(count, std::memory_order_relaxed);
    return out;
  }

  // Pool path: k base obfuscators (the only full powms, parallel), then a
  // serial squaring-refresh walk fixes obfuscator i deterministically.
  if (count == 0) return out;
  const size_t w = n2.num_limbs();
  const size_t k = std::min(static_cast<size_t>(pool_size_), count);
  mpint::LimbMatrix base(k, w);
  FLB_RETURN_IF_ERROR(common::ParallelForEachStatus(
      tp, k, [&](size_t j) -> Status {
        Rng er = Rng::ForStream(seed, static_cast<uint64_t>(j));
        const BigInt r = DrawUnit(pub_.n, er);
        base.SetRow(j, n2.ToMont(n2.ModPow(r, pub_.n)));
        return Status::OK();
      }));
  // Obfuscator stream as one contiguous SoA buffer: row i is obfuscator i
  // (Montgomery domain), refreshed in place by one flat Montgomery
  // squaring ((r^n)^2 = (r^2)^n).
  mpint::LimbMatrix rn_mont(count, w);
  for (size_t i = 0; i < count; ++i) {
    uint32_t* slot = base.row(i % k);
    std::copy(slot, slot + w, rn_mont.row(i));
    n2.MontSqrWords(slot, slot);
  }
  mpint::LimbMatrix cipher(count, w);
  FLB_RETURN_IF_ERROR(common::ParallelForEachStatus(
      tp, count, [&](size_t i) -> Status {
        if (ms[i] >= pub_.n) {
          return Status::OutOfRange("Paillier plaintext must be < n");
        }
        // MontMul(gm, obf*R) = gm * obf mod n^2: the Montgomery factors
        // cancel, so applying the obfuscator costs a single flat MontMul.
        const std::vector<uint32_t> gw = GPowM(ms[i]).ToFixedWords(w);
        n2.MontMulWords(gw.data(), rn_mont.row(i), cipher.row(i));
        return Status::OK();
      }));
  out = cipher.Unpack();
  op_counts_.encrypts.fetch_add(count, std::memory_order_relaxed);
  return out;
}

Result<std::vector<BigInt>> PaillierContext::DecryptBatch(
    const std::vector<BigInt>& cs, common::ThreadPool* pool) const {
  if (!priv_.has_value()) {
    return Status::FailedPrecondition("Paillier context has no private key");
  }
  common::ThreadPool& tp = pool != nullptr ? *pool : common::ThreadPool::Global();
  // Plaintexts land in a contiguous SoA buffer at the modulus width (the
  // exponentiations themselves are per-element, CRT-leg-structured).
  mpint::LimbMatrix plain(cs.size(), eval_->n_ctx().num_limbs());
  FLB_RETURN_IF_ERROR(common::ParallelForEachStatus(
      tp, cs.size(), [&](size_t i) -> Status {
        if (cs[i] >= pub_.n_squared) {
          return Status::OutOfRange("Paillier ciphertext must be < n^2");
        }
        FLB_ASSIGN_OR_RETURN(BigInt m,
                             use_crt_ ? DecryptCrt(cs[i]) : DecryptPlain(cs[i]));
        plain.SetRow(i, m);
        return Status::OK();
      }));
  op_counts_.decrypts.fetch_add(cs.size(), std::memory_order_relaxed);
  return plain.Unpack();
}

Result<std::vector<BigInt>> PaillierContext::AddBatch(
    const std::vector<BigInt>& c1, const std::vector<BigInt>& c2,
    common::ThreadPool* pool) const {
  if (c1.size() != c2.size()) {
    return Status::InvalidArgument("AddBatch: size mismatch");
  }
  common::ThreadPool& tp = pool != nullptr ? *pool : common::ThreadPool::Global();
  const MontgomeryContext& n2 = eval_->n2_ctx();
  const size_t w = n2.num_limbs();
  // Both operand streams packed once, then each worker multiplies flat
  // contiguous rows (range checks still run against the original values).
  const mpint::LimbMatrix a = mpint::LimbMatrix::Pack(c1, w);
  const mpint::LimbMatrix b = mpint::LimbMatrix::Pack(c2, w);
  mpint::LimbMatrix o(c1.size(), w);
  FLB_RETURN_IF_ERROR(common::ParallelForEachStatus(
      tp, c1.size(), [&](size_t i) -> Status {
        if (c1[i] >= pub_.n_squared || c2[i] >= pub_.n_squared) {
          return Status::OutOfRange("Paillier ciphertext must be < n^2");
        }
        n2.ModMulWords(a.row(i), b.row(i), o.row(i));
        return Status::OK();
      }));
  op_counts_.adds.fetch_add(c1.size(), std::memory_order_relaxed);
  return o.Unpack();
}

Result<std::vector<BigInt>> PaillierContext::AddPlainBatch(
    const std::vector<BigInt>& cs, const std::vector<BigInt>& ks,
    common::ThreadPool* pool) const {
  if (cs.size() != ks.size()) {
    return Status::InvalidArgument("AddPlainBatch: size mismatch");
  }
  common::ThreadPool& tp = pool != nullptr ? *pool : common::ThreadPool::Global();
  const MontgomeryContext& n2 = eval_->n2_ctx();
  const size_t w = n2.num_limbs();
  const mpint::LimbMatrix a = mpint::LimbMatrix::Pack(cs, w);
  mpint::LimbMatrix o(cs.size(), w);
  FLB_RETURN_IF_ERROR(common::ParallelForEachStatus(
      tp, cs.size(), [&](size_t i) -> Status {
        if (cs[i] >= pub_.n_squared) {
          return Status::OutOfRange("Paillier ciphertext must be < n^2");
        }
        if (ks[i] >= pub_.n) {
          return Status::OutOfRange("Paillier plaintext must be < n");
        }
        const std::vector<uint32_t> gw = GPowM(ks[i]).ToFixedWords(w);
        n2.ModMulWords(a.row(i), gw.data(), o.row(i));
        return Status::OK();
      }));
  op_counts_.adds.fetch_add(cs.size(), std::memory_order_relaxed);
  return o.Unpack();
}

Result<std::vector<BigInt>> PaillierContext::ScalarMulBatch(
    const std::vector<BigInt>& cs, const std::vector<BigInt>& ks,
    common::ThreadPool* pool) const {
  if (cs.size() != ks.size()) {
    return Status::InvalidArgument("ScalarMulBatch: size mismatch");
  }
  common::ThreadPool& tp = pool != nullptr ? *pool : common::ThreadPool::Global();
  // Exponentiations are per-element; the results land in one contiguous
  // SoA buffer instead of per-element BigInt heap blocks.
  mpint::LimbMatrix o(cs.size(), eval_->n2_ctx().num_limbs());
  FLB_RETURN_IF_ERROR(common::ParallelForEachStatus(
      tp, cs.size(), [&](size_t i) -> Status {
        if (cs[i] >= pub_.n_squared) {
          return Status::OutOfRange("Paillier ciphertext must be < n^2");
        }
        o.SetRow(i, ScalarMulUncounted(cs[i], ks[i]));
        return Status::OK();
      }));
  op_counts_.scalar_muls.fetch_add(cs.size(), std::memory_order_relaxed);
  return o.Unpack();
}

}  // namespace flb::crypto
