#include "src/crypto/paillier.h"

#include <utility>

#include "src/common/check.h"
#include "src/crypto/prime.h"

namespace flb::crypto {

namespace {

// L(x) = (x - 1) / d, defined for x ≡ 1 (mod d).
Result<BigInt> LFunction(const BigInt& x, const BigInt& d) {
  if (x.IsZero()) {
    return Status::CryptoError("L function: x must be >= 1");
  }
  return BigInt::Div(BigInt::Sub(x, BigInt(1)), d);
}

// Draws r uniform in [1, n) with gcd(r, n) = 1. For n = p*q with large
// primes a random r is coprime with overwhelming probability, so the loop
// almost never repeats.
BigInt DrawUnit(const BigInt& n, Rng& rng) {
  for (;;) {
    BigInt r = BigInt::RandomBelow(rng, n);
    if (r.IsZero()) continue;
    if (BigInt::Gcd(r, n).IsOne()) return r;
  }
}

}  // namespace

Result<PaillierKeyPair> PaillierKeyGen(int key_bits, Rng& rng,
                                       const PaillierOptions& options) {
  if (key_bits < 64 || key_bits % 2 != 0) {
    return Status::InvalidArgument(
        "Paillier key size must be even and >= 64 bits");
  }
  const int prime_bits = key_bits / 2;

  for (int attempt = 0; attempt < 64; ++attempt) {
    FLB_ASSIGN_OR_RETURN(BigInt p, GeneratePrime(prime_bits, rng));
    FLB_ASSIGN_OR_RETURN(BigInt q, GenerateDistinctPrime(prime_bits, p, rng));
    BigInt n = BigInt::Mul(p, q);
    if (n.BitLength() != key_bits) continue;  // product fell one bit short
    const BigInt p_minus_1 = BigInt::Sub(p, BigInt(1));
    const BigInt q_minus_1 = BigInt::Sub(q, BigInt(1));
    // gcd(n, phi) == 1 is guaranteed when p, q are distinct same-length
    // primes, but verify anyway (paper §III-B requires it).
    if (!BigInt::Gcd(n, BigInt::Mul(p_minus_1, q_minus_1)).IsOne()) continue;

    PaillierKeyPair keys;
    keys.pub.key_bits = key_bits;
    keys.pub.n = n;
    keys.pub.n_squared = BigInt::Mul(n, n);
    keys.pub.g_is_n_plus_1 = options.use_g_n_plus_1;
    keys.priv.p = std::move(p);
    keys.priv.q = std::move(q);
    keys.priv.lambda = BigInt::Lcm(p_minus_1, q_minus_1);

    FLB_ASSIGN_OR_RETURN(auto n2_ctx,
                         MontgomeryContext::Create(keys.pub.n_squared));
    if (options.use_g_n_plus_1) {
      keys.pub.g = BigInt::Add(n, BigInt(1));
    } else {
      // Random g in Z*_{n^2} with L(g^lambda) invertible mod n; retry g on
      // the rare failure.
      bool found = false;
      for (int g_attempt = 0; g_attempt < 32 && !found; ++g_attempt) {
        BigInt g = DrawUnit(keys.pub.n_squared, rng);
        const BigInt g_lambda = n2_ctx.ModPow(g, keys.priv.lambda);
        FLB_ASSIGN_OR_RETURN(BigInt l, LFunction(g_lambda, n));
        auto mu = BigInt::ModInverse(l, n);
        if (!mu.ok()) continue;
        keys.pub.g = std::move(g);
        keys.priv.mu = std::move(mu).value();
        found = true;
      }
      if (!found) continue;
    }
    if (options.use_g_n_plus_1) {
      // g = n+1: g^lambda = 1 + lambda*n (mod n^2), so L = lambda mod n and
      // mu = lambda^{-1} mod n.
      FLB_ASSIGN_OR_RETURN(BigInt lambda_mod_n,
                           BigInt::Mod(keys.priv.lambda, n));
      auto mu = BigInt::ModInverse(lambda_mod_n, n);
      if (!mu.ok()) continue;
      keys.priv.mu = std::move(mu).value();
    }
    return keys;
  }
  return Status::Internal("PaillierKeyGen: exceeded attempt budget");
}

Result<PaillierContext> PaillierContext::CreatePublic(PaillierPublicKey pub) {
  if (pub.n.IsZero() || pub.n_squared != BigInt::Mul(pub.n, pub.n)) {
    return Status::InvalidArgument("inconsistent Paillier public key");
  }
  PaillierContext ctx;
  FLB_ASSIGN_OR_RETURN(auto n2, MontgomeryContext::Create(pub.n_squared));
  FLB_ASSIGN_OR_RETURN(auto n_ctx, MontgomeryContext::Create(pub.n));
  ctx.n2_ctx_ = std::make_shared<MontgomeryContext>(std::move(n2));
  ctx.n_ctx_ = std::make_shared<MontgomeryContext>(std::move(n_ctx));
  ctx.pub_ = std::move(pub);
  return ctx;
}

Result<PaillierContext> PaillierContext::Create(
    PaillierKeyPair keys, const PaillierOptions& options) {
  FLB_ASSIGN_OR_RETURN(PaillierContext ctx, CreatePublic(keys.pub));
  ctx.use_crt_ = options.use_crt_decryption;
  if (ctx.use_crt_) {
    const BigInt p2 = BigInt::Mul(keys.priv.p, keys.priv.p);
    const BigInt q2 = BigInt::Mul(keys.priv.q, keys.priv.q);
    FLB_ASSIGN_OR_RETURN(auto p2_ctx, MontgomeryContext::Create(p2));
    FLB_ASSIGN_OR_RETURN(auto q2_ctx, MontgomeryContext::Create(q2));
    ctx.p2_ctx_ = std::make_shared<MontgomeryContext>(std::move(p2_ctx));
    ctx.q2_ctx_ = std::make_shared<MontgomeryContext>(std::move(q2_ctx));

    const BigInt p_minus_1 = BigInt::Sub(keys.priv.p, BigInt(1));
    const BigInt q_minus_1 = BigInt::Sub(keys.priv.q, BigInt(1));
    const BigInt gp = ctx.p2_ctx_->ModPow(keys.pub.g % p2, p_minus_1);
    const BigInt gq = ctx.q2_ctx_->ModPow(keys.pub.g % q2, q_minus_1);
    FLB_ASSIGN_OR_RETURN(BigInt lp, LFunction(gp, keys.priv.p));
    FLB_ASSIGN_OR_RETURN(BigInt lq, LFunction(gq, keys.priv.q));
    FLB_ASSIGN_OR_RETURN(ctx.hp_, BigInt::ModInverse(lp, keys.priv.p));
    FLB_ASSIGN_OR_RETURN(ctx.hq_, BigInt::ModInverse(lq, keys.priv.q));
    FLB_ASSIGN_OR_RETURN(ctx.p_inv_mod_q_,
                         BigInt::ModInverse(keys.priv.p, keys.priv.q));
  }
  ctx.priv_ = std::move(keys.priv);
  return ctx;
}

Result<BigInt> PaillierContext::Encrypt(const BigInt& m, Rng& rng) const {
  if (m >= pub_.n) {
    return Status::OutOfRange("Paillier plaintext must be < n");
  }
  ++op_counts_.encrypts;
  const BigInt r = DrawUnit(pub_.n, rng);
  // r^n mod n^2 — the dominant cost of encryption.
  const BigInt rn = n2_ctx_->ModPow(r, pub_.n);
  BigInt gm;
  if (pub_.g_is_n_plus_1) {
    // (n+1)^m = 1 + m*n (mod n^2): one multiply instead of an exponentiation.
    gm = BigInt::Add(BigInt::Mul(m, pub_.n), BigInt(1)) % pub_.n_squared;
  } else {
    gm = n2_ctx_->ModPow(pub_.g, m);
  }
  return n2_ctx_->ModMul(gm, rn);
}

Result<BigInt> PaillierContext::DecryptPlain(const BigInt& c) const {
  const BigInt c_lambda = n2_ctx_->ModPow(c, priv_->lambda);
  FLB_ASSIGN_OR_RETURN(BigInt l, LFunction(c_lambda, pub_.n));
  return n_ctx_->ModMul(l, priv_->mu);
}

Result<BigInt> PaillierContext::DecryptCrt(const BigInt& c) const {
  // Decrypt mod p and mod q independently, then CRT-combine. Exponents are
  // p-1 / q-1 (half-width), moduli are p^2 / q^2 (half-width), so the limb
  // work is ~1/4 of the plain path per leg.
  const BigInt& p = priv_->p;
  const BigInt& q = priv_->q;
  const BigInt cp = c % p2_ctx_->modulus();
  const BigInt cq = c % q2_ctx_->modulus();
  const BigInt xp = p2_ctx_->ModPow(cp, BigInt::Sub(p, BigInt(1)));
  const BigInt xq = q2_ctx_->ModPow(cq, BigInt::Sub(q, BigInt(1)));
  FLB_ASSIGN_OR_RETURN(BigInt lp, LFunction(xp, p));
  FLB_ASSIGN_OR_RETURN(BigInt lq, LFunction(xq, q));
  const BigInt mp = BigInt::Mul(lp, hp_) % p;
  const BigInt mq = BigInt::Mul(lq, hq_) % q;
  // m = mp + p * ((mq - mp) * p^{-1} mod q)
  BigInt diff;
  if (mq >= mp) {
    diff = BigInt::Sub(mq, mp);
  } else {
    diff = BigInt::Sub(BigInt::Add(mq, q), mp);
  }
  const BigInt t = BigInt::Mul(diff, p_inv_mod_q_) % q;
  return BigInt::Add(mp, BigInt::Mul(p, t));
}

Result<BigInt> PaillierContext::Decrypt(const BigInt& c) const {
  if (!priv_.has_value()) {
    return Status::FailedPrecondition("Paillier context has no private key");
  }
  if (c >= pub_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext must be < n^2");
  }
  ++op_counts_.decrypts;
  return use_crt_ ? DecryptCrt(c) : DecryptPlain(c);
}

Result<BigInt> PaillierContext::Add(const BigInt& c1, const BigInt& c2) const {
  if (c1 >= pub_.n_squared || c2 >= pub_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext must be < n^2");
  }
  ++op_counts_.adds;
  return n2_ctx_->ModMul(c1, c2);
}

Result<BigInt> PaillierContext::AddPlain(const BigInt& c,
                                         const BigInt& k) const {
  if (c >= pub_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext must be < n^2");
  }
  if (k >= pub_.n) {
    return Status::OutOfRange("Paillier plaintext must be < n");
  }
  ++op_counts_.adds;
  BigInt gk;
  if (pub_.g_is_n_plus_1) {
    gk = BigInt::Add(BigInt::Mul(k, pub_.n), BigInt(1)) % pub_.n_squared;
  } else {
    gk = n2_ctx_->ModPow(pub_.g, k);
  }
  return n2_ctx_->ModMul(c, gk);
}

Result<BigInt> PaillierContext::ScalarMul(const BigInt& c,
                                          const BigInt& k) const {
  if (c >= pub_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext must be < n^2");
  }
  ++op_counts_.scalar_muls;
  // Fixed-point encodings represent a negative scalar -m as n - m, which
  // would force a full |n|-bit exponentiation. E(x)^(n-m) = E(-m*x) =
  // (E(x)^{-1})^m, and m is small, so invert the ciphertext and keep the
  // short exponent (the python-paillier optimization FATE relies on).
  const BigInt half_n = BigInt::ShiftRight(pub_.n, 1);
  if (k > half_n) {
    const BigInt m = BigInt::Sub(pub_.n, k);
    if (m.BitLength() * 2 < k.BitLength()) {
      auto c_inv = BigInt::ModInverse(c, pub_.n_squared);
      if (c_inv.ok()) {
        return n2_ctx_->ModPow(c_inv.value(), m);
      }
      // Non-invertible ciphertexts cannot occur for honest inputs; fall
      // through to the direct exponentiation.
    }
  }
  return n2_ctx_->ModPow(c, k);
}

}  // namespace flb::crypto
