// Paillier additively homomorphic cryptosystem (Paillier, EUROCRYPT'99),
// the HE scheme FLBooster accelerates (paper §III-B):
//
//   KeyGen:  n = p*q, lambda = lcm(p-1, q-1), g in Z*_{n^2},
//            mu = L(g^lambda mod n^2)^{-1} mod n,  L(x) = (x-1)/n.
//   Enc(m):  c = g^m * r^n mod n^2, r uniform in Z*_n.
//   Dec(c):  m = L(c^lambda mod n^2) * mu mod n.
//   Add:     Dec(c1 * c2 mod n^2) = m1 + m2 mod n.
//   ScalarMul: Dec(c^k mod n^2) = k * m mod n.
//
// Implementation fast paths, each individually testable against the general
// form:
//   * g = n+1 (default): g^m mod n^2 collapses to 1 + m*n, removing one
//     full modular exponentiation from every encryption.
//   * CRT decryption: decrypt mod p^2 and q^2 separately and CRT-combine,
//     ~4x fewer limb operations than working mod n^2.
//   * Obfuscation pool (default): r^n mod n^2 — the dominant encryption
//     cost — is drawn from a per-key precomputed pool and refreshed by one
//     Montgomery squaring per draw ((r^n)^2 = (r^2)^n). Set
//     PaillierOptions::secure_obfuscation to keep the fresh full-powm path.
//   * Fixed-base g^m table for random-g keys (PaillierEval).
//
// This header is the CPU reference path; src/ghe provides the batched
// simulated-GPU path over the same key types. The *Batch helpers run
// element-parallel on a host ThreadPool with per-element seeded randomness,
// so batch results are bit-identical at any thread count.

#ifndef FLB_CRYPTO_PAILLIER_H_
#define FLB_CRYPTO_PAILLIER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/paillier_eval.h"
#include "src/mpint/bigint.h"

namespace flb::common {
class ThreadPool;
}  // namespace flb::common

namespace flb::crypto {

struct PaillierPublicKey {
  int key_bits = 0;        // bit length of n
  BigInt n;
  BigInt g;
  BigInt n_squared;
  bool g_is_n_plus_1 = true;

  // Serialized ciphertext width: ciphertexts live in Z_{n^2}.
  size_t CiphertextWords() const {
    return (static_cast<size_t>(key_bits) * 2 + mpint::kLimbBits - 1) /
           mpint::kLimbBits;
  }
  size_t CiphertextBytes() const { return CiphertextWords() * 4; }
};

struct PaillierPrivateKey {
  BigInt p;
  BigInt q;
  BigInt lambda;  // lcm(p-1, q-1)
  BigInt mu;      // L(g^lambda mod n^2)^{-1} mod n
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

struct PaillierOptions {
  bool use_g_n_plus_1 = true;  // false selects a random g (paper's form)
  bool use_crt_decryption = true;
  // true: every encryption pays a fresh r^n full exponentiation (the
  // original path; randomness comes entirely from the caller's Rng).
  // false (default): single-op encryptions draw from the per-key
  // ObfuscationPool, batch encryptions derive obfuscators from one seed.
  bool secure_obfuscation = false;
  // Obfuscators precomputed per key (pool path only).
  int obfuscation_pool_size = 16;
  // Pool fill seed: fixed by default so equal keys + equal call sequences
  // produce equal ciphertext streams.
  uint64_t obfuscation_seed = 0xF1B0057E20230401ULL;
  // Dispatch the fixed-width Montgomery kernels for this key's contexts
  // when the limb widths are instantiated (src/mpint/fixed_kernels.h).
  // Ciphertexts, plaintexts, and op counts are bit-identical either way —
  // false keeps the generic radix-2^32 path (the differential oracle).
  // FLB_FIXED_KERNELS=0 force-disables process-wide.
  bool use_fixed_width_kernels = true;
};

// Generates a Paillier key pair with |n| == key_bits (p and q are
// key_bits/2-bit primes). key_bits must be even and >= 64.
Result<PaillierKeyPair> PaillierKeyGen(int key_bits, Rng& rng,
                                       const PaillierOptions& options = {});

// Binds a key pair (private part optional) to a PaillierEval holding all
// per-key precomputation. All homomorphic operations live here. Copyable
// (eval and pool are shared; the eval is immutable after construction).
class PaillierContext {
 public:
  // Public-key-only context: can encrypt and do homomorphic ops.
  static Result<PaillierContext> CreatePublic(
      PaillierPublicKey pub, const PaillierOptions& options = {});
  // Full context: can also decrypt.
  static Result<PaillierContext> Create(PaillierKeyPair keys,
                                        const PaillierOptions& options = {});

  const PaillierPublicKey& pub() const { return pub_; }
  bool can_decrypt() const { return priv_.has_value(); }

  // Encrypts m in [0, n). With secure_obfuscation, r is drawn from rng;
  // otherwise the obfuscator comes from the pool and rng is untouched.
  Result<BigInt> Encrypt(const BigInt& m, Rng& rng) const;
  // Decrypts c in [0, n^2); requires a private key.
  Result<BigInt> Decrypt(const BigInt& c) const;
  // E(m1) (*) E(m2) = E(m1 + m2 mod n).
  Result<BigInt> Add(const BigInt& c1, const BigInt& c2) const;
  // E(m) (*) g^k = E(m + k mod n) without encrypting k's randomness — used
  // by servers that add public constants.
  Result<BigInt> AddPlain(const BigInt& c, const BigInt& k) const;
  // E(m)^k = E(k*m mod n).
  Result<BigInt> ScalarMul(const BigInt& c, const BigInt& k) const;

  // ---- Element-parallel batch helpers ---------------------------------------
  // All run on `pool` (nullptr = the process-global ThreadPool). Outputs,
  // statuses, and op counts are bit-identical at any thread count: element
  // i's output depends only on the inputs, i, and one seed drawn from rng.
  //
  // EncryptBatch draws ONE u64 seed from rng. With secure_obfuscation each
  // element pays a fresh r^n powm with its per-element generator
  // Rng::ForStream(seed, i); otherwise obfuscators come from a per-call
  // seeded pool of obfuscation_pool_size bases refreshed by Montgomery
  // squaring, amortizing the powms across the batch.
  Result<std::vector<BigInt>> EncryptBatch(
      const std::vector<BigInt>& ms, Rng& rng,
      common::ThreadPool* pool = nullptr) const;
  Result<std::vector<BigInt>> DecryptBatch(
      const std::vector<BigInt>& cs, common::ThreadPool* pool = nullptr) const;
  Result<std::vector<BigInt>> AddBatch(const std::vector<BigInt>& c1,
                                       const std::vector<BigInt>& c2,
                                       common::ThreadPool* pool = nullptr) const;
  Result<std::vector<BigInt>> AddPlainBatch(
      const std::vector<BigInt>& cs, const std::vector<BigInt>& ks,
      common::ThreadPool* pool = nullptr) const;
  Result<std::vector<BigInt>> ScalarMulBatch(
      const std::vector<BigInt>& cs, const std::vector<BigInt>& ks,
      common::ThreadPool* pool = nullptr) const;

  // The n^2 Montgomery context (the GHE layer reuses it for batched ops).
  const MontgomeryContext& n2_ctx() const { return eval_->n2_ctx(); }
  // All per-key precomputation (contexts, CRT constants, fixed-base table).
  const PaillierEval& eval() const { return *eval_; }
  // The persistent obfuscation pool (single-op encryptions draw from it).
  const ObfuscationPool& obfuscation_pool() const { return *pool_; }
  bool secure_obfuscation() const { return secure_obfuscation_; }

  // Operation counters for the cost model. Relaxed atomics: the context is
  // shared across host pool workers and sums are order-independent.
  struct OpCounts {
    std::atomic<uint64_t> encrypts{0};
    std::atomic<uint64_t> decrypts{0};
    std::atomic<uint64_t> adds{0};
    std::atomic<uint64_t> scalar_muls{0};

    OpCounts() = default;
    OpCounts(const OpCounts& other) { *this = other; }
    OpCounts& operator=(const OpCounts& other) {
      encrypts.store(other.encrypts.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      decrypts.store(other.decrypts.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      adds.store(other.adds.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      scalar_muls.store(other.scalar_muls.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      return *this;
    }
  };
  const OpCounts& op_counts() const { return op_counts_; }
  void ResetOpCounts() const { op_counts_ = OpCounts{}; }

 private:
  PaillierContext() = default;

  Result<BigInt> DecryptPlain(const BigInt& c) const;
  Result<BigInt> DecryptCrt(const BigInt& c) const;
  // ScalarMul without the op-count bump (batch path counts per batch).
  BigInt ScalarMulUncounted(const BigInt& c, const BigInt& k) const;
  // g^m mod n^2 via the (n+1) fast path or the fixed-base table.
  BigInt GPowM(const BigInt& m) const;
  // c * obf mod n^2 with obf already in Montgomery form.
  BigInt ApplyObfuscatorMont(const BigInt& gm, const BigInt& obf_mont) const;

  PaillierPublicKey pub_;
  std::optional<PaillierPrivateKey> priv_;
  bool use_crt_ = true;
  bool secure_obfuscation_ = false;
  bool use_fixed_width_ = true;
  int pool_size_ = 16;

  std::shared_ptr<const PaillierEval> eval_;
  std::shared_ptr<ObfuscationPool> pool_;

  mutable OpCounts op_counts_;
};

}  // namespace flb::crypto

#endif  // FLB_CRYPTO_PAILLIER_H_
