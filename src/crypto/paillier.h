// Paillier additively homomorphic cryptosystem (Paillier, EUROCRYPT'99),
// the HE scheme FLBooster accelerates (paper §III-B):
//
//   KeyGen:  n = p*q, lambda = lcm(p-1, q-1), g in Z*_{n^2},
//            mu = L(g^lambda mod n^2)^{-1} mod n,  L(x) = (x-1)/n.
//   Enc(m):  c = g^m * r^n mod n^2, r uniform in Z*_n.
//   Dec(c):  m = L(c^lambda mod n^2) * mu mod n.
//   Add:     Dec(c1 * c2 mod n^2) = m1 + m2 mod n.
//   ScalarMul: Dec(c^k mod n^2) = k * m mod n.
//
// Two implementation fast paths, both individually testable against the
// general form:
//   * g = n+1 (default): g^m mod n^2 collapses to 1 + m*n, removing one
//     full modular exponentiation from every encryption.
//   * CRT decryption: decrypt mod p^2 and q^2 separately and CRT-combine,
//     ~4x fewer limb operations than working mod n^2.
//
// This header is the CPU reference path; src/ghe provides the batched
// simulated-GPU path over the same key types.

#ifndef FLB_CRYPTO_PAILLIER_H_
#define FLB_CRYPTO_PAILLIER_H_

#include <memory>
#include <optional>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/mpint/bigint.h"

namespace flb::crypto {

struct PaillierPublicKey {
  int key_bits = 0;        // bit length of n
  BigInt n;
  BigInt g;
  BigInt n_squared;
  bool g_is_n_plus_1 = true;

  // Serialized ciphertext width: ciphertexts live in Z_{n^2}.
  size_t CiphertextWords() const {
    return (static_cast<size_t>(key_bits) * 2 + mpint::kLimbBits - 1) /
           mpint::kLimbBits;
  }
  size_t CiphertextBytes() const { return CiphertextWords() * 4; }
};

struct PaillierPrivateKey {
  BigInt p;
  BigInt q;
  BigInt lambda;  // lcm(p-1, q-1)
  BigInt mu;      // L(g^lambda mod n^2)^{-1} mod n
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

struct PaillierOptions {
  bool use_g_n_plus_1 = true;  // false selects a random g (paper's form)
  bool use_crt_decryption = true;
};

// Generates a Paillier key pair with |n| == key_bits (p and q are
// key_bits/2-bit primes). key_bits must be even and >= 64.
Result<PaillierKeyPair> PaillierKeyGen(int key_bits, Rng& rng,
                                       const PaillierOptions& options = {});

// Binds a key pair (private part optional) to precomputed Montgomery
// contexts. All homomorphic operations live here. Copyable (contexts are
// shared, immutable after construction).
class PaillierContext {
 public:
  // Public-key-only context: can encrypt and do homomorphic ops.
  static Result<PaillierContext> CreatePublic(PaillierPublicKey pub);
  // Full context: can also decrypt.
  static Result<PaillierContext> Create(PaillierKeyPair keys,
                                        const PaillierOptions& options = {});

  const PaillierPublicKey& pub() const { return pub_; }
  bool can_decrypt() const { return priv_.has_value(); }

  // Encrypts m in [0, n). r is drawn from rng.
  Result<BigInt> Encrypt(const BigInt& m, Rng& rng) const;
  // Decrypts c in [0, n^2); requires a private key.
  Result<BigInt> Decrypt(const BigInt& c) const;
  // E(m1) (*) E(m2) = E(m1 + m2 mod n).
  Result<BigInt> Add(const BigInt& c1, const BigInt& c2) const;
  // E(m) (*) g^k = E(m + k mod n) without encrypting k's randomness — used
  // by servers that add public constants.
  Result<BigInt> AddPlain(const BigInt& c, const BigInt& k) const;
  // E(m)^k = E(k*m mod n).
  Result<BigInt> ScalarMul(const BigInt& c, const BigInt& k) const;

  // The n^2 Montgomery context (the GHE layer reuses it for batched ops).
  const MontgomeryContext& n2_ctx() const { return *n2_ctx_; }

  // Operation counters for the cost model.
  struct OpCounts {
    uint64_t encrypts = 0;
    uint64_t decrypts = 0;
    uint64_t adds = 0;
    uint64_t scalar_muls = 0;
  };
  const OpCounts& op_counts() const { return op_counts_; }
  void ResetOpCounts() const { op_counts_ = {}; }

 private:
  PaillierContext() = default;

  Result<BigInt> DecryptPlain(const BigInt& c) const;
  Result<BigInt> DecryptCrt(const BigInt& c) const;

  PaillierPublicKey pub_;
  std::optional<PaillierPrivateKey> priv_;
  bool use_crt_ = true;

  std::shared_ptr<const MontgomeryContext> n2_ctx_;
  std::shared_ptr<const MontgomeryContext> n_ctx_;
  // CRT decryption precomputation (present iff priv_ and use_crt_).
  std::shared_ptr<const MontgomeryContext> p2_ctx_;
  std::shared_ptr<const MontgomeryContext> q2_ctx_;
  BigInt hp_;        // L_p(g^{p-1} mod p^2)^{-1} mod p
  BigInt hq_;        // L_q(g^{q-1} mod q^2)^{-1} mod q
  BigInt p_inv_mod_q_;

  mutable OpCounts op_counts_;
};

}  // namespace flb::crypto

#endif  // FLB_CRYPTO_PAILLIER_H_
