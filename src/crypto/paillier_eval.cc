#include "src/crypto/paillier_eval.h"

#include <utility>

#include "src/crypto/paillier.h"

namespace flb::crypto {

BigInt DrawUnit(const BigInt& n, Rng& rng) {
  for (;;) {
    BigInt r = BigInt::RandomBelow(rng, n);
    if (r.IsZero()) continue;
    if (BigInt::Gcd(r, n).IsOne()) return r;
  }
}

namespace {

// L(x) = (x - 1) / d, defined for x ≡ 1 (mod d).
Result<BigInt> LFunction(const BigInt& x, const BigInt& d) {
  if (x.IsZero()) {
    return Status::CryptoError("L function: x must be >= 1");
  }
  return BigInt::Div(BigInt::Sub(x, BigInt(1)), d);
}

}  // namespace

Result<std::shared_ptr<const PaillierEval>> PaillierEval::Create(
    const PaillierPublicKey& pub, const PaillierPrivateKey* priv, bool crt,
    bool use_fixed_width) {
  auto eval = std::shared_ptr<PaillierEval>(new PaillierEval());
  FLB_ASSIGN_OR_RETURN(auto n2,
                       MontgomeryContext::Create(pub.n_squared, use_fixed_width));
  FLB_ASSIGN_OR_RETURN(auto n_ctx,
                       MontgomeryContext::Create(pub.n, use_fixed_width));
  eval->n2_ctx_ = std::make_shared<MontgomeryContext>(std::move(n2));
  eval->n_ctx_ = std::make_shared<MontgomeryContext>(std::move(n_ctx));
  eval->half_n_ = BigInt::ShiftRight(pub.n, 1);

  if (!pub.g_is_n_plus_1) {
    // Fixed-base table for g^m: g^(2^i) in Montgomery form, one squaring
    // per doubling. Exponents are < n, so key_bits entries suffice.
    const int bits = pub.key_bits;
    eval->g_pow2_mont_.reserve(static_cast<size_t>(bits));
    BigInt cur = eval->n2_ctx_->ToMont(pub.g % pub.n_squared);
    for (int i = 0; i < bits; ++i) {
      eval->g_pow2_mont_.push_back(cur);
      cur = eval->n2_ctx_->MontMul(cur, cur);
    }
  }

  if (priv != nullptr) {
    eval->mu_mont_ = eval->n_ctx_->ToMont(priv->mu % pub.n);
    eval->has_mu_ = true;
    if (crt) {
      const BigInt p2 = BigInt::Mul(priv->p, priv->p);
      const BigInt q2 = BigInt::Mul(priv->q, priv->q);
      FLB_ASSIGN_OR_RETURN(auto p2_ctx,
                           MontgomeryContext::Create(p2, use_fixed_width));
      FLB_ASSIGN_OR_RETURN(auto q2_ctx,
                           MontgomeryContext::Create(q2, use_fixed_width));
      eval->p2_ctx_ = std::make_shared<MontgomeryContext>(std::move(p2_ctx));
      eval->q2_ctx_ = std::make_shared<MontgomeryContext>(std::move(q2_ctx));

      eval->p_minus_1_ = BigInt::Sub(priv->p, BigInt(1));
      eval->q_minus_1_ = BigInt::Sub(priv->q, BigInt(1));
      const BigInt gp = eval->p2_ctx_->ModPow(pub.g % p2, eval->p_minus_1_);
      const BigInt gq = eval->q2_ctx_->ModPow(pub.g % q2, eval->q_minus_1_);
      FLB_ASSIGN_OR_RETURN(BigInt lp, LFunction(gp, priv->p));
      FLB_ASSIGN_OR_RETURN(BigInt lq, LFunction(gq, priv->q));
      FLB_ASSIGN_OR_RETURN(eval->hp_, BigInt::ModInverse(lp, priv->p));
      FLB_ASSIGN_OR_RETURN(eval->hq_, BigInt::ModInverse(lq, priv->q));
      FLB_ASSIGN_OR_RETURN(eval->p_inv_mod_q_,
                           BigInt::ModInverse(priv->p, priv->q));
    }
  }
  return std::shared_ptr<const PaillierEval>(std::move(eval));
}

BigInt PaillierEval::FixedBaseGPow(const BigInt& m) const {
  BigInt acc = n2_ctx_->MontOne();
  const int bits = m.BitLength();
  const int table = static_cast<int>(g_pow2_mont_.size());
  for (int i = 0; i < bits && i < table; ++i) {
    if (m.GetBit(i)) acc = n2_ctx_->MontMul(acc, g_pow2_mont_[static_cast<size_t>(i)]);
  }
  return n2_ctx_->FromMont(acc);
}

ObfuscationPool::ObfuscationPool(
    std::shared_ptr<const MontgomeryContext> n2_ctx, BigInt n, int size,
    uint64_t seed)
    : n2_ctx_(std::move(n2_ctx)),
      n_(std::move(n)),
      size_(size > 0 ? size : 1),
      seed_(seed) {}

void ObfuscationPool::FillLocked() {
  Rng rng(seed_);
  entries_.reserve(static_cast<size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    const BigInt r = DrawUnit(n_, rng);
    entries_.push_back(n2_ctx_->ToMont(n2_ctx_->ModPow(r, n_)));
  }
  filled_ = true;
}

BigInt ObfuscationPool::Next() {
  common::MutexLock lock(mu_);
  if (!filled_) FillLocked();
  BigInt& slot = entries_[static_cast<size_t>(cursor_ % size_)];
  ++cursor_;
  BigInt out = n2_ctx_->FromMont(slot);
  // (r^n)^2 = (r^2)^n: one MontMul refresh yields a fresh obfuscator.
  slot = n2_ctx_->MontMul(slot, slot);
  draws_.fetch_add(1, std::memory_order_relaxed);
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

}  // namespace flb::crypto
