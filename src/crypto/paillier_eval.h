// Per-key Paillier precomputation, hoisted out of the per-operation paths.
//
// PaillierEval owns everything that depends only on the key material:
//   * the n^2 / n Montgomery contexts (and p^2 / q^2 for CRT decryption),
//   * the CRT constants (p-1, q-1, hp, hq, p^{-1} mod q) and mu in the
//     n-context Montgomery domain,
//   * n/2 for the negative-scalar fast path,
//   * a fixed-base table g^(2^i) mod n^2 in Montgomery form for the general
//     (random-g) encryption path — g^m becomes ~|m| MontMuls instead of a
//     full sliding-window exponentiation with per-call table build.
//
// ObfuscationPool amortizes r^n mod n^2 — the dominant encryption cost: a
// seeded pool of obfuscators is filled once per key (one full powm each),
// and every draw refreshes its entry by one Montgomery squaring, which is
// again a valid obfuscator because (r^n)^2 = (r^2)^n and squares of units
// are units. Drawing is mutex-serialized, so the draw *order* is the call
// order — deterministic for single-threaded callers; parallel batch paths
// use per-call seeded obfuscators instead (see PaillierContext::EncryptBatch).

#ifndef FLB_CRYPTO_PAILLIER_EVAL_H_
#define FLB_CRYPTO_PAILLIER_EVAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/mpint/bigint.h"

namespace flb::crypto {

struct PaillierPublicKey;
struct PaillierPrivateKey;

class PaillierEval {
 public:
  // Public-key precompute. When `priv` is non-null and `crt` is set the CRT
  // decryption constants are also derived. `use_fixed_width` selects the
  // fixed-width Montgomery kernels (src/mpint/fixed_kernels.h) for every
  // per-key context whose limb width has an instantiation — the dispatch
  // happens exactly once here, at precompute time.
  static Result<std::shared_ptr<const PaillierEval>> Create(
      const PaillierPublicKey& pub, const PaillierPrivateKey* priv, bool crt,
      bool use_fixed_width = true);

  const MontgomeryContext& n2_ctx() const { return *n2_ctx_; }
  const MontgomeryContext& n_ctx() const { return *n_ctx_; }
  const MontgomeryContext& p2_ctx() const { return *p2_ctx_; }
  const MontgomeryContext& q2_ctx() const { return *q2_ctx_; }
  std::shared_ptr<const MontgomeryContext> n2_ctx_ptr() const {
    return n2_ctx_;
  }
  bool has_crt() const { return p2_ctx_ != nullptr; }

  const BigInt& half_n() const { return half_n_; }
  const BigInt& p_minus_1() const { return p_minus_1_; }
  const BigInt& q_minus_1() const { return q_minus_1_; }
  const BigInt& hp() const { return hp_; }
  const BigInt& hq() const { return hq_; }
  const BigInt& p_inv_mod_q() const { return p_inv_mod_q_; }
  // mu in the n-context Montgomery domain (valid iff created with a priv).
  const BigInt& mu_mont() const { return mu_mont_; }
  bool has_mu() const { return has_mu_; }

  // g^m mod n^2 via the fixed-base table (random-g keys only; the g = n+1
  // fast path never calls this). Thread-safe, ~|m| MontMuls.
  BigInt FixedBaseGPow(const BigInt& m) const;
  bool has_fixed_base() const { return !g_pow2_mont_.empty(); }

  // True when the n^2 context dispatched to a fixed-width kernel (the hot
  // path for every homomorphic op). Exposed for metrics and tests.
  bool uses_fixed_width_kernels() const {
    return n2_ctx_->fixed_kernel_width() != 0;
  }

 private:
  PaillierEval() = default;

  std::shared_ptr<const MontgomeryContext> n2_ctx_;
  std::shared_ptr<const MontgomeryContext> n_ctx_;
  std::shared_ptr<const MontgomeryContext> p2_ctx_;
  std::shared_ptr<const MontgomeryContext> q2_ctx_;
  BigInt half_n_;
  BigInt p_minus_1_, q_minus_1_;
  BigInt hp_, hq_, p_inv_mod_q_;
  BigInt mu_mont_;
  bool has_mu_ = false;
  // g^(2^i) mod n^2 in Montgomery form, i in [0, key_bits).
  std::vector<BigInt> g_pow2_mont_;
};

// Shared pool of precomputed obfuscators r^n mod n^2 (Montgomery domain).
class ObfuscationPool {
 public:
  // The pool is lazily filled on first draw (size full exponentiations);
  // `seed` makes the fill — and therefore every subsequent draw sequence —
  // deterministic.
  ObfuscationPool(std::shared_ptr<const MontgomeryContext> n2_ctx, BigInt n,
                  int size, uint64_t seed);

  // Next obfuscator in the normal domain. Draw k from slot k % size; the
  // slot is refreshed in place by one Montgomery squaring. Thread-safe;
  // the draw order equals the call order.
  BigInt Next();

  int size() const { return size_; }
  uint64_t draws() const { return draws_.load(std::memory_order_relaxed); }
  uint64_t refreshes() const {
    return refreshes_.load(std::memory_order_relaxed);
  }

 private:
  void FillLocked() FLB_REQUIRES(mu_);

  const std::shared_ptr<const MontgomeryContext> n2_ctx_;
  const BigInt n_;
  const int size_;
  const uint64_t seed_;

  common::Mutex mu_;
  bool filled_ FLB_GUARDED_BY(mu_) = false;
  uint64_t cursor_ FLB_GUARDED_BY(mu_) = 0;
  std::vector<BigInt> entries_ FLB_GUARDED_BY(mu_);  // Montgomery domain
  std::atomic<uint64_t> draws_{0};
  std::atomic<uint64_t> refreshes_{0};
};

// Draws r uniform in [1, n) with gcd(r, n) = 1 (shared by key generation,
// encryption, and the obfuscation pool fill).
BigInt DrawUnit(const BigInt& n, Rng& rng);

}  // namespace flb::crypto

#endif  // FLB_CRYPTO_PAILLIER_EVAL_H_
