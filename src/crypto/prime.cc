#include "src/crypto/prime.h"

#include <array>

#include "src/common/check.h"
#include "src/crypto/montgomery.h"

namespace flb::crypto {

namespace {

// Trial-division sieve: rejects ~88% of random odd candidates before the
// expensive Miller–Rabin exponentiations.
constexpr std::array<uint32_t, 53> kSmallPrimes = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

bool PassesTrialDivision(const BigInt& n) {
  for (uint32_t p : kSmallPrimes) {
    const BigInt rem = n % BigInt(p);
    if (rem.IsZero()) return n == BigInt(p);
  }
  return true;
}

}  // namespace

bool IsProbablePrime(const BigInt& n, Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  if (n == BigInt(2) || n == BigInt(3)) return true;
  if (n.IsEven()) return false;
  if (!PassesTrialDivision(n)) return false;

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = BigInt::Sub(n, BigInt(1));
  int r = 0;
  BigInt d = n_minus_1;
  while (d.IsEven()) {
    d = BigInt::ShiftRight(d, 1);
    ++r;
  }

  auto ctx = MontgomeryContext::Create(n);
  FLB_CHECK(ctx.ok());  // n is odd and >= 5 here
  const BigInt two(2);
  const BigInt n_minus_2 = BigInt::Sub(n, two);

  for (int round = 0; round < rounds; ++round) {
    // Witness a uniform in [2, n-2].
    const BigInt a =
        BigInt::Add(BigInt::RandomBelow(rng, BigInt::Sub(n_minus_2, BigInt(1))),
                    two);
    BigInt x = ctx->ModPow(a, d);
    if (x.IsOne() || x == n_minus_1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = ctx->ModMul(x, x);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Result<BigInt> GeneratePrime(int bits, Rng& rng) {
  if (bits < 8) {
    return Status::InvalidArgument("GeneratePrime: bits must be >= 8");
  }
  for (int attempt = 0; attempt < 100000; ++attempt) {
    BigInt candidate = BigInt::Random(rng, bits);
    // Force the top bit (exact bit length) and the bottom bit (odd).
    candidate = BigInt::FromWords([&] {
      std::vector<uint32_t> w = candidate.ToFixedWords(
          (bits + mpint::kLimbBits - 1) / mpint::kLimbBits);
      w[(bits - 1) / mpint::kLimbBits] |= 1u << ((bits - 1) % mpint::kLimbBits);
      w[0] |= 1u;
      return w;
    }());
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
  return Status::Internal("GeneratePrime: exceeded attempt budget");
}

Result<BigInt> GenerateDistinctPrime(int bits, const BigInt& distinct_from,
                                     Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    FLB_ASSIGN_OR_RETURN(BigInt p, GeneratePrime(bits, rng));
    if (p != distinct_from) return p;
  }
  return Status::Internal("GenerateDistinctPrime: exceeded attempt budget");
}

}  // namespace flb::crypto
