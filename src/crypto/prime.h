// Primality testing and prime generation (paper §IV-A3: "Miller-Rabin large
// prime number generator" used in the key-generation phase).

#ifndef FLB_CRYPTO_PRIME_H_
#define FLB_CRYPTO_PRIME_H_

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/mpint/bigint.h"

namespace flb::crypto {

using mpint::BigInt;

// Miller–Rabin probabilistic primality test with `rounds` random witnesses.
// 2^-2r error bound; 20 rounds gives < 2^-40, standard for key generation.
bool IsProbablePrime(const BigInt& n, Rng& rng, int rounds = 20);

// Generates a prime of exactly `bits` bits (top bit forced to 1 so the
// product of two such primes has exactly 2*bits bits with probability 1/2,
// and at least 2*bits - 1 always). bits must be >= 8.
Result<BigInt> GeneratePrime(int bits, Rng& rng);

// Generates a prime p of exactly `bits` bits with p mod `avoid` != 0 and
// p != `distinct_from` — used by Paillier/RSA keygen to get q != p.
Result<BigInt> GenerateDistinctPrime(int bits, const BigInt& distinct_from,
                                     Rng& rng);

}  // namespace flb::crypto

#endif  // FLB_CRYPTO_PRIME_H_
