#include "src/crypto/rsa.h"

#include <utility>

#include "src/common/check.h"
#include "src/crypto/prime.h"

namespace flb::crypto {

Result<RsaKeyPair> RsaKeyGen(int key_bits, Rng& rng) {
  if (key_bits < 64 || key_bits % 2 != 0) {
    return Status::InvalidArgument("RSA key size must be even and >= 64 bits");
  }
  const int prime_bits = key_bits / 2;
  const BigInt e(65537);

  for (int attempt = 0; attempt < 64; ++attempt) {
    FLB_ASSIGN_OR_RETURN(BigInt p, GeneratePrime(prime_bits, rng));
    FLB_ASSIGN_OR_RETURN(BigInt q, GenerateDistinctPrime(prime_bits, p, rng));
    BigInt n = BigInt::Mul(p, q);
    if (n.BitLength() != key_bits) continue;
    const BigInt p_minus_1 = BigInt::Sub(p, BigInt(1));
    const BigInt q_minus_1 = BigInt::Sub(q, BigInt(1));
    const BigInt carmichael = BigInt::Lcm(p_minus_1, q_minus_1);
    auto d = BigInt::ModInverse(e, carmichael);
    if (!d.ok()) continue;  // e divides lambda(n); extremely rare — retry

    RsaKeyPair keys;
    keys.pub.key_bits = key_bits;
    keys.pub.n = std::move(n);
    keys.pub.e = e;
    keys.priv.d = std::move(d).value();
    keys.priv.dp = keys.priv.d % p_minus_1;
    keys.priv.dq = keys.priv.d % q_minus_1;
    FLB_ASSIGN_OR_RETURN(keys.priv.q_inv, BigInt::ModInverse(q, p));
    keys.priv.p = std::move(p);
    keys.priv.q = std::move(q);
    return keys;
  }
  return Status::Internal("RsaKeyGen: exceeded attempt budget");
}

Result<RsaContext> RsaContext::CreatePublic(RsaPublicKey pub) {
  if (pub.n.IsZero() || pub.e.IsZero()) {
    return Status::InvalidArgument("incomplete RSA public key");
  }
  RsaContext ctx;
  FLB_ASSIGN_OR_RETURN(auto n_ctx, MontgomeryContext::Create(pub.n));
  ctx.n_ctx_ = std::make_shared<MontgomeryContext>(std::move(n_ctx));
  ctx.pub_ = std::move(pub);
  return ctx;
}

Result<RsaContext> RsaContext::Create(RsaKeyPair keys) {
  FLB_ASSIGN_OR_RETURN(RsaContext ctx, CreatePublic(keys.pub));
  FLB_ASSIGN_OR_RETURN(auto p_ctx, MontgomeryContext::Create(keys.priv.p));
  FLB_ASSIGN_OR_RETURN(auto q_ctx, MontgomeryContext::Create(keys.priv.q));
  ctx.p_ctx_ = std::make_shared<MontgomeryContext>(std::move(p_ctx));
  ctx.q_ctx_ = std::make_shared<MontgomeryContext>(std::move(q_ctx));
  ctx.priv_ = std::move(keys.priv);
  return ctx;
}

Result<BigInt> RsaContext::Encrypt(const BigInt& m) const {
  if (m >= pub_.n) {
    return Status::OutOfRange("RSA plaintext must be < n");
  }
  return n_ctx_->ModPow(m, pub_.e);
}

Result<BigInt> RsaContext::Decrypt(const BigInt& c) const {
  if (!priv_.has_value()) {
    return Status::FailedPrecondition("RSA context has no private key");
  }
  if (c >= pub_.n) {
    return Status::OutOfRange("RSA ciphertext must be < n");
  }
  // Garner's CRT recombination: m = mq + q * ((mp - mq) * q^{-1} mod p).
  const BigInt& p = priv_->p;
  const BigInt& q = priv_->q;
  const BigInt mp = p_ctx_->ModPow(c % p, priv_->dp);
  const BigInt mq = q_ctx_->ModPow(c % q, priv_->dq);
  BigInt diff;
  if (mp >= mq) {
    diff = BigInt::Sub(mp, mq);
  } else {
    diff = BigInt::Sub(BigInt::Add(mp, p), mq);
  }
  const BigInt h = BigInt::Mul(diff, priv_->q_inv) % p;
  return BigInt::Add(mq, BigInt::Mul(q, h));
}

Result<BigInt> RsaContext::Mul(const BigInt& c1, const BigInt& c2) const {
  if (c1 >= pub_.n || c2 >= pub_.n) {
    return Status::OutOfRange("RSA ciphertext must be < n");
  }
  return n_ctx_->ModMul(c1, c2);
}

}  // namespace flb::crypto
