// Textbook RSA with multiplicative homomorphism, as exposed by the paper's
// API surface (Table I: RSA::key_gen / encrypt / decrypt / mul).
//
// Note: unpadded RSA is used here deliberately — the homomorphic property
// E(m1)*E(m2) = E(m1*m2 mod n) only holds without padding, which is what
// federated protocols that use RSA blinding (e.g. RSA-PSI intersection in
// FATE) rely on. Decryption uses the CRT (q^{-1} mod p combine).

#ifndef FLB_CRYPTO_RSA_H_
#define FLB_CRYPTO_RSA_H_

#include <memory>
#include <optional>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/crypto/montgomery.h"
#include "src/mpint/bigint.h"

namespace flb::crypto {

struct RsaPublicKey {
  int key_bits = 0;
  BigInt n;
  BigInt e;

  size_t CiphertextWords() const {
    return (static_cast<size_t>(key_bits) + mpint::kLimbBits - 1) /
           mpint::kLimbBits;
  }
  size_t CiphertextBytes() const { return CiphertextWords() * 4; }
};

struct RsaPrivateKey {
  BigInt p;
  BigInt q;
  BigInt d;       // e^{-1} mod lcm(p-1, q-1)
  BigInt dp;      // d mod (p-1)
  BigInt dq;      // d mod (q-1)
  BigInt q_inv;   // q^{-1} mod p
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

// Generates an RSA key pair with |n| == key_bits and e = 65537.
Result<RsaKeyPair> RsaKeyGen(int key_bits, Rng& rng);

class RsaContext {
 public:
  static Result<RsaContext> CreatePublic(RsaPublicKey pub);
  static Result<RsaContext> Create(RsaKeyPair keys);

  const RsaPublicKey& pub() const { return pub_; }
  bool can_decrypt() const { return priv_.has_value(); }

  // c = m^e mod n, m in [0, n).
  Result<BigInt> Encrypt(const BigInt& m) const;
  // m = c^d mod n via CRT.
  Result<BigInt> Decrypt(const BigInt& c) const;
  // E(m1) * E(m2) = E(m1 * m2 mod n) — RSA's multiplicative homomorphism.
  Result<BigInt> Mul(const BigInt& c1, const BigInt& c2) const;

 private:
  RsaContext() = default;

  RsaPublicKey pub_;
  std::optional<RsaPrivateKey> priv_;
  std::shared_ptr<const MontgomeryContext> n_ctx_;
  std::shared_ptr<const MontgomeryContext> p_ctx_;
  std::shared_ptr<const MontgomeryContext> q_ctx_;
};

}  // namespace flb::crypto

#endif  // FLB_CRYPTO_RSA_H_
