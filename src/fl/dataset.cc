#include "src/fl/dataset.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "src/common/check.h"

namespace flb::fl {

DataMatrix DataMatrix::FromTriplets(
    size_t rows, size_t cols,
    const std::vector<std::tuple<uint32_t, uint32_t, float>>& triplets) {
  std::vector<std::tuple<uint32_t, uint32_t, float>> sorted = triplets;
  std::sort(sorted.begin(), sorted.end());
  DataMatrixBuilder builder(cols);
  std::vector<std::pair<uint32_t, float>> row_entries;
  size_t next_row = 0;
  for (const auto& [r, c, v] : sorted) {
    FLB_CHECK(r < rows && c < cols, "triplet out of range");
    while (next_row < r) {
      builder.AddRow(row_entries);
      row_entries.clear();
      ++next_row;
    }
    row_entries.emplace_back(c, v);
  }
  while (next_row < rows) {
    builder.AddRow(row_entries);
    row_entries.clear();
    ++next_row;
  }
  return builder.Build();
}

double DataMatrix::Dot(size_t row, const std::vector<double>& w) const {
  FLB_DCHECK(row < rows_);
  double acc = 0.0;
  for (size_t k = RowBegin(row); k < RowEnd(row); ++k) {
    acc += static_cast<double>(values_[k]) * w[col_idx_[k]];
  }
  return acc;
}

void DataMatrix::AddScaledRowTo(size_t row, double scale,
                                std::vector<double>* acc) const {
  FLB_DCHECK(row < rows_ && acc->size() >= cols_);
  for (size_t k = RowBegin(row); k < RowEnd(row); ++k) {
    (*acc)[col_idx_[k]] += scale * static_cast<double>(values_[k]);
  }
}

DataMatrix DataMatrix::SliceColumns(size_t col_begin, size_t col_end) const {
  FLB_CHECK(col_begin <= col_end && col_end <= cols_);
  DataMatrixBuilder builder(col_end - col_begin);
  std::vector<std::pair<uint32_t, float>> entries;
  for (size_t r = 0; r < rows_; ++r) {
    entries.clear();
    for (size_t k = RowBegin(r); k < RowEnd(r); ++k) {
      if (col_idx_[k] >= col_begin && col_idx_[k] < col_end) {
        entries.emplace_back(col_idx_[k] - static_cast<uint32_t>(col_begin),
                             values_[k]);
      }
    }
    builder.AddRow(entries);
  }
  return builder.Build();
}

DataMatrix DataMatrix::SliceRows(size_t row_begin, size_t row_end) const {
  FLB_CHECK(row_begin <= row_end && row_end <= rows_);
  DataMatrixBuilder builder(cols_);
  std::vector<std::pair<uint32_t, float>> entries;
  for (size_t r = row_begin; r < row_end; ++r) {
    entries.clear();
    for (size_t k = RowBegin(r); k < RowEnd(r); ++k) {
      entries.emplace_back(col_idx_[k], values_[k]);
    }
    builder.AddRow(entries);
  }
  return builder.Build();
}

void DataMatrixBuilder::AddRow(
    const std::vector<std::pair<uint32_t, float>>& entries) {
  uint32_t prev = 0;
  bool first = true;
  for (const auto& [col, value] : entries) {
    FLB_CHECK(col < cols_, "column index out of range");
    FLB_CHECK(first || col > prev, "row entries must be strictly increasing");
    first = false;
    prev = col;
    m_.col_idx_.push_back(col);
    m_.values_.push_back(value);
  }
  ++m_.rows_;
  m_.row_offsets_.push_back(m_.col_idx_.size());
}

DataMatrix DataMatrixBuilder::Build() {
  m_.cols_ = cols_;
  return std::move(m_);
}

std::string DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kRcv1:
      return "RCV1";
    case DatasetKind::kAvazu:
      return "Avazu";
    case DatasetKind::kSynthetic:
      return "Synthetic";
  }
  return "unknown";
}

DatasetSpec PaperScaleSpec(DatasetKind kind) {
  DatasetSpec spec;
  spec.kind = kind;
  switch (kind) {
    case DatasetKind::kRcv1:  // Table II
      spec.rows = 677399;
      spec.cols = 47236;
      spec.nnz_per_row = 74;  // RCV1's documented mean document length
      break;
    case DatasetKind::kAvazu:
      spec.rows = 1719304;
      spec.cols = 1000000;
      spec.nnz_per_row = 15;  // one-hot per categorical field
      break;
    case DatasetKind::kSynthetic:
      spec.rows = 100000;
      spec.cols = 10000;
      spec.nnz_per_row = 10000;  // dense
      break;
  }
  return spec;
}

DatasetSpec DefaultScaleSpec(DatasetKind kind) {
  DatasetSpec spec;
  spec.kind = kind;
  switch (kind) {
    case DatasetKind::kRcv1:
      spec.rows = 4096;
      spec.cols = 1024;
      spec.nnz_per_row = 48;
      break;
    case DatasetKind::kAvazu:
      spec.rows = 8192;
      spec.cols = 4096;
      spec.nnz_per_row = 15;
      break;
    case DatasetKind::kSynthetic:
      spec.rows = 2048;
      spec.cols = 256;
      spec.nnz_per_row = 256;  // dense
      break;
  }
  return spec;
}

namespace {

// Ground-truth linear model for label generation: heavy on a few features,
// light elsewhere (realistic for text/CTR data).
std::vector<double> GroundTruthWeights(size_t cols, Rng& rng) {
  std::vector<double> w(cols);
  for (size_t j = 0; j < cols; ++j) {
    const bool strong = rng.NextBernoulli(0.05);
    w[j] = rng.NextGaussian() * (strong ? 1.5 : 0.1);
  }
  return w;
}

float LabelFromScore(double score, double intercept, Rng& rng) {
  const double prob = 1.0 / (1.0 + std::exp(-(score + intercept)));
  return rng.NextBernoulli(prob) ? 1.0f : 0.0f;
}

// Draws `count` distinct column indices, sorted ascending.
std::vector<uint32_t> DrawColumns(size_t cols, size_t count, Rng& rng,
                                  bool zipfian) {
  std::set<uint32_t> chosen;
  while (chosen.size() < count && chosen.size() < cols) {
    uint32_t col;
    if (zipfian) {
      // Skewed toward low indices (frequent terms / popular categories).
      const double u = rng.NextDouble();
      col = static_cast<uint32_t>(std::min<double>(
          static_cast<double>(cols) - 1, (std::pow(u, 2.2)) * cols));
    } else {
      col = static_cast<uint32_t>(rng.NextBelow(cols));
    }
    chosen.insert(col);
  }
  return {chosen.begin(), chosen.end()};
}

Dataset GenerateRcv1Like(const DatasetSpec& spec, Rng& rng) {
  // Sparse TF-IDF-style positive features, L2-normalized rows, binary topic
  // label driven by a sparse linear model.
  Dataset ds;
  ds.name = "RCV1-like";
  const std::vector<double> w = GroundTruthWeights(spec.cols, rng);
  DataMatrixBuilder builder(spec.cols);
  ds.y.reserve(spec.rows);
  std::vector<std::pair<uint32_t, float>> entries;
  for (size_t r = 0; r < spec.rows; ++r) {
    const size_t nnz =
        std::max<size_t>(1, spec.nnz_per_row / 2 +
                                rng.NextBelow(spec.nnz_per_row + 1));
    const auto cols = DrawColumns(spec.cols, nnz, rng, /*zipfian=*/true);
    entries.clear();
    double norm_sq = 0.0;
    for (uint32_t c : cols) {
      const float v = static_cast<float>(std::fabs(rng.NextGaussian()) + 0.1);
      entries.emplace_back(c, v);
      norm_sq += static_cast<double>(v) * v;
    }
    const float inv_norm = static_cast<float>(1.0 / std::sqrt(norm_sq));
    double score = 0.0;
    for (auto& [c, v] : entries) {
      v *= inv_norm;
      score += static_cast<double>(v) * w[c];
    }
    builder.AddRow(entries);
    ds.y.push_back(LabelFromScore(4.0 * score, 0.0, rng));
  }
  ds.x = builder.Build();
  return ds;
}

Dataset GenerateAvazuLike(const DatasetSpec& spec, Rng& rng) {
  // One-hot categorical fields, ~17% positive rate (Avazu's CTR base rate).
  Dataset ds;
  ds.name = "Avazu-like";
  const std::vector<double> w = GroundTruthWeights(spec.cols, rng);
  const size_t fields = std::max<size_t>(1, spec.nnz_per_row);
  const size_t field_width = std::max<size_t>(1, spec.cols / fields);
  DataMatrixBuilder builder(spec.cols);
  ds.y.reserve(spec.rows);
  std::vector<std::pair<uint32_t, float>> entries;
  for (size_t r = 0; r < spec.rows; ++r) {
    entries.clear();
    double score = 0.0;
    for (size_t f = 0; f < fields; ++f) {
      // Popular categories dominate within each field.
      const double u = rng.NextDouble();
      const size_t offset = static_cast<size_t>(std::pow(u, 3.0) * field_width);
      const uint32_t col = static_cast<uint32_t>(
          std::min(spec.cols - 1, f * field_width + offset));
      if (!entries.empty() && entries.back().first >= col) continue;
      entries.emplace_back(col, 1.0f);
      score += w[col];
    }
    builder.AddRow(entries);
    // Intercept -2.2 with a damped score centers the base rate near 17%
    // (Avazu's CTR).
    ds.y.push_back(LabelFromScore(0.5 * score, -2.2, rng));
  }
  ds.x = builder.Build();
  return ds;
}

Dataset GenerateSyntheticLike(const DatasetSpec& spec, Rng& rng) {
  // LEAF Synthetic: dense Gaussian features, logistic labels (binary
  // rendition of y = argmax(Wx + b)).
  Dataset ds;
  ds.name = "Synthetic-like";
  const std::vector<double> w = GroundTruthWeights(spec.cols, rng);
  DataMatrixBuilder builder(spec.cols);
  ds.y.reserve(spec.rows);
  std::vector<std::pair<uint32_t, float>> entries(spec.cols);
  const double inv_sqrt_cols = 1.0 / std::sqrt(static_cast<double>(spec.cols));
  for (size_t r = 0; r < spec.rows; ++r) {
    double score = 0.0;
    for (size_t c = 0; c < spec.cols; ++c) {
      const float v = static_cast<float>(rng.NextGaussian() * inv_sqrt_cols);
      entries[c] = {static_cast<uint32_t>(c), v};
      score += static_cast<double>(v) * w[c];
    }
    builder.AddRow(entries);
    ds.y.push_back(LabelFromScore(3.0 * score, 0.0, rng));
  }
  ds.x = builder.Build();
  return ds;
}

}  // namespace

Result<Dataset> GenerateDataset(const DatasetSpec& spec) {
  if (spec.rows == 0 || spec.cols == 0) {
    return Status::InvalidArgument("GenerateDataset: empty shape");
  }
  if (spec.nnz_per_row > spec.cols) {
    return Status::InvalidArgument("GenerateDataset: nnz_per_row > cols");
  }
  Rng rng(spec.seed ^ (static_cast<uint64_t>(spec.kind) << 32));
  switch (spec.kind) {
    case DatasetKind::kRcv1:
      return GenerateRcv1Like(spec, rng);
    case DatasetKind::kAvazu:
      return GenerateAvazuLike(spec, rng);
    case DatasetKind::kSynthetic:
      return GenerateSyntheticLike(spec, rng);
  }
  return Status::InvalidArgument("GenerateDataset: unknown kind");
}

}  // namespace flb::fl
