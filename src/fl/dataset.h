// Datasets for federated training.
//
// The paper evaluates on RCV1 (sparse text, 677K x 47K), Avazu (sparse CTR
// one-hots, 1.7M x 1M) and the LEAF Synthetic generator (dense, 100K x 10K).
// Those exact corpora are not available offline, so deterministic generators
// with the same *character* stand in (DESIGN.md §1): sparsity pattern,
// feature scale, label mechanism and class balance are modeled after each
// source; instance/feature counts are configurable and default to
// container-friendly sizes. PaperScaleSpec() returns the full-size shapes
// for op-count extrapolation in the epoch benches.

#ifndef FLB_FL_DATASET_H_
#define FLB_FL_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"

namespace flb::fl {

// Compressed-sparse-row feature matrix (labels live in Dataset).
class DataMatrix {
 public:
  DataMatrix() = default;

  static DataMatrix FromTriplets(
      size_t rows, size_t cols,
      const std::vector<std::tuple<uint32_t, uint32_t, float>>& triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }
  double density() const {
    return rows_ == 0 || cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) / (rows_ * cols_);
  }

  // Row access (half-open entry range [RowBegin, RowEnd)).
  size_t RowBegin(size_t row) const { return row_offsets_[row]; }
  size_t RowEnd(size_t row) const { return row_offsets_[row + 1]; }
  uint32_t EntryCol(size_t k) const { return col_idx_[k]; }
  float EntryValue(size_t k) const { return values_[k]; }
  size_t RowNnz(size_t row) const { return RowEnd(row) - RowBegin(row); }

  // w must have >= cols entries. Returns sum_j x[row][j] * w[j].
  double Dot(size_t row, const std::vector<double>& w) const;
  // acc[j] += scale * x[row][j] for the row's nonzeros.
  void AddScaledRowTo(size_t row, double scale, std::vector<double>* acc) const;

  // The column-restricted copy used by vertical partitioning: keeps columns
  // [col_begin, col_end) and renumbers them from zero.
  DataMatrix SliceColumns(size_t col_begin, size_t col_end) const;
  // Row-restricted copy (keeps rows [row_begin, row_end)).
  DataMatrix SliceRows(size_t row_begin, size_t row_end) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_offsets_{0};
  std::vector<uint32_t> col_idx_;
  std::vector<float> values_;

  friend class DataMatrixBuilder;
};

// Streaming row-by-row builder (generators use it).
class DataMatrixBuilder {
 public:
  DataMatrixBuilder(size_t cols) : cols_(cols) {}
  // Entries must have strictly increasing column indices < cols.
  void AddRow(const std::vector<std::pair<uint32_t, float>>& entries);
  DataMatrix Build();

 private:
  size_t cols_;
  DataMatrix m_;
};

struct Dataset {
  std::string name;
  DataMatrix x;
  std::vector<float> y;  // binary labels in {0, 1}

  size_t rows() const { return x.rows(); }
  size_t cols() const { return x.cols(); }
};

enum class DatasetKind : int { kRcv1 = 0, kAvazu = 1, kSynthetic = 2 };

std::string DatasetName(DatasetKind kind);

struct DatasetSpec {
  DatasetKind kind = DatasetKind::kSynthetic;
  size_t rows = 2000;
  size_t cols = 200;
  // Average nonzeros per row for the sparse generators (ignored by the
  // dense Synthetic generator).
  size_t nnz_per_row = 40;
  uint64_t seed = 7;
};

// The shapes of the paper's actual corpora (Table II), used to extrapolate
// per-epoch op counts in the epoch benches.
DatasetSpec PaperScaleSpec(DatasetKind kind);
// Container-friendly default shapes preserving each corpus's character.
DatasetSpec DefaultScaleSpec(DatasetKind kind);

// Deterministic generation; the same spec always yields the same dataset.
Result<Dataset> GenerateDataset(const DatasetSpec& spec);

}  // namespace flb::fl

#endif  // FLB_FL_DATASET_H_
