// Shared types for the federated trainers.

#ifndef FLB_FL_FL_TYPES_H_
#define FLB_FL_FL_TYPES_H_

#include <cstdint>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/sim_clock.h"
#include "src/core/he_service.h"
#include "src/fl/optimizer.h"
#include "src/net/network.h"

namespace flb::fl {

struct TrainConfig {
  int max_epochs = 3;
  int batch_size = 1024;
  double learning_rate = 0.1;
  double l2 = 0.01;  // L2 penalty coefficient (paper §VI-B: 0.01)
  // Convergence: stop when |loss_t - loss_{t-1}| < tolerance (paper: 1e-6).
  double tolerance = 1e-6;
  OptimizerKind optimizer = OptimizerKind::kAdam;

  // Graceful degradation under a fault plan (both gates are inert unless the
  // platform attaches a FaultInjector). A party that misses the round
  // deadline is excluded and the server aggregates the partial participant
  // set with FedAvg renormalization.
  //
  // Absolute gate: per-round simulated-seconds budget per party (compute +
  // estimated upload); 0 = the server waits forever.
  double straggler_deadline_sec = 0;
  // Relative gate: drop a party whose straggler slowdown factor exceeds
  // this multiple of a healthy party's round time; 0 = off. The server
  // stops waiting at the gate, so the straggler's excess compute beyond
  // factor x (healthy time) is not charged to the global timeline.
  double straggler_deadline_factor = 0;

  // Party-health quarantine policy (fl::PartyHealth), active only under a
  // fault plan AND when health_quarantine_sec > 0: a party whose failure
  // EWMA crosses the threshold is skipped for a backed-off window of
  // simulated seconds, then readmitted on probation. All knobs inert at
  // the defaults (quarantine window 0 = policy off).
  double health_ewma_alpha = 0.3;
  double health_failure_threshold = 0.5;
  double health_quarantine_sec = 0;
  double health_quarantine_backoff = 2.0;
  double health_max_quarantine_sec = 10.0;
};

// Dropout / degradation bookkeeping for a run under a fault plan (all zero
// in healthy runs).
struct RobustnessCounters {
  uint64_t straggler_dropouts = 0;  // parties past the round deadline
  uint64_t crash_dropouts = 0;      // parties down at round start
  uint64_t transport_dropouts = 0;  // sends/receives that exhausted retries
  uint64_t partial_rounds = 0;      // rounds aggregated with < all parties
  uint64_t skipped_rounds = 0;      // rounds with zero contributions
  uint64_t checkpoints = 0;         // epoch-boundary model snapshots
  uint64_t resumes = 0;             // server crash-resume restorations
  uint64_t quarantines = 0;         // PartyHealth quarantine events
  uint64_t quarantine_skips = 0;    // rounds a quarantined party sat out
  uint64_t readmits = 0;            // probation readmissions
  uint64_t deadline_exceeded = 0;   // run-deadline budget expirations seen

  uint64_t TotalDropouts() const {
    return straggler_dropouts + crash_dropouts + transport_dropouts;
  }
};

struct EpochRecord {
  int epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;
  // Cumulative simulated seconds at the end of this epoch, plus the
  // component decomposition of this epoch alone.
  double sim_seconds_cum = 0.0;
  double epoch_seconds = 0.0;
  double he_seconds = 0.0;
  double comm_seconds = 0.0;
  double other_seconds = 0.0;
  uint64_t comm_bytes = 0;
};

struct TrainResult {
  std::vector<EpochRecord> epochs;
  double final_loss = 0.0;
  double final_accuracy = 0.0;
  bool converged = false;
  RobustnessCounters robustness;

  double TotalSimSeconds() const {
    return epochs.empty() ? 0.0 : epochs.back().sim_seconds_cum;
  }
  double SecondsPerEpoch() const {
    return epochs.empty() ? 0.0 : TotalSimSeconds() / epochs.size();
  }
};

// Everything a trainer needs from the platform.
struct FlSession {
  core::HeService* he = nullptr;
  net::Network* network = nullptr;
  SimClock* clock = nullptr;  // may be null
  // Set when a fault plan is active: trainers consult it for party
  // liveness and straggler factors (transport faults are injected inside
  // Network and handled by the ReliableChannel without trainer help).
  net::FaultInjector* faults = nullptr;
  // Set when the platform bounds the run with a simulated-time budget:
  // trainers check it at round boundaries (via RobustCoordinator) and
  // return typed kDeadlineExceeded instead of starting work the budget
  // cannot cover. Null = unbounded (the default).
  const common::Deadline* deadline = nullptr;
};

}  // namespace flb::fl

#endif  // FLB_FL_FL_TYPES_H_
