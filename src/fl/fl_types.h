// Shared types for the federated trainers.

#ifndef FLB_FL_FL_TYPES_H_
#define FLB_FL_FL_TYPES_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_clock.h"
#include "src/core/he_service.h"
#include "src/fl/optimizer.h"
#include "src/net/network.h"

namespace flb::fl {

struct TrainConfig {
  int max_epochs = 3;
  int batch_size = 1024;
  double learning_rate = 0.1;
  double l2 = 0.01;  // L2 penalty coefficient (paper §VI-B: 0.01)
  // Convergence: stop when |loss_t - loss_{t-1}| < tolerance (paper: 1e-6).
  double tolerance = 1e-6;
  OptimizerKind optimizer = OptimizerKind::kAdam;
};

struct EpochRecord {
  int epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;
  // Cumulative simulated seconds at the end of this epoch, plus the
  // component decomposition of this epoch alone.
  double sim_seconds_cum = 0.0;
  double epoch_seconds = 0.0;
  double he_seconds = 0.0;
  double comm_seconds = 0.0;
  double other_seconds = 0.0;
  uint64_t comm_bytes = 0;
};

struct TrainResult {
  std::vector<EpochRecord> epochs;
  double final_loss = 0.0;
  double final_accuracy = 0.0;
  bool converged = false;

  double TotalSimSeconds() const {
    return epochs.empty() ? 0.0 : epochs.back().sim_seconds_cum;
  }
  double SecondsPerEpoch() const {
    return epochs.empty() ? 0.0 : TotalSimSeconds() / epochs.size();
  }
};

// Everything a trainer needs from the platform.
struct FlSession {
  core::HeService* he = nullptr;
  net::Network* network = nullptr;
  SimClock* clock = nullptr;  // may be null
};

}  // namespace flb::fl

#endif  // FLB_FL_FL_TYPES_H_
