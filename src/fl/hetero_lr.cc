#include "src/fl/hetero_lr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/transport.h"
#include "src/fl/metrics.h"
#include "src/fl/robust.h"
#include "src/fl/trainer_util.h"

namespace flb::fl {

namespace {

// Checkpoint layout for the per-party weight vectors: concatenation in
// party order (the per-party sizes are fixed by the partition shape).
std::vector<double> FlattenWeights(
    const std::vector<std::vector<double>>& weights) {
  std::vector<double> flat;
  for (const auto& w : weights) flat.insert(flat.end(), w.begin(), w.end());
  return flat;
}

void UnflattenWeights(const std::vector<double>& flat,
                      std::vector<std::vector<double>>* weights) {
  size_t offset = 0;
  for (auto& w : *weights) {
    for (double& v : w) v = offset < flat.size() ? flat[offset++] : 0.0;
  }
}

}  // namespace

HeteroLrTrainer::HeteroLrTrainer(VerticalPartition partition,
                                 FlSession session, TrainConfig config)
    : partition_(std::move(partition)),
      session_(session),
      config_(config) {
  FLB_CHECK(!partition_.shards.empty());
  weights_.resize(partition_.shards.size());
  for (size_t p = 0; p < partition_.shards.size(); ++p) {
    // Guest (party 0) owns the intercept.
    weights_[p].assign(partition_.shards[p].x.cols() + (p == 0 ? 1 : 0), 0.0);
  }
}

std::vector<double> HeteroLrTrainer::PartialScores(int party, size_t begin,
                                                   size_t end) const {
  const DataMatrix& x = partition_.shards[party].x;
  const std::vector<double>& w = weights_[party];
  std::vector<double> u;
  u.reserve(end - begin);
  double flops = 0;
  for (size_t r = begin; r < end; ++r) {
    double z = x.Dot(r, w);
    if (party == 0) z += w.back();  // intercept
    u.push_back(z);
    flops += 2.0 * x.RowNnz(r);
  }
  ChargeModelCompute(session_.clock, flops);
  return u;
}

double HeteroLrTrainer::GlobalLoss(double* accuracy) const {
  // Evaluation-only: scores are assembled in-process without charging
  // communication (the paper likewise evaluates loss out of band).
  const size_t rows = partition_.shards[0].x.rows();
  double loss = 0.0;
  size_t correct = 0;
  double flops = 0;
  for (size_t r = 0; r < rows; ++r) {
    double z = weights_[0].back();
    for (size_t p = 0; p < partition_.shards.size(); ++p) {
      z += partition_.shards[p].x.Dot(r, weights_[p]);
      flops += 2.0 * partition_.shards[p].x.RowNnz(r);
    }
    const double prob = Sigmoid(z);
    loss += LogLoss(prob, partition_.labels[r]);
    correct += ((prob >= 0.5) == (partition_.labels[r] >= 0.5f)) ? 1 : 0;
  }
  ChargeModelCompute(session_.clock, flops);
  if (accuracy != nullptr) *accuracy = static_cast<double>(correct) / rows;
  return loss / rows;
}

Result<TrainResult> HeteroLrTrainer::Train() {
  const int parties = static_cast<int>(partition_.shards.size());
  core::HeService& he = *session_.he;
  net::Network& net = *session_.network;
  SimClock* clock = session_.clock;
  RobustCoordinator robust(session_, config_, "hetero_lr");
  // The protocol cannot proceed without the label owner or the key holder;
  // hosts only contribute score shares and can be absorbed partially.
  robust.set_critical_parties({kGuestName, kArbiterName});
  robust.Checkpoint(-1, FlattenWeights(weights_));

  std::vector<std::unique_ptr<Optimizer>> optimizers;
  for (int p = 0; p < parties; ++p) {
    optimizers.push_back(
        MakeOptimizer(config_.optimizer, config_.learning_rate));
  }

  const size_t rows = partition_.shards[0].x.rows();
  const size_t batches =
      std::max<size_t>(1, (rows + config_.batch_size - 1) / config_.batch_size);

  TrainResult result;
  double prev_loss = std::numeric_limits<double>::infinity();
  int epoch = 0;
  while (epoch < config_.max_epochs) {
    const ClockSnapshot before = ClockSnapshot::Take(clock, &net);
    bool epoch_aborted = false;
    for (size_t b = 0; b < batches && !epoch_aborted; ++b) {
      if (robust.active() && robust.CriticalDown()) {
        epoch_aborted = true;
        break;
      }
      FLB_RETURN_IF_ERROR(robust.CheckDeadline("HeteroLrTrainer::Train"));
      const size_t begin = b * config_.batch_size;
      const size_t end = std::min(rows, begin + config_.batch_size);
      const size_t m = end - begin;

      // --- hosts: encrypted scaled partial scores -> guest ------------------
      // A host that is down, quarantined, straggling past the gate, or whose
      // upload exhausts the transport retries drops out of this batch; the
      // guest folds only the shares that actually arrived (partial Taylor
      // residual — the hetero analogue of FedAvg renormalization).
      size_t fwd_sent = 0;
      for (int h = 1; h < parties; ++h) {
        const std::string name = HostName(h);
        if (!robust.AdmitParty(name)) continue;
        const double t0 = clock != nullptr ? clock->Now() : 0.0;
        std::vector<double> u = PartialScores(h, begin, end);
        for (double& v : u) v *= 0.25;
        FLB_ASSIGN_OR_RETURN(core::EncVec enc, he.EncryptValues(u));
        double response = 0.0;
        if (robust.active()) {
          const double compute = clock != nullptr ? clock->Now() - t0 : 0.0;
          const double send =
              net.TransferSeconds(he.WireBytes(enc), enc.data.size());
          response = compute + send;
          if (!robust.AdmitUpload(name, compute, send)) {
            robust.RecordPartyOutcome(name, false, response);
            continue;
          }
        }
        Status sent =
            core::SendEncVec(&net, he, name, kGuestName, "fwd", enc);
        if (!sent.ok()) {
          if (robust.active() && RobustCoordinator::Recoverable(sent)) {
            robust.RecordPartyOutcome(name, false, response);
            robust.CountTransportDropout(name, sent);
            continue;
          }
          return sent;
        }
        robust.RecordPartyOutcome(name, true, response);
        fwd_sent += 1;
      }

      // --- guest: fold + own share + label term -> arbiter -------------------
      // Taylor residual for {0,1} labels: d = sigmoid(z) - y ~= 0.25 z +
      // (0.5 - y); the guest owns the label term and its score share.
      std::vector<double> guest_term = PartialScores(0, begin, end);
      for (size_t i = 0; i < m; ++i) {
        guest_term[i] =
            0.25 * guest_term[i] + 0.5 - partition_.labels[begin + i];
      }
      const size_t expected_fwd =
          robust.active() ? fwd_sent : static_cast<size_t>(parties - 1);
      core::EncVec residual;
      size_t folded = 0;
      for (size_t i = 0; i < expected_fwd && !epoch_aborted; ++i) {
        Result<core::EncVec> next = core::RecvEncVec(&net, kGuestName, "fwd");
        if (!next.ok()) {
          if (robust.active() &&
              RobustCoordinator::Recoverable(next.status())) {
            if (robust.CriticalDown()) {
              epoch_aborted = true;
              break;
            }
            robust.CountTransportDropout(kGuestName, next.status());
            continue;
          }
          return next.status();
        }
        if (folded == 0) {
          residual = std::move(next).value();
        } else {
          FLB_ASSIGN_OR_RETURN(residual, he.AddCipher(residual, next.value()));
        }
        folded += 1;
      }
      if (epoch_aborted) break;
      if (folded > 0) {
        FLB_ASSIGN_OR_RETURN(residual,
                             he.AddPlainValues(residual, guest_term));
      } else {
        // Every host share is missing this batch: train on the guest's own
        // term alone rather than stalling the round.
        FLB_ASSIGN_OR_RETURN(residual, he.EncryptValues(guest_term));
      }
      if (robust.active() && folded < static_cast<size_t>(parties - 1)) {
        robust.CountPartialRound();
      }
      Status to_arbiter = core::SendEncVec(&net, he, kGuestName, kArbiterName,
                                           "residual", residual);
      if (!to_arbiter.ok()) {
        if (robust.active() && RobustCoordinator::Recoverable(to_arbiter)) {
          if (robust.CriticalDown()) {
            epoch_aborted = true;
            break;
          }
          robust.CountTransportDropout(kGuestName, to_arbiter);
          robust.CountSkippedRound();
          continue;  // no residual -> no update this batch
        }
        return to_arbiter;
      }

      // --- arbiter: decrypt, broadcast d -------------------------------------
      Result<core::EncVec> enc_d =
          core::RecvEncVec(&net, kArbiterName, "residual");
      if (!enc_d.ok()) {
        if (robust.active() && RobustCoordinator::Recoverable(enc_d.status())) {
          if (robust.CriticalDown()) {
            epoch_aborted = true;
            break;
          }
          robust.CountTransportDropout(kArbiterName, enc_d.status());
          robust.CountSkippedRound();
          continue;
        }
        return enc_d.status();
      }
      FLB_ASSIGN_OR_RETURN(std::vector<double> d,
                           he.DecryptValues(enc_d.value()));
      std::vector<bool> got_d(parties, false);
      for (int p = 0; p < parties; ++p) {
        const std::string name = p == 0 ? kGuestName : HostName(p);
        if (robust.active() && !robust.IsUp(name)) continue;
        Status sent = core::SendDoubles(&net, kArbiterName, name, "d", d);
        if (!sent.ok()) {
          if (robust.active() && RobustCoordinator::Recoverable(sent)) {
            robust.CountTransportDropout(name, sent);
            continue;
          }
          return sent;
        }
        got_d[p] = true;
      }

      // --- all parties: plaintext local gradient + update --------------------
      // A party that missed the broadcast keeps last round's weights; the
      // others advance (per-party models drift is bounded by the next
      // successful broadcast, exactly like a homo partial round).
      for (int p = 0; p < parties; ++p) {
        if (!got_d[p]) continue;
        const std::string name = p == 0 ? kGuestName : HostName(p);
        Result<std::vector<double>> received_d =
            core::RecvDoubles(&net, name, "d");
        if (!received_d.ok()) {
          if (robust.active() &&
              RobustCoordinator::Recoverable(received_d.status())) {
            robust.CountTransportDropout(name, received_d.status());
            continue;
          }
          return received_d.status();
        }
        const DataMatrix& x = partition_.shards[p].x;
        std::vector<double> grad(weights_[p].size(), 0.0);
        double flops = 0;
        for (size_t i = 0; i < m; ++i) {
          x.AddScaledRowTo(begin + i, received_d.value()[i], &grad);
          if (p == 0) grad.back() += received_d.value()[i];
          flops += 2.0 * x.RowNnz(begin + i);
        }
        const double inv = 1.0 / static_cast<double>(m);
        for (size_t j = 0; j < grad.size(); ++j) {
          grad[j] = grad[j] * inv + config_.l2 * weights_[p][j];
        }
        ChargeModelCompute(clock, flops + 3.0 * grad.size());
        FLB_RETURN_IF_ERROR(optimizers[p]->Step(&weights_[p], grad));
      }
    }

    if (epoch_aborted) {
      // A critical party (guest / arbiter) restart: wait out the downtime,
      // restore the epoch-boundary checkpoint, re-run from there. Optimizer
      // moments are not checkpointed (they restart cold, like the server in
      // the homo trainers).
      std::vector<double> flat;
      FLB_ASSIGN_OR_RETURN(const int resume_epoch, robust.Resume(&flat));
      UnflattenWeights(flat, &weights_);
      if (static_cast<size_t>(resume_epoch) < result.epochs.size()) {
        result.epochs.resize(resume_epoch);
      }
      epoch = resume_epoch;
      for (int p = 0; p < parties; ++p) {
        optimizers[p] = MakeOptimizer(config_.optimizer, config_.learning_rate);
      }
      prev_loss = result.epochs.empty()
                      ? std::numeric_limits<double>::infinity()
                      : result.epochs.back().loss;
      continue;
    }

    EpochRecord record;
    record.epoch = epoch;
    record.loss = GlobalLoss(&record.accuracy);
    const ClockSnapshot after = ClockSnapshot::Take(clock, &net);
    FillEpochTiming(before, after, &record);
    TraceEpoch("hetero_lr", record, session_, config_.max_epochs);
    result.epochs.push_back(record);
    robust.Checkpoint(epoch, FlattenWeights(weights_));
    if (std::fabs(prev_loss - record.loss) < config_.tolerance) {
      result.converged = true;
      break;
    }
    prev_loss = record.loss;
    epoch += 1;
  }
  if (!result.epochs.empty()) {
    result.final_loss = result.epochs.back().loss;
    result.final_accuracy = result.epochs.back().accuracy;
  }
  result.robustness = robust.counters();
  return result;
}

}  // namespace flb::fl
