#include "src/fl/hetero_lr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/transport.h"
#include "src/fl/metrics.h"
#include "src/fl/trainer_util.h"

namespace flb::fl {

HeteroLrTrainer::HeteroLrTrainer(VerticalPartition partition,
                                 FlSession session, TrainConfig config)
    : partition_(std::move(partition)),
      session_(session),
      config_(config) {
  FLB_CHECK(!partition_.shards.empty());
  weights_.resize(partition_.shards.size());
  for (size_t p = 0; p < partition_.shards.size(); ++p) {
    // Guest (party 0) owns the intercept.
    weights_[p].assign(partition_.shards[p].x.cols() + (p == 0 ? 1 : 0), 0.0);
  }
}

std::vector<double> HeteroLrTrainer::PartialScores(int party, size_t begin,
                                                   size_t end) const {
  const DataMatrix& x = partition_.shards[party].x;
  const std::vector<double>& w = weights_[party];
  std::vector<double> u;
  u.reserve(end - begin);
  double flops = 0;
  for (size_t r = begin; r < end; ++r) {
    double z = x.Dot(r, w);
    if (party == 0) z += w.back();  // intercept
    u.push_back(z);
    flops += 2.0 * x.RowNnz(r);
  }
  ChargeModelCompute(session_.clock, flops);
  return u;
}

double HeteroLrTrainer::GlobalLoss(double* accuracy) const {
  // Evaluation-only: scores are assembled in-process without charging
  // communication (the paper likewise evaluates loss out of band).
  const size_t rows = partition_.shards[0].x.rows();
  double loss = 0.0;
  size_t correct = 0;
  double flops = 0;
  for (size_t r = 0; r < rows; ++r) {
    double z = weights_[0].back();
    for (size_t p = 0; p < partition_.shards.size(); ++p) {
      z += partition_.shards[p].x.Dot(r, weights_[p]);
      flops += 2.0 * partition_.shards[p].x.RowNnz(r);
    }
    const double prob = Sigmoid(z);
    loss += LogLoss(prob, partition_.labels[r]);
    correct += ((prob >= 0.5) == (partition_.labels[r] >= 0.5f)) ? 1 : 0;
  }
  ChargeModelCompute(session_.clock, flops);
  if (accuracy != nullptr) *accuracy = static_cast<double>(correct) / rows;
  return loss / rows;
}

Result<TrainResult> HeteroLrTrainer::Train() {
  const int parties = static_cast<int>(partition_.shards.size());
  core::HeService& he = *session_.he;
  net::Network& net = *session_.network;

  std::vector<std::unique_ptr<Optimizer>> optimizers;
  for (int p = 0; p < parties; ++p) {
    optimizers.push_back(
        MakeOptimizer(config_.optimizer, config_.learning_rate));
  }

  const size_t rows = partition_.shards[0].x.rows();
  const size_t batches =
      std::max<size_t>(1, (rows + config_.batch_size - 1) / config_.batch_size);

  TrainResult result;
  double prev_loss = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    const ClockSnapshot before = ClockSnapshot::Take(session_.clock, &net);
    for (size_t b = 0; b < batches; ++b) {
      const size_t begin = b * config_.batch_size;
      const size_t end = std::min(rows, begin + config_.batch_size);
      const size_t m = end - begin;

      // --- hosts: encrypted scaled partial scores -> guest ------------------
      for (int h = 1; h < parties; ++h) {
        std::vector<double> u = PartialScores(h, begin, end);
        for (double& v : u) v *= 0.25;
        FLB_ASSIGN_OR_RETURN(core::EncVec enc, he.EncryptValues(u));
        FLB_RETURN_IF_ERROR(
            core::SendEncVec(&net, he, HostName(h), kGuestName, "fwd", enc));
      }

      // --- guest: fold + own share + label term -> arbiter -------------------
      // Taylor residual for {0,1} labels: d = sigmoid(z) - y ~= 0.25 z +
      // (0.5 - y); the guest owns the label term and its score share.
      std::vector<double> guest_term = PartialScores(0, begin, end);
      for (size_t i = 0; i < m; ++i) {
        guest_term[i] =
            0.25 * guest_term[i] + 0.5 - partition_.labels[begin + i];
      }
      core::EncVec residual;
      if (parties > 1) {
        FLB_ASSIGN_OR_RETURN(residual,
                             core::RecvEncVec(&net, kGuestName, "fwd"));
        for (int h = 2; h < parties; ++h) {
          FLB_ASSIGN_OR_RETURN(core::EncVec next,
                               core::RecvEncVec(&net, kGuestName, "fwd"));
          FLB_ASSIGN_OR_RETURN(residual, he.AddCipher(residual, next));
        }
        FLB_ASSIGN_OR_RETURN(residual,
                             he.AddPlainValues(residual, guest_term));
      } else {
        FLB_ASSIGN_OR_RETURN(residual, he.EncryptValues(guest_term));
      }
      FLB_RETURN_IF_ERROR(core::SendEncVec(&net, he, kGuestName, kArbiterName,
                                           "residual", residual));

      // --- arbiter: decrypt, broadcast d -------------------------------------
      FLB_ASSIGN_OR_RETURN(core::EncVec enc_d,
                           core::RecvEncVec(&net, kArbiterName, "residual"));
      FLB_ASSIGN_OR_RETURN(std::vector<double> d, he.DecryptValues(enc_d));
      FLB_RETURN_IF_ERROR(
          core::SendDoubles(&net, kArbiterName, kGuestName, "d", d));
      for (int h = 1; h < parties; ++h) {
        FLB_RETURN_IF_ERROR(
            core::SendDoubles(&net, kArbiterName, HostName(h), "d", d));
      }

      // --- all parties: plaintext local gradient + update --------------------
      for (int p = 0; p < parties; ++p) {
        FLB_ASSIGN_OR_RETURN(
            std::vector<double> received_d,
            core::RecvDoubles(&net, p == 0 ? kGuestName : HostName(p), "d"));
        const DataMatrix& x = partition_.shards[p].x;
        std::vector<double> grad(weights_[p].size(), 0.0);
        double flops = 0;
        for (size_t i = 0; i < m; ++i) {
          x.AddScaledRowTo(begin + i, received_d[i], &grad);
          if (p == 0) grad.back() += received_d[i];
          flops += 2.0 * x.RowNnz(begin + i);
        }
        const double inv = 1.0 / static_cast<double>(m);
        for (size_t j = 0; j < grad.size(); ++j) {
          grad[j] = grad[j] * inv + config_.l2 * weights_[p][j];
        }
        ChargeModelCompute(session_.clock, flops + 3.0 * grad.size());
        FLB_RETURN_IF_ERROR(optimizers[p]->Step(&weights_[p], grad));
      }
    }

    EpochRecord record;
    record.epoch = epoch;
    record.loss = GlobalLoss(&record.accuracy);
    const ClockSnapshot after = ClockSnapshot::Take(session_.clock, &net);
    FillEpochTiming(before, after, &record);
    TraceEpoch("hetero_lr", record, session_, config_.max_epochs);
    result.epochs.push_back(record);
    if (std::fabs(prev_loss - record.loss) < config_.tolerance) {
      result.converged = true;
      break;
    }
    prev_loss = record.loss;
  }
  if (!result.epochs.empty()) {
    result.final_loss = result.epochs.back().loss;
    result.final_accuracy = result.epochs.back().accuracy;
  }
  return result;
}

}  // namespace flb::fl
