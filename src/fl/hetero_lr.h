// Heterogeneous (vertical) logistic regression.
//
// Parties: a guest (holds labels + a feature shard), one or more hosts
// (feature shards only), and an arbiter that owns the Paillier keypair —
// the FATE role split. The protocol follows the Taylor-approximated
// federated LR (Hardy et al.; Yang et al. "Parallel-LR"): with
// sigmoid(z) ~= 0.5 + 0.25 z, the shared residual is
//
//   d_i = 0.25 * sum_party u_party_i + (0.5 - y_i),  u_party = X_party w_party
//   (labels y_i in {0, 1})
//
// Per mini-batch: hosts encrypt their scaled score vectors (packed under
// BC) and ship them to the guest; the guest folds them homomorphically,
// slot-adds its own share and the label term, and forwards E(d) to the
// arbiter; the arbiter decrypts and returns d to every party, which then
// computes its local gradient X^T d in plaintext and steps its own weights.
//
// Reproduction note (DESIGN.md): in FATE the residual stays encrypted at the
// hosts and only per-feature gradients are decrypted by the arbiter; here
// the arbiter decrypts d directly. Raw features and labels never leave
// their owners either way, and the measured quantities (HE op counts,
// ciphertext bytes per epoch) are the same to first order.

#ifndef FLB_FL_HETERO_LR_H_
#define FLB_FL_HETERO_LR_H_

#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/fl/dataset.h"
#include "src/fl/fl_types.h"
#include "src/fl/partition.h"

namespace flb::fl {

class HeteroLrTrainer {
 public:
  HeteroLrTrainer(VerticalPartition partition, FlSession session,
                  TrainConfig config);

  Result<TrainResult> Train();

  // Per-party weight vectors (party 0 = guest); each has an intercept slot
  // appended on the guest only.
  const std::vector<std::vector<double>>& weights() const { return weights_; }

 private:
  // u_party over batch rows [begin, end).
  std::vector<double> PartialScores(int party, size_t begin, size_t end) const;
  double GlobalLoss(double* accuracy) const;

  VerticalPartition partition_;
  FlSession session_;
  TrainConfig config_;
  std::vector<std::vector<double>> weights_;
};

}  // namespace flb::fl

#endif  // FLB_FL_HETERO_LR_H_
