#include "src/fl/hetero_nn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/transport.h"
#include "src/fl/metrics.h"
#include "src/fl/robust.h"
#include "src/fl/trainer_util.h"

namespace flb::fl {

namespace {

void InitWeights(std::vector<double>* w, size_t n, double scale, Rng* rng) {
  w->resize(n);
  for (auto& v : *w) v = rng->NextGaussian() * scale;
}

}  // namespace

HeteroNnTrainer::HeteroNnTrainer(VerticalPartition partition,
                                 FlSession session, TrainConfig config,
                                 NnParams params)
    : partition_(std::move(partition)),
      session_(session),
      config_(config),
      params_(params) {
  FLB_CHECK(partition_.shards.size() == 2,
            "HeteroNnTrainer expects guest + one host");
  Rng rng(params_.init_seed);
  const size_t guest_cols = partition_.shards[0].x.cols();
  const size_t host_cols = partition_.shards[1].x.cols();
  const int k = params_.bottom_dim;
  const int k2 = params_.interactive_dim;
  InitWeights(&w_guest_bottom_, k * guest_cols,
              1.0 / std::sqrt(static_cast<double>(guest_cols)), &rng);
  InitWeights(&w_host_bottom_, k * host_cols,
              1.0 / std::sqrt(static_cast<double>(host_cols)), &rng);
  InitWeights(&w_ih_, k2 * k, 1.0 / std::sqrt(static_cast<double>(k)), &rng);
  InitWeights(&w_ig_, k2 * k, 1.0 / std::sqrt(static_cast<double>(k)), &rng);
  b_i_.assign(k2, 0.0);
  InitWeights(&w_top_, k2, 1.0 / std::sqrt(static_cast<double>(k2)), &rng);
}

void HeteroNnTrainer::MatVec(const std::vector<double>& w, int out_dim,
                             int in_dim, const double* x, double* out) {
  for (int o = 0; o < out_dim; ++o) {
    double acc = 0;
    for (int j = 0; j < in_dim; ++j) acc += w[o * in_dim + j] * x[j];
    out[o] = acc;
  }
}

std::vector<double> HeteroNnTrainer::BottomForward(int party, size_t begin,
                                                   size_t end) const {
  const DataMatrix& x = partition_.shards[party].x;
  const std::vector<double>& w =
      party == 0 ? w_guest_bottom_ : w_host_bottom_;
  const int k = params_.bottom_dim;
  const size_t cols = x.cols();
  std::vector<double> acts((end - begin) * k);
  double flops = 0;
  for (size_t r = begin; r < end; ++r) {
    double* out = &acts[(r - begin) * k];
    for (int o = 0; o < k; ++o) {
      double acc = 0;
      for (size_t e = x.RowBegin(r); e < x.RowEnd(r); ++e) {
        acc += w[o * cols + x.EntryCol(e)] *
               static_cast<double>(x.EntryValue(e));
      }
      out[o] = std::tanh(acc);
    }
    flops += 2.0 * x.RowNnz(r) * k + 8.0 * k;
  }
  ChargeModelCompute(session_.clock, flops);
  return acts;
}

std::vector<double> HeteroNnTrainer::Predict() const {
  const size_t rows = partition_.shards[0].x.rows();
  const int k = params_.bottom_dim, k2 = params_.interactive_dim;
  std::vector<double> probs(rows);
  std::vector<double> a_g = BottomForward(0, 0, rows);
  std::vector<double> a_h = BottomForward(1, 0, rows);
  std::vector<double> z(k2), zh(k2), zg(k2);
  for (size_t i = 0; i < rows; ++i) {
    MatVec(w_ih_, k2, k, &a_h[i * k], zh.data());
    MatVec(w_ig_, k2, k, &a_g[i * k], zg.data());
    double score = b_top_;
    for (int o = 0; o < k2; ++o) {
      z[o] = std::tanh(zh[o] + zg[o] + b_i_[o]);
      score += w_top_[o] * z[o];
    }
    probs[i] = Sigmoid(score);
  }
  return probs;
}

double HeteroNnTrainer::EvaluateLoss(double* accuracy) const {
  std::vector<double> probs = Predict();
  ChargeModelCompute(session_.clock, 20.0 * probs.size());
  if (accuracy != nullptr) *accuracy = Accuracy(probs, partition_.labels);
  return MeanLogLoss(probs, partition_.labels);
}

std::vector<double> HeteroNnTrainer::SnapshotWeights() const {
  std::vector<double> flat;
  for (const auto* w : {&w_guest_bottom_, &w_host_bottom_, &w_ih_, &w_ig_,
                        &b_i_, &w_top_}) {
    flat.insert(flat.end(), w->begin(), w->end());
  }
  flat.push_back(b_top_);
  return flat;
}

void HeteroNnTrainer::RestoreWeights(const std::vector<double>& flat) {
  size_t offset = 0;
  for (auto* w : {&w_guest_bottom_, &w_host_bottom_, &w_ih_, &w_ig_, &b_i_,
                  &w_top_}) {
    for (double& v : *w) v = offset < flat.size() ? flat[offset++] : 0.0;
  }
  b_top_ = offset < flat.size() ? flat[offset] : 0.0;
}

Status HeteroNnTrainer::TrainBatch(size_t begin, size_t end) {
  core::HeService& he = *session_.he;
  net::Network& net = *session_.network;
  const int k = params_.bottom_dim, k2 = params_.interactive_dim;
  const size_t m = end - begin;
  const double lr = config_.learning_rate;
  {
      // --- guest: ship the encrypted interactive weights ----------------------
      // (k2 x k per-value ciphertexts — small, and the host can scalar-
      // multiply them by its own plaintext activations.)
      FLB_ASSIGN_OR_RETURN(core::EncVec enc_w, he.EncryptFixedPoint(w_ih_));
      FLB_RETURN_IF_ERROR(
          core::SendEncVec(&net, he, kGuestName, HostName(1), "enc_w", enc_w));

      // --- host: bottom forward + encrypted interactive forward ---------------
      std::vector<double> a_h = BottomForward(1, begin, end);  // m x k
      FLB_ASSIGN_OR_RETURN(core::EncVec host_enc_w,
                           core::RecvEncVec(&net, HostName(1), "enc_w"));
      std::vector<double> a_g = BottomForward(0, begin, end);
      // E(z_h[i][o]) = sum_j E(W[o][j]) * a_h[i][j]: one group per
      // (instance, interactive unit), weights are the host's activations.
      std::vector<std::vector<core::HeService::WeightedTerm>> fwd_groups;
      fwd_groups.reserve(m * k2);
      for (size_t i = 0; i < m; ++i) {
        for (int o = 0; o < k2; ++o) {
          std::vector<core::HeService::WeightedTerm> terms;
          terms.reserve(k);
          for (int j = 0; j < k; ++j) {
            terms.push_back(
                {static_cast<uint32_t>(o * k + j), a_h[i * k + j]});
          }
          fwd_groups.push_back(std::move(terms));
        }
      }
      FLB_ASSIGN_OR_RETURN(core::EncVec enc_zh,
                           he.WeightedSums(host_enc_w, fwd_groups));
      FLB_ASSIGN_OR_RETURN(enc_zh, he.CompressForTransmission(enc_zh));
      FLB_RETURN_IF_ERROR(
          core::SendEncVec(&net, he, HostName(1), kArbiterName, "zh", enc_zh));
      FLB_ASSIGN_OR_RETURN(core::EncVec arb_zh,
                           core::RecvEncVec(&net, kArbiterName, "zh"));
      FLB_ASSIGN_OR_RETURN(std::vector<double> zh, he.DecryptFixedPoint(arb_zh));
      FLB_RETURN_IF_ERROR(
          core::SendDoubles(&net, kArbiterName, kGuestName, "zh_plain", zh));
      FLB_ASSIGN_OR_RETURN(zh, core::RecvDoubles(&net, kGuestName, "zh_plain"));

      // --- guest: plaintext forward + backward through the top ---------------
      std::vector<double> z(m * k2), t(m * k2), delta_z(m * k2);
      std::vector<double> grad_w_top(k2, 0.0);
      double grad_b_top = 0.0;
      std::vector<double> grad_w_ig(k2 * k, 0.0), grad_b_i(k2, 0.0);
      std::vector<double> zg(k2);
      for (size_t i = 0; i < m; ++i) {
        MatVec(w_ig_, k2, k, &a_g[i * k], zg.data());
        double score = b_top_;
        for (int o = 0; o < k2; ++o) {
          z[i * k2 + o] = zh[i * k2 + o] + zg[o] + b_i_[o];
          t[i * k2 + o] = std::tanh(z[i * k2 + o]);
          score += w_top_[o] * t[i * k2 + o];
        }
        const double err =
            Sigmoid(score) - partition_.labels[begin + i];  // dL/dscore
        grad_b_top += err;
        for (int o = 0; o < k2; ++o) {
          grad_w_top[o] += err * t[i * k2 + o];
          const double dz =
              err * w_top_[o] * (1.0 - t[i * k2 + o] * t[i * k2 + o]);
          delta_z[i * k2 + o] = dz;
          grad_b_i[o] += dz;
          for (int j = 0; j < k; ++j) {
            grad_w_ig[o * k + j] += dz * a_g[i * k + j];
          }
        }
      }
      ChargeModelCompute(session_.clock, 10.0 * m * k2 * (k + 2));

      // --- interactive weight gradient via the host ---------------------------
      // The guest packs-and-encrypts the interactive deltas (BC packing: the
      // arbiter only decrypts them); the arbiter releases delta to the host,
      // which computes grad W_ih = delta^T a_h against its own activations.
      FLB_ASSIGN_OR_RETURN(core::EncVec enc_delta, he.EncryptValues(delta_z));
      FLB_RETURN_IF_ERROR(core::SendEncVec(&net, he, kGuestName, kArbiterName,
                                           "delta", enc_delta));
      FLB_ASSIGN_OR_RETURN(core::EncVec arb_delta,
                           core::RecvEncVec(&net, kArbiterName, "delta"));
      FLB_ASSIGN_OR_RETURN(std::vector<double> delta_plain,
                           he.DecryptValues(arb_delta));
      FLB_RETURN_IF_ERROR(core::SendDoubles(&net, kArbiterName, HostName(1),
                                            "delta_plain", delta_plain));
      FLB_ASSIGN_OR_RETURN(std::vector<double> host_delta,
                           core::RecvDoubles(&net, HostName(1), "delta_plain"));
      std::vector<double> host_wgrad(k2 * k, 0.0);
      for (size_t i = 0; i < m; ++i) {
        for (int o = 0; o < k2; ++o) {
          for (int j = 0; j < k; ++j) {
            host_wgrad[o * k + j] += host_delta[i * k2 + o] * a_h[i * k + j];
          }
        }
      }
      ChargeModelCompute(session_.clock, 2.0 * m * k2 * k);
      FLB_RETURN_IF_ERROR(core::SendDoubles(&net, HostName(1), kGuestName,
                                            "wgrad_plain", host_wgrad));
      FLB_ASSIGN_OR_RETURN(std::vector<double> grad_w_ih,
                           core::RecvDoubles(&net, kGuestName, "wgrad_plain"));

      // --- host backward ------------------------------------------------------
      // grad a_h[i][j] = sum_o delta_z[i][o] * W_ih[o][j] (plaintext at the
      // guest; see header privacy note), then the host backprops its bottom.
      std::vector<double> grad_ah(m * k, 0.0);
      for (size_t i = 0; i < m; ++i) {
        for (int o = 0; o < k2; ++o) {
          for (int j = 0; j < k; ++j) {
            grad_ah[i * k + j] += delta_z[i * k2 + o] * w_ih_[o * k + j];
          }
        }
      }
      ChargeModelCompute(session_.clock, 2.0 * m * k2 * k);
      FLB_RETURN_IF_ERROR(
          core::SendDoubles(&net, kGuestName, HostName(1), "grad_ah", grad_ah));
      FLB_ASSIGN_OR_RETURN(std::vector<double> host_grad_ah,
                           core::RecvDoubles(&net, HostName(1), "grad_ah"));
      {
        const DataMatrix& xh = partition_.shards[1].x;
        const size_t cols = xh.cols();
        std::vector<double> grad_w_hb(w_host_bottom_.size(), 0.0);
        double flops = 0;
        for (size_t i = 0; i < m; ++i) {
          for (int j = 0; j < k; ++j) {
            const double da =
                host_grad_ah[i * k + j] *
                (1.0 - a_h[i * k + j] * a_h[i * k + j]);  // tanh'
            for (size_t e = xh.RowBegin(begin + i); e < xh.RowEnd(begin + i);
                 ++e) {
              grad_w_hb[j * cols + xh.EntryCol(e)] +=
                  da * static_cast<double>(xh.EntryValue(e));
            }
            flops += 2.0 * xh.RowNnz(begin + i);
          }
        }
        const double scale = lr / static_cast<double>(m);
        for (size_t idx = 0; idx < w_host_bottom_.size(); ++idx) {
          w_host_bottom_[idx] -= scale * grad_w_hb[idx];
        }
        ChargeModelCompute(session_.clock, flops + w_host_bottom_.size());
      }

      // --- guest updates -------------------------------------------------------
      {
        // Guest bottom gradient via the interactive layer.
        const DataMatrix& xg = partition_.shards[0].x;
        const size_t cols = xg.cols();
        std::vector<double> grad_w_gb(w_guest_bottom_.size(), 0.0);
        double flops = 0;
        for (size_t i = 0; i < m; ++i) {
          for (int j = 0; j < k; ++j) {
            double grad_ag = 0;
            for (int o = 0; o < k2; ++o) {
              grad_ag += delta_z[i * k2 + o] * w_ig_[o * k + j];
            }
            const double da =
                grad_ag * (1.0 - a_g[i * k + j] * a_g[i * k + j]);
            for (size_t e = xg.RowBegin(begin + i); e < xg.RowEnd(begin + i);
                 ++e) {
              grad_w_gb[j * cols + xg.EntryCol(e)] +=
                  da * static_cast<double>(xg.EntryValue(e));
            }
            flops += 2.0 * (k2 + xg.RowNnz(begin + i));
          }
        }
        const double scale = lr / static_cast<double>(m);
        for (size_t idx = 0; idx < w_guest_bottom_.size(); ++idx) {
          w_guest_bottom_[idx] -= scale * grad_w_gb[idx];
        }
        for (int o = 0; o < k2; ++o) {
          for (int j = 0; j < k; ++j) {
            w_ih_[o * k + j] -= scale * grad_w_ih[o * k + j];
            w_ig_[o * k + j] -= scale * grad_w_ig[o * k + j];
          }
          b_i_[o] -= scale * grad_b_i[o];
          w_top_[o] -= scale * grad_w_top[o];
        }
        b_top_ -= scale * grad_b_top;
        ChargeModelCompute(session_.clock, flops + 4.0 * k2 * k);
      }
  }
  return Status::OK();
}

Result<TrainResult> HeteroNnTrainer::Train() {
  net::Network& net = *session_.network;
  const size_t rows = partition_.shards[0].x.rows();
  const size_t batches =
      std::max<size_t>(1, (rows + config_.batch_size - 1) / config_.batch_size);
  RobustCoordinator robust(session_, config_, "hetero_nn");
  // Every message in this protocol crosses a link between guest, host, and
  // arbiter, and each round mutates weights mid-protocol; no party is
  // droppable. Any recoverable transport failure therefore aborts the
  // epoch and restores the last checkpoint (split-NN fast abort).
  robust.set_critical_parties({kGuestName, HostName(1), kArbiterName});
  robust.Checkpoint(-1, SnapshotWeights());

  TrainResult result;
  double prev_loss = std::numeric_limits<double>::infinity();
  int epoch = 0;
  while (epoch < config_.max_epochs) {
    const ClockSnapshot before = ClockSnapshot::Take(session_.clock, &net);
    bool epoch_aborted = false;
    for (size_t b = 0; b < batches && !epoch_aborted; ++b) {
      if (robust.active() && robust.CriticalDown()) {
        epoch_aborted = true;
        break;
      }
      FLB_RETURN_IF_ERROR(robust.CheckDeadline("HeteroNnTrainer::Train"));
      const size_t begin = b * config_.batch_size;
      const size_t end = std::min(rows, begin + config_.batch_size);
      Status batch = TrainBatch(begin, end);
      if (!batch.ok()) {
        if (robust.active() && RobustCoordinator::Recoverable(batch)) {
          // The round died mid-protocol: weights may be half-updated and
          // peers hold stale in-flight messages. Roll the epoch back.
          robust.CountTransportDropout("protocol", batch);
          epoch_aborted = true;
          break;
        }
        return batch;
      }
    }

    if (epoch_aborted) {
      std::vector<double> flat;
      FLB_ASSIGN_OR_RETURN(const int resume_epoch, robust.Resume(&flat));
      RestoreWeights(flat);
      if (static_cast<size_t>(resume_epoch) < result.epochs.size()) {
        result.epochs.resize(resume_epoch);
      }
      epoch = resume_epoch;
      prev_loss = result.epochs.empty()
                      ? std::numeric_limits<double>::infinity()
                      : result.epochs.back().loss;
      continue;
    }

    EpochRecord record;
    record.epoch = epoch;
    record.loss = EvaluateLoss(&record.accuracy);
    const ClockSnapshot after = ClockSnapshot::Take(session_.clock, &net);
    FillEpochTiming(before, after, &record);
    TraceEpoch("hetero_nn", record, session_, config_.max_epochs);
    result.epochs.push_back(record);
    robust.Checkpoint(epoch, SnapshotWeights());
    if (std::fabs(prev_loss - record.loss) < config_.tolerance) {
      result.converged = true;
      break;
    }
    prev_loss = record.loss;
    epoch += 1;
  }
  if (!result.epochs.empty()) {
    result.final_loss = result.epochs.back().loss;
    result.final_accuracy = result.epochs.back().accuracy;
  }
  result.robustness = robust.counters();
  return result;
}

}  // namespace flb::fl
