// Heterogeneous (vertical) split neural network — FATE's Hetero NN /
// GELU-net pattern (Zhang et al.), the fourth model the paper accelerates.
//
// Topology: host and guest each run a private bottom dense layer over their
// feature shard; an *interactive layer* owned by the guest mixes the two
// bottom outputs; the guest's top layer produces the prediction.
//
//     host:   a_h = tanh(W_hb x_h)          (plaintext, private)
//     guest:  a_g = tanh(W_gb x_g)          (plaintext, private)
//     interactive: z = W_ih a_h + W_ig a_g + b
//     guest top:   y_hat = sigmoid(w_top tanh(z) + b_top)
//
// The privacy-critical coupling is W_ih a_h: the guest must not see a_h and
// the host must not see W_ih. Following GELU-net's encrypted-weights
// design, the guest ships the (small) interactive weight matrix as
// per-value ciphertexts E(W_ih); the host — which holds a_h in plaintext —
// computes E(z_h) = E(W_ih a_h) with homomorphic weighted sums,
// cipher-compresses the result (BC), and the arbiter decrypts it for the
// guest. On the backward pass the guest packs-and-encrypts the interactive
// deltas (BC pre-encryption packing) for the arbiter, which releases them
// to the host; the host then computes the interactive weight gradient
// delta^T a_h in plaintext and returns it to the guest. The activation
// gradient sent back to the host is plaintext. FATE masks the decrypted
// intermediates instead of routing them through an arbiter; the
// simplification is documented in DESIGN.md — raw features and bottom
// models never move, and the HE op/byte counts match the FATE protocol to
// first order.

#ifndef FLB_FL_HETERO_NN_H_
#define FLB_FL_HETERO_NN_H_

#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/fl/dataset.h"
#include "src/fl/fl_types.h"
#include "src/fl/partition.h"

namespace flb::fl {

struct NnParams {
  int bottom_dim = 8;       // bottom-layer output width (both parties)
  int interactive_dim = 8;  // interactive-layer output width
  uint64_t init_seed = 17;
};

class HeteroNnTrainer {
 public:
  // Requires exactly two shards: shard 0 = guest (labels), shard 1 = host.
  HeteroNnTrainer(VerticalPartition partition, FlSession session,
                  TrainConfig config, NnParams params = {});

  Result<TrainResult> Train();

  // Prediction over the training set (evaluation helper).
  std::vector<double> Predict() const;

 private:
  // Dense helpers (row-major weight matrices).
  static void MatVec(const std::vector<double>& w, int out_dim, int in_dim,
                     const double* x, double* out);

  // Bottom forward for one party over batch rows [begin, end): returns
  // (end-begin) x bottom_dim activations, row-major.
  std::vector<double> BottomForward(int party, size_t begin,
                                    size_t end) const;

  // One protocol round over batch rows [begin, end). Any error aborts the
  // round mid-protocol; the weights may be half-updated, so recoverable
  // (transport) errors must be followed by a checkpoint restore.
  Status TrainBatch(size_t begin, size_t end);

  double EvaluateLoss(double* accuracy) const;

  // Checkpoint payload: every parameter tensor concatenated in a fixed
  // order (bottom weights, interactive, biases, top).
  std::vector<double> SnapshotWeights() const;
  void RestoreWeights(const std::vector<double>& flat);

  VerticalPartition partition_;
  FlSession session_;
  TrainConfig config_;
  NnParams params_;

  // Parameters. Bottom weights: bottom_dim x shard_cols (row-major).
  std::vector<double> w_host_bottom_;
  std::vector<double> w_guest_bottom_;
  // Interactive: interactive_dim x bottom_dim each, plus bias.
  std::vector<double> w_ih_;  // applied to host activations (guest-owned)
  std::vector<double> w_ig_;
  std::vector<double> b_i_;
  // Top: logistic regression over tanh(z).
  std::vector<double> w_top_;
  double b_top_ = 0.0;
};

}  // namespace flb::fl

#endif  // FLB_FL_HETERO_NN_H_
