#include "src/fl/hetero_sbt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/transport.h"
#include "src/fl/metrics.h"
#include "src/fl/robust.h"
#include "src/fl/trainer_util.h"
#include "src/net/serializer.h"

namespace flb::fl {

HeteroSbtTrainer::HeteroSbtTrainer(VerticalPartition partition,
                                   FlSession session, TrainConfig config,
                                   SbtParams params)
    : partition_(std::move(partition)),
      session_(session),
      config_(config),
      params_(params) {
  FLB_CHECK(!partition_.shards.empty());
  FLB_CHECK(params_.num_bins >= 2 && params_.num_bins <= 255);
  margins_.assign(partition_.shards[0].x.rows(), 0.0);
  BuildBins();
}

void HeteroSbtTrainer::BuildBins() {
  const size_t parties = partition_.shards.size();
  bin_lo_.resize(parties);
  bin_step_.resize(parties);
  bin_index_.resize(parties);
  for (size_t p = 0; p < parties; ++p) {
    const DataMatrix& x = partition_.shards[p].x;
    const size_t cols = x.cols();
    std::vector<float> lo(cols, 0.0f), hi(cols, 0.0f);
    std::vector<bool> seen(cols, false);
    for (size_t r = 0; r < x.rows(); ++r) {
      for (size_t k = x.RowBegin(r); k < x.RowEnd(r); ++k) {
        const uint32_t c = x.EntryCol(k);
        const float v = x.EntryValue(k);
        if (!seen[c]) {
          lo[c] = hi[c] = v;
          seen[c] = true;
        } else {
          lo[c] = std::min(lo[c], v);
          hi[c] = std::max(hi[c], v);
        }
      }
    }
    bin_lo_[p].resize(cols);
    bin_step_[p].resize(cols);
    for (size_t c = 0; c < cols; ++c) {
      // Sparse zeros participate in the range.
      const float c_lo = seen[c] ? std::min(lo[c], 0.0f) : 0.0f;
      const float c_hi = seen[c] ? std::max(hi[c], 0.0f) : 0.0f;
      bin_lo_[p][c] = c_lo;
      const float span = c_hi - c_lo;
      bin_step_[p][c] = span > 0 ? span / params_.num_bins : 1.0f;
    }
    // Dense bin cache (rows x cols); zero entries land in the zero bin.
    bin_index_[p].assign(x.rows() * cols, 0);
    for (size_t c = 0; c < cols; ++c) {
      const int zero_bin = std::clamp(
          static_cast<int>((0.0f - bin_lo_[p][c]) / bin_step_[p][c]), 0,
          params_.num_bins - 1);
      if (zero_bin != 0) {
        for (size_t r = 0; r < x.rows(); ++r) {
          bin_index_[p][r * cols + c] = static_cast<uint8_t>(zero_bin);
        }
      }
    }
    for (size_t r = 0; r < x.rows(); ++r) {
      for (size_t k = x.RowBegin(r); k < x.RowEnd(r); ++k) {
        const uint32_t c = x.EntryCol(k);
        const int bin = std::clamp(
            static_cast<int>((x.EntryValue(k) - bin_lo_[p][c]) /
                             bin_step_[p][c]),
            0, params_.num_bins - 1);
        bin_index_[p][r * cols + c] = static_cast<uint8_t>(bin);
      }
    }
  }
}

int HeteroSbtTrainer::BinOf(int party, size_t row, uint32_t feature) const {
  return bin_index_[party][row * partition_.shards[party].x.cols() + feature];
}

HeteroSbtTrainer::Histogram HeteroSbtTrainer::PlainHistogram(
    int party, const std::vector<uint32_t>& instances,
    const std::vector<double>& g, const std::vector<double>& h) const {
  const size_t cols = partition_.shards[party].x.cols();
  Histogram hist;
  hist.g.assign(cols * params_.num_bins, 0.0);
  hist.h.assign(cols * params_.num_bins, 0.0);
  for (uint32_t i : instances) {
    for (size_t c = 0; c < cols; ++c) {
      const int bin = BinOf(party, i, static_cast<uint32_t>(c));
      hist.g[c * params_.num_bins + bin] += g[i];
      hist.h[c * params_.num_bins + bin] += h[i];
    }
  }
  ChargeModelCompute(session_.clock,
                     4.0 * instances.size() * cols);
  return hist;
}

Result<SbtTree> HeteroSbtTrainer::BuildTree(const std::vector<double>& g,
                                            const std::vector<double>& h,
                                            RobustCoordinator* robust) {
  const int parties = static_cast<int>(partition_.shards.size());
  core::HeService& he = *session_.he;
  net::Network& net = *session_.network;
  const size_t rows = margins_.size();
  const int bins = params_.num_bins;

  // Hosts admitted to this tree. A host lost mid-tree (crash, exhausted
  // retries, CRC loss) is excluded from the rest of the tree: its features
  // stop producing split candidates, which is the SBT analogue of partial
  // aggregation. A guest outage instead escalates out of BuildTree — the
  // tree is unusable without the label holder.
  std::vector<bool> live(parties, true);
  bool partial = false;
  for (int host = 1; host < parties; ++host) {
    live[host] = robust->AdmitParty(HostName(host));
    if (!live[host]) partial = true;
  }
  // Absorbs a recoverable per-host transport failure by dropping the host
  // for the rest of the tree; escalates everything else (including any
  // failure while the guest itself is down).
  auto drop_host = [&](int host, const Status& status) -> Status {
    if (!robust->active() || !RobustCoordinator::Recoverable(status)) {
      return status;
    }
    if (robust->CriticalDown()) return status;
    robust->RecordPartyOutcome(HostName(host), false, 0.0);
    robust->CountTransportDropout(HostName(host), status);
    live[host] = false;
    partial = true;
    return Status::OK();
  };

  // --- guest: encrypt per-instance gradients, broadcast to hosts ------------
  core::EncVec enc_g, enc_h;
  std::vector<bool> sent_g(parties, false), sent_h(parties, false);
  bool any_host = false;
  for (int host = 1; host < parties; ++host) any_host |= live[host];
  if (any_host) {
    FLB_ASSIGN_OR_RETURN(enc_g, he.EncryptFixedPoint(g));
    FLB_ASSIGN_OR_RETURN(enc_h, he.EncryptFixedPoint(h));
    for (int host = 1; host < parties; ++host) {
      if (!live[host]) continue;
      Status sg = core::SendEncVec(&net, he, kGuestName, HostName(host),
                                   "enc_g", enc_g);
      if (!sg.ok()) {
        FLB_RETURN_IF_ERROR(drop_host(host, sg));
        continue;
      }
      sent_g[host] = true;
      Status sh = core::SendEncVec(&net, he, kGuestName, HostName(host),
                                   "enc_h", enc_h);
      if (!sh.ok()) {
        FLB_RETURN_IF_ERROR(drop_host(host, sh));
        continue;
      }
      sent_h[host] = true;
    }
  }
  // Hosts receive once per tree; the delivered half of a broken pair is
  // drained anyway so no stale ciphertext lingers in an inbox.
  std::vector<core::EncVec> host_g(parties), host_h(parties);
  for (int host = 1; host < parties; ++host) {
    if (sent_g[host]) {
      Result<core::EncVec> rg =
          core::RecvEncVec(&net, HostName(host), "enc_g");
      if (!rg.ok()) {
        FLB_RETURN_IF_ERROR(drop_host(host, rg.status()));
      } else {
        host_g[host] = std::move(rg).value();
      }
    }
    if (sent_h[host]) {
      Result<core::EncVec> rh =
          core::RecvEncVec(&net, HostName(host), "enc_h");
      if (!rh.ok()) {
        FLB_RETURN_IF_ERROR(drop_host(host, rh.status()));
      } else {
        host_h[host] = std::move(rh).value();
      }
    }
    if (live[host] && sent_g[host] && sent_h[host]) {
      robust->RecordPartyOutcome(HostName(host), true, 0.0);
    }
  }

  SbtTree tree;
  tree.nodes.emplace_back();
  // Level-wise growth: (node id, instance set).
  std::vector<std::pair<int, std::vector<uint32_t>>> frontier;
  {
    std::vector<uint32_t> all(rows);
    for (size_t i = 0; i < rows; ++i) all[i] = static_cast<uint32_t>(i);
    frontier.emplace_back(0, std::move(all));
  }

  for (int depth = 0; depth < params_.max_depth && !frontier.empty();
       ++depth) {
    std::vector<std::pair<int, std::vector<uint32_t>>> next_frontier;
    for (auto& [node_id, instances] : frontier) {
      double g_total = 0, h_total = 0;
      for (uint32_t i : instances) {
        g_total += g[i];
        h_total += h[i];
      }

      // --- histograms: guest plaintext + hosts encrypted --------------------
      struct Candidate {
        double gain = -1;
        int party = -1;
        uint32_t feature = 0;
        int bin = 0;
      } best;
      auto scan = [&](int party, const std::vector<double>& hist_g,
                      const std::vector<double>& hist_h, size_t cols) {
        for (size_t c = 0; c < cols; ++c) {
          double gl = 0, hl = 0;
          for (int b = 0; b < bins - 1; ++b) {
            gl += hist_g[c * bins + b];
            hl += hist_h[c * bins + b];
            const double gr = g_total - gl, hr = h_total - hl;
            if (hl < params_.min_child_weight ||
                hr < params_.min_child_weight) {
              continue;
            }
            const double gain =
                0.5 * (gl * gl / (hl + params_.reg_lambda) +
                       gr * gr / (hr + params_.reg_lambda) -
                       g_total * g_total / (h_total + params_.reg_lambda));
            if (gain > best.gain) {
              best = {gain, party, static_cast<uint32_t>(c), b};
            }
          }
        }
        ChargeModelCompute(session_.clock, 8.0 * cols * bins);
      };

      Histogram guest_hist = PlainHistogram(0, instances, g, h);
      scan(0, guest_hist.g, guest_hist.h, partition_.shards[0].x.cols());

      for (int host = 1; host < parties; ++host) {
        if (!live[host]) continue;
        const size_t cols = partition_.shards[host].x.cols();
        // Host builds per-(feature, bin) index groups over the node's
        // instances and sums the encrypted gradients.
        std::vector<std::vector<uint32_t>> groups(cols * bins);
        for (uint32_t i : instances) {
          for (size_t c = 0; c < cols; ++c) {
            groups[c * bins + BinOf(host, i, static_cast<uint32_t>(c))]
                .push_back(i);
          }
        }
        ChargeModelCompute(session_.clock, 2.0 * instances.size() * cols);
        FLB_ASSIGN_OR_RETURN(core::EncVec hg,
                             he.SelectiveSums(host_g[host], groups));
        FLB_ASSIGN_OR_RETURN(core::EncVec hh,
                             he.SelectiveSums(host_h[host], groups));
        // BC: cipher-space compression before the wire.
        FLB_ASSIGN_OR_RETURN(hg, he.CompressForTransmission(hg));
        FLB_ASSIGN_OR_RETURN(hh, he.CompressForTransmission(hh));
        bool ok_g = false, ok_h = false;
        Status sg = core::SendEncVec(&net, he, HostName(host), kGuestName,
                                     "hist_g", hg);
        if (sg.ok()) {
          ok_g = true;
          Status sh = core::SendEncVec(&net, he, HostName(host), kGuestName,
                                       "hist_h", hh);
          if (sh.ok()) {
            ok_h = true;
          } else {
            FLB_RETURN_IF_ERROR(drop_host(host, sh));
          }
        } else {
          FLB_RETURN_IF_ERROR(drop_host(host, sg));
        }
        // Guest drains whatever arrived (a half-delivered pair must not
        // linger in the inbox and poison a later node), decrypts and scans
        // only complete pairs.
        core::EncVec rg, rh;
        bool have = false;
        if (ok_g) {
          Result<core::EncVec> got_g =
              core::RecvEncVec(&net, kGuestName, "hist_g");
          if (!got_g.ok()) {
            FLB_RETURN_IF_ERROR(drop_host(host, got_g.status()));
          } else if (ok_h) {
            Result<core::EncVec> got_h =
                core::RecvEncVec(&net, kGuestName, "hist_h");
            if (!got_h.ok()) {
              FLB_RETURN_IF_ERROR(drop_host(host, got_h.status()));
            } else {
              rg = std::move(got_g).value();
              rh = std::move(got_h).value();
              have = true;
            }
          }
        }
        if (!have) continue;
        FLB_ASSIGN_OR_RETURN(std::vector<double> dg, he.DecryptFixedPoint(rg));
        FLB_ASSIGN_OR_RETURN(std::vector<double> dh, he.DecryptFixedPoint(rh));
        scan(host, dg, dh, cols);
      }

      // --- split or leaf -----------------------------------------------------
      if (best.gain <= 0 || depth + 1 >= params_.max_depth ||
          instances.size() < 2) {
        tree.nodes[node_id].is_leaf = true;
        tree.nodes[node_id].leaf_weight =
            -g_total / (h_total + params_.reg_lambda);
        continue;
      }
      // Ask the owner for the left/right partition of this node's
      // instances. For guest splits this is local; for host splits the
      // guest sends instance ids and receives a boolean vector (the split
      // threshold never leaves the owner).
      std::vector<uint8_t> go_left(instances.size());
      bool split_ok = true;
      if (best.party != 0) {
        const std::string owner = HostName(best.party);
        net::Serializer req;
        req.PutU32(static_cast<uint32_t>(instances.size()));
        for (uint32_t i : instances) req.PutU32(i);
        Status qs = net.Send(kGuestName, owner, "split_req", req.TakeBytes());
        if (!qs.ok()) {
          FLB_RETURN_IF_ERROR(drop_host(best.party, qs));
          split_ok = false;
        }
        if (split_ok) {
          Result<net::Message> msg = net.Receive(owner, "split_req");
          if (!msg.ok()) {
            FLB_RETURN_IF_ERROR(drop_host(best.party, msg.status()));
            split_ok = false;
          }
          // The host uses its own copy of `instances` below.
        }
        if (split_ok) {
          net::Serializer resp;
          for (size_t k = 0; k < instances.size(); ++k) {
            const bool left =
                BinOf(best.party, instances[k], best.feature) <= best.bin;
            go_left[k] = left ? 1 : 0;
            resp.PutU32(go_left[k]);
          }
          Status rs =
              net.Send(owner, kGuestName, "split_resp", resp.TakeBytes());
          if (!rs.ok()) {
            FLB_RETURN_IF_ERROR(drop_host(best.party, rs));
            split_ok = false;
          }
        }
        if (split_ok) {
          Result<net::Message> resp_msg = net.Receive(kGuestName, "split_resp");
          if (!resp_msg.ok()) {
            FLB_RETURN_IF_ERROR(drop_host(best.party, resp_msg.status()));
            split_ok = false;
          }
        }
      } else {
        for (size_t k = 0; k < instances.size(); ++k) {
          go_left[k] = BinOf(0, instances[k], best.feature) <= best.bin ? 1 : 0;
        }
      }
      if (!split_ok) {
        // The split owner vanished mid-negotiation: close the node as a
        // leaf rather than guessing its partition.
        tree.nodes[node_id].is_leaf = true;
        tree.nodes[node_id].leaf_weight =
            -g_total / (h_total + params_.reg_lambda);
        continue;
      }

      std::vector<uint32_t> left_set, right_set;
      for (size_t k = 0; k < instances.size(); ++k) {
        (go_left[k] ? left_set : right_set).push_back(instances[k]);
      }
      if (left_set.empty() || right_set.empty()) {
        tree.nodes[node_id].is_leaf = true;
        tree.nodes[node_id].leaf_weight =
            -g_total / (h_total + params_.reg_lambda);
        continue;
      }

      // Note: emplace_back may reallocate, so never hold a reference to
      // tree.nodes[node_id] across it.
      const int left_id = static_cast<int>(tree.nodes.size());
      tree.nodes.emplace_back();
      const int right_id = static_cast<int>(tree.nodes.size());
      tree.nodes.emplace_back();
      SbtNode& node = tree.nodes[node_id];
      node.is_leaf = false;
      node.split_party = best.party;
      node.split_feature = best.feature;
      node.split_bin = best.bin;
      node.left = left_id;
      node.right = right_id;
      next_frontier.emplace_back(tree.nodes[node_id].left,
                                 std::move(left_set));
      next_frontier.emplace_back(tree.nodes[node_id].right,
                                 std::move(right_set));
    }
    frontier = std::move(next_frontier);
  }
  // Any frontier nodes left when depth ran out become leaves.
  for (auto& [node_id, instances] : frontier) {
    double g_total = 0, h_total = 0;
    for (uint32_t i : instances) {
      g_total += g[i];
      h_total += h[i];
    }
    tree.nodes[node_id].is_leaf = true;
    tree.nodes[node_id].leaf_weight =
        -g_total / (h_total + params_.reg_lambda);
  }
  if (partial) robust->CountPartialRound();
  return tree;
}

Result<TrainResult> HeteroSbtTrainer::Train() {
  const size_t rows = margins_.size();
  net::Network& net = *session_.network;
  RobustCoordinator robust(session_, config_, "hetero_sbt");
  // Only the guest (labels, margins, decryption requests) is
  // irreplaceable; hosts degrade to excluded feature shards.
  robust.set_critical_parties({kGuestName});
  robust.Checkpoint(-1, margins_);

  TrainResult result;
  double prev_loss = std::numeric_limits<double>::infinity();
  int round = 0;
  while (round < config_.max_epochs) {
    const ClockSnapshot before = ClockSnapshot::Take(session_.clock, &net);
    bool round_aborted = false;
    if (robust.active() && robust.CriticalDown()) {
      round_aborted = true;
    } else {
      FLB_RETURN_IF_ERROR(robust.CheckDeadline("HeteroSbtTrainer::Train"));

      // Gradients from current margins.
      std::vector<double> g(rows), h(rows);
      for (size_t i = 0; i < rows; ++i) {
        const double p = Sigmoid(margins_[i]);
        g[i] = p - partition_.labels[i];
        h[i] = std::max(p * (1.0 - p), 1e-6);
      }
      ChargeModelCompute(session_.clock, 6.0 * rows);

      Result<SbtTree> tree = BuildTree(g, h, &robust);
      if (!tree.ok()) {
        if (robust.active() &&
            RobustCoordinator::Recoverable(tree.status())) {
          // The guest died mid-tree: discard the partial tree and roll the
          // round back to the margin checkpoint.
          robust.CountTransportDropout(kGuestName, tree.status());
          round_aborted = true;
        } else {
          return tree.status();
        }
      } else {
        // Advance margins: route every instance down the tree.
        for (size_t i = 0; i < rows; ++i) {
          int node = 0;
          while (!tree.value().nodes[node].is_leaf) {
            const SbtNode& n = tree.value().nodes[node];
            node = BinOf(n.split_party, i, n.split_feature) <= n.split_bin
                       ? n.left
                       : n.right;
          }
          margins_[i] +=
              config_.learning_rate * tree.value().nodes[node].leaf_weight;
        }
        ChargeModelCompute(session_.clock, 4.0 * rows * params_.max_depth);
        trees_.push_back(std::move(tree).value());
      }
    }

    if (round_aborted) {
      // Guest restart: wait out the downtime, restore the margin
      // checkpoint, drop the trees built after it, re-run from there.
      FLB_ASSIGN_OR_RETURN(const int resume_round, robust.Resume(&margins_));
      if (static_cast<size_t>(resume_round) < result.epochs.size()) {
        result.epochs.resize(resume_round);
      }
      if (static_cast<size_t>(resume_round) < trees_.size()) {
        trees_.resize(resume_round);
      }
      round = resume_round;
      prev_loss = result.epochs.empty()
                      ? std::numeric_limits<double>::infinity()
                      : result.epochs.back().loss;
      continue;
    }

    EpochRecord record;
    record.epoch = round;
    {
      std::vector<double> probs(rows);
      for (size_t i = 0; i < rows; ++i) probs[i] = Sigmoid(margins_[i]);
      record.loss = MeanLogLoss(probs, partition_.labels);
      record.accuracy = Accuracy(probs, partition_.labels);
    }
    const ClockSnapshot after = ClockSnapshot::Take(session_.clock, &net);
    FillEpochTiming(before, after, &record);
    TraceEpoch("hetero_sbt", record, session_, config_.max_epochs);
    result.epochs.push_back(record);
    robust.Checkpoint(round, margins_);
    if (std::fabs(prev_loss - record.loss) < config_.tolerance) {
      result.converged = true;
      break;
    }
    prev_loss = record.loss;
    round += 1;
  }
  if (!result.epochs.empty()) {
    result.final_loss = result.epochs.back().loss;
    result.final_accuracy = result.epochs.back().accuracy;
  }
  result.robustness = robust.counters();
  return result;
}

}  // namespace flb::fl
