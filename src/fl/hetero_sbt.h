// Heterogeneous SecureBoost (Cheng et al., as shipped in FATE and
// accelerated by the paper).
//
// Vertical gradient-boosted trees over a guest (labels + feature shard) and
// hosts (feature shards). Per boosting round (= one epoch here):
//
//   1. guest computes first/second-order gradients g_i = p_i - y_i,
//      h_i = p_i (1 - p_i) and sends per-instance E(g), E(h) to every host
//      (fixed-point ciphertexts — hosts must sum arbitrary subsets);
//   2. growing the tree level by level, each host answers every node with
//      encrypted histograms: for each of its features and bins,
//      E(G_fb) = sum of E(g_i) over the node's instances falling in that
//      bin (pure homomorphic additions), likewise E(H_fb); under BC the
//      histogram ciphertext vectors are cipher-space compressed
//      (SecureBoost+-style shift-and-add) before transmission;
//   3. the guest decrypts the histograms, adds its own plaintext
//      histograms, scans cumulative sums for the best XGBoost gain
//      split, and asks the winning feature's owner for the left/right
//      instance partition (a boolean vector — thresholds stay private);
//   4. leaves get weight -G/(H + lambda); predictions advance by
//      lr * leaf weight.
//
// Binning is equal-width per feature (FATE's quantile sketch is replaced by
// a simpler deterministic binner; the HE-visible work per bin is the same).

#ifndef FLB_FL_HETERO_SBT_H_
#define FLB_FL_HETERO_SBT_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/fl/dataset.h"
#include "src/fl/fl_types.h"
#include "src/fl/partition.h"

namespace flb::fl {

class RobustCoordinator;

struct SbtParams {
  int max_depth = 3;
  int num_bins = 16;
  double reg_lambda = 1.0;
  double min_child_weight = 1e-3;  // minimum sum of h in a child
};

struct SbtNode {
  bool is_leaf = true;
  int split_party = -1;     // -1 until split; 0 = guest
  uint32_t split_feature = 0;  // feature index within the owner's shard
  int split_bin = 0;           // go left when bin(x) <= split_bin
  int left = -1, right = -1;   // child node ids
  double leaf_weight = 0.0;
};

struct SbtTree {
  std::vector<SbtNode> nodes;  // node 0 is the root
};

class HeteroSbtTrainer {
 public:
  HeteroSbtTrainer(VerticalPartition partition, FlSession session,
                   TrainConfig config, SbtParams params = {});

  // One boosting round per "epoch" (config.max_epochs trees).
  Result<TrainResult> Train();

  const std::vector<SbtTree>& trees() const { return trees_; }
  // Raw margin scores for the training instances.
  const std::vector<double>& margins() const { return margins_; }

 private:
  struct Histogram {
    std::vector<double> g;  // per (feature, bin), feature-major
    std::vector<double> h;
  };

  // Precomputes per-feature bin edges and per-(row, feature) bin indices
  // for one shard.
  void BuildBins();
  int BinOf(int party, size_t row, uint32_t feature) const;

  // Plaintext histogram over `instances` for one party's shard.
  Histogram PlainHistogram(int party, const std::vector<uint32_t>& instances,
                           const std::vector<double>& g,
                           const std::vector<double>& h) const;

  Result<TrainResult> TrainImpl();
  // Builds one boosting tree. `robust` (never null) supplies the
  // degradation policy: hosts that are down, quarantined, or whose
  // histogram exchange dies mid-tree are excluded from the rest of the
  // tree (their features simply yield no split candidates); a guest
  // outage surfaces as a recoverable status for the round-level
  // checkpoint-resume path in Train().
  Result<SbtTree> BuildTree(const std::vector<double>& g,
                            const std::vector<double>& h,
                            RobustCoordinator* robust);

  VerticalPartition partition_;
  FlSession session_;
  TrainConfig config_;
  SbtParams params_;

  // bins_[party][feature * (num_bins+1) .. ]: bin edges; bin index is the
  // largest edge <= value.
  std::vector<std::vector<float>> bin_lo_;   // per party, per feature
  std::vector<std::vector<float>> bin_step_; // per party, per feature
  // Dense bin index cache: per party, row-major rows x features.
  std::vector<std::vector<uint8_t>> bin_index_;

  std::vector<SbtTree> trees_;
  std::vector<double> margins_;  // additive scores (pre-sigmoid)
};

}  // namespace flb::fl

#endif  // FLB_FL_HETERO_SBT_H_
