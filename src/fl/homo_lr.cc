#include "src/fl/homo_lr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/transport.h"
#include "src/fl/metrics.h"
#include "src/fl/trainer_util.h"

namespace flb::fl {

namespace {
constexpr const char* kServer = kServerName;
}  // namespace

HomoLrTrainer::HomoLrTrainer(std::vector<Dataset> shards, FlSession session,
                             TrainConfig config)
    : shards_(std::move(shards)),
      session_(session),
      config_(config) {
  FLB_CHECK(!shards_.empty());
  weights_.assign(shards_[0].cols() + 1, 0.0);
}

std::vector<double> HomoLrTrainer::LocalGradient(const Dataset& shard,
                                                 size_t begin,
                                                 size_t end) const {
  const size_t dim = weights_.size();
  std::vector<double> grad(dim, 0.0);
  double flops = 0;
  for (size_t r = begin; r < end; ++r) {
    const double z = shard.x.Dot(r, weights_) + weights_.back();
    const double residual = Sigmoid(z) - shard.y[r];
    shard.x.AddScaledRowTo(r, residual, &grad);
    grad[dim - 1] += residual;
    flops += 4.0 * shard.x.RowNnz(r) + 10.0;
  }
  const double inv = end > begin ? 1.0 / static_cast<double>(end - begin) : 0;
  for (size_t j = 0; j < dim; ++j) {
    grad[j] = grad[j] * inv + config_.l2 * weights_[j];
  }
  flops += 3.0 * dim;
  ChargeModelCompute(session_.clock, flops);
  return grad;
}

double HomoLrTrainer::GlobalLoss(double* accuracy) const {
  double loss = 0.0;
  size_t total = 0, correct = 0;
  double flops = 0;
  for (const Dataset& shard : shards_) {
    for (size_t r = 0; r < shard.rows(); ++r) {
      const double p =
          Sigmoid(shard.x.Dot(r, weights_) + weights_.back());
      loss += LogLoss(p, shard.y[r]);
      correct += ((p >= 0.5) == (shard.y[r] >= 0.5f)) ? 1 : 0;
      flops += 2.0 * shard.x.RowNnz(r) + 20.0;
    }
    total += shard.rows();
  }
  ChargeModelCompute(session_.clock, flops);
  if (accuracy != nullptr) {
    *accuracy = static_cast<double>(correct) / total;
  }
  return loss / total;
}

Result<TrainResult> HomoLrTrainer::Train() {
  const int p = static_cast<int>(shards_.size());
  core::HeService& he = *session_.he;
  net::Network& net = *session_.network;
  auto optimizer = MakeOptimizer(config_.optimizer, config_.learning_rate);

  size_t min_rows = shards_[0].rows();
  for (const auto& s : shards_) min_rows = std::min(min_rows, s.rows());
  const size_t batches = std::max<size_t>(
      1, (min_rows + config_.batch_size - 1) / config_.batch_size);

  TrainResult result;
  double prev_loss = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    const ClockSnapshot before = ClockSnapshot::Take(session_.clock, &net);
    for (size_t b = 0; b < batches; ++b) {
      // --- clients: local gradient -> encrypt -> upload --------------------
      for (int party = 0; party < p; ++party) {
        const Dataset& shard = shards_[party];
        const size_t begin = std::min<size_t>(b * config_.batch_size,
                                              shard.rows());
        const size_t end = std::min<size_t>(begin + config_.batch_size,
                                            shard.rows());
        std::vector<double> grad =
            begin < end ? LocalGradient(shard, begin, end)
                        : std::vector<double>(weights_.size(), 0.0);
        FLB_ASSIGN_OR_RETURN(core::EncVec enc, he.EncryptValues(grad));
        FLB_RETURN_IF_ERROR(core::SendEncVec(&net, he, PartyName(party),
                                             kServer, "grad", enc));
      }
      // --- server: homomorphic aggregation ---------------------------------
      FLB_ASSIGN_OR_RETURN(core::EncVec agg,
                           core::RecvEncVec(&net, kServer, "grad"));
      for (int party = 1; party < p; ++party) {
        FLB_ASSIGN_OR_RETURN(core::EncVec next,
                             core::RecvEncVec(&net, kServer, "grad"));
        FLB_ASSIGN_OR_RETURN(agg, he.AddCipher(agg, next));
      }
      for (int party = 0; party < p; ++party) {
        FLB_RETURN_IF_ERROR(core::SendEncVec(&net, he, kServer,
                                             PartyName(party), "agg", agg));
      }
      // --- clients: decrypt, average, update --------------------------------
      // All parties perform the identical decrypt+update; the HE/compute
      // cost is charged once per party.
      std::vector<double> update;
      for (int party = 0; party < p; ++party) {
        FLB_ASSIGN_OR_RETURN(core::EncVec received,
                             core::RecvEncVec(&net, PartyName(party), "agg"));
        FLB_ASSIGN_OR_RETURN(update, he.DecryptValues(received));
      }
      for (double& g : update) g /= p;
      ChargeModelCompute(session_.clock, 2.0 * update.size() * p);
      FLB_RETURN_IF_ERROR(optimizer->Step(&weights_, update));
    }

    // --- epoch bookkeeping ---------------------------------------------------
    EpochRecord record;
    record.epoch = epoch;
    record.loss = GlobalLoss(&record.accuracy);
    const ClockSnapshot after = ClockSnapshot::Take(session_.clock, &net);
    FillEpochTiming(before, after, &record);
    TraceEpoch("homo_lr", record);
    result.epochs.push_back(record);

    if (std::fabs(prev_loss - record.loss) < config_.tolerance) {
      result.converged = true;
      break;
    }
    prev_loss = record.loss;
  }
  if (!result.epochs.empty()) {
    result.final_loss = result.epochs.back().loss;
    result.final_accuracy = result.epochs.back().accuracy;
  }
  return result;
}

}  // namespace flb::fl
