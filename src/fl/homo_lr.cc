#include "src/fl/homo_lr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/transport.h"
#include "src/fl/metrics.h"
#include "src/fl/robust.h"
#include "src/fl/trainer_util.h"

namespace flb::fl {

namespace {
constexpr const char* kServer = kServerName;
}  // namespace

HomoLrTrainer::HomoLrTrainer(std::vector<Dataset> shards, FlSession session,
                             TrainConfig config)
    : shards_(std::move(shards)),
      session_(session),
      config_(config) {
  FLB_CHECK(!shards_.empty());
  weights_.assign(shards_[0].cols() + 1, 0.0);
}

std::vector<double> HomoLrTrainer::LocalGradient(const Dataset& shard,
                                                 size_t begin,
                                                 size_t end) const {
  const size_t dim = weights_.size();
  std::vector<double> grad(dim, 0.0);
  double flops = 0;
  for (size_t r = begin; r < end; ++r) {
    const double z = shard.x.Dot(r, weights_) + weights_.back();
    const double residual = Sigmoid(z) - shard.y[r];
    shard.x.AddScaledRowTo(r, residual, &grad);
    grad[dim - 1] += residual;
    flops += 4.0 * shard.x.RowNnz(r) + 10.0;
  }
  const double inv = end > begin ? 1.0 / static_cast<double>(end - begin) : 0;
  for (size_t j = 0; j < dim; ++j) {
    grad[j] = grad[j] * inv + config_.l2 * weights_[j];
  }
  flops += 3.0 * dim;
  ChargeModelCompute(session_.clock, flops);
  return grad;
}

double HomoLrTrainer::GlobalLoss(double* accuracy) const {
  double loss = 0.0;
  size_t total = 0, correct = 0;
  double flops = 0;
  for (const Dataset& shard : shards_) {
    for (size_t r = 0; r < shard.rows(); ++r) {
      const double p =
          Sigmoid(shard.x.Dot(r, weights_) + weights_.back());
      loss += LogLoss(p, shard.y[r]);
      correct += ((p >= 0.5) == (shard.y[r] >= 0.5f)) ? 1 : 0;
      flops += 2.0 * shard.x.RowNnz(r) + 20.0;
    }
    total += shard.rows();
  }
  ChargeModelCompute(session_.clock, flops);
  if (accuracy != nullptr) {
    *accuracy = static_cast<double>(correct) / total;
  }
  return loss / total;
}

Result<TrainResult> HomoLrTrainer::Train() {
  const int p = static_cast<int>(shards_.size());
  core::HeService& he = *session_.he;
  net::Network& net = *session_.network;
  SimClock* clock = session_.clock;
  auto optimizer = MakeOptimizer(config_.optimizer, config_.learning_rate);
  RobustCoordinator robust(session_, config_, "homo_lr");
  robust.Checkpoint(-1, weights_);

  size_t min_rows = shards_[0].rows();
  for (const auto& s : shards_) min_rows = std::min(min_rows, s.rows());
  const size_t batches = std::max<size_t>(
      1, (min_rows + config_.batch_size - 1) / config_.batch_size);

  TrainResult result;
  double prev_loss = std::numeric_limits<double>::infinity();
  int epoch = 0;
  while (epoch < config_.max_epochs) {
    const ClockSnapshot before = ClockSnapshot::Take(clock, &net);
    bool epoch_aborted = false;
    for (size_t b = 0; b < batches && !epoch_aborted; ++b) {
      // Server crash detected at the round boundary aborts the epoch; the
      // resume path below restores the last checkpoint.
      if (robust.active() && robust.ServerDown()) {
        epoch_aborted = true;
        break;
      }
      FLB_RETURN_IF_ERROR(robust.CheckDeadline("HomoLrTrainer::Train"));
      // --- clients: local gradient -> encrypt -> upload --------------------
      size_t participants = 0;
      for (int party = 0; party < p; ++party) {
        const std::string name = PartyName(party);
        if (!robust.AdmitParty(name)) continue;
        const Dataset& shard = shards_[party];
        const size_t begin = std::min<size_t>(b * config_.batch_size,
                                              shard.rows());
        const size_t end = std::min<size_t>(begin + config_.batch_size,
                                            shard.rows());
        const double t0 = clock != nullptr ? clock->Now() : 0.0;
        std::vector<double> grad =
            begin < end ? LocalGradient(shard, begin, end)
                        : std::vector<double>(weights_.size(), 0.0);
        FLB_ASSIGN_OR_RETURN(core::EncVec enc, he.EncryptValues(grad));
        double response = 0.0;
        if (robust.active()) {
          const double compute = clock != nullptr ? clock->Now() - t0 : 0.0;
          const double send =
              net.TransferSeconds(he.WireBytes(enc), enc.data.size());
          response = compute + send;
          if (!robust.AdmitUpload(name, compute, send)) {
            robust.RecordPartyOutcome(name, false, response);
            continue;
          }
        }
        Status sent = core::SendEncVec(&net, he, name, kServer, "grad", enc);
        if (!sent.ok()) {
          if (robust.active() && RobustCoordinator::Recoverable(sent)) {
            robust.RecordPartyOutcome(name, false, response);
            robust.CountTransportDropout(name, sent);
            continue;
          }
          return sent;
        }
        robust.RecordPartyOutcome(name, true, response);
        participants += 1;
      }
      // --- server: homomorphic aggregation ---------------------------------
      const size_t expected =
          robust.active() ? participants : static_cast<size_t>(p);
      if (expected == 0) {
        robust.CountSkippedRound();
        continue;
      }
      core::EncVec agg;
      size_t received = 0;
      for (size_t i = 0; i < expected && !epoch_aborted; ++i) {
        Result<core::EncVec> next = core::RecvEncVec(&net, kServer, "grad");
        if (!next.ok()) {
          if (robust.active() &&
              RobustCoordinator::Recoverable(next.status())) {
            if (robust.ServerDown()) {
              epoch_aborted = true;
              break;
            }
            robust.CountTransportDropout(kServer, next.status());
            continue;
          }
          return next.status();
        }
        if (received == 0) {
          agg = std::move(next).value();
        } else {
          FLB_ASSIGN_OR_RETURN(agg, he.AddCipher(agg, next.value()));
        }
        received += 1;
      }
      if (epoch_aborted) break;
      if (received == 0) {
        robust.CountSkippedRound();
        continue;
      }
      if (received < static_cast<size_t>(p)) robust.CountPartialRound();
      for (int party = 0; party < p; ++party) {
        const std::string name = PartyName(party);
        if (robust.active() && !robust.IsUp(name)) continue;
        Status sent = core::SendEncVec(&net, he, kServer, name, "agg", agg);
        if (!sent.ok()) {
          if (robust.active() && RobustCoordinator::Recoverable(sent)) {
            robust.CountTransportDropout(name, sent);
            continue;
          }
          return sent;
        }
      }
      // --- clients: decrypt, average, update --------------------------------
      // All live parties perform the identical decrypt+update; the
      // HE/compute cost is charged once per party.
      std::vector<double> update;
      size_t decrypted = 0;
      for (int party = 0; party < p; ++party) {
        const std::string name = PartyName(party);
        if (robust.active() && !robust.IsUp(name)) continue;
        Result<core::EncVec> got = core::RecvEncVec(&net, name, "agg");
        if (!got.ok()) {
          if (robust.active() && RobustCoordinator::Recoverable(got.status())) {
            robust.CountTransportDropout(name, got.status());
            continue;
          }
          return got.status();
        }
        FLB_ASSIGN_OR_RETURN(update, he.DecryptValues(got.value()));
        decrypted += 1;
      }
      if (decrypted == 0) continue;  // no live party got the aggregate
      // FedAvg renormalization: the aggregate carries `received` gradients
      // (== p on the healthy path).
      for (double& g : update) g /= static_cast<double>(received);
      ChargeModelCompute(clock, 2.0 * update.size() * decrypted);
      FLB_RETURN_IF_ERROR(optimizer->Step(&weights_, update));
    }

    if (epoch_aborted) {
      // Server restart: wait out the downtime, restore the last epoch
      // checkpoint, and re-run from there. The restarted server also lost
      // the optimizer moments (they are not checkpointed).
      FLB_ASSIGN_OR_RETURN(const int resume_epoch, robust.Resume(&weights_));
      if (static_cast<size_t>(resume_epoch) < result.epochs.size()) {
        result.epochs.resize(resume_epoch);
      }
      epoch = resume_epoch;
      optimizer = MakeOptimizer(config_.optimizer, config_.learning_rate);
      prev_loss = result.epochs.empty()
                      ? std::numeric_limits<double>::infinity()
                      : result.epochs.back().loss;
      continue;
    }

    // --- epoch bookkeeping ---------------------------------------------------
    EpochRecord record;
    record.epoch = epoch;
    record.loss = GlobalLoss(&record.accuracy);
    const ClockSnapshot after = ClockSnapshot::Take(clock, &net);
    FillEpochTiming(before, after, &record);
    TraceEpoch("homo_lr", record, session_, config_.max_epochs);
    result.epochs.push_back(record);
    robust.Checkpoint(epoch, weights_);

    if (std::fabs(prev_loss - record.loss) < config_.tolerance) {
      result.converged = true;
      break;
    }
    prev_loss = record.loss;
    epoch += 1;
  }
  if (!result.epochs.empty()) {
    result.final_loss = result.epochs.back().loss;
    result.final_accuracy = result.epochs.back().accuracy;
  }
  result.robustness = robust.counters();
  return result;
}

}  // namespace flb::fl
