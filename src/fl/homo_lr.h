// Homogeneous (horizontal) logistic regression — the Fig. 2 SGD template.
//
// Every party holds a row shard with the full feature space; the shared
// keypair belongs to the clients, the aggregation server only ever sees
// ciphertexts. Per mini-batch:
//
//   1. each party computes its local gradient (plaintext math),
//   2. quantizes + (under BC) packs + encrypts it, uploads to the server,
//   3. the server folds the p ciphertext vectors with homomorphic adds and
//      broadcasts the aggregate,
//   4. each party decrypts, averages, and applies the same optimizer step,
//      keeping all local models identical.
//
// Loss/accuracy are evaluated over the union of shards each epoch.

#ifndef FLB_FL_HOMO_LR_H_
#define FLB_FL_HOMO_LR_H_

#include <vector>

#include "src/common/result.h"
#include "src/fl/dataset.h"
#include "src/fl/fl_types.h"

namespace flb::fl {

class HomoLrTrainer {
 public:
  // `shards` from HorizontalSplit; all must share the feature count.
  HomoLrTrainer(std::vector<Dataset> shards, FlSession session,
                TrainConfig config);

  Result<TrainResult> Train();

  // Model after training: weights (cols) + intercept appended.
  const std::vector<double>& weights() const { return weights_; }

 private:
  // Gradient of one party's batch rows [begin, end) at the current weights.
  std::vector<double> LocalGradient(const Dataset& shard, size_t begin,
                                    size_t end) const;
  double GlobalLoss(double* accuracy) const;

  std::vector<Dataset> shards_;
  FlSession session_;
  TrainConfig config_;
  std::vector<double> weights_;  // cols + 1 (intercept last)
};

}  // namespace flb::fl

#endif  // FLB_FL_HOMO_LR_H_
