#include "src/fl/homo_nn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/transport.h"
#include "src/fl/metrics.h"
#include "src/fl/robust.h"
#include "src/fl/trainer_util.h"

namespace flb::fl {

namespace {

// Parameter-vector layout helpers for the 1-hidden-layer MLP.
struct Layout {
  size_t d, h;
  size_t W1(size_t j, size_t c) const { return j * d + c; }
  size_t b1(size_t j) const { return h * d + j; }
  size_t w2(size_t j) const { return h * d + h + j; }
  size_t b2() const { return h * d + 2 * h; }
  size_t total() const { return h * d + 2 * h + 1; }
};

}  // namespace

HomoNnTrainer::HomoNnTrainer(std::vector<Dataset> shards, FlSession session,
                             TrainConfig config, HomoNnParams params)
    : shards_(std::move(shards)),
      session_(session),
      config_(config),
      nn_(params) {
  FLB_CHECK(!shards_.empty() && nn_.hidden_dim >= 1);
  const Layout layout{shards_[0].cols(), static_cast<size_t>(nn_.hidden_dim)};
  Rng rng(nn_.init_seed);
  params_vec_.resize(layout.total());
  const double scale = 1.0 / std::sqrt(static_cast<double>(layout.d));
  for (size_t j = 0; j < layout.h * layout.d; ++j) {
    params_vec_[j] = rng.NextGaussian() * scale;
  }
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(layout.h));
  for (size_t j = 0; j < layout.h; ++j) {
    params_vec_[layout.b1(j)] = 0.0;
    params_vec_[layout.w2(j)] = rng.NextGaussian() * scale2;
  }
  params_vec_[layout.b2()] = 0.0;
}

std::vector<double> HomoNnTrainer::Predict(const Dataset& data) const {
  const Layout layout{data.cols(), static_cast<size_t>(nn_.hidden_dim)};
  const std::vector<double>& p = params_vec_;
  std::vector<double> probs(data.rows());
  std::vector<double> hidden(layout.h);
  for (size_t r = 0; r < data.rows(); ++r) {
    for (size_t j = 0; j < layout.h; ++j) {
      double acc = p[layout.b1(j)];
      for (size_t e = data.x.RowBegin(r); e < data.x.RowEnd(r); ++e) {
        acc += p[layout.W1(j, data.x.EntryCol(e))] *
               static_cast<double>(data.x.EntryValue(e));
      }
      hidden[j] = std::tanh(acc);
    }
    double score = p[layout.b2()];
    for (size_t j = 0; j < layout.h; ++j) {
      score += p[layout.w2(j)] * hidden[j];
    }
    probs[r] = Sigmoid(score);
  }
  return probs;
}

std::vector<double> HomoNnTrainer::LocalDelta(
    const Dataset& shard, size_t begin, size_t end,
    const std::vector<double>& start) const {
  const Layout layout{shard.cols(), static_cast<size_t>(nn_.hidden_dim)};
  std::vector<double> p = start;
  const size_t m = end - begin;
  std::vector<double> hidden(layout.h), pre(layout.h);
  double flops = 0;
  for (int step = 0; step < nn_.local_steps; ++step) {
    std::vector<double> grad(p.size(), 0.0);
    for (size_t r = begin; r < end; ++r) {
      // Forward.
      for (size_t j = 0; j < layout.h; ++j) {
        double acc = p[layout.b1(j)];
        for (size_t e = shard.x.RowBegin(r); e < shard.x.RowEnd(r); ++e) {
          acc += p[layout.W1(j, shard.x.EntryCol(e))] *
                 static_cast<double>(shard.x.EntryValue(e));
        }
        pre[j] = acc;
        hidden[j] = std::tanh(acc);
      }
      double score = p[layout.b2()];
      for (size_t j = 0; j < layout.h; ++j) {
        score += p[layout.w2(j)] * hidden[j];
      }
      // Backward (logistic loss).
      const double err = Sigmoid(score) - shard.y[r];
      grad[layout.b2()] += err;
      for (size_t j = 0; j < layout.h; ++j) {
        grad[layout.w2(j)] += err * hidden[j];
        const double dh = err * p[layout.w2(j)] *
                          (1.0 - hidden[j] * hidden[j]);
        grad[layout.b1(j)] += dh;
        for (size_t e = shard.x.RowBegin(r); e < shard.x.RowEnd(r); ++e) {
          grad[layout.W1(j, shard.x.EntryCol(e))] +=
              dh * static_cast<double>(shard.x.EntryValue(e));
        }
      }
      flops += 6.0 * layout.h * (shard.x.RowNnz(r) + 2);
    }
    const double lr = config_.learning_rate / static_cast<double>(m);
    for (size_t j = 0; j < p.size(); ++j) {
      p[j] -= lr * (grad[j] + config_.l2 * p[j] * m);
    }
    flops += 3.0 * p.size();
  }
  ChargeModelCompute(session_.clock, flops);
  std::vector<double> delta(p.size());
  for (size_t j = 0; j < p.size(); ++j) delta[j] = p[j] - start[j];
  return delta;
}

double HomoNnTrainer::ForwardLoss(const Dataset& data,
                                  const std::vector<double>& /*p*/,
                                  double* accuracy) const {
  std::vector<double> probs = Predict(data);
  ChargeModelCompute(session_.clock,
                     2.0 * data.x.nnz() * nn_.hidden_dim);
  if (accuracy != nullptr) *accuracy = Accuracy(probs, data.y);
  return MeanLogLoss(probs, data.y);
}

Result<TrainResult> HomoNnTrainer::Train() {
  const int parties = static_cast<int>(shards_.size());
  core::HeService& he = *session_.he;
  net::Network& net = *session_.network;
  SimClock* clock = session_.clock;
  RobustCoordinator robust(session_, config_, "homo_nn");
  robust.Checkpoint(-1, params_vec_);

  size_t min_rows = shards_[0].rows();
  for (const auto& s : shards_) min_rows = std::min(min_rows, s.rows());
  const size_t batches = std::max<size_t>(
      1, (min_rows + config_.batch_size - 1) / config_.batch_size);

  TrainResult result;
  double prev_loss = std::numeric_limits<double>::infinity();
  int epoch = 0;
  while (epoch < config_.max_epochs) {
    const ClockSnapshot before = ClockSnapshot::Take(clock, &net);
    bool epoch_aborted = false;
    for (size_t b = 0; b < batches && !epoch_aborted; ++b) {
      if (robust.active() && robust.ServerDown()) {
        epoch_aborted = true;
        break;
      }
      FLB_RETURN_IF_ERROR(robust.CheckDeadline("HomoNnTrainer::Train"));
      // --- clients: local steps -> encrypted deltas -> server ---------------
      size_t participants = 0;
      for (int party = 0; party < parties; ++party) {
        const std::string name = PartyName(party);
        if (!robust.AdmitParty(name)) continue;
        const Dataset& shard = shards_[party];
        const size_t begin =
            std::min<size_t>(b * config_.batch_size, shard.rows());
        const size_t end =
            std::min<size_t>(begin + config_.batch_size, shard.rows());
        const double t0 = clock != nullptr ? clock->Now() : 0.0;
        std::vector<double> delta =
            begin < end ? LocalDelta(shard, begin, end, params_vec_)
                        : std::vector<double>(params_vec_.size(), 0.0);
        FLB_ASSIGN_OR_RETURN(core::EncVec enc, he.EncryptValues(delta));
        double response = 0.0;
        if (robust.active()) {
          const double compute = clock != nullptr ? clock->Now() - t0 : 0.0;
          const double send =
              net.TransferSeconds(he.WireBytes(enc), enc.data.size());
          response = compute + send;
          if (!robust.AdmitUpload(name, compute, send)) {
            robust.RecordPartyOutcome(name, false, response);
            continue;
          }
        }
        Status sent =
            core::SendEncVec(&net, he, name, kServerName, "delta", enc);
        if (!sent.ok()) {
          if (robust.active() && RobustCoordinator::Recoverable(sent)) {
            robust.RecordPartyOutcome(name, false, response);
            robust.CountTransportDropout(name, sent);
            continue;
          }
          return sent;
        }
        robust.RecordPartyOutcome(name, true, response);
        participants += 1;
      }
      // --- server: homomorphic FedAvg ---------------------------------------
      const size_t expected =
          robust.active() ? participants : static_cast<size_t>(parties);
      if (expected == 0) {
        robust.CountSkippedRound();
        continue;
      }
      core::EncVec agg;
      size_t received = 0;
      for (size_t i = 0; i < expected && !epoch_aborted; ++i) {
        Result<core::EncVec> next = core::RecvEncVec(&net, kServerName,
                                                     "delta");
        if (!next.ok()) {
          if (robust.active() &&
              RobustCoordinator::Recoverable(next.status())) {
            if (robust.ServerDown()) {
              epoch_aborted = true;
              break;
            }
            robust.CountTransportDropout(kServerName, next.status());
            continue;
          }
          return next.status();
        }
        if (received == 0) {
          agg = std::move(next).value();
        } else {
          FLB_ASSIGN_OR_RETURN(agg, he.AddCipher(agg, next.value()));
        }
        received += 1;
      }
      if (epoch_aborted) break;
      if (received == 0) {
        robust.CountSkippedRound();
        continue;
      }
      if (received < static_cast<size_t>(parties)) robust.CountPartialRound();
      for (int party = 0; party < parties; ++party) {
        const std::string name = PartyName(party);
        if (robust.active() && !robust.IsUp(name)) continue;
        Status sent = core::SendEncVec(&net, he, kServerName, name, "agg",
                                       agg);
        if (!sent.ok()) {
          if (robust.active() && RobustCoordinator::Recoverable(sent)) {
            robust.CountTransportDropout(name, sent);
            continue;
          }
          return sent;
        }
      }
      // --- clients: decrypt, average, apply ----------------------------------
      std::vector<double> update;
      size_t decrypted = 0;
      for (int party = 0; party < parties; ++party) {
        const std::string name = PartyName(party);
        if (robust.active() && !robust.IsUp(name)) continue;
        Result<core::EncVec> got = core::RecvEncVec(&net, name, "agg");
        if (!got.ok()) {
          if (robust.active() && RobustCoordinator::Recoverable(got.status())) {
            robust.CountTransportDropout(name, got.status());
            continue;
          }
          return got.status();
        }
        FLB_ASSIGN_OR_RETURN(update, he.DecryptValues(got.value()));
        decrypted += 1;
      }
      if (decrypted == 0) continue;  // no live party got the aggregate
      // FedAvg renormalization over the deltas actually aggregated.
      for (size_t j = 0; j < params_vec_.size(); ++j) {
        params_vec_[j] += update[j] / static_cast<double>(received);
      }
      ChargeModelCompute(clock, 2.0 * params_vec_.size() * decrypted);
    }

    if (epoch_aborted) {
      FLB_ASSIGN_OR_RETURN(const int resume_epoch,
                           robust.Resume(&params_vec_));
      if (static_cast<size_t>(resume_epoch) < result.epochs.size()) {
        result.epochs.resize(resume_epoch);
      }
      epoch = resume_epoch;
      prev_loss = result.epochs.empty()
                      ? std::numeric_limits<double>::infinity()
                      : result.epochs.back().loss;
      continue;
    }

    EpochRecord record;
    record.epoch = epoch;
    double loss = 0, acc = 0;
    size_t total = 0;
    for (const auto& shard : shards_) {
      double a;
      loss += ForwardLoss(shard, params_vec_, &a) * shard.rows();
      acc += a * shard.rows();
      total += shard.rows();
    }
    record.loss = loss / total;
    record.accuracy = acc / total;
    const ClockSnapshot after = ClockSnapshot::Take(clock, &net);
    FillEpochTiming(before, after, &record);
    TraceEpoch("homo_nn", record, session_, config_.max_epochs);
    result.epochs.push_back(record);
    robust.Checkpoint(epoch, params_vec_);
    if (std::fabs(prev_loss - record.loss) < config_.tolerance) {
      result.converged = true;
      break;
    }
    prev_loss = record.loss;
    epoch += 1;
  }
  if (!result.epochs.empty()) {
    result.final_loss = result.epochs.back().loss;
    result.final_accuracy = result.epochs.back().accuracy;
  }
  result.robustness = robust.counters();
  return result;
}

}  // namespace flb::fl
