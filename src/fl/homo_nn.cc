#include "src/fl/homo_nn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/transport.h"
#include "src/fl/metrics.h"
#include "src/fl/trainer_util.h"

namespace flb::fl {

namespace {

// Parameter-vector layout helpers for the 1-hidden-layer MLP.
struct Layout {
  size_t d, h;
  size_t W1(size_t j, size_t c) const { return j * d + c; }
  size_t b1(size_t j) const { return h * d + j; }
  size_t w2(size_t j) const { return h * d + h + j; }
  size_t b2() const { return h * d + 2 * h; }
  size_t total() const { return h * d + 2 * h + 1; }
};

}  // namespace

HomoNnTrainer::HomoNnTrainer(std::vector<Dataset> shards, FlSession session,
                             TrainConfig config, HomoNnParams params)
    : shards_(std::move(shards)),
      session_(session),
      config_(config),
      nn_(params) {
  FLB_CHECK(!shards_.empty() && nn_.hidden_dim >= 1);
  const Layout layout{shards_[0].cols(), static_cast<size_t>(nn_.hidden_dim)};
  Rng rng(nn_.init_seed);
  params_vec_.resize(layout.total());
  const double scale = 1.0 / std::sqrt(static_cast<double>(layout.d));
  for (size_t j = 0; j < layout.h * layout.d; ++j) {
    params_vec_[j] = rng.NextGaussian() * scale;
  }
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(layout.h));
  for (size_t j = 0; j < layout.h; ++j) {
    params_vec_[layout.b1(j)] = 0.0;
    params_vec_[layout.w2(j)] = rng.NextGaussian() * scale2;
  }
  params_vec_[layout.b2()] = 0.0;
}

std::vector<double> HomoNnTrainer::Predict(const Dataset& data) const {
  const Layout layout{data.cols(), static_cast<size_t>(nn_.hidden_dim)};
  const std::vector<double>& p = params_vec_;
  std::vector<double> probs(data.rows());
  std::vector<double> hidden(layout.h);
  for (size_t r = 0; r < data.rows(); ++r) {
    for (size_t j = 0; j < layout.h; ++j) {
      double acc = p[layout.b1(j)];
      for (size_t e = data.x.RowBegin(r); e < data.x.RowEnd(r); ++e) {
        acc += p[layout.W1(j, data.x.EntryCol(e))] *
               static_cast<double>(data.x.EntryValue(e));
      }
      hidden[j] = std::tanh(acc);
    }
    double score = p[layout.b2()];
    for (size_t j = 0; j < layout.h; ++j) {
      score += p[layout.w2(j)] * hidden[j];
    }
    probs[r] = Sigmoid(score);
  }
  return probs;
}

std::vector<double> HomoNnTrainer::LocalDelta(
    const Dataset& shard, size_t begin, size_t end,
    const std::vector<double>& start) const {
  const Layout layout{shard.cols(), static_cast<size_t>(nn_.hidden_dim)};
  std::vector<double> p = start;
  const size_t m = end - begin;
  std::vector<double> hidden(layout.h), pre(layout.h);
  double flops = 0;
  for (int step = 0; step < nn_.local_steps; ++step) {
    std::vector<double> grad(p.size(), 0.0);
    for (size_t r = begin; r < end; ++r) {
      // Forward.
      for (size_t j = 0; j < layout.h; ++j) {
        double acc = p[layout.b1(j)];
        for (size_t e = shard.x.RowBegin(r); e < shard.x.RowEnd(r); ++e) {
          acc += p[layout.W1(j, shard.x.EntryCol(e))] *
                 static_cast<double>(shard.x.EntryValue(e));
        }
        pre[j] = acc;
        hidden[j] = std::tanh(acc);
      }
      double score = p[layout.b2()];
      for (size_t j = 0; j < layout.h; ++j) {
        score += p[layout.w2(j)] * hidden[j];
      }
      // Backward (logistic loss).
      const double err = Sigmoid(score) - shard.y[r];
      grad[layout.b2()] += err;
      for (size_t j = 0; j < layout.h; ++j) {
        grad[layout.w2(j)] += err * hidden[j];
        const double dh = err * p[layout.w2(j)] *
                          (1.0 - hidden[j] * hidden[j]);
        grad[layout.b1(j)] += dh;
        for (size_t e = shard.x.RowBegin(r); e < shard.x.RowEnd(r); ++e) {
          grad[layout.W1(j, shard.x.EntryCol(e))] +=
              dh * static_cast<double>(shard.x.EntryValue(e));
        }
      }
      flops += 6.0 * layout.h * (shard.x.RowNnz(r) + 2);
    }
    const double lr = config_.learning_rate / static_cast<double>(m);
    for (size_t j = 0; j < p.size(); ++j) {
      p[j] -= lr * (grad[j] + config_.l2 * p[j] * m);
    }
    flops += 3.0 * p.size();
  }
  ChargeModelCompute(session_.clock, flops);
  std::vector<double> delta(p.size());
  for (size_t j = 0; j < p.size(); ++j) delta[j] = p[j] - start[j];
  return delta;
}

double HomoNnTrainer::ForwardLoss(const Dataset& data,
                                  const std::vector<double>& /*p*/,
                                  double* accuracy) const {
  std::vector<double> probs = Predict(data);
  ChargeModelCompute(session_.clock,
                     2.0 * data.x.nnz() * nn_.hidden_dim);
  if (accuracy != nullptr) *accuracy = Accuracy(probs, data.y);
  return MeanLogLoss(probs, data.y);
}

Result<TrainResult> HomoNnTrainer::Train() {
  const int parties = static_cast<int>(shards_.size());
  core::HeService& he = *session_.he;
  net::Network& net = *session_.network;

  size_t min_rows = shards_[0].rows();
  for (const auto& s : shards_) min_rows = std::min(min_rows, s.rows());
  const size_t batches = std::max<size_t>(
      1, (min_rows + config_.batch_size - 1) / config_.batch_size);

  TrainResult result;
  double prev_loss = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    const ClockSnapshot before = ClockSnapshot::Take(session_.clock, &net);
    for (size_t b = 0; b < batches; ++b) {
      // --- clients: local steps -> encrypted deltas -> server ---------------
      for (int party = 0; party < parties; ++party) {
        const Dataset& shard = shards_[party];
        const size_t begin =
            std::min<size_t>(b * config_.batch_size, shard.rows());
        const size_t end =
            std::min<size_t>(begin + config_.batch_size, shard.rows());
        std::vector<double> delta =
            begin < end ? LocalDelta(shard, begin, end, params_vec_)
                        : std::vector<double>(params_vec_.size(), 0.0);
        FLB_ASSIGN_OR_RETURN(core::EncVec enc, he.EncryptValues(delta));
        FLB_RETURN_IF_ERROR(core::SendEncVec(&net, he, PartyName(party),
                                             kServerName, "delta", enc));
      }
      // --- server: homomorphic FedAvg ---------------------------------------
      FLB_ASSIGN_OR_RETURN(core::EncVec agg,
                           core::RecvEncVec(&net, kServerName, "delta"));
      for (int party = 1; party < parties; ++party) {
        FLB_ASSIGN_OR_RETURN(core::EncVec next,
                             core::RecvEncVec(&net, kServerName, "delta"));
        FLB_ASSIGN_OR_RETURN(agg, he.AddCipher(agg, next));
      }
      for (int party = 0; party < parties; ++party) {
        FLB_RETURN_IF_ERROR(core::SendEncVec(&net, he, kServerName,
                                             PartyName(party), "agg", agg));
      }
      // --- clients: decrypt, average, apply ----------------------------------
      std::vector<double> update;
      for (int party = 0; party < parties; ++party) {
        FLB_ASSIGN_OR_RETURN(
            core::EncVec received,
            core::RecvEncVec(&net, PartyName(party), "agg"));
        FLB_ASSIGN_OR_RETURN(update, he.DecryptValues(received));
      }
      for (size_t j = 0; j < params_vec_.size(); ++j) {
        params_vec_[j] += update[j] / parties;
      }
      ChargeModelCompute(session_.clock, 2.0 * params_vec_.size() * parties);
    }

    EpochRecord record;
    record.epoch = epoch;
    double loss = 0, acc = 0;
    size_t total = 0;
    for (const auto& shard : shards_) {
      double a;
      loss += ForwardLoss(shard, params_vec_, &a) * shard.rows();
      acc += a * shard.rows();
      total += shard.rows();
    }
    record.loss = loss / total;
    record.accuracy = acc / total;
    const ClockSnapshot after = ClockSnapshot::Take(session_.clock, &net);
    FillEpochTiming(before, after, &record);
    TraceEpoch("homo_nn", record);
    result.epochs.push_back(record);
    if (std::fabs(prev_loss - record.loss) < config_.tolerance) {
      result.converged = true;
      break;
    }
    prev_loss = record.loss;
  }
  if (!result.epochs.empty()) {
    result.final_loss = result.epochs.back().loss;
    result.final_accuracy = result.epochs.back().accuracy;
  }
  return result;
}

}  // namespace flb::fl
