// Homogeneous (horizontal) neural network — FedAvg with encrypted model
// updates (McMahan et al., the paper's [44], under the Fig. 2 HE template).
//
// Every party holds a row shard and trains a local one-hidden-layer MLP for
// E local steps; parties then upload their *weight deltas* quantized,
// packed (under BC) and encrypted; the server aggregates homomorphically
// and broadcasts; everyone applies the averaged delta, keeping the global
// model in sync. This is the fourth horizontal workload class the paper's
// "all standard FL models" phrase covers (FATE's Homo NN), and the one IBM
// FL / TrustFL-style GPU systems accelerate.
//
// HE volume per round: one packed encrypt + p-1 adds + one decrypt over the
// full parameter vector — structurally the Homo LR pattern scaled to NN
// parameter counts.

#ifndef FLB_FL_HOMO_NN_H_
#define FLB_FL_HOMO_NN_H_

#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/fl/dataset.h"
#include "src/fl/fl_types.h"

namespace flb::fl {

struct HomoNnParams {
  int hidden_dim = 16;
  int local_steps = 1;  // local mini-batch steps between aggregations
  uint64_t init_seed = 23;
};

class HomoNnTrainer {
 public:
  HomoNnTrainer(std::vector<Dataset> shards, FlSession session,
                TrainConfig config, HomoNnParams params = {});

  Result<TrainResult> Train();

  // Flattened global parameters: [W1 (h x d), b1 (h), w2 (h), b2 (1)].
  const std::vector<double>& parameters() const { return params_vec_; }
  size_t parameter_count() const { return params_vec_.size(); }

  // Predicted probabilities over a dataset with the current global model.
  std::vector<double> Predict(const Dataset& data) const;

 private:
  // One local training pass over shard rows [begin, end); returns the
  // parameter delta (new - old) starting from `start` parameters.
  std::vector<double> LocalDelta(const Dataset& shard, size_t begin,
                                 size_t end,
                                 const std::vector<double>& start) const;
  double ForwardLoss(const Dataset& data, const std::vector<double>& p,
                     double* accuracy) const;

  std::vector<Dataset> shards_;
  FlSession session_;
  TrainConfig config_;
  HomoNnParams nn_;
  std::vector<double> params_vec_;
};

}  // namespace flb::fl

#endif  // FLB_FL_HOMO_NN_H_
