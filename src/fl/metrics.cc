#include "src/fl/metrics.h"

#include <algorithm>

#include "src/common/check.h"

namespace flb::fl {

double MeanLogLoss(const std::vector<double>& probs,
                   const std::vector<float>& labels) {
  FLB_CHECK(probs.size() == labels.size() && !probs.empty());
  double total = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    total += LogLoss(probs[i], labels[i]);
  }
  return total / probs.size();
}

double Accuracy(const std::vector<double>& probs,
                const std::vector<float>& labels) {
  FLB_CHECK(probs.size() == labels.size() && !probs.empty());
  size_t correct = 0;
  for (size_t i = 0; i < probs.size(); ++i) {
    if ((probs[i] >= 0.5) == (labels[i] >= 0.5f)) ++correct;
  }
  return static_cast<double>(correct) / probs.size();
}

double Auc(const std::vector<double>& probs,
           const std::vector<float>& labels) {
  FLB_CHECK(probs.size() == labels.size() && !probs.empty());
  // Mann–Whitney U via rank sums; ties receive the average rank.
  std::vector<size_t> order(probs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return probs[a] < probs[b]; });
  size_t positives = 0, negatives = 0;
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && probs[order[j]] == probs[order[i]]) ++j;
    const double mean_rank = (static_cast<double>(i) + j + 1) / 2.0;  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] >= 0.5f) {
        positive_rank_sum += mean_rank;
        ++positives;
      } else {
        ++negatives;
      }
    }
    i = j;
  }
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * negatives);
}

void ChargeModelCompute(SimClock* clock, double flops) {
  // Scalar CPU throughput for the plain ML math (the paper's servers run
  // this part in NumPy-grade code).
  constexpr double kFlopsPerSec = 5.0e9;
  if (clock != nullptr && flops > 0) {
    clock->Charge(CostKind::kModelCompute, flops / kFlopsPerSec);
  }
}

}  // namespace flb::fl
