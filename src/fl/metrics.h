// Shared math for the FL models: sigmoid (+ the Taylor form used under HE),
// logistic loss, accuracy, and the model-compute time accounting.

#ifndef FLB_FL_METRICS_H_
#define FLB_FL_METRICS_H_

#include <cmath>
#include <vector>

#include "src/common/sim_clock.h"

namespace flb::fl {

inline double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// First-order Taylor expansion around 0 — the approximation hetero
// protocols use so the residual is linear in the (encrypted) score:
// sigmoid(z) ~= 0.5 + 0.25 z.
inline double TaylorSigmoid(double z) { return 0.5 + 0.25 * z; }

// Numerically-safe binary cross entropy for y in {0, 1}.
inline double LogLoss(double prob, double y) {
  constexpr double kEps = 1e-12;
  const double p = prob < kEps ? kEps : (prob > 1 - kEps ? 1 - kEps : prob);
  return -(y * std::log(p) + (1.0 - y) * std::log1p(-p));
}

double MeanLogLoss(const std::vector<double>& probs,
                   const std::vector<float>& labels);
double Accuracy(const std::vector<double>& probs,
                const std::vector<float>& labels);
// Area under the ROC curve (rank statistic; ties share credit). Returns
// 0.5 when only one class is present.
double Auc(const std::vector<double>& probs, const std::vector<float>& labels);

// Charges plain model math (gradients, tree building, dense layers) to the
// clock: `flops` floating-point operations at a scalar-CPU rate. This is the
// "Others" component of Table VI.
void ChargeModelCompute(SimClock* clock, double flops);

}  // namespace flb::fl

#endif  // FLB_FL_METRICS_H_
