#include "src/fl/model_io.h"

#include <cstdio>

#include "src/net/serializer.h"

namespace flb::fl {

namespace {

constexpr uint32_t kLrMagic = 0x464C4252;   // "FLBR"
constexpr uint32_t kSbtMagic = 0x464C4253;  // "FLBS"
constexpr uint32_t kCkptMagic = 0x464C4243;  // "FLBC"
constexpr uint32_t kVersion = 1;

uint64_t Checksum(const std::vector<uint8_t>& bytes, size_t from) {
  // FNV-1a over the payload, cheap integrity guard against truncation.
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = from; i < bytes.size(); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::vector<uint8_t> SerializeLrModel(const std::vector<double>& weights) {
  net::Serializer payload;
  payload.PutDoubleVector(weights);
  net::Serializer out;
  out.PutU32(kLrMagic);
  out.PutU32(kVersion);
  out.PutU64(Checksum(payload.bytes(), 0));
  auto bytes = out.TakeBytes();
  const auto& p = payload.bytes();
  bytes.insert(bytes.end(), p.begin(), p.end());
  return bytes;
}

Result<std::vector<double>> DeserializeLrModel(
    const std::vector<uint8_t>& bytes) {
  net::Deserializer d(bytes);
  FLB_ASSIGN_OR_RETURN(uint32_t magic, d.GetU32());
  if (magic != kLrMagic) {
    return Status::InvalidArgument("LR model: bad magic");
  }
  FLB_ASSIGN_OR_RETURN(uint32_t version, d.GetU32());
  if (version != kVersion) {
    return Status::NotSupported("LR model: unsupported version");
  }
  FLB_ASSIGN_OR_RETURN(uint64_t checksum, d.GetU64());
  if (checksum != Checksum(bytes, 16)) {
    return Status::IoError("LR model: checksum mismatch (corrupt file)");
  }
  return d.GetDoubleVector();
}

std::vector<uint8_t> SerializeSbtModel(const std::vector<SbtTree>& trees,
                                       double learning_rate) {
  net::Serializer payload;
  payload.PutDouble(learning_rate);
  payload.PutU32(static_cast<uint32_t>(trees.size()));
  for (const SbtTree& tree : trees) {
    payload.PutU32(static_cast<uint32_t>(tree.nodes.size()));
    for (const SbtNode& node : tree.nodes) {
      payload.PutU32(node.is_leaf ? 1 : 0);
      payload.PutU32(static_cast<uint32_t>(node.split_party + 1));
      payload.PutU32(node.split_feature);
      payload.PutU32(static_cast<uint32_t>(node.split_bin));
      payload.PutU32(static_cast<uint32_t>(node.left + 1));
      payload.PutU32(static_cast<uint32_t>(node.right + 1));
      payload.PutDouble(node.leaf_weight);
    }
  }
  net::Serializer out;
  out.PutU32(kSbtMagic);
  out.PutU32(kVersion);
  out.PutU64(Checksum(payload.bytes(), 0));
  auto bytes = out.TakeBytes();
  const auto& p = payload.bytes();
  bytes.insert(bytes.end(), p.begin(), p.end());
  return bytes;
}

Result<SbtModel> DeserializeSbtModel(const std::vector<uint8_t>& bytes) {
  net::Deserializer d(bytes);
  FLB_ASSIGN_OR_RETURN(uint32_t magic, d.GetU32());
  if (magic != kSbtMagic) {
    return Status::InvalidArgument("SBT model: bad magic");
  }
  FLB_ASSIGN_OR_RETURN(uint32_t version, d.GetU32());
  if (version != kVersion) {
    return Status::NotSupported("SBT model: unsupported version");
  }
  FLB_ASSIGN_OR_RETURN(uint64_t checksum, d.GetU64());
  if (checksum != Checksum(bytes, 16)) {
    return Status::IoError("SBT model: checksum mismatch (corrupt file)");
  }
  SbtModel model;
  FLB_ASSIGN_OR_RETURN(model.learning_rate, d.GetDouble());
  FLB_ASSIGN_OR_RETURN(uint32_t num_trees, d.GetU32());
  model.trees.reserve(num_trees);
  for (uint32_t t = 0; t < num_trees; ++t) {
    FLB_ASSIGN_OR_RETURN(uint32_t num_nodes, d.GetU32());
    SbtTree tree;
    tree.nodes.reserve(num_nodes);
    for (uint32_t n = 0; n < num_nodes; ++n) {
      SbtNode node;
      FLB_ASSIGN_OR_RETURN(uint32_t leaf, d.GetU32());
      node.is_leaf = leaf != 0;
      FLB_ASSIGN_OR_RETURN(uint32_t party, d.GetU32());
      node.split_party = static_cast<int>(party) - 1;
      FLB_ASSIGN_OR_RETURN(node.split_feature, d.GetU32());
      FLB_ASSIGN_OR_RETURN(uint32_t bin, d.GetU32());
      node.split_bin = static_cast<int>(bin);
      FLB_ASSIGN_OR_RETURN(uint32_t left, d.GetU32());
      node.left = static_cast<int>(left) - 1;
      FLB_ASSIGN_OR_RETURN(uint32_t right, d.GetU32());
      node.right = static_cast<int>(right) - 1;
      FLB_ASSIGN_OR_RETURN(node.leaf_weight, d.GetDouble());
      // Structural validation: children must point inside the tree.
      if (!node.is_leaf &&
          (node.left < 0 || node.right < 0 ||
           node.left >= static_cast<int>(num_nodes) ||
           node.right >= static_cast<int>(num_nodes))) {
        return Status::InvalidArgument("SBT model: child index out of range");
      }
      tree.nodes.push_back(node);
    }
    model.trees.push_back(std::move(tree));
  }
  return model;
}

std::vector<uint8_t> SerializeCheckpoint(int epoch,
                                         const std::vector<double>& weights) {
  net::Serializer payload;
  payload.PutU32(static_cast<uint32_t>(epoch + 1));  // -1 stored as 0
  payload.PutDoubleVector(weights);
  net::Serializer out;
  out.PutU32(kCkptMagic);
  out.PutU32(kVersion);
  out.PutU64(Checksum(payload.bytes(), 0));
  auto bytes = out.TakeBytes();
  const auto& p = payload.bytes();
  bytes.insert(bytes.end(), p.begin(), p.end());
  return bytes;
}

Result<TrainCheckpoint> DeserializeCheckpoint(
    const std::vector<uint8_t>& bytes) {
  net::Deserializer d(bytes);
  FLB_ASSIGN_OR_RETURN(uint32_t magic, d.GetU32());
  if (magic != kCkptMagic) {
    return Status::InvalidArgument("checkpoint: bad magic");
  }
  FLB_ASSIGN_OR_RETURN(uint32_t version, d.GetU32());
  if (version != kVersion) {
    return Status::NotSupported("checkpoint: unsupported version");
  }
  FLB_ASSIGN_OR_RETURN(uint64_t checksum, d.GetU64());
  if (checksum != Checksum(bytes, 16)) {
    return Status::IoError("checkpoint: checksum mismatch (corrupt file)");
  }
  TrainCheckpoint ckpt;
  FLB_ASSIGN_OR_RETURN(uint32_t epoch, d.GetU32());
  ckpt.epoch = static_cast<int>(epoch) - 1;
  FLB_ASSIGN_OR_RETURN(ckpt.weights, d.GetDoubleVector());
  return ckpt;
}

Status WriteModelFile(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("WriteModelFile: cannot open " + path);
  }
  const size_t written = bytes.empty()
                             ? 0
                             : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = std::fclose(f) == 0 && written == bytes.size();
  if (!ok) return Status::IoError("WriteModelFile: short write to " + path);
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadModelFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("ReadModelFile: cannot open " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::IoError("ReadModelFile: read error on " + path);
  }
  return bytes;
}

}  // namespace flb::fl
