// Trained-model persistence: serialize LR weight vectors and SecureBoost
// forests so each party can store and later deploy its share of a trained
// federation (FATE's model export step).

#ifndef FLB_FL_MODEL_IO_H_
#define FLB_FL_MODEL_IO_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/fl/hetero_sbt.h"

namespace flb::fl {

// Logistic-regression weights (with metadata header + integrity check).
std::vector<uint8_t> SerializeLrModel(const std::vector<double>& weights);
Result<std::vector<double>> DeserializeLrModel(
    const std::vector<uint8_t>& bytes);

// A SecureBoost forest plus the learning rate its leaf weights assume.
std::vector<uint8_t> SerializeSbtModel(const std::vector<SbtTree>& trees,
                                       double learning_rate);
struct SbtModel {
  std::vector<SbtTree> trees;
  double learning_rate = 0.0;
};
Result<SbtModel> DeserializeSbtModel(const std::vector<uint8_t>& bytes);

}  // namespace flb::fl

#endif  // FLB_FL_MODEL_IO_H_
