// Trained-model persistence: serialize LR weight vectors and SecureBoost
// forests so each party can store and later deploy its share of a trained
// federation (FATE's model export step).

#ifndef FLB_FL_MODEL_IO_H_
#define FLB_FL_MODEL_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/fl/hetero_sbt.h"

namespace flb::fl {

// Logistic-regression weights (with metadata header + integrity check).
std::vector<uint8_t> SerializeLrModel(const std::vector<double>& weights);
Result<std::vector<double>> DeserializeLrModel(
    const std::vector<uint8_t>& bytes);

// A SecureBoost forest plus the learning rate its leaf weights assume.
std::vector<uint8_t> SerializeSbtModel(const std::vector<SbtTree>& trees,
                                       double learning_rate);
struct SbtModel {
  std::vector<SbtTree> trees;
  double learning_rate = 0.0;
};
Result<SbtModel> DeserializeSbtModel(const std::vector<uint8_t>& bytes);

// Epoch-boundary training checkpoint (crash-resume for the homo trainers):
// the epoch just completed plus the model weights at its end. Same
// magic + version + FNV-1a checksum envelope as the model formats.
struct TrainCheckpoint {
  int epoch = -1;  // -1 = initial weights, before any epoch completed
  std::vector<double> weights;
};
std::vector<uint8_t> SerializeCheckpoint(int epoch,
                                         const std::vector<double>& weights);
Result<TrainCheckpoint> DeserializeCheckpoint(
    const std::vector<uint8_t>& bytes);

// Whole-file helpers for model/checkpoint blobs.
Status WriteModelFile(const std::string& path,
                      const std::vector<uint8_t>& bytes);
Result<std::vector<uint8_t>> ReadModelFile(const std::string& path);

}  // namespace flb::fl

#endif  // FLB_FL_MODEL_IO_H_
