#include "src/fl/optimizer.h"

#include <cmath>

namespace flb::fl {

Status SgdOptimizer::Step(std::vector<double>* params,
                          const std::vector<double>& grad) {
  if (params->size() != grad.size()) {
    return Status::InvalidArgument("SGD: gradient size mismatch");
  }
  for (size_t i = 0; i < grad.size(); ++i) {
    (*params)[i] -= lr_ * grad[i];
  }
  return Status::OK();
}

Status AdamOptimizer::Step(std::vector<double>* params,
                           const std::vector<double>& grad) {
  if (params->size() != grad.size()) {
    return Status::InvalidArgument("Adam: gradient size mismatch");
  }
  if (m_.size() != grad.size()) {
    m_.assign(grad.size(), 0.0);
    v_.assign(grad.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, t_);
  const double bias2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < grad.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    (*params)[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
  return Status::OK();
}

void AdamOptimizer::Reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(learning_rate);
    case OptimizerKind::kAdam:
      return std::make_unique<AdamOptimizer>(learning_rate);
  }
  return nullptr;
}

}  // namespace flb::fl
