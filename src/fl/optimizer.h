// Optimizers for local model updates (Eq. 1). The paper trains with Adam
// (§VI-B parameter settings); plain SGD is kept for tests and ablations.

#ifndef FLB_FL_OPTIMIZER_H_
#define FLB_FL_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "src/common/result.h"

namespace flb::fl {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // In-place parameter update from a gradient of matching size.
  virtual Status Step(std::vector<double>* params,
                      const std::vector<double>& grad) = 0;
  virtual void Reset() = 0;
};

class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double learning_rate) : lr_(learning_rate) {}
  Status Step(std::vector<double>* params,
              const std::vector<double>& grad) override;
  void Reset() override {}

 private:
  double lr_;
};

class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}
  Status Step(std::vector<double>* params,
              const std::vector<double>& grad) override;
  void Reset() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<double> m_, v_;
};

enum class OptimizerKind : int { kSgd = 0, kAdam = 1 };

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate);

}  // namespace flb::fl

#endif  // FLB_FL_OPTIMIZER_H_
