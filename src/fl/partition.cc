#include "src/fl/partition.h"

namespace flb::fl {

Result<std::vector<Dataset>> HorizontalSplit(const Dataset& ds,
                                             int num_parties) {
  if (num_parties < 1 || static_cast<size_t>(num_parties) > ds.rows()) {
    return Status::InvalidArgument(
        "HorizontalSplit: party count must be in [1, rows]");
  }
  std::vector<Dataset> shards;
  shards.reserve(num_parties);
  const size_t base = ds.rows() / num_parties;
  const size_t extra = ds.rows() % num_parties;
  size_t row = 0;
  for (int p = 0; p < num_parties; ++p) {
    const size_t take = base + (static_cast<size_t>(p) < extra ? 1 : 0);
    Dataset shard;
    shard.name = ds.name + "/h" + std::to_string(p);
    shard.x = ds.x.SliceRows(row, row + take);
    shard.y.assign(ds.y.begin() + row, ds.y.begin() + row + take);
    shards.push_back(std::move(shard));
    row += take;
  }
  return shards;
}

Result<VerticalPartition> VerticalSplit(const Dataset& ds, int num_parties) {
  if (num_parties < 1 || static_cast<size_t>(num_parties) > ds.cols()) {
    return Status::InvalidArgument(
        "VerticalSplit: party count must be in [1, cols]");
  }
  VerticalPartition out;
  out.labels = ds.y;
  const size_t base = ds.cols() / num_parties;
  const size_t extra = ds.cols() % num_parties;
  size_t col = 0;
  for (int p = 0; p < num_parties; ++p) {
    const size_t take = base + (static_cast<size_t>(p) < extra ? 1 : 0);
    VerticalShard shard;
    shard.col_begin = col;
    shard.col_end = col + take;
    shard.x = ds.x.SliceColumns(col, col + take);
    out.shards.push_back(std::move(shard));
    col += take;
  }
  return out;
}

}  // namespace flb::fl
