// Dataset partitioning for federated scenarios (paper §VI-A).
//
// Homogeneous (horizontal) FL: every party has the same feature space but
// different instances — the dataset is split by rows.
// Heterogeneous (vertical) FL: every party has the same instances but a
// different slice of the feature space — split by columns; the guest
// (party 0) additionally holds the labels.

#ifndef FLB_FL_PARTITION_H_
#define FLB_FL_PARTITION_H_

#include <vector>

#include "src/common/result.h"
#include "src/fl/dataset.h"

namespace flb::fl {

// Row shards; every shard keeps the full feature space and its own labels.
Result<std::vector<Dataset>> HorizontalSplit(const Dataset& ds,
                                             int num_parties);

struct VerticalShard {
  DataMatrix x;          // this party's columns, renumbered from 0
  size_t col_begin = 0;  // original column range [col_begin, col_end)
  size_t col_end = 0;
};

struct VerticalPartition {
  std::vector<VerticalShard> shards;  // shard 0 belongs to the guest
  std::vector<float> labels;          // held by the guest only
};

// Column shards; labels go to the guest (shard 0).
Result<VerticalPartition> VerticalSplit(const Dataset& ds, int num_parties);

}  // namespace flb::fl

#endif  // FLB_FL_PARTITION_H_
