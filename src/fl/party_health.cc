#include "src/fl/party_health.h"

#include <algorithm>

namespace flb::fl {

PartyHealth::PartyHealth(PartyHealthOptions options, const SimClock* clock)
    : options_(options), clock_(clock) {}

double PartyHealth::Now() const {
  return clock_ != nullptr ? clock_->Now() : 0.0;
}

void PartyHealth::Observe(State* state, double failure, double response_sec) {
  const double a = options_.ewma_alpha;
  if (!state->seen) {
    state->failure_ewma = failure;
    state->response_ewma = response_sec;
    state->seen = true;
    return;
  }
  state->failure_ewma = a * failure + (1.0 - a) * state->failure_ewma;
  state->response_ewma =
      a * response_sec + (1.0 - a) * state->response_ewma;
}

double PartyHealth::WindowFor(const State& state) const {
  double window = options_.quarantine_sec;
  for (uint64_t i = 1; i < state.times_quarantined; ++i) {
    window = std::min(window * options_.backoff, options_.max_quarantine_sec);
  }
  return std::min(window, options_.max_quarantine_sec);
}

void PartyHealth::RecordSuccess(const std::string& party,
                                double response_sec) {
  State& state = parties_[party];
  Observe(&state, 0.0, response_sec);
  // Probation lifts once the failure rate has decayed well under the trip
  // threshold; until then one more failure re-quarantines immediately.
  if (state.probation &&
      state.failure_ewma < 0.5 * options_.failure_threshold) {
    state.probation = false;
  }
}

bool PartyHealth::RecordFailure(const std::string& party) {
  State& state = parties_[party];
  Observe(&state, 1.0, state.response_ewma);
  if (!enabled() || state.quarantined) return false;
  if (state.probation || state.failure_ewma > options_.failure_threshold) {
    state.quarantined = true;
    state.probation = false;
    state.times_quarantined += 1;
    state.until_sec = Now() + WindowFor(state);
    quarantines_ += 1;
    return true;
  }
  return false;
}

bool PartyHealth::Quarantined(const std::string& party) {
  if (!enabled()) return false;
  const auto it = parties_.find(party);
  if (it == parties_.end() || !it->second.quarantined) return false;
  if (Now() >= it->second.until_sec) {
    // Window elapsed: readmit on probation with a clean slate for the
    // failure average (one fresh failure re-quarantines via `probation`).
    it->second.quarantined = false;
    it->second.probation = true;
    it->second.failure_ewma = options_.failure_threshold * 0.5;
    readmits_ += 1;
    return false;
  }
  return true;
}

double PartyHealth::FailureRate(const std::string& party) const {
  const auto it = parties_.find(party);
  return it == parties_.end() ? 0.0 : it->second.failure_ewma;
}

double PartyHealth::ResponseEwma(const std::string& party) const {
  const auto it = parties_.find(party);
  return it == parties_.end() ? 0.0 : it->second.response_ewma;
}

uint64_t PartyHealth::QuarantinedCount() const {
  uint64_t n = 0;
  for (const auto& [party, state] : parties_) {
    if (state.quarantined) n += 1;
  }
  return n;
}

}  // namespace flb::fl
