// PartyHealth: per-party EWMA health tracking with a quarantine /
// probation / readmit policy (DESIGN.md §6).
//
// The RobustCoordinator's liveness gate only sees hard crashes; a party
// that is up but persistently failing (lossy link, perpetual straggling)
// drags every round through the full retry budget. PartyHealth tracks two
// exponentially weighted moving averages per party — failure rate (1.0 per
// failed exchange, 0.0 per success) and response time — and feeds a state
// machine:
//
//   healthy --failure EWMA > threshold--> quarantined (skipped for
//       quarantine_sec * backoff^(times-1) simulated seconds, capped)
//   quarantined --window elapsed-------> probation (readmitted, watched)
//   probation --next failure-----------> quarantined (deeper window)
//   probation --failure EWMA < 1/2 threshold--> healthy
//
// Everything runs on the SimClock and plain arithmetic, so same-seed chaos
// runs reproduce the same quarantine decisions bit-identically. The policy
// is off (never quarantines) when quarantine_sec <= 0 — the default, so
// existing chaos behavior is opt-in unchanged.

#ifndef FLB_FL_PARTY_HEALTH_H_
#define FLB_FL_PARTY_HEALTH_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/sim_clock.h"

namespace flb::fl {

struct PartyHealthOptions {
  double ewma_alpha = 0.3;         // weight of the newest observation
  double failure_threshold = 0.5;  // failure EWMA that quarantines
  double quarantine_sec = 0.0;     // first window; <= 0 disables the policy
  double backoff = 2.0;            // window multiplier per re-quarantine
  double max_quarantine_sec = 10.0;
};

class PartyHealth {
 public:
  PartyHealth(PartyHealthOptions options, const SimClock* clock);

  bool enabled() const { return options_.quarantine_sec > 0; }

  // One exchange with the party succeeded after `response_sec` of
  // simulated time (compute + transfer attributed to it).
  void RecordSuccess(const std::string& party, double response_sec);
  // One exchange failed (transport dropout, missed deadline, CRC loss).
  // Returns true when this failure pushed the party into quarantine.
  bool RecordFailure(const std::string& party);

  // True while the party sits inside its quarantine window. Crossing the
  // window boundary readmits the party on probation (counted once).
  bool Quarantined(const std::string& party);

  double FailureRate(const std::string& party) const;
  double ResponseEwma(const std::string& party) const;

  uint64_t quarantines() const { return quarantines_; }
  uint64_t readmits() const { return readmits_; }
  // Parties currently inside a quarantine window.
  uint64_t QuarantinedCount() const;

 private:
  struct State {
    double failure_ewma = 0.0;
    double response_ewma = 0.0;
    bool seen = false;
    bool quarantined = false;
    bool probation = false;
    uint64_t times_quarantined = 0;
    double until_sec = 0.0;
  };

  void Observe(State* state, double failure, double response_sec);
  double WindowFor(const State& state) const;
  double Now() const;

  PartyHealthOptions options_;
  const SimClock* clock_;
  std::map<std::string, State> parties_;
  uint64_t quarantines_ = 0;
  uint64_t readmits_ = 0;
};

}  // namespace flb::fl

#endif  // FLB_FL_PARTY_HEALTH_H_
