#include "src/fl/psi.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"
#include "src/core/cost_model.h"
#include "src/crypto/rsa.h"
#include "src/ghe/ghe_engine.h"
#include "src/net/serializer.h"

namespace flb::fl {

namespace {

using crypto::RsaContext;
using mpint::BigInt;

uint64_t SplitMix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Full-domain hash of an id into [2, n): expand the id into n's width via a
// splitmix64 stream and reduce.
BigInt HashToGroup(uint64_t id, const BigInt& n) {
  const size_t words = n.WordCount() + 1;
  std::vector<uint32_t> w(words);
  uint64_t state = id * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  for (size_t i = 0; i + 1 < words; i += 2) {
    const uint64_t r = SplitMix(state + i);
    w[i] = static_cast<uint32_t>(r);
    w[i + 1] = static_cast<uint32_t>(r >> 32);
  }
  if (words % 2 == 1) w[words - 1] = static_cast<uint32_t>(SplitMix(state + words));
  BigInt h = BigInt::FromWords(std::move(w)) % n;
  if (h < BigInt(2)) h = BigInt::Add(h, BigInt(2));
  return h;
}

// Second hash: tag of an unblinded signature (64-bit, collision-safe for
// realistic id-set sizes).
uint64_t TagOf(const BigInt& t) {
  uint64_t acc = 0x2545F4914F6CDD1DULL;
  for (uint32_t w : t.words()) acc = SplitMix(acc ^ w);
  return acc;
}

// Host-side RSA cost: one full-width exponentiation per signature.
uint64_t SignLimbOps(int key_bits) {
  const size_t s = static_cast<size_t>(key_bits) / 32;
  return ghe::EstimateModPowMontMuls(key_bits) * ghe::MontMulLimbOps(s);
}

}  // namespace

Result<std::vector<uint64_t>> RsaPsiIntersect(
    const std::vector<uint64_t>& guest_ids,
    const std::vector<uint64_t>& host_ids, const PsiOptions& options,
    net::Network* network, SimClock* clock, PsiStats* stats) {
  if (network == nullptr) {
    return Status::InvalidArgument("RsaPsiIntersect: network required");
  }
  Rng rng(options.seed);
  core::CpuCostModel cpu;

  // ---- host: key generation, publish the public key -------------------------
  FLB_ASSIGN_OR_RETURN(auto keys, crypto::RsaKeyGen(options.rsa_key_bits, rng));
  FLB_ASSIGN_OR_RETURN(RsaContext host_ctx, RsaContext::Create(keys));
  const BigInt& n = keys.pub.n;
  const size_t words = keys.pub.CiphertextWords();
  {
    net::Serializer s;
    s.PutBigInt(keys.pub.n);
    s.PutBigInt(keys.pub.e);
    FLB_RETURN_IF_ERROR(network->Send("host", "guest", "psi_pub",
                                      s.TakeBytes()));
    FLB_RETURN_IF_ERROR(network->Receive("guest", "psi_pub").status());
  }

  // ---- guest: blind ids ------------------------------------------------------
  std::vector<BigInt> blinds;     // r_i
  std::vector<BigInt> blinded;    // H(u_i) * r_i^e mod n
  blinds.reserve(guest_ids.size());
  blinded.reserve(guest_ids.size());
  FLB_ASSIGN_OR_RETURN(auto n_ctx, crypto::MontgomeryContext::Create(n));
  for (uint64_t id : guest_ids) {
    BigInt r;
    do {
      r = BigInt::RandomBelow(rng, n);
    } while (r < BigInt(2) || !BigInt::Gcd(r, n).IsOne());
    const BigInt re = n_ctx.ModPow(r, keys.pub.e);
    blinded.push_back(n_ctx.ModMul(HashToGroup(id, n), re));
    blinds.push_back(std::move(r));
  }
  cpu.Charge(clock, guest_ids.size(), 20 * ghe::MontMulLimbOps(words));
  {
    net::Serializer s;
    s.PutBigIntBatchFixed(blinded, words);
    FLB_RETURN_IF_ERROR(network->Send("guest", "host", "psi_blind",
                                      s.TakeBytes(), blinded.size()));
  }

  // ---- host: blind-sign ------------------------------------------------------
  FLB_ASSIGN_OR_RETURN(auto blind_msg, network->Receive("host", "psi_blind"));
  net::Deserializer d(blind_msg.payload);
  FLB_ASSIGN_OR_RETURN(auto to_sign, d.GetBigIntBatchFixed(words));
  std::vector<BigInt> signed_back;
  signed_back.reserve(to_sign.size());
  for (const BigInt& y : to_sign) {
    FLB_ASSIGN_OR_RETURN(BigInt z, host_ctx.Decrypt(y));  // y^d mod n
    signed_back.push_back(std::move(z));
  }
  cpu.Charge(clock, to_sign.size(), SignLimbOps(options.rsa_key_bits));
  {
    net::Serializer s;
    s.PutBigIntBatchFixed(signed_back, words);
    FLB_RETURN_IF_ERROR(network->Send("host", "guest", "psi_signed",
                                      s.TakeBytes(), signed_back.size()));
  }

  // ---- host: tag own ids -----------------------------------------------------
  std::vector<uint64_t> host_tags;
  host_tags.reserve(host_ids.size());
  for (uint64_t id : host_ids) {
    FLB_ASSIGN_OR_RETURN(BigInt t, host_ctx.Decrypt(HashToGroup(id, n)));
    host_tags.push_back(TagOf(t));
  }
  cpu.Charge(clock, host_ids.size(), SignLimbOps(options.rsa_key_bits));
  std::sort(host_tags.begin(), host_tags.end());
  {
    net::Serializer s;
    s.PutU32(static_cast<uint32_t>(host_tags.size()));
    for (uint64_t tag : host_tags) s.PutU64(tag);
    FLB_RETURN_IF_ERROR(network->Send("host", "guest", "psi_tags",
                                      s.TakeBytes()));
  }

  // ---- guest: unblind, tag, intersect ----------------------------------------
  FLB_ASSIGN_OR_RETURN(auto signed_msg,
                       network->Receive("guest", "psi_signed"));
  net::Deserializer d2(signed_msg.payload);
  FLB_ASSIGN_OR_RETURN(auto signatures, d2.GetBigIntBatchFixed(words));
  if (signatures.size() != guest_ids.size()) {
    return Status::Internal("PSI: signature count mismatch");
  }
  std::map<uint64_t, uint64_t> guest_tag_to_id;
  for (size_t i = 0; i < guest_ids.size(); ++i) {
    FLB_ASSIGN_OR_RETURN(BigInt r_inv, BigInt::ModInverse(blinds[i], n));
    const BigInt t = n_ctx.ModMul(signatures[i], r_inv);
    guest_tag_to_id[TagOf(t)] = guest_ids[i];
  }
  cpu.Charge(clock, guest_ids.size(), 8 * ghe::MontMulLimbOps(words));

  FLB_ASSIGN_OR_RETURN(auto tags_msg, network->Receive("guest", "psi_tags"));
  net::Deserializer d3(tags_msg.payload);
  FLB_ASSIGN_OR_RETURN(uint32_t tag_count, d3.GetU32());
  std::vector<uint64_t> shared;
  for (uint32_t i = 0; i < tag_count; ++i) {
    FLB_ASSIGN_OR_RETURN(uint64_t tag, d3.GetU64());
    auto it = guest_tag_to_id.find(tag);
    if (it != guest_tag_to_id.end()) shared.push_back(it->second);
  }
  std::sort(shared.begin(), shared.end());

  if (stats != nullptr) {
    stats->guest_ids = guest_ids.size();
    stats->host_ids = host_ids.size();
    stats->intersection = shared.size();
    stats->blind_signatures = to_sign.size() + host_ids.size();
    stats->comm_bytes = network->stats().bytes;
  }
  return shared;
}

}  // namespace flb::fl
