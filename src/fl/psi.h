// Private set intersection by RSA blind signatures — FATE's sample
// alignment step for heterogeneous FL, and the consumer of the paper's
// RSA::{key_gen, encrypt, decrypt, mul} API surface (Table I).
//
// Before vertical training, guest and host must find the sample IDs they
// share without revealing the rest. The classic blind-RSA protocol:
//
//   host:  generates (n, e, d); publishes (n, e).
//   guest: for each id u, draws a unit r and sends  y = H(u) * r^e mod n.
//   host:  signs blindly:                           z = y^d = H(u)^d * r.
//   guest: unblinds t = z * r^{-1} = H(u)^d and tags it with H2(t).
//   host:  tags its own ids the same way (t' = H(v)^d) and sends the tags.
//   guest: intersects tag sets -> the shared IDs.
//
// The host never sees the guest's ids (only blinded group elements); the
// guest learns nothing about host ids outside the intersection beyond
// random-looking tags. H is a full-domain hash into Z_n built from
// splitmix64 expansion; H2 truncates a second expansion to 64 bits.

#ifndef FLB_FL_PSI_H_
#define FLB_FL_PSI_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/net/network.h"

namespace flb::fl {

struct PsiOptions {
  int rsa_key_bits = 512;
  uint64_t seed = 99;
};

struct PsiStats {
  size_t guest_ids = 0;
  size_t host_ids = 0;
  size_t intersection = 0;
  uint64_t blind_signatures = 0;  // host-side RSA exponentiations
  uint64_t comm_bytes = 0;
};

// Runs the protocol between parties "guest" and "host" over `network`
// (bytes and transfer time are accounted; RSA compute is charged to the
// clock when non-null). Returns the shared ids in ascending order —
// revealed to the guest, as in FATE.
Result<std::vector<uint64_t>> RsaPsiIntersect(
    const std::vector<uint64_t>& guest_ids,
    const std::vector<uint64_t>& host_ids, const PsiOptions& options,
    net::Network* network, SimClock* clock, PsiStats* stats = nullptr);

}  // namespace flb::fl

#endif  // FLB_FL_PSI_H_
