#include "src/fl/robust.h"

#include <cstdlib>
#include <utility>

#include "src/common/env.h"
#include "src/fl/model_io.h"
#include "src/fl/trainer_util.h"
#include "src/net/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/run_status.h"
#include "src/obs/trace.h"

namespace flb::fl {

namespace {
PartyHealthOptions HealthOptions(const TrainConfig& config) {
  PartyHealthOptions options;
  options.ewma_alpha = config.health_ewma_alpha;
  options.failure_threshold = config.health_failure_threshold;
  options.quarantine_sec = config.health_quarantine_sec;
  options.backoff = config.health_quarantine_backoff;
  options.max_quarantine_sec = config.health_max_quarantine_sec;
  return options;
}
}  // namespace

RobustCoordinator::RobustCoordinator(const FlSession& session,
                                     const TrainConfig& config,
                                     std::string trainer)
    : session_(session),
      config_(config),
      trainer_(std::move(trainer)),
      critical_parties_({kServerName}),
      health_(HealthOptions(config), session.clock) {
  const std::string dir = common::Env::Str("FLB_CHECKPOINT_DIR");
  if (!dir.empty()) {
    checkpoint_path_ = dir + "/" + trainer_ + ".ckpt";
  }
}

void RobustCoordinator::set_critical_parties(
    std::vector<std::string> parties) {
  critical_parties_ = std::move(parties);
}

bool RobustCoordinator::IsUp(const std::string& party) const {
  return session_.faults == nullptr || !session_.faults->IsCrashed(party);
}

bool RobustCoordinator::PartyUp(const std::string& party) {
  if (IsUp(party)) return true;
  counters_.crash_dropouts += 1;
  RecordEvent("crash_dropout", party);
  return false;
}

bool RobustCoordinator::AdmitParty(const std::string& party) {
  if (!PartyUp(party)) return false;
  if (!active() || !health_.enabled()) return true;
  if (health_.Quarantined(party)) {
    counters_.quarantine_skips += 1;
    RecordEvent("quarantine_skip", party);
    return false;
  }
  // Quarantined() may have just readmitted the party on probation; fold
  // the transition into the run counters either way.
  if (health_.readmits() > counters_.readmits) {
    counters_.readmits = health_.readmits();
    RecordEvent("readmit", party);
  }
  return true;
}

void RobustCoordinator::RecordPartyOutcome(const std::string& party, bool ok,
                                           double response_sec) {
  if (!active() || !health_.enabled()) return;
  if (ok) {
    health_.RecordSuccess(party, response_sec);
    return;
  }
  if (health_.RecordFailure(party)) {
    counters_.quarantines = health_.quarantines();
    RecordEvent("quarantine", party);
  }
}

Status RobustCoordinator::CheckDeadline(const char* what) {
  if (session_.deadline == nullptr) return Status::OK();
  Status status = session_.deadline->Check(what);
  if (status.ok()) return status;
  counters_.deadline_exceeded += 1;
  RecordEvent("deadline_exceeded", kServerName);
  return status;
}

bool RobustCoordinator::ServerDown() const { return !IsUp(kServerName); }

bool RobustCoordinator::CriticalDown() const {
  for (const std::string& party : critical_parties_) {
    if (!IsUp(party)) return true;
  }
  return false;
}

bool RobustCoordinator::AdmitUpload(const std::string& party,
                                    double compute_sec, double send_sec) {
  if (!active()) return true;
  const double scale = session_.faults->StragglerFactor(party);
  const double gate = config_.straggler_deadline_factor;
  const bool past_gate = gate > 0 && scale > gate;
  // The server waits for the straggler only up to the gate, so the extra
  // compute charged to the shared timeline is capped at factor `gate`.
  const double eff = past_gate ? gate : scale;
  if (session_.clock != nullptr && compute_sec > 0 && eff > 1.0) {
    session_.clock->Charge(CostKind::kModelCompute,
                           (eff - 1.0) * compute_sec);
  }
  if (past_gate) {
    counters_.straggler_dropouts += 1;
    RecordEvent("straggler_dropout", party);
    return false;
  }
  if (config_.straggler_deadline_sec > 0 &&
      eff * compute_sec + scale * send_sec > config_.straggler_deadline_sec) {
    counters_.straggler_dropouts += 1;
    RecordEvent("straggler_dropout", party);
    return false;
  }
  return true;
}

bool RobustCoordinator::Recoverable(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded() ||
         status.IsDataLoss();
}

void RobustCoordinator::CountTransportDropout(const std::string& party,
                                              const Status& status) {
  counters_.transport_dropouts += 1;
  RecordEvent(status.IsDataLoss() ? "data_loss_dropout" : "transport_dropout",
              party);
}

void RobustCoordinator::CountSkippedRound() {
  counters_.skipped_rounds += 1;
  RecordEvent("skipped_round", kServerName);
}

void RobustCoordinator::CountPartialRound() {
  counters_.partial_rounds += 1;
  RecordEvent("partial_round", kServerName);
}

void RobustCoordinator::Checkpoint(int epoch,
                                   const std::vector<double>& weights) {
  if (!active()) return;
  last_checkpoint_ = SerializeCheckpoint(epoch, weights);
  if (!checkpoint_path_.empty()) {
    // flb-lint: allow-next-line(FLB005) best-effort; RAM copy is authoritative
    (void)WriteModelFile(checkpoint_path_, last_checkpoint_);
  }
  counters_.checkpoints += 1;
  RecordEvent("checkpoint", kServerName);
}

Result<int> RobustCoordinator::Resume(std::vector<double>* weights) {
  if (!active()) {
    return Status::InvalidArgument("Resume: no fault plan active");
  }
  for (const std::string& party : critical_parties_) {
    if (!session_.faults->IsCrashed(party)) continue;
    const double recover = session_.faults->CrashRecoverTime(party);
    if (recover < 0) {
      return Status::Unavailable("RobustCoordinator: critical party '" +
                                 party +
                                 "' crashed permanently; cannot resume");
    }
    SimClock* clock = session_.clock;
    if (clock != nullptr && recover > clock->Now()) {
      // Training stalls until the critical party restarts.
      clock->Charge(CostKind::kOther, recover - clock->Now());
    }
  }
  if (last_checkpoint_.empty()) {
    return Status::NotFound("RobustCoordinator: no checkpoint to resume from");
  }
  FLB_ASSIGN_OR_RETURN(TrainCheckpoint ckpt,
                       DeserializeCheckpoint(last_checkpoint_));
  *weights = ckpt.weights;
  // The restarted server lost all in-flight round state.
  if (session_.network != nullptr) session_.network->PurgeInboxes();
  counters_.resumes += 1;
  RecordEvent("resume", kServerName);
  return ckpt.epoch + 1;
}

void RobustCoordinator::RecordEvent(const char* kind,
                                    const std::string& party) {
  PublishStatus();
  const std::string labels =
      "kind=" + std::string(kind) + ",party=" + party + ",model=" + trainer_;
  obs::MetricsRegistry::Global().Count("flb.fl.robust.events", 1, labels);
  // The unified resilience namespace: one counter stream across the robust
  // coordinator, party health, and the circuit breaker (which emits its
  // own flb.resilience.breaker.* transitions).
  obs::MetricsRegistry::Global().Count("flb.resilience.events", 1, labels);
  auto& rec = obs::TraceRecorder::Global();
  if (!rec.enabled()) return;
  const double now = session_.clock != nullptr ? session_.clock->Now() : 0.0;
  rec.Instant(rec.RegisterTrack("robust", trainer_), kind, "robust", now,
              {obs::Arg("party", party)});
}

void RobustCoordinator::PublishStatus() {
  obs::RunStatus::Global().UpdateQuarantine(
      health_.QuarantinedCount(), counters_.quarantines, counters_.readmits,
      counters_.deadline_exceeded);
}

}  // namespace flb::fl
