#include "src/fl/robust.h"

#include <cstdlib>
#include <utility>

#include "src/fl/model_io.h"
#include "src/fl/trainer_util.h"
#include "src/net/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::fl {

RobustCoordinator::RobustCoordinator(const FlSession& session,
                                     const TrainConfig& config,
                                     std::string trainer)
    : session_(session), config_(config), trainer_(std::move(trainer)) {
  const char* dir = std::getenv("FLB_CHECKPOINT_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    checkpoint_path_ = std::string(dir) + "/" + trainer_ + ".ckpt";
  }
}

bool RobustCoordinator::IsUp(const std::string& party) const {
  return session_.faults == nullptr || !session_.faults->IsCrashed(party);
}

bool RobustCoordinator::PartyUp(const std::string& party) {
  if (IsUp(party)) return true;
  counters_.crash_dropouts += 1;
  RecordEvent("crash_dropout", party);
  return false;
}

bool RobustCoordinator::ServerDown() const { return !IsUp(kServerName); }

bool RobustCoordinator::AdmitUpload(const std::string& party,
                                    double compute_sec, double send_sec) {
  if (!active()) return true;
  const double scale = session_.faults->StragglerFactor(party);
  const double gate = config_.straggler_deadline_factor;
  const bool past_gate = gate > 0 && scale > gate;
  // The server waits for the straggler only up to the gate, so the extra
  // compute charged to the shared timeline is capped at factor `gate`.
  const double eff = past_gate ? gate : scale;
  if (session_.clock != nullptr && compute_sec > 0 && eff > 1.0) {
    session_.clock->Charge(CostKind::kModelCompute,
                           (eff - 1.0) * compute_sec);
  }
  if (past_gate) {
    counters_.straggler_dropouts += 1;
    RecordEvent("straggler_dropout", party);
    return false;
  }
  if (config_.straggler_deadline_sec > 0 &&
      eff * compute_sec + scale * send_sec > config_.straggler_deadline_sec) {
    counters_.straggler_dropouts += 1;
    RecordEvent("straggler_dropout", party);
    return false;
  }
  return true;
}

bool RobustCoordinator::Recoverable(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded() ||
         status.IsDataLoss();
}

void RobustCoordinator::CountTransportDropout(const std::string& party,
                                              const Status& status) {
  counters_.transport_dropouts += 1;
  RecordEvent(status.IsDataLoss() ? "data_loss_dropout" : "transport_dropout",
              party);
}

void RobustCoordinator::CountSkippedRound() {
  counters_.skipped_rounds += 1;
  RecordEvent("skipped_round", kServerName);
}

void RobustCoordinator::CountPartialRound() {
  counters_.partial_rounds += 1;
  RecordEvent("partial_round", kServerName);
}

void RobustCoordinator::Checkpoint(int epoch,
                                   const std::vector<double>& weights) {
  if (!active()) return;
  last_checkpoint_ = SerializeCheckpoint(epoch, weights);
  if (!checkpoint_path_.empty()) {
    // flb-lint: allow-next-line(FLB005) best-effort; RAM copy is authoritative
    (void)WriteModelFile(checkpoint_path_, last_checkpoint_);
  }
  counters_.checkpoints += 1;
  RecordEvent("checkpoint", kServerName);
}

Result<int> RobustCoordinator::Resume(std::vector<double>* weights) {
  if (!active()) {
    return Status::InvalidArgument("Resume: no fault plan active");
  }
  if (session_.faults->IsCrashed(kServerName)) {
    const double recover = session_.faults->CrashRecoverTime(kServerName);
    if (recover < 0) {
      return Status::Unavailable(
          "RobustCoordinator: server crashed permanently; cannot resume");
    }
    SimClock* clock = session_.clock;
    if (clock != nullptr && recover > clock->Now()) {
      // Training stalls until the server restarts.
      clock->Charge(CostKind::kOther, recover - clock->Now());
    }
  }
  if (last_checkpoint_.empty()) {
    return Status::NotFound("RobustCoordinator: no checkpoint to resume from");
  }
  FLB_ASSIGN_OR_RETURN(TrainCheckpoint ckpt,
                       DeserializeCheckpoint(last_checkpoint_));
  *weights = ckpt.weights;
  // The restarted server lost all in-flight round state.
  if (session_.network != nullptr) session_.network->PurgeInboxes();
  counters_.resumes += 1;
  RecordEvent("resume", kServerName);
  return ckpt.epoch + 1;
}

void RobustCoordinator::RecordEvent(const char* kind,
                                    const std::string& party) {
  obs::MetricsRegistry::Global().Count(
      "flb.fl.robust.events", 1,
      "kind=" + std::string(kind) + ",party=" + party + ",model=" + trainer_);
  auto& rec = obs::TraceRecorder::Global();
  if (!rec.enabled()) return;
  const double now = session_.clock != nullptr ? session_.clock->Now() : 0.0;
  rec.Instant(rec.RegisterTrack("robust", trainer_), kind, "robust", now,
              {obs::Arg("party", party)});
}

}  // namespace flb::fl
