// RobustCoordinator: graceful degradation for the homo trainers under a
// fault plan (DESIGN.md §6).
//
// When the platform attaches a FaultInjector the trainers face crashed
// parties, stragglers past their deadline, and transport errors that the
// ReliableChannel could not hide (kUnavailable / kDeadlineExceeded /
// kDataLoss after retries). The coordinator centralizes the policy:
//
//   * liveness gating — a party down at round start is excluded (crash
//     dropout) and rejoins automatically when it recovers, picking up the
//     current global model from the next broadcast;
//   * straggler gating — a slow party's extra compute time is charged to
//     the timeline only up to the relative deadline factor; past either the
//     relative or the absolute per-round budget the server stops waiting
//     and the party's contribution is dropped (straggler dropout);
//   * partial aggregation — the server averages over the k gradients it
//     actually received (FedAvg renormalization: divide by k, not p);
//   * checkpoint / resume — epoch-boundary model snapshots (model_io
//     "FLBC" format, optionally persisted to FLB_CHECKPOINT_DIR); when the
//     aggregation server crashes, Resume() waits out the downtime on the
//     SimClock, restores the last checkpoint, and purges in-flight
//     messages (server-restart semantics).
//
// Every hook is a no-op when no fault injector is attached, so the healthy
// path keeps byte-for-byte the legacy accounting.

#ifndef FLB_FL_ROBUST_H_
#define FLB_FL_ROBUST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/fl/fl_types.h"
#include "src/fl/party_health.h"

namespace flb::fl {

class RobustCoordinator {
 public:
  RobustCoordinator(const FlSession& session, const TrainConfig& config,
                    std::string trainer);

  // True when a fault plan is active; every other method is a cheap no-op
  // otherwise.
  bool active() const { return session_.faults != nullptr; }

  // The parties whose loss aborts the round outright (homo: the
  // aggregation server; hetero LR: guest + arbiter; hetero NN: all three;
  // SBT: the guest). Checkpoint/resume and CriticalDown key off this set.
  // Default: {kServerName}.
  void set_critical_parties(std::vector<std::string> parties);

  // Liveness at the current simulated time, without dropout accounting
  // (broadcast/decrypt phases re-check parties already counted at upload).
  bool IsUp(const std::string& party) const;
  // Liveness at round start; a down party counts as one crash dropout.
  bool PartyUp(const std::string& party);
  // Round-start gate: liveness (PartyUp) plus the PartyHealth quarantine.
  // A quarantined party is skipped for the round (quarantine_skip).
  bool AdmitParty(const std::string& party);
  // Outcome of one exchange with a party, feeding the health EWMAs;
  // `response_sec` is the simulated compute+transfer time attributed to it.
  void RecordPartyOutcome(const std::string& party, bool ok,
                          double response_sec);
  bool ServerDown() const;
  // Any critical party down at the current simulated time.
  bool CriticalDown() const;

  // The run-wide deadline gate (session.deadline; OK when unbounded).
  // Trainers call this at round boundaries; expiry is counted, recorded,
  // and surfaced as typed kDeadlineExceeded. Works with or without a
  // fault plan — a deadline alone is enough to bound a healthy run.
  Status CheckDeadline(const char* what);

  // Straggler model for one party's upload: charges the extra compute its
  // slow host adds on top of the already-charged healthy `compute_sec`
  // (capped at the relative deadline gate — the server stops waiting
  // there), then applies both deadline gates to the slowed compute plus
  // the slowed `send_sec` transfer estimate. Returns false when the party
  // missed the round deadline (caller skips the upload).
  bool AdmitUpload(const std::string& party, double compute_sec,
                   double send_sec);

  // Transport errors the trainers absorb as a dropout instead of aborting.
  static bool Recoverable(const Status& status);
  void CountTransportDropout(const std::string& party, const Status& status);
  void CountSkippedRound();
  void CountPartialRound();

  // Snapshots the model at an epoch boundary (epoch = -1 for the initial
  // weights). No-op when inactive.
  void Checkpoint(int epoch, const std::vector<double>& weights);

  // Critical-party crash recovery: waits out remaining downtime of every
  // crashed critical party on the SimClock (kUnavailable if any never
  // recovers), restores the last checkpoint into `weights`, purges
  // in-flight messages, and returns the first epoch to re-run.
  Result<int> Resume(std::vector<double>* weights);

  const RobustnessCounters& counters() const { return counters_; }

 private:
  void RecordEvent(const char* kind, const std::string& party);
  // Mirrors the quarantine/deadline counters into obs::RunStatus.
  void PublishStatus();

  FlSession session_;
  TrainConfig config_;
  std::string trainer_;
  std::string checkpoint_path_;  // empty = in-memory only
  std::vector<uint8_t> last_checkpoint_;
  std::vector<std::string> critical_parties_;
  PartyHealth health_;
  RobustnessCounters counters_;
};

}  // namespace flb::fl

#endif  // FLB_FL_ROBUST_H_
