// Small shared helpers for the federated trainers: party naming, per-epoch
// clock attribution, convergence bookkeeping.

#ifndef FLB_FL_TRAINER_UTIL_H_
#define FLB_FL_TRAINER_UTIL_H_

#include <cmath>
#include <limits>
#include <string>

#include "src/common/sim_clock.h"
#include "src/core/he_service.h"
#include "src/fl/fl_types.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"
#include "src/obs/metrics.h"
#include "src/obs/run_status.h"
#include "src/obs/trace.h"

namespace flb::fl {

inline std::string PartyName(int p) { return "party" + std::to_string(p); }
inline constexpr char kServerName[] = "server";
inline constexpr char kGuestName[] = "guest";
inline constexpr char kArbiterName[] = "arbiter";
inline std::string HostName(int h) { return "host" + std::to_string(h); }

// Snapshot of the simulated clock + network counters, used to attribute
// per-epoch component times (Table VI's decomposition).
struct ClockSnapshot {
  double total = 0, he = 0, comm = 0;
  uint64_t bytes = 0;

  static ClockSnapshot Take(const SimClock* clock, const net::Network* net) {
    ClockSnapshot s;
    if (clock != nullptr) {
      s.total = clock->Now();
      s.he = clock->HeSeconds();
      s.comm = clock->CommSeconds();
    }
    if (net != nullptr) s.bytes = net->stats().bytes;
    return s;
  }
};

// Fills the timing fields of an EpochRecord from two snapshots.
inline void FillEpochTiming(const ClockSnapshot& before,
                            const ClockSnapshot& after, EpochRecord* record) {
  record->sim_seconds_cum = after.total;
  record->epoch_seconds = after.total - before.total;
  record->he_seconds = after.he - before.he;
  record->comm_seconds = after.comm - before.comm;
  record->other_seconds =
      record->epoch_seconds - record->he_seconds - record->comm_seconds;
  record->comm_bytes = after.bytes - before.bytes;
}

// Records the finished epoch on the trainer's trace track (span args carry
// the Table VI component breakdown), in the metrics registry, and in the
// live RunStatus served by /status. Call right after FillEpochTiming.
//
// The status snapshot is taken here — on the trainer thread — because
// HeService's op counters are plain fields only this thread may read;
// RunStatus gets values, never pointers, so a concurrent scrape can't race
// the trainer (see run_status.h).
inline void TraceEpoch(const char* trainer, const EpochRecord& record,
                       const FlSession& session, int max_epochs) {
  auto& metrics = obs::MetricsRegistry::Global();
  const std::string labels = std::string("model=") + trainer;
  metrics.Count("flb.fl.epochs", 1, labels);
  metrics.Observe("flb.fl.epoch_seconds", record.epoch_seconds, labels);

  obs::EpochStatus epoch_status;
  epoch_status.epoch = record.epoch;
  epoch_status.max_epochs = max_epochs;
  epoch_status.loss = record.loss;
  epoch_status.accuracy = record.accuracy;
  epoch_status.sim_seconds = record.sim_seconds_cum;
  epoch_status.comm_bytes = record.comm_bytes;
  obs::HeOpsStatus he_status;
  if (session.he != nullptr) {
    const core::HeOpCounts ops = session.he->op_counts();
    he_status.encrypts = ops.encrypts;
    he_status.decrypts = ops.decrypts;
    he_status.hom_adds = ops.hom_adds;
    he_status.scalar_muls = ops.scalar_muls;
    he_status.values_encrypted = ops.values_encrypted;
    he_status.values_decrypted = ops.values_decrypted;
  }
  obs::RunStatus::Global().UpdateEpoch(epoch_status, he_status);

  if (session.faults != nullptr) {
    const net::FaultStats fs = session.faults->stats();
    obs::FaultStatus fault_status;
    fault_status.injected = fs.TotalInjected();
    fault_status.drops = fs.drops + fs.partition_drops + fs.crash_drops;
    fault_status.duplicates = fs.duplicates;
    fault_status.reorders = fs.reorders;
    fault_status.corruptions = fs.corruptions;
    fault_status.delays = fs.delays;
    obs::ChannelStatus channel_status;
    if (session.network != nullptr &&
        session.network->reliable_channel() != nullptr) {
      const net::ChannelStats cs =
          session.network->reliable_channel()->stats();
      channel_status.retransmits = cs.retransmits;
      channel_status.timeouts = cs.timeouts;
      channel_status.crc_failures = cs.crc_failures;
    }
    obs::RunStatus::Global().UpdateFaults(fault_status, channel_status);
  }

  auto& rec = obs::TraceRecorder::Global();
  if (!rec.enabled()) return;
  rec.Span(rec.RegisterTrack("trainer", trainer),
           "epoch " + std::to_string(record.epoch), "epoch",
           record.sim_seconds_cum - record.epoch_seconds,
           record.sim_seconds_cum,
           {obs::Arg("he_seconds", record.he_seconds),
            obs::Arg("comm_seconds", record.comm_seconds),
            obs::Arg("other_seconds", record.other_seconds),
            obs::Arg("comm_bytes", record.comm_bytes),
            obs::Arg("loss", record.loss),
            obs::Arg("accuracy", record.accuracy)});
}

}  // namespace flb::fl

#endif  // FLB_FL_TRAINER_UTIL_H_
