// Small shared helpers for the federated trainers: party naming, per-epoch
// clock attribution, convergence bookkeeping.

#ifndef FLB_FL_TRAINER_UTIL_H_
#define FLB_FL_TRAINER_UTIL_H_

#include <cmath>
#include <limits>
#include <string>

#include "src/common/sim_clock.h"
#include "src/fl/fl_types.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::fl {

inline std::string PartyName(int p) { return "party" + std::to_string(p); }
inline constexpr char kServerName[] = "server";
inline constexpr char kGuestName[] = "guest";
inline constexpr char kArbiterName[] = "arbiter";
inline std::string HostName(int h) { return "host" + std::to_string(h); }

// Snapshot of the simulated clock + network counters, used to attribute
// per-epoch component times (Table VI's decomposition).
struct ClockSnapshot {
  double total = 0, he = 0, comm = 0;
  uint64_t bytes = 0;

  static ClockSnapshot Take(const SimClock* clock, const net::Network* net) {
    ClockSnapshot s;
    if (clock != nullptr) {
      s.total = clock->Now();
      s.he = clock->HeSeconds();
      s.comm = clock->CommSeconds();
    }
    if (net != nullptr) s.bytes = net->stats().bytes;
    return s;
  }
};

// Fills the timing fields of an EpochRecord from two snapshots.
inline void FillEpochTiming(const ClockSnapshot& before,
                            const ClockSnapshot& after, EpochRecord* record) {
  record->sim_seconds_cum = after.total;
  record->epoch_seconds = after.total - before.total;
  record->he_seconds = after.he - before.he;
  record->comm_seconds = after.comm - before.comm;
  record->other_seconds =
      record->epoch_seconds - record->he_seconds - record->comm_seconds;
  record->comm_bytes = after.bytes - before.bytes;
}

// Records the finished epoch on the trainer's trace track (span args carry
// the Table VI component breakdown) and in the metrics registry. Call right
// after FillEpochTiming.
inline void TraceEpoch(const char* trainer, const EpochRecord& record) {
  auto& metrics = obs::MetricsRegistry::Global();
  const std::string labels = std::string("model=") + trainer;
  metrics.Count("flb.fl.epochs", 1, labels);
  metrics.Observe("flb.fl.epoch_seconds", record.epoch_seconds, labels);
  auto& rec = obs::TraceRecorder::Global();
  if (!rec.enabled()) return;
  rec.Span(rec.RegisterTrack("trainer", trainer),
           "epoch " + std::to_string(record.epoch), "epoch",
           record.sim_seconds_cum - record.epoch_seconds,
           record.sim_seconds_cum,
           {obs::Arg("he_seconds", record.he_seconds),
            obs::Arg("comm_seconds", record.comm_seconds),
            obs::Arg("other_seconds", record.other_seconds),
            obs::Arg("comm_bytes", record.comm_bytes),
            obs::Arg("loss", record.loss),
            obs::Arg("accuracy", record.accuracy)});
}

}  // namespace flb::fl

#endif  // FLB_FL_TRAINER_UTIL_H_
