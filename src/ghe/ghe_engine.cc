#include "src/ghe/ghe_engine.h"

#include <algorithm>
#include <array>
#include <utility>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/crypto/montgomery.h"
#include "src/ghe/parallel_montgomery.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::ghe {

namespace {

// Serialized size of `count` values of `s` limbs each.
size_t BatchBytes(int64_t count, size_t s) {
  return static_cast<size_t>(count) * s * sizeof(uint32_t);
}

Status CheckSameSize(size_t a, size_t b, const char* what) {
  if (a != b) {
    return Status::InvalidArgument(std::string(what) +
                                   ": batch sizes differ");
  }
  return Status::OK();
}

// Staging buffers are rounded to page granularity so repeated chunked
// batches of slightly different sizes reuse pool slots instead of
// fragmenting the device heap.
size_t RoundUpPage(size_t bytes) {
  constexpr size_t kPage = 4096;
  return (bytes + kPage - 1) / kPage * kPage;
}

// Elements in chunk k of `count` split into `nchunks` near-equal pieces.
int64_t ChunkCount(int64_t count, int nchunks, int k) {
  const int64_t base = count / nchunks;
  const int64_t rem = count % nchunks;
  return base + (k < rem ? 1 : 0);
}

// Makespan of the chunked schedule under the device's async scheduling
// rule: in-order streams, one compute engine, one DMA engine per PCIe
// direction (shared when the link is half duplex). chunks[k] holds the
// {h2d, kernel, d2h} durations of chunk k; chunks are issued round-robin.
double PipelinedMakespan(const std::vector<std::array<double, 3>>& chunks,
                         int streams, bool full_duplex) {
  std::vector<double> ready(static_cast<size_t>(streams), 0.0);
  double h2d_free = 0.0, compute_free = 0.0, d2h_free = 0.0;
  double makespan = 0.0;
  for (size_t k = 0; k < chunks.size(); ++k) {
    double& r = ready[k % streams];
    double start = std::max(r, h2d_free);
    if (!full_duplex) start = std::max(start, d2h_free);
    r = start + chunks[k][0];
    h2d_free = r;
    if (!full_duplex) d2h_free = r;

    start = std::max(r, compute_free);
    r = start + chunks[k][1];
    compute_free = r;

    start = std::max(r, d2h_free);
    if (!full_duplex) start = std::max(start, h2d_free);
    r = start + chunks[k][2];
    d2h_free = r;
    if (!full_duplex) h2d_free = r;

    makespan = std::max(makespan, r);
  }
  return makespan;
}

}  // namespace

uint64_t MontMulLimbOps(size_t s) {
  // CIOS: per outer word, s mul-adds (multiply step) + s mul-adds (reduce
  // step) + ~6 bookkeeping ops; plus the conditional subtraction.
  return static_cast<uint64_t>(s) * (2 * s + 6) + s;
}

uint64_t EstimateModPowMontMuls(int exp_bits) {
  if (exp_bits <= 0) return 1;
  const int w = crypto::ChooseWindowBits(exp_bits);
  const uint64_t squarings = exp_bits;
  const uint64_t window_muls = exp_bits / (w + 1) + 1;
  const uint64_t table = (uint64_t{1} << (w - 1)) + 1;
  const uint64_t conversions = 2;  // ToMont / FromMont
  return squarings + window_muls + table + conversions;
}

GheEngine::GheEngine(std::shared_ptr<gpusim::Device> device, GheConfig config)
    : device_(std::move(device)), config_(config) {
  FLB_CHECK(device_ != nullptr);
  FLB_CHECK(config_.words_per_thread >= 1);
}

int GheEngine::ThreadsPerElement(size_t s) const {
  const int target = std::max<int>(
      1, static_cast<int>(s) / config_.words_per_thread);
  return LargestValidThreadCount(s, target);
}

gpusim::KernelDemand GheEngine::DemandFor(size_t s, int threads_per_elt) const {
  gpusim::KernelDemand demand;
  const int x = static_cast<int>(s) / std::max(threads_per_elt, 1);
  // Per-thread registers: the operand slices (x words each of a, b, n, t)
  // plus each thread's share of the sliding-window table, which grows with
  // the operand width — the reason SM occupancy decays at larger key sizes
  // (paper Fig. 6 commentary).
  demand.registers_per_thread = config_.base_registers +
                                config_.registers_per_word * x +
                                static_cast<int>(s) / 4;
  demand.divergent_branches = config_.divergent_branches;
  demand.shared_mem_per_block = 0;
  return demand;
}

void GheEngine::set_streams(int streams) {
  config_.streams = std::max(1, streams);
}

void GheEngine::set_chunks_per_stream(int chunks) {
  config_.chunks_per_stream = std::max(1, chunks);
}

common::ThreadPool& GheEngine::host_pool() const {
  return config_.host_pool != nullptr ? *config_.host_pool
                                      : common::ThreadPool::Global();
}

std::function<void()> GheEngine::InstrumentBody(const char* name,
                                                std::function<void()> body) {
  if (!body) return body;
  return [this, name, inner = std::move(body)] {
    common::ThreadPool& tp = host_pool();
    const auto before = tp.stats();
    WallTimer timer;
    inner();
    const double wall = timer.ElapsedSeconds();
    const auto after = tp.stats();
    auto& metrics = obs::MetricsRegistry::Global();
    const std::string label = std::string("op=") + name;
    metrics.Count("flb.host.pool_tasks",
                  static_cast<double>(after.tasks - before.tasks), label);
    metrics.Count("flb.host.pool_steals",
                  static_cast<double>(after.steals - before.steals), label);
    metrics.Observe("flb.host.batch_wall_seconds", wall, label);
    metrics.Set("flb.host.threads", tp.num_threads());
    auto& rec = obs::TraceRecorder::Global();
    if (rec.enabled()) {
      rec.Instant(rec.RegisterTrack("host", "threads"), "host.batch", "host",
                  device_->TimelineNow(),
                  {obs::Arg("op", name), obs::Arg("wall_seconds", wall),
                   obs::Arg("threads", tp.num_threads())});
    }
  };
}

Result<gpusim::LaunchResult> GheEngine::LaunchBatch(
    const char* name, int64_t count, size_t s, uint64_t limb_ops_per_elt,
    size_t bytes_in, size_t bytes_out, std::function<void()> body) {
  if (count <= 0) {
    return Status::InvalidArgument(std::string(name) + ": empty batch");
  }
  body = InstrumentBody(name, std::move(body));
  const int tpe = ThreadsPerElement(s);
  gpusim::KernelLaunch launch;
  launch.name = name;
  launch.total_threads = count * tpe;
  launch.ops_per_thread = limb_ops_per_elt / std::max(tpe, 1);
  launch.demand = DemandFor(s, tpe);

  const int streams = std::max(1, config_.streams);
  if (streams > 1 && count >= streams) {
    const int nchunks = static_cast<int>(std::min<int64_t>(
        count,
        static_cast<int64_t>(streams) *
            std::max(1, config_.chunks_per_stream)));
    // What the one-launch synchronous path would cost.
    FLB_ASSIGN_OR_RETURN(const gpusim::LaunchResult serial_est,
                         device_->EstimateLaunch(launch));
    const double serial_seconds = device_->TransferSeconds(bytes_in) +
                                  serial_est.sim_seconds +
                                  device_->TransferSeconds(bytes_out);
    bool chunk = true;
    double pipelined_seconds = 0.0;
    if (config_.adaptive_chunking) {
      // Price the chunked schedule first: per-transfer PCIe latency and
      // per-chunk launch latency mean small or kernel-bound batches lose
      // by splitting, so only chunk when the pipeline is strictly faster.
      std::vector<std::array<double, 3>> plan;
      plan.reserve(static_cast<size_t>(nchunks));
      int64_t done = 0;
      size_t in_done = 0, out_done = 0;
      for (int k = 0; k < nchunks; ++k) {
        const int64_t n = ChunkCount(count, nchunks, k);
        if (n == 0) continue;
        const int64_t next = done + n;
        const size_t in_next = bytes_in * next / count;
        const size_t out_next = bytes_out * next / count;
        gpusim::KernelLaunch piece = launch;
        piece.total_threads = n * tpe;
        FLB_ASSIGN_OR_RETURN(const gpusim::LaunchResult est,
                             device_->EstimateLaunch(piece));
        plan.push_back({device_->TransferSeconds(in_next - in_done),
                        est.sim_seconds,
                        device_->TransferSeconds(out_next - out_done)});
        done = next;
        in_done = in_next;
        out_done = out_next;
      }
      pipelined_seconds = PipelinedMakespan(plan, streams,
                                            device_->spec().pcie_full_duplex);
      chunk = pipelined_seconds < serial_seconds;
    }
    // The scheduler's pricing decision, visible on the trace timeline and
    // countable in the metrics snapshot.
    auto& rec = obs::TraceRecorder::Global();
    if (rec.enabled()) {
      rec.Instant(rec.RegisterTrack("ghe", "scheduler"), "ghe.chunk_decision",
                  "ghe", device_->TimelineNow(),
                  {obs::Arg("op", name), obs::Arg("count", count),
                   obs::Arg("serial_seconds", serial_seconds),
                   obs::Arg("pipelined_seconds", pipelined_seconds),
                   obs::Arg("adaptive", config_.adaptive_chunking),
                   obs::Arg("chunked", chunk)});
    }
    obs::MetricsRegistry::Global().Count(
        "flb.ghe.chunk_decisions", 1,
        chunk ? "choice=chunked" : "choice=serial");
    if (chunk) {
      return LaunchBatchAsync(launch, count, tpe, bytes_in, bytes_out,
                              serial_seconds, std::move(body));
    }
  }

  // Synchronous path: H2D, one kernel, D2H, each charged immediately.
  const double in_sec = device_->CopyToDevice(bytes_in);
  launch.body = std::move(body);
  FLB_ASSIGN_OR_RETURN(last_launch_, device_->Launch(launch));
  const double out_sec = device_->CopyFromDevice(bytes_out);

  last_batch_ = GheBatchStats{};
  last_batch_.makespan_seconds = in_sec + last_launch_.sim_seconds + out_sec;
  last_batch_.kernel_busy_seconds = last_launch_.sim_seconds;
  last_batch_.transfer_busy_seconds = in_sec + out_sec;
  last_batch_.serial_seconds = last_batch_.makespan_seconds;
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.Count("flb.ghe.batches", 1, "path=serial");
  metrics.Observe("flb.ghe.batch_makespan_seconds",
                  last_batch_.makespan_seconds, "path=serial");
  return last_launch_;
}

Result<gpusim::LaunchResult> GheEngine::LaunchBatchAsync(
    const gpusim::KernelLaunch& proto, int64_t count, int64_t tpe,
    size_t bytes_in, size_t bytes_out, double serial_seconds,
    std::function<void()> body) {
  const int streams = std::max(1, config_.streams);
  // Mirror of LaunchBatch's chunk plan: the pricing and the execution must
  // split the batch identically or the adaptive decision prices the wrong
  // schedule.
  const int nchunks = static_cast<int>(std::min<int64_t>(
      count,
      static_cast<int64_t>(streams) * std::max(1, config_.chunks_per_stream)));
  while (static_cast<int>(stream_ids_.size()) < streams) {
    stream_ids_.push_back(stream_ids_.empty() ? gpusim::kDefaultStream
                                              : device_->CreateStream());
  }

  // Per-stream staging buffers: input + output slices of the largest chunk,
  // page-rounded so successive batches reuse the same pool slots.
  auto& rm = device_->resource_manager();
  const int64_t max_chunk = ChunkCount(count, nchunks, 0);
  const size_t stage_bytes = RoundUpPage(
      (bytes_in + bytes_out) * static_cast<size_t>(max_chunk) /
          static_cast<size_t>(count) +
      1);
  std::vector<gpusim::ResourceManager::DeviceAddress> staging;
  staging.reserve(static_cast<size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    FLB_ASSIGN_OR_RETURN(auto addr, rm.Alloc(stage_bytes));
    staging.push_back(addr);
  }

  gpusim::LaunchResult agg{};
  double weight = 0.0, occ_sum = 0.0, util_sum = 0.0;
  double kernel_busy = 0.0, transfer_busy = 0.0;
  int chunks = 0;
  int64_t done = 0;
  size_t in_done = 0, out_done = 0;
  for (int k = 0; k < nchunks; ++k) {
    const int64_t n = ChunkCount(count, nchunks, k);
    if (n == 0) continue;
    const int64_t next = done + n;
    const size_t in_next = bytes_in * next / count;
    const size_t out_next = bytes_out * next / count;
    const gpusim::StreamId sid = stream_ids_[static_cast<size_t>(k % streams)];

    FLB_ASSIGN_OR_RETURN(const gpusim::CopyResult h2d,
                         device_->CopyToDeviceAsync(in_next - in_done, sid));
    gpusim::KernelLaunch piece = proto;
    piece.total_threads = n * tpe;
    // The host body computes the whole batch in one pass; it rides the
    // first chunk. Arithmetic is immediate either way — only the modeled
    // schedule is deferred — so chunking cannot change the results.
    if (chunks == 0) piece.body = std::move(body);
    FLB_ASSIGN_OR_RETURN(const gpusim::LaunchResult r,
                         device_->LaunchAsync(piece, sid));
    FLB_ASSIGN_OR_RETURN(const gpusim::CopyResult d2h,
                         device_->CopyFromDeviceAsync(out_next - out_done, sid));

    agg.waves += r.waves;
    agg.block_threads = r.block_threads;
    agg.grid_blocks += r.grid_blocks;
    agg.limiting_resource = r.limiting_resource;
    occ_sum += r.occupancy * r.sim_seconds;
    util_sum += r.sm_utilization * r.sim_seconds;
    weight += r.sim_seconds;
    kernel_busy += r.sim_seconds;
    transfer_busy += h2d.seconds + d2h.seconds;
    ++chunks;
    done = next;
    in_done = in_next;
    out_done = out_next;
  }

  const double makespan = device_->Synchronize();
  for (auto addr : staging) {
    FLB_RETURN_IF_ERROR(rm.Free(addr));
  }

  agg.sim_seconds = makespan;
  agg.end_seconds = makespan;
  agg.occupancy = weight > 0.0 ? occ_sum / weight : 0.0;
  agg.sm_utilization = weight > 0.0 ? util_sum / weight : 0.0;
  last_launch_ = agg;

  last_batch_ = GheBatchStats{};
  last_batch_.chunks = chunks;
  last_batch_.streams = streams;
  last_batch_.async = true;
  last_batch_.makespan_seconds = makespan;
  last_batch_.kernel_busy_seconds = kernel_busy;
  last_batch_.transfer_busy_seconds = transfer_busy;
  last_batch_.serial_seconds = serial_seconds;
  last_batch_.overlap_saved_seconds = serial_seconds - makespan;
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.Count("flb.ghe.batches", 1, "path=chunked");
  metrics.Count("flb.ghe.chunks", chunks, "path=chunked");
  metrics.Count("flb.ghe.overlap_saved_seconds",
                last_batch_.overlap_saved_seconds, "path=chunked");
  metrics.Observe("flb.ghe.batch_makespan_seconds", makespan, "path=chunked");
  return last_launch_;
}

// ---------------------------------------------------------------------------
// Vector arithmetic
// ---------------------------------------------------------------------------

Result<std::vector<BigInt>> GheEngine::Add(const std::vector<BigInt>& a,
                                           const std::vector<BigInt>& b) {
  FLB_RETURN_IF_ERROR(CheckSameSize(a.size(), b.size(), "GheEngine::Add"));
  if (a.empty()) return std::vector<BigInt>{};
  size_t s = 1;
  for (const auto& v : a) s = std::max(s, v.WordCount());
  for (const auto& v : b) s = std::max(s, v.WordCount());
  std::vector<BigInt> out(a.size());
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.add", a.size(), s, /*limb_ops_per_elt=*/s,
                  BatchBytes(2 * a.size(), s), BatchBytes(a.size(), s + 1),
                  [&] {
                    host_pool().ParallelFor(
                        static_cast<int64_t>(a.size()),
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            out[i] = BigInt::Add(a[i], b[i]);
                          }
                        });
                  })
          .status());
  return out;
}

Result<std::vector<BigInt>> GheEngine::Sub(const std::vector<BigInt>& a,
                                           const std::vector<BigInt>& b) {
  FLB_RETURN_IF_ERROR(CheckSameSize(a.size(), b.size(), "GheEngine::Sub"));
  if (a.empty()) return std::vector<BigInt>{};
  size_t s = 1;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) {
      return Status::OutOfRange("GheEngine::Sub: unsigned underflow at index " +
                                std::to_string(i));
    }
    s = std::max(s, a[i].WordCount());
  }
  std::vector<BigInt> out(a.size());
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.sub", a.size(), s, s, BatchBytes(2 * a.size(), s),
                  BatchBytes(a.size(), s),
                  [&] {
                    host_pool().ParallelFor(
                        static_cast<int64_t>(a.size()),
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            out[i] = BigInt::Sub(a[i], b[i]);
                          }
                        });
                  })
          .status());
  return out;
}

Result<std::vector<BigInt>> GheEngine::Mul(const std::vector<BigInt>& a,
                                           const std::vector<BigInt>& b) {
  FLB_RETURN_IF_ERROR(CheckSameSize(a.size(), b.size(), "GheEngine::Mul"));
  if (a.empty()) return std::vector<BigInt>{};
  size_t s = 1;
  for (const auto& v : a) s = std::max(s, v.WordCount());
  for (const auto& v : b) s = std::max(s, v.WordCount());
  std::vector<BigInt> out(a.size());
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.mul", a.size(), s, /*limb_ops_per_elt=*/s * s,
                  BatchBytes(2 * a.size(), s), BatchBytes(a.size(), 2 * s),
                  [&] {
                    host_pool().ParallelFor(
                        static_cast<int64_t>(a.size()),
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            out[i] = BigInt::Mul(a[i], b[i]);
                          }
                        });
                  })
          .status());
  return out;
}

Result<std::vector<BigInt>> GheEngine::Div(const std::vector<BigInt>& a,
                                           const std::vector<BigInt>& b) {
  FLB_RETURN_IF_ERROR(CheckSameSize(a.size(), b.size(), "GheEngine::Div"));
  if (a.empty()) return std::vector<BigInt>{};
  size_t s = 1;
  for (const auto& v : a) s = std::max(s, v.WordCount());
  std::vector<BigInt> out(a.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.div", a.size(), s, /*limb_ops_per_elt=*/2 * s * s,
                  BatchBytes(2 * a.size(), s), BatchBytes(a.size(), s),
                  [&] {
                    first_error = common::ParallelForEachStatus(
                        host_pool(), a.size(), [&](size_t i) -> Status {
                          FLB_ASSIGN_OR_RETURN(out[i],
                                               BigInt::Div(a[i], b[i]));
                          return Status::OK();
                        });
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::Mod(const std::vector<BigInt>& a,
                                           const BigInt& n) {
  if (a.empty()) return std::vector<BigInt>{};
  if (n.IsZero()) return Status::ArithmeticError("GheEngine::Mod: n == 0");
  const size_t s = std::max<size_t>(n.WordCount(), 1);
  std::vector<BigInt> out(a.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.mod", a.size(), s, /*limb_ops_per_elt=*/2 * s * s,
                  BatchBytes(a.size(), 2 * s), BatchBytes(a.size(), s),
                  [&] {
                    first_error = common::ParallelForEachStatus(
                        host_pool(), a.size(), [&](size_t i) -> Status {
                          FLB_ASSIGN_OR_RETURN(out[i], BigInt::Mod(a[i], n));
                          return Status::OK();
                        });
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::ModInv(const std::vector<BigInt>& a,
                                              const BigInt& n) {
  if (a.empty()) return std::vector<BigInt>{};
  const size_t s = std::max<size_t>(n.WordCount(), 1);
  std::vector<BigInt> out(a.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.mod_inv", a.size(), s,
                  // Extended Euclid: ~2*bits iterations of O(s) work.
                  /*limb_ops_per_elt=*/static_cast<uint64_t>(4) * s * s * 32,
                  BatchBytes(a.size(), s), BatchBytes(a.size(), s),
                  [&] {
                    first_error = common::ParallelForEachStatus(
                        host_pool(), a.size(), [&](size_t i) -> Status {
                          FLB_ASSIGN_OR_RETURN(out[i],
                                               BigInt::ModInverse(a[i], n));
                          return Status::OK();
                        });
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::ModMul(const std::vector<BigInt>& a,
                                              const std::vector<BigInt>& b,
                                              const BigInt& n) {
  FLB_RETURN_IF_ERROR(CheckSameSize(a.size(), b.size(), "GheEngine::ModMul"));
  if (a.empty()) return std::vector<BigInt>{};
  FLB_ASSIGN_OR_RETURN(auto ctx, crypto::MontgomeryContext::Create(n));
  const size_t s = ctx.num_limbs();
  std::vector<BigInt> out(a.size());
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.mod_mul", a.size(), s,
                  /*limb_ops_per_elt=*/3 * MontMulLimbOps(s),
                  BatchBytes(2 * a.size(), s), BatchBytes(a.size(), s),
                  [&] {
                    host_pool().ParallelFor(
                        static_cast<int64_t>(a.size()),
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            out[i] = ctx.ModMul(a[i] % n, b[i] % n);
                          }
                        });
                  })
          .status());
  return out;
}

Result<std::vector<BigInt>> GheEngine::ModPow(const std::vector<BigInt>& x,
                                              const std::vector<BigInt>& p,
                                              const BigInt& n) {
  FLB_RETURN_IF_ERROR(CheckSameSize(x.size(), p.size(), "GheEngine::ModPow"));
  if (x.empty()) return std::vector<BigInt>{};
  FLB_ASSIGN_OR_RETURN(auto ctx, crypto::MontgomeryContext::Create(n));
  const size_t s = ctx.num_limbs();
  int max_exp_bits = 1;
  for (const auto& e : p) max_exp_bits = std::max(max_exp_bits, e.BitLength());
  std::vector<BigInt> out(x.size());
  FLB_RETURN_IF_ERROR(
      LaunchBatch(
          "ghe.mod_pow", x.size(), s,
          EstimateModPowMontMuls(max_exp_bits) * MontMulLimbOps(s),
          BatchBytes(2 * x.size(), s), BatchBytes(x.size(), s),
          [&] {
            host_pool().ParallelFor(static_cast<int64_t>(x.size()),
                                    [&](int64_t lo, int64_t hi) {
                                      for (int64_t i = lo; i < hi; ++i) {
                                        out[i] = ctx.ModPow(x[i], p[i]);
                                      }
                                    });
          })
          .status());
  return out;
}

// ---------------------------------------------------------------------------
// Paillier / RSA batches
// ---------------------------------------------------------------------------

Result<std::vector<BigInt>> GheEngine::PaillierEncrypt(
    const crypto::PaillierContext& ctx, const std::vector<BigInt>& ms,
    Rng& rng) {
  if (ms.empty()) return std::vector<BigInt>{};
  const int key_bits = ctx.pub().key_bits;
  const size_t s2 = ctx.pub().CiphertextWords();
  std::vector<BigInt> out(ms.size());
  Status first_error;
  // r^n mod n^2 dominates: an n-bit exponent over 2k-bit operands, plus the
  // (n+1)^m fast path multiply.
  const uint64_t ops =
      (EstimateModPowMontMuls(key_bits) + 3) * MontMulLimbOps(s2);
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.paillier_encrypt", ms.size(), s2, ops,
                  BatchBytes(ms.size(), s2 / 2), BatchBytes(ms.size(), s2),
                  [&] {
                    auto r = ctx.EncryptBatch(ms, rng, &host_pool());
                    if (!r.ok()) {
                      first_error = r.status();
                      return;
                    }
                    out = std::move(r).value();
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::PaillierDecrypt(
    const crypto::PaillierContext& ctx, const std::vector<BigInt>& cs) {
  if (cs.empty()) return std::vector<BigInt>{};
  const int key_bits = ctx.pub().key_bits;
  const size_t s2 = ctx.pub().CiphertextWords();
  // CRT: two half-width exponentiations over half-width moduli.
  const uint64_t ops =
      2 * EstimateModPowMontMuls(key_bits / 2) * MontMulLimbOps(s2 / 2);
  std::vector<BigInt> out(cs.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.paillier_decrypt", cs.size(), s2, ops,
                  BatchBytes(cs.size(), s2), BatchBytes(cs.size(), s2 / 2),
                  [&] {
                    auto r = ctx.DecryptBatch(cs, &host_pool());
                    if (!r.ok()) {
                      first_error = r.status();
                      return;
                    }
                    out = std::move(r).value();
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::PaillierAdd(
    const crypto::PaillierContext& ctx, const std::vector<BigInt>& c1,
    const std::vector<BigInt>& c2) {
  FLB_RETURN_IF_ERROR(
      CheckSameSize(c1.size(), c2.size(), "GheEngine::PaillierAdd"));
  if (c1.empty()) return std::vector<BigInt>{};
  const size_t s2 = ctx.pub().CiphertextWords();
  std::vector<BigInt> out(c1.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.paillier_add", c1.size(), s2,
                  /*limb_ops_per_elt=*/3 * MontMulLimbOps(s2),
                  BatchBytes(2 * c1.size(), s2), BatchBytes(c1.size(), s2),
                  [&] {
                    auto c = ctx.AddBatch(c1, c2, &host_pool());
                    if (!c.ok()) {
                      first_error = c.status();
                      return;
                    }
                    out = std::move(c).value();
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::PaillierAddPlain(
    const crypto::PaillierContext& ctx, const std::vector<BigInt>& cs,
    const std::vector<BigInt>& ks) {
  FLB_RETURN_IF_ERROR(
      CheckSameSize(cs.size(), ks.size(), "GheEngine::PaillierAddPlain"));
  if (cs.empty()) return std::vector<BigInt>{};
  const size_t s2 = ctx.pub().CiphertextWords();
  std::vector<BigInt> out(cs.size());
  Status first_error;
  // g = n+1 path: one multiply + one ModMul per element.
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.paillier_add_plain", cs.size(), s2,
                  /*limb_ops_per_elt=*/4 * MontMulLimbOps(s2),
                  BatchBytes(cs.size(), s2) + BatchBytes(ks.size(), s2 / 2),
                  BatchBytes(cs.size(), s2),
                  [&] {
                    auto c = ctx.AddPlainBatch(cs, ks, &host_pool());
                    if (!c.ok()) {
                      first_error = c.status();
                      return;
                    }
                    out = std::move(c).value();
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::PaillierScalarMul(
    const crypto::PaillierContext& ctx, const std::vector<BigInt>& cs,
    const std::vector<BigInt>& ks) {
  FLB_RETURN_IF_ERROR(
      CheckSameSize(cs.size(), ks.size(), "GheEngine::PaillierScalarMul"));
  if (cs.empty()) return std::vector<BigInt>{};
  const size_t s2 = ctx.pub().CiphertextWords();
  // Effective exponent width: scalars above n/2 encode negatives -(n - k)
  // and run through the ciphertext-inverse fast path, so their cost is the
  // width of n - k, not of k.
  const BigInt half_n = BigInt::ShiftRight(ctx.pub().n, 1);
  int max_exp_bits = 1;
  for (const auto& k : ks) {
    const int eff = k > half_n ? BigInt::Sub(ctx.pub().n, k).BitLength()
                               : k.BitLength();
    max_exp_bits = std::max(max_exp_bits, eff);
  }
  std::vector<BigInt> out(cs.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.paillier_scalar_mul", cs.size(), s2,
                  EstimateModPowMontMuls(max_exp_bits) * MontMulLimbOps(s2),
                  BatchBytes(2 * cs.size(), s2), BatchBytes(cs.size(), s2),
                  [&] {
                    auto c = ctx.ScalarMulBatch(cs, ks, &host_pool());
                    if (!c.ok()) {
                      first_error = c.status();
                      return;
                    }
                    out = std::move(c).value();
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::RsaEncrypt(
    const crypto::RsaContext& ctx, const std::vector<BigInt>& ms) {
  if (ms.empty()) return std::vector<BigInt>{};
  const size_t s = ctx.pub().CiphertextWords();
  // e = 65537: 17 squarings + 1 multiply.
  const uint64_t ops = 20 * MontMulLimbOps(s);
  std::vector<BigInt> out(ms.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.rsa_encrypt", ms.size(), s, ops,
                  BatchBytes(ms.size(), s), BatchBytes(ms.size(), s),
                  [&] {
                    first_error = common::ParallelForEachStatus(
                        host_pool(), ms.size(), [&](size_t i) -> Status {
                          FLB_ASSIGN_OR_RETURN(out[i], ctx.Encrypt(ms[i]));
                          return Status::OK();
                        });
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::RsaDecrypt(
    const crypto::RsaContext& ctx, const std::vector<BigInt>& cs) {
  if (cs.empty()) return std::vector<BigInt>{};
  const int key_bits = ctx.pub().key_bits;
  const size_t s = ctx.pub().CiphertextWords();
  const uint64_t ops =
      2 * EstimateModPowMontMuls(key_bits / 2) * MontMulLimbOps(s / 2);
  std::vector<BigInt> out(cs.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.rsa_decrypt", cs.size(), s, ops,
                  BatchBytes(cs.size(), s), BatchBytes(cs.size(), s),
                  [&] {
                    first_error = common::ParallelForEachStatus(
                        host_pool(), cs.size(), [&](size_t i) -> Status {
                          FLB_ASSIGN_OR_RETURN(out[i], ctx.Decrypt(cs[i]));
                          return Status::OK();
                        });
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

Result<std::vector<BigInt>> GheEngine::RsaMul(const crypto::RsaContext& ctx,
                                              const std::vector<BigInt>& c1,
                                              const std::vector<BigInt>& c2) {
  FLB_RETURN_IF_ERROR(CheckSameSize(c1.size(), c2.size(), "GheEngine::RsaMul"));
  if (c1.empty()) return std::vector<BigInt>{};
  const size_t s = ctx.pub().CiphertextWords();
  std::vector<BigInt> out(c1.size());
  Status first_error;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.rsa_mul", c1.size(), s, 3 * MontMulLimbOps(s),
                  BatchBytes(2 * c1.size(), s), BatchBytes(c1.size(), s),
                  [&] {
                    first_error = common::ParallelForEachStatus(
                        host_pool(), c1.size(), [&](size_t i) -> Status {
                          FLB_ASSIGN_OR_RETURN(out[i], ctx.Mul(c1[i], c2[i]));
                          return Status::OK();
                        });
                  })
          .status());
  FLB_RETURN_IF_ERROR(first_error);
  return out;
}

namespace {

// Expected prime-search work for one b-bit prime: ~b*ln(2)/2 odd candidates;
// trial division removes ~80%; survivors pay one witness exponentiation
// (composites fail fast), the final prime pays the full round count.
uint64_t PrimeSearchLimbOps(int prime_bits) {
  const size_t s = static_cast<size_t>(prime_bits) / 32;
  const double candidates = prime_bits * 0.347;
  const double mr_exponentiations = candidates * 0.2 * 1.2 + 20.0;
  return static_cast<uint64_t>(mr_exponentiations *
                               EstimateModPowMontMuls(prime_bits) *
                               MontMulLimbOps(s));
}

}  // namespace

Result<crypto::PaillierKeyPair> GheEngine::PaillierKeyGen(int key_bits,
                                                          Rng& rng) {
  crypto::PaillierKeyPair keys;
  Status status;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.paillier_keygen", /*count=*/2, key_bits / 2 / 32,
                  PrimeSearchLimbOps(key_bits / 2),
                  /*bytes_in=*/64, /*bytes_out=*/key_bits / 4,
                  [&] {
                    auto result = crypto::PaillierKeyGen(key_bits, rng);
                    if (result.ok()) {
                      keys = std::move(result).value();
                    } else {
                      status = result.status();
                    }
                  })
          .status());
  FLB_RETURN_IF_ERROR(status);
  return keys;
}

Result<crypto::RsaKeyPair> GheEngine::RsaKeyGen(int key_bits, Rng& rng) {
  crypto::RsaKeyPair keys;
  Status status;
  FLB_RETURN_IF_ERROR(
      LaunchBatch("ghe.rsa_keygen", /*count=*/2, key_bits / 2 / 32,
                  PrimeSearchLimbOps(key_bits / 2),
                  /*bytes_in=*/64, /*bytes_out=*/key_bits / 4,
                  [&] {
                    auto result = crypto::RsaKeyGen(key_bits, rng);
                    if (result.ok()) {
                      keys = std::move(result).value();
                    } else {
                      status = result.status();
                    }
                  })
          .status());
  FLB_RETURN_IF_ERROR(status);
  return keys;
}

// ---------------------------------------------------------------------------
// Timing-only models
// ---------------------------------------------------------------------------

Result<gpusim::LaunchResult> GheEngine::ModelPaillierEncrypt(int key_bits,
                                                             int64_t count) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  const uint64_t ops =
      (EstimateModPowMontMuls(key_bits) + 3) * MontMulLimbOps(s2);
  return LaunchBatch("ghe.model_encrypt", count, s2, ops,
                     BatchBytes(count, s2 / 2), BatchBytes(count, s2),
                     /*body=*/nullptr);
}

Result<gpusim::LaunchResult> GheEngine::ModelPaillierDecrypt(int key_bits,
                                                             int64_t count,
                                                             bool crt) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  const uint64_t ops =
      crt ? 2 * EstimateModPowMontMuls(key_bits / 2) * MontMulLimbOps(s2 / 2)
          : EstimateModPowMontMuls(key_bits) * MontMulLimbOps(s2);
  return LaunchBatch("ghe.model_decrypt", count, s2, ops,
                     BatchBytes(count, s2), BatchBytes(count, s2 / 2),
                     /*body=*/nullptr);
}

Result<gpusim::LaunchResult> GheEngine::ModelPaillierAdd(int key_bits,
                                                         int64_t count) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  return LaunchBatch("ghe.model_add", count, s2, 3 * MontMulLimbOps(s2),
                     BatchBytes(2 * count, s2), BatchBytes(count, s2),
                     /*body=*/nullptr);
}

Result<gpusim::LaunchResult> GheEngine::ModelPaillierAddPlain(int key_bits,
                                                              int64_t count) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  return LaunchBatch("ghe.model_add_plain", count, s2, 4 * MontMulLimbOps(s2),
                     BatchBytes(count, s2) + BatchBytes(count, s2 / 2),
                     BatchBytes(count, s2), /*body=*/nullptr);
}

Result<gpusim::LaunchResult> GheEngine::ModelPaillierScalarMul(int key_bits,
                                                               int64_t count,
                                                               int exp_bits) {
  const size_t s2 = static_cast<size_t>(key_bits) * 2 / 32;
  return LaunchBatch("ghe.model_scalar_mul", count, s2,
                     EstimateModPowMontMuls(exp_bits) * MontMulLimbOps(s2),
                     BatchBytes(2 * count, s2), BatchBytes(count, s2),
                     /*body=*/nullptr);
}

Result<gpusim::LaunchResult> GheEngine::ModelBatch(
    const char* name, int64_t count, size_t s, uint64_t limb_ops_per_elt,
    size_t bytes_in, size_t bytes_out) {
  return LaunchBatch(name, count, s, limb_ops_per_elt, bytes_in, bytes_out,
                     /*body=*/nullptr);
}

double GheEngine::ModelTransferToDevice(size_t bytes) {
  return device_->CopyToDevice(bytes);
}

double GheEngine::ModelTransferFromDevice(size_t bytes) {
  return device_->CopyFromDevice(bytes);
}

}  // namespace flb::ghe
