// GheEngine — the paper's GPU-HE layer (§IV-A).
//
// Exposes the Table I API surface as batched ("vectorized") operations over
// arrays of multi-precision integers, executed on the simulated device:
//
//   add/sub/mul/div/mod       — elementwise multi-precision arithmetic
//   mod_inv/mod_mul/mod_pow   — modular kernels (Montgomery-based)
//   Paillier::{encrypt,decrypt,add}, RSA::{encrypt,decrypt,mul}
//
// Every batch call becomes one kernel launch: each array element is served
// by T = s/x device threads (Algorithm 2's decomposition, x words per
// thread), the host body computes the real results (bit-exact with the
// parallel kernel — see parallel_montgomery tests), and the device charges
// modeled kernel + PCIe time to the SimClock.
//
// Model* variants run the identical launch geometry without a body; the FL
// epoch benches use them to price millions of HE ops without executing
// millions of 4096-bit exponentiations (DESIGN.md §1). Tests pin Model* op
// counts to the counters observed on the real path.

#ifndef FLB_GHE_GHE_ENGINE_H_
#define FLB_GHE_GHE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/crypto/paillier.h"
#include "src/crypto/rsa.h"
#include "src/gpusim/device.h"
#include "src/mpint/bigint.h"

namespace flb::common {
class ThreadPool;
}  // namespace flb::common

namespace flb::ghe {

using mpint::BigInt;

struct GheConfig {
  // x in Algorithm 2: words of each operand held per device thread. The
  // thread count per element is s/x (adjusted down to a divisor of s).
  int words_per_thread = 4;
  // Registers a kernel thread needs per held word (operand slices + the
  // working accumulator slice).
  int registers_per_word = 6;
  int base_registers = 24;
  // Divergent branch regions in the modular kernels (window selection +
  // final conditional subtraction). The resource manager combines them when
  // branch combining is on; the HAFLO baseline leaves them unmanaged.
  int divergent_branches = 2;
  // Device streams for batch execution. 1 = the original fully synchronous
  // H2D → kernel → D2H path. N > 1 cuts each batch into N chunks issued
  // round-robin across N streams, so chunk k's H2D overlaps chunk k-1's
  // kernel and chunk k-2's D2H on the device timeline (§V / Fig. 4 overlap,
  // HAFLO-style streamed staging).
  int streams = 1;
  // When true (default) the engine prices both schedules first and only
  // chunks when the streamed timeline is strictly faster — small or
  // kernel-bound batches keep the one-launch path, so enabling streams can
  // never slow a workload down. Tests disable this to force chunking.
  bool adaptive_chunking = true;
  // Chunks issued per stream on the chunked path. 1 = one chunk per stream
  // (each stream runs exactly one H2D → kernel → D2H pipeline). Higher
  // values slice the batch finer, which fills pipeline bubbles on large
  // batches at the price of more per-chunk launch/transfer latency — the
  // chunk-size knob the auto-tuner searches.
  int chunks_per_stream = 1;
  // Host thread pool the batch bodies run on (element-parallel, bit-exact at
  // any thread count). nullptr = the process-global pool. Host parallelism
  // only changes wall-clock time: the modeled device timeline charges the
  // same simulated cost regardless.
  common::ThreadPool* host_pool = nullptr;
};

// Telemetry for the most recent batch call (chunked or not).
struct GheBatchStats {
  int chunks = 1;
  int streams = 1;
  bool async = false;  // true when the batch ran chunked across streams
  // Modeled batch latency from first H2D byte to last D2H byte.
  double makespan_seconds = 0.0;
  double kernel_busy_seconds = 0.0;
  double transfer_busy_seconds = 0.0;
  // What the one-launch synchronous path would have cost, and how much the
  // stream overlap saved against it (0 when the batch ran synchronously).
  double serial_seconds = 0.0;
  double overlap_saved_seconds = 0.0;
};

// Limb multiply-accumulates for one s-limb CIOS Montgomery multiplication.
uint64_t MontMulLimbOps(size_t s);
// Montgomery multiplications in one sliding-window exponentiation with an
// exp_bits-bit exponent (squarings + window multiplies + table build).
uint64_t EstimateModPowMontMuls(int exp_bits);

class GheEngine {
 public:
  GheEngine(std::shared_ptr<gpusim::Device> device, GheConfig config = {});

  gpusim::Device& device() { return *device_; }
  const GheConfig& config() const { return config_; }
  // Re-targets the stream count for subsequent batches (clamped to >= 1).
  // Streams are created on the device lazily, on first chunked batch.
  void set_streams(int streams);
  // Re-targets the chunk granularity for subsequent batches (clamped >= 1).
  void set_chunks_per_stream(int chunks);

  // ---- Table I: fundamental vector arithmetic -------------------------------
  // Elementwise over equal-length arrays.
  Result<std::vector<BigInt>> Add(const std::vector<BigInt>& a,
                                  const std::vector<BigInt>& b);
  // Elementwise a-b; requires a[i] >= b[i].
  Result<std::vector<BigInt>> Sub(const std::vector<BigInt>& a,
                                  const std::vector<BigInt>& b);
  Result<std::vector<BigInt>> Mul(const std::vector<BigInt>& a,
                                  const std::vector<BigInt>& b);
  // Elementwise a/b and a%b; error on any zero divisor.
  Result<std::vector<BigInt>> Div(const std::vector<BigInt>& a,
                                  const std::vector<BigInt>& b);
  Result<std::vector<BigInt>> Mod(const std::vector<BigInt>& a,
                                  const BigInt& n);

  // ---- Table I: modular kernels ---------------------------------------------
  Result<std::vector<BigInt>> ModInv(const std::vector<BigInt>& a,
                                     const BigInt& n);
  Result<std::vector<BigInt>> ModMul(const std::vector<BigInt>& a,
                                     const std::vector<BigInt>& b,
                                     const BigInt& n);
  Result<std::vector<BigInt>> ModPow(const std::vector<BigInt>& x,
                                     const std::vector<BigInt>& p,
                                     const BigInt& n);

  // ---- Table I: Paillier / RSA ----------------------------------------------
  Result<std::vector<BigInt>> PaillierEncrypt(
      const crypto::PaillierContext& ctx, const std::vector<BigInt>& ms,
      Rng& rng);
  Result<std::vector<BigInt>> PaillierDecrypt(
      const crypto::PaillierContext& ctx, const std::vector<BigInt>& cs);
  Result<std::vector<BigInt>> PaillierAdd(const crypto::PaillierContext& ctx,
                                          const std::vector<BigInt>& c1,
                                          const std::vector<BigInt>& c2);
  // Elementwise E(m_i) + k_i for plaintext k_i (one (n+1)^k multiply each).
  Result<std::vector<BigInt>> PaillierAddPlain(
      const crypto::PaillierContext& ctx, const std::vector<BigInt>& cs,
      const std::vector<BigInt>& ks);
  // Elementwise E(m_i)^{k_i} = E(k_i * m_i) — a full modular exponentiation
  // per element.
  Result<std::vector<BigInt>> PaillierScalarMul(
      const crypto::PaillierContext& ctx, const std::vector<BigInt>& cs,
      const std::vector<BigInt>& ks);
  Result<std::vector<BigInt>> RsaEncrypt(const crypto::RsaContext& ctx,
                                         const std::vector<BigInt>& ms);
  Result<std::vector<BigInt>> RsaDecrypt(const crypto::RsaContext& ctx,
                                         const std::vector<BigInt>& cs);
  Result<std::vector<BigInt>> RsaMul(const crypto::RsaContext& ctx,
                                     const std::vector<BigInt>& c1,
                                     const std::vector<BigInt>& c2);

  // ---- Table I: key generation on the device --------------------------------
  // Paillier/RSA key generation with the prime search executed as a device
  // kernel: each warp owns a candidate (per-thread random number generators,
  // paper §IV-A3), trial division prunes, Miller-Rabin witnesses run as
  // modular exponentiations. Host-side arithmetic produces the actual key
  // material (bit-exact); the launch prices the parallel search.
  Result<crypto::PaillierKeyPair> PaillierKeyGen(int key_bits, Rng& rng);
  Result<crypto::RsaKeyPair> RsaKeyGen(int key_bits, Rng& rng);

  // ---- Timing-only models (identical launch geometry, no body) --------------
  // key_bits is the Paillier |n|; counts are elements in the batch.
  Result<gpusim::LaunchResult> ModelPaillierEncrypt(int key_bits,
                                                    int64_t count);
  Result<gpusim::LaunchResult> ModelPaillierDecrypt(int key_bits,
                                                    int64_t count,
                                                    bool crt = true);
  Result<gpusim::LaunchResult> ModelPaillierAdd(int key_bits, int64_t count);
  Result<gpusim::LaunchResult> ModelPaillierAddPlain(int key_bits,
                                                     int64_t count);
  // exp_bits: bit length of the plaintext scalar.
  Result<gpusim::LaunchResult> ModelPaillierScalarMul(int key_bits,
                                                      int64_t count,
                                                      int exp_bits);
  // Host<->device transfer charges for `bytes` (exposed so callers can model
  // staging of packed batches).
  double ModelTransferToDevice(size_t bytes);
  double ModelTransferFromDevice(size_t bytes);

  // Generic timing-only batch: `count` elements of `s` limbs, each costing
  // `limb_ops_per_elt` limb operations, moving in/out bytes over PCIe. The
  // HeService prices its modeled HE ops through this so they ride the same
  // chunked multi-stream path as the real batches.
  Result<gpusim::LaunchResult> ModelBatch(const char* name, int64_t count,
                                          size_t s, uint64_t limb_ops_per_elt,
                                          size_t bytes_in, size_t bytes_out);

  // Launch diagnostics of the most recent kernel (utilization telemetry).
  // For a chunked batch this aggregates the chunks: sim_seconds is the
  // window makespan, occupancy/utilization are time-weighted means, waves
  // are summed.
  const gpusim::LaunchResult& last_launch() const { return last_launch_; }
  // Scheduling diagnostics of the most recent batch call.
  const GheBatchStats& last_batch() const { return last_batch_; }

 private:
  // Shared launch path: one kernel over `count` elements of `s` limbs, each
  // costing `mont_muls` Montgomery multiplications (or raw `limb_ops` when
  // mont_muls == 0), moving in/out bytes over PCIe. With config_.streams > 1
  // the batch is chunked across streams when the streamed timeline prices
  // faster (always, when adaptive_chunking is off).
  Result<gpusim::LaunchResult> LaunchBatch(const char* name, int64_t count,
                                           size_t s, uint64_t limb_ops_per_elt,
                                           size_t bytes_in, size_t bytes_out,
                                           std::function<void()> body);
  Result<gpusim::LaunchResult> LaunchBatchAsync(
      const gpusim::KernelLaunch& proto, int64_t count, int64_t tpe,
      size_t bytes_in, size_t bytes_out, double serial_seconds,
      std::function<void()> body);

  gpusim::KernelDemand DemandFor(size_t s, int threads_per_elt) const;
  int ThreadsPerElement(size_t s) const;
  // The pool batch bodies run on (config override or the global pool).
  common::ThreadPool& host_pool() const;
  // Wraps a batch body with host-side wall-clock + pool-stat telemetry
  // (flb.host.* metrics and the host/threads trace track).
  std::function<void()> InstrumentBody(const char* name,
                                       std::function<void()> body);

  std::shared_ptr<gpusim::Device> device_;
  GheConfig config_;
  gpusim::LaunchResult last_launch_;
  GheBatchStats last_batch_;
  // Device streams owned by this engine, created lazily.
  std::vector<gpusim::StreamId> stream_ids_;
};

}  // namespace flb::ghe

#endif  // FLB_GHE_GHE_ENGINE_H_
