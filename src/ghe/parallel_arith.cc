#include "src/ghe/parallel_arith.h"

#include <algorithm>

#include "src/common/check.h"

namespace flb::ghe {

namespace {

Status CheckDecomposition(const BigInt& a, const BigInt& b, size_t s,
                          int num_threads) {
  if (s == 0 || num_threads <= 0 || s % static_cast<size_t>(num_threads) != 0) {
    return Status::InvalidArgument(
        "parallel arith: thread count must divide the limb count");
  }
  if (a.WordCount() > s || b.WordCount() > s) {
    return Status::InvalidArgument("parallel arith: operand exceeds s limbs");
  }
  return Status::OK();
}

// Top (up to) 64 significant bits of v.
uint64_t Top64(const BigInt& v, int* exponent) {
  const int bits = v.BitLength();
  const int shift = std::max(0, bits - 64);
  *exponent = shift;
  return BigInt::ShiftRight(v, shift).LowU64();
}

}  // namespace

Result<BigInt> ParallelAdd(const BigInt& a, const BigInt& b, size_t s,
                           int num_threads, ParallelMontStats* stats) {
  FLB_RETURN_IF_ERROR(CheckDecomposition(a, b, s, num_threads));
  const size_t x = s / num_threads;
  std::vector<uint32_t> out(s + 1, 0);
  uint64_t carry = 0;
  for (int thread = 0; thread < num_threads; ++thread) {
    // Each thread sums its slice; the carry out of the slice is handed to
    // the next thread (one inter-thread communication when nonzero).
    for (size_t j = 0; j < x; ++j) {
      const size_t w = static_cast<size_t>(thread) * x + j;
      const uint64_t sum =
          static_cast<uint64_t>(a.word(w)) + b.word(w) + carry;
      out[w] = static_cast<uint32_t>(sum);
      carry = sum >> 32;
      if (stats != nullptr) ++stats->limb_ops;
    }
    if (stats != nullptr && thread + 1 < num_threads && carry != 0) {
      ++stats->inter_thread_comms;
    }
  }
  out[s] = static_cast<uint32_t>(carry);
  return BigInt::FromWords(std::move(out));
}

Result<BigInt> ParallelSub(const BigInt& a, const BigInt& b, size_t s,
                           int num_threads, ParallelMontStats* stats) {
  FLB_RETURN_IF_ERROR(CheckDecomposition(a, b, s, num_threads));
  if (a < b) {
    return Status::OutOfRange("ParallelSub: would underflow");
  }
  const size_t x = s / num_threads;
  std::vector<uint32_t> out(s, 0);
  int64_t borrow = 0;
  for (int thread = 0; thread < num_threads; ++thread) {
    for (size_t j = 0; j < x; ++j) {
      const size_t w = static_cast<size_t>(thread) * x + j;
      int64_t diff = static_cast<int64_t>(a.word(w)) -
                     static_cast<int64_t>(b.word(w)) - borrow;
      if (diff < 0) {
        diff += int64_t{1} << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[w] = static_cast<uint32_t>(diff);
      if (stats != nullptr) ++stats->limb_ops;
    }
    if (stats != nullptr && thread + 1 < num_threads && borrow != 0) {
      ++stats->inter_thread_comms;
    }
  }
  FLB_DCHECK(borrow == 0);
  return BigInt::FromWords(std::move(out));
}

Result<BigInt> ParallelMul(const BigInt& a, const BigInt& b, size_t s,
                           int num_threads, ParallelMontStats* stats) {
  FLB_RETURN_IF_ERROR(CheckDecomposition(a, b, s, num_threads));
  const size_t x = s / num_threads;
  // Each thread owns a slice of a and produces a partial product row
  // against every limb of b ("multiply the limbs with the limbs in other
  // threads one by one"); rows are aggregated into the shared accumulator
  // with carries crossing slice boundaries.
  std::vector<uint32_t> acc(2 * s, 0);
  for (int thread = 0; thread < num_threads; ++thread) {
    for (size_t j = 0; j < x; ++j) {
      const size_t i = static_cast<size_t>(thread) * x + j;
      const uint64_t ai = a.word(i);
      if (ai == 0) continue;
      uint64_t carry = 0;
      for (size_t k = 0; k < s; ++k) {
        const uint64_t cur = static_cast<uint64_t>(acc[i + k]) +
                             ai * b.word(k) + carry;
        acc[i + k] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
        if (stats != nullptr) {
          ++stats->limb_ops;
          // A partial product against a limb owned by another thread is
          // the paper's "limbs in other threads" communication.
          if (k / x != static_cast<size_t>(thread)) {
            ++stats->inter_thread_comms;
          }
        }
      }
      size_t pos = i + s;
      while (carry != 0) {
        const uint64_t cur = static_cast<uint64_t>(acc[pos]) + carry;
        acc[pos] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
        ++pos;
      }
    }
  }
  return BigInt::FromWords(std::move(acc));
}

Result<std::pair<BigInt, BigInt>> ParallelDivMod(const BigInt& a,
                                                 const BigInt& b, size_t s,
                                                 int num_threads,
                                                 ParallelMontStats* stats) {
  if (b.IsZero()) {
    return Status::ArithmeticError("ParallelDivMod: division by zero");
  }
  FLB_RETURN_IF_ERROR(CheckDecomposition(a, b, s, num_threads));

  BigInt quotient;
  BigInt remainder = a;
  int b_exp = 0;
  const uint64_t b_top = Top64(b, &b_exp);
  // The paper's loop: estimate a quotient chunk from the most significant
  // words, multiply, subtract, repair an overshoot, repeat.
  while (remainder >= b) {
    int r_exp = 0;
    const uint64_t r_top = Top64(remainder, &r_exp);
    // q ~= (r_top / (b_top+1)) * 2^(r_exp - b_exp); the +1 biases toward an
    // underestimate so the subtraction rarely overshoots.
    BigInt q_est;
    const uint64_t ratio = r_top / (b_top + 1);
    const int shift = r_exp - b_exp;
    if (ratio > 0) {
      q_est = shift >= 0 ? BigInt::ShiftLeft(BigInt(ratio), shift)
                         : BigInt::ShiftRight(BigInt(ratio), -shift);
    } else if (shift >= 1) {
      // The top words are too close to divide (r_top < b_top+1) but the
      // numerator is still `shift` bits longer: 2^(shift-1) is a safe
      // underestimate that keeps the chunk count ~linear in the bit gap.
      q_est = BigInt::PowerOfTwo(shift - 1);
    }
    if (q_est.IsZero()) q_est = BigInt(1);

    FLB_ASSIGN_OR_RETURN(
        BigInt prod, ParallelMul(q_est, b, s, num_threads, stats));
    // "If the result of subtraction overflows, then we recover it by
    // addition": an overshoot is repaired by stepping the estimate down.
    while (prod > remainder) {
      q_est = BigInt::ShiftRight(q_est, 1);
      if (q_est.IsZero()) q_est = BigInt(1);
      FLB_ASSIGN_OR_RETURN(prod,
                           ParallelMul(q_est, b, s, num_threads, stats));
      if (q_est.IsOne() && prod > remainder) break;
    }
    if (prod > remainder) break;  // remainder < b, loop exit below
    FLB_ASSIGN_OR_RETURN(
        remainder, ParallelSub(remainder, prod, s, num_threads, stats));
    FLB_ASSIGN_OR_RETURN(
        quotient, ParallelAdd(quotient, q_est, s, num_threads, stats));
  }
  return std::make_pair(std::move(quotient), std::move(remainder));
}

}  // namespace flb::ghe
