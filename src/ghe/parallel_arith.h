// Limb-parallel basic arithmetic — the paper's §IV-A1 text, transcribed.
//
// "When performing the addition or subtraction of two multi-precision
//  integers, we store the overflow result in the thread locally and then
//  propagate the overflow result to other threads for the carry and borrow
//  operations via inter-thread communication. When performing
//  multiplication ... we multiply the limbs with the limbs in other threads
//  one by one, aggregate and propagate the result ... In addition, we
//  replace complex division and rest operations with multiple subtraction
//  and multiplication operations. The quotient is obtained by dividing two
//  multi-precision integers using more significant words. After that, we
//  subtract the product of the quotient and the denominator from the
//  numerator. ... This process is repeated until the numerator is smaller
//  than the denominator."
//
// Each function is a host-side transcription of that decomposition: threads
// own contiguous limb slices, carries/borrows crossing slice boundaries are
// counted as inter-thread communications, and results are asserted
// bit-exact against the BigInt reference in tests. The timing model uses
// the op/communication counts these return.

#ifndef FLB_GHE_PARALLEL_ARITH_H_
#define FLB_GHE_PARALLEL_ARITH_H_

#include "src/common/result.h"
#include "src/ghe/parallel_montgomery.h"
#include "src/mpint/bigint.h"

namespace flb::ghe {

using mpint::BigInt;

// a + b with both operands viewed as s-limb words distributed over
// `num_threads` slices (num_threads must divide s; the result may carry
// into limb s).
Result<BigInt> ParallelAdd(const BigInt& a, const BigInt& b, size_t s,
                           int num_threads, ParallelMontStats* stats);

// a - b (requires a >= b), same decomposition, borrows communicated.
Result<BigInt> ParallelSub(const BigInt& a, const BigInt& b, size_t s,
                           int num_threads, ParallelMontStats* stats);

// a * b: each thread multiplies its slice of a by every limb of b and the
// partial rows are aggregated with carry propagation.
Result<BigInt> ParallelMul(const BigInt& a, const BigInt& b, size_t s,
                           int num_threads, ParallelMontStats* stats);

// a = q*b + r by the paper's subtract-multiply scheme: estimate the
// quotient from the operands' most significant words, subtract q*b, repair
// an overshoot by one addition, repeat until the numerator is below the
// denominator. Error if b == 0.
Result<std::pair<BigInt, BigInt>> ParallelDivMod(const BigInt& a,
                                                 const BigInt& b, size_t s,
                                                 int num_threads,
                                                 ParallelMontStats* stats);

}  // namespace flb::ghe

#endif  // FLB_GHE_PARALLEL_ARITH_H_
