#include "src/ghe/parallel_montgomery.h"

#include <vector>

#include "src/common/check.h"

namespace flb::ghe {

int LargestValidThreadCount(size_t s, int max_threads) {
  for (int t = std::min<int>(max_threads, static_cast<int>(s)); t >= 1; --t) {
    if (s % static_cast<size_t>(t) == 0) return t;
  }
  return 1;
}

Result<ParallelMontStats> ParallelMontMul(const uint32_t* a, const uint32_t* b,
                                          const uint32_t* n, uint32_t n0_inv,
                                          size_t s, int num_threads,
                                          uint32_t* out) {
  if (s == 0) return Status::InvalidArgument("ParallelMontMul: s == 0");
  if (num_threads <= 0 || s % static_cast<size_t>(num_threads) != 0) {
    return Status::InvalidArgument(
        "ParallelMontMul: thread count must divide the limb count");
  }
  const size_t x = s / num_threads;  // words per thread
  ParallelMontStats stats;

  // t is the shared working accumulator (s+2 limbs). On the device each
  // thread keeps its own x-limb slice of t in registers; slice boundaries
  // are where inter-thread communication happens.
  std::vector<uint32_t> t(s + 2, 0);

  auto owner_of = [&](size_t word) { return word / x; };

  // Outer loop: one iteration per word of b (Algorithm 2's combined i/j
  // loops — thread i broadcasts its j-th word b_i[j]).
  for (size_t gi = 0; gi < s; ++gi) {
    const uint64_t bi = b[gi];
    // ---- Multiplication step: t += a * b[gi] -------------------------------
    // Every thread multiplies its slice of a; the carry out of each slice is
    // communicated to the next thread.
    uint64_t carry = 0;
    for (int thread = 0; thread < num_threads; ++thread) {
      for (size_t j = 0; j < x; ++j) {
        const size_t w = static_cast<size_t>(thread) * x + j;
        const uint64_t cur = static_cast<uint64_t>(t[w]) + bi * a[w] + carry;
        t[w] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
        ++stats.limb_ops;
      }
      if (thread + 1 < num_threads && carry != 0) ++stats.inter_thread_comms;
    }
    {
      const uint64_t cur = static_cast<uint64_t>(t[s]) + carry;
      t[s] = static_cast<uint32_t>(cur);
      t[s + 1] = static_cast<uint32_t>(cur >> 32);
    }

    // ---- Reduction step: m = t[0] * n0' (computed by thread 0, then
    // broadcast); t += m * n; shift right one word. ---------------------------
    const uint32_t m = t[0] * n0_inv;
    ++stats.limb_ops;
    if (num_threads > 1) ++stats.inter_thread_comms;  // broadcast of m

    uint64_t cur = static_cast<uint64_t>(t[0]) + static_cast<uint64_t>(m) * n[0];
    carry = cur >> 32;
    ++stats.limb_ops;
    FLB_DCHECK(static_cast<uint32_t>(cur) == 0,
               "reduction must zero the low word");
    for (int thread = 0; thread < num_threads; ++thread) {
      const size_t lo = thread == 0 ? 1 : static_cast<size_t>(thread) * x;
      const size_t hi = static_cast<size_t>(thread + 1) * x;
      for (size_t w = lo; w < hi; ++w) {
        cur = static_cast<uint64_t>(t[w]) + static_cast<uint64_t>(m) * n[w] +
              carry;
        // The one-word right shift is fused here: results land at w-1, which
        // for w == thread*x belongs to the previous thread (one
        // communication per boundary).
        t[w - 1] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
        ++stats.limb_ops;
        if (w == static_cast<size_t>(thread) * x && thread > 0) {
          ++stats.inter_thread_comms;
        }
      }
      if (thread + 1 < num_threads && carry != 0) ++stats.inter_thread_comms;
    }
    cur = static_cast<uint64_t>(t[s]) + carry;
    t[s - 1] = static_cast<uint32_t>(cur);
    t[s] = t[s + 1] + static_cast<uint32_t>(cur >> 32);
    t[s + 1] = 0;
  }

  // ---- Final conditional subtraction (lines 18-22 of Algorithm 2) ----------
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = s; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    int64_t borrow = 0;
    for (int thread = 0; thread < num_threads; ++thread) {
      for (size_t j = 0; j < x; ++j) {
        const size_t w = static_cast<size_t>(thread) * x + j;
        int64_t diff = static_cast<int64_t>(t[w]) - n[w] - borrow;
        if (diff < 0) {
          diff += int64_t{1} << 32;
          borrow = 1;
        } else {
          borrow = 0;
        }
        out[w] = static_cast<uint32_t>(diff);
        ++stats.limb_ops;
      }
      if (thread + 1 < num_threads && borrow != 0) ++stats.inter_thread_comms;
    }
  } else {
    for (size_t i = 0; i < s; ++i) out[i] = t[i];
  }
  return stats;
}

}  // namespace flb::ghe
