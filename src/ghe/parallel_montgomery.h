// Parallel Montgomery multiplication — the paper's Algorithm 2.
//
// The GPU form of CIOS distributes the s limbs of each operand across T
// device threads, x = s/T contiguous limbs per thread. Within each outer
// iteration (one word of b), every thread multiplies its slice and carries
// propagate across thread boundaries via inter-thread communication (shared
// memory / shuffle on real hardware). This file is a faithful host-side
// transcription: the thread loop is explicit, per-thread slices are
// explicit, and every carry that crosses a slice boundary is counted as one
// inter-thread communication event — the quantity the kernel's timing model
// charges for.
//
// Bit-exactness with the sequential CIOS in crypto::MontgomeryContext is
// asserted by tests for every (key size, thread count) combination.

#ifndef FLB_GHE_PARALLEL_MONTGOMERY_H_
#define FLB_GHE_PARALLEL_MONTGOMERY_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/mpint/bigint.h"

namespace flb::ghe {

struct ParallelMontStats {
  // Carries/borrows handed from thread i to thread i+1.
  uint64_t inter_thread_comms = 0;
  // 32-bit multiply-accumulate operations retired (all threads).
  uint64_t limb_ops = 0;
};

// Computes a*b*R^{-1} mod n where a, b, n are s-limb little-endian arrays,
// R = 2^(32*s), n odd, n0_inv = -n[0]^{-1} mod 2^32, and `num_threads`
// divides s. Writes s limbs to `out` (which may alias neither input).
// Returns per-launch statistics.
Result<ParallelMontStats> ParallelMontMul(const uint32_t* a, const uint32_t* b,
                                          const uint32_t* n, uint32_t n0_inv,
                                          size_t s, int num_threads,
                                          uint32_t* out);

// Valid thread counts for an s-limb operand: divisors of s, largest first.
// (Algorithm 2 requires every thread to own the same number of words.)
int LargestValidThreadCount(size_t s, int max_threads);

}  // namespace flb::ghe

#endif  // FLB_GHE_PARALLEL_MONTGOMERY_H_
