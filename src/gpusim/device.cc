#include "src/gpusim/device.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace flb::gpusim {

Device::Device(DeviceSpec spec, SimClock* clock, bool branch_combining)
    : spec_(std::move(spec)),
      clock_(clock),
      rm_(spec_, branch_combining),
      instance_(obs::TraceRecorder::Global().UniqueProcessName("gpu")) {}

double Device::TimelineNow() const {
  common::MutexLock lock(mu_);
  return TimelineNowLocked();
}

double Device::TimelineNowLocked() const {
  return clock_ != nullptr ? clock_->Now() : local_now_;
}

void Device::AdvanceLocalTime(double seconds) {
  if (clock_ == nullptr) local_now_ += seconds;
}

obs::Track Device::StreamTrack(StreamId stream) const {
  return obs::TraceRecorder::Global().RegisterTrack(
      instance_, "stream " + std::to_string(stream));
}

obs::Track Device::DmaTrack(bool to_device) const {
  return obs::TraceRecorder::Global().RegisterTrack(
      instance_, to_device ? "dma h2d" : "dma d2h");
}

// Kernel span plus the sawtooth occupancy counter track (Fig. 6 telemetry
// made visible on the timeline).
void Device::TraceKernel(obs::Track track, const std::string& name,
                         double start, double end, double occupancy,
                         int stream) const {
  auto& rec = obs::TraceRecorder::Global();
  rec.Span(track, name, "kernel", start, end,
           {obs::Arg("occupancy", occupancy), obs::Arg("stream", stream)});
  const obs::Track counter =
      rec.RegisterTrack(instance_, "occupancy counter");
  rec.Counter(counter, "occupancy", start, occupancy);
  rec.Counter(counter, "occupancy", end, 0.0);
}

Result<LaunchResult> Device::EstimateLaunch(const KernelLaunch& launch) const {
  if (launch.total_threads <= 0) {
    return Status::InvalidArgument("Launch: total_threads must be > 0");
  }
  FLB_ASSIGN_OR_RETURN(BlockPlan plan,
                       rm_.PlanLaunch(launch.total_threads, launch.demand));

  // Resident (concurrently executing) threads across the device.
  const double resident =
      plan.occupancy * spec_.max_threads_per_sm * spec_.num_sms;
  const int waves = static_cast<int>(
      std::ceil(static_cast<double>(launch.total_threads) / resident));

  // Per-wave time: each resident thread retires ops_per_thread limb ops;
  // the SM's cores retire them at cycles_per_limb_op each. The SM can only
  // issue cuda_cores_per_sm lanes per cycle, so when more threads are
  // resident than cores the latency is hidden but throughput is core-bound:
  // effective throughput per SM = cores / cycles_per_op per cycle.
  const double active_threads_per_sm =
      std::min<double>(plan.occupancy * spec_.max_threads_per_sm,
                       static_cast<double>(launch.total_threads) /
                           spec_.num_sms);
  const double issue_ratio =
      std::max(1.0, active_threads_per_sm / spec_.cuda_cores_per_sm);
  double per_thread_sec = static_cast<double>(launch.ops_per_thread) *
                          spec_.cycles_per_limb_op / spec_.core_clock_hz *
                          issue_ratio;

  // Divergence penalty when the resource manager is not combining branches:
  // each divergent region serializes the two warp halves.
  if (!rm_.branch_combining() && launch.demand.divergent_branches > 0) {
    per_thread_sec *= 1.0 + 0.5 * launch.demand.divergent_branches;
  }
  // Register spills (demand beyond the architectural cap) push operand
  // traffic to local memory and stretch the arithmetic proportionally.
  per_thread_sec *= rm_.RegisterSpillFactor(launch.demand);

  LaunchResult result;
  result.sim_seconds =
      spec_.kernel_launch_latency_sec + waves * per_thread_sec;
  result.occupancy = plan.occupancy;
  result.waves = waves;
  result.block_threads = plan.block_threads;
  result.grid_blocks = plan.grid_blocks;
  result.limiting_resource = plan.limiting_resource;

  // SM utilization: fraction of the device's resident-thread capacity that
  // held live work, averaged over the kernel's waves. The final (partial)
  // wave drags utilization down for small launches.
  const double capacity = static_cast<double>(spec_.MaxResidentThreads());
  const double full_waves_util = plan.occupancy;
  const double used_in_last_wave =
      launch.total_threads - static_cast<int64_t>(resident) * (waves - 1);
  const double last_wave_util =
      std::clamp(used_in_last_wave / capacity, 0.0, full_waves_util);
  result.sm_utilization =
      waves == 1 ? last_wave_util
                 : ((waves - 1) * full_waves_util + last_wave_util) / waves;
  return result;
}

void Device::RecordKernelStats(const LaunchResult& result) {
  ++stats_.kernels_launched;
  stats_.kernel_seconds += result.sim_seconds;
  stats_.util_sum += result.sm_utilization * result.sim_seconds;
  stats_.util_weight += result.sim_seconds;
}

Result<LaunchResult> Device::Launch(const KernelLaunch& launch) {
  FLB_ASSIGN_OR_RETURN(LaunchResult result, EstimateLaunch(launch));

  // Execute the real arithmetic (outside the lock: bodies are arbitrary
  // host work and may themselves use the thread pool).
  if (launch.body) launch.body();

  double t0 = 0.0;
  {
    common::MutexLock lock(mu_);
    RecordKernelStats(result);
    t0 = TimelineNowLocked();
    AdvanceLocalTime(result.sim_seconds);
  }
  if (obs::TraceRecorder::Global().enabled()) {
    TraceKernel(StreamTrack(kDefaultStream), launch.name, t0,
                t0 + result.sim_seconds, result.occupancy, kDefaultStream);
  }
  if (clock_ != nullptr) {
    clock_->Charge(CostKind::kGpuKernel, result.sim_seconds);
  }
  return result;
}

double Device::TransferSeconds(size_t bytes) const {
  return spec_.pcie_latency_sec +
         bytes / spec_.pcie_bandwidth_bytes_per_sec;
}

double Device::CopyToDevice(size_t bytes) {
  const double sec = TransferSeconds(bytes);
  double t0 = 0.0;
  {
    common::MutexLock lock(mu_);
    ++stats_.h2d_copies;
    stats_.bytes_h2d += bytes;
    stats_.transfer_seconds += sec;
    t0 = TimelineNowLocked();
    AdvanceLocalTime(sec);
  }
  auto& rec = obs::TraceRecorder::Global();
  if (rec.enabled()) {
    rec.Span(DmaTrack(true), "h2d", "pcie", t0, t0 + sec,
             {obs::Arg("bytes", static_cast<uint64_t>(bytes))});
  }
  if (clock_ != nullptr) clock_->Charge(CostKind::kPcieTransfer, sec);
  return sec;
}

double Device::CopyFromDevice(size_t bytes) {
  const double sec = TransferSeconds(bytes);
  double t0 = 0.0;
  {
    common::MutexLock lock(mu_);
    ++stats_.d2h_copies;
    stats_.bytes_d2h += bytes;
    stats_.transfer_seconds += sec;
    t0 = TimelineNowLocked();
    AdvanceLocalTime(sec);
  }
  auto& rec = obs::TraceRecorder::Global();
  if (rec.enabled()) {
    rec.Span(DmaTrack(false), "d2h", "pcie", t0, t0 + sec,
             {obs::Arg("bytes", static_cast<uint64_t>(bytes))});
  }
  if (clock_ != nullptr) clock_->Charge(CostKind::kPcieTransfer, sec);
  return sec;
}

// ---------------------------------------------------------------------------
// Streams and events
// ---------------------------------------------------------------------------

Status Device::CheckStream(StreamId stream) const {
  if (stream < 0 ||
      stream >= static_cast<StreamId>(stream_ready_.size())) {
    return Status::InvalidArgument("Device: unknown stream " +
                                   std::to_string(stream));
  }
  return Status::OK();
}

StreamId Device::CreateStream() {
  common::MutexLock lock(mu_);
  stream_ready_.push_back(0.0);
  ++stats_.streams_created;
  return static_cast<StreamId>(stream_ready_.size()) - 1;
}

Result<LaunchResult> Device::LaunchAsync(const KernelLaunch& launch,
                                         StreamId stream) {
  {
    common::MutexLock lock(mu_);
    FLB_RETURN_IF_ERROR(CheckStream(stream));
  }
  FLB_ASSIGN_OR_RETURN(LaunchResult result, EstimateLaunch(launch));

  // The real arithmetic still runs host-side, immediately, and outside the
  // lock: only the modeled schedule is deferred, so async results stay
  // bit-exact with the synchronous path.
  if (launch.body) launch.body();

  common::MutexLock lock(mu_);
  const double start = std::max(stream_ready_[stream], compute_free_);
  const double end = start + result.sim_seconds;
  result.start_seconds = start;
  result.end_seconds = end;
  stream_ready_[stream] = end;
  compute_free_ = end;
  window_kernel_busy_ += result.sim_seconds;
  RecordKernelStats(result);
  if (obs::TraceRecorder::Global().enabled()) {
    pending_trace_.push_back({PendingTraceOp::Kind::kKernel, launch.name,
                              stream, start, end, result.occupancy, 0});
  }
  return result;
}

Result<CopyResult> Device::CopyAsync(size_t bytes, StreamId stream,
                                     bool to_device) {
  common::MutexLock lock(mu_);
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  CopyResult copy;
  copy.seconds = TransferSeconds(bytes);
  double& engine = to_device ? h2d_free_ : d2h_free_;
  double& other = to_device ? d2h_free_ : h2d_free_;
  double start = std::max(stream_ready_[stream], engine);
  // A half-duplex link has one DMA engine shared by both directions.
  if (!spec_.pcie_full_duplex) start = std::max(start, other);
  copy.start_seconds = start;
  copy.end_seconds = start + copy.seconds;
  engine = copy.end_seconds;
  if (!spec_.pcie_full_duplex) other = copy.end_seconds;
  stream_ready_[stream] = copy.end_seconds;
  window_transfer_busy_ += copy.seconds;
  if (to_device) {
    ++stats_.h2d_copies;
    stats_.bytes_h2d += bytes;
  } else {
    ++stats_.d2h_copies;
    stats_.bytes_d2h += bytes;
  }
  stats_.transfer_seconds += copy.seconds;
  if (obs::TraceRecorder::Global().enabled()) {
    pending_trace_.push_back(
        {to_device ? PendingTraceOp::Kind::kH2d : PendingTraceOp::Kind::kD2h,
         to_device ? "h2d" : "d2h", stream, copy.start_seconds,
         copy.end_seconds, 0.0, bytes});
  }
  return copy;
}

Result<CopyResult> Device::CopyToDeviceAsync(size_t bytes, StreamId stream) {
  return CopyAsync(bytes, stream, /*to_device=*/true);
}

Result<CopyResult> Device::CopyFromDeviceAsync(size_t bytes, StreamId stream) {
  return CopyAsync(bytes, stream, /*to_device=*/false);
}

Result<EventId> Device::RecordEvent(StreamId stream) {
  common::MutexLock lock(mu_);
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  events_.push_back(stream_ready_[stream]);
  ++stats_.events_recorded;
  return static_cast<EventId>(events_.size()) - 1;
}

Status Device::WaitEvent(StreamId stream, EventId event) {
  common::MutexLock lock(mu_);
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  if (event < 0 || event >= static_cast<EventId>(events_.size())) {
    return Status::InvalidArgument("Device: unknown event " +
                                   std::to_string(event));
  }
  stream_ready_[stream] = std::max(stream_ready_[stream], events_[event]);
  return Status::OK();
}

Result<double> Device::StreamReadySeconds(StreamId stream) const {
  common::MutexLock lock(mu_);
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  return stream_ready_[stream];
}

double Device::Synchronize() {
  double makespan = 0.0;
  double kernel_busy = 0.0;
  double exposed_transfer = 0.0;
  double t0 = 0.0;
  std::vector<PendingTraceOp> flush;
  {
    common::MutexLock lock(mu_);
    for (double ready : stream_ready_) makespan = std::max(makespan, ready);

    // Kernels serialize on the compute engine, so the window is never
    // shorter than its kernel busy time; everything beyond that is transfer
    // time the overlap failed to hide.
    kernel_busy = window_kernel_busy_;
    exposed_transfer = std::max(0.0, makespan - window_kernel_busy_);

    stats_.overlap_saved_seconds +=
        window_kernel_busy_ + window_transfer_busy_ - makespan;
    ++stats_.synchronizations;

    t0 = TimelineNowLocked();
    flush.swap(pending_trace_);

    // Fresh window origin.
    std::fill(stream_ready_.begin(), stream_ready_.end(), 0.0);
    compute_free_ = h2d_free_ = d2h_free_ = 0.0;
    events_.clear();
    window_kernel_busy_ = window_transfer_busy_ = 0.0;
    AdvanceLocalTime(makespan);
  }

  // Flush the window's buffered async ops onto the trace (outside mu_: the
  // recorder is another component's concern). Charges below sum to the
  // makespan, so the window occupies [t0, t0 + makespan] on the simulated
  // timeline and every op lands at t0 + its window offset.
  auto& rec = obs::TraceRecorder::Global();
  if (rec.enabled() && !flush.empty()) {
    for (const PendingTraceOp& op : flush) {
      if (op.kind == PendingTraceOp::Kind::kKernel) {
        TraceKernel(StreamTrack(op.stream), op.name, t0 + op.start,
                    t0 + op.end, op.occupancy, op.stream);
      } else {
        rec.Span(DmaTrack(op.kind == PendingTraceOp::Kind::kH2d), op.name,
                 "pcie", t0 + op.start, t0 + op.end,
                 {obs::Arg("bytes", op.bytes), obs::Arg("stream", op.stream)});
      }
    }
    rec.Instant(rec.RegisterTrack(instance_, "sync"), "device.sync",
                "device", t0 + makespan,
                {obs::Arg("makespan_seconds", makespan),
                 obs::Arg("kernel_busy_seconds", kernel_busy),
                 obs::Arg("exposed_transfer_seconds", exposed_transfer)});
  }

  if (clock_ != nullptr) {
    if (kernel_busy > 0.0) {
      clock_->Charge(CostKind::kGpuKernel, kernel_busy);
    }
    if (exposed_transfer > 0.0) {
      clock_->Charge(CostKind::kPcieTransfer, exposed_transfer);
    }
  }
  return makespan;
}

void Device::CollectMetrics(std::vector<obs::MetricValue>& out) const {
  common::MutexLock lock(mu_);
  const std::string labels = "device=" + instance_;
  auto counter = [&](const char* name, double value) {
    obs::MetricValue m;
    m.name = name;
    m.labels = labels;
    m.type = obs::MetricType::kCounter;
    m.value = value;
    out.push_back(std::move(m));
  };
  counter("flb.gpusim.kernels_launched",
          static_cast<double>(stats_.kernels_launched));
  counter("flb.gpusim.h2d_copies", static_cast<double>(stats_.h2d_copies));
  counter("flb.gpusim.d2h_copies", static_cast<double>(stats_.d2h_copies));
  counter("flb.gpusim.bytes_h2d", static_cast<double>(stats_.bytes_h2d));
  counter("flb.gpusim.bytes_d2h", static_cast<double>(stats_.bytes_d2h));
  counter("flb.gpusim.kernel_seconds", stats_.kernel_seconds);
  counter("flb.gpusim.transfer_seconds", stats_.transfer_seconds);
  counter("flb.gpusim.streams_created",
          static_cast<double>(stats_.streams_created));
  counter("flb.gpusim.events_recorded",
          static_cast<double>(stats_.events_recorded));
  counter("flb.gpusim.synchronizations",
          static_cast<double>(stats_.synchronizations));
  counter("flb.gpusim.overlap_saved_seconds", stats_.overlap_saved_seconds);
  obs::MetricValue util;
  util.name = "flb.gpusim.mean_sm_utilization";
  util.labels = labels;
  util.type = obs::MetricType::kGauge;
  util.value = stats_.MeanSmUtilization();
  out.push_back(std::move(util));
}

}  // namespace flb::gpusim
