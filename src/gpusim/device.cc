#include "src/gpusim/device.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace flb::gpusim {

Device::Device(DeviceSpec spec, SimClock* clock, bool branch_combining)
    : spec_(std::move(spec)),
      clock_(clock),
      rm_(spec_, branch_combining) {}

Result<LaunchResult> Device::EstimateLaunch(const KernelLaunch& launch) const {
  if (launch.total_threads <= 0) {
    return Status::InvalidArgument("Launch: total_threads must be > 0");
  }
  FLB_ASSIGN_OR_RETURN(BlockPlan plan,
                       rm_.PlanLaunch(launch.total_threads, launch.demand));

  // Resident (concurrently executing) threads across the device.
  const double resident =
      plan.occupancy * spec_.max_threads_per_sm * spec_.num_sms;
  const int waves = static_cast<int>(
      std::ceil(static_cast<double>(launch.total_threads) / resident));

  // Per-wave time: each resident thread retires ops_per_thread limb ops;
  // the SM's cores retire them at cycles_per_limb_op each. The SM can only
  // issue cuda_cores_per_sm lanes per cycle, so when more threads are
  // resident than cores the latency is hidden but throughput is core-bound:
  // effective throughput per SM = cores / cycles_per_op per cycle.
  const double active_threads_per_sm =
      std::min<double>(plan.occupancy * spec_.max_threads_per_sm,
                       static_cast<double>(launch.total_threads) /
                           spec_.num_sms);
  const double issue_ratio =
      std::max(1.0, active_threads_per_sm / spec_.cuda_cores_per_sm);
  double per_thread_sec = static_cast<double>(launch.ops_per_thread) *
                          spec_.cycles_per_limb_op / spec_.core_clock_hz *
                          issue_ratio;

  // Divergence penalty when the resource manager is not combining branches:
  // each divergent region serializes the two warp halves.
  if (!rm_.branch_combining() && launch.demand.divergent_branches > 0) {
    per_thread_sec *= 1.0 + 0.5 * launch.demand.divergent_branches;
  }
  // Register spills (demand beyond the architectural cap) push operand
  // traffic to local memory and stretch the arithmetic proportionally.
  per_thread_sec *= rm_.RegisterSpillFactor(launch.demand);

  LaunchResult result;
  result.sim_seconds =
      spec_.kernel_launch_latency_sec + waves * per_thread_sec;
  result.occupancy = plan.occupancy;
  result.waves = waves;
  result.block_threads = plan.block_threads;
  result.grid_blocks = plan.grid_blocks;
  result.limiting_resource = plan.limiting_resource;

  // SM utilization: fraction of the device's resident-thread capacity that
  // held live work, averaged over the kernel's waves. The final (partial)
  // wave drags utilization down for small launches.
  const double capacity = static_cast<double>(spec_.MaxResidentThreads());
  const double full_waves_util = plan.occupancy;
  const double used_in_last_wave =
      launch.total_threads - static_cast<int64_t>(resident) * (waves - 1);
  const double last_wave_util =
      std::clamp(used_in_last_wave / capacity, 0.0, full_waves_util);
  result.sm_utilization =
      waves == 1 ? last_wave_util
                 : ((waves - 1) * full_waves_util + last_wave_util) / waves;
  return result;
}

void Device::RecordKernelStats(const LaunchResult& result) {
  ++stats_.kernels_launched;
  stats_.kernel_seconds += result.sim_seconds;
  stats_.util_sum += result.sm_utilization * result.sim_seconds;
  stats_.util_weight += result.sim_seconds;
}

Result<LaunchResult> Device::Launch(const KernelLaunch& launch) {
  FLB_ASSIGN_OR_RETURN(LaunchResult result, EstimateLaunch(launch));

  // Execute the real arithmetic.
  if (launch.body) launch.body();

  RecordKernelStats(result);
  if (clock_ != nullptr) {
    clock_->Charge(CostKind::kGpuKernel, result.sim_seconds);
  }
  return result;
}

double Device::TransferSeconds(size_t bytes) const {
  return spec_.pcie_latency_sec +
         bytes / spec_.pcie_bandwidth_bytes_per_sec;
}

double Device::CopyToDevice(size_t bytes) {
  const double sec = TransferSeconds(bytes);
  ++stats_.h2d_copies;
  stats_.bytes_h2d += bytes;
  stats_.transfer_seconds += sec;
  if (clock_ != nullptr) clock_->Charge(CostKind::kPcieTransfer, sec);
  return sec;
}

double Device::CopyFromDevice(size_t bytes) {
  const double sec = TransferSeconds(bytes);
  ++stats_.d2h_copies;
  stats_.bytes_d2h += bytes;
  stats_.transfer_seconds += sec;
  if (clock_ != nullptr) clock_->Charge(CostKind::kPcieTransfer, sec);
  return sec;
}

// ---------------------------------------------------------------------------
// Streams and events
// ---------------------------------------------------------------------------

Status Device::CheckStream(StreamId stream) const {
  if (stream < 0 || stream >= num_streams()) {
    return Status::InvalidArgument("Device: unknown stream " +
                                   std::to_string(stream));
  }
  return Status::OK();
}

StreamId Device::CreateStream() {
  stream_ready_.push_back(0.0);
  ++stats_.streams_created;
  return static_cast<StreamId>(stream_ready_.size()) - 1;
}

Result<LaunchResult> Device::LaunchAsync(const KernelLaunch& launch,
                                         StreamId stream) {
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  FLB_ASSIGN_OR_RETURN(LaunchResult result, EstimateLaunch(launch));

  // The real arithmetic still runs host-side, immediately: only the modeled
  // schedule is deferred, so async results stay bit-exact with the
  // synchronous path.
  if (launch.body) launch.body();

  const double start = std::max(stream_ready_[stream], compute_free_);
  const double end = start + result.sim_seconds;
  result.start_seconds = start;
  result.end_seconds = end;
  stream_ready_[stream] = end;
  compute_free_ = end;
  window_kernel_busy_ += result.sim_seconds;
  RecordKernelStats(result);
  return result;
}

Result<CopyResult> Device::CopyAsync(size_t bytes, StreamId stream,
                                     bool to_device) {
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  CopyResult copy;
  copy.seconds = TransferSeconds(bytes);
  double& engine = to_device ? h2d_free_ : d2h_free_;
  double& other = to_device ? d2h_free_ : h2d_free_;
  double start = std::max(stream_ready_[stream], engine);
  // A half-duplex link has one DMA engine shared by both directions.
  if (!spec_.pcie_full_duplex) start = std::max(start, other);
  copy.start_seconds = start;
  copy.end_seconds = start + copy.seconds;
  engine = copy.end_seconds;
  if (!spec_.pcie_full_duplex) other = copy.end_seconds;
  stream_ready_[stream] = copy.end_seconds;
  window_transfer_busy_ += copy.seconds;
  if (to_device) {
    ++stats_.h2d_copies;
    stats_.bytes_h2d += bytes;
  } else {
    ++stats_.d2h_copies;
    stats_.bytes_d2h += bytes;
  }
  stats_.transfer_seconds += copy.seconds;
  return copy;
}

Result<CopyResult> Device::CopyToDeviceAsync(size_t bytes, StreamId stream) {
  return CopyAsync(bytes, stream, /*to_device=*/true);
}

Result<CopyResult> Device::CopyFromDeviceAsync(size_t bytes, StreamId stream) {
  return CopyAsync(bytes, stream, /*to_device=*/false);
}

Result<EventId> Device::RecordEvent(StreamId stream) {
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  events_.push_back(stream_ready_[stream]);
  ++stats_.events_recorded;
  return static_cast<EventId>(events_.size()) - 1;
}

Status Device::WaitEvent(StreamId stream, EventId event) {
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  if (event < 0 || event >= static_cast<EventId>(events_.size())) {
    return Status::InvalidArgument("Device: unknown event " +
                                   std::to_string(event));
  }
  stream_ready_[stream] = std::max(stream_ready_[stream], events_[event]);
  return Status::OK();
}

Result<double> Device::StreamReadySeconds(StreamId stream) const {
  FLB_RETURN_IF_ERROR(CheckStream(stream));
  return stream_ready_[stream];
}

double Device::Synchronize() {
  double makespan = 0.0;
  for (double ready : stream_ready_) makespan = std::max(makespan, ready);

  // Kernels serialize on the compute engine, so the window is never shorter
  // than its kernel busy time; everything beyond that is transfer time the
  // overlap failed to hide.
  const double exposed_transfer =
      std::max(0.0, makespan - window_kernel_busy_);
  if (clock_ != nullptr) {
    if (window_kernel_busy_ > 0.0) {
      clock_->Charge(CostKind::kGpuKernel, window_kernel_busy_);
    }
    if (exposed_transfer > 0.0) {
      clock_->Charge(CostKind::kPcieTransfer, exposed_transfer);
    }
  }
  stats_.overlap_saved_seconds +=
      window_kernel_busy_ + window_transfer_busy_ - makespan;
  ++stats_.synchronizations;

  // Fresh window origin.
  std::fill(stream_ready_.begin(), stream_ready_.end(), 0.0);
  compute_free_ = h2d_free_ = d2h_free_ = 0.0;
  events_.clear();
  window_kernel_busy_ = window_transfer_busy_ = 0.0;
  return makespan;
}

}  // namespace flb::gpusim
