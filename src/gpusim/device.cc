#include "src/gpusim/device.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace flb::gpusim {

Device::Device(DeviceSpec spec, SimClock* clock, bool branch_combining)
    : spec_(std::move(spec)),
      clock_(clock),
      rm_(spec_, branch_combining) {}

Result<LaunchResult> Device::Launch(const KernelLaunch& launch) {
  if (launch.total_threads <= 0) {
    return Status::InvalidArgument("Launch: total_threads must be > 0");
  }
  FLB_ASSIGN_OR_RETURN(BlockPlan plan,
                       rm_.PlanLaunch(launch.total_threads, launch.demand));

  // Execute the real arithmetic.
  if (launch.body) launch.body();

  // Resident (concurrently executing) threads across the device.
  const double resident =
      plan.occupancy * spec_.max_threads_per_sm * spec_.num_sms;
  const int waves = static_cast<int>(
      std::ceil(static_cast<double>(launch.total_threads) / resident));

  // Per-wave time: each resident thread retires ops_per_thread limb ops;
  // the SM's cores retire them at cycles_per_limb_op each. The SM can only
  // issue cuda_cores_per_sm lanes per cycle, so when more threads are
  // resident than cores the latency is hidden but throughput is core-bound:
  // effective throughput per SM = cores / cycles_per_op per cycle.
  const double active_threads_per_sm =
      std::min<double>(plan.occupancy * spec_.max_threads_per_sm,
                       static_cast<double>(launch.total_threads) /
                           spec_.num_sms);
  const double issue_ratio =
      std::max(1.0, active_threads_per_sm / spec_.cuda_cores_per_sm);
  double per_thread_sec = static_cast<double>(launch.ops_per_thread) *
                          spec_.cycles_per_limb_op / spec_.core_clock_hz *
                          issue_ratio;

  // Divergence penalty when the resource manager is not combining branches:
  // each divergent region serializes the two warp halves.
  if (!rm_.branch_combining() && launch.demand.divergent_branches > 0) {
    per_thread_sec *= 1.0 + 0.5 * launch.demand.divergent_branches;
  }
  // Register spills (demand beyond the architectural cap) push operand
  // traffic to local memory and stretch the arithmetic proportionally.
  per_thread_sec *= rm_.RegisterSpillFactor(launch.demand);

  LaunchResult result;
  result.sim_seconds =
      spec_.kernel_launch_latency_sec + waves * per_thread_sec;
  result.occupancy = plan.occupancy;
  result.waves = waves;
  result.block_threads = plan.block_threads;
  result.grid_blocks = plan.grid_blocks;
  result.limiting_resource = plan.limiting_resource;

  // SM utilization: fraction of the device's resident-thread capacity that
  // held live work, averaged over the kernel's waves. The final (partial)
  // wave drags utilization down for small launches.
  const double capacity = static_cast<double>(spec_.MaxResidentThreads());
  const double full_waves_util = plan.occupancy;
  const double used_in_last_wave =
      launch.total_threads - static_cast<int64_t>(resident) * (waves - 1);
  const double last_wave_util =
      std::clamp(used_in_last_wave / capacity, 0.0, full_waves_util);
  result.sm_utilization =
      waves == 1 ? last_wave_util
                 : ((waves - 1) * full_waves_util + last_wave_util) / waves;

  // Telemetry + clock.
  ++stats_.kernels_launched;
  stats_.kernel_seconds += result.sim_seconds;
  stats_.util_sum += result.sm_utilization * result.sim_seconds;
  stats_.util_weight += result.sim_seconds;
  if (clock_ != nullptr) {
    clock_->Charge(CostKind::kGpuKernel, result.sim_seconds);
  }
  return result;
}

double Device::CopyToDevice(size_t bytes) {
  const double sec =
      spec_.pcie_latency_sec + bytes / spec_.pcie_bandwidth_bytes_per_sec;
  ++stats_.h2d_copies;
  stats_.bytes_h2d += bytes;
  stats_.transfer_seconds += sec;
  if (clock_ != nullptr) clock_->Charge(CostKind::kPcieTransfer, sec);
  return sec;
}

double Device::CopyFromDevice(size_t bytes) {
  const double sec =
      spec_.pcie_latency_sec + bytes / spec_.pcie_bandwidth_bytes_per_sec;
  ++stats_.d2h_copies;
  stats_.bytes_d2h += bytes;
  stats_.transfer_seconds += sec;
  if (clock_ != nullptr) clock_->Charge(CostKind::kPcieTransfer, sec);
  return sec;
}

}  // namespace flb::gpusim
