// Device: the simulated CUDA device FLBooster's GPU-HE layer runs on.
//
// A kernel launch takes (a) the work decomposition — total threads and limb
// operations per thread — and (b) a host-side body that performs the real
// arithmetic. The body executes synchronously (results are bit-exact); the
// device charges *modeled* kernel time to the SimClock:
//
//   waves        = ceil(total_threads / resident_threads)
//   kernel_time  = launch_latency + waves * ops_per_thread * cycles_per_op
//                                          / core_clock * (1/ilp)
//
// where resident_threads = num_sms * max_threads_per_sm * occupancy comes
// from the ResourceManager's block plan, and a divergence penalty stretches
// per-thread time when branch combining is disabled. CopyToDevice /
// CopyFromDevice charge PCIe time the same way (paper Eq. 10's
// beta_transfer term).
//
// Async execution (§IV / §V copy-compute overlap): the device also exposes
// CUDA-style streams and events. Each stream is an in-order queue with its
// own timeline; work on different streams overlaps subject to the shared
// hardware engines:
//
//   * one compute engine — kernels serialize device-wide (the HE kernels
//     saturate the SMs, so concurrent kernels would not help);
//   * one DMA engine per PCIe direction — same-direction copies serialize,
//     H2D and D2H overlap when the spec's link is full duplex.
//
// Async ops advance the stream/engine timelines but charge nothing until
// Synchronize(), which charges the SimClock with the window's kernel busy
// time plus only the *exposed* PCIe time (makespan - kernel busy): copies
// hidden behind kernels are free, exactly the overlap Fig. 4 banks on. A
// single-stream window degenerates to the old serialized H2D → kernel →
// D2H accounting bit-for-bit.
//
// The device also keeps the utilization telemetry behind Fig. 6: a
// work-weighted average of SM utilization across launches.

#ifndef FLB_GPUSIM_DEVICE_H_
#define FLB_GPUSIM_DEVICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/sim_clock.h"
#include "src/gpusim/device_spec.h"
#include "src/gpusim/resource_manager.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::gpusim {

// Stream 0 always exists (the default stream); CreateStream returns 1, 2, ...
using StreamId = int;
using EventId = int;

inline constexpr StreamId kDefaultStream = 0;

struct KernelLaunch {
  std::string name;
  // Work decomposition.
  int64_t total_threads = 0;
  // Limb operations (32-bit multiply-accumulate equivalents) each thread
  // retires. The GHE layer derives this from key size and thread split.
  uint64_t ops_per_thread = 0;
  KernelDemand demand;
  // Host body computing the real results. May be empty for pure modeling.
  std::function<void()> body;
};

struct LaunchResult {
  double sim_seconds = 0.0;
  double occupancy = 0.0;       // resident threads / SM capacity
  double sm_utilization = 0.0;  // fraction of device thread-slots doing work
  int waves = 0;
  int block_threads = 0;
  int grid_blocks = 0;
  const char* limiting_resource = "threads";
  // Async launches only: position on the current window's timeline
  // (seconds since the window origin). Zero for synchronous launches.
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

// Timeline placement of one async PCIe copy.
struct CopyResult {
  double seconds = 0.0;  // modeled transfer duration
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

struct DeviceStats {
  uint64_t kernels_launched = 0;
  uint64_t h2d_copies = 0;
  uint64_t d2h_copies = 0;
  uint64_t bytes_h2d = 0;
  uint64_t bytes_d2h = 0;
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  // Async-window telemetry.
  uint64_t streams_created = 0;
  uint64_t events_recorded = 0;
  uint64_t synchronizations = 0;
  // Sum over windows of (busy kernel + busy transfer) - makespan: the time
  // the stream overlap hid relative to fully serial execution.
  double overlap_saved_seconds = 0.0;
  // Work-weighted mean SM utilization (Fig. 6 metric).
  double MeanSmUtilization() const {
    return util_weight == 0.0 ? 0.0 : util_sum / util_weight;
  }
  double util_sum = 0.0;     // sum of utilization * kernel_seconds
  double util_weight = 0.0;  // sum of kernel_seconds
};

class Device : public obs::MetricsSource {
 public:
  // `clock` may be null (timing still returned per launch, just not
  // accumulated). `branch_combining` selects the resource-manager policy;
  // FLBooster runs with it on, the HAFLO baseline with it off.
  Device(DeviceSpec spec, SimClock* clock, bool branch_combining = true);

  const DeviceSpec& spec() const { return spec_; }
  ResourceManager& resource_manager() { return rm_; }
  const ResourceManager& resource_manager() const { return rm_; }

  // Runs the kernel body and charges modeled time.
  Result<LaunchResult> Launch(const KernelLaunch& launch);

  // Pure timing/geometry model of a launch: no body execution, no stats,
  // no clock. Launch/LaunchAsync price the identical result.
  Result<LaunchResult> EstimateLaunch(const KernelLaunch& launch) const;

  // PCIe transfers (paper Eq. 10's beta_transfer terms).
  double CopyToDevice(size_t bytes);
  double CopyFromDevice(size_t bytes);
  // Modeled duration of one transfer of `bytes` (latency + bytes/bandwidth).
  double TransferSeconds(size_t bytes) const;

  // ---- Streams and events (async timeline) ---------------------------------

  // Creates a new stream, idle at the current window origin.
  StreamId CreateStream();
  int num_streams() const {
    common::MutexLock lock(mu_);
    return static_cast<int>(stream_ready_.size());
  }

  // Enqueues work on a stream. The body (if any) runs immediately — results
  // are bit-exact regardless of the modeled schedule — while the modeled
  // time lands on the stream timeline. Charges nothing until Synchronize().
  Result<LaunchResult> LaunchAsync(const KernelLaunch& launch, StreamId stream);
  Result<CopyResult> CopyToDeviceAsync(size_t bytes, StreamId stream);
  Result<CopyResult> CopyFromDeviceAsync(size_t bytes, StreamId stream);

  // Records the stream's current timeline position; WaitEvent makes another
  // stream's next op start no earlier than that position (cross-stream
  // ordering, cudaStreamWaitEvent semantics). Events are window-local and
  // cleared by Synchronize().
  Result<EventId> RecordEvent(StreamId stream);
  Status WaitEvent(StreamId stream, EventId event);

  // Seconds since the window origin at which the stream's enqueued work
  // completes.
  Result<double> StreamReadySeconds(StreamId stream) const;

  // Drains every stream: charges the SimClock with the window's kernel busy
  // time and the exposed (non-overlapped) transfer time, resets all stream
  // and engine timelines to a fresh window origin, and returns the window
  // makespan in seconds.
  double Synchronize();

  // Snapshot by value: the counters keep moving under their own lock.
  DeviceStats stats() const {
    common::MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() {
    common::MutexLock lock(mu_);
    stats_ = DeviceStats{};
  }

  // Position on this device's trace timeline: the SimClock when one is
  // attached, otherwise a local cursor that advances with every charged
  // operation (so clock-less bench devices still emit monotonic traces).
  double TimelineNow() const;
  // Unique trace/metrics instance name ("gpu", "gpu#2", ...).
  const std::string& instance_name() const { return instance_; }

  // obs::MetricsSource: DeviceStats exposed through the unified registry.
  void CollectMetrics(std::vector<obs::MetricValue>& out) const override;
  void ResetMetrics() override { ResetStats(); }

 private:
  // Buffered trace record for one async op; flushed at Synchronize() when
  // the window's absolute timeline position is known.
  struct PendingTraceOp {
    enum class Kind { kKernel, kH2d, kD2h } kind = Kind::kKernel;
    std::string name;
    StreamId stream = 0;
    double start = 0.0;  // seconds since window origin
    double end = 0.0;
    double occupancy = 0.0;  // kernels
    uint64_t bytes = 0;      // copies
  };

  Status CheckStream(StreamId stream) const FLB_REQUIRES(mu_);
  Result<CopyResult> CopyAsync(size_t bytes, StreamId stream, bool to_device);
  void RecordKernelStats(const LaunchResult& result) FLB_REQUIRES(mu_);
  void AdvanceLocalTime(double seconds) FLB_REQUIRES(mu_);
  double TimelineNowLocked() const FLB_REQUIRES(mu_);
  obs::Track StreamTrack(StreamId stream) const;
  obs::Track DmaTrack(bool to_device) const;
  void TraceKernel(obs::Track track, const std::string& name, double start,
                   double end, double occupancy, int stream) const;

  DeviceSpec spec_;
  SimClock* clock_;
  ResourceManager rm_;
  // Guards the mutable device/stream/window state below. Kernel bodies and
  // the SimClock/recorder calls run outside the lock (Launch* validate and
  // account under brief critical sections around the body).
  mutable common::Mutex mu_;
  DeviceStats stats_ FLB_GUARDED_BY(mu_);
  std::string instance_;
  // Trace cursor when clock_ == nullptr.
  double local_now_ FLB_GUARDED_BY(mu_) = 0.0;
  std::vector<PendingTraceOp> pending_trace_ FLB_GUARDED_BY(mu_);

  // Async window state: all values are seconds since the window origin.
  // Index 0 = default stream.
  std::vector<double> stream_ready_ FLB_GUARDED_BY(mu_) = {0.0};
  // The single kernel engine.
  double compute_free_ FLB_GUARDED_BY(mu_) = 0.0;
  // Per-direction DMA engines.
  double h2d_free_ FLB_GUARDED_BY(mu_) = 0.0;
  double d2h_free_ FLB_GUARDED_BY(mu_) = 0.0;
  std::vector<double> events_ FLB_GUARDED_BY(mu_);
  double window_kernel_busy_ FLB_GUARDED_BY(mu_) = 0.0;
  double window_transfer_busy_ FLB_GUARDED_BY(mu_) = 0.0;

  // Registers DeviceStats with the global MetricsRegistry for the device's
  // lifetime (declared last: registration after the stats exist).
  obs::ScopedMetricsSource metrics_registration_{this};
};

}  // namespace flb::gpusim

#endif  // FLB_GPUSIM_DEVICE_H_
