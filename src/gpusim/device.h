// Device: the simulated CUDA device FLBooster's GPU-HE layer runs on.
//
// A kernel launch takes (a) the work decomposition — total threads and limb
// operations per thread — and (b) a host-side body that performs the real
// arithmetic. The body executes synchronously (results are bit-exact); the
// device charges *modeled* kernel time to the SimClock:
//
//   waves        = ceil(total_threads / resident_threads)
//   kernel_time  = launch_latency + waves * ops_per_thread * cycles_per_op
//                                          / core_clock * (1/ilp)
//
// where resident_threads = num_sms * max_threads_per_sm * occupancy comes
// from the ResourceManager's block plan, and a divergence penalty stretches
// per-thread time when branch combining is disabled. CopyToDevice /
// CopyFromDevice charge PCIe time the same way (paper Eq. 10's
// beta_transfer term).
//
// The device also keeps the utilization telemetry behind Fig. 6: a
// work-weighted average of SM utilization across launches.

#ifndef FLB_GPUSIM_DEVICE_H_
#define FLB_GPUSIM_DEVICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/sim_clock.h"
#include "src/gpusim/device_spec.h"
#include "src/gpusim/resource_manager.h"

namespace flb::gpusim {

struct KernelLaunch {
  std::string name;
  // Work decomposition.
  int64_t total_threads = 0;
  // Limb operations (32-bit multiply-accumulate equivalents) each thread
  // retires. The GHE layer derives this from key size and thread split.
  uint64_t ops_per_thread = 0;
  KernelDemand demand;
  // Host body computing the real results. May be empty for pure modeling.
  std::function<void()> body;
};

struct LaunchResult {
  double sim_seconds = 0.0;
  double occupancy = 0.0;       // resident threads / SM capacity
  double sm_utilization = 0.0;  // fraction of device thread-slots doing work
  int waves = 0;
  int block_threads = 0;
  int grid_blocks = 0;
  const char* limiting_resource = "threads";
};

struct DeviceStats {
  uint64_t kernels_launched = 0;
  uint64_t h2d_copies = 0;
  uint64_t d2h_copies = 0;
  uint64_t bytes_h2d = 0;
  uint64_t bytes_d2h = 0;
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  // Work-weighted mean SM utilization (Fig. 6 metric).
  double MeanSmUtilization() const {
    return util_weight == 0.0 ? 0.0 : util_sum / util_weight;
  }
  double util_sum = 0.0;     // sum of utilization * kernel_seconds
  double util_weight = 0.0;  // sum of kernel_seconds
};

class Device {
 public:
  // `clock` may be null (timing still returned per launch, just not
  // accumulated). `branch_combining` selects the resource-manager policy;
  // FLBooster runs with it on, the HAFLO baseline with it off.
  Device(DeviceSpec spec, SimClock* clock, bool branch_combining = true);

  const DeviceSpec& spec() const { return spec_; }
  ResourceManager& resource_manager() { return rm_; }
  const ResourceManager& resource_manager() const { return rm_; }

  // Runs the kernel body and charges modeled time.
  Result<LaunchResult> Launch(const KernelLaunch& launch);

  // PCIe transfers (paper Eq. 10's beta_transfer terms).
  double CopyToDevice(size_t bytes);
  double CopyFromDevice(size_t bytes);

  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }

 private:
  DeviceSpec spec_;
  SimClock* clock_;
  ResourceManager rm_;
  DeviceStats stats_;
};

}  // namespace flb::gpusim

#endif  // FLB_GPUSIM_DEVICE_H_
