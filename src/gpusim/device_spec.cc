#include "src/gpusim/device_spec.h"

namespace flb::gpusim {

DeviceSpec DeviceSpec::Rtx3090() {
  DeviceSpec spec;
  spec.name = "NVIDIA GeForce RTX 3090 (simulated)";
  spec.num_sms = 82;
  spec.cuda_cores_per_sm = 128;
  spec.max_threads_per_sm = 1536;
  spec.max_threads_per_block = 1024;
  spec.warp_size = 32;
  spec.registers_per_sm = 65536;
  spec.max_registers_per_thread = 255;
  spec.shared_mem_per_sm = 100 * 1024;
  spec.global_mem_bytes = 24ull * 1024 * 1024 * 1024;
  spec.core_clock_hz = 1.695e9;
  spec.pcie_bandwidth_bytes_per_sec = 16.0e9;  // PCIe 4.0 x16 effective
  spec.pcie_latency_sec = 10e-6;
  spec.kernel_launch_latency_sec = 5e-6;
  return spec;
}

DeviceSpec DeviceSpec::JetsonClass() {
  DeviceSpec spec;
  spec.name = "Edge-class GPU (simulated)";
  spec.num_sms = 8;
  spec.cuda_cores_per_sm = 128;
  spec.max_threads_per_sm = 1024;
  spec.max_threads_per_block = 1024;
  spec.warp_size = 32;
  spec.registers_per_sm = 65536;
  spec.max_registers_per_thread = 255;
  spec.shared_mem_per_sm = 48 * 1024;
  spec.global_mem_bytes = 8ull * 1024 * 1024 * 1024;
  spec.core_clock_hz = 1.1e9;
  spec.pcie_bandwidth_bytes_per_sec = 4.0e9;
  spec.pcie_latency_sec = 20e-6;
  spec.kernel_launch_latency_sec = 8e-6;
  // Edge modules hang the GPU off a shared memory path: copies in the two
  // directions contend instead of overlapping.
  spec.pcie_full_duplex = false;
  return spec;
}

}  // namespace flb::gpusim
