// DeviceSpec: the static description of a simulated CUDA device.
//
// The reproduction substitutes the paper's NVIDIA RTX 3090 with a simulator
// (see DESIGN.md §1). DeviceSpec carries the architectural constants that
// drive the occupancy and timing model: SM count, thread/register/shared-
// memory limits, clock, and PCIe link characteristics.

#ifndef FLB_GPUSIM_DEVICE_SPEC_H_
#define FLB_GPUSIM_DEVICE_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace flb::gpusim {

struct DeviceSpec {
  std::string name;

  // Compute resources.
  int num_sms = 0;                  // streaming multiprocessors
  int cuda_cores_per_sm = 0;        // int32 lanes per SM
  int max_threads_per_sm = 0;       // resident-thread limit per SM
  int max_threads_per_block = 0;
  int warp_size = 32;
  int registers_per_sm = 0;         // 32-bit registers per SM
  int max_registers_per_thread = 0;
  size_t shared_mem_per_sm = 0;     // bytes
  size_t global_mem_bytes = 0;

  // Clocks and links.
  double core_clock_hz = 0;         // boost clock
  double pcie_bandwidth_bytes_per_sec = 0;
  double pcie_latency_sec = 0;      // per-transfer fixed cost
  double kernel_launch_latency_sec = 0;
  // Whether the PCIe link carries H2D and D2H traffic concurrently (one DMA
  // engine per direction, as on every discrete desktop GPU). When false the
  // async timeline serializes the two directions on a single engine — the
  // integrated/edge-device case where copies share one memory path.
  bool pcie_full_duplex = true;

  // Instruction model: average core cycles retired per 32-bit
  // multiply-accumulate limb operation, including issue overheads. One
  // CUDA core retires roughly one 32-bit IMAD per cycle at full occupancy;
  // 4 cycles/op folds in dependency stalls and memory traffic for the
  // register-resident Montgomery kernels.
  double cycles_per_limb_op = 4.0;

  // Maximum threads resident across the whole device.
  int MaxResidentThreads() const { return num_sms * max_threads_per_sm; }

  // The RTX 3090 used by the paper's testbed (GA102: 82 SMs, 128 cores/SM,
  // 1536 threads/SM, 64K registers/SM, 24 GB, ~1.7 GHz boost, PCIe 4.0 x16).
  static DeviceSpec Rtx3090();
  // A small edge-class GPU preset, used by scaling benchmarks.
  static DeviceSpec JetsonClass();
};

}  // namespace flb::gpusim

#endif  // FLB_GPUSIM_DEVICE_SPEC_H_
