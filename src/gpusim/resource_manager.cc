#include "src/gpusim/resource_manager.h"

#include <algorithm>

#include "src/common/check.h"

namespace flb::gpusim {

ResourceManager::ResourceManager(const DeviceSpec& spec, bool branch_combining)
    : spec_(spec),
      branch_combining_(branch_combining),
      block_sizes_({64, 128, 192, 256, 384, 512, 768, 1024}) {
  // Respect the device's block-size ceiling.
  std::erase_if(block_sizes_,
                [&](int b) { return b > spec_.max_threads_per_block; });
  FLB_CHECK(!block_sizes_.empty());
}

int ResourceManager::EffectiveRegisters(const KernelDemand& demand) const {
  int regs = std::max(demand.registers_per_thread, 1);
  if (!branch_combining_ && demand.divergent_branches > 0) {
    // Each unmanaged divergent region keeps both sides' live ranges
    // resident: demand doubles per region (paper §IV-A2), capped at the
    // architectural maximum.
    for (int i = 0; i < demand.divergent_branches; ++i) {
      regs = std::min(regs * 2, spec_.max_registers_per_thread);
      if (regs == spec_.max_registers_per_thread) break;
    }
  }
  return std::min(regs, spec_.max_registers_per_thread);
}

double ResourceManager::RegisterSpillFactor(const KernelDemand& demand) const {
  // Uncapped demand under the branch policy.
  double regs = std::max(demand.registers_per_thread, 1);
  if (!branch_combining_ && demand.divergent_branches > 0) {
    for (int i = 0; i < demand.divergent_branches; ++i) regs *= 2;
  }
  return std::max(1.0, regs / spec_.max_registers_per_thread);
}

double ResourceManager::OccupancyFor(int block_threads,
                                     const KernelDemand& demand) const {
  FLB_CHECK(block_threads > 0 &&
            block_threads <= spec_.max_threads_per_block);
  const int regs = EffectiveRegisters(demand);

  // Blocks per SM under each limit.
  const int by_threads = spec_.max_threads_per_sm / block_threads;
  const int64_t block_regs = static_cast<int64_t>(regs) * block_threads;
  const int by_regs =
      static_cast<int>(spec_.registers_per_sm / std::max<int64_t>(block_regs, 1));
  const int by_smem =
      demand.shared_mem_per_block == 0
          ? by_threads
          : static_cast<int>(spec_.shared_mem_per_sm /
                             demand.shared_mem_per_block);

  const int blocks_per_sm = std::max(0, std::min({by_threads, by_regs, by_smem}));
  const double resident = static_cast<double>(blocks_per_sm) * block_threads;
  return resident / spec_.max_threads_per_sm;
}

Result<BlockPlan> ResourceManager::PlanLaunch(int64_t total_threads,
                                              const KernelDemand& demand) const {
  if (total_threads <= 0) {
    return Status::InvalidArgument("PlanLaunch: total_threads must be > 0");
  }
  BlockPlan best;
  for (int block : block_sizes_) {
    const double occ = OccupancyFor(block, demand);
    // Prefer higher occupancy; break ties toward larger blocks (fewer
    // blocks -> less scheduling overhead), but never a block larger than
    // the whole task for tiny launches.
    if (occ > best.occupancy ||
        (occ == best.occupancy && block > best.block_threads &&
         block <= total_threads)) {
      best.block_threads = block;
      best.occupancy = occ;
    }
  }
  if (best.occupancy <= 0.0) {
    return Status::ResourceExhausted(
        "kernel demand exceeds per-SM resources at every block size");
  }
  // Shrink oversized blocks for small launches (a 40-thread task should not
  // occupy a 1024-thread block).
  while (best.block_threads > total_threads &&
         best.block_threads > block_sizes_.front()) {
    auto it = std::find(block_sizes_.begin(), block_sizes_.end(),
                        best.block_threads);
    FLB_CHECK(it != block_sizes_.begin());
    best.block_threads = *(it - 1);
    best.occupancy = OccupancyFor(best.block_threads, demand);
  }
  best.grid_blocks = static_cast<int>(
      (total_threads + best.block_threads - 1) / best.block_threads);
  best.effective_registers = EffectiveRegisters(demand);

  // Report the binding constraint (diagnostics for Fig. 6 commentary).
  const int by_threads = spec_.max_threads_per_sm / best.block_threads;
  const int64_t block_regs =
      static_cast<int64_t>(best.effective_registers) * best.block_threads;
  const int by_regs = static_cast<int>(spec_.registers_per_sm /
                                       std::max<int64_t>(block_regs, 1));
  if (by_regs < by_threads) {
    best.limiting_resource = "registers";
  } else if (demand.shared_mem_per_block != 0 &&
             static_cast<int>(spec_.shared_mem_per_sm /
                              demand.shared_mem_per_block) < by_threads) {
    best.limiting_resource = "shared_mem";
  } else {
    best.limiting_resource = "threads";
  }
  return best;
}

Result<ResourceManager::DeviceAddress> ResourceManager::Alloc(size_t bytes) {
  if (bytes == 0) {
    return Status::InvalidArgument("Alloc: zero-byte device allocation");
  }
  ++pool_stats_.alloc_calls;
  // First-fit over free-marked entries of the exact size class. Exact-size
  // matching is what the paper's "marks the allocated GPU memory addresses"
  // table does for HE workloads, whose buffer shapes repeat every batch.
  for (auto& [addr, alloc] : table_) {
    if (!alloc.occupied && alloc.bytes == bytes) {
      alloc.occupied = true;
      ++pool_stats_.pool_hits;
      pool_stats_.bytes_in_use += bytes;
      return addr;
    }
  }
  if (total_reserved_ + bytes > spec_.global_mem_bytes) {
    return Status::ResourceExhausted("device global memory exhausted");
  }
  const DeviceAddress addr = next_addr_;
  next_addr_ += (bytes + 255) & ~size_t{255};  // 256-byte aligned VA bump
  table_[addr] = Allocation{bytes, true};
  total_reserved_ += bytes;
  ++pool_stats_.fresh_allocations;
  pool_stats_.bytes_in_use += bytes;
  pool_stats_.peak_bytes = std::max(pool_stats_.peak_bytes,
                                    pool_stats_.bytes_in_use);
  return addr;
}

Status ResourceManager::Free(DeviceAddress addr) {
  auto it = table_.find(addr);
  if (it == table_.end()) {
    return Status::NotFound("Free: unknown device address");
  }
  if (!it->second.occupied) {
    return Status::FailedPrecondition("Free: double free of device address");
  }
  it->second.occupied = false;
  ++pool_stats_.free_calls;
  pool_stats_.bytes_in_use -= it->second.bytes;
  return Status::OK();
}

void ResourceManager::TrimPool() {
  for (auto it = table_.begin(); it != table_.end();) {
    if (!it->second.occupied) {
      total_reserved_ -= it->second.bytes;
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace flb::gpusim
