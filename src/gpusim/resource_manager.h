// ResourceManager: the paper's §IV-A2 GPU resource manager.
//
// Responsibilities, exactly as the paper describes them:
//   1. Block-size table — stores common block sizes and picks the one that
//      maximizes occupancy for a given task count and per-thread register /
//      shared-memory demand.
//   2. Memory table — marks allocated device addresses so repeated
//      allocations of hot buffer shapes are served from the table instead
//      of fresh cudaMalloc calls (a free-list pool with address marking).
//   3. Register budgeting — computes the effective per-thread register
//      demand, doubling it when a kernel has unmanaged divergent branches
//      and removing the penalty when branch combining is enabled.
//
// All decisions are deterministic functions of the DeviceSpec and the
// kernel's demands, so tests can assert exact outcomes.

#ifndef FLB_GPUSIM_RESOURCE_MANAGER_H_
#define FLB_GPUSIM_RESOURCE_MANAGER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/result.h"
#include "src/gpusim/device_spec.h"

namespace flb::gpusim {

// Per-thread demands a kernel presents to the allocator.
struct KernelDemand {
  int registers_per_thread = 32;
  size_t shared_mem_per_block = 0;
  // Number of data-dependent branch regions in the kernel body. Without
  // branch management each region splits warps and doubles live registers
  // (paper: "double or even several times the number of registers").
  int divergent_branches = 0;
};

// The launch geometry the manager settles on.
struct BlockPlan {
  int block_threads = 0;      // threads per block
  int grid_blocks = 0;        // number of blocks
  int effective_registers = 0;  // per-thread registers after branch policy
  // Occupancy: resident threads per SM under all limits, as a fraction of
  // max_threads_per_sm.
  double occupancy = 0.0;
  // Which resource bound occupancy: "threads", "registers", "shared_mem".
  const char* limiting_resource = "threads";
};

// Statistics the memory table exposes (tested + reported by benches).
struct MemoryPoolStats {
  uint64_t alloc_calls = 0;     // Alloc() invocations
  uint64_t pool_hits = 0;       // served by re-marking an existing address
  uint64_t fresh_allocations = 0;  // required new device memory
  uint64_t free_calls = 0;
  size_t bytes_in_use = 0;
  size_t peak_bytes = 0;
};

class ResourceManager {
 public:
  explicit ResourceManager(const DeviceSpec& spec, bool branch_combining = true);

  // ---- Block-size table ----------------------------------------------------

  // Picks the block size (from the common-size table) and grid that cover
  // `total_threads` with maximal occupancy given the kernel's demands.
  // total_threads must be > 0.
  Result<BlockPlan> PlanLaunch(int64_t total_threads,
                               const KernelDemand& demand) const;

  // Occupancy (resident threads per SM / max threads per SM) achieved by a
  // specific block size under the register and shared-memory limits.
  double OccupancyFor(int block_threads, const KernelDemand& demand) const;

  // The common block sizes the table holds.
  const std::vector<int>& block_size_table() const { return block_sizes_; }

  // ---- Register / branch policy ---------------------------------------------

  // Registers per thread after the branch policy is applied: with branch
  // combining on, divergent regions are serialized/merged and cost no extra
  // registers; with it off, each region doubles the live-register demand
  // (capped at the architectural per-thread maximum).
  int EffectiveRegisters(const KernelDemand& demand) const;

  bool branch_combining() const { return branch_combining_; }

  // When the post-branch-policy register demand exceeds the architectural
  // per-thread maximum, the excess spills to local memory; the kernel's
  // arithmetic slows by roughly demand/max. Returns 1.0 when nothing spills.
  double RegisterSpillFactor(const KernelDemand& demand) const;

  // ---- Memory table (device allocation pool) --------------------------------

  // Opaque device address. Addresses are never reused while marked occupied.
  using DeviceAddress = uint64_t;

  // Allocates `bytes` of device memory. Looks for a free marked address of
  // the same size class first; falls back to fresh allocation. Fails with
  // ResourceExhausted if global memory would be exceeded.
  Result<DeviceAddress> Alloc(size_t bytes);
  // Marks the address free (it stays in the table for reuse).
  Status Free(DeviceAddress addr);
  // Releases all free-marked table entries back to the device.
  void TrimPool();

  const MemoryPoolStats& pool_stats() const { return pool_stats_; }

 private:
  struct Allocation {
    size_t bytes = 0;
    bool occupied = false;
  };

  DeviceSpec spec_;
  bool branch_combining_;
  std::vector<int> block_sizes_;

  std::map<DeviceAddress, Allocation> table_;
  DeviceAddress next_addr_ = 0x10000000;  // device VA space starts here
  size_t total_reserved_ = 0;             // bytes held by the table
  MemoryPoolStats pool_stats_;
};

}  // namespace flb::gpusim

#endif  // FLB_GPUSIM_RESOURCE_MANAGER_H_
