#include "src/mpint/bigint.h"

#include <algorithm>
#include <bit>

#include "src/common/check.h"

namespace flb::mpint {

namespace {

// Karatsuba pays off once schoolbook's O(n^2) limb products dominate the
// recursion overhead; 40 limbs (~1280 bits) is a safe crossover for 32-bit
// limbs (validated by bench_mpint's threshold sweep).
constexpr size_t kKaratsubaThreshold = 40;

}  // namespace

BigInt::BigInt(uint64_t v) {
  if (v == 0) return;
  limbs_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromWords(std::vector<uint32_t> words) {
  BigInt out;
  out.limbs_ = std::move(words);
  out.Normalize();
  return out;
}

BigInt BigInt::PowerOfTwo(int k) {
  FLB_CHECK(k >= 0);
  BigInt out;
  out.limbs_.assign(k / kLimbBits + 1, 0);
  out.limbs_.back() = 1u << (k % kLimbBits);
  return out;
}

BigInt BigInt::Random(Rng& rng, int bits) {
  FLB_CHECK(bits >= 0);
  if (bits == 0) return BigInt();
  const size_t words = (bits + kLimbBits - 1) / kLimbBits;
  std::vector<uint32_t> w = rng.NextWords(words);
  const int top_bits = bits % kLimbBits;
  if (top_bits != 0) w.back() &= (1u << top_bits) - 1;
  return FromWords(std::move(w));
}

BigInt BigInt::RandomBelow(Rng& rng, const BigInt& bound) {
  FLB_CHECK(!bound.IsZero(), "RandomBelow: bound must be positive");
  const int bits = bound.BitLength();
  // Rejection sampling keeps the distribution exactly uniform; expected
  // iterations < 2 because 2^bits < 2*bound.
  for (;;) {
    BigInt candidate = Random(rng, bits);
    if (candidate < bound) return candidate;
  }
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  const uint32_t top = limbs_.back();
  return static_cast<int>(limbs_.size() - 1) * kLimbBits +
         (kLimbBits - std::countl_zero(top));
}

bool BigInt::GetBit(int i) const {
  if (i < 0) return false;
  const size_t limb = static_cast<size_t>(i) / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

uint64_t BigInt::LowU64() const {
  uint64_t v = word(0);
  v |= static_cast<uint64_t>(word(1)) << 32;
  return v;
}

Result<uint64_t> BigInt::ToU64() const {
  if (limbs_.size() > 2) {
    return Status::OutOfRange("BigInt does not fit in 64 bits: " + ToHex());
  }
  return LowU64();
}

int BigInt::Compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  const std::vector<uint32_t>& x = a.limbs_;
  const std::vector<uint32_t>& y = b.limbs_;
  const size_t n = std::max(x.size(), y.size());
  BigInt out;
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t sum = carry + (i < x.size() ? x[i] : 0) +
                         (i < y.size() ? y[i] : 0);
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> kLimbBits;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  FLB_CHECK(a.Compare(b) >= 0, "BigInt::Sub would underflow (unsigned)");
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) -
                   static_cast<int64_t>(b.word(i)) - borrow;
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  FLB_DCHECK(borrow == 0);
  out.Normalize();
  return out;
}

namespace {

// Schoolbook product of two limb vectors into `out` (size x+y, zeroed).
void MulSchoolbook(const uint32_t* x, size_t xn, const uint32_t* y, size_t yn,
                   uint32_t* out) {
  for (size_t i = 0; i < xn; ++i) {
    uint64_t carry = 0;
    const uint64_t xi = x[i];
    for (size_t j = 0; j < yn; ++j) {
      const uint64_t cur = static_cast<uint64_t>(out[i + j]) + xi * y[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> kLimbBits;
    }
    out[i + yn] = static_cast<uint32_t>(carry);
  }
}

}  // namespace

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  const size_t xn = a.limbs_.size(), yn = b.limbs_.size();
  if (std::min(xn, yn) < kKaratsubaThreshold) {
    BigInt out;
    out.limbs_.assign(xn + yn, 0);
    MulSchoolbook(a.limbs_.data(), xn, b.limbs_.data(), yn, out.limbs_.data());
    out.Normalize();
    return out;
  }
  // Karatsuba: split at half of the smaller operand's width.
  const size_t half = std::min(xn, yn) / 2;
  BigInt a_lo = FromWords({a.limbs_.begin(),
                           a.limbs_.begin() + std::min(half, xn)});
  BigInt a_hi = FromWords({a.limbs_.begin() + std::min(half, xn),
                           a.limbs_.end()});
  BigInt b_lo = FromWords({b.limbs_.begin(),
                           b.limbs_.begin() + std::min(half, yn)});
  BigInt b_hi = FromWords({b.limbs_.begin() + std::min(half, yn),
                           b.limbs_.end()});
  BigInt z0 = Mul(a_lo, b_lo);
  BigInt z2 = Mul(a_hi, b_hi);
  BigInt z1 = Mul(Add(a_lo, a_hi), Add(b_lo, b_hi));
  z1 = Sub(Sub(z1, z0), z2);
  const int shift = static_cast<int>(half) * kLimbBits;
  return Add(Add(ShiftLeft(z2, 2 * shift), ShiftLeft(z1, shift)), z0);
}

BigInt BigInt::ShiftLeft(const BigInt& a, int bits) {
  FLB_CHECK(bits >= 0);
  if (a.IsZero() || bits == 0) return a;
  const size_t limb_shift = static_cast<size_t>(bits) / kLimbBits;
  const int bit_shift = bits % kLimbBits;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> kLimbBits);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::ShiftRight(const BigInt& a, int bits) {
  FLB_CHECK(bits >= 0);
  if (a.IsZero() || bits == 0) return a;
  const size_t limb_shift = static_cast<size_t>(bits) / kLimbBits;
  const int bit_shift = bits % kLimbBits;
  if (limb_shift >= a.limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(a.limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<uint64_t>(a.limbs_[i + limb_shift + 1])
           << (kLimbBits - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::TruncateBits(const BigInt& a, int bits) {
  FLB_CHECK(bits >= 0);
  const size_t full_limbs = static_cast<size_t>(bits) / kLimbBits;
  const int rem_bits = bits % kLimbBits;
  if (full_limbs >= a.limbs_.size()) return a;
  std::vector<uint32_t> w(a.limbs_.begin(),
                          a.limbs_.begin() + full_limbs + (rem_bits ? 1 : 0));
  if (rem_bits != 0 && !w.empty()) w.back() &= (1u << rem_bits) - 1;
  return FromWords(std::move(w));
}

Result<std::pair<BigInt, BigInt>> BigInt::DivMod(const BigInt& a,
                                                 const BigInt& b) {
  if (b.IsZero()) {
    return Status::ArithmeticError("division by zero");
  }
  const int cmp = a.Compare(b);
  if (cmp < 0) return std::make_pair(BigInt(), a);
  if (cmp == 0) return std::make_pair(BigInt(1), BigInt());

  // Single-limb divisor: straightforward 64/32 division.
  if (b.limbs_.size() == 1) {
    const uint64_t d = b.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      const uint64_t cur = (rem << kLimbBits) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    return std::make_pair(std::move(q), BigInt(rem));
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, which bounds the per-step quotient-digit error to 2.
  const int shift = std::countl_zero(b.limbs_.back());
  BigInt u = ShiftLeft(a, shift);
  BigInt v = ShiftLeft(b, shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() >= n ? u.limbs_.size() - n : 0;
  u.limbs_.resize(u.limbs_.size() + 1, 0);  // u has m+n+1 limbs

  BigInt q;
  q.limbs_.assign(m + 1, 0);
  const uint64_t v_top = v.limbs_[n - 1];
  const uint64_t v_next = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate the quotient digit from the top two limbs of the current
    // window against the top limb of v.
    const uint64_t numer =
        (static_cast<uint64_t>(u.limbs_[j + n]) << kLimbBits) |
        u.limbs_[j + n - 1];
    uint64_t qhat = numer / v_top;
    uint64_t rhat = numer % v_top;
    while (qhat >= kLimbBase ||
           qhat * v_next >
               ((rhat << kLimbBits) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= kLimbBase) break;
    }
    // Multiply-and-subtract qhat*v from the window u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t prod = qhat * v.limbs_[i] + carry;
      carry = prod >> kLimbBits;
      int64_t diff = static_cast<int64_t>(u.limbs_[i + j]) -
                     static_cast<int64_t>(prod & kLimbMask) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u.limbs_[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    if (diff < 0) {
      // qhat was one too large: add v back once and decrement.
      diff += static_cast<int64_t>(kLimbBase);
      --qhat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t sum = static_cast<uint64_t>(u.limbs_[i + j]) +
                             v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<uint32_t>(sum);
        add_carry = sum >> kLimbBits;
      }
      diff += static_cast<int64_t>(add_carry);
      diff &= static_cast<int64_t>(kLimbMask);
    }
    u.limbs_[j + n] = static_cast<uint32_t>(diff);
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  q.Normalize();
  u.limbs_.resize(n);
  u.Normalize();
  return std::make_pair(std::move(q), ShiftRight(u, shift));
}

Result<BigInt> BigInt::Div(const BigInt& a, const BigInt& b) {
  FLB_ASSIGN_OR_RETURN(auto qr, DivMod(a, b));
  return std::move(qr.first);
}

Result<BigInt> BigInt::Mod(const BigInt& a, const BigInt& b) {
  FLB_ASSIGN_OR_RETURN(auto qr, DivMod(a, b));
  return std::move(qr.second);
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  auto r = BigInt::Div(a, b);
  FLB_CHECK(r.ok(), r.status().ToString());
  return std::move(r).value();
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  auto r = BigInt::Mod(a, b);
  FLB_CHECK(r.ok(), r.status().ToString());
  return std::move(r).value();
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a, y = b;
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  return Mul(a, b) / Gcd(a, b);
}

Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& n) {
  if (n < BigInt(2)) {
    return Status::InvalidArgument("ModInverse: modulus must be >= 2");
  }
  // Extended Euclid over unsigned values: track coefficients with explicit
  // signs (t, t_sign) so BigInt itself stays unsigned.
  BigInt r_prev = n, r = a % n;
  BigInt t_prev, t = BigInt(1);
  bool t_prev_neg = false, t_neg = false;
  while (!r.IsZero()) {
    auto qr = DivMod(r_prev, r);
    FLB_CHECK(qr.ok());
    const BigInt& q = qr->first;
    // (t_prev, t) <- (t, t_prev - q*t), with sign bookkeeping.
    BigInt qt = Mul(q, t);
    BigInt next;
    bool next_neg;
    if (t_prev_neg == t_neg) {
      // Same sign: t_prev - q*t may flip sign.
      if (t_prev >= qt) {
        next = Sub(t_prev, qt);
        next_neg = t_prev_neg;
      } else {
        next = Sub(qt, t_prev);
        next_neg = !t_prev_neg;
      }
    } else {
      // Opposite signs: magnitudes add, sign follows t_prev.
      next = Add(t_prev, qt);
      next_neg = t_prev_neg;
    }
    t_prev = std::move(t);
    t_prev_neg = t_neg;
    t = std::move(next);
    t_neg = next_neg;
    // (r_prev, r) <- (r, r_prev mod r).
    BigInt rem = std::move(qr->second);
    r_prev = std::move(r);
    r = std::move(rem);
  }
  if (!r_prev.IsOne()) {
    return Status::ArithmeticError("ModInverse: values are not coprime");
  }
  BigInt inv = t_prev % n;
  if (t_prev_neg && !inv.IsZero()) inv = Sub(n, inv);
  return inv;
}

Result<BigInt> BigInt::ModMul(const BigInt& a, const BigInt& b,
                              const BigInt& n) {
  if (n.IsZero()) return Status::ArithmeticError("ModMul: modulus is zero");
  return Mod(Mul(a, b), n);
}

Result<BigInt> BigInt::ModPow(const BigInt& a, const BigInt& e,
                              const BigInt& n) {
  if (n.IsZero()) return Status::ArithmeticError("ModPow: modulus is zero");
  if (n.IsOne()) return BigInt();
  FLB_ASSIGN_OR_RETURN(BigInt base, Mod(a, n));
  BigInt result(1);
  const int bits = e.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    FLB_ASSIGN_OR_RETURN(result, ModMul(result, result, n));
    if (e.GetBit(i)) {
      FLB_ASSIGN_OR_RETURN(result, ModMul(result, base, n));
    }
  }
  return result;
}

std::vector<uint32_t> BigInt::ToFixedWords(size_t n) const {
  std::vector<uint32_t> out(n, 0);
  const size_t copy = std::min(n, limbs_.size());
  std::copy(limbs_.begin(), limbs_.begin() + copy, out.begin());
  return out;
}

}  // namespace flb::mpint
