// BigInt: unsigned arbitrary-precision integers on 32-bit limbs.
//
// This is the paper's "multi-precision integer representation" (§IV-A1): an
// integer is a little-endian vector of radix-2^32 words ("limbs"), and every
// arithmetic operation is defined word-wise so that the GPU-HE layer can
// split the words across simulated device threads. The CPU implementation
// here is the reference semantics; src/ghe re-expresses the hot kernels
// (Montgomery multiplication, modular exponentiation) in the simulated
// device's thread-per-limb form and is tested for bit-exact agreement.
//
// Representation invariant: no trailing zero limbs; the value 0 is the empty
// vector. All operations preserve this (see Normalize()).
//
// Signedness: BigInt is unsigned. Subtraction requires a >= b (checked);
// signed intermediates (extended gcd) are handled internally by the callers
// that need them. This matches the paper, which quantizes all gradients into
// unsigned integers before they ever reach the HE layer (§IV-B).

#ifndef FLB_MPINT_BIGINT_H_
#define FLB_MPINT_BIGINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace flb::mpint {

// Number of bits per limb. The paper discusses w=32 and w=64 systems; we fix
// w=32 so that double-wide intermediates fit in uint64_t on any platform.
inline constexpr int kLimbBits = 32;
inline constexpr uint64_t kLimbBase = 1ULL << kLimbBits;
inline constexpr uint32_t kLimbMask = 0xFFFFFFFFu;

class BigInt {
 public:
  // Zero.
  BigInt() = default;
  // From a machine word.
  explicit BigInt(uint64_t v);

  // From little-endian limbs (normalizes trailing zeros away).
  static BigInt FromWords(std::vector<uint32_t> words);
  // Parses "1a2B3c" or "0x1a2b3c". Empty or malformed input is an error.
  static Result<BigInt> FromHex(std::string_view hex);
  // Parses base-10 digits.
  static Result<BigInt> FromDecimal(std::string_view dec);
  // Uniform over [0, 2^bits) — the top bit is NOT forced.
  static BigInt Random(Rng& rng, int bits);
  // Uniform over [0, bound), bound > 0.
  static BigInt RandomBelow(Rng& rng, const BigInt& bound);
  // 2^k.
  static BigInt PowerOfTwo(int k);

  // ---- Introspection -------------------------------------------------------
  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool IsEven() const { return !IsOdd(); }
  // Number of significant bits; 0 for the value 0.
  int BitLength() const;
  // Number of significant limbs; 0 for the value 0.
  size_t WordCount() const { return limbs_.size(); }
  // Bit i (0 = least significant); out-of-range bits read as 0.
  bool GetBit(int i) const;
  // Little-endian limbs (no trailing zeros).
  const std::vector<uint32_t>& words() const { return limbs_; }
  // Limb i, 0 beyond the end — convenient for fixed-width kernel code.
  uint32_t word(size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }
  // Low 64 bits of the value (truncating).
  uint64_t LowU64() const;
  // Whole value as u64; error if it does not fit.
  Result<uint64_t> ToU64() const;

  // ---- Comparison ----------------------------------------------------------
  // -1 / 0 / +1.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& other) const { return limbs_ == other.limbs_; }
  std::strong_ordering operator<=>(const BigInt& other) const {
    const int c = Compare(other);
    return c < 0    ? std::strong_ordering::less
           : c == 0 ? std::strong_ordering::equal
                    : std::strong_ordering::greater;
  }

  // ---- Arithmetic ----------------------------------------------------------
  static BigInt Add(const BigInt& a, const BigInt& b);
  // Requires a >= b (FLB_CHECK).
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);
  // Quotient and remainder; error if b == 0.
  static Result<std::pair<BigInt, BigInt>> DivMod(const BigInt& a,
                                                  const BigInt& b);
  static Result<BigInt> Div(const BigInt& a, const BigInt& b);
  static Result<BigInt> Mod(const BigInt& a, const BigInt& b);
  static BigInt ShiftLeft(const BigInt& a, int bits);
  static BigInt ShiftRight(const BigInt& a, int bits);
  // a mod 2^bits (keep low `bits` bits).
  static BigInt TruncateBits(const BigInt& a, int bits);

  // Euclid. Gcd(0,0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);
  // Lcm(a,b) = a*b/gcd; Lcm with 0 is 0.
  static BigInt Lcm(const BigInt& a, const BigInt& b);
  // x such that a*x ≡ 1 (mod n); error if gcd(a, n) != 1 or n < 2.
  static Result<BigInt> ModInverse(const BigInt& a, const BigInt& n);
  // (a*b) mod n via full multiply + reduce. The fast path for repeated use
  // is crypto::MontgomeryContext.
  static Result<BigInt> ModMul(const BigInt& a, const BigInt& b,
                               const BigInt& n);
  // a^e mod n by square-and-multiply on top of ModMul. Reference
  // implementation; crypto::MontgomeryContext::ModPow is the fast path.
  static Result<BigInt> ModPow(const BigInt& a, const BigInt& e,
                               const BigInt& n);

  // Operator sugar (thin wrappers; division by zero aborts via FLB_CHECK —
  // use DivMod for recoverable handling).
  friend BigInt operator+(const BigInt& a, const BigInt& b) {
    return Add(a, b);
  }
  friend BigInt operator-(const BigInt& a, const BigInt& b) {
    return Sub(a, b);
  }
  friend BigInt operator*(const BigInt& a, const BigInt& b) {
    return Mul(a, b);
  }
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(const BigInt& a, int bits) {
    return ShiftLeft(a, bits);
  }
  friend BigInt operator>>(const BigInt& a, int bits) {
    return ShiftRight(a, bits);
  }

  // ---- I/O -----------------------------------------------------------------
  // Lower-case hex without prefix ("0" for zero).
  std::string ToHex() const;
  std::string ToDecimal() const;

  // Little-endian limbs padded/truncated to exactly `n` words — the fixed
  // layout used by serialized ciphertexts and by the simulated GPU kernels.
  std::vector<uint32_t> ToFixedWords(size_t n) const;

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;
};

}  // namespace flb::mpint

#endif  // FLB_MPINT_BIGINT_H_
