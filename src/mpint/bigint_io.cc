// BigInt text I/O: hex and decimal parsing/printing. Split from bigint.cc to
// keep the arithmetic core focused.

#include <algorithm>
#include <cctype>

#include "src/common/check.h"
#include "src/mpint/bigint.h"

namespace flb::mpint {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<BigInt> BigInt::FromHex(std::string_view hex) {
  if (hex.substr(0, 2) == "0x" || hex.substr(0, 2) == "0X") {
    hex.remove_prefix(2);
  }
  if (hex.empty()) {
    return Status::InvalidArgument("FromHex: empty input");
  }
  std::vector<uint32_t> words((hex.size() + 7) / 8, 0);
  // Consume hex digits from the least-significant end, 8 per limb.
  size_t nibble = 0;
  for (size_t i = hex.size(); i-- > 0; ++nibble) {
    const int d = HexDigit(hex[i]);
    if (d < 0) {
      return Status::InvalidArgument("FromHex: invalid hex digit '" +
                                     std::string(1, hex[i]) + "'");
    }
    words[nibble / 8] |= static_cast<uint32_t>(d) << (4 * (nibble % 8));
  }
  return FromWords(std::move(words));
}

Result<BigInt> BigInt::FromDecimal(std::string_view dec) {
  if (dec.empty()) {
    return Status::InvalidArgument("FromDecimal: empty input");
  }
  BigInt out;
  const BigInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("FromDecimal: invalid digit '" +
                                     std::string(1, c) + "'");
    }
    out = Add(Mul(out, ten), BigInt(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(limbs_.size() * 8);
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xF]);
    }
  }
  // Strip leading zeros of the top limb.
  const size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) return "0";
  // Repeated division by 10^9 (largest power of ten in a limb).
  constexpr uint32_t kChunk = 1000000000u;
  BigInt cur = *this;
  const BigInt chunk(kChunk);
  std::string out;
  while (!cur.IsZero()) {
    auto qr = DivMod(cur, chunk);
    FLB_CHECK(qr.ok());
    uint64_t rem = qr->second.LowU64();
    cur = std::move(qr->first);
    const bool last = cur.IsZero();
    for (int i = 0; i < 9; ++i) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
      if (last && rem == 0) break;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace flb::mpint
