#include "src/mpint/fixed_kernels.h"

#include <cstdlib>

#include "src/common/env.h"

namespace flb::mpint::fixed {

namespace {

template <size_t N>
constexpr KernelOps MakeOps() {
  KernelOps ops;
  ops.limbs = N;
  ops.add = &AddN<N>;
  ops.sub = &SubN<N>;
  ops.mul_pre = &MulPreN<N>;
  ops.mont_mul = &MontMulN<N>;
  ops.mont_sqr = &MontSqrN<N>;
  return ops;
}

// One instantiation per limb count on the Paillier hot path. A key of
// 2^k bits needs contexts at 2^k/32 limbs (n, p^2, q^2) and 2^k/16 limbs
// (n^2); covering 64..4096-bit keys gives the power-of-two ladder 2..256.
// RSA and Damgard–Jurik contexts at the same widths dispatch for free.
constexpr KernelOps kKernelTable[] = {
    MakeOps<2>(),  MakeOps<4>(),  MakeOps<8>(),   MakeOps<16>(),
    MakeOps<32>(), MakeOps<64>(), MakeOps<128>(), MakeOps<256>(),
};

}  // namespace

const KernelOps* FindKernel(size_t limbs) {
  for (const KernelOps& ops : kKernelTable) {
    if (ops.limbs == limbs) return &ops;
  }
  return nullptr;
}

std::vector<size_t> SupportedWidths() {
  std::vector<size_t> widths;
  widths.reserve(std::size(kKernelTable));
  for (const KernelOps& ops : kKernelTable) widths.push_back(ops.limbs);
  return widths;
}

uint64_t NegInverseMod2p64(uint64_t n0) {
  uint64_t x = n0;  // correct to 3 bits for odd n0 (n0*n0 ≡ 1 mod 8)
  for (int i = 0; i < 6; ++i) x *= 2 - n0 * x;
  return 0u - x;
}

bool KernelsEnabled() {
  static const bool enabled = common::Env::Flag("FLB_FIXED_KERNELS", true);
  return enabled;
}

}  // namespace flb::mpint::fixed
