// Fixed-width limb kernels for the modular-arithmetic hot path.
//
// The generic BigInt/MontgomeryContext path (src/mpint/bigint.cc,
// src/crypto/montgomery.cc) works on heap-backed radix-2^32 limb vectors:
// every MontMul in a 1024/2048/4096-bit Paillier operation pays dynamic
// sizing, allocation, and a runtime trip count on the platform's single
// hottest loop. Following the mcl low_func idiom (SNIPPETS.md Snippet 1),
// this header provides `template <size_t N>` kernels — add/sub carry
// chains, mulPre, CIOS MontMul/MontSqr — over flat uint32_t[N] arrays with
// compile-time widths, so the compiler unrolls the carry chains and every
// working buffer lives on the stack.
//
// Where the speed comes from:
//   * compile-time trip counts: the CIOS i/j loops unroll; no per-limb
//     bounds or size checks survive into the inner loop;
//   * zero allocation: the CIOS working buffer is a stack array;
//   * a radix-2^64 interior (when the platform has a 128-bit integer type):
//     operands are composed into 64-bit words on entry, the CIOS recurrence
//     runs on 64x64->128 hardware multiplies — one quarter the iterations
//     of the radix-2^32 reference — and the result is decomposed back to
//     the platform-wide uint32_t limb layout on exit.
//
// Bit-exactness: Montgomery multiplication with R = 2^(32*N) computes a
// unique canonical representative a*b*R^{-1} mod n < n, and R is the same
// power of two whether the interior scans 32- or 64-bit words (N is even
// for every instantiated width). Every kernel therefore produces byte-for-
// byte the results of the generic path; tests/fixed_width_test.cc fuzzes
// this against the radix-2^32 oracle across all supported widths.
//
// Dispatch: widths are instantiated for the limb counts backing
// 256..4096-bit Paillier keys (n, n^2, p^2/q^2 contexts — see
// fixed_kernels.cc). crypto::MontgomeryContext::Create looks the table up
// once per modulus; odd widths fall back to the generic path.

#ifndef FLB_MPINT_FIXED_KERNELS_H_
#define FLB_MPINT_FIXED_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flb::mpint::fixed {

// Dispatch record for one supported limb width N. All pointers operate on
// little-endian uint32_t arrays of exactly N limbs (mul_pre writes 2N).
// mont_mul/mont_sqr permit `z` to alias any input (the working buffer is
// internal); `mod` must be odd with its top limb significant or not — only
// the value matters. n0_inv64 is -mod^{-1} mod 2^64 (NegInverseMod2p64).
struct KernelOps {
  size_t limbs = 0;
  // z[N] = x[N] + y[N]; returns the carry-out (0 or 1).
  uint32_t (*add)(uint32_t* z, const uint32_t* x, const uint32_t* y) = nullptr;
  // z[N] = x[N] - y[N]; returns the borrow-out (0 or 1).
  uint32_t (*sub)(uint32_t* z, const uint32_t* x, const uint32_t* y) = nullptr;
  // z[2N] = x[N] * y[N] (full product, no reduction). z must not alias.
  void (*mul_pre)(uint32_t* z, const uint32_t* x, const uint32_t* y) = nullptr;
  // z[N] = x*y*R^{-1} mod `mod`, R = 2^(32N); inputs < mod, output < mod.
  void (*mont_mul)(uint32_t* z, const uint32_t* x, const uint32_t* y,
                   const uint32_t* mod, uint64_t n0_inv64) = nullptr;
  // z[N] = x*x*R^{-1} mod `mod`.
  void (*mont_sqr)(uint32_t* z, const uint32_t* x, const uint32_t* mod,
                   uint64_t n0_inv64) = nullptr;
};

// The kernel table entry for `limbs` 32-bit limbs, or nullptr when that
// width has no instantiation (callers keep the generic path).
const KernelOps* FindKernel(size_t limbs);

// Every width with a kernel instantiation, ascending (for tests/benches).
std::vector<size_t> SupportedWidths();

// -n^{-1} mod 2^64 for odd n (Newton–Hensel lifting; the radix-2^64
// Montgomery factor mirroring crypto's radix-2^32 NegInverseMod2p32).
uint64_t NegInverseMod2p64(uint64_t n0);

// True unless the FLB_FIXED_KERNELS environment variable is set to "0" —
// the process-wide kill switch for A/B runs and debugging. Consulted by
// MontgomeryContext::Create; results are bit-identical either way, only
// speed changes.
bool KernelsEnabled();

// ---- Template kernels -------------------------------------------------------
// Header-visible so tests can instantiate widths beyond the table; normal
// callers go through FindKernel.

namespace detail {

#if defined(__SIZEOF_INT128__)
inline constexpr bool kHasWideMul = true;
using u128 = unsigned __int128;
#else
inline constexpr bool kHasWideMul = false;
#endif

// Compose N little-endian 32-bit limbs into N/2 64-bit words.
template <size_t N>
inline void Compose64(const uint32_t* x, uint64_t* y) {
  for (size_t i = 0; i < N / 2; ++i) {
    y[i] = static_cast<uint64_t>(x[2 * i]) |
           (static_cast<uint64_t>(x[2 * i + 1]) << 32);
  }
}

// Decompose N/2 64-bit words back into N little-endian 32-bit limbs.
template <size_t N>
inline void Decompose64(const uint64_t* x, uint32_t* y) {
  for (size_t i = 0; i < N / 2; ++i) {
    y[2 * i] = static_cast<uint32_t>(x[i]);
    y[2 * i + 1] = static_cast<uint32_t>(x[i] >> 32);
  }
}

}  // namespace detail

// z = x + y over N limbs; returns carry. The uint64 accumulator pattern
// compiles to an add-with-carry chain at a compile-time trip count.
template <size_t N>
uint32_t AddN(uint32_t* z, const uint32_t* x, const uint32_t* y) {
  uint64_t carry = 0;
  for (size_t i = 0; i < N; ++i) {
    const uint64_t cur = static_cast<uint64_t>(x[i]) + y[i] + carry;
    z[i] = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  return static_cast<uint32_t>(carry);
}

// z = x - y over N limbs; returns borrow. On underflow the uint64
// difference wraps, leaving all-ones in the high half — bit 32 is the
// borrow.
template <size_t N>
uint32_t SubN(uint32_t* z, const uint32_t* x, const uint32_t* y) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < N; ++i) {
    const uint64_t cur = static_cast<uint64_t>(x[i]) - y[i] - borrow;
    z[i] = static_cast<uint32_t>(cur);
    borrow = (cur >> 32) & 1;
  }
  return static_cast<uint32_t>(borrow);
}

// z[2N] = x[N] * y[N], schoolbook operand scanning.
template <size_t N>
void MulPreN(uint32_t* z, const uint32_t* x, const uint32_t* y) {
  static_assert(N % 2 == 0, "fixed kernels require an even limb count");
  if constexpr (detail::kHasWideMul) {
#if defined(__SIZEOF_INT128__)
    using detail::u128;
    constexpr size_t H = N / 2;
    uint64_t a[H], b[H], t[2 * H];
    detail::Compose64<N>(x, a);
    detail::Compose64<N>(y, b);
    for (size_t i = 0; i < 2 * H; ++i) t[i] = 0;
    for (size_t i = 0; i < H; ++i) {
      u128 carry = 0;
      const uint64_t bi = b[i];
      for (size_t j = 0; j < H; ++j) {
        const u128 cur = static_cast<u128>(a[j]) * bi + t[i + j] + carry;
        t[i + j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      t[i + H] = static_cast<uint64_t>(carry);
    }
    detail::Decompose64<2 * N>(t, z);
#endif
  } else {
    for (size_t i = 0; i < 2 * N; ++i) z[i] = 0;
    for (size_t i = 0; i < N; ++i) {
      uint64_t carry = 0;
      const uint64_t yi = y[i];
      for (size_t j = 0; j < N; ++j) {
        const uint64_t cur =
            static_cast<uint64_t>(z[i + j]) + yi * x[j] + carry;
        z[i + j] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
      }
      z[i + N] = static_cast<uint32_t>(carry);
    }
  }
}

// CIOS Montgomery multiplication at compile-time width: the exact
// Koç–Acar–Kaliski recurrence of MontgomeryContext::MontMulWordsGeneric,
// word-scanned in radix 2^64 when the platform has 128-bit multiplies.
// R = 2^(32N) either way, so the canonical result is identical.
template <size_t N>
void MontMulN(uint32_t* z, const uint32_t* x, const uint32_t* y,
              const uint32_t* mod, uint64_t n0_inv64) {
  static_assert(N % 2 == 0, "fixed kernels require an even limb count");
  if constexpr (detail::kHasWideMul) {
#if defined(__SIZEOF_INT128__)
    using detail::u128;
    constexpr size_t H = N / 2;
    uint64_t a[H], b[H], n[H], t[H + 2];
    detail::Compose64<N>(x, a);
    detail::Compose64<N>(y, b);
    detail::Compose64<N>(mod, n);
    for (size_t i = 0; i < H + 2; ++i) t[i] = 0;
    for (size_t i = 0; i < H; ++i) {
      // Multiplication step: t += a * b[i].
      u128 carry = 0;
      const uint64_t bi = b[i];
      for (size_t j = 0; j < H; ++j) {
        const u128 cur = static_cast<u128>(a[j]) * bi + t[j] + carry;
        t[j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      u128 cur = static_cast<u128>(t[H]) + carry;
      t[H] = static_cast<uint64_t>(cur);
      t[H + 1] = static_cast<uint64_t>(cur >> 64);

      // Reduction step: m makes the low word of t vanish (mod 2^64).
      const uint64_t m = t[0] * n0_inv64;
      cur = static_cast<u128>(t[0]) + static_cast<u128>(m) * n[0];
      carry = cur >> 64;
      for (size_t j = 1; j < H; ++j) {
        cur = static_cast<u128>(m) * n[j] + t[j] + carry;
        t[j - 1] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      cur = static_cast<u128>(t[H]) + carry;
      t[H - 1] = static_cast<uint64_t>(cur);
      t[H] = t[H + 1] + static_cast<uint64_t>(cur >> 64);
    }

    // Final conditional subtraction: the loop guarantees t < 2n.
    bool ge = t[H] != 0;
    if (!ge) {
      ge = true;
      for (size_t i = H; i-- > 0;) {
        if (t[i] != n[i]) {
          ge = t[i] > n[i];
          break;
        }
      }
    }
    uint64_t r[H];
    if (ge) {
      uint64_t borrow = 0;
      for (size_t i = 0; i < H; ++i) {
        const u128 diff = static_cast<u128>(t[i]) - n[i] - borrow;
        r[i] = static_cast<uint64_t>(diff);
        borrow = static_cast<uint64_t>(diff >> 64) & 1;
      }
    } else {
      for (size_t i = 0; i < H; ++i) r[i] = t[i];
    }
    detail::Decompose64<N>(r, z);
#endif
  } else {
    // Radix-2^32 CIOS with a compile-time trip count and a stack buffer —
    // the generic recurrence minus allocation and dynamic sizing.
    const uint32_t n0_inv32 = static_cast<uint32_t>(n0_inv64);
    uint32_t t[N + 2];
    for (size_t i = 0; i < N + 2; ++i) t[i] = 0;
    for (size_t i = 0; i < N; ++i) {
      uint64_t carry = 0;
      const uint64_t yi = y[i];
      for (size_t j = 0; j < N; ++j) {
        const uint64_t cur = static_cast<uint64_t>(t[j]) + yi * x[j] + carry;
        t[j] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
      }
      uint64_t cur = static_cast<uint64_t>(t[N]) + carry;
      t[N] = static_cast<uint32_t>(cur);
      t[N + 1] = static_cast<uint32_t>(cur >> 32);

      const uint32_t m = t[0] * n0_inv32;
      cur = static_cast<uint64_t>(t[0]) + static_cast<uint64_t>(m) * mod[0];
      carry = cur >> 32;
      for (size_t j = 1; j < N; ++j) {
        cur = static_cast<uint64_t>(m) * mod[j] + t[j] + carry;
        t[j - 1] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
      }
      cur = static_cast<uint64_t>(t[N]) + carry;
      t[N - 1] = static_cast<uint32_t>(cur);
      t[N] = t[N + 1] + static_cast<uint32_t>(cur >> 32);
    }
    bool ge = t[N] != 0;
    if (!ge) {
      ge = true;
      for (size_t i = N; i-- > 0;) {
        if (t[i] != mod[i]) {
          ge = t[i] > mod[i];
          break;
        }
      }
    }
    if (ge) {
      SubN<N>(z, t, mod);
    } else {
      for (size_t i = 0; i < N; ++i) z[i] = t[i];
    }
  }
}

// Montgomery squaring. Currently delegates to MontMulN — squaring yields
// the same canonical value by any correct method, so a dedicated
// half-cross-product kernel can drop in later without a semantic change.
// Kept as its own dispatch entry (and its own symbol) for that reason.
template <size_t N>
void MontSqrN(uint32_t* z, const uint32_t* x, const uint32_t* mod,
              uint64_t n0_inv64) {
  MontMulN<N>(z, x, x, mod, n0_inv64);
}

}  // namespace flb::mpint::fixed

#endif  // FLB_MPINT_FIXED_KERNELS_H_
