#include "src/mpint/limb_matrix.h"

#include <algorithm>

namespace flb::mpint {

LimbMatrix::LimbMatrix(size_t rows, size_t width)
    : rows_(rows), width_(width), limbs_(rows * width, 0) {}

LimbMatrix LimbMatrix::Pack(const std::vector<BigInt>& values, size_t width) {
  LimbMatrix m(values.size(), width);
  for (size_t i = 0; i < values.size(); ++i) m.SetRow(i, values[i]);
  return m;
}

void LimbMatrix::SetRow(size_t i, const BigInt& value) {
  uint32_t* dst = row(i);
  const std::vector<uint32_t>& words = value.words();
  const size_t copy = std::min(width_, words.size());
  std::copy(words.begin(), words.begin() + copy, dst);
  std::fill(dst + copy, dst + width_, 0u);
}

BigInt LimbMatrix::ToBigInt(size_t i) const {
  const uint32_t* src = row(i);
  return BigInt::FromWords(std::vector<uint32_t>(src, src + width_));
}

std::vector<BigInt> LimbMatrix::Unpack() const {
  std::vector<BigInt> out;
  out.reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) out.push_back(ToBigInt(i));
  return out;
}

}  // namespace flb::mpint
