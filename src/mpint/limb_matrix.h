// LimbMatrix: a structure-of-arrays batch of fixed-width big integers.
//
// The ThreadPool batch bodies (PR 4) iterate element-wise over
// vector<BigInt>, where each element is its own heap allocation — pointer
// chasing on every limb access. A LimbMatrix stores `rows` values of
// exactly `width` little-endian 32-bit limbs each in ONE contiguous
// buffer, so a batch body streams row i as a flat uint32_t* straight into
// the fixed-width kernels (row i starts at offset i*width; rows are
// adjacent, giving the hardware prefetcher a linear walk).
//
// This is the batch layout crypto::PaillierContext's Encrypt/Decrypt/Add/
// ScalarMul-Batch paths pack into before fanning out and unpack from after
// joining; values are padded (or truncated — callers validate range first)
// to the fixed width the same way BigInt::ToFixedWords does.

#ifndef FLB_MPINT_LIMB_MATRIX_H_
#define FLB_MPINT_LIMB_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/mpint/bigint.h"

namespace flb::mpint {

class LimbMatrix {
 public:
  LimbMatrix() = default;
  // rows * width zero limbs.
  LimbMatrix(size_t rows, size_t width);

  // Packs values[i] into row i, each padded/truncated to `width` limbs.
  static LimbMatrix Pack(const std::vector<BigInt>& values, size_t width);

  size_t rows() const { return rows_; }
  size_t width() const { return width_; }

  uint32_t* row(size_t i) { return limbs_.data() + i * width_; }
  const uint32_t* row(size_t i) const { return limbs_.data() + i * width_; }

  // Overwrites row i with `value` at the fixed width.
  void SetRow(size_t i, const BigInt& value);
  // Row i as a normalized BigInt.
  BigInt ToBigInt(size_t i) const;
  // All rows as normalized BigInts.
  std::vector<BigInt> Unpack() const;

  // The whole buffer (rows * width limbs, row-major) — for serializers and
  // tests that want the raw stream.
  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  size_t rows_ = 0;
  size_t width_ = 0;
  std::vector<uint32_t> limbs_;
};

}  // namespace flb::mpint

#endif  // FLB_MPINT_LIMB_MATRIX_H_
