#include "src/net/circuit_breaker.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/run_status.h"
#include "src/obs/trace.h"

namespace flb::net {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

CircuitBreaker::CircuitBreaker(BreakerOptions options, const SimClock* clock)
    : options_(options), clock_(clock) {}

double CircuitBreaker::Now() const {
  return clock_ != nullptr ? clock_->Now() : 0.0;
}

double CircuitBreaker::OpenWindow(const std::string& link,
                                  uint64_t trip) const {
  double window = options_.open_sec;
  for (uint64_t i = 1; i < trip; ++i) {
    window = std::min(window * options_.backoff, options_.max_open_sec);
  }
  window = std::min(window, options_.max_open_sec);
  if (options_.jitter_frac > 0) {
    // Pure function of (seed, link, trip): deterministic regardless of the
    // interleaving of links or the host thread count.
    Rng rng = Rng::ForStream(options_.seed ^ Fnv1a(link), trip);
    window *= 1.0 + options_.jitter_frac * (rng.NextDouble() - 0.5);
  }
  return window;
}

void CircuitBreaker::TripLocked(const std::string& link, LinkState* state) {
  state->state = BreakerState::kOpen;
  state->trips += 1;
  state->consecutive_failures = 0;
  state->open_until_sec = Now() + OpenWindow(link, state->trips);
  stats_.trips += 1;
}

bool CircuitBreaker::AllowSend(const std::string& from,
                               const std::string& to) {
  const std::string link = LinkKey(from, to);
  const char* transition = nullptr;
  bool admit = true;
  {
    common::MutexLock lock(mu_);
    LinkState& state = links_[link];
    switch (state.state) {
      case BreakerState::kClosed:
        admit = true;
        break;
      case BreakerState::kOpen:
        if (Now() >= state.open_until_sec) {
          state.state = BreakerState::kHalfOpen;
          stats_.probes += 1;
          transition = "probe";
          admit = true;
        } else {
          stats_.fast_fails += 1;
          admit = false;
        }
        break;
      case BreakerState::kHalfOpen:
        admit = true;  // the probe (and its retries) flows through
        break;
    }
  }
  if (transition != nullptr) RecordTransition(transition, link);
  return admit;
}

void CircuitBreaker::RecordSuccess(const std::string& from,
                                   const std::string& to) {
  const std::string link = LinkKey(from, to);
  const char* transition = nullptr;
  {
    common::MutexLock lock(mu_);
    LinkState& state = links_[link];
    state.consecutive_failures = 0;
    if (state.state == BreakerState::kHalfOpen) {
      state.state = BreakerState::kClosed;
      stats_.closes += 1;
      transition = "close";
    }
  }
  if (transition != nullptr) RecordTransition(transition, link);
}

void CircuitBreaker::RecordFailure(const std::string& from,
                                   const std::string& to) {
  const std::string link = LinkKey(from, to);
  const char* transition = nullptr;
  {
    common::MutexLock lock(mu_);
    LinkState& state = links_[link];
    if (state.state == BreakerState::kHalfOpen) {
      // Failed probe: reopen with a deeper window.
      TripLocked(link, &state);
      transition = "reopen";
    } else if (state.state == BreakerState::kClosed) {
      state.consecutive_failures += 1;
      if (state.consecutive_failures >= options_.failure_threshold) {
        TripLocked(link, &state);
        transition = "trip";
      }
    }
    // Already open: fast-fails are counted in AllowSend; an admitted send
    // that still fails before the window elapsed cannot happen (AllowSend
    // rejected it), so nothing to do.
  }
  if (transition != nullptr) RecordTransition(transition, link);
}

BreakerState CircuitBreaker::StateOf(const std::string& from,
                                     const std::string& to) const {
  common::MutexLock lock(mu_);
  const auto it = links_.find(LinkKey(from, to));
  return it == links_.end() ? BreakerState::kClosed : it->second.state;
}

uint64_t CircuitBreaker::OpenCount() const {
  common::MutexLock lock(mu_);
  uint64_t n = 0;
  for (const auto& [link, state] : links_) {
    if (state.state == BreakerState::kOpen) n += 1;
  }
  return n;
}

uint64_t CircuitBreaker::HalfOpenCount() const {
  common::MutexLock lock(mu_);
  uint64_t n = 0;
  for (const auto& [link, state] : links_) {
    if (state.state == BreakerState::kHalfOpen) n += 1;
  }
  return n;
}

void CircuitBreaker::RecordTransition(const char* kind,
                                      const std::string& link) {
  obs::MetricsRegistry::Global().Count(
      "flb.resilience.breaker." + std::string(kind) + "s", 1, "link=" + link);
  auto& rec = obs::TraceRecorder::Global();
  if (rec.enabled()) {
    rec.Instant(rec.RegisterTrack("breaker", link), kind, "breaker", Now(),
                {obs::Arg("link", link)});
  }
  PublishStatus();
}

void CircuitBreaker::PublishStatus() {
  uint64_t open = 0, half_open = 0, trips = 0, fast_fails = 0;
  {
    common::MutexLock lock(mu_);
    for (const auto& [link, state] : links_) {
      if (state.state == BreakerState::kOpen) open += 1;
      if (state.state == BreakerState::kHalfOpen) half_open += 1;
    }
    trips = stats_.trips;
    fast_fails = stats_.fast_fails;
  }
  obs::RunStatus::Global().UpdateBreaker(open, half_open, trips, fast_fails);
}

}  // namespace flb::net
