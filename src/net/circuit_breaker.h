// CircuitBreaker: per-link closed/open/half-open failure isolation over
// simulated time (DESIGN.md §6).
//
// The ReliableChannel already bounds one message's retry loop, but a peer
// that stays down makes every subsequent send pay the full retry budget
// again. The breaker remembers: after `failure_threshold` consecutive
// whole-send failures (kUnavailable / kDeadlineExceeded after retries, or
// CRC-rejected receives) on a directed link it opens and sends fail fast
// with zero charged time. After a seeded-jittered backoff window of
// simulated seconds the link goes half-open and admits one probe; a probe
// success closes the circuit, a failure reopens it with a deeper window.
//
//   closed --N consecutive failures--> open
//   open   --open window elapsed----> half-open (one probe admitted)
//   half-open --probe success-------> closed
//   half-open --probe failure-------> open (backoff doubled, jittered)
//
// Determinism: the jitter for trip k of a link is drawn from
// Rng::ForStream(seed ^ fnv1a(link), k) — a pure function of (seed, link,
// trip count), independent of call interleaving and host thread count.
// Transitions emit flb.resilience.breaker.* counters, instants on the
// "breaker" trace track, and a live state snapshot into obs::RunStatus.

#ifndef FLB_NET_CIRCUIT_BREAKER_H_
#define FLB_NET_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/sim_clock.h"

namespace flb::net {

struct BreakerOptions {
  int failure_threshold = 3;   // consecutive send failures that trip
  double open_sec = 0.05;      // first open window (simulated seconds)
  double backoff = 2.0;        // window multiplier per consecutive trip
  double max_open_sec = 2.0;   // window cap
  double jitter_frac = 0.1;    // +/- half of this fraction, seeded
  uint64_t seed = 1;           // jitter stream seed
};

struct BreakerStats {
  uint64_t trips = 0;       // closed/half-open -> open transitions
  uint64_t fast_fails = 0;  // sends rejected while open
  uint64_t probes = 0;      // half-open admissions
  uint64_t closes = 0;      // half-open -> closed recoveries
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

class CircuitBreaker {
 public:
  // `clock` may be null: open windows then never elapse on their own, but
  // the trainers only attach a breaker alongside a SimClock in practice.
  explicit CircuitBreaker(BreakerOptions options, const SimClock* clock);

  const BreakerOptions& options() const { return options_; }

  // Gate for one send attempt from -> to. True admits the send (closed, or
  // open window elapsed -> half-open probe); false means fail fast without
  // touching the wire.
  bool AllowSend(const std::string& from, const std::string& to);

  // Outcome of an admitted send (or a receive-side CRC verdict) on the
  // directed link.
  void RecordSuccess(const std::string& from, const std::string& to);
  void RecordFailure(const std::string& from, const std::string& to);

  BreakerState StateOf(const std::string& from, const std::string& to) const;

  // Links currently open / half-open (RunStatus resilience block).
  uint64_t OpenCount() const;
  uint64_t HalfOpenCount() const;

  // Snapshot by value: the counters keep moving under their own lock.
  BreakerStats stats() const {
    common::MutexLock lock(mu_);
    return stats_;
  }

 private:
  struct LinkState {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    uint64_t trips = 0;          // lifetime trips of this link
    double open_until_sec = 0.0;
  };

  static std::string LinkKey(const std::string& from, const std::string& to) {
    return from + '>' + to;
  }

  double Now() const;
  // Jittered open window for trip number `trip` of `link` (>= 1).
  double OpenWindow(const std::string& link, uint64_t trip) const;
  // Trips `state` open at the current time; caller holds mu_.
  void TripLocked(const std::string& link, LinkState* state)
      FLB_REQUIRES(mu_);
  // Emits the transition metric + trace instant and refreshes the
  // RunStatus snapshot. Called after releasing mu_ (leaf-lock discipline).
  void RecordTransition(const char* kind, const std::string& link);
  void PublishStatus();

  BreakerOptions options_;
  const SimClock* clock_;
  mutable common::Mutex mu_;
  std::map<std::string, LinkState> links_ FLB_GUARDED_BY(mu_);
  BreakerStats stats_ FLB_GUARDED_BY(mu_);
};

}  // namespace flb::net

#endif  // FLB_NET_CIRCUIT_BREAKER_H_
