#include "src/net/fault.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace flb::net {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

Result<double> ParseNumber(const std::string& s, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("FaultPlan: bad number '" + s + "' in " +
                                   what);
  }
  return v;
}

Result<double> ParseProb(const std::string& s, const std::string& what) {
  FLB_ASSIGN_OR_RETURN(double v, ParseNumber(s, what));
  if (v < 0.0 || v > 1.0) {
    return Status::InvalidArgument("FaultPlan: " + what +
                                   " must be in [0,1], got " + s);
  }
  return v;
}

// Applies one k=v pair to a LinkFaults. Unknown key -> error.
Status ApplyLinkKey(LinkFaults* link, const std::string& key,
                    const std::string& value) {
  if (key == "drop") {
    FLB_ASSIGN_OR_RETURN(link->drop_prob, ParseProb(value, key));
  } else if (key == "dup") {
    FLB_ASSIGN_OR_RETURN(link->dup_prob, ParseProb(value, key));
  } else if (key == "reorder") {
    FLB_ASSIGN_OR_RETURN(link->reorder_prob, ParseProb(value, key));
  } else if (key == "corrupt") {
    FLB_ASSIGN_OR_RETURN(link->corrupt_prob, ParseProb(value, key));
  } else if (key == "delay") {
    FLB_ASSIGN_OR_RETURN(link->extra_delay_sec, ParseNumber(value, key));
  } else if (key == "jitter") {
    FLB_ASSIGN_OR_RETURN(link->jitter_sec, ParseNumber(value, key));
  } else {
    return Status::InvalidArgument("FaultPlan: unknown link key '" + key +
                                   "'");
  }
  return Status::OK();
}

std::string LinkFaultsSpec(const LinkFaults& l, char sep) {
  std::ostringstream out;
  auto emit = [&](const char* key, double v) {
    if (v <= 0) return;
    if (out.tellp() > 0) out << sep;
    out << key << '=' << v;
  };
  emit("drop", l.drop_prob);
  emit("dup", l.dup_prob);
  emit("reorder", l.reorder_prob);
  emit("corrupt", l.corrupt_prob);
  emit("delay", l.extra_delay_sec);
  emit("jitter", l.jitter_sec);
  return out.str();
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : SplitOn(spec, ';')) {
    const std::string clause = Trim(raw);
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("FaultPlan: clause '" + clause +
                                     "' is not key=value");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "seed") {
      FLB_ASSIGN_OR_RETURN(double v, ParseNumber(value, key));
      plan.seed = static_cast<uint64_t>(v);
    } else if (key == "straggler") {
      // <party>:<factor>
      const size_t colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        return Status::InvalidArgument(
            "FaultPlan: straggler wants <party>:<factor>, got '" + value +
            "'");
      }
      FLB_ASSIGN_OR_RETURN(double factor,
                           ParseNumber(value.substr(colon + 1), key));
      if (factor < 1.0) {
        return Status::InvalidArgument(
            "FaultPlan: straggler factor must be >= 1");
      }
      plan.straggler_factor[value.substr(0, colon)] = factor;
    } else if (key == "crash") {
      // <party>@<t>[-<r>]
      const size_t at = value.rfind('@');
      if (at == std::string::npos || at == 0) {
        return Status::InvalidArgument(
            "FaultPlan: crash wants <party>@<t>[-<r>], got '" + value + "'");
      }
      Crash crash;
      crash.party = value.substr(0, at);
      const std::string times = value.substr(at + 1);
      const size_t dash = times.find('-');
      if (dash == std::string::npos) {
        FLB_ASSIGN_OR_RETURN(crash.at_sec, ParseNumber(times, key));
      } else {
        FLB_ASSIGN_OR_RETURN(crash.at_sec,
                             ParseNumber(times.substr(0, dash), key));
        FLB_ASSIGN_OR_RETURN(crash.recover_sec,
                             ParseNumber(times.substr(dash + 1), key));
        if (crash.recover_sec <= crash.at_sec) {
          return Status::InvalidArgument(
              "FaultPlan: crash recovery must follow the crash");
        }
      }
      plan.crashes.push_back(std::move(crash));
    } else if (key == "partition") {
      // <a>|<b>@<t1>-<t2>
      const size_t bar = value.find('|');
      const size_t at = value.rfind('@');
      if (bar == std::string::npos || at == std::string::npos || at < bar) {
        return Status::InvalidArgument(
            "FaultPlan: partition wants <a>|<b>@<t1>-<t2>, got '" + value +
            "'");
      }
      Partition part;
      part.a = value.substr(0, bar);
      part.b = value.substr(bar + 1, at - bar - 1);
      const std::string window = value.substr(at + 1);
      const size_t dash = window.find('-');
      if (dash == std::string::npos) {
        return Status::InvalidArgument(
            "FaultPlan: partition window wants <t1>-<t2>");
      }
      FLB_ASSIGN_OR_RETURN(part.start_sec,
                           ParseNumber(window.substr(0, dash), key));
      FLB_ASSIGN_OR_RETURN(part.end_sec,
                           ParseNumber(window.substr(dash + 1), key));
      if (part.end_sec <= part.start_sec) {
        return Status::InvalidArgument(
            "FaultPlan: partition window must have t2 > t1");
      }
      plan.partitions.push_back(std::move(part));
    } else if (key == "link") {
      // <from>><to>:k=v[,k=v...]
      const size_t gt = value.find('>');
      const size_t colon = value.find(':', gt == std::string::npos ? 0 : gt);
      if (gt == std::string::npos || colon == std::string::npos) {
        return Status::InvalidArgument(
            "FaultPlan: link wants <from>><to>:k=v[,k=v...], got '" + value +
            "'");
      }
      const std::string from = value.substr(0, gt);
      const std::string to = value.substr(gt + 1, colon - gt - 1);
      LinkFaults link;
      for (const std::string& kv : SplitOn(value.substr(colon + 1), ',')) {
        const size_t kveq = kv.find('=');
        if (kveq == std::string::npos) {
          return Status::InvalidArgument("FaultPlan: link entry '" + kv +
                                         "' is not key=value");
        }
        FLB_RETURN_IF_ERROR(ApplyLinkKey(&link, kv.substr(0, kveq),
                                         kv.substr(kveq + 1)));
      }
      plan.per_link[{from, to}] = link;
    } else {
      FLB_RETURN_IF_ERROR(ApplyLinkKey(&plan.default_link, key, value));
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  out << "seed=" << seed;
  const std::string defaults = LinkFaultsSpec(default_link, ';');
  if (!defaults.empty()) out << ';' << defaults;
  for (const auto& [party, factor] : straggler_factor) {
    out << ";straggler=" << party << ':' << factor;
  }
  for (const auto& crash : crashes) {
    out << ";crash=" << crash.party << '@' << crash.at_sec;
    if (crash.recover_sec >= 0) out << '-' << crash.recover_sec;
  }
  for (const auto& part : partitions) {
    out << ";partition=" << part.a << '|' << part.b << '@' << part.start_sec
        << '-' << part.end_sec;
  }
  for (const auto& [link, faults] : per_link) {
    out << ";link=" << link.first << '>' << link.second << ':'
        << LinkFaultsSpec(faults, ',');
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan, SimClock* clock)
    : plan_(std::move(plan)), clock_(clock), rng_(plan_.seed) {}

double FaultInjector::Now() const {
  return clock_ != nullptr ? clock_->Now() : 0.0;
}

const LinkFaults& FaultInjector::FaultsFor(const std::string& from,
                                           const std::string& to) const {
  auto it = plan_.per_link.find({from, to});
  return it != plan_.per_link.end() ? it->second : plan_.default_link;
}

bool FaultInjector::IsCrashed(const std::string& party) const {
  const double now = Now();
  for (const Crash& crash : plan_.crashes) {
    if (crash.party != party) continue;
    if (now >= crash.at_sec &&
        (crash.recover_sec < 0 || now < crash.recover_sec)) {
      return true;
    }
  }
  return false;
}

double FaultInjector::CrashRecoverTime(const std::string& party) const {
  const double now = Now();
  for (const Crash& crash : plan_.crashes) {
    if (crash.party != party) continue;
    if (now >= crash.at_sec &&
        (crash.recover_sec < 0 || now < crash.recover_sec)) {
      return crash.recover_sec;
    }
  }
  return -1.0;
}

bool FaultInjector::LinkPartitioned(const std::string& a,
                                    const std::string& b) const {
  const double now = Now();
  for (const Partition& part : plan_.partitions) {
    const bool match = (part.a == a && part.b == b) ||
                       (part.a == b && part.b == a);
    if (match && now >= part.start_sec && now < part.end_sec) return true;
  }
  return false;
}

double FaultInjector::StragglerFactor(const std::string& party) const {
  auto it = plan_.straggler_factor.find(party);
  return it != plan_.straggler_factor.end() ? it->second : 1.0;
}

void FaultInjector::RecordFault(const char* kind, const std::string& from,
                                const std::string& to,
                                const std::string& topic) {
  obs::MetricsRegistry::Global().Count(
      "flb.fault.injected", 1,
      std::string("kind=") + kind + ",link=" + from + ">" + to);
  auto& rec = obs::TraceRecorder::Global();
  if (!rec.enabled()) return;
  rec.Instant(rec.RegisterTrack("faults", from + ">" + to),
              std::string("fault.") + kind, "fault", Now(),
              {obs::Arg("topic", topic)});
}

FaultInjector::Decision FaultInjector::OnSend(const std::string& from,
                                              const std::string& to,
                                              const std::string& topic,
                                              size_t payload_bytes) {
  Decision d;
  // Fault kinds injected by this decision, recorded to the observability
  // singletons only after mu_ is released (leaf-locking discipline: their
  // locks must never nest inside ours).
  const char* recorded[4] = {nullptr, nullptr, nullptr, nullptr};
  int num_recorded = 0;
  {
    common::MutexLock lock(mu_);
    stats_.decisions += 1;
    // Structural faults first: a crashed receiver or a partitioned link
    // swallows the message regardless of the probabilistic plan.
    if (IsCrashed(to) || IsCrashed(from)) {
      d.deliver = false;
      d.fault = "crash_drop";
      stats_.crash_drops += 1;
      recorded[num_recorded++] = d.fault;
    } else if (LinkPartitioned(from, to)) {
      d.deliver = false;
      d.fault = "partition_drop";
      stats_.partition_drops += 1;
      recorded[num_recorded++] = d.fault;
    } else {
      const LinkFaults& link = FaultsFor(from, to);
      // Deterministic draw order: drop, dup, reorder, corrupt, jitter.
      // Every probabilistic knob consumes its draw on every decision so
      // that enabling one fault class does not shift another class's
      // random sequence.
      const bool drop = rng_.NextBernoulli(link.drop_prob);
      const bool dup = rng_.NextBernoulli(link.dup_prob);
      const bool reorder = rng_.NextBernoulli(link.reorder_prob);
      const bool corrupt = rng_.NextBernoulli(link.corrupt_prob);
      const double jitter =
          link.jitter_sec > 0 ? rng_.NextDouble() * link.jitter_sec : 0.0;
      const uint64_t corrupt_bit =
          payload_bytes > 0 ? rng_.NextBelow(payload_bytes * 8) : 0;
      if (drop) {
        d.deliver = false;
        d.fault = "drop";
        stats_.drops += 1;
        recorded[num_recorded++] = d.fault;
      } else {
        if (dup) {
          d.duplicate = true;
          d.fault = "duplicate";
          stats_.duplicates += 1;
          recorded[num_recorded++] = "duplicate";
        }
        if (reorder) {
          d.reorder = true;
          if (d.fault == nullptr) d.fault = "reorder";
          stats_.reorders += 1;
          recorded[num_recorded++] = "reorder";
        }
        if (corrupt && payload_bytes > 0) {
          d.corrupt = true;
          d.corrupt_bit = corrupt_bit;
          if (d.fault == nullptr) d.fault = "corrupt";
          stats_.corruptions += 1;
          recorded[num_recorded++] = "corrupt";
        }
        d.extra_delay_sec = link.extra_delay_sec + jitter;
        if (d.extra_delay_sec > 0) {
          stats_.delays += 1;
          if (d.fault == nullptr) d.fault = "delay";
        }
      }
    }
  }
  for (int i = 0; i < num_recorded; ++i) {
    RecordFault(recorded[i], from, to, topic);
  }
  return d;
}

void FaultInjector::CollectMetrics(std::vector<obs::MetricValue>& out) const {
  common::MutexLock lock(mu_);
  auto counter = [&](const char* name, uint64_t value) {
    obs::MetricValue m;
    m.name = name;
    m.type = obs::MetricType::kCounter;
    m.value = static_cast<double>(value);
    out.push_back(std::move(m));
  };
  counter("flb.fault.decisions", stats_.decisions);
  counter("flb.fault.drops", stats_.drops);
  counter("flb.fault.duplicates", stats_.duplicates);
  counter("flb.fault.reorders", stats_.reorders);
  counter("flb.fault.corruptions", stats_.corruptions);
  counter("flb.fault.delays", stats_.delays);
  counter("flb.fault.partition_drops", stats_.partition_drops);
  counter("flb.fault.crash_drops", stats_.crash_drops);
}

}  // namespace flb::net
