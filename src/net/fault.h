// Deterministic fault injection for the simulated network.
//
// The paper's testbed is four healthy servers on an ideal Gigabit LAN; real
// FL deployments (and the emulation testbeds in PAPERS.md) see loss,
// duplication, reordering, corruption, stragglers, partitions, and party
// failure. A FaultPlan describes those degradations declaratively; a
// FaultInjector executes the plan with a seeded Rng so a given
// (plan, workload) pair is bit-reproducible: same seed, same drops, same
// retransmit counts, same trained weights.
//
// The injector is consulted by Network on every delivery attempt and by the
// trainers for liveness/straggler questions. Every injected fault is
// recorded as an obs trace instant (track "faults") and a
// flb.fault.* metrics counter, so chaos runs are fully observable.
//
// Plan spec grammar (also the FLB_FAULT_PLAN environment variable):
//   clauses separated by ';', each one of
//     seed=N                     deterministic seed (default 1)
//     drop=P dup=P reorder=P corrupt=P     default per-link probabilities
//     delay=S jitter=S           extra per-message delay + uniform jitter (s)
//     straggler=<party>:<factor> per-party slowdown (factor >= 1, repeatable)
//     crash=<party>@<t>[-<r>]    party down from t, recovering at r (sim s;
//                                omitted r = never recovers)
//     partition=<a>|<b>@<t1>-<t2>  bidirectional link outage window (sim s)
//     link=<from>><to>:k=v[,k=v...]  directional override of the per-link
//                                probabilities/delay for one link
// Example:
//   drop=0.02;straggler=party1:4;crash=party2@0.5-0.9;seed=7

#ifndef FLB_NET_FAULT_H_
#define FLB_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::net {

// Probabilistic degradations of one directed link.
struct LinkFaults {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double reorder_prob = 0.0;
  double corrupt_prob = 0.0;
  double extra_delay_sec = 0.0;
  double jitter_sec = 0.0;

  bool any() const {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           corrupt_prob > 0 || extra_delay_sec > 0 || jitter_sec > 0;
  }
};

// Bidirectional link outage over a simulated-time window.
struct Partition {
  std::string a, b;
  double start_sec = 0.0;
  double end_sec = 0.0;
};

// Party down from `at_sec`; `recover_sec` < 0 means it never comes back.
struct Crash {
  std::string party;
  double at_sec = 0.0;
  double recover_sec = -1.0;
};

struct FaultPlan {
  uint64_t seed = 1;
  LinkFaults default_link;
  // Directional overrides keyed (from, to); a present entry fully replaces
  // default_link for that link.
  std::map<std::pair<std::string, std::string>, LinkFaults> per_link;
  std::map<std::string, double> straggler_factor;  // party -> factor >= 1
  std::vector<Partition> partitions;
  std::vector<Crash> crashes;

  bool empty() const {
    return !default_link.any() && per_link.empty() &&
           straggler_factor.empty() && partitions.empty() && crashes.empty();
  }

  // Parses the spec grammar above. InvalidArgument on malformed clauses,
  // probabilities outside [0,1], or straggler factors < 1.
  static Result<FaultPlan> Parse(const std::string& spec);
  // Canonical spec string (parseable by Parse).
  std::string ToString() const;
};

struct FaultStats {
  uint64_t decisions = 0;  // delivery attempts consulted
  uint64_t drops = 0;
  uint64_t duplicates = 0;
  uint64_t reorders = 0;
  uint64_t corruptions = 0;
  uint64_t delays = 0;
  uint64_t partition_drops = 0;
  uint64_t crash_drops = 0;

  uint64_t TotalInjected() const {
    return drops + duplicates + reorders + corruptions + delays +
           partition_drops + crash_drops;
  }
};

class FaultInjector : public obs::MetricsSource {
 public:
  // `clock` may be null: time-windowed faults (partitions, crashes) then
  // evaluate at t=0 forever; probabilistic faults are unaffected.
  explicit FaultInjector(FaultPlan plan, SimClock* clock = nullptr);

  const FaultPlan& plan() const { return plan_; }

  // What happens to one delivery attempt from -> to at the current sim
  // time. Consumes randomness deterministically (call order defines the
  // fault sequence).
  struct Decision {
    bool deliver = true;
    bool duplicate = false;
    bool reorder = false;
    bool corrupt = false;
    size_t corrupt_bit = 0;       // bit index to flip (valid when corrupt)
    double extra_delay_sec = 0.0;
    const char* fault = nullptr;  // label of the dominant fault, else null
  };
  Decision OnSend(const std::string& from, const std::string& to,
                  const std::string& topic, size_t payload_bytes);

  // Liveness / topology questions at the current sim time.
  bool IsCrashed(const std::string& party) const;
  bool LinkPartitioned(const std::string& a, const std::string& b) const;
  // Simulated time at which `party` recovers from a crash active at the
  // current time; < 0 when it never recovers (or is not crashed).
  double CrashRecoverTime(const std::string& party) const;

  // Compute/transfer slowdown for a party (1.0 when not a straggler).
  double StragglerFactor(const std::string& party) const;

  // Snapshot by value: the counters keep moving under their own lock.
  FaultStats stats() const {
    common::MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() {
    common::MutexLock lock(mu_);
    stats_ = FaultStats{};
  }

  // obs::MetricsSource: flb.fault.* counters.
  void CollectMetrics(std::vector<obs::MetricValue>& out) const override;
  void ResetMetrics() override { ResetStats(); }

 private:
  double Now() const;
  const LinkFaults& FaultsFor(const std::string& from,
                              const std::string& to) const;
  void RecordFault(const char* kind, const std::string& from,
                   const std::string& to, const std::string& topic);

  FaultPlan plan_;
  SimClock* clock_;
  // Guards the decision state (rng_ draws define the fault sequence, so
  // they must be serialized). Never held across RecordFault's calls into
  // the registry/recorder — OnSend collects kinds under the lock and
  // emits after releasing it (their locks order after ours only via
  // CollectMetrics, never the reverse).
  mutable common::Mutex mu_;
  Rng rng_ FLB_GUARDED_BY(mu_);
  FaultStats stats_ FLB_GUARDED_BY(mu_);
  obs::ScopedMetricsSource metrics_registration_{this};
};

}  // namespace flb::net

#endif  // FLB_NET_FAULT_H_
