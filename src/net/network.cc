#include "src/net/network.h"

#include <utility>

#include "src/net/fault.h"
#include "src/net/reliable_channel.h"

namespace flb::net {

Status Network::Send(const std::string& from, const std::string& to,
                     const std::string& topic, std::vector<uint8_t> payload,
                     size_t objects) {
  if (deadline_ != nullptr) {
    FLB_RETURN_IF_ERROR(deadline_->Check("Network::Send"));
  }
  if (reliable_ != nullptr) {
    return reliable_->Send(from, to, topic, std::move(payload), objects);
  }
  return SendDirect(from, to, topic, std::move(payload), objects);
}

Result<Message> Network::Receive(const std::string& to,
                                 const std::string& topic) {
  if (deadline_ != nullptr) {
    FLB_RETURN_IF_ERROR(deadline_->Check("Network::Receive"));
  }
  if (reliable_ != nullptr) return reliable_->Receive(to, topic);
  return ReceiveDirect(to, topic);
}

Status Network::SendDirect(const std::string& from, const std::string& to,
                           const std::string& topic,
                           std::vector<uint8_t> payload, size_t objects,
                           SendOutcome* outcome) {
  if (from == to) {
    return Status::InvalidArgument("Network::Send: from == to (" + from + ")");
  }
  FaultInjector::Decision fault;
  if (injector_ != nullptr) {
    fault = injector_->OnSend(from, to, topic, payload.size());
  }
  const size_t wire_bytes = payload.size() + kFramingBytes;
  // The attempt consumes link time whether or not it is delivered; a
  // straggler sender's slow NIC/host stretches its transfers.
  double sec = TransferSeconds(wire_bytes, objects) + fault.extra_delay_sec;
  if (injector_ != nullptr) sec *= injector_->StragglerFactor(from);
  if (outcome != nullptr) {
    outcome->delivered = fault.deliver;
    outcome->corrupted = fault.corrupt;
    outcome->duplicated = fault.duplicate;
  }
  {
    common::MutexLock lock(mu_);
    stats_.messages += 1;
    stats_.bytes += wire_bytes;
    stats_.bytes_by_topic[topic] += wire_bytes;
    stats_.seconds += sec;
    if (fault.deliver) {
      Message msg;
      msg.from = from;
      msg.to = to;
      msg.topic = topic;
      msg.payload = std::move(payload);
      if (fault.corrupt && !msg.payload.empty()) {
        const size_t bit = fault.corrupt_bit % (msg.payload.size() * 8);
        msg.payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      auto& inbox = inboxes_[to];
      if (fault.duplicate) {
        // The duplicate copy also crossed the wire.
        stats_.bytes += wire_bytes;
        stats_.bytes_by_topic[topic] += wire_bytes;
        inbox.push_back(msg);
      }
      if (fault.reorder) {
        inbox.push_front(std::move(msg));
      } else {
        inbox.push_back(std::move(msg));
      }
    }
  }
  // Charge + trace span on the sender's track (outside mu_: the recorder
  // and clock are other components' concerns): one span per message, sized
  // by its transfer time, with the routing details in the args.
  std::vector<obs::TraceArg> args = {
      obs::Arg("to", to), obs::Arg("bytes", static_cast<uint64_t>(wire_bytes)),
      obs::Arg("objects", static_cast<uint64_t>(objects))};
  if (fault.fault != nullptr) args.push_back(obs::Arg("fault", fault.fault));
  obs::ChargeSpan(
      clock_, CostKind::kNetwork, sec,
      obs::TraceRecorder::Global().RegisterTrack(instance_, from), topic,
      "network", std::move(args));
  return Status::OK();
}

Result<Message> Network::ReceiveDirect(const std::string& to,
                                       const std::string& topic) {
  if (injector_ != nullptr && injector_->IsCrashed(to)) {
    return Status::Unavailable("Network::Receive: " + to + " is down");
  }
  common::MutexLock lock(mu_);
  auto it = inboxes_.find(to);
  if (it != inboxes_.end()) {
    auto& queue = it->second;
    for (auto mit = queue.begin(); mit != queue.end(); ++mit) {
      if (mit->topic == topic) {
        Message msg = std::move(*mit);
        queue.erase(mit);
        return msg;
      }
    }
  }
  return Status::NotFound("Network::Receive: no pending '" + topic +
                          "' message for " + to);
}

void Network::ChargeControl(const std::string& from, const std::string& to,
                            const std::string& topic, size_t bytes) {
  const size_t wire_bytes = bytes + kFramingBytes;
  double sec = TransferSeconds(wire_bytes);
  if (injector_ != nullptr) sec *= injector_->StragglerFactor(from);
  {
    common::MutexLock lock(mu_);
    stats_.bytes += wire_bytes;
    stats_.bytes_by_topic[topic] += wire_bytes;
    stats_.seconds += sec;
  }
  if (clock_ != nullptr) clock_->Charge(CostKind::kNetwork, sec);
  (void)to;
}

size_t Network::PendingFor(const std::string& to) const {
  common::MutexLock lock(mu_);
  auto it = inboxes_.find(to);
  return it == inboxes_.end() ? 0 : it->second.size();
}

void Network::CollectMetrics(std::vector<obs::MetricValue>& out) const {
  common::MutexLock lock(mu_);
  const std::string labels = "net=" + instance_;
  auto counter = [&](const char* name, double value,
                     const std::string& extra = "") {
    obs::MetricValue m;
    m.name = name;
    m.labels = extra.empty() ? labels : labels + "," + extra;
    m.type = obs::MetricType::kCounter;
    m.value = value;
    out.push_back(std::move(m));
  };
  counter("flb.net.messages", static_cast<double>(stats_.messages));
  counter("flb.net.bytes", static_cast<double>(stats_.bytes));
  counter("flb.net.seconds", stats_.seconds);
  for (const auto& [topic, bytes] : stats_.bytes_by_topic) {
    counter("flb.net.bytes_by_topic", static_cast<double>(bytes),
            "topic=" + topic);
  }
}

}  // namespace flb::net
