#include "src/net/network.h"

#include <utility>

namespace flb::net {

Status Network::Send(const std::string& from, const std::string& to,
                     const std::string& topic, std::vector<uint8_t> payload,
                     size_t objects) {
  if (from == to) {
    return Status::InvalidArgument("Network::Send: from == to (" + from + ")");
  }
  const size_t wire_bytes = payload.size() + kFramingBytes;
  const double sec = TransferSeconds(wire_bytes, objects);
  stats_.messages += 1;
  stats_.bytes += wire_bytes;
  stats_.bytes_by_topic[topic] += wire_bytes;
  stats_.seconds += sec;
  // Charge + trace span on the sender's track: one span per message, sized
  // by its transfer time, with the routing details in the args.
  obs::ChargeSpan(
      clock_, CostKind::kNetwork, sec,
      obs::TraceRecorder::Global().RegisterTrack(instance_, from), topic,
      "network",
      {obs::Arg("to", to), obs::Arg("bytes", static_cast<uint64_t>(wire_bytes)),
       obs::Arg("objects", static_cast<uint64_t>(objects))});

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.topic = topic;
  msg.payload = std::move(payload);
  inboxes_[to].push_back(std::move(msg));
  return Status::OK();
}

Result<Message> Network::Receive(const std::string& to,
                                 const std::string& topic) {
  auto it = inboxes_.find(to);
  if (it != inboxes_.end()) {
    auto& queue = it->second;
    for (auto mit = queue.begin(); mit != queue.end(); ++mit) {
      if (mit->topic == topic) {
        Message msg = std::move(*mit);
        queue.erase(mit);
        return msg;
      }
    }
  }
  return Status::NotFound("Network::Receive: no pending '" + topic +
                          "' message for " + to);
}

size_t Network::PendingFor(const std::string& to) const {
  auto it = inboxes_.find(to);
  return it == inboxes_.end() ? 0 : it->second.size();
}

void Network::CollectMetrics(std::vector<obs::MetricValue>& out) const {
  const std::string labels = "net=" + instance_;
  auto counter = [&](const char* name, double value,
                     const std::string& extra = "") {
    obs::MetricValue m;
    m.name = name;
    m.labels = extra.empty() ? labels : labels + "," + extra;
    m.type = obs::MetricType::kCounter;
    m.value = value;
    out.push_back(std::move(m));
  };
  counter("flb.net.messages", static_cast<double>(stats_.messages));
  counter("flb.net.bytes", static_cast<double>(stats_.bytes));
  counter("flb.net.seconds", stats_.seconds);
  for (const auto& [topic, bytes] : stats_.bytes_by_topic) {
    counter("flb.net.bytes_by_topic", static_cast<double>(bytes),
            "topic=" + topic);
  }
}

}  // namespace flb::net
