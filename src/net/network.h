// Simulated client-server network (DESIGN.md §1: Gigabit Ethernet
// substitute).
//
// All FL parties live in one process; Network routes messages between named
// parties, counts every byte, and charges transfer time
// (latency + bytes/bandwidth) to the SimClock — the paper Eq. 10-style
// accounting for the communication component of each epoch. Per-topic byte
// counters feed the Table VI component breakdown and the Fig. 7
// compression-ratio measurements.

#ifndef FLB_NET_NETWORK_H_
#define FLB_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/sim_clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::net {

struct LinkSpec {
  // Gigabit Ethernet: ~125 MB/s effective, sub-millisecond LAN RTT.
  double bandwidth_bytes_per_sec = 117.0e6;  // 1 Gbps minus framing overhead
  double latency_sec = 250e-6;
  // Per-serialized-HE-object protocol cost. In FATE's stack every
  // ciphertext is a Python object that is pickled, enveloped, and routed
  // through the eggroll/RPC layer; the paper's measured communication times
  // (Table VI: ~48% of a FATE epoch at Gigabit speeds) are only consistent
  // with a milliseconds-per-object cost, not raw bandwidth. Batch
  // compression attacks exactly this term by collapsing the object count.
  double per_object_overhead_sec = 1.5e-3;

  static LinkSpec GigabitEthernet() { return LinkSpec{}; }
  static LinkSpec TenGigabit() { return LinkSpec{1.17e9, 150e-6, 1.5e-3}; }
  static LinkSpec Wan() { return LinkSpec{12.5e6, 20e-3, 1.5e-3}; }
};

struct Message {
  std::string from;
  std::string to;
  std::string topic;
  std::vector<uint8_t> payload;
};

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  std::map<std::string, uint64_t> bytes_by_topic;
  double seconds = 0.0;
};

class Network : public obs::MetricsSource {
 public:
  // `clock` may be null (bytes still counted, no time charged).
  explicit Network(LinkSpec link = LinkSpec::GigabitEthernet(),
                   SimClock* clock = nullptr)
      : link_(link),
        clock_(clock),
        instance_(obs::TraceRecorder::Global().UniqueProcessName("net")) {}

  const LinkSpec& link() const { return link_; }

  // Enqueues the message at `to` and charges transfer time. A small framing
  // overhead (headers) is added to the payload size; `objects` is the
  // number of serialized HE objects in the payload, each charged the link's
  // per-object protocol overhead (see LinkSpec).
  Status Send(const std::string& from, const std::string& to,
              const std::string& topic, std::vector<uint8_t> payload,
              size_t objects = 0);

  // Pops the oldest message for `to` with the given topic. NotFound if none
  // is pending — in this sequential harness that is a protocol bug, so
  // callers generally treat it as fatal.
  Result<Message> Receive(const std::string& to, const std::string& topic);

  // Number of pending messages for a party (any topic).
  size_t PendingFor(const std::string& to) const;

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  // obs::MetricsSource: NetworkStats exposed through the unified registry.
  void CollectMetrics(std::vector<obs::MetricValue>& out) const override;
  void ResetMetrics() override { ResetStats(); }

  // Transfer time this link would charge for `bytes` carrying `objects`
  // serialized HE objects (exposed for the analytic model benches).
  double TransferSeconds(size_t bytes, size_t objects = 0) const {
    return link_.latency_sec + bytes / link_.bandwidth_bytes_per_sec +
           objects * link_.per_object_overhead_sec;
  }

 private:
  static constexpr size_t kFramingBytes = 64;  // TCP/IP + protocol headers

  LinkSpec link_;
  SimClock* clock_;
  std::string instance_;
  std::map<std::string, std::deque<Message>> inboxes_;
  NetworkStats stats_;

  // Registers NetworkStats with the global MetricsRegistry for the
  // network's lifetime (declared last: registration after the stats exist).
  obs::ScopedMetricsSource metrics_registration_{this};
};

}  // namespace flb::net

#endif  // FLB_NET_NETWORK_H_
