// Simulated client-server network (DESIGN.md §1: Gigabit Ethernet
// substitute).
//
// All FL parties live in one process; Network routes messages between named
// parties, counts every byte, and charges transfer time
// (latency + bytes/bandwidth) to the SimClock — the paper Eq. 10-style
// accounting for the communication component of each epoch. Per-topic byte
// counters feed the Table VI component breakdown and the Fig. 7
// compression-ratio measurements.

#ifndef FLB_NET_NETWORK_H_
#define FLB_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/deadline.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/sim_clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::net {

struct LinkSpec {
  // Gigabit Ethernet: ~125 MB/s effective, sub-millisecond LAN RTT.
  double bandwidth_bytes_per_sec = 117.0e6;  // 1 Gbps minus framing overhead
  double latency_sec = 250e-6;
  // Per-serialized-HE-object protocol cost. In FATE's stack every
  // ciphertext is a Python object that is pickled, enveloped, and routed
  // through the eggroll/RPC layer; the paper's measured communication times
  // (Table VI: ~48% of a FATE epoch at Gigabit speeds) are only consistent
  // with a milliseconds-per-object cost, not raw bandwidth. Batch
  // compression attacks exactly this term by collapsing the object count.
  double per_object_overhead_sec = 1.5e-3;

  static LinkSpec GigabitEthernet() { return LinkSpec{}; }
  static LinkSpec TenGigabit() { return LinkSpec{1.17e9, 150e-6, 1.5e-3}; }
  static LinkSpec Wan() { return LinkSpec{12.5e6, 20e-3, 1.5e-3}; }
};

struct Message {
  std::string from;
  std::string to;
  std::string topic;
  std::vector<uint8_t> payload;
};

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  std::map<std::string, uint64_t> bytes_by_topic;
  double seconds = 0.0;
};

class FaultInjector;
class ReliableChannel;

// Delivery outcome of one SendDirect attempt, as decided by the attached
// FaultInjector (all-true-delivery when none is attached). ReliableChannel
// reads this to drive its ack/retransmit loop.
struct SendOutcome {
  bool delivered = true;
  bool corrupted = false;
  bool duplicated = false;
};

class Network : public obs::MetricsSource {
 public:
  // `clock` may be null (bytes still counted, no time charged).
  explicit Network(LinkSpec link = LinkSpec::GigabitEthernet(),
                   SimClock* clock = nullptr)
      : link_(link),
        clock_(clock),
        instance_(obs::TraceRecorder::Global().UniqueProcessName("net")) {}

  const LinkSpec& link() const { return link_; }
  SimClock* clock() const { return clock_; }

  // Optional fault injection: when set, every SendDirect consults the
  // injector (drop/duplicate/reorder/corrupt/delay + partitions + crashes)
  // and transfer time from straggler parties is slowed by their factor.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Optional reliability: when set, Send/Receive route through the channel
  // (framing, ack/retransmit, duplicate suppression); the channel itself
  // uses the *Direct entry points below. Platform attaches a channel
  // whenever a fault plan is configured; without one the direct path is
  // byte-for-byte the legacy behavior.
  void set_reliable_channel(ReliableChannel* channel) { reliable_ = channel; }
  ReliableChannel* reliable_channel() const { return reliable_; }

  // Optional run-wide deadline: when set and expired, Send/Receive return
  // typed kDeadlineExceeded before touching the wire. Inert (no accounting
  // change) while the budget lasts.
  void set_deadline(const common::Deadline* deadline) { deadline_ = deadline; }
  const common::Deadline* deadline() const { return deadline_; }

  // Enqueues the message at `to` and charges transfer time. A small framing
  // overhead (headers) is added to the payload size; `objects` is the
  // number of serialized HE objects in the payload, each charged the link's
  // per-object protocol overhead (see LinkSpec). Routes through the
  // reliable channel when one is attached.
  Status Send(const std::string& from, const std::string& to,
              const std::string& topic, std::vector<uint8_t> payload,
              size_t objects = 0);

  // Pops the oldest message for `to` with the given topic. NotFound if none
  // is pending — without a reliable channel that is a protocol bug in this
  // sequential harness, so callers generally treat it as fatal; with one,
  // absence becomes a typed recoverable error (kUnavailable).
  Result<Message> Receive(const std::string& to, const std::string& topic);

  // The raw transport under the reliable channel: one delivery attempt /
  // one inbox pop, no framing or retransmission. `outcome` (may be null)
  // reports what the fault injector did to the attempt.
  Status SendDirect(const std::string& from, const std::string& to,
                    const std::string& topic, std::vector<uint8_t> payload,
                    size_t objects = 0, SendOutcome* outcome = nullptr);
  Result<Message> ReceiveDirect(const std::string& to,
                                const std::string& topic);

  // Charges wire time + bytes for a control message (acks) without
  // enqueuing anything: counted under bytes_by_topic[topic], not messages.
  void ChargeControl(const std::string& from, const std::string& to,
                     const std::string& topic, size_t bytes);

  // Drops every pending message (server-restart semantics: in-flight state
  // is lost when the aggregator recovers from a crash).
  void PurgeInboxes() {
    common::MutexLock lock(mu_);
    inboxes_.clear();
  }

  // Number of pending messages for a party (any topic).
  size_t PendingFor(const std::string& to) const;

  // Snapshot by value: the counters keep moving under their own lock.
  NetworkStats stats() const {
    common::MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() {
    common::MutexLock lock(mu_);
    stats_ = NetworkStats{};
  }

  // obs::MetricsSource: NetworkStats exposed through the unified registry.
  void CollectMetrics(std::vector<obs::MetricValue>& out) const override;
  void ResetMetrics() override { ResetStats(); }

  // Transfer time this link would charge for `bytes` carrying `objects`
  // serialized HE objects (exposed for the analytic model benches).
  double TransferSeconds(size_t bytes, size_t objects = 0) const {
    return link_.latency_sec + bytes / link_.bandwidth_bytes_per_sec +
           objects * link_.per_object_overhead_sec;
  }

 private:
  static constexpr size_t kFramingBytes = 64;  // TCP/IP + protocol headers

  LinkSpec link_;
  SimClock* clock_;
  FaultInjector* injector_ = nullptr;
  ReliableChannel* reliable_ = nullptr;
  const common::Deadline* deadline_ = nullptr;
  std::string instance_;
  // Leaf lock over the mutable routing state. Never held across calls into
  // the injector, the clock, or the observability singletons (registry /
  // recorder lock ordering: theirs may be held while ours is taken via
  // CollectMetrics, never the reverse).
  mutable common::Mutex mu_;
  std::map<std::string, std::deque<Message>> inboxes_ FLB_GUARDED_BY(mu_);
  NetworkStats stats_ FLB_GUARDED_BY(mu_);

  // Registers NetworkStats with the global MetricsRegistry for the
  // network's lifetime (declared last: registration after the stats exist).
  obs::ScopedMetricsSource metrics_registration_{this};
};

}  // namespace flb::net

#endif  // FLB_NET_NETWORK_H_
