#include "src/net/reliable_channel.h"

#include <algorithm>
#include <utility>

#include "src/net/serializer.h"
#include "src/obs/trace.h"

namespace flb::net {

ReliableChannel::ReliableChannel(Network* network, ReliableOptions options)
    : network_(network), options_(options) {}

Status ReliableChannel::Send(const std::string& from, const std::string& to,
                             const std::string& topic,
                             std::vector<uint8_t> payload, size_t objects) {
  const std::string key = LinkKey(from, to, topic);
  uint64_t seq = 0;
  {
    common::MutexLock lock(mu_);
    seq = next_seq_[key]++;
    stats_.sends += 1;
  }
  const std::vector<uint8_t> frame = EncodeFrame(seq, payload);

  SimClock* clock = network_->clock();
  double rto = options_.initial_rto_sec;
  double waited = 0.0;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    SendOutcome outcome;
    FLB_RETURN_IF_ERROR(
        network_->SendDirect(from, to, topic, frame, objects, &outcome));
    {
      common::MutexLock lock(mu_);
      stats_.attempts += 1;
      if (attempt > 0) stats_.retransmits += 1;
    }
    if (attempt > 0) {
      obs::MetricsRegistry::Global().Count("flb.net.reliable.retransmit_by",
                                           1, "link=" + from + ">" + to);
    }
    if (outcome.delivered && !outcome.corrupted) {
      // The receiver acks the clean copy; corrupted deliveries would be
      // CRC-NAKed, which this loop models the same as a loss.
      {
        common::MutexLock lock(mu_);
        stats_.acks += 1;
      }
      network_->ChargeControl(to, from, "__ack", options_.ack_bytes);
      return Status::OK();
    }
    // Lost (or delivered corrupted): wait out the RTO, then retransmit.
    // The wait is real simulated time — backoff under a fault plan is
    // visible in epoch timings and the trace.
    if (waited + rto > options_.deadline_sec) {
      common::MutexLock lock(mu_);
      stats_.timeouts += 1;
      return Status::DeadlineExceeded(
          "ReliableChannel: '" + topic + "' " + from + "->" + to +
          " exceeded deadline after " + std::to_string(attempt + 1) +
          " attempts");
    }
    obs::ChargeSpan(clock, CostKind::kNetwork, rto,
                    obs::TraceRecorder::Global().RegisterTrack("net-reliable",
                                                               from),
                    "backoff " + topic, "reliable",
                    {obs::Arg("seq", seq), obs::Arg("attempt", attempt + 1),
                     obs::Arg("rto_sec", rto)});
    waited += rto;
    rto = std::min(rto * options_.backoff, options_.max_rto_sec);
  }
  {
    common::MutexLock lock(mu_);
    stats_.timeouts += 1;
  }
  return Status::Unavailable("ReliableChannel: '" + topic + "' " + from +
                             "->" + to + " undeliverable after " +
                             std::to_string(options_.max_attempts) +
                             " attempts");
}

Result<Message> ReliableChannel::Receive(const std::string& to,
                                         const std::string& topic) {
  Status last_loss = Status::OK();
  for (;;) {
    Result<Message> raw = network_->ReceiveDirect(to, topic);
    if (!raw.ok()) {
      if (raw.status().IsNotFound()) {
        if (!last_loss.ok()) return last_loss;  // only corrupted copies seen
        return Status::Unavailable(
            "ReliableChannel: no '" + topic + "' message for " + to +
            " (sender gave up or is down)");
      }
      return raw.status();  // e.g. kUnavailable: this party is crashed
    }
    Message msg = std::move(raw).value();
    Result<Frame> frame = DecodeFrame(msg.payload);
    if (!frame.ok()) {
      // Corrupted on the wire; the sender already retransmitted a clean
      // copy (it never got an ack for this one), so just discard.
      {
        common::MutexLock lock(mu_);
        stats_.crc_failures += 1;
      }
      obs::MetricsRegistry::Global().Count("flb.net.reliable.crc_failures", 1,
                                           "link=" + msg.from + ">" + to);
      last_loss = frame.status();
      continue;
    }
    {
      common::MutexLock lock(mu_);
      auto& seen = delivered_[LinkKey(msg.from, to, topic)];
      if (!seen.insert(frame->seq).second) {
        stats_.duplicates_suppressed += 1;
        continue;
      }
    }
    msg.payload = std::move(frame->payload);
    return msg;
  }
}

void ReliableChannel::CollectMetrics(
    std::vector<obs::MetricValue>& out) const {
  common::MutexLock lock(mu_);
  auto counter = [&](const char* name, uint64_t value) {
    obs::MetricValue m;
    m.name = name;
    m.type = obs::MetricType::kCounter;
    m.value = static_cast<double>(value);
    out.push_back(std::move(m));
  };
  counter("flb.net.reliable.sends", stats_.sends);
  counter("flb.net.reliable.attempts", stats_.attempts);
  counter("flb.net.reliable.retransmits", stats_.retransmits);
  counter("flb.net.reliable.acks", stats_.acks);
  counter("flb.net.reliable.timeouts", stats_.timeouts);
  counter("flb.net.reliable.crc_failures", stats_.crc_failures);
  counter("flb.net.reliable.duplicates_suppressed",
          stats_.duplicates_suppressed);
}

}  // namespace flb::net
