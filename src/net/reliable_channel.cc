#include "src/net/reliable_channel.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/common/env.h"
#include "src/common/rng.h"
#include "src/net/circuit_breaker.h"
#include "src/net/serializer.h"
#include "src/obs/trace.h"

namespace flb::net {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Result<ReliableOptions> ReliableOptions::FromEnv(const ReliableOptions& base) {
  ReliableOptions opts = base;
  const std::string spec = common::Env::Str("FLB_NET_RETRY");
  if (spec.empty()) return opts;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("FLB_NET_RETRY: clause '" + clause +
                                     "' is not key=value");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    char* parse_end = nullptr;
    const double v = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("FLB_NET_RETRY: bad value in '" + clause +
                                     "'");
    }
    if (key == "max_attempts") {
      if (v < 1) {
        return Status::InvalidArgument("FLB_NET_RETRY: max_attempts must be "
                                       ">= 1");
      }
      opts.max_attempts = static_cast<int>(v);
    } else if (key == "rto") {
      opts.initial_rto_sec = v;
    } else if (key == "backoff") {
      opts.backoff = v;
    } else if (key == "max_rto") {
      opts.max_rto_sec = v;
    } else if (key == "deadline") {
      opts.deadline_sec = v;
    } else if (key == "ack_bytes") {
      opts.ack_bytes = static_cast<size_t>(v);
    } else if (key == "jitter") {
      if (v < 0 || v > 1) {
        return Status::InvalidArgument("FLB_NET_RETRY: jitter must be in "
                                       "[0,1]");
      }
      opts.jitter_frac = v;
    } else if (key == "seed") {
      opts.jitter_seed = static_cast<uint64_t>(v);
    } else {
      return Status::InvalidArgument("FLB_NET_RETRY: unknown key '" + key +
                                     "'");
    }
  }
  return opts;
}

ReliableChannel::ReliableChannel(Network* network, ReliableOptions options)
    : network_(network), options_(options) {}

Status ReliableChannel::Send(const std::string& from, const std::string& to,
                             const std::string& topic,
                             std::vector<uint8_t> payload, size_t objects) {
  // Budget-bounded from the first byte: an expired run deadline or an open
  // circuit fails fast — typed, with zero wire traffic and zero charged
  // time — before the message is even framed.
  if (run_deadline_ != nullptr) {
    FLB_RETURN_IF_ERROR(run_deadline_->Check("ReliableChannel::Send"));
  }
  if (breaker_ != nullptr && !breaker_->AllowSend(from, to)) {
    return Status::Unavailable("ReliableChannel: circuit open for '" + topic +
                               "' " + from + "->" + to);
  }
  const std::string key = LinkKey(from, to, topic);
  uint64_t seq = 0;
  {
    common::MutexLock lock(mu_);
    seq = next_seq_[key]++;
    stats_.sends += 1;
  }
  const std::vector<uint8_t> frame = EncodeFrame(seq, payload);

  // The per-message budget never outlives the run budget.
  double budget = options_.deadline_sec;
  if (run_deadline_ != nullptr && !run_deadline_->infinite()) {
    budget = std::min(budget, run_deadline_->remaining());
  }
  // Jitter stream for this message: a pure function of
  // (jitter_seed, link, seq) — bit-reproducible, partition-independent.
  Rng jitter_rng =
      Rng::ForStream(options_.jitter_seed ^ Fnv1a(key), seq);

  SimClock* clock = network_->clock();
  double rto = options_.initial_rto_sec;
  double waited = 0.0;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    SendOutcome outcome;
    FLB_RETURN_IF_ERROR(
        network_->SendDirect(from, to, topic, frame, objects, &outcome));
    {
      common::MutexLock lock(mu_);
      stats_.attempts += 1;
      if (attempt > 0) stats_.retransmits += 1;
    }
    if (attempt > 0) {
      obs::MetricsRegistry::Global().Count("flb.net.reliable.retransmit_by",
                                           1, "link=" + from + ">" + to);
    }
    if (outcome.delivered && !outcome.corrupted) {
      // The receiver acks the clean copy; corrupted deliveries would be
      // CRC-NAKed, which this loop models the same as a loss.
      {
        common::MutexLock lock(mu_);
        stats_.acks += 1;
      }
      network_->ChargeControl(to, from, "__ack", options_.ack_bytes);
      if (breaker_ != nullptr) breaker_->RecordSuccess(from, to);
      return Status::OK();
    }
    // Lost (or delivered corrupted): wait out the RTO, then retransmit.
    // The wait is real simulated time — backoff under a fault plan is
    // visible in epoch timings and the trace. Seeded jitter desynchronizes
    // concurrent retriers without breaking reproducibility.
    double wait = rto;
    if (options_.jitter_frac > 0) {
      wait *= 1.0 + options_.jitter_frac * (jitter_rng.NextDouble() - 0.5);
    }
    if (waited + wait > budget) {
      {
        common::MutexLock lock(mu_);
        stats_.timeouts += 1;
      }
      if (breaker_ != nullptr) breaker_->RecordFailure(from, to);
      return Status::DeadlineExceeded(
          "ReliableChannel: '" + topic + "' " + from + "->" + to +
          " exceeded deadline after " + std::to_string(attempt + 1) +
          " attempts");
    }
    obs::ChargeSpan(clock, CostKind::kNetwork, wait,
                    obs::TraceRecorder::Global().RegisterTrack("net-reliable",
                                                               from),
                    "backoff " + topic, "reliable",
                    {obs::Arg("seq", seq), obs::Arg("attempt", attempt + 1),
                     obs::Arg("rto_sec", wait)});
    waited += wait;
    rto = std::min(rto * options_.backoff, options_.max_rto_sec);
  }
  {
    common::MutexLock lock(mu_);
    stats_.timeouts += 1;
  }
  if (breaker_ != nullptr) breaker_->RecordFailure(from, to);
  return Status::Unavailable("ReliableChannel: '" + topic + "' " + from +
                             "->" + to + " undeliverable after " +
                             std::to_string(options_.max_attempts) +
                             " attempts");
}

Result<Message> ReliableChannel::Receive(const std::string& to,
                                         const std::string& topic) {
  Status last_loss = Status::OK();
  for (;;) {
    Result<Message> raw = network_->ReceiveDirect(to, topic);
    if (!raw.ok()) {
      if (raw.status().IsNotFound()) {
        if (!last_loss.ok()) return last_loss;  // only corrupted copies seen
        return Status::Unavailable(
            "ReliableChannel: no '" + topic + "' message for " + to +
            " (sender gave up or is down)");
      }
      return raw.status();  // e.g. kUnavailable: this party is crashed
    }
    Message msg = std::move(raw).value();
    Result<Frame> frame = DecodeFrame(msg.payload);
    if (!frame.ok()) {
      // Corrupted on the wire; the sender already retransmitted a clean
      // copy (it never got an ack for this one), so just discard.
      {
        common::MutexLock lock(mu_);
        stats_.crc_failures += 1;
      }
      obs::MetricsRegistry::Global().Count("flb.net.reliable.crc_failures", 1,
                                           "link=" + msg.from + ">" + to);
      if (breaker_ != nullptr) breaker_->RecordFailure(msg.from, to);
      last_loss = frame.status();
      continue;
    }
    {
      common::MutexLock lock(mu_);
      auto& seen = delivered_[LinkKey(msg.from, to, topic)];
      if (!seen.insert(frame->seq).second) {
        stats_.duplicates_suppressed += 1;
        continue;
      }
    }
    msg.payload = std::move(frame->payload);
    return msg;
  }
}

void ReliableChannel::CollectMetrics(
    std::vector<obs::MetricValue>& out) const {
  common::MutexLock lock(mu_);
  auto counter = [&](const char* name, uint64_t value) {
    obs::MetricValue m;
    m.name = name;
    m.type = obs::MetricType::kCounter;
    m.value = static_cast<double>(value);
    out.push_back(std::move(m));
  };
  counter("flb.net.reliable.sends", stats_.sends);
  counter("flb.net.reliable.attempts", stats_.attempts);
  counter("flb.net.reliable.retransmits", stats_.retransmits);
  counter("flb.net.reliable.acks", stats_.acks);
  counter("flb.net.reliable.timeouts", stats_.timeouts);
  counter("flb.net.reliable.crc_failures", stats_.crc_failures);
  counter("flb.net.reliable.duplicates_suppressed",
          stats_.duplicates_suppressed);
}

}  // namespace flb::net
