// ReliableChannel: ack/retransmit reliability on top of the lossy Network.
//
// Every message is framed (see serializer.h: magic + CRC32 + per-link
// sequence number) and sent with a stop-and-wait ack/retransmit loop:
//
//   * a delivery attempt that the fault injector drops (loss, partition,
//     crashed peer) or corrupts (receiver would CRC-NAK) is retried after an
//     exponentially backed-off RTO, charged to the SimClock;
//   * every successful delivery is acknowledged with a small control
//     message charged in the reverse direction;
//   * the retry loop is bounded by a per-message simulated-time deadline
//     budget and an attempt cap — exhaustion surfaces as typed
//     kDeadlineExceeded / kUnavailable statuses the trainers treat as a
//     recoverable dropout, replacing the fatal-NotFound pattern;
//   * the receive side CRC-checks frames (kDataLoss detection), discards
//     corrupted copies, and suppresses duplicates by (link, seq).
//
// In this sequential in-process harness the loop runs at send time: the
// fault injector decides each attempt's fate immediately, so by the time
// Send returns OK exactly one clean copy (plus possibly duplicated or
// corrupted extras, which the receiver filters) is in the peer's inbox.
//
// With no fault injector attached the channel never retransmits and adds
// only the frame header + ack bytes over the raw Network — the "within ack
// overhead" accounting parity the tests pin down.

#ifndef FLB_NET_RELIABLE_CHANNEL_H_
#define FLB_NET_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/deadline.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"

namespace flb::net {

class CircuitBreaker;

struct ReliableOptions {
  int max_attempts = 8;            // total tries per message
  double initial_rto_sec = 0.01;   // first retransmit timeout
  double backoff = 2.0;            // RTO multiplier per retry
  double max_rto_sec = 0.5;        // RTO cap
  double deadline_sec = 5.0;       // simulated-time budget per message
  size_t ack_bytes = 32;           // ack control-message size
  // Seeded multiplicative jitter on each backoff wait (+/- half of this
  // fraction), so concurrent retriers on different links don't retransmit
  // in lockstep. The jitter for (link, seq, attempt) is a pure function of
  // jitter_seed — bit-reproducible across reruns and thread counts. 0
  // disables it.
  double jitter_frac = 0.1;
  uint64_t jitter_seed = 1;

  // `base` overridden by the FLB_NET_RETRY environment variable when set:
  // comma-separated k=v pairs over the keys max_attempts, rto, backoff,
  // max_rto, deadline, ack_bytes, jitter, seed (e.g.
  // "max_attempts=4,rto=0.02,jitter=0.2"). InvalidArgument on unknown keys
  // or unparseable values.
  static Result<ReliableOptions> FromEnv(const ReliableOptions& base);
};

struct ChannelStats {
  uint64_t sends = 0;        // messages accepted by Send
  uint64_t attempts = 0;     // wire attempts (sends + retransmits)
  uint64_t retransmits = 0;
  uint64_t acks = 0;
  uint64_t timeouts = 0;     // sends that exhausted deadline/attempts
  uint64_t crc_failures = 0;           // corrupted frames discarded
  uint64_t duplicates_suppressed = 0;  // replayed seqs discarded
};

class ReliableChannel : public obs::MetricsSource {
 public:
  explicit ReliableChannel(Network* network, ReliableOptions options = {});

  const ReliableOptions& options() const { return options_; }

  // Optional per-link circuit breaker: when set, Send consults it before
  // touching the wire (open circuit = immediate typed kUnavailable with
  // zero charged time) and reports every whole-send outcome to it.
  void set_breaker(CircuitBreaker* breaker) { breaker_ = breaker; }
  CircuitBreaker* breaker() const { return breaker_; }

  // Optional run-wide deadline: when set, each send's retry budget is
  // clamped to the remaining run budget and an expired deadline surfaces
  // as typed kDeadlineExceeded before any attempt.
  void set_run_deadline(const common::Deadline* deadline) {
    run_deadline_ = deadline;
  }

  // Framed, acknowledged send. kDeadlineExceeded when the retry budget runs
  // out, kUnavailable when every attempt up to the cap was swallowed (peer
  // crashed or partitioned past the deadline horizon).
  Status Send(const std::string& from, const std::string& to,
              const std::string& topic, std::vector<uint8_t> payload,
              size_t objects = 0);

  // Pops, CRC-checks, and de-duplicates the next frame for (to, topic),
  // returning the unframed message. kUnavailable when nothing is pending
  // (the sender gave up or died — recoverable, unlike the raw NotFound);
  // kDataLoss when only corrupted frames were pending.
  Result<Message> Receive(const std::string& to, const std::string& topic);

  // Snapshot by value: the counters keep moving under their own lock.
  ChannelStats stats() const {
    common::MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() {
    common::MutexLock lock(mu_);
    stats_ = ChannelStats{};
  }

  // obs::MetricsSource: flb.net.reliable.* counters.
  void CollectMetrics(std::vector<obs::MetricValue>& out) const override;
  void ResetMetrics() override { ResetStats(); }

 private:
  static std::string LinkKey(const std::string& from, const std::string& to,
                             const std::string& topic) {
    return from + '\x1f' + to + '\x1f' + topic;
  }

  Network* network_;
  ReliableOptions options_;
  CircuitBreaker* breaker_ = nullptr;
  const common::Deadline* run_deadline_ = nullptr;
  // Brief per-access leaf lock: never held across the Network / registry /
  // recorder calls inside the retry loop.
  mutable common::Mutex mu_;
  ChannelStats stats_ FLB_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> next_seq_ FLB_GUARDED_BY(mu_);  // sender
  std::map<std::string, std::set<uint64_t>> delivered_
      FLB_GUARDED_BY(mu_);  // receiver side
  obs::ScopedMetricsSource metrics_registration_{this};
};

}  // namespace flb::net

#endif  // FLB_NET_RELIABLE_CHANNEL_H_
