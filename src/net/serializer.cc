#include "src/net/serializer.h"

#include <cstring>

namespace flb::net {

void Serializer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Serializer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Serializer::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Serializer::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Serializer::PutBigInt(const BigInt& v) {
  PutU32(static_cast<uint32_t>(v.WordCount()));
  for (uint32_t w : v.words()) PutU32(w);
}

void Serializer::PutBigIntFixed(const BigInt& v, size_t words) {
  for (uint32_t w : v.ToFixedWords(words)) PutU32(w);
}

void Serializer::PutDoubleVector(const std::vector<double>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (double d : v) PutDouble(d);
}

void Serializer::PutBigIntBatchFixed(const std::vector<BigInt>& v,
                                     size_t words) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (const BigInt& x : v) PutBigIntFixed(x, words);
}

namespace {

constexpr uint32_t kFrameMagic = 0x464C4246;  // "FLBF"

const uint32_t* Crc32Table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  const uint32_t* table = Crc32Table();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

std::vector<uint8_t> EncodeFrame(uint64_t seq,
                                 const std::vector<uint8_t>& payload) {
  Serializer body;
  body.PutU64(seq);
  body.PutU32(static_cast<uint32_t>(payload.size()));
  Serializer out;
  out.PutU32(kFrameMagic);
  // CRC over [seq][len][payload] — the body built so far plus the payload
  // appended verbatim below.
  uint32_t crc = 0xFFFFFFFFu;
  const uint32_t* table = Crc32Table();
  for (uint8_t b : body.bytes()) crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  for (uint8_t b : payload) crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  out.PutU32(crc ^ 0xFFFFFFFFu);
  std::vector<uint8_t> bytes = out.TakeBytes();
  const auto& head = body.bytes();
  bytes.insert(bytes.end(), head.begin(), head.end());
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

Result<Frame> DecodeFrame(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 20) {  // magic + crc + seq + len
    return Status::DataLoss("frame: truncated header");
  }
  Deserializer d(bytes);
  FLB_ASSIGN_OR_RETURN(uint32_t magic, d.GetU32());
  if (magic != kFrameMagic) {
    return Status::DataLoss("frame: bad magic (corrupted or unframed)");
  }
  FLB_ASSIGN_OR_RETURN(uint32_t crc, d.GetU32());
  if (crc != Crc32(bytes.data() + 8, bytes.size() - 8)) {
    return Status::DataLoss("frame: CRC32 mismatch (payload corrupted)");
  }
  Frame frame;
  FLB_ASSIGN_OR_RETURN(frame.seq, d.GetU64());
  FLB_ASSIGN_OR_RETURN(uint32_t len, d.GetU32());
  if (len != d.remaining()) {
    return Status::DataLoss("frame: length disagrees with buffer");
  }
  frame.payload.assign(bytes.end() - len, bytes.end());
  return frame;
}

Status Deserializer::Need(size_t n) const {
  if (pos_ + n > bytes_.size()) {
    return Status::OutOfRange("Deserializer: truncated message");
  }
  return Status::OK();
}

Result<uint32_t> Deserializer::GetU32() {
  FLB_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Deserializer::GetU64() {
  FLB_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> Deserializer::GetDouble() {
  FLB_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Deserializer::GetString() {
  FLB_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  FLB_RETURN_IF_ERROR(Need(len));
  std::string s(bytes_.begin() + pos_, bytes_.begin() + pos_ + len);
  pos_ += len;
  return s;
}

Result<BigInt> Deserializer::GetBigInt() {
  FLB_ASSIGN_OR_RETURN(uint32_t words, GetU32());
  return GetBigIntFixed(words);
}

Result<BigInt> Deserializer::GetBigIntFixed(size_t words) {
  FLB_RETURN_IF_ERROR(Need(words * 4));
  std::vector<uint32_t> w(words);
  for (size_t i = 0; i < words; ++i) {
    uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<uint32_t>(bytes_[pos_ + 4 * i + b]) << (8 * b);
    }
    w[i] = v;
  }
  pos_ += words * 4;
  return BigInt::FromWords(std::move(w));
}

Result<std::vector<double>> Deserializer::GetDoubleVector() {
  FLB_ASSIGN_OR_RETURN(uint32_t count, GetU32());
  FLB_RETURN_IF_ERROR(Need(size_t{count} * 8));
  std::vector<double> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FLB_ASSIGN_OR_RETURN(double d, GetDouble());
    out.push_back(d);
  }
  return out;
}

Result<std::vector<BigInt>> Deserializer::GetBigIntBatchFixed(size_t words) {
  FLB_ASSIGN_OR_RETURN(uint32_t count, GetU32());
  FLB_RETURN_IF_ERROR(Need(size_t{count} * words * 4));
  std::vector<BigInt> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FLB_ASSIGN_OR_RETURN(BigInt v, GetBigIntFixed(words));
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace flb::net
