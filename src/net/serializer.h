// Byte-level serialization for FL messages.
//
// The wire format matters here: the paper's communication costs are driven
// by ciphertext bytes, so messages serialize BigInts in the same fixed
// 2*key-size layout a real FATE deployment ships (ciphertexts in Z_{n^2}
// always occupy 2k bits regardless of value). All integers little-endian.

#ifndef FLB_NET_SERIALIZER_H_
#define FLB_NET_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/mpint/bigint.h"

namespace flb::net {

using mpint::BigInt;

class Serializer {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  void PutString(const std::string& s);
  // Variable-width: u32 limb count + limbs.
  void PutBigInt(const BigInt& v);
  // Fixed-width: exactly `words` limbs (the ciphertext layout).
  void PutBigIntFixed(const BigInt& v, size_t words);
  void PutDoubleVector(const std::vector<double>& v);
  // A batch of same-width ciphertexts: u32 count + count * words limbs.
  void PutBigIntBatchFixed(const std::vector<BigInt>& v, size_t words);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

class Deserializer {
 public:
  explicit Deserializer(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<BigInt> GetBigInt();
  Result<BigInt> GetBigIntFixed(size_t words);
  Result<std::vector<double>> GetDoubleVector();
  Result<std::vector<BigInt>> GetBigIntBatchFixed(size_t words);

  // True when every byte has been consumed.
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace flb::net

#endif  // FLB_NET_SERIALIZER_H_
