// Byte-level serialization for FL messages.
//
// The wire format matters here: the paper's communication costs are driven
// by ciphertext bytes, so messages serialize BigInts in the same fixed
// 2*key-size layout a real FATE deployment ships (ciphertexts in Z_{n^2}
// always occupy 2k bits regardless of value). All integers little-endian.

#ifndef FLB_NET_SERIALIZER_H_
#define FLB_NET_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/mpint/bigint.h"

namespace flb::net {

using mpint::BigInt;

class Serializer {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  void PutString(const std::string& s);
  // Variable-width: u32 limb count + limbs.
  void PutBigInt(const BigInt& v);
  // Fixed-width: exactly `words` limbs (the ciphertext layout).
  void PutBigIntFixed(const BigInt& v, size_t words);
  void PutDoubleVector(const std::vector<double>& v);
  // A batch of same-width ciphertexts: u32 count + count * words limbs.
  void PutBigIntBatchFixed(const std::vector<BigInt>& v, size_t words);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

// CRC-32 (IEEE 802.3 polynomial, reflected). Used as the integrity check on
// reliable-transport frames and anywhere a cheap end-to-end payload guard is
// needed; detects every single-bit flip.
uint32_t Crc32(const uint8_t* data, size_t len);
uint32_t Crc32(const std::vector<uint8_t>& bytes);

// Reliable-transport frame: the unit ReliableChannel puts on the wire.
//
//   [magic u32][crc u32][seq u64][len u32][payload]
//
// The CRC covers everything after the crc field (seq + len + payload), so a
// bit flip anywhere in the routed content surfaces as kDataLoss at the
// receiver; a corrupted magic is equally fatal. `seq` is the per-link
// sequence number duplicate suppression keys on.
struct Frame {
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

std::vector<uint8_t> EncodeFrame(uint64_t seq,
                                 const std::vector<uint8_t>& payload);
// kDataLoss on bad magic, checksum mismatch, or a length that disagrees
// with the buffer — the caller treats all three as a corrupted frame.
Result<Frame> DecodeFrame(const std::vector<uint8_t>& bytes);

class Deserializer {
 public:
  explicit Deserializer(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<BigInt> GetBigInt();
  Result<BigInt> GetBigIntFixed(size_t words);
  Result<std::vector<double>> GetDoubleVector();
  Result<std::vector<BigInt>> GetBigIntBatchFixed(size_t words);

  // True when every byte has been consumed.
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace flb::net

#endif  // FLB_NET_SERIALIZER_H_
