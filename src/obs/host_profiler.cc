#include "src/obs/host_profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>

#include "src/common/env.h"

namespace flb::obs {

namespace {

// Wall-clock by design: this file IS the wall plane (see header). Nothing
// derived from these stamps ever reaches charged accounting; flb_lint
// allowlists this file for FLB001.
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t PackTrack(Track track) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(track.pid)) << 32) |
         static_cast<uint32_t>(track.tid);
}

Track UnpackTrack(uint64_t packed) {
  return Track{static_cast<int>(packed >> 32),
               static_cast<int>(packed & 0xffffffffu)};
}

}  // namespace

HostProfiler& HostProfiler::Global() {
  static HostProfiler* profiler = new HostProfiler();  // never destroyed:
  // workers may still observe it during static teardown.
  return *profiler;
}

void HostProfiler::EnableFromEnv() {
  if (common::Env::Flag("FLB_HOST_PROFILE")) Global().Enable();
}

void HostProfiler::Enable() {
  if (enabled_.exchange(true, std::memory_order_acq_rel)) return;
  uint64_t expected = 0;
  base_ns_.compare_exchange_strong(expected, NowNs(),
                                   std::memory_order_acq_rel);
  common::MutexContention::enabled.store(true, std::memory_order_relaxed);
  if (!source_registered_.exchange(true)) {
    MetricsRegistry::Global().RegisterSource(this);
  }
  common::ThreadPool::SetObserver(this);
}

void HostProfiler::Disable() {
  if (!enabled_.exchange(false, std::memory_order_acq_rel)) return;
  common::ThreadPool::SetObserver(nullptr);
  common::MutexContention::enabled.store(false, std::memory_order_relaxed);
  if (source_registered_.exchange(false)) {
    MetricsRegistry::Global().UnregisterSource(this);
  }
}

Track HostProfiler::WallTrack(int worker) {
  auto& slot = track_cache_[worker];
  uint64_t packed = slot.load(std::memory_order_acquire);
  if (packed == 0) {
    const Track track = TraceRecorder::Global().RegisterTrack(
        "host.wall", "worker " + std::to_string(worker));
    packed = PackTrack(track);
    slot.store(packed, std::memory_order_release);
  }
  return UnpackTrack(packed);
}

Track HostProfiler::QueueTrack() {
  uint64_t packed = queue_track_cache_.load(std::memory_order_acquire);
  if (packed == 0) {
    const Track track =
        TraceRecorder::Global().RegisterTrack("host.wall", "queue");
    packed = PackTrack(track);
    queue_track_cache_.store(packed, std::memory_order_release);
  }
  return UnpackTrack(packed);
}

double HostProfiler::WallSeconds(uint64_t ns) const {
  const uint64_t base = base_ns_.load(std::memory_order_relaxed);
  return ns > base ? static_cast<double>(ns - base) * 1e-9 : 0.0;
}

void HostProfiler::OnTask(const TaskEvent& event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const int w = std::clamp(event.worker, 0, kMaxWorkers - 1);
  WorkerStats& ws = workers_[w];
  const uint64_t dur_ns =
      event.end_ns > event.start_ns ? event.end_ns - event.start_ns : 0;
  ws.busy_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  ws.tasks.fetch_add(1, std::memory_order_relaxed);
  if (event.stolen) ws.steals.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.store(event.queue_depth, std::memory_order_relaxed);

  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  const double start = WallSeconds(event.start_ns);
  const double end = WallSeconds(event.end_ns);
  recorder.Span(WallTrack(w), event.stolen ? "steal" : "task", "wall", start,
                end,
                {Arg("chunk_begin", event.chunk_begin),
                 Arg("chunk_end", event.chunk_end),
                 Arg("queue_depth", event.queue_depth)});
  recorder.Counter(QueueTrack(), "flb.host.queue_depth", start,
                   static_cast<double>(event.queue_depth));
}

void HostProfiler::OnIdle(int worker, uint64_t start_ns, uint64_t end_ns) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const int w = std::clamp(worker, 0, kMaxWorkers - 1);
  const uint64_t dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  workers_[w].idle_ns.fetch_add(dur_ns, std::memory_order_relaxed);

  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  recorder.Span(WallTrack(w), "idle", "wall", WallSeconds(start_ns),
                WallSeconds(end_ns));
}

void HostProfiler::CollectMetrics(std::vector<MetricValue>& out) const {
  for (int w = 0; w < kMaxWorkers; ++w) {
    const WorkerStats& ws = workers_[w];
    const uint64_t tasks = ws.tasks.load(std::memory_order_relaxed);
    const uint64_t idle_ns = ws.idle_ns.load(std::memory_order_relaxed);
    if (tasks == 0 && idle_ns == 0) continue;
    const std::string labels = "worker=" + std::to_string(w);
    const auto add = [&](const char* name, MetricType type, double value) {
      MetricValue m;
      m.name = name;
      m.labels = labels;
      m.type = type;
      m.value = value;
      out.push_back(std::move(m));
    };
    add("flb.host.busy_ms", MetricType::kCounter,
        static_cast<double>(ws.busy_ns.load(std::memory_order_relaxed)) *
            1e-6);
    add("flb.host.idle_ms", MetricType::kCounter,
        static_cast<double>(idle_ns) * 1e-6);
    add("flb.host.profiled_tasks", MetricType::kCounter,
        static_cast<double>(tasks));
    add("flb.host.profiled_steals", MetricType::kCounter,
        static_cast<double>(ws.steals.load(std::memory_order_relaxed)));
  }

  {
    MetricValue m;
    m.name = "flb.host.queue_depth";
    m.type = MetricType::kGauge;
    m.value =
        static_cast<double>(queue_depth_.load(std::memory_order_relaxed));
    out.push_back(std::move(m));
  }

  const uint64_t contended =
      common::MutexContention::contended_acquires.load(
          std::memory_order_relaxed);
  {
    MetricValue m;
    m.name = "flb.host.lock_contended";
    m.type = MetricType::kCounter;
    m.value = static_cast<double>(contended);
    out.push_back(std::move(m));
  }
  {
    // Contention-wait histogram in the registry's sparse convention:
    // zero-count buckets omitted, overflow bucket mapped to le=+inf (the
    // Prometheus encoder re-adds cumulative semantics and the +Inf line).
    MetricValue m;
    m.name = "flb.host.lock_wait_seconds";
    m.type = MetricType::kHistogram;
    m.count = contended;
    m.value = static_cast<double>(common::MutexContention::total_wait_ns.load(
                  std::memory_order_relaxed)) *
              1e-9;
    for (int b = 0; b < common::MutexContention::kNumBuckets; ++b) {
      const uint64_t count =
          common::MutexContention::buckets[b].load(std::memory_order_relaxed);
      if (count == 0) continue;
      HistogramBucket bucket;
      // Bucket b covers waits < 2^(b+1) ns; the last absorbs the rest.
      bucket.le = b + 1 < common::MutexContention::kNumBuckets
                      ? static_cast<double>(uint64_t{1} << (b + 1)) * 1e-9
                      : std::numeric_limits<double>::infinity();
      bucket.count = count;
      m.buckets.push_back(bucket);
    }
    out.push_back(std::move(m));
  }
}

void HostProfiler::ResetMetrics() {
  for (WorkerStats& ws : workers_) {
    ws.busy_ns.store(0, std::memory_order_relaxed);
    ws.idle_ns.store(0, std::memory_order_relaxed);
    ws.tasks.store(0, std::memory_order_relaxed);
    ws.steals.store(0, std::memory_order_relaxed);
  }
  queue_depth_.store(0, std::memory_order_relaxed);
  common::MutexContention::Reset();
}

}  // namespace flb::obs
