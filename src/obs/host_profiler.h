// HostProfiler: the wall-clock profiling plane for host execution.
//
// The platform's primary trace domain is *simulated* time (see trace.h);
// charged accounting never touches the wall clock. But the host execution
// engine (src/common/thread_pool) does real work on real cores, and "is the
// pool actually saturated?" is a wall-clock question. HostProfiler answers
// it without perturbing the simulated plane: it installs itself as the
// process-wide ThreadPoolObserver and renders per-worker task / steal /
// idle windows into a *second* Perfetto clock domain — the "host.wall"
// process in the exported trace, whose timestamps are monotonic wall
// seconds since Enable() rather than simulated seconds. The two domains
// share one trace file; Perfetto renders them as separate process groups,
// so a run's simulated timeline and its real scheduling behaviour can be
// inspected side by side (see DESIGN.md, "Dual-clock trace model").
//
// It is also a MetricsSource: every snapshot contributes
//   flb.host.busy_ms{worker=N} / flb.host.idle_ms{worker=N}   (counters)
//   flb.host.queue_depth                                      (gauge)
//   flb.host.lock_contended / flb.host.lock_wait_seconds      (counter /
//       histogram, from common::MutexContention's lock-free buckets)
//
// Observer callbacks run on pool worker threads and touch only relaxed
// atomics plus the TraceRecorder's leaf lock — they never feed charged
// accounting, so enabling the profiler cannot change any run result (the
// ObsServer determinism test enforces this bit-for-bit).

#ifndef FLB_OBS_HOST_PROFILER_H_
#define FLB_OBS_HOST_PROFILER_H_

#include <atomic>
#include <cstdint>

#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flb::obs {

class HostProfiler : public common::ThreadPoolObserver, public MetricsSource {
 public:
  HostProfiler() = default;
  ~HostProfiler() override = default;

  // The process-global profiler (the only instance that should ever be
  // installed as the pool observer; it lives for the whole process).
  static HostProfiler& Global();

  // Enables the global profiler when FLB_HOST_PROFILE is set to anything
  // but "0" / empty. ObsServer startup also calls Global().Enable(), so a
  // live-inspected process always has the wall plane populated.
  static void EnableFromEnv();

  // Idempotent. Installs the pool observer, turns on lock-contention
  // accounting, and registers the metrics source. The wall-time origin
  // (second clock domain's zero) is pinned on the first Enable().
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // ThreadPoolObserver (worker threads; lock-light by contract).
  void OnTask(const TaskEvent& event) override;
  void OnIdle(int worker, uint64_t start_ns, uint64_t end_ns) override;

  // MetricsSource (called under the registry lock; atomics only).
  void CollectMetrics(std::vector<MetricValue>& out) const override;
  void ResetMetrics() override;

 private:
  // FLB_HOST_THREADS is capped at 512; slot 512 absorbs any overflow.
  static constexpr int kMaxWorkers = 513;

  struct alignas(64) WorkerStats {
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> idle_ns{0};
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> steals{0};
  };

  Track WallTrack(int worker);
  Track QueueTrack();
  double WallSeconds(uint64_t ns) const;

  std::atomic<bool> enabled_{false};
  std::atomic<bool> source_registered_{false};
  std::atomic<uint64_t> base_ns_{0};
  std::atomic<int64_t> queue_depth_{0};
  // Cached Track handles packed as (pid << 32) | tid; 0 = not yet
  // registered (real pids start at 1). RegisterTrack is idempotent, so a
  // racing double-registration is harmless.
  std::atomic<uint64_t> track_cache_[kMaxWorkers] = {};
  std::atomic<uint64_t> queue_track_cache_{0};
  WorkerStats workers_[kMaxWorkers];
};

}  // namespace flb::obs

#endif  // FLB_OBS_HOST_PROFILER_H_
