// Minimal JSON serialization helpers shared by the obs exporters (trace
// events, metrics snapshots). Writing only — the obs layer never parses
// JSON; validation lives in tests and scripts/validate_obs_json.sh.

#ifndef FLB_OBS_JSON_UTIL_H_
#define FLB_OBS_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>

namespace flb::obs {

// Escapes a string for inclusion between JSON double quotes.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string JsonQuote(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

// JSON has no NaN/Inf literals; clamp them so exports always parse.
inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  // Shortest round-trippable form is overkill; %.12g keeps files compact
  // while preserving microsecond-scale timestamps over hour-scale traces.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

inline std::string JsonNumber(uint64_t v) { return std::to_string(v); }
inline std::string JsonNumber(int64_t v) { return std::to_string(v); }
inline std::string JsonNumber(int v) { return std::to_string(v); }

}  // namespace flb::obs

#endif  // FLB_OBS_JSON_UTIL_H_
