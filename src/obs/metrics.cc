#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <tuple>

#include "src/obs/json_util.h"
#include "src/obs/trace.h"

namespace flb::obs {

namespace {

// Log10 buckets: 1e-9, 1e-8, ..., 1e3, +inf — spans nanosecond kernel
// launches to kilosecond epochs.
constexpr int kNumBuckets = 14;

double BucketBound(int i) {
  return i + 1 >= kNumBuckets ? std::numeric_limits<double>::infinity()
                              : std::pow(10.0, i - 9);
}

int BucketIndex(double v) {
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (v <= BucketBound(i)) return i;
  }
  return kNumBuckets - 1;
}

}  // namespace

std::string MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  // Registered after the registry is constructed, so the handler runs
  // before its destructor (covers binaries that never touch the recorder).
  static const int atexit_registered = std::atexit(ExportEnvConfigured);
  (void)atexit_registered;
  return registry;
}

void MetricsRegistry::Count(const std::string& name, double delta,
                            const std::string& labels) {
  common::MutexLock lock(mu_);
  counters_[{name, labels}] += delta;
}

void MetricsRegistry::Set(const std::string& name, double value,
                          const std::string& labels) {
  common::MutexLock lock(mu_);
  gauges_[{name, labels}] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value,
                              const std::string& labels) {
  common::MutexLock lock(mu_);
  Histogram& h = histograms_[{name, labels}];
  if (h.buckets.empty()) h.buckets.assign(kNumBuckets, 0);
  if (h.count == 0) {
    h.min = h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[static_cast<size_t>(BucketIndex(value))];
}

void MetricsRegistry::RegisterSource(MetricsSource* source) {
  common::MutexLock lock(mu_);
  sources_.push_back(source);
}

void MetricsRegistry::UnregisterSource(MetricsSource* source) {
  common::MutexLock lock(mu_);
  sources_.erase(std::remove(sources_.begin(), sources_.end(), source),
                 sources_.end());
}

std::vector<MetricValue> MetricsRegistry::Collect() const {
  common::MutexLock lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, value] : counters_) {
    MetricValue m;
    m.name = key.first;
    m.labels = key.second;
    m.type = MetricType::kCounter;
    m.value = value;
    out.push_back(std::move(m));
  }
  for (const auto& [key, value] : gauges_) {
    MetricValue m;
    m.name = key.first;
    m.labels = key.second;
    m.type = MetricType::kGauge;
    m.value = value;
    out.push_back(std::move(m));
  }
  for (const auto& [key, h] : histograms_) {
    MetricValue m;
    m.name = key.first;
    m.labels = key.second;
    m.type = MetricType::kHistogram;
    m.value = h.sum;
    m.count = h.count;
    m.min = h.min;
    m.max = h.max;
    for (int i = 0; i < kNumBuckets; ++i) {
      if (h.buckets[static_cast<size_t>(i)] == 0) continue;
      m.buckets.push_back(
          {BucketBound(i), h.buckets[static_cast<size_t>(i)]});
    }
    out.push_back(std::move(m));
  }
  for (const MetricsSource* source : sources_) {
    source->CollectMetrics(out);
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return out;
}

void MetricsRegistry::ResetAll() {
  common::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  for (MetricsSource* source : sources_) {
    source->ResetMetrics();
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : Collect()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":" + JsonQuote(m.name);
    out += ",\"labels\":" + JsonQuote(m.labels);
    out += ",\"type\":" + JsonQuote(MetricTypeName(m.type));
    out += ",\"value\":" + JsonNumber(m.value);
    if (m.type == MetricType::kHistogram) {
      out += ",\"count\":" + JsonNumber(m.count);
      out += ",\"min\":" + JsonNumber(m.min);
      out += ",\"max\":" + JsonNumber(m.max);
      out += ",\"buckets\":[";
      for (size_t i = 0; i < m.buckets.size(); ++i) {
        if (i > 0) out += ",";
        // +inf has no JSON literal; the last log10 bound is 1e3, so 1e9
        // stands in as the overflow bucket bound.
        const double le =
            std::isfinite(m.buckets[i].le) ? m.buckets[i].le : 1e9;
        out += "{\"le\":" + JsonNumber(le) +
               ",\"count\":" + JsonNumber(m.buckets[i].count) + "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n]}";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("MetricsRegistry: cannot open " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("MetricsRegistry: short write to " + path);
  }
  return Status::OK();
}

ScopedMetricsSource::ScopedMetricsSource(MetricsSource* source,
                                         MetricsRegistry* registry)
    : source_(source), registry_(registry) {
  registry_->RegisterSource(source_);
}

ScopedMetricsSource::~ScopedMetricsSource() {
  registry_->UnregisterSource(source_);
}

}  // namespace flb::obs
