// MetricsRegistry: the unified metrics plane for the platform.
//
// Before this layer, per-component telemetry was scattered: DeviceStats on
// the simulated GPU, NetworkStats on the simulated network, HE op counts on
// HeService, GHE chunking diagnostics on the engine, and ad-hoc printf in
// the benches. The registry unifies them behind one snapshot/serialize API:
//
//  * Counters / gauges / histograms with labels, for ad-hoc metrics
//    (Count / Set / Observe). Values are doubles; counts up to 2^53 stay
//    exact.
//  * MetricsSource: an adapter the stats-owning components implement.
//    Device, Network, and HeService register themselves (RAII, via
//    ScopedMetricsSource) and contribute their stats structs to every
//    snapshot — the legacy structs stay as the hot-path accumulators and
//    keep their existing consumers compiling, but reporting and reset now
//    route through the registry.
//
// ResetAll() clears the registry's own metrics AND resets every registered
// source (Device::ResetStats, Network::ResetStats, ...), which is what the
// benches call at section boundaries so per-section numbers are never
// cumulative.
//
// Naming scheme: "flb.<module>.<metric>" in snake_case; labels are a
// canonical "key=value,key=value" string (sorted by the caller). Snapshots
// serialize to {"metrics": [...]} JSON consumed by
// scripts/run_all_experiments.sh and the CI schema check.

#ifndef FLB_OBS_METRICS_H_
#define FLB_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/status.h"

namespace flb::obs {

enum class MetricType : int { kCounter = 0, kGauge = 1, kHistogram = 2 };

std::string MetricTypeName(MetricType type);

struct HistogramBucket {
  double le = 0.0;  // upper bound (inclusive); last bucket is +inf
  uint64_t count = 0;
};

// One metric in a snapshot.
struct MetricValue {
  std::string name;
  std::string labels;  // canonical "k=v,k=v"; empty when unlabelled
  MetricType type = MetricType::kGauge;
  double value = 0.0;  // counter total / gauge value / histogram sum
  // Histogram-only fields.
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  std::vector<HistogramBucket> buckets;
};

// Implemented by components that own a legacy stats struct. CollectMetrics
// appends the struct's fields as MetricValues; ResetMetrics zeroes the
// struct (the component's old ResetStats).
class MetricsSource {
 public:
  virtual ~MetricsSource() = default;
  virtual void CollectMetrics(std::vector<MetricValue>& out) const = 0;
  virtual void ResetMetrics() = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  // The process-global registry every instrumented component reports to.
  static MetricsRegistry& Global();

  // Adds `delta` to the counter (find-or-create).
  void Count(const std::string& name, double delta,
             const std::string& labels = "");
  // Sets the gauge to `value`.
  void Set(const std::string& name, double value,
           const std::string& labels = "");
  // Records one observation into the histogram (log10 buckets, 1e-9..1e3).
  void Observe(const std::string& name, double value,
               const std::string& labels = "");

  void RegisterSource(MetricsSource* source);
  void UnregisterSource(MetricsSource* source);
  size_t num_sources() const {
    common::MutexLock lock(mu_);
    return sources_.size();
  }

  // Snapshot: the registry's own metrics plus every registered source's
  // contribution, sorted by (name, labels).
  std::vector<MetricValue> Collect() const;

  // Clears the registry's own metrics and resets every registered source —
  // the one reset path for DeviceStats/NetworkStats/op counts.
  void ResetAll();

  // {"metrics": [...]} (see header comment for the schema).
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  struct Histogram {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<uint64_t> buckets;  // kNumBuckets entries
  };
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  // Leaf-level locking: mu_ is held across source->CollectMetrics /
  // ResetMetrics calls, so sources must never call back into the registry
  // from those hooks (they only read/zero their own stats structs).
  mutable common::Mutex mu_;
  std::map<Key, double> counters_ FLB_GUARDED_BY(mu_);
  std::map<Key, double> gauges_ FLB_GUARDED_BY(mu_);
  std::map<Key, Histogram> histograms_ FLB_GUARDED_BY(mu_);
  std::vector<MetricsSource*> sources_ FLB_GUARDED_BY(mu_);
};

// RAII registration of a MetricsSource with a registry. Members of the
// source itself (declare last so registration happens after the stats
// fields exist).
class ScopedMetricsSource {
 public:
  explicit ScopedMetricsSource(
      MetricsSource* source,
      MetricsRegistry* registry = &MetricsRegistry::Global());
  ~ScopedMetricsSource();

  ScopedMetricsSource(const ScopedMetricsSource&) = delete;
  ScopedMetricsSource& operator=(const ScopedMetricsSource&) = delete;

 private:
  MetricsSource* source_;
  MetricsRegistry* registry_;
};

}  // namespace flb::obs

#endif  // FLB_OBS_METRICS_H_
