#include "src/obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/env.h"
#include "src/obs/host_profiler.h"
#include "src/obs/metrics.h"
#include "src/obs/prometheus.h"
#include "src/obs/run_status.h"
#include "src/obs/trace.h"

namespace flb::obs {

namespace {

// The process-global server, started at most once per process (leaked
// deliberately: scrapers may still be connected during static teardown).
std::atomic<ObsServer*> g_global{nullptr};

}  // namespace

ObsServer::ObsServer(const Options& options) : options_(options) {}

ObsServer::~ObsServer() { Stop(); }

Result<std::unique_ptr<ObsServer>> ObsServer::Start(const Options& options) {
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("obs server: port out of range: " +
                                   std::to_string(options.port));
  }
  std::unique_ptr<ObsServer> server(new ObsServer(options));
  FLB_RETURN_IF_ERROR(server->Listen());
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptorLoop(); });
  const int num_handlers = std::max(1, options.num_handlers);
  server->handlers_.reserve(static_cast<size_t>(num_handlers));
  for (int i = 0; i < num_handlers; ++i) {
    server->handlers_.emplace_back([s = server.get()] { s->HandlerLoop(); });
  }
  return server;
}

ObsServer* ObsServer::Global() {
  return g_global.load(std::memory_order_acquire);
}

ObsServer* ObsServer::EnsureGlobalFromEnv(int explicit_port) {
  static common::Mutex init_mu;
  common::MutexLock lock(init_mu);
  if (ObsServer* existing = Global()) return existing;

  int port = explicit_port;
  bool requested = explicit_port > 0;
  if (!requested) {
    const char* v = common::Env::Raw("FLB_OBS_PORT");
    if (v != nullptr && *v != '\0') {
      requested = true;
      port = common::Env::Int("FLB_OBS_PORT", 0, 0, 65535);
    }
  }
  if (!requested) return nullptr;

  Options options;
  options.port = port;
  auto result = Start(options);
  if (!result.ok()) {
    std::fprintf(stderr, "[obs] server not started: %s\n",
                 result.status().ToString().c_str());
    return nullptr;
  }
  ObsServer* server = result.value().release();
  // A live-inspected process always gets the wall profiling plane too.
  HostProfiler::Global().Enable();
  std::fprintf(stderr,
               "[obs] serving /metrics /status /trace /healthz on "
               "http://%s:%d\n",
               server->options_.bind_address.c_str(), server->port());
  g_global.store(server, std::memory_order_release);
  return server;
}

void ObsServer::LingerFromEnv() {
  if (Global() == nullptr) return;
  const int seconds = common::Env::Int("FLB_OBS_LINGER", 0, 0, 86400);
  if (seconds <= 0) return;
  RunStatus::Global().SetPhase("linger");
  std::fprintf(stderr, "[obs] lingering %d s for final scrapes\n", seconds);
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
}

Status ObsServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("obs server: socket(): ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("obs server: bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError("obs server: cannot bind " +
                           options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) != 0) {
    return Status::IoError(std::string("obs server: listen(): ") +
                           std::strerror(errno));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&actual), &len) ==
      0) {
    port_ = ntohs(actual.sin_port);
  }
  return Status::OK();
}

void ObsServer::AcceptorLoop() {
  // Short poll timeout so Stop() is honored promptly without signals.
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 200) <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool enqueued = false;
    {
      common::MutexLock lock(queue_mu_);
      if (static_cast<int>(pending_.size()) < options_.max_pending) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Overloaded: shed instead of blocking the acceptor. The client sees
      // a reset and retries; the experiment is unaffected either way.
      ::close(fd);
    }
  }
}

void ObsServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      common::MutexLock lock(queue_mu_);
      while (pending_.empty() && !stop_.load(std::memory_order_acquire)) {
        queue_cv_.wait(lock);
      }
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void ObsServer::ServeConnection(int fd) {
  // Read the request head: until a blank line, capped at 8 KB and ~2 s
  // (10 x 200 ms polls) so a stalled client can't pin a handler.
  std::string request;
  int idle_polls = 0;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos && request.size() < 8192) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 200) <= 0) {
      if (++idle_polls >= 10 || stop_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      continue;
    }
    char buf[2048];
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      ::close(fd);
      return;
    }
    request.append(buf, static_cast<size_t>(r));
  }

  size_t eol = request.find("\r\n");
  if (eol == std::string::npos) eol = request.find('\n');
  const std::string line = request.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  Response response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    RunStatus::Global().NoteScrape("other");
    response.status = 400;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "bad request\n";
  } else {
    response = Handle(line.substr(0, sp1), line.substr(sp1 + 1, sp2 - sp1 - 1));
  }

  const std::string wire = RenderResponse(response);
  size_t off = 0;
  idle_polls = 0;
  while (off < wire.size() && idle_polls < 25) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    if (::poll(&pfd, 1, 200) <= 0) {
      ++idle_polls;
      continue;
    }
    const ssize_t w =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (w < 0) break;
    off += static_cast<size_t>(w);
  }
  ::close(fd);
}

ObsServer::Response ObsServer::Handle(const std::string& method,
                                      const std::string& path) {
  RunStatus& run_status = RunStatus::Global();
  Response r;
  r.content_type = "text/plain; charset=utf-8";
  if (method != "GET") {
    run_status.NoteScrape("other");
    r.status = 405;
    r.body = "method not allowed\n";
    return r;
  }
  const std::string p = path.substr(0, path.find('?'));
  if (p == "/healthz") {
    run_status.NoteScrape("healthz");
    r.body = "ok\n";
    return r;
  }
  if (p == "/metrics") {
    run_status.NoteScrape("metrics");
    // Fold the trace drop counter into the snapshot (obs-only gauge; the
    // scrape path never mutates charged accounting).
    PublishDropMetrics();
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = RenderPrometheus(MetricsRegistry::Global().Collect());
    return r;
  }
  if (p == "/status") {
    run_status.NoteScrape("status");
    r.content_type = "application/json";
    r.body = run_status.ToJson();
    return r;
  }
  if (p == "/trace") {
    run_status.NoteScrape("trace");
    r.content_type = "application/json";
    r.body = TraceRecorder::Global().ToJson();
    return r;
  }
  run_status.NoteScrape("other");
  r.status = 404;
  r.body = "not found; endpoints: /metrics /status /trace /healthz\n";
  return r;
}

std::string ObsServer::RenderResponse(const Response& response) {
  const char* reason = "OK";
  switch (response.status) {
    case 200:
      reason = "OK";
      break;
    case 400:
      reason = "Bad Request";
      break;
    case 404:
      reason = "Not Found";
      break;
    case 405:
      reason = "Method Not Allowed";
      break;
    default:
      reason = "Error";
  }
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

void ObsServer::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
  {
    common::MutexLock lock(queue_mu_);
    for (int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace flb::obs
