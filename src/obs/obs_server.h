// ObsServer: an embedded HTTP/1.1 scrape endpoint for live inspection.
//
// Until now the obs layer was batch-only: metrics, trace, and bench JSON
// appear on disk after the process exits. ObsServer makes a *running*
// experiment observable: a tiny blocking-socket HTTP server (no third-party
// dependency — one acceptor thread plus a bounded pool of handler threads)
// that serves
//
//   GET /metrics   Prometheus text exposition (format 0.0.4) rendered from
//                  MetricsRegistry::Collect() via src/obs/prometheus.h
//   GET /status    live run status JSON from obs::RunStatus (phase, epoch
//                  progress, HE op counts, fault/channel counters)
//   GET /trace     snapshot of the TraceRecorder as Chrome trace JSON —
//                  loadable in Perfetto mid-run, with both the simulated
//                  and the "host.wall" clock domains
//   GET /healthz   liveness probe ("ok")
//
// Startup is env-gated: any binary that calls Platform::Run (or constructs
// a bench ObsExporter) starts the server when FLB_OBS_PORT is set
// (FLB_OBS_PORT=0 picks an ephemeral port, printed to stderr), or when
// PlatformConfig::obs_port is set explicitly. Starting the server also
// enables the HostProfiler wall plane.
//
// Determinism contract: the scrape path only *reads* snapshots (registry
// collect, status JSON, trace JSON) and writes obs-only gauges/counters —
// it never touches the SimClock, charged accounting, or any trainer state,
// so a hammered server cannot change run results (enforced bit-for-bit by
// ObsServerScrapeTest).

#ifndef FLB_OBS_OBS_SERVER_H_
#define FLB_OBS_OBS_SERVER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace flb::obs {

class ObsServer {
 public:
  struct Options {
    int port = 0;  // 0 = kernel-assigned ephemeral port (see port())
    std::string bind_address = "127.0.0.1";  // loopback by default
    int num_handlers = 2;                    // handler thread pool size
    int max_pending = 64;  // accepted-but-unserved connection cap
  };

  // Binds, listens, and spawns the acceptor + handler threads. On error
  // (port in use, bad address) returns the Status instead of dying — the
  // obs plane must never take down an experiment.
  static Result<std::unique_ptr<ObsServer>> Start(const Options& options);

  // Starts the process-global server once: explicit_port > 0 forces that
  // port; otherwise FLB_OBS_PORT decides (unset = no server). Safe to call
  // from every Platform::Run. Returns the global server or nullptr.
  static ObsServer* EnsureGlobalFromEnv(int explicit_port = 0);
  static ObsServer* Global();

  // FLB_OBS_LINGER=<seconds>: keeps the process alive that long after the
  // benches finish (phase "linger") so a scraper can take final snapshots.
  // No-op unless the global server is running. Called by ObsExporter.
  static void LingerFromEnv();

  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  // The actually-bound port (resolves Options::port == 0).
  int port() const { return port_; }

  // Idempotent; joins all threads and closes every socket.
  void Stop();

  // The request → response mapping, socket-free for unit tests. `path` may
  // carry a query string (ignored).
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  static Response Handle(const std::string& method, const std::string& path);

 private:
  explicit ObsServer(const Options& options);

  Status Listen();
  void AcceptorLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  static std::string RenderResponse(const Response& response);

  const Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::vector<std::thread> handlers_;

  common::Mutex queue_mu_;
  common::CondVar queue_cv_;
  std::deque<int> pending_ FLB_GUARDED_BY(queue_mu_);
};

}  // namespace flb::obs

#endif  // FLB_OBS_OBS_SERVER_H_
