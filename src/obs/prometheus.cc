#include "src/obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace flb::obs {

namespace {

bool IsNameChar(char c, bool allow_colon) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         (allow_colon && c == ':');
}

std::string Sanitize(const std::string& name, bool allow_colon) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out += IsNameChar(c, allow_colon) ? c : '_';
  }
  if (out.empty()) return "_";
  if (std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(0, "_");
  return out;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  return Sanitize(name, /*allow_colon=*/true);
}

std::string PrometheusLabelName(const std::string& name) {
  return Sanitize(name, /*allow_colon=*/false);
}

std::string PrometheusLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseLabels(
    const std::string& labels) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while (pos < labels.size()) {
    size_t comma = labels.find(',', pos);
    if (comma == std::string::npos) comma = labels.size();
    const std::string segment = labels.substr(pos, comma - pos);
    if (!segment.empty()) {
      const size_t eq = segment.find('=');
      if (eq == std::string::npos) {
        out.emplace_back("label", segment);
      } else {
        out.emplace_back(segment.substr(0, eq), segment.substr(eq + 1));
      }
    }
    pos = comma + 1;
  }
  return out;
}

std::string PrometheusLabelSet(const std::string& labels,
                               const std::string& extra_label,
                               const std::string& extra_value) {
  std::string body;
  for (const auto& [key, value] : ParseLabels(labels)) {
    if (!body.empty()) body += ",";
    body += PrometheusLabelName(key) + "=\"" + PrometheusLabelValue(value) +
            "\"";
  }
  if (!extra_label.empty()) {
    if (!body.empty()) body += ",";
    body += extra_label + "=\"" + extra_value + "\"";
  }
  return body.empty() ? "" : "{" + body + "}";
}

std::string PrometheusValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string RenderPrometheus(const std::vector<MetricValue>& metrics) {
  std::string out;
  out.reserve(metrics.size() * 64);
  std::string last_typed;  // sanitized name of the last # TYPE line
  for (const MetricValue& m : metrics) {
    const std::string name = PrometheusName(m.name);
    if (name != last_typed) {
      out += "# TYPE " + name + " " + MetricTypeName(m.type) + "\n";
      last_typed = name;
    }
    if (m.type != MetricType::kHistogram) {
      out += name + PrometheusLabelSet(m.labels) + " " +
             PrometheusValue(m.value) + "\n";
      continue;
    }
    // Histogram: cumulative buckets ending in an explicit +Inf (the sparse
    // registry snapshot omits empty buckets and may omit the overflow one;
    // Prometheus semantics require both).
    uint64_t cumulative = 0;
    bool saw_inf = false;
    for (const HistogramBucket& b : m.buckets) {
      cumulative += b.count;
      const bool inf = std::isinf(b.le);
      saw_inf = saw_inf || inf;
      out += name + "_bucket" +
             PrometheusLabelSet(m.labels, "le",
                                inf ? "+Inf" : PrometheusValue(b.le)) +
             " " + std::to_string(cumulative) + "\n";
    }
    if (!saw_inf) {
      out += name + "_bucket" + PrometheusLabelSet(m.labels, "le", "+Inf") +
             " " + std::to_string(m.count) + "\n";
    }
    out += name + "_sum" + PrometheusLabelSet(m.labels) + " " +
           PrometheusValue(m.value) + "\n";
    out += name + "_count" + PrometheusLabelSet(m.labels) + " " +
           std::to_string(m.count) + "\n";
  }
  return out;
}

}  // namespace flb::obs
