// Prometheus text-exposition encoder for MetricsRegistry snapshots.
//
// The registry's native naming ("flb.net.reliable.retransmits", canonical
// "k=v,k=v" label strings, sparse per-bucket histogram counts) is not valid
// Prometheus: metric names may not contain dots, label values need quoting
// and escaping, and histogram buckets must be *cumulative* with an explicit
// "+Inf" bucket plus `_sum` / `_count` series. This encoder owns all of
// those conversions so the /metrics scrape endpoint emits promtool-shaped
// text (exposition format 0.0.4) while the JSON exporters keep the native
// schema untouched.

#ifndef FLB_OBS_PROMETHEUS_H_
#define FLB_OBS_PROMETHEUS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace flb::obs {

// "flb.net.reliable.x" -> "flb_net_reliable_x": every character outside
// [a-zA-Z0-9_:] becomes '_'; a leading digit gets a '_' prefix; empty
// input becomes "_".
std::string PrometheusName(const std::string& name);

// Label *names* follow the metric-name rules minus ':'.
std::string PrometheusLabelName(const std::string& name);

// Escapes a label value for inclusion between double quotes: backslash,
// double quote, and newline get backslash-escaped.
std::string PrometheusLabelValue(const std::string& value);

// Splits the registry's canonical "k=v,k=v" label string into pairs (a
// segment without '=' becomes {"label", segment}).
std::vector<std::pair<std::string, std::string>> ParseLabels(
    const std::string& labels);

// Renders "{k=\"v\",...}" from a canonical label string, appending
// `extra_label`/`extra_value` (used for histogram "le") when non-empty.
// Returns "" when there is nothing to render.
std::string PrometheusLabelSet(const std::string& labels,
                               const std::string& extra_label = "",
                               const std::string& extra_value = "");

// Formats a sample value (%.17g keeps uint64 counters < 2^53 exact).
std::string PrometheusValue(double value);

// Renders a whole snapshot (as returned by MetricsRegistry::Collect) as
// Prometheus text exposition: one `# TYPE` line per metric name, then the
// samples. Histograms expand to cumulative `_bucket{le=...}` series ending
// in `+Inf`, plus `_sum` and `_count`.
std::string RenderPrometheus(const std::vector<MetricValue>& metrics);

}  // namespace flb::obs

#endif  // FLB_OBS_PROMETHEUS_H_
