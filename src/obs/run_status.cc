#include "src/obs/run_status.h"

#include <cstring>
#include <utility>

#include "src/obs/json_util.h"
#include "src/obs/trace.h"

namespace flb::obs {

RunStatus& RunStatus::Global() {
  static RunStatus status;
  return status;
}

void RunStatus::BeginRun(const RunInfo& info) {
  if (quiet()) return;
  {
    common::MutexLock lock(mu_);
    run_ = info;
    epoch_ = EpochStatus{};
    he_ = HeOpsStatus{};
    faults_ = FaultStatus{};
    channel_ = ChannelStatus{};
    resilience_ = ResilienceStatus{};
    totals_ = RunTotals{};
    phase_ = "setup";
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::SetPhase(const std::string& phase) {
  if (quiet()) return;
  {
    common::MutexLock lock(mu_);
    phase_ = phase;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::SetBench(const std::string& bench) {
  {
    common::MutexLock lock(mu_);
    bench_ = bench;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::SetSection(const std::string& section) {
  {
    common::MutexLock lock(mu_);
    section_ = section;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::UpdateEpoch(const EpochStatus& epoch, const HeOpsStatus& he) {
  if (quiet()) return;
  {
    common::MutexLock lock(mu_);
    epoch_ = epoch;
    he_ = he;
    phase_ = "train";
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::UpdateFaults(const FaultStatus& faults,
                             const ChannelStatus& channel) {
  if (quiet()) return;
  {
    common::MutexLock lock(mu_);
    faults_ = faults;
    channel_ = channel;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::UpdateQuarantine(uint64_t quarantined, uint64_t quarantines,
                                 uint64_t readmits,
                                 uint64_t deadline_exceeded) {
  if (quiet()) return;
  {
    common::MutexLock lock(mu_);
    resilience_.quarantined = quarantined;
    resilience_.quarantines = quarantines;
    resilience_.readmits = readmits;
    resilience_.deadline_exceeded = deadline_exceeded;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::UpdateBreaker(uint64_t open, uint64_t half_open,
                              uint64_t trips, uint64_t fast_fails) {
  if (quiet()) return;
  {
    common::MutexLock lock(mu_);
    resilience_.breaker_open = open;
    resilience_.breaker_half_open = half_open;
    resilience_.breaker_trips = trips;
    resilience_.breaker_fast_fails = fast_fails;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::EndRun(const RunTotals& totals, const HeOpsStatus& he) {
  if (quiet()) return;
  {
    common::MutexLock lock(mu_);
    totals_ = totals;
    he_ = he;
    phase_ = "done";
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::UpdateTuner(const TunerStatus& tuner) {
  {
    common::MutexLock lock(mu_);
    tuner_ = tuner;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::Reset() {
  {
    common::MutexLock lock(mu_);
    phase_ = "idle";
    bench_.clear();
    section_.clear();
    run_ = RunInfo{};
    epoch_ = EpochStatus{};
    he_ = HeOpsStatus{};
    faults_ = FaultStatus{};
    channel_ = ChannelStatus{};
    resilience_ = ResilienceStatus{};
    totals_ = RunTotals{};
    tuner_ = TunerStatus{};
  }
  quiet_.store(false, std::memory_order_relaxed);
  scrapes_metrics_.store(0, std::memory_order_relaxed);
  scrapes_status_.store(0, std::memory_order_relaxed);
  scrapes_trace_.store(0, std::memory_order_relaxed);
  scrapes_healthz_.store(0, std::memory_order_relaxed);
  scrapes_other_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void RunStatus::NoteScrape(const char* endpoint) {
  if (std::strcmp(endpoint, "metrics") == 0) {
    scrapes_metrics_.fetch_add(1, std::memory_order_relaxed);
  } else if (std::strcmp(endpoint, "status") == 0) {
    scrapes_status_.fetch_add(1, std::memory_order_relaxed);
  } else if (std::strcmp(endpoint, "trace") == 0) {
    scrapes_trace_.fetch_add(1, std::memory_order_relaxed);
  } else if (std::strcmp(endpoint, "healthz") == 0) {
    scrapes_healthz_.fetch_add(1, std::memory_order_relaxed);
  } else {
    scrapes_other_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string RunStatus::phase() const {
  common::MutexLock lock(mu_);
  return phase_;
}

std::string RunStatus::ToJson() const {
  // Leaf-lock discipline: read the other singleton before taking mu_.
  const uint64_t dropped = TraceRecorder::Global().dropped_events();
  const uint64_t generation = generation_.load(std::memory_order_relaxed);
  const uint64_t s_metrics = scrapes_metrics_.load(std::memory_order_relaxed);
  const uint64_t s_status = scrapes_status_.load(std::memory_order_relaxed);
  const uint64_t s_trace = scrapes_trace_.load(std::memory_order_relaxed);
  const uint64_t s_healthz = scrapes_healthz_.load(std::memory_order_relaxed);
  const uint64_t s_other = scrapes_other_.load(std::memory_order_relaxed);

  common::MutexLock lock(mu_);
  std::string out = "{";
  out += "\"phase\":" + JsonQuote(phase_);
  out += ",\"bench\":" + JsonQuote(bench_);
  out += ",\"section\":" + JsonQuote(section_);
  out += ",\"generation\":" + JsonNumber(generation);
  out += ",\"run\":{\"engine\":" + JsonQuote(run_.engine) +
         ",\"model\":" + JsonQuote(run_.model) +
         ",\"key_bits\":" + JsonNumber(run_.key_bits) +
         ",\"parties\":" + JsonNumber(run_.parties) +
         ",\"seed\":" + JsonNumber(run_.seed) + "}";
  out += ",\"epoch\":{\"epoch\":" + JsonNumber(epoch_.epoch) +
         ",\"max_epochs\":" + JsonNumber(epoch_.max_epochs) +
         ",\"loss\":" + JsonNumber(epoch_.loss) +
         ",\"accuracy\":" + JsonNumber(epoch_.accuracy) +
         ",\"sim_seconds\":" + JsonNumber(epoch_.sim_seconds) +
         ",\"comm_bytes\":" + JsonNumber(epoch_.comm_bytes) + "}";
  out += ",\"he\":{\"encrypts\":" + JsonNumber(he_.encrypts) +
         ",\"decrypts\":" + JsonNumber(he_.decrypts) +
         ",\"hom_adds\":" + JsonNumber(he_.hom_adds) +
         ",\"scalar_muls\":" + JsonNumber(he_.scalar_muls) +
         ",\"values_encrypted\":" + JsonNumber(he_.values_encrypted) +
         ",\"values_decrypted\":" + JsonNumber(he_.values_decrypted) + "}";
  out += ",\"totals\":{\"total_seconds\":" + JsonNumber(totals_.total_seconds) +
         ",\"he_seconds\":" + JsonNumber(totals_.he_seconds) +
         ",\"comm_seconds\":" + JsonNumber(totals_.comm_seconds) +
         ",\"comm_bytes\":" + JsonNumber(totals_.comm_bytes) +
         ",\"comm_messages\":" + JsonNumber(totals_.comm_messages) + "}";
  out += ",\"faults\":{\"injected\":" + JsonNumber(faults_.injected) +
         ",\"drops\":" + JsonNumber(faults_.drops) +
         ",\"duplicates\":" + JsonNumber(faults_.duplicates) +
         ",\"reorders\":" + JsonNumber(faults_.reorders) +
         ",\"corruptions\":" + JsonNumber(faults_.corruptions) +
         ",\"delays\":" + JsonNumber(faults_.delays) + "}";
  out += ",\"channel\":{\"retransmits\":" + JsonNumber(channel_.retransmits) +
         ",\"timeouts\":" + JsonNumber(channel_.timeouts) +
         ",\"crc_failures\":" + JsonNumber(channel_.crc_failures) + "}";
  out += ",\"resilience\":{\"quarantined\":" +
         JsonNumber(resilience_.quarantined) +
         ",\"quarantines\":" + JsonNumber(resilience_.quarantines) +
         ",\"readmits\":" + JsonNumber(resilience_.readmits) +
         ",\"deadline_exceeded\":" + JsonNumber(resilience_.deadline_exceeded) +
         ",\"breaker_open\":" + JsonNumber(resilience_.breaker_open) +
         ",\"breaker_half_open\":" + JsonNumber(resilience_.breaker_half_open) +
         ",\"breaker_trips\":" + JsonNumber(resilience_.breaker_trips) +
         ",\"breaker_fast_fails\":" +
         JsonNumber(resilience_.breaker_fast_fails) + "}";
  out += ",\"tuner\":{\"enabled\":" +
         std::string(tuner_.enabled ? "true" : "false") +
         ",\"cache_hit\":" + std::string(tuner_.cache_hit ? "true" : "false") +
         ",\"candidates\":" + JsonNumber(tuner_.candidates) +
         ",\"warmup_runs\":" + JsonNumber(tuner_.warmup_runs) +
         ",\"warmup_seconds\":" + JsonNumber(tuner_.warmup_seconds) +
         ",\"predicted_seconds\":" + JsonNumber(tuner_.predicted_seconds) +
         ",\"measured_seconds\":" + JsonNumber(tuner_.measured_seconds) +
         ",\"fingerprint\":" + JsonQuote(tuner_.fingerprint) +
         ",\"chosen\":" + JsonQuote(tuner_.chosen) + "}";
  out += ",\"trace\":{\"dropped_events\":" + JsonNumber(dropped) + "}";
  out += ",\"server\":{\"requests\":{\"metrics\":" + JsonNumber(s_metrics) +
         ",\"status\":" + JsonNumber(s_status) +
         ",\"trace\":" + JsonNumber(s_trace) +
         ",\"healthz\":" + JsonNumber(s_healthz) +
         ",\"other\":" + JsonNumber(s_other) + "}}";
  out += "}";
  return out;
}

}  // namespace flb::obs
