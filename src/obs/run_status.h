// RunStatus: the live run-status snapshot served by ObsServer's /status.
//
// The batch obs layer (metrics + trace) only becomes visible after a run
// ends; RunStatus is the "what is happening right now" plane. Platform::Run
// stamps run identity and phase transitions, every trainer publishes its
// epoch progress (plus an HE-op and fault snapshot taken on the trainer
// thread, where the underlying counters are safe to read), and bench_common
// contributes the bench/section names. The ObsServer scrape thread renders
// the whole thing as one JSON object.
//
// Update discipline: producers push *plain values* at coarse boundaries
// (run start/end, epoch end, section start) — RunStatus never holds
// pointers into live components, so a scrape can never race component
// teardown or perturb charged accounting. All fields sit behind one small
// leaf mutex; updates are epoch-granularity, scrapes are human-granularity,
// so the lock is effectively uncontended.

#ifndef FLB_OBS_RUN_STATUS_H_
#define FLB_OBS_RUN_STATUS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/annotations.h"
#include "src/common/mutex.h"

namespace flb::obs {

// Identity of the run in flight (Platform::Run's config, by value).
struct RunInfo {
  std::string engine;
  std::string model;
  int key_bits = 0;
  int parties = 0;
  uint64_t seed = 0;
};

// HE op totals snapshotted on the trainer thread (HeService's counters are
// plain fields mutated by the trainer thread, so only it may read them).
struct HeOpsStatus {
  uint64_t encrypts = 0;
  uint64_t decrypts = 0;
  uint64_t hom_adds = 0;
  uint64_t scalar_muls = 0;
  uint64_t values_encrypted = 0;
  uint64_t values_decrypted = 0;
};

struct EpochStatus {
  int epoch = -1;  // -1 = no epoch finished yet
  int max_epochs = 0;
  double loss = 0.0;
  double accuracy = 0.0;
  double sim_seconds = 0.0;  // cumulative simulated seconds
  uint64_t comm_bytes = 0;   // this epoch's bytes
};

// Chaos-plane counters (all zero on healthy runs).
struct FaultStatus {
  uint64_t injected = 0;
  uint64_t drops = 0;
  uint64_t duplicates = 0;
  uint64_t reorders = 0;
  uint64_t corruptions = 0;
  uint64_t delays = 0;
};

struct ChannelStatus {
  uint64_t retransmits = 0;
  uint64_t timeouts = 0;
  uint64_t crc_failures = 0;
};

// Degraded-mode state from the resilience layer (all zero on healthy
// runs): party quarantine counts from the RobustCoordinator / PartyHealth
// side, link circuit-breaker state from the net side. Two producers, two
// field groups, one block in /status.
struct ResilienceStatus {
  uint64_t quarantined = 0;        // parties currently in quarantine
  uint64_t quarantines = 0;        // quarantine events so far
  uint64_t readmits = 0;           // probation readmissions
  uint64_t deadline_exceeded = 0;  // budget-bounded waits that expired
  uint64_t breaker_open = 0;       // links currently open
  uint64_t breaker_half_open = 0;  // links probing
  uint64_t breaker_trips = 0;
  uint64_t breaker_fast_fails = 0;
};

// Auto-tuner outcome for the most recent tuned run (core/tuner.h). All
// zeros / empty strings when auto-tuning is off.
struct TunerStatus {
  bool enabled = false;
  bool cache_hit = false;
  uint64_t candidates = 0;         // knob configs considered by the search
  uint64_t warmup_runs = 0;        // probe runs actually measured
  double warmup_seconds = 0.0;     // simulated seconds spent probing
  double predicted_seconds = 0.0;  // analytic estimate for the chosen knobs
  double measured_seconds = 0.0;   // probe measurement for the chosen knobs
  std::string fingerprint;         // workload fingerprint (hex)
  std::string chosen;              // chosen knobs (KnobConfig::ToString)
};

// Whole-run decomposition, published once at EndRun.
struct RunTotals {
  double total_seconds = 0.0;
  double he_seconds = 0.0;
  double comm_seconds = 0.0;
  uint64_t comm_bytes = 0;
  uint64_t comm_messages = 0;
};

class RunStatus {
 public:
  RunStatus() = default;

  // The process-global status every producer updates and /status serves.
  static RunStatus& Global();

  void BeginRun(const RunInfo& info);
  void SetPhase(const std::string& phase);  // idle/setup/train/done/linger
  void SetBench(const std::string& bench);
  void SetSection(const std::string& section);
  void UpdateEpoch(const EpochStatus& epoch, const HeOpsStatus& he);
  void UpdateFaults(const FaultStatus& faults, const ChannelStatus& channel);
  // Quarantine-side half of the resilience block (RobustCoordinator).
  void UpdateQuarantine(uint64_t quarantined, uint64_t quarantines,
                        uint64_t readmits, uint64_t deadline_exceeded);
  // Breaker-side half of the resilience block (net::CircuitBreaker).
  void UpdateBreaker(uint64_t open, uint64_t half_open, uint64_t trips,
                     uint64_t fast_fails);
  void EndRun(const RunTotals& totals, const HeOpsStatus& he);
  // Auto-tuner outcome (core/tuner.h); always applied, even while quiet.
  void UpdateTuner(const TunerStatus& tuner);
  // Back to the initial state (tests).
  void Reset();

  // Quiet mode: while set, run-lifecycle updates (BeginRun, SetPhase,
  // UpdateEpoch, fault/resilience updates, EndRun) are dropped. The
  // auto-tuner wraps its probe runs in this so /status keeps showing the
  // real run, not the warm-up churn.
  void set_quiet(bool quiet) {
    quiet_.store(quiet, std::memory_order_relaxed);
  }
  bool quiet() const { return quiet_.load(std::memory_order_relaxed); }

  // Scrape accounting, bumped by ObsServer (lock-free; shows up in the
  // /status payload so a dashboard can see it is being polled).
  void NoteScrape(const char* endpoint);

  // Monotonic update stamp: bumped by every mutating call above. Lets a
  // poller (and the tests) detect "something changed" cheaply.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  std::string phase() const;

  // The /status payload. Never touches live components: everything is
  // already snapshotted by value (the trace drop counter is read from the
  // global TraceRecorder *before* taking the status lock — leaf-lock
  // discipline).
  std::string ToJson() const;

 private:
  std::atomic<bool> quiet_{false};
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> scrapes_metrics_{0};
  std::atomic<uint64_t> scrapes_status_{0};
  std::atomic<uint64_t> scrapes_trace_{0};
  std::atomic<uint64_t> scrapes_healthz_{0};
  std::atomic<uint64_t> scrapes_other_{0};

  mutable common::Mutex mu_;
  std::string phase_ FLB_GUARDED_BY(mu_) = "idle";
  std::string bench_ FLB_GUARDED_BY(mu_);
  std::string section_ FLB_GUARDED_BY(mu_);
  RunInfo run_ FLB_GUARDED_BY(mu_);
  EpochStatus epoch_ FLB_GUARDED_BY(mu_);
  HeOpsStatus he_ FLB_GUARDED_BY(mu_);
  FaultStatus faults_ FLB_GUARDED_BY(mu_);
  ChannelStatus channel_ FLB_GUARDED_BY(mu_);
  ResilienceStatus resilience_ FLB_GUARDED_BY(mu_);
  RunTotals totals_ FLB_GUARDED_BY(mu_);
  TunerStatus tuner_ FLB_GUARDED_BY(mu_);
};

}  // namespace flb::obs

#endif  // FLB_OBS_RUN_STATUS_H_
