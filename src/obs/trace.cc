#include "src/obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "src/common/env.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics.h"

namespace flb::obs {

TraceArg Arg(std::string key, double value) {
  return TraceArg{std::move(key), JsonNumber(value)};
}
TraceArg Arg(std::string key, int value) {
  return TraceArg{std::move(key), JsonNumber(value)};
}
TraceArg Arg(std::string key, int64_t value) {
  return TraceArg{std::move(key), JsonNumber(value)};
}
TraceArg Arg(std::string key, uint64_t value) {
  return TraceArg{std::move(key), JsonNumber(value)};
}
TraceArg Arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false"};
}
TraceArg Arg(std::string key, const char* value) {
  return TraceArg{std::move(key), JsonQuote(value)};
}
TraceArg Arg(std::string key, const std::string& value) {
  return TraceArg{std::move(key), JsonQuote(value)};
}

TraceRecorder::TraceRecorder() {
  // Exported traces are env-gated (see header); either variable enables.
  enabled_ = common::Env::Has("FLB_TRACE_OUT") ||
             common::Env::Flag("FLB_TRACE");
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder recorder;
  // Registered after the recorder is constructed, so the handler runs
  // before its destructor.
  static const int atexit_registered = std::atexit(ExportEnvConfigured);
  (void)atexit_registered;
  return recorder;
}

Track TraceRecorder::RegisterTrack(const std::string& process,
                                   const std::string& thread) {
  common::MutexLock lock(mu_);
  auto key = std::make_pair(process, thread);
  auto it = tracks_.find(key);
  if (it != tracks_.end()) return it->second;

  auto pid_it = pids_.find(process);
  if (pid_it == pids_.end()) {
    pid_it = pids_.emplace(process, next_pid_++).first;
  }
  // tids are dense per process, in registration order.
  int tid = 0;
  for (const auto& [k, t] : tracks_) {
    if (k.first == process) tid = std::max(tid, t.tid + 1);
  }
  Track track{pid_it->second, tid};
  tracks_.emplace(std::move(key), track);
  return track;
}

std::string TraceRecorder::UniqueProcessName(const std::string& base) {
  common::MutexLock lock(mu_);
  const int n = ++unique_counts_[base];
  return n == 1 ? base : base + "#" + std::to_string(n);
}

void TraceRecorder::Push(TraceEvent event) {
  if (!enabled()) return;
  bool warn_first_drop = false;
  size_t cap = 0;
  {
    common::MutexLock lock(mu_);
    if (events_.size() >= max_events_) {
      ++dropped_;
      warn_first_drop = !drop_warned_;
      drop_warned_ = true;
      cap = max_events_;
    } else {
      events_.push_back(std::move(event));
    }
  }
  // Warn exactly once per process, outside the leaf lock (fprintf may
  // block; callers record from inside their own critical sections).
  if (warn_first_drop) {
    std::fprintf(stderr,
                 "[obs] trace event cap (%zu) hit; further events dropped "
                 "(count exported as flb.obs.trace.dropped_events)\n",
                 cap);
  }
}

void TraceRecorder::Span(Track track, std::string name, std::string category,
                         double start_sec, double end_sec,
                         std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.name = std::move(name);
  e.category = std::move(category);
  e.track = track;
  e.ts_us = start_sec * 1e6;
  e.dur_us = (end_sec - start_sec) * 1e6;
  if (e.dur_us < 0.0) e.dur_us = 0.0;
  e.args = std::move(args);
  Push(std::move(e));
}

void TraceRecorder::Instant(Track track, std::string name,
                            std::string category, double ts_sec,
                            std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.name = std::move(name);
  e.category = std::move(category);
  e.track = track;
  e.ts_us = ts_sec * 1e6;
  e.args = std::move(args);
  Push(std::move(e));
}

void TraceRecorder::Counter(Track track, std::string name, double ts_sec,
                            double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kCounter;
  e.name = std::move(name);
  e.category = "counter";
  e.track = track;
  e.ts_us = ts_sec * 1e6;
  e.value = value;
  Push(std::move(e));
}

void TraceRecorder::Clear() {
  common::MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ToJson() const {
  common::MutexLock lock(mu_);
  // Metadata only for tracks that actually carry events.
  std::set<int> used_pids;
  std::set<std::pair<int, int>> used_tracks;
  for (const TraceEvent& e : events_) {
    used_pids.insert(e.track.pid);
    used_tracks.insert({e.track.pid, e.track.tid});
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& obj) {
    if (!first) out += ",";
    first = false;
    out += "\n" + obj;
  };

  for (const auto& [name, pid] : pids_) {
    if (used_pids.count(pid) == 0) continue;
    append("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           JsonNumber(pid) + ",\"tid\":0,\"ts\":0,\"args\":{\"name\":" +
           JsonQuote(name) + "}}");
  }
  for (const auto& [key, track] : tracks_) {
    if (used_tracks.count({track.pid, track.tid}) == 0) continue;
    append("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           JsonNumber(track.pid) + ",\"tid\":" + JsonNumber(track.tid) +
           ",\"ts\":0,\"args\":{\"name\":" + JsonQuote(key.second) + "}}");
  }

  for (const TraceEvent& e : events_) {
    std::string obj = "{\"ph\":\"";
    obj += static_cast<char>(e.phase);
    obj += "\",\"name\":" + JsonQuote(e.name);
    obj += ",\"cat\":" + JsonQuote(e.category.empty() ? "flb" : e.category);
    obj += ",\"pid\":" + JsonNumber(e.track.pid);
    obj += ",\"tid\":" + JsonNumber(e.track.tid);
    obj += ",\"ts\":" + JsonNumber(e.ts_us);
    switch (e.phase) {
      case TraceEvent::Phase::kComplete:
        obj += ",\"dur\":" + JsonNumber(e.dur_us);
        break;
      case TraceEvent::Phase::kInstant:
        obj += ",\"s\":\"t\"";  // thread-scoped instant
        break;
      case TraceEvent::Phase::kCounter:
        break;
    }
    if (e.phase == TraceEvent::Phase::kCounter) {
      obj += ",\"args\":{\"value\":" + JsonNumber(e.value) + "}";
    } else if (!e.args.empty()) {
      obj += ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) obj += ",";
        obj += JsonQuote(e.args[i].key) + ":" + e.args[i].json_value;
      }
      obj += "}";
    }
    obj += "}";
    append(obj);
  }

  out += "\n],\"otherData\":{\"clock\":\"simulated\",\"dropped_events\":" +
         JsonNumber(dropped_) + "}}";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("TraceRecorder: cannot open " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("TraceRecorder: short write to " + path);
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(const SimClock* clock, Track track, std::string name,
                       std::string category, TraceRecorder* recorder)
    : recorder_(recorder),
      clock_(clock),
      track_(track),
      name_(std::move(name)),
      category_(std::move(category)) {
  active_ = recorder_ != nullptr && recorder_->enabled() && clock_ != nullptr;
  if (active_) start_sec_ = clock_->Now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  recorder_->Span(track_, std::move(name_), std::move(category_), start_sec_,
                  clock_->Now(), std::move(args_));
}

ScopedSpan& ScopedSpan::AddArg(TraceArg arg) {
  if (active_) args_.push_back(std::move(arg));
  return *this;
}

void ChargeSpan(SimClock* clock, CostKind kind, double seconds, Track track,
                std::string name, std::string category,
                std::vector<TraceArg> args, TraceRecorder* recorder) {
  if (clock == nullptr) return;
  const double start = clock->Now();
  clock->Charge(kind, seconds);
  if (recorder != nullptr && recorder->enabled()) {
    args.push_back(Arg("cost_kind", CostKindName(kind)));
    recorder->Span(track, std::move(name), std::move(category), start,
                   start + seconds, std::move(args));
  }
}

void PublishDropMetrics() {
  MetricsRegistry::Global().Set(
      "flb.obs.trace.dropped_events",
      static_cast<double>(TraceRecorder::Global().dropped_events()));
}

void ExportEnvConfigured() {
  static bool done = false;
  if (done) return;
  done = true;
  PublishDropMetrics();
  const std::string trace_path = common::Env::Str("FLB_TRACE_OUT");
  if (!trace_path.empty()) {
    const Status s = TraceRecorder::Global().WriteJson(trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
    } else {
      std::fprintf(stderr, "[obs] wrote trace to %s\n", trace_path.c_str());
    }
  }
  const std::string metrics_path = common::Env::Str("FLB_METRICS_OUT");
  if (!metrics_path.empty()) {
    const Status s = MetricsRegistry::Global().WriteJson(metrics_path);
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   s.ToString().c_str());
    } else {
      std::fprintf(stderr, "[obs] wrote metrics to %s\n",
                   metrics_path.c_str());
    }
  }
}

}  // namespace flb::obs
